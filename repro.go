package repro

// Migration note (old entry points -> unified Solve API)
//
// The three historical entry-point families are deprecated shims over the
// single Solve entry point (see solve.go / engine.go / report.go):
//
//	RunModel(ModelConfig{Op, Delay, Theta, Tol, ...})
//	  -> Solve(NewSpec(op), WithEngine(EngineModel), WithDelay(...),
//	           WithTheta(...), WithTol(...), WithMaxIter(...))
//	RunSim(SimConfig{Op, Workers, Cost, Latency, ...})
//	  -> Solve(NewSpec(op), WithEngine(EngineSim), WithWorkers(...),
//	           WithCost(...), WithLatency(...), WithMaxUpdates(...))
//	RunSimSync(SimConfig{...})
//	  -> Solve(..., WithEngine(EngineSimSync))
//	RunShared(ConcurrentConfig{Op, Workers, Tol, MaxUpdatesPerWorker})
//	  -> Solve(NewSpec(op), WithEngine(EngineShared), WithWorkers(...),
//	           WithTol(...), WithMaxUpdatesPerWorker(...))
//	RunMessage(ConcurrentConfig{...})
//	  -> Solve(..., WithEngine(EngineMessage))
//
// Every engine now returns the unified *Report; per-engine detail remains
// reachable via Report.ModelDetail / SimDetail / SimSyncDetail /
// ConcurrentDetail. Named workload x delay x engine combinations are
// composable through the scenario registry (RegisterScenario, Scenarios,
// BuildScenario).

import (
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/flexible"
	"repro/internal/macroiter"
	"repro/internal/metrics"
	"repro/internal/mldata"
	"repro/internal/multigrid"
	"repro/internal/netflow"
	"repro/internal/newton"
	"repro/internal/obstacle"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/runtime"
	"repro/internal/sssp"
	"repro/internal/steering"
	"repro/internal/trace"
	"repro/internal/vec"
)

// ---------------------------------------------------------------------------
// Operators and smooth functions.

type (
	// Operator is a fixed-point map relaxed componentwise by the engines.
	Operator = operators.Operator
	// Smooth is an L-smooth, mu-strongly convex differentiable function.
	Smooth = operators.Smooth
	// Linear is the affine operator x -> Ax + b.
	Linear = operators.Linear
	// GradOp is the gradient-descent operator x - gamma*grad f(x).
	GradOp = operators.GradOp
	// ProxGradBF is the paper's Definition 4 approximate gradient-type
	// operator (backward-forward).
	ProxGradBF = operators.ProxGradBF
	// ProxGradFB is the standard forward-backward proximal gradient.
	ProxGradFB = operators.ProxGradFB
	// InnerIterated is the Remark 2 approximate operator performing K inner
	// gradient steps.
	InnerIterated = operators.InnerIterated
	// Quadratic is f(x) = 1/2 x^T Q x - b^T x + c.
	Quadratic = operators.Quadratic
	// Separable is the fully separable strongly convex model of Section V.
	Separable = operators.Separable
	// LeastSquares is the ridge/lasso smooth part.
	LeastSquares = operators.LeastSquares
	// OperatorScratch is a per-worker bundle of reusable work vectors for
	// allocation-free operator evaluation (see NewOperatorScratch).
	OperatorScratch = operators.Scratch
	// BlockOperator is the whole-block evaluation fast path coupled
	// operators implement so engine phases amortize shared work (the prox
	// vector, the gradient pass) across a worker's block; see EvalBlock.
	BlockOperator = operators.BlockScratchOperator
	// RangeGradSmooth is the gradient-range fast path a Smooth implements
	// so block evaluation shares the whole-gradient work (Hessian/Gram row
	// slab, logistic residual pass) across a component range.
	RangeGradSmooth = operators.RangeGradSmooth
)

// Constructors re-exported from the operators package.
var (
	NewLinear        = operators.NewLinear
	NewSparseLinear  = operators.NewSparseLinear
	JacobiFromSystem = operators.JacobiFromSystem
	NewGradOp        = operators.NewGradOp
	NewProxGradBF    = operators.NewProxGradBF
	NewProxGradFB    = operators.NewProxGradFB
	NewInnerIterated = operators.NewInnerIterated
	NewQuadratic     = operators.NewQuadratic
	NewSeparable     = operators.NewSeparable
	NewLeastSquares  = operators.NewLeastSquares
	FixedPoint       = operators.FixedPoint
	OperatorResidual = operators.Residual
	MaxStep          = operators.MaxStep
	TheoreticalRho   = operators.TheoreticalRho
	EstimateContract = operators.EstimateContraction
	UniformWeights   = operators.Ones
	// NewOperatorScratch returns an empty per-worker scratch; thread it
	// through EvalComponent/ApplyOperator to evaluate operators like
	// ProxGradBF without per-call allocation.
	NewOperatorScratch = operators.NewScratch
	// EvalComponent evaluates F_i(x) using the operator's scratch fast path
	// when available.
	EvalComponent = operators.EvalComponent
	// EvalBlock evaluates the component range [lo, hi) of F at x into out,
	// using the operator's whole-block fast path when available and the
	// per-component loop otherwise — the call every engine phase makes.
	EvalBlock = operators.EvalBlock
	// ApplyOperator evaluates F(x) into dst using the scratch (or full-apply)
	// fast path when available.
	ApplyOperator = operators.ApplyInto
)

// ---------------------------------------------------------------------------
// Proximal operators (separable non-smooth g).

type (
	// Prox is a separable proximal operator.
	Prox = prox.Prox
	// L1 is lambda*||x||_1 (soft thresholding).
	L1 = prox.L1
	// SquaredL2 is (lambda/2)||x||^2.
	SquaredL2 = prox.SquaredL2
	// ElasticNet combines L1 and squared L2.
	ElasticNet = prox.ElasticNet
	// Box is the indicator of a box (projection).
	Box = prox.Box
	// NonNeg is the indicator of the nonnegative orthant.
	NonNeg = prox.NonNeg
	// ZeroProx is g = 0.
	ZeroProx = prox.Zero
)

// NewBoxScalar returns the box [lo, hi]^n prox.
var NewBoxScalar = prox.NewBoxScalar

// ---------------------------------------------------------------------------
// Delay models (label functions l_i(j)) and steering policies (S_j).

type (
	// DelayModel yields the labels l_i(j) of Definition 1.
	DelayModel = delay.Model
	// FreshDelay reads the immediately preceding iterate.
	FreshDelay = delay.Fresh
	// ConstantDelay applies a fixed delay.
	ConstantDelay = delay.Constant
	// BoundedRandomDelay is the chaotic-relaxation regime (condition d).
	BoundedRandomDelay = delay.BoundedRandom
	// SqrtGrowthDelay is Baudet's unbounded-delay example.
	SqrtGrowthDelay = delay.SqrtGrowth
	// LogGrowthDelay has delays growing like log j.
	LogGrowthDelay = delay.LogGrowth
	// OutOfOrderDelay produces non-monotone labels (message reordering).
	OutOfOrderDelay = delay.OutOfOrder
	// DelayReport is the admissibility-condition check result.
	DelayReport = delay.Report
)

// Delay-model helpers.
var (
	CheckDelayConditions = delay.CheckConditions
	CheckChaoticBound    = delay.CheckChaoticBound
	DelaySeries          = delay.DelaySeries
)

type (
	// SteeringPolicy produces the sets S_j of Definition 1.
	SteeringPolicy = steering.Policy
)

// Steering constructors.
var (
	NewCyclic         = steering.NewCyclic
	NewAllComponents  = steering.NewAll
	NewBlockCyclic    = steering.NewBlockCyclic
	NewRandomSubset   = steering.NewRandomSubset
	NewGaussSouthwell = steering.NewGaussSouthwell
	NewFair           = steering.NewFair
	CheckConditionC   = steering.CheckConditionC
)

// ---------------------------------------------------------------------------
// Flexible communication (Definition 3).

type (
	// FlexSchedule describes when partial updates are published.
	FlexSchedule = flexible.Schedule
	// Constraint3Report is the norm-constraint (3) check result.
	Constraint3Report = flexible.Constraint3Report
)

// Flexible-communication helpers.
var (
	NewFlexSchedule  = flexible.NewSchedule
	UniformFlex      = flexible.Uniform
	NoFlex           = flexible.None
	CheckConstraint3 = flexible.CheckConstraint3
)

// ---------------------------------------------------------------------------
// Macro-iterations (Definition 2), epochs, stopping.

type (
	// MacroTracker computes the Definition 2 sequence online.
	MacroTracker = macroiter.Tracker
	// EpochTracker computes the epoch sequence of Mishchenko et al. [30].
	EpochTracker = macroiter.EpochTracker
	// IterationRecord captures one iteration for offline analysis.
	IterationRecord = macroiter.Record
	// StopCriterion is the macro-iteration based stopping rule [15].
	StopCriterion = macroiter.StopCriterion
)

// Macro-iteration helpers.
var (
	NewMacroTracker  = macroiter.NewTracker
	NewEpochTracker  = macroiter.NewEpochTracker
	MacroBoundaries  = macroiter.Boundaries
	StrictBoundaries = macroiter.StrictBoundaries
	EpochBoundaries  = macroiter.EpochBoundaries
	EpochStaleness   = macroiter.EpochStaleness
	NewStopCriterion = macroiter.NewStopCriterion
)

// ---------------------------------------------------------------------------
// Engines.

type (
	// ModelConfig configures the mathematical-model engine (Definitions 1/3).
	ModelConfig = core.Config
	// ModelResult reports a model run.
	ModelResult = core.Result
	// Theorem1Report is the inequality (5) validation result.
	Theorem1Report = core.Theorem1Report
	// SimConfig configures the discrete-event simulator.
	SimConfig = des.Config
	// SimResult reports an asynchronous simulated run.
	SimResult = des.Result
	// SimSyncResult reports a barrier-synchronous simulated run.
	SimSyncResult = des.SyncResult
	// ConcurrentConfig configures the goroutine runtime.
	ConcurrentConfig = runtime.Config
	// ConcurrentResult reports a goroutine run.
	ConcurrentResult = runtime.Result
	// DistResult reports a distributed TCP run.
	DistResult = dist.Result
	// DistFault configures the TCP engine's per-link fault injection.
	DistFault = dist.Fault
	// CostFunc models per-phase compute durations.
	CostFunc = des.CostFunc
	// LatencyFunc models link latencies.
	LatencyFunc = des.LatencyFunc
)

// BoxReport is the nested level-set ("boxes") validation result of the
// General Convergence Theorem structure (Section III).
type BoxReport = core.BoxReport

// Engine helpers. (The Run* entry points are deprecated shims over Solve;
// see deprecated.go.)
var (
	CheckTheorem1          = core.CheckTheorem1
	RunWithComponentErrors = core.RunWithComponentErrors
	CheckBoxes             = core.CheckBoxes

	UniformCost       = des.UniformCost
	HeterogeneousCost = des.HeterogeneousCost
	FixedLatency      = des.FixedLatency
	JitterLatency     = des.JitterLatency
	ChainNeighbors    = des.ChainNeighbors
)

// ---------------------------------------------------------------------------
// Workloads.

type (
	// Regression is a synthetic linear-regression problem.
	Regression = mldata.Regression
	// RegressionConfig controls generation.
	RegressionConfig = mldata.RegressionConfig
	// Classification is a synthetic binary classification problem.
	Classification = mldata.Classification
	// Logistic is the regularized logistic loss (Smooth).
	Logistic = mldata.Logistic
	// FlowNetwork is a convex separable network flow instance.
	FlowNetwork = netflow.Network
	// FlowArc is one arc with quadratic cost.
	FlowArc = netflow.Arc
	// FlowRelaxOp is the per-node dual relaxation operator of [6].
	FlowRelaxOp = netflow.RelaxOp
	// ObstacleProblem is the discretized obstacle problem of [26].
	ObstacleProblem = obstacle.Problem
	// RoutingGraph is a directed graph for Bellman-Ford routing.
	RoutingGraph = sssp.Graph
	// BellmanFordOp is the asynchronous distance-vector operator.
	BellmanFordOp = sssp.BellmanFordOp
)

// Workload constructors.
var (
	NewRegression     = mldata.NewRegression
	NewClassification = mldata.NewClassification
	NewLogistic       = mldata.NewLogistic

	NewFlowNetwork = netflow.New
	FlowGrid       = netflow.Grid
	FlowRandom     = netflow.Random
	NewFlowRelaxOp = netflow.NewRelaxOp

	NewObstacle      = obstacle.New
	ObstacleMembrane = obstacle.Membrane

	NewRoutingGraph  = sssp.NewGraph
	RandomGraph      = sssp.RandomGraph
	GridGraph        = sssp.GridGraph
	NewBellmanFordOp = sssp.NewBellmanFordOp
)

// ---------------------------------------------------------------------------
// Second-order operators ([25]) and multigrid smoothers ([5]).

type (
	// HessianProvider exposes second-order information for Newton-type
	// operators.
	HessianProvider = newton.HessianProvider
	// QuadraticHessian adapts Quadratic to HessianProvider.
	QuadraticHessian = newton.QuadraticHessian
	// DiagNewton is the modified Newton operator with diagonal curvature.
	DiagNewton = newton.DiagNewton
	// BlockNewton performs exact block Newton steps.
	BlockNewton = newton.BlockNewton
	// Multisplitting combines overlapping block-Newton solves.
	Multisplitting = newton.Multisplitting
	// MGSolver is the 2-D Poisson multigrid solver with asynchronous
	// (chaotic) smoothing.
	MGSolver = multigrid.Solver
	// MGSmoother selects the multigrid relaxation scheme.
	MGSmoother = multigrid.Smoother
)

// Newton/multigrid constructors and constants.
var (
	NewDiagNewton          = newton.NewDiagNewton
	NewBlockNewton         = newton.NewBlockNewton
	NewMultisplitting      = newton.NewMultisplitting
	NewLeastSquaresHessian = newton.NewLeastSquaresHessian
	NewMGSolver            = multigrid.NewSolver
	PoissonRHS             = multigrid.PoissonRHS
	MeanConvergenceFactor  = multigrid.MeanConvergenceFactor
	SmootherJacobi         = multigrid.SmootherJacobi
	SmootherChaotic        = multigrid.SmootherChaotic
)

// ---------------------------------------------------------------------------
// Reporting, tracing and numeric helpers.

type (
	// Table is an aligned text table for experiment output.
	Table = metrics.Table
	// TraceLog records update phases and messages.
	TraceLog = trace.Log
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
	// RNG is the deterministic random generator used across the library.
	RNG = vec.RNG
	// Dense is a row-major dense matrix.
	Dense = vec.Dense
	// CSR is a compressed sparse row matrix.
	CSR = vec.CSR
)

// Reporting and numeric helpers.
var (
	NewTable           = metrics.NewTable
	Speedup            = metrics.Speedup
	Efficiency         = metrics.Efficiency
	FitContractionRate = metrics.FitContractionRate

	RenderGantt   = trace.RenderGantt
	WriteTraceCSV = trace.WriteCSV

	NewRNG          = vec.NewRNG
	NewDense        = vec.NewDense
	DenseFromRows   = vec.DenseFromRows
	NewCSR          = vec.NewCSR
	DistInf         = vec.DistInf
	Dist2           = vec.Dist2
	WeightedMaxNorm = vec.WeightedMaxNorm
)
