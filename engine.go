package repro

// Engines: the interchangeable execution backends behind Solve. Each one
// adapts an internal engine package to the common Spec/Report contract.
//
// Per-engine contract (which Spec knobs are honoured):
//
//   - EngineModel   — the mathematical model of Definitions 1 and 3
//     (internal/core): Problem, Delay, Steering, Theta,
//     ValidateConstraint3, Workers/WorkerOf (epoch bookkeeping), Tol,
//     MaxIter, ResidualEvery.
//   - EngineSim     — the free-running asynchronous discrete-event
//     simulator (internal/des): Problem, Flexible, Workers, Cost, Latency,
//     DropProb, ApplyStale, Neighbors, Seed, Trace, Tol, MaxUpdates,
//     MaxTime.
//   - EngineSimSync — the barrier-synchronous simulated baseline
//     (internal/des): Problem, Workers, Cost, Latency, Seed, Tol,
//     MaxUpdates, MaxTime.
//   - EngineShared  — goroutines over per-coordinate atomic shared memory
//     (internal/runtime): Problem (Op, X0), Flexible, Workers, Tol,
//     SweepsBelowTol, MaxUpdates/MaxUpdatesPerWorker.
//   - EngineMessage — goroutines over lossy buffered channels
//     (internal/runtime): Problem (Op, X0), Workers, Tol, SweepsBelowTol,
//     MaxUpdates/MaxUpdatesPerWorker.
//   - EngineDist    — multi-worker engine over real TCP sockets with
//     per-link fault injection (internal/dist): Problem (Op, X0), Workers,
//     Topology ("star" relay or "mesh" worker-to-worker links),
//     DeltaThreshold (flexible communication on the wire), DropProb,
//     ReorderProb, MaxLinkDelay, Seed, Tol, SweepsBelowTol,
//     MaxUpdates/MaxUpdatesPerWorker, and the elasticity group
//     HeartbeatEvery/CheckpointEvery/MaxRejoinWait/CheckpointPath
//     (worker-churn survival; see WithElastic).
//
// Knobs outside an engine's list are ignored, so one Spec can be re-run
// across engines unchanged. The simulated engines stop on the max-norm
// error to XStar; when Tol is set and XStar is omitted they first compute a
// synchronous reference solution (see ensureReference).
//
// The three concurrent engines (shared, message, dist) decide termination
// with the same two-phase double-collect quiescence protocol
// (internal/runtime, quiescence.go): stop is broadcast only after two
// identical observations of "every worker passive, nothing in flight",
// taken around an optional re-certification.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/operators"
	"repro/internal/runtime"
	"repro/internal/vec"
)

// Engine executes a Spec under one regime of the paper's asynchronous
// iteration scheme.
type Engine interface {
	// Name is the stable identifier used by EngineByName and CLI flags.
	Name() string
	// Solve runs the iteration and assembles the unified Report.
	Solve(spec Spec) (*Report, error)
}

// The built-in engines.
var (
	// EngineModel executes the paper's mathematical model (Definitions 1
	// and 3) deterministically with explicit steering and delay labels.
	EngineModel Engine = modelEngine{}
	// EngineSim executes the free-running asynchronous discrete-event
	// simulation of heterogeneous workers and lossy/reordering links.
	EngineSim Engine = simEngine{}
	// EngineSimSync executes the barrier-synchronous simulated baseline.
	EngineSimSync Engine = simSyncEngine{}
	// EngineShared executes real goroutines over atomic shared memory.
	EngineShared Engine = sharedEngine{}
	// EngineMessage executes real goroutines over lossy message channels.
	EngineMessage Engine = messageEngine{}
	// EngineDist executes real TCP workers through a fault-injecting
	// coordinator (localhost by default; see internal/dist and the
	// asyncsolve dist-coordinator / dist-worker subcommands for
	// multi-process deployment).
	EngineDist Engine = distEngine{}
)

// Engines returns the built-in engines in presentation order.
func Engines() []Engine {
	return []Engine{EngineModel, EngineSim, EngineSimSync, EngineShared, EngineMessage, EngineDist}
}

// EngineByName resolves an engine identifier ("model", "sim", "simsync",
// "shared", "message", "dist"); a few aliases are accepted.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "model", "math":
		return EngineModel, nil
	case "sim", "des", "async":
		return EngineSim, nil
	case "simsync", "sim-sync", "sync":
		return EngineSimSync, nil
	case "shared", "shm":
		return EngineShared, nil
	case "message", "msg", "channel":
		return EngineMessage, nil
	case "dist", "tcp":
		return EngineDist, nil
	}
	return nil, fmt.Errorf("repro: unknown engine %q (want model | sim | simsync | shared | message | dist)", name)
}

// defaultWorkers is the processor count used by the worker-based engines
// when Spec.Workers is zero.
const defaultWorkers = 4

func (s Spec) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return defaultWorkers
}

// done returns the cancellation channel of Spec.Ctx (nil when no context is
// attached, which the engines treat as "never cancelled").
func (s Spec) done() <-chan struct{} {
	if s.Ctx == nil {
		return nil
	}
	return s.Ctx.Done()
}

// ctxErr is the error a cancelled solve returns: the context's own error
// when one is attached, context.Canceled as the fallback.
func (s Spec) ctxErr() error {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}

// ensureReference fills in spec.XStar with a synchronous reference solution
// when an engine needs it for error-based stopping. The reference is solved
// an order of magnitude tighter than the requested tolerance.
func ensureReference(spec *Spec) error {
	if spec.Tol <= 0 || spec.XStar != nil {
		return nil
	}
	refTol := spec.Tol / 10
	if refTol < 1e-14 {
		refTol = 1e-14
	}
	x0 := spec.X0
	if x0 == nil {
		x0 = make([]float64, spec.Op.Dim())
	}
	xstar, ok := operators.FixedPoint(spec.Op, x0, refTol, 4000000)
	if !ok {
		return errors.New("repro: engine stops on the error to XStar and the synchronous reference solve did not converge; provide Spec.Problem.XStar")
	}
	spec.XStar = xstar
	return nil
}

// blockOwner maps components to contiguous block owners, the partition the
// worker-based engines use.
func blockOwner(n, workers int) (func(i int) int, int) {
	blocks := vec.Blocks(n, workers)
	owner := make([]int, n)
	for w, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			owner[i] = w
		}
	}
	return func(i int) int { return owner[i] }, len(blocks)
}

// ---------------------------------------------------------------------------
// Model engine.

type modelEngine struct{}

func (modelEngine) Name() string { return "model" }

func (modelEngine) Solve(spec Spec) (*Report, error) {
	cfg := core.Config{
		Op:               spec.Op,
		Steering:         spec.Steering,
		Delay:            spec.Delay,
		X0:               spec.X0,
		Theta:            spec.Theta,
		MaxIter:          spec.MaxIter,
		Tol:              spec.Tol,
		XStar:            spec.XStar,
		Weights:          spec.Weights,
		WorkerOf:         spec.WorkerOf,
		Workers:          spec.Workers,
		ResidualEvery:    spec.ResidualEvery,
		CheckConstraint3: spec.ValidateConstraint3,
		Scratch:          spec.Scratch.modelScratch(),
		Tuning:           spec.Tuning.operatorTuning(),
		Done:             spec.done(),
		Progress:         spec.Progress.counter(),
	}
	// Unified Workers semantics: a machine count without an explicit
	// component-to-machine map means the same contiguous block partition
	// the other engines use.
	if cfg.WorkerOf == nil && spec.Workers > 0 {
		cfg.WorkerOf, cfg.Workers = blockOwner(spec.Op.Dim(), spec.Workers)
	}
	r, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	if r.Cancelled {
		return nil, spec.ctxErr()
	}
	rep := &Report{
		Engine:           "model",
		X:                r.X,
		Converged:        r.Converged,
		Iterations:       r.Iterations,
		Updates:          r.Updates,
		FinalResidual:    r.FinalResidual,
		Errors:           r.Errors,
		Boundaries:       r.Boundaries,
		StrictBoundaries: r.StrictBoundaries,
		Epochs:           r.Epochs,
		Records:          r.Records,
		model:            r,
	}
	rep.finish(spec)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Asynchronous discrete-event simulator.

type simEngine struct{}

func (simEngine) Name() string { return "sim" }

func (s Spec) desConfig() des.Config {
	return des.Config{
		Op:         s.Op,
		Workers:    s.workers(),
		X0:         s.X0,
		XStar:      s.XStar,
		Tol:        s.Tol,
		MaxUpdates: s.MaxUpdates,
		MaxTime:    s.MaxTime,
		Cost:       s.Cost,
		Latency:    s.Latency,
		DropProb:   s.DropProb,
		Flexible:   s.Flexible,
		ApplyStale: s.ApplyStale,
		Neighbors:  s.Neighbors,
		Seed:       s.Seed,
		Trace:      s.Trace,
		Scratches:  s.Scratch.workerScratches(s.workers()),
		Tuning:     s.Tuning.operatorTuning(),
		Done:       s.done(),
		Progress:   s.Progress.counter(),
	}
}

func (simEngine) Solve(spec Spec) (*Report, error) {
	if err := ensureReference(&spec); err != nil {
		return nil, err
	}
	r, err := des.Run(spec.desConfig())
	if err != nil {
		return nil, err
	}
	if r.Cancelled {
		return nil, spec.ctxErr()
	}
	rep := &Report{
		Engine:           "sim",
		X:                r.X,
		Converged:        r.Converged,
		Iterations:       r.Updates,
		Updates:          r.Updates,
		FinalError:       r.FinalError,
		ErrorTrace:       r.ErrorTrace,
		Boundaries:       r.Boundaries,
		StrictBoundaries: r.StrictBoundaries,
		Epochs:           r.Epochs,
		Records:          r.Records,
		UpdatesPerWorker: r.UpdatesPerWorker,
		MessagesSent:     int64(r.MessagesSent),
		MessagesDropped:  int64(r.MessagesDropped),
		MessagesStale:    int64(r.MessagesStale),
		Time:             r.Time,
		sim:              r,
	}
	rep.finish(spec)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Barrier-synchronous simulated baseline.

type simSyncEngine struct{}

func (simSyncEngine) Name() string { return "simsync" }

func (simSyncEngine) Solve(spec Spec) (*Report, error) {
	if err := ensureReference(&spec); err != nil {
		return nil, err
	}
	r, err := des.RunSync(spec.desConfig())
	if err != nil {
		return nil, err
	}
	if r.Cancelled {
		return nil, spec.ctxErr()
	}
	rep := &Report{
		Engine:     "simsync",
		X:          r.X,
		Converged:  r.Converged,
		Iterations: r.Rounds,
		Updates:    r.Rounds * len(r.ComputeTime),
		FinalError: r.FinalError,
		ErrorTrace: r.ErrorTrace,
		Records:    r.Records,
		Time:       r.Time,
		simSync:    r,
	}
	rep.finish(spec)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Goroutine engines.

func (s Spec) runtimeConfig() runtime.Config {
	maxPerWorker := s.MaxUpdatesPerWorker
	if maxPerWorker <= 0 && s.MaxUpdates > 0 {
		// Divide by the worker count the runtime will actually use (it
		// clamps to the dimension), so the total budget stays MaxUpdates.
		w := s.workers()
		if n := s.Op.Dim(); w > n {
			w = n
		}
		maxPerWorker = s.MaxUpdates / w
		if maxPerWorker < 1 {
			maxPerWorker = 1
		}
	}
	return runtime.Config{
		Op:                  s.Op,
		Workers:             s.workers(),
		X0:                  s.X0,
		Tol:                 s.Tol,
		SweepsBelowTol:      s.SweepsBelowTol,
		MaxUpdatesPerWorker: maxPerWorker,
		Flexible:            s.Flexible,
		Scratches:           s.Scratch.workerScratches(s.workers()),
		Tuning:              s.Tuning.operatorTuning(),
		Done:                s.done(),
		Progress:            s.Progress.counter(),
	}
}

func concurrentReport(engine string, r *runtime.Result, spec Spec) *Report {
	updates := 0
	for _, u := range r.UpdatesPerWorker {
		updates += u
	}
	rep := &Report{
		Engine:           engine,
		X:                r.X,
		Converged:        r.Converged,
		Updates:          updates,
		UpdatesPerWorker: r.UpdatesPerWorker,
		MessagesSent:     r.MessagesSent,
		MessagesDropped:  r.MessagesDropped,
		Elapsed:          r.Elapsed,
		concurrent:       r,
	}
	rep.finish(spec)
	return rep
}

type sharedEngine struct{}

func (sharedEngine) Name() string { return "shared" }

func (sharedEngine) Solve(spec Spec) (*Report, error) {
	r, err := runtime.RunShared(spec.runtimeConfig())
	if err != nil {
		return nil, err
	}
	// A run that certified convergence before the cancel landed is a
	// result; only a genuinely cut-short run reports the context error.
	if r.Cancelled && !r.Converged {
		return nil, spec.ctxErr()
	}
	return concurrentReport("shared", r, spec), nil
}

type messageEngine struct{}

func (messageEngine) Name() string { return "message" }

func (messageEngine) Solve(spec Spec) (*Report, error) {
	r, err := runtime.RunMessage(spec.runtimeConfig())
	if err != nil {
		return nil, err
	}
	if r.Cancelled && !r.Converged {
		return nil, spec.ctxErr()
	}
	return concurrentReport("message", r, spec), nil
}

// ---------------------------------------------------------------------------
// Distributed TCP engine.

type distEngine struct{}

func (distEngine) Name() string { return "dist" }

func (distEngine) Solve(spec Spec) (*Report, error) {
	rc := spec.runtimeConfig() // reuse the per-worker budget derivation
	r, err := dist.Run(dist.Config{
		Op:                  spec.Op,
		Workers:             rc.Workers,
		Topology:            spec.Topology,
		X0:                  spec.X0,
		Tol:                 spec.Tol,
		SweepsBelowTol:      spec.SweepsBelowTol,
		MaxUpdatesPerWorker: rc.MaxUpdatesPerWorker,
		DeltaThreshold:      spec.DeltaThreshold,
		Fault: dist.Fault{
			DropProb:    spec.DropProb,
			ReorderProb: spec.ReorderProb,
			MaxDelay:    spec.MaxLinkDelay,
			Seed:        spec.Seed,
		},
		Scratches: rc.Scratches,
		Tuning:    rc.Tuning,
		Elastic: dist.Elastic{
			HeartbeatEvery:  spec.HeartbeatEvery,
			CheckpointEvery: spec.CheckpointEvery,
			MaxRejoinWait:   spec.MaxRejoinWait,
			CheckpointPath:  spec.CheckpointPath,
		},
	})
	if err != nil {
		return nil, err
	}
	updates := 0
	for _, u := range r.UpdatesPerWorker {
		updates += u
	}
	rep := &Report{
		Engine:            "dist",
		X:                 r.X,
		Converged:         r.Converged,
		Updates:           updates,
		UpdatesPerWorker:  r.UpdatesPerWorker,
		MessagesSent:      r.MessagesSent,
		MessagesDropped:   r.MessagesDropped,
		MessagesStale:     r.MessagesStale,
		MessagesReordered: r.MessagesReordered,
		MessagesDuplicate: r.MessagesDuplicate,
		BytesSent:         r.BytesSent,
		BytesReceived:     r.BytesReceived,
		WorkersLost:       r.WorkersLost,
		WorkersRejoined:   r.WorkersRejoined,
		Resharding:        r.Resharding,
		Elapsed:           r.Elapsed,
		dist:              r,
	}
	rep.finish(spec)
	return rep, nil
}
