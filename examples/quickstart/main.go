// Command quickstart is the smallest complete use of the library: solve a
// lasso problem (least squares + L1) with the paper's approximate
// gradient-type operator (Definition 4) under a totally asynchronous
// iteration with bounded random delays, and verify the Theorem 1 bound.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A synthetic sparse regression problem with controlled smoothness
	//    L, strong convexity mu, and a diagonally dominant Hessian (so the
	//    operator contracts in the max norm, as Theorem 1 requires).
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N:        32,
		Coupling: 0.3,
		Sparsity: 0.5,
		Noise:    0.01,
		Reg:      0.1,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	f := reg.Smooth()
	l, mu := f.LMu()
	gamma := repro.MaxStep(f) // the paper's fixed step 2/(mu+L)
	fmt.Printf("problem: n=%d  L=%.3f  mu=%.3f  gamma=%.4f\n", f.Dim(), l, mu, gamma)

	// 2. The approximate gradient-type operator G of Definition 4.
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, gamma)

	// 3. Reference fixed point (synchronous), for error tracking.
	ystar, ok := repro.FixedPoint(op, make([]float64, f.Dim()), 1e-13, 500000)
	if !ok {
		log.Fatal("reference solve did not converge")
	}

	// 4. Asynchronous iteration with flexible communication: bounded random
	//    delays (chaotic relaxation regime) and reads blended 50% toward
	//    the freshest partial state. One Solve call; the engine option
	//    switches the execution regime without touching the spec.
	res, err := repro.Solve(repro.NewSpec(op),
		repro.WithEngine(repro.EngineModel),
		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
		repro.WithTheta(0.5),
		repro.WithXStar(ystar),
		repro.WithTol(1e-10),
		repro.WithMaxIter(500000),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async run: converged=%v iterations=%d macro-iterations=%d epochs=%d\n",
		res.Converged, res.Iterations, len(res.Boundaries), len(res.Epochs))

	// 5. Check the paper's inequality (5) against the measured errors via
	//    the model engine's typed detail.
	detail, _ := res.ModelDetail()
	rho := repro.TheoreticalRho(f, gamma)
	rep, err := repro.CheckTheorem1(detail, rho)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theorem 1: holds=%v  worst measured/bound ratio=%.3g\n", rep.Holds, rep.WorstRatio)
	fmt.Printf("per-macro-iteration squared-error rate: measured=%.4f  bound=%.4f (1-rho)\n",
		rep.MeasuredRatePerK, rep.BoundRatePerK)

	// 6. Recover the primal lasso solution and report model quality.
	x := op.Primal(res.X)
	fmt.Printf("lasso MSE=%.5f (true-parameter MSE=%.5f)\n", reg.MSE(x), reg.MSE(reg.XTrue))
}
