// Command lasso trains an L1-regularized regression model three ways —
// synchronous Jacobi sweeps, plain asynchronous iteration, and asynchronous
// iteration with flexible communication — on the virtual-time simulator
// with heterogeneous workers, and prints the comparison table the paper's
// Section II/IV claims predict: async beats sync under load imbalance, and
// flexible communication further reduces time to convergence. It finishes
// with a real goroutine run (shared-memory transport).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N:        48,
		Coupling: 0.3,
		Sparsity: 0.6,
		Noise:    0.02,
		Reg:      0.05,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	f := reg.Smooth()
	gamma := repro.MaxStep(f)
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, gamma)

	xstar, ok := repro.FixedPoint(op, make([]float64, f.Dim()), 1e-13, 1000000)
	if !ok {
		log.Fatal("reference solve failed")
	}
	x0 := make([]float64, f.Dim())
	for i := range x0 {
		x0[i] = 5
	}

	// Heterogeneous cluster: one straggler 5x slower than the rest.
	workers := 4
	costs := []float64{1, 1, 1, 5}
	tol := 1e-8

	// One spec, three engines: the barrier-synchronous baseline, the
	// free-running asynchronous simulator, and the same with flexible
	// communication — switched by Solve options.
	base := repro.NewSpec(op,
		repro.WithX0(x0), repro.WithXStar(xstar), repro.WithTol(tol),
		repro.WithMaxUpdates(5000000),
		repro.WithWorkers(workers),
		repro.WithCost(repro.HeterogeneousCost(costs)),
		repro.WithLatency(repro.FixedLatency(0.3)),
		repro.WithSeed(11),
	)

	table := repro.NewTable(
		"lasso training on a 4-worker cluster with a 5x straggler (virtual time)",
		"mode", "virtual time", "updates", "speedup vs sync")

	syncRes, err := repro.Solve(base, repro.WithEngine(repro.EngineSimSync))
	if err != nil {
		log.Fatal(err)
	}
	table.AddRow("synchronous (barrier)", syncRes.Time, syncRes.Updates, 1.0)

	asyncRes, err := repro.Solve(base, repro.WithEngine(repro.EngineSim))
	if err != nil {
		log.Fatal(err)
	}
	table.AddRow("asynchronous", asyncRes.Time, asyncRes.Updates,
		repro.Speedup(syncRes.Time, asyncRes.Time))

	flexRes, err := repro.Solve(base, repro.WithEngine(repro.EngineSim),
		repro.WithFlexible(repro.UniformFlex(4)))
	if err != nil {
		log.Fatal(err)
	}
	table.AddRow("async + flexible comm", flexRes.Time, flexRes.Updates,
		repro.Speedup(syncRes.Time, flexRes.Time))

	fmt.Print(table)
	syncDetail, _ := syncRes.SimSyncDetail()
	fmt.Printf("\nsync idle time per worker: %.1f (fast) vs %.1f (straggler)\n",
		syncDetail.IdleTime[0], syncDetail.IdleTime[3])

	// Real concurrency: goroutines over atomic shared memory — the same
	// spec again, on the shared-memory engine.
	conc, err := repro.Solve(base, repro.WithEngine(repro.EngineShared),
		repro.WithTol(1e-10),
		repro.WithMaxUpdatesPerWorker(1<<20),
		repro.WithFlexible(repro.UniformFlex(2)))
	if err != nil {
		log.Fatal(err)
	}
	x := op.Primal(conc.X)
	fmt.Printf("\ngoroutine run: converged=%v in %v; lasso MSE=%.5f (truth %.5f)\n",
		conc.Converged, conc.Elapsed, reg.MSE(x), reg.MSE(reg.XTrue))

	zeros := 0
	for _, v := range x {
		if v == 0 {
			zeros++
		}
	}
	fmt.Printf("sparsity: %d/%d coefficients exactly zero\n", zeros, len(x))
}
