// Command obstacle solves the discretized obstacle problem (the numerical
// simulation workload of [26]) by asynchronous projected relaxation on the
// virtual-time simulator, and reproduces that paper's data-exchange
// frequency study: how often sub-domain workers exchange boundary data
// trades extra communication against staler iterates.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	p := repro.ObstacleMembrane(24)
	fmt.Printf("obstacle problem: %dx%d interior grid (%d unknowns)\n", p.N, p.N, p.Dim())

	// Reference solution by synchronous projected Jacobi.
	ustar, ok := repro.FixedPoint(p, p.Supersolution(), 1e-11, 2000000)
	if !ok {
		log.Fatal("reference solve did not converge")
	}
	rep := p.CheckComplementarity(ustar)
	fmt.Printf("reference KKT: min gap %.2e, worst residual %.2e, slack %.2e\n",
		rep.MinGap, rep.WorstResidual, rep.WorstSlackProduct)
	fmt.Printf("contact set size: %d of %d nodes\n\n",
		len(p.ContactSet(ustar, 1e-9)), p.Dim())

	// Exchange-frequency study ([26]): a worker exchanges data only every
	// q-th phase; we model rarer exchanges as proportionally larger message
	// latency with the same per-phase compute. Flexible communication
	// (partial updates) is shown alongside.
	table := repro.NewTable(
		"data-exchange frequency study (async projected relaxation, 4 workers, virtual time)",
		"exchange period q", "plain async time", "flexible async time")
	for _, q := range []int{1, 2, 4, 8, 16} {
		base := repro.NewSpec(p,
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(4),
			repro.WithX0(p.Supersolution()), repro.WithXStar(ustar),
			repro.WithTol(1e-6), repro.WithMaxUpdates(10000000),
			repro.WithCost(repro.UniformCost(1)),
			repro.WithLatency(repro.FixedLatency(0.4*float64(q))),
			repro.WithSeed(uint64(100+q)),
		)
		plain, err := repro.Solve(base)
		if err != nil {
			log.Fatal(err)
		}
		flex, err := repro.Solve(base, repro.WithFlexible(repro.UniformFlex(2)))
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(q, plain.Time, flex.Time)
	}
	fmt.Print(table)
	fmt.Println("\n(times grow with staleness q; flexible communication softens the penalty)")
}
