// Command networkflow solves a convex separable network flow problem by the
// distributed asynchronous dual relaxation method of Bertsekas and El Baz
// [6]: each node adjusts its own price to zero its conservation imbalance
// given its neighbours' prices. The run is executed both synchronously and
// totally asynchronously (with out-of-order message effects), and the
// resulting flows are verified against the KKT conditions.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 6x6 transport grid: source at the north-west corner, sink at the
	// south-east, capacitated arcs with random quadratic costs.
	net, err := repro.FlowGrid(6, 6, 4.0, 2.5, 0.2, 3)
	if err != nil {
		log.Fatal(err)
	}
	op := repro.NewFlowRelaxOp(net)
	fmt.Printf("network: %d nodes, %d arcs (capacitated), supply +%.1f/-%.1f\n",
		net.NumNodes, len(net.Arcs), net.Supply[0], -net.Supply[net.NumNodes-1])

	// Synchronous reference.
	pstar, ok := repro.FixedPoint(op, make([]float64, net.NumNodes), 1e-12, 200000)
	if !ok {
		log.Fatal("synchronous relaxation did not converge")
	}
	repSync := net.CheckKKT(pstar)

	// Totally asynchronous run: out-of-order label reads with window 16.
	res, err := repro.Solve(repro.NewSpec(op),
		repro.WithSteering(repro.NewCyclic(net.NumNodes)),
		repro.WithDelay(repro.OutOfOrderDelay{W: 16, Seed: 5}),
		repro.WithXStar(pstar),
		repro.WithTol(1e-9),
		repro.WithMaxIter(5000000),
	)
	if err != nil {
		log.Fatal(err)
	}
	repAsync := net.CheckKKT(res.X)

	table := repro.NewTable("dual relaxation for convex network flow",
		"mode", "iterations", "max imbalance", "primal cost")
	table.AddRow("synchronous", "-", repSync.MaxImbalance, repSync.Cost)
	table.AddRow("async (out-of-order)", res.Iterations, repAsync.MaxImbalance, repAsync.Cost)
	fmt.Print(table)

	fmt.Printf("\nmacro-iterations completed: %d (Definition 2), %d (strict)\n",
		len(res.Boundaries), len(res.StrictBoundaries))

	// Show a few optimal flows.
	flows := net.Flows(res.X)
	fmt.Println("\nsample arc flows (first 8 arcs):")
	for k := 0; k < 8 && k < len(flows); k++ {
		a := net.Arcs[k]
		fmt.Printf("  arc %2d->%-2d  flow %+.3f  (capacity [%.1f, %.1f])\n",
			a.From, a.To, flows[k], a.Lo, a.Hi)
	}
}
