// Command figures regenerates the paper's two figures as machine-produced
// execution traces:
//
//	Fig. 1 — parallel/distributed asynchronous iterative algorithm: two
//	         processors at different speeds, numbered updating phases,
//	         communications of labelled updates at phase ends;
//	Fig. 2 — asynchronous iteration with flexible communication: the same
//	         run with partial updates (~~>, the hatched arrows) published
//	         mid-phase.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The schematic two-processor fixed-point problem of the figures:
	// component x1 on P0 (faster), component x2 on P1 (slower).
	a := repro.DenseFromRows([][]float64{
		{0, 0.5},
		{0.5, 0},
	})
	op := repro.NewLinear(a, []float64{1, 1}) // fixed point (2, 2)
	xstar := []float64{2, 2}

	run := func(flex repro.FlexSchedule) *repro.TraceLog {
		lg := &repro.TraceLog{}
		_, err := repro.Solve(repro.NewSpec(op),
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(2),
			repro.WithX0([]float64{10, 10}), repro.WithXStar(xstar),
			repro.WithMaxUpdates(9),
			repro.WithCost(repro.HeterogeneousCost([]float64{1.0, 1.6})),
			repro.WithLatency(repro.FixedLatency(0.25)),
			repro.WithFlexible(flex),
			repro.WithSeed(1),
			repro.WithTrace(lg),
		)
		if err != nil {
			log.Fatal(err)
		}
		return lg
	}

	fmt.Println("Figure 1: parallel or distributed asynchronous iterative algorithm")
	fmt.Println("(rectangles = updating phases labelled by iteration number;")
	fmt.Println(" arrows = communication of updates at phase ends)")
	fmt.Println()
	fmt.Print(repro.RenderGantt(run(repro.NoFlex()), 76))

	fmt.Println()
	fmt.Println("Figure 2: asynchronous iterative algorithm with flexible communication")
	fmt.Println("(~~> = partial updates published mid-phase, the hatched arrows)")
	fmt.Println()
	fmt.Print(repro.RenderGantt(run(repro.UniformFlex(2)), 76))
}
