// Command routing runs the Arpanet scenario the paper recalls in Section
// II: distributed asynchronous Bellman–Ford shortest-path routing ([11] pp.
// 479-480), under unbounded delays and out-of-order message consumption,
// including a link-cost change mid-run. Distances are verified against
// Dijkstra.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g, err := repro.GridGraph(8, 8, 21)
	if err != nil {
		log.Fatal(err)
	}
	op, err := repro.NewBellmanFordOp(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh network: %d routers, %d directed links, source router 0\n",
		g.N, g.NumEdges())

	want := g.Dijkstra(0)
	res, err := repro.Solve(repro.NewSpec(op),
		repro.WithSteering(repro.NewRandomSubset(g.N, 4, 9)),
		repro.WithDelay(repro.SqrtGrowthDelay{}), // Baudet's unbounded-delay regime
		repro.WithX0(op.InitialDistances()),
		repro.WithXStar(want),
		repro.WithTol(1e-12),
		repro.WithMaxIter(5000000),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async Bellman-Ford (unbounded delays): converged=%v in %d iterations, max dev from Dijkstra = %.1e\n",
		res.Converged, res.Iterations, repro.DistInf(res.X, want))

	// A link improves (cost decrease): keep iterating from current state.
	d := res.X
	g.SetWeight(0, 1, 0.1)
	g.SetWeight(1, 0, 0.1)
	want2 := g.Dijkstra(0)
	res2, err := repro.Solve(repro.NewSpec(op),
		repro.WithSteering(repro.NewCyclic(g.N)),
		repro.WithDelay(repro.OutOfOrderDelay{W: 12, Seed: 10}),
		repro.WithX0(d),
		repro.WithXStar(want2),
		repro.WithTol(1e-12),
		repro.WithMaxIter(5000000),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after link improvement: reconverged=%v in %d iterations, max dev = %.1e\n",
		res2.Converged, res2.Iterations, repro.DistInf(res2.X, want2))

	table := repro.NewTable("sample routing distances (router id: distance)",
		"router", "distance", "dijkstra")
	for _, r := range []int{1, 7, 28, 63} {
		table.AddRow(r, res2.X[r], want2[r])
	}
	fmt.Print(table)
}
