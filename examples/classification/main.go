// Command classification trains a regularized logistic-regression
// classifier with asynchronous gradient iterations (Section V's machine
// learning setting) over the real message-passing goroutine runtime —
// distributed workers exchanging parameter blocks over lossy channels with
// the termination detection of [22] — and compares against a synchronous
// reference and a modified-Newton run.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Synthetic near-separable data with 5% label noise.
	data := repro.NewClassification(24, 600, 0.05, 0.1, 17)
	f := repro.NewLogistic(data)
	l, mu := f.LMu()
	gamma := repro.MaxStep(f)
	fmt.Printf("logistic regression: %d features, %d samples, L=%.3f mu=%.3f gamma=%.4f\n",
		f.Dim(), data.A.Rows, l, mu, gamma)

	op := repro.NewGradOp(f, gamma)

	// Synchronous reference.
	xsync, ok := repro.FixedPoint(op, make([]float64, f.Dim()), 1e-9, 200000)
	if !ok {
		log.Fatal("synchronous training did not converge")
	}

	// Distributed asynchronous training: goroutine workers over channels,
	// lossy non-blocking sends, quiescence detection.
	res, err := repro.Solve(repro.NewSpec(op),
		repro.WithEngine(repro.EngineMessage),
		repro.WithWorkers(4),
		repro.WithTol(1e-9),
		repro.WithMaxUpdatesPerWorker(1<<20),
	)
	if err != nil {
		log.Fatal(err)
	}

	table := repro.NewTable("training outcomes",
		"mode", "accuracy", "loss", "param dev from sync")
	table.AddRow("synchronous", data.Accuracy(xsync), f.Value(xsync), 0.0)
	table.AddRow("async message-passing", data.Accuracy(res.X), f.Value(res.X),
		repro.DistInf(res.X, xsync))
	fmt.Print(table)
	fmt.Printf("\nmessage runtime: converged=%v in %v, %d messages (%d dropped)\n",
		res.Converged, res.Elapsed, res.MessagesSent, res.MessagesDropped)
	fmt.Printf("updates per worker: %v\n", res.UpdatesPerWorker)
}
