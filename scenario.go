package repro

// Scenario registry: named builders for the library's workloads, so any
// workload x delay x steering x flexible x engine combination is composable
// by name (CLI: asyncsolve -scenario lasso -engine sim -delay bounded:8).
// Packages may add their own scenarios with RegisterScenario.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mldata"
	"repro/internal/multigrid"
	"repro/internal/netflow"
	"repro/internal/obstacle"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/sssp"
	"repro/internal/vec"
)

// ScenarioInstance is one built workload: a ready-to-Solve Spec plus a
// workload-specific quality report.
type ScenarioInstance struct {
	// Spec is the base specification (problem, sensible stopping
	// defaults); adjust it with Solve options (engine, delay, workers...).
	Spec Spec
	// Describe reports workload-specific solution quality (MSE, KKT
	// imbalance, complementarity, deviation from Dijkstra, ...) for a
	// final iterate. May be nil.
	Describe func(x []float64) string
}

// Scenario is a named workload builder.
type Scenario struct {
	// Name is the registry key (lower-case, unique).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// DefaultN is the problem size used when the caller passes n <= 0.
	DefaultN int
	// Build constructs the workload at size n with the given seed. The
	// tuning knobs are available at build time so builders that make
	// build-time structural choices (e.g. the LeastSquares Gram form via
	// Tuning.GramPrecompute, or sharded precomputation via
	// Tuning.IntraParallelism) can honor them; builders with no such
	// choice simply ignore the argument.
	Build func(n int, seed uint64, t Tuning) (*ScenarioInstance, error)
}

var (
	scenarioMu  sync.RWMutex
	scenarioReg = map[string]Scenario{}
)

// RegisterScenario adds s to the registry. It errors on an empty name, a
// nil builder, or a duplicate registration.
func RegisterScenario(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("repro: RegisterScenario requires a name")
	}
	if s.Build == nil {
		return fmt.Errorf("repro: scenario %q has no builder", s.Name)
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[s.Name]; dup {
		return fmt.Errorf("repro: scenario %q already registered", s.Name)
	}
	scenarioReg[s.Name] = s
	return nil
}

// Scenarios returns all registered scenarios sorted by name.
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarioReg))
	for _, s := range scenarioReg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioByName looks up a registered scenario.
func ScenarioByName(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarioReg[name]
	return s, ok
}

// BuildScenario builds the named scenario at size n (DefaultN when n <= 0)
// with default tuning.
func BuildScenario(name string, n int, seed uint64) (*ScenarioInstance, error) {
	return BuildScenarioTuned(name, n, seed, DefaultTuning())
}

// BuildScenarioTuned builds the named scenario with the given tuning knobs:
// the builder sees them for build-time choices, and the returned Spec
// carries them so the solve runs with the same settings.
func BuildScenarioTuned(name string, n int, seed uint64, t Tuning) (*ScenarioInstance, error) {
	s, ok := ScenarioByName(name)
	if !ok {
		known := make([]string, 0)
		for _, sc := range Scenarios() {
			known = append(known, sc.Name)
		}
		return nil, fmt.Errorf("repro: unknown scenario %q (registered: %s)",
			name, strings.Join(known, " "))
	}
	if n <= 0 {
		n = s.DefaultN
	}
	inst, err := s.Build(n, seed, t)
	if err != nil {
		return nil, err
	}
	inst.Spec.Tuning = t
	return inst, nil
}

func mustRegister(s Scenario) {
	if err := RegisterScenario(s); err != nil {
		panic(err)
	}
}

// ParseDelay parses a delay-model string of the form "name" or
// "name:param": fresh | constant:D | bounded:B | sqrt | log | ooo:W.
// Parameters default to constant:1, bounded:8, ooo:16 and must be >= 1 when
// given — a zero parameter (constant:0, bounded:0, ooo:0) would silently
// degenerate to the fresh model and is rejected instead. The seed feeds the
// randomized models.
func ParseDelay(s string, seed uint64) (DelayModel, error) {
	name, param := s, 0
	hasParam := false
	if k := strings.IndexByte(s, ':'); k >= 0 {
		name = s[:k]
		v, err := strconv.Atoi(s[k+1:])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("repro: bad delay parameter in %q (want an integer >= 1)", s)
		}
		param, hasParam = v, true
	}
	switch name {
	case "fresh":
		if hasParam {
			return nil, fmt.Errorf("repro: delay model fresh takes no parameter (got %q)", s)
		}
		return FreshDelay{}, nil
	case "constant", "const":
		if !hasParam {
			param = 1
		}
		return ConstantDelay{D: param}, nil
	case "bounded", "chaotic":
		if !hasParam {
			param = 8
		}
		return BoundedRandomDelay{B: param, Seed: seed + 1}, nil
	case "sqrt":
		if hasParam {
			return nil, fmt.Errorf("repro: delay model sqrt takes no parameter (got %q)", s)
		}
		return SqrtGrowthDelay{}, nil
	case "log":
		if hasParam {
			return nil, fmt.Errorf("repro: delay model log takes no parameter (got %q)", s)
		}
		return LogGrowthDelay{}, nil
	case "ooo", "outoforder":
		if !hasParam {
			param = 16
		}
		return OutOfOrderDelay{W: param, Seed: seed + 2}, nil
	}
	return nil, fmt.Errorf("repro: unknown delay model %q (want fresh | constant:D | bounded:B | sqrt | log | ooo:W)", s)
}

// ---------------------------------------------------------------------------
// Built-in scenarios.

func init() {
	mustRegister(Scenario{
		Name:     "lasso",
		Summary:  "L1-regularized regression via the Definition 4 backward-forward operator",
		DefaultN: 64,
		Build:    buildLasso,
	})
	mustRegister(Scenario{
		Name:     "ridge",
		Summary:  "ridge regression via the gradient operator on an L-smooth least-squares loss",
		DefaultN: 64,
		Build:    buildRidge,
	})
	mustRegister(Scenario{
		Name:     "logistic",
		Summary:  "regularized logistic-regression training (Section V machine learning setting)",
		DefaultN: 24,
		Build:    buildLogistic,
	})
	mustRegister(Scenario{
		Name:     "netflow",
		Summary:  "convex separable network flow by distributed dual relaxation [6]",
		DefaultN: 6,
		Build:    buildNetflow,
	})
	mustRegister(Scenario{
		Name:     "obstacle",
		Summary:  "discretized obstacle problem by projected relaxation [26]",
		DefaultN: 16,
		Build:    buildObstacle,
	})
	mustRegister(Scenario{
		Name:     "routing",
		Summary:  "asynchronous Bellman-Ford shortest-path routing (Arpanet setting)",
		DefaultN: 64,
		Build:    buildRouting,
	})
	mustRegister(Scenario{
		Name:     "multigrid",
		Summary:  "2-D Poisson fine-grid relaxation, the chaotic smoother workload of [5]",
		DefaultN: 15,
		Build:    buildMultigrid,
	})
}

func buildRegression(n int, seed uint64) (*mldata.Regression, error) {
	return mldata.NewRegression(mldata.RegressionConfig{
		N: n, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: seed,
	})
}

// regressionSmooth builds the least-squares smooth part honoring the
// build-time tuning knobs: GramPrecompute=false selects the lean residual
// form, IntraParallelism > 1 shards the (bit-identical) Gram assembly.
func regressionSmooth(reg *mldata.Regression, t Tuning) *operators.LeastSquares {
	return reg.SmoothTuned(!t.GramPrecomputed(), t.IntraParallelism)
}

func buildLasso(n int, seed uint64, t Tuning) (*ScenarioInstance, error) {
	reg, err := buildRegression(n, seed)
	if err != nil {
		return nil, err
	}
	f := regressionSmooth(reg, t)
	op := operators.NewProxGradBF(f, prox.L1{Lambda: 0.02}, operators.MaxStep(f))
	return &ScenarioInstance{
		Spec: NewSpec(op, WithTol(1e-9), WithMaxIter(5000000), WithMaxUpdates(5000000)),
		Describe: func(x []float64) string {
			xp := op.Primal(x)
			return fmt.Sprintf("lasso MSE: %.6f (truth %.6f)", reg.MSE(xp), reg.MSE(reg.XTrue))
		},
	}, nil
}

func buildRidge(n int, seed uint64, t Tuning) (*ScenarioInstance, error) {
	reg, err := buildRegression(n, seed)
	if err != nil {
		return nil, err
	}
	f := regressionSmooth(reg, t)
	op := operators.NewGradOp(f, operators.MaxStep(f))
	return &ScenarioInstance{
		Spec: NewSpec(op, WithTol(1e-9), WithMaxIter(5000000), WithMaxUpdates(5000000)),
		Describe: func(x []float64) string {
			return fmt.Sprintf("ridge MSE: %.6f (truth %.6f)", reg.MSE(x), reg.MSE(reg.XTrue))
		},
	}, nil
}

func buildLogistic(n int, seed uint64, _ Tuning) (*ScenarioInstance, error) {
	data := mldata.NewClassification(n, 25*n, 0.05, 0.1, seed)
	f := mldata.NewLogistic(data)
	op := operators.NewGradOp(f, operators.MaxStep(f))
	return &ScenarioInstance{
		Spec: NewSpec(op, WithTol(1e-8), WithMaxIter(5000000), WithMaxUpdates(5000000)),
		Describe: func(x []float64) string {
			return fmt.Sprintf("logistic: accuracy %.4f, loss %.6f", data.Accuracy(x), f.Value(x))
		},
	}, nil
}

func buildNetflow(n int, seed uint64, _ Tuning) (*ScenarioInstance, error) {
	side := n
	if side < 2 {
		side = 2
	}
	if side > 12 {
		side = 12
	}
	net, err := netflow.Grid(side, side, 4.0, 2.5, 0.2, seed)
	if err != nil {
		return nil, err
	}
	op := netflow.NewRelaxOp(net)
	return &ScenarioInstance{
		Spec: NewSpec(op, WithTol(1e-9), WithMaxIter(5000000), WithMaxUpdates(5000000)),
		Describe: func(x []float64) string {
			rep := net.CheckKKT(x)
			return fmt.Sprintf("network flow: max imbalance %.2e, primal cost %.4f",
				rep.MaxImbalance, rep.Cost)
		},
	}, nil
}

func buildObstacle(n int, seed uint64, _ Tuning) (*ScenarioInstance, error) {
	side := n
	if side < 4 {
		side = 4
	}
	if side > 128 {
		side = 128
	}
	p := obstacle.Membrane(side)
	return &ScenarioInstance{
		Spec: NewSpec(p, WithX0(p.Supersolution()), WithTol(1e-9),
			WithMaxIter(10000000), WithMaxUpdates(10000000)),
		Describe: func(x []float64) string {
			rep := p.CheckComplementarity(x)
			return fmt.Sprintf("obstacle: min gap %.2e, worst residual %.2e, slack %.2e, contact %d/%d",
				rep.MinGap, rep.WorstResidual, rep.WorstSlackProduct,
				len(p.ContactSet(x, 1e-8)), p.Dim())
		},
	}, nil
}

func buildRouting(n int, seed uint64, _ Tuning) (*ScenarioInstance, error) {
	g, err := sssp.RandomGraph(n, 3*n, seed)
	if err != nil {
		return nil, err
	}
	op, err := sssp.NewBellmanFordOp(g, 0)
	if err != nil {
		return nil, err
	}
	want := g.Dijkstra(0)
	return &ScenarioInstance{
		Spec: NewSpec(op, WithX0(op.InitialDistances()), WithXStar(want),
			WithTol(1e-10), WithMaxIter(8000000), WithMaxUpdates(8000000)),
		Describe: func(x []float64) string {
			dev := 0.0
			for i := range want {
				if d := math.Abs(x[i] - want[i]); d > dev {
					dev = d
				}
			}
			return fmt.Sprintf("routing: max deviation from Dijkstra %.2e", dev)
		},
	}, nil
}

// buildMultigrid assembles the damped-Jacobi relaxation operator of the 2-D
// Poisson fine grid — the smoothing iteration the multigrid workload of [5]
// runs chaotically. The 5-point stencil gives the sparse fixed-point map
// x_i <- (f_i + sum of neighbours)/4 with f = h^2 * load.
func buildMultigrid(n int, seed uint64, _ Tuning) (*ScenarioInstance, error) {
	if n < 3 {
		n = 3
	}
	if n > 63 {
		n = 63
	}
	f := multigrid.PoissonRHS(n, func(x, y float64) float64 { return 1 + x*y })
	dim := n * n
	idx := func(r, c int) int { return r*n + c }
	var entries []vec.COOEntry
	b := make([]float64, dim)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := idx(r, c)
			b[i] = f[i] / 4
			if r > 0 {
				entries = append(entries, vec.COOEntry{Row: i, Col: idx(r-1, c), Val: 0.25})
			}
			if r < n-1 {
				entries = append(entries, vec.COOEntry{Row: i, Col: idx(r+1, c), Val: 0.25})
			}
			if c > 0 {
				entries = append(entries, vec.COOEntry{Row: i, Col: idx(r, c-1), Val: 0.25})
			}
			if c < n-1 {
				entries = append(entries, vec.COOEntry{Row: i, Col: idx(r, c+1), Val: 0.25})
			}
		}
	}
	op := operators.NewSparseLinear(vec.NewCSR(dim, dim, entries), b)
	_ = seed
	return &ScenarioInstance{
		Spec: NewSpec(op, WithTol(1e-8), WithMaxIter(20000000), WithMaxUpdates(20000000)),
		Describe: func(x []float64) string {
			return fmt.Sprintf("poisson grid %dx%d: fixed-point residual %.2e",
				n, n, operators.Residual(op, x))
		},
	}, nil
}
