package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"strconv"
	"time"
)

// The knob table: every tuning and fault knob is declared exactly ONCE
// here — CLI flag name, server JSON field, kind, default, help and its
// application to a Spec. cmd/asyncsolve registers flags from this table,
// the server decodes /v1/solve job fields from it, and the load generator
// marshals them back — so the three surfaces cannot drift. Core job fields
// (scenario, engine, n, ...) are not knobs and stay with their owners.

// KnobKind is the value type of a knob.
type KnobKind int

const (
	KnobInt KnobKind = iota
	KnobFloat
	KnobBool
	KnobDuration
	KnobString
)

// Knob is one tuning or fault knob: its name on every surface, its type and
// default, and how a string-form value applies to a Spec.
type Knob struct {
	// Flag is the CLI flag name (asyncsolve, dist-coordinator, load).
	Flag string
	// JSON is the field name in the server's /v1/solve job request.
	JSON string
	// Group is "tuning", "faults" or "elastic".
	Group string
	// Kind is the value type; it decides flag-value and JSON syntax.
	Kind KnobKind
	// Default is the default in flag syntax, for help text; a knob left at
	// its default is simply not applied.
	Default string
	// Help is the one-line flag/field description.
	Help string

	apply func(s *Spec, value string) error
}

// KnobTable returns the full knob table (shared backing array; treat it as
// read-only).
func KnobTable() []Knob { return knobTable }

var knobTable = []Knob{
	{
		Flag: "block-size", JSON: "block_size", Group: "tuning", Kind: KnobInt, Default: "0",
		Help:  "column-tile width for dense row-slab matvecs; 0 = untiled",
		apply: intKnob("block-size", 0, func(s *Spec, v int) { s.Tuning.BlockSize = v }),
	},
	{
		Flag: "intra-parallel", JSON: "intra_parallel", Group: "tuning", Kind: KnobInt, Default: "0",
		Help:  "goroutine lanes for large block evaluations; 0 or 1 = serial",
		apply: intKnob("intra-parallel", 0, func(s *Spec, v int) { s.Tuning.IntraParallelism = v }),
	},
	{
		Flag: "gram-precompute", JSON: "gram_precompute", Group: "tuning", Kind: KnobBool, Default: "true",
		Help:  "precompute the LeastSquares Gram matrix at scenario build; false = lean residual form",
		apply: boolKnob("gram-precompute", func(s *Spec, v bool) { s.Tuning.GramPrecompute = &v }),
	},
	{
		Flag: "drop", JSON: "drop_prob", Group: "faults", Kind: KnobFloat, Default: "0",
		Help:  "per-link message drop probability",
		apply: probKnob("drop", func(s *Spec, v float64) { s.DropProb = v }),
	},
	{
		Flag: "reorder", JSON: "reorder_prob", Group: "faults", Kind: KnobFloat, Default: "0",
		Help:  "per-link message reorder probability",
		apply: probKnob("reorder", func(s *Spec, v float64) { s.ReorderProb = v }),
	},
	{
		Flag: "maxdelay", JSON: "max_link_delay", Group: "faults", Kind: KnobDuration, Default: "0s",
		Help:  "per-link max injected transit delay (e.g. 10ms)",
		apply: durationKnob("maxdelay", func(s *Spec, v time.Duration) { s.MaxLinkDelay = v }),
	},
	{
		Flag: "heartbeat", JSON: "heartbeat_every", Group: "elastic", Kind: KnobDuration, Default: "0s",
		Help:  "dist worker heartbeat period; non-zero enables elastic mode (worker churn survival)",
		apply: durationKnob("heartbeat", func(s *Spec, v time.Duration) { s.HeartbeatEvery = v }),
	},
	{
		Flag: "checkpoint", JSON: "checkpoint_every", Group: "elastic", Kind: KnobDuration, Default: "0s",
		Help:  "dist worker shard-checkpoint period; 0 = 4x heartbeat (elastic mode)",
		apply: durationKnob("checkpoint", func(s *Spec, v time.Duration) { s.CheckpointEvery = v }),
	},
	{
		Flag: "rejoin-wait", JSON: "max_rejoin_wait", Group: "elastic", Kind: KnobDuration, Default: "0s",
		Help:  "max time a restarted dist worker retries dial-and-register; 0 = 10s (elastic mode)",
		apply: durationKnob("rejoin-wait", func(s *Spec, v time.Duration) { s.MaxRejoinWait = v }),
	},
	{
		Flag: "checkpoint-file", JSON: "checkpoint_file", Group: "elastic", Kind: KnobString, Default: "",
		Help:  "file the dist coordinator persists its assembled checkpoint to (elastic mode)",
		apply: stringKnob(func(s *Spec, v string) { s.CheckpointPath = v }),
	},
}

func intKnob(name string, min int, set func(*Spec, int)) func(*Spec, string) error {
	return func(s *Spec, value string) error {
		v, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("repro: knob %s: %q is not an integer", name, value)
		}
		if v < min {
			return fmt.Errorf("repro: knob %s: %d below minimum %d", name, v, min)
		}
		set(s, v)
		return nil
	}
}

func boolKnob(name string, set func(*Spec, bool)) func(*Spec, string) error {
	return func(s *Spec, value string) error {
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("repro: knob %s: %q is not a boolean", name, value)
		}
		set(s, v)
		return nil
	}
}

func probKnob(name string, set func(*Spec, float64)) func(*Spec, string) error {
	return func(s *Spec, value string) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("repro: knob %s: %q is not a number", name, value)
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("repro: knob %s: probability %v outside [0,1]", name, v)
		}
		set(s, v)
		return nil
	}
}

func durationKnob(name string, set func(*Spec, time.Duration)) func(*Spec, string) error {
	return func(s *Spec, value string) error {
		v, err := time.ParseDuration(value)
		if err != nil {
			return fmt.Errorf("repro: knob %s: %q is not a duration (try 10ms)", name, value)
		}
		if v < 0 {
			return fmt.Errorf("repro: knob %s: negative duration %v", name, v)
		}
		set(s, v)
		return nil
	}
}

func stringKnob(set func(*Spec, string)) func(*Spec, string) error {
	return func(s *Spec, value string) error {
		set(s, value)
		return nil
	}
}

// Apply parses value (flag syntax) and applies the knob to s.
func (k Knob) Apply(s *Spec, value string) error { return k.apply(s, value) }

// Option validates value eagerly and returns the Spec option applying it.
func (k Knob) Option(value string) (Option, error) {
	var probe Spec
	if err := k.apply(&probe, value); err != nil {
		return nil, err
	}
	return func(s *Spec) { k.apply(s, value) }, nil
}

// KnobByJSON looks a knob up by its server JSON field name.
func KnobByJSON(name string) (Knob, bool) {
	for _, k := range knobTable {
		if k.JSON == name {
			return k, true
		}
	}
	return Knob{}, false
}

// KnobByFlag looks a knob up by its CLI flag name.
func KnobByFlag(name string) (Knob, bool) {
	for _, k := range knobTable {
		if k.Flag == name {
			return k, true
		}
	}
	return Knob{}, false
}

// JSONValue converts a flag-syntax knob value into its JSON wire form:
// numeric and boolean knobs as bare literals, durations and strings as
// quoted strings.
func (k Knob) JSONValue(value string) (json.RawMessage, error) {
	var probe Spec
	if err := k.apply(&probe, value); err != nil {
		return nil, err
	}
	if k.Kind == KnobDuration || k.Kind == KnobString {
		return json.Marshal(value)
	}
	return json.RawMessage(value), nil
}

// KnobValueFromJSON converts a knob's JSON wire value back to flag syntax,
// accepting quoted forms for every kind (durations require them).
func KnobValueFromJSON(k Knob, raw json.RawMessage) (string, error) {
	if len(raw) > 0 && raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return "", fmt.Errorf("repro: knob field %s: %v", k.JSON, err)
		}
		return s, nil
	}
	if k.Kind == KnobDuration {
		return "", fmt.Errorf("repro: knob field %s: durations are JSON strings (try \"10ms\")", k.JSON)
	}
	if k.Kind == KnobString {
		return "", fmt.Errorf("repro: knob field %s: expected a JSON string", k.JSON)
	}
	return string(raw), nil
}

// KnobSet is the flag-side binding of the knob table: RegisterKnobFlags
// installs one flag per knob on a FlagSet, and after parsing, Options
// returns a Spec option for every flag the user explicitly set.
type KnobSet struct {
	fs     *flag.FlagSet
	groups map[string]bool
	vals   map[string]*string
}

// RegisterKnobFlags registers every knob in the listed groups (all groups
// when none are listed) as flags on fs.
func RegisterKnobFlags(fs *flag.FlagSet, groups ...string) *KnobSet {
	ks := &KnobSet{fs: fs, groups: map[string]bool{}, vals: map[string]*string{}}
	for _, g := range groups {
		ks.groups[g] = true
	}
	for _, k := range knobTable {
		if len(ks.groups) > 0 && !ks.groups[k.Group] {
			continue
		}
		ks.vals[k.Flag] = fs.String(k.Flag, k.Default, k.Help)
	}
	return ks
}

// Options returns one Spec option per knob flag the user explicitly set,
// validating each value. Call after fs.Parse.
func (ks *KnobSet) Options() ([]Option, error) {
	var opts []Option
	var err error
	ks.fs.Visit(func(f *flag.Flag) {
		if err != nil {
			return
		}
		val, ok := ks.vals[f.Name]
		if !ok {
			return
		}
		k, _ := KnobByFlag(f.Name)
		opt, oerr := k.Option(*val)
		if oerr != nil {
			err = oerr
			return
		}
		opts = append(opts, opt)
	})
	if err != nil {
		return nil, err
	}
	return opts, nil
}

// Values returns the flag-syntax value of every knob flag the user
// explicitly set, keyed by the knob's JSON field name — the form a
// server JobRequest carries them in. Call after fs.Parse.
func (ks *KnobSet) Values() (map[string]string, error) {
	var out map[string]string
	var err error
	ks.fs.Visit(func(f *flag.Flag) {
		if err != nil {
			return
		}
		val, ok := ks.vals[f.Name]
		if !ok {
			return
		}
		k, _ := KnobByFlag(f.Name)
		if _, oerr := k.Option(*val); oerr != nil {
			err = oerr
			return
		}
		if out == nil {
			out = map[string]string{}
		}
		out[k.JSON] = *val
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Spec applies the explicitly-set knob flags to a zero Spec and returns it;
// the caller reads the resulting Tuning / fault fields (e.g. to build a
// scenario with the requested tuning). Call after fs.Parse.
func (ks *KnobSet) Spec() (Spec, error) {
	opts, err := ks.Options()
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	for _, o := range opts {
		o(&s)
	}
	return s, nil
}
