package repro_test

// Benchmark harness: one benchmark per figure/experiment of the
// reproduction suite (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the recorded outputs), plus micro-benchmarks of the
// engine hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the complete experiment (workload
// generation, runs of every mode, table assembly), so ns/op is the cost of
// regenerating the corresponding table/figure.

import (
	"testing"

	"repro"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	run := experiments.Lookup(id)
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := run()
		if !rep.Pass {
			b.Fatalf("%s failed acceptance criteria: %v", id, rep.Notes)
		}
	}
}

func BenchmarkF1_Figure1Trace(b *testing.B)          { benchExperiment(b, "F1") }
func BenchmarkF2_Figure2Trace(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkE1_BaudetUnboundedDelay(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2_Theorem1Bound(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3_AsyncVsSyncImbalance(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_FlexibleVsAsync(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_MacroVsEpoch(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6_ObstacleExchangeFreq(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7_AsyncBellmanFord(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8_FaultTolerance(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9_StepSizeSweep(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10_Scalability(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11_BoundedVsUnbounded(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12_ThetaAblation(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13_NewtonOperators(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14_MultigridSmoother(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15_StoppingCriteria(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16_NestedBoxes(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17_ContractionNecessity(b *testing.B) { benchExperiment(b, "E17") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the engine hot paths.

// benchLinearOp builds a 64-dim diagonally dominant Jacobi operator.
func benchLinearOp(b *testing.B) (*repro.Linear, []float64) {
	b.Helper()
	rng := repro.NewRNG(7)
	n := 64
	m := repro.NewDense(n, n)
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := 0.3 * rng.Normal()
				m.Set(i, j, v)
				if v < 0 {
					off -= v
				} else {
					off += v
				}
			}
		}
		m.Set(i, i, 1.7*off+1)
	}
	rhs := rng.NormalVector(n)
	op := repro.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		b.Fatal(err)
	}
	return op, xstar
}

// BenchmarkModelEngineIteration measures the per-iteration cost of the
// mathematical-model engine (Definition 1 execution with bookkeeping)
// through the unified Solve path users actually call.
func BenchmarkModelEngineIteration(b *testing.B) {
	op, _ := benchLinearOp(b)
	spec := repro.NewSpec(op,
		repro.WithEngine(repro.EngineModel),
		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 3}),
		repro.WithMaxIter(1000),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.Solve(spec)
		if err != nil || res.Iterations != 1000 {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkDESUpdatePhase measures the per-update cost of the
// discrete-event simulator (event heap + messaging) through Solve.
func BenchmarkDESUpdatePhase(b *testing.B) {
	op, _ := benchLinearOp(b)
	spec := repro.NewSpec(op,
		repro.WithEngine(repro.EngineSim),
		repro.WithWorkers(8),
		repro.WithMaxUpdates(1000),
		repro.WithSeed(4),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.Solve(spec)
		if err != nil || res.Updates < 1000 {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkSharedMemoryGoroutines measures the real-concurrency transport
// (atomic coordinate cells, 8 goroutines) through Solve.
func BenchmarkSharedMemoryGoroutines(b *testing.B) {
	op, _ := benchLinearOp(b)
	spec := repro.NewSpec(op,
		repro.WithEngine(repro.EngineShared),
		repro.WithWorkers(8),
		repro.WithMaxUpdatesPerWorker(200),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.Solve(spec)
		if err != nil || len(res.UpdatesPerWorker) != 8 {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkMessagePassingGoroutines measures the channel transport with
// termination detection disabled (pure throughput) through Solve.
func BenchmarkMessagePassingGoroutines(b *testing.B) {
	op, _ := benchLinearOp(b)
	spec := repro.NewSpec(op,
		repro.WithEngine(repro.EngineMessage),
		repro.WithWorkers(8),
		repro.WithMaxUpdatesPerWorker(200),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.Solve(spec)
		if err != nil || len(res.UpdatesPerWorker) != 8 {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkScenarioSolve measures a registered scenario solved end to end
// by name (registry lookup + build + model-engine solve).
func BenchmarkScenarioSolve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst, err := repro.BuildScenario("lasso", 32, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := repro.Solve(inst.Spec,
			repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}))
		if err != nil || !res.Converged {
			b.Fatal("scenario solve failed")
		}
	}
}

// BenchmarkMacroTracker measures Definition 2 bookkeeping throughput.
func BenchmarkMacroTracker(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := repro.NewMacroTracker(64)
		for j := 1; j <= 10000; j++ {
			tr.Observe(j, []int{(j - 1) % 64}, j-4)
		}
		if tr.K() == 0 {
			b.Fatal("no boundaries")
		}
	}
}

// BenchmarkProxGradBFApply measures one application of the Definition 4
// operator on a 64-dim lasso problem.
func BenchmarkProxGradBFApply(b *testing.B) {
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 64, Coupling: 0.3, Sparsity: 0.5, Reg: 0.1, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	f := reg.Smooth()
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f))
	x := make([]float64, 64)
	dst := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(dst, x)
	}
}

// BenchmarkBellmanFordComponent measures one min-plus relaxation on a
// 1024-node graph.
func BenchmarkBellmanFordComponent(b *testing.B) {
	g, err := repro.RandomGraph(1024, 4096, 6)
	if err != nil {
		b.Fatal(err)
	}
	op, err := repro.NewBellmanFordOp(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	d := op.InitialDistances()
	d[0] = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = op.Component(i%1024, d)
	}
}
