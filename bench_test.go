package repro_test

// Benchmark harness: one benchmark per figure/experiment of the
// reproduction suite (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the recorded outputs), plus micro-benchmarks of the
// engine hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The micro-benchmarks delegate to internal/benchsuite — the same cases
// `asyncsolve bench` measures and captures as BENCH_<rev>.json — so test
// benchmarks and the CI benchmark artifact always agree on what is
// measured. Workload generation happens in each case's setup, outside the
// timed region.
//
// Each experiment benchmark executes the complete experiment (workload
// generation, runs of every mode, table assembly), so ns/op is the cost of
// regenerating the corresponding table/figure.

import (
	"testing"

	"repro"
	"repro/internal/benchsuite"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	run := experiments.Lookup(id)
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := run()
		if !rep.Pass {
			b.Fatalf("%s failed acceptance criteria: %v", id, rep.Notes)
		}
	}
}

func BenchmarkF1_Figure1Trace(b *testing.B)          { benchExperiment(b, "F1") }
func BenchmarkF2_Figure2Trace(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkE1_BaudetUnboundedDelay(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2_Theorem1Bound(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3_AsyncVsSyncImbalance(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_FlexibleVsAsync(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_MacroVsEpoch(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6_ObstacleExchangeFreq(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7_AsyncBellmanFord(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8_FaultTolerance(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9_StepSizeSweep(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10_Scalability(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11_BoundedVsUnbounded(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12_ThetaAblation(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13_NewtonOperators(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14_MultigridSmoother(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15_StoppingCriteria(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16_NestedBoxes(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17_ContractionNecessity(b *testing.B) { benchExperiment(b, "E17") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the engine hot paths (shared with `asyncsolve bench`).

// BenchmarkModelEngineIteration measures the per-iteration cost of the
// mathematical-model engine (Definition 1 execution with bookkeeping)
// through the unified Solve path users actually call.
func BenchmarkModelEngineIteration(b *testing.B) {
	benchsuite.RunNamed(b, "ModelEngineIteration")
}

// BenchmarkModelEngineIterationScratch is the same solve with a reused
// repro.Scratch attached (WithScratch), the repeated-solve fast path.
func BenchmarkModelEngineIterationScratch(b *testing.B) {
	benchsuite.RunNamed(b, "ModelEngineIterationScratch")
}

// BenchmarkDESUpdatePhase measures the per-update cost of the
// discrete-event simulator (event heap + messaging) through Solve.
func BenchmarkDESUpdatePhase(b *testing.B) {
	benchsuite.RunNamed(b, "DESUpdatePhase")
}

// BenchmarkSharedMemoryGoroutines measures the real-concurrency transport
// (atomic coordinate cells, 8 goroutines) through Solve.
func BenchmarkSharedMemoryGoroutines(b *testing.B) {
	benchsuite.RunNamed(b, "SharedMemoryGoroutines")
}

// BenchmarkMessagePassingGoroutines measures the channel transport with
// termination detection disabled (pure throughput) through Solve.
func BenchmarkMessagePassingGoroutines(b *testing.B) {
	benchsuite.RunNamed(b, "MessagePassingGoroutines")
}

// BenchmarkScenarioSolve measures a registered scenario solved end to end
// (model-engine solve; the registry lookup and build are setup, not
// measured).
func BenchmarkScenarioSolve(b *testing.B) {
	benchsuite.RunNamed(b, "ScenarioSolveLasso")
}

// BenchmarkProxGradBFApply measures one application of the Definition 4
// operator on a 64-dim lasso problem through the scratch fast path.
func BenchmarkProxGradBFApply(b *testing.B) {
	benchsuite.RunNamed(b, "ProxGradBFApply")
}

// BenchmarkScenarioSolveLassoLarge solves the lasso scenario at 10x the
// dimension of BenchmarkScenarioSolve — the scale where the block-evaluation
// fast path dominates the solve rate.
func BenchmarkScenarioSolveLassoLarge(b *testing.B) {
	benchsuite.RunNamed(b, "ScenarioSolveLassoLarge")
}

// The BlockEval pairs measure one full round of worker-block phases on a
// ProxGradBF lasso operator through the whole-block fast path vs the forced
// per-component fallback; the ns/op ratio is the block contract's speedup.
func BenchmarkBlockEvalN1024(b *testing.B) {
	benchsuite.RunNamed(b, "BlockEvalN1024")
}

func BenchmarkBlockEvalN1024PerComponent(b *testing.B) {
	benchsuite.RunNamed(b, "BlockEvalN1024PerComponent")
}

func BenchmarkBlockEvalN4096(b *testing.B) {
	benchsuite.RunNamed(b, "BlockEvalN4096")
}

func BenchmarkBlockEvalN4096PerComponent(b *testing.B) {
	benchsuite.RunNamed(b, "BlockEvalN4096PerComponent")
}

// BenchmarkMacroTracker measures Definition 2 bookkeeping throughput (the
// tracker construction is the measured object, so nothing is hoisted).
func BenchmarkMacroTracker(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := repro.NewMacroTracker(64)
		for j := 1; j <= 10000; j++ {
			tr.Observe(j, []int{(j - 1) % 64}, j-4)
		}
		if tr.K() == 0 {
			b.Fatal("no boundaries")
		}
	}
}

// BenchmarkBellmanFordComponent measures one min-plus relaxation on a
// 1024-node graph.
func BenchmarkBellmanFordComponent(b *testing.B) {
	g, err := repro.RandomGraph(1024, 4096, 6)
	if err != nil {
		b.Fatal(err)
	}
	op, err := repro.NewBellmanFordOp(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	d := op.InitialDistances()
	d[0] = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = op.Component(i%1024, d)
	}
}
