package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro"
)

// TestScratchPoolCheckout: basic miss/hit accounting per signature.
func TestScratchPoolCheckout(t *testing.T) {
	p := NewScratchPool()
	a := PoolKey{Scenario: "lasso", Engine: "sim", N: 16, Workers: 2}
	b := PoolKey{Scenario: "lasso", Engine: "sim", N: 32, Workers: 2}

	s1 := p.Get(a)
	s2 := p.Get(a)
	if s1 == s2 {
		t.Fatal("two live checkouts share one scratch")
	}
	p.Put(a, s1)
	if got := p.Get(a); got != s1 {
		t.Fatal("returned scratch was not reused for its signature")
	}
	if got := p.Get(b); got == s2 {
		t.Fatal("signature b received signature a's live scratch")
	}
	created, reused := p.Stats()
	if created != 3 || reused != 1 {
		t.Fatalf("stats created=%d reused=%d, want 3 and 1", created, reused)
	}
	if p.Idle(a) != 0 {
		t.Fatalf("idle(a) = %d, want 0", p.Idle(a))
	}
}

// TestScratchPoolConcurrentBitIdentical is the serving-layer safety
// argument for scratch reuse: race-run many parallel solves that all check
// scratch state out of ONE pool, across several signatures, and require
// every result to be bit-identical to the same solve run fresh. Run under
// -race this also proves checkout exclusivity.
func TestScratchPoolConcurrentBitIdentical(t *testing.T) {
	type variant struct {
		engine  repro.Engine
		n       int
		workers int
	}
	variants := []variant{
		{repro.EngineModel, 16, 0},
		{repro.EngineSim, 16, 3},
		{repro.EngineSim, 24, 2},
		{repro.EngineSimSync, 16, 2},
	}
	solveOnce := func(v variant, scr *repro.Scratch) *repro.Report {
		inst, err := repro.BuildScenario("lasso", v.n, 7)
		if err != nil {
			t.Error(err)
			return nil
		}
		opts := []repro.Option{
			repro.WithEngine(v.engine),
			repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
			repro.WithSeed(3),
			repro.WithTol(1e-9),
		}
		if v.workers > 0 {
			opts = append(opts, repro.WithWorkers(v.workers))
		}
		if scr != nil {
			opts = append(opts, repro.WithScratch(scr))
		}
		rep, err := repro.Solve(inst.Spec, opts...)
		if err != nil {
			t.Error(err)
			return nil
		}
		return rep
	}

	// Reference: each variant solved once with fresh scratch state.
	want := make([]*repro.Report, len(variants))
	for i, v := range variants {
		want[i] = solveOnce(v, nil)
		if want[i] == nil {
			t.FailNow()
		}
	}

	pool := NewScratchPool()
	const rounds = 4
	var wg sync.WaitGroup
	got := make([]*repro.Report, rounds*len(variants))
	for r := 0; r < rounds; r++ {
		for i, v := range variants {
			wg.Add(1)
			go func(slot int, v variant, i int) {
				defer wg.Done()
				k := PoolKey{
					Scenario: "lasso", Engine: v.engine.Name(),
					N: v.n, Workers: v.workers,
				}
				scr := pool.Get(k)
				defer pool.Put(k, scr)
				got[slot] = solveOnce(v, scr)
			}(r*len(variants)+i, v, i)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for slot, rep := range got {
		v := variants[slot%len(variants)]
		ref := want[slot%len(variants)]
		label := fmt.Sprintf("slot %d (%s n=%d w=%d)", slot, v.engine.Name(), v.n, v.workers)
		if rep.Iterations != ref.Iterations || rep.Updates != ref.Updates {
			t.Fatalf("%s: trajectory drifted: iters %d/%d updates %d/%d",
				label, rep.Iterations, ref.Iterations, rep.Updates, ref.Updates)
		}
		if !reflect.DeepEqual(rep.X, ref.X) {
			t.Fatalf("%s: pooled solve is not bit-identical to the fresh solve", label)
		}
	}
	created, _ := pool.Stats()
	if created > int64(len(variants)*rounds) {
		t.Fatalf("pool created %d scratches for %d solves", created, len(variants)*rounds)
	}
}
