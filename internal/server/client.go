package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro"
)

// Client talks to a running solve server. It is the one NDJSON decoder in
// the tree: the load generator, the benchsuite and the tests all consume
// streams through it.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Outcome is one job's end-to-end result as seen from the client side.
type Outcome struct {
	// Rejected reports a 503 from admission control; RetryAfter carries the
	// server's backoff hint and every other field is zero.
	Rejected   bool
	RetryAfter time.Duration
	// JobID is the server-assigned id (accepted jobs).
	JobID string
	// Report is the terminal report (nil when the job ended in error).
	Report *repro.Report
	// Describe is the scenario's quality line for the final iterate.
	Describe string
	// JobErr is the terminal error event's message, "" on success.
	JobErr string
	// Progress counts progress events observed before the terminal event.
	Progress int
	// Latency is the client-observed accept-to-terminal duration.
	Latency time.Duration
}

// Solve submits req and consumes the whole NDJSON stream. A transport or
// protocol failure returns err != nil; a well-formed stream whose job
// failed returns (Outcome with JobErr set, nil). A 503 rejection returns
// (Outcome with Rejected set, nil) — admission refusal is an expected
// answer under load, not an error.
func (c *Client) Solve(ctx context.Context, req JobRequest) (*Outcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	begin := time.Now()
	resp, err := c.http().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		out := &Outcome{Rejected: true}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			out.RetryAfter = time.Duration(ra) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return out, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	out := &Outcome{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("server: bad event line %q: %v", line, err)
		}
		if ev.JobID != "" {
			out.JobID = ev.JobID
		}
		switch ev.Type {
		case EventProgress:
			out.Progress++
		case EventReport:
			out.Report = ev.Report
			out.Describe = ev.Describe
			out.Latency = time.Since(begin)
			return out, nil
		case EventError:
			out.JobErr = ev.Error
			out.Latency = time.Since(begin)
			return out, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: stream: %w", err)
	}
	return nil, fmt.Errorf("server: stream ended without a terminal event")
}

// Scenarios fetches the GET /v1/scenarios listing.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/scenarios", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: scenarios: %s", resp.Status)
	}
	var out []ScenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health fetches GET /healthz (the body decodes on both 200 and the 503
// the server answers with while draining).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}
