package server

import (
	"sync"

	"repro"
)

// PoolKey is the problem signature a Scratch is pooled under. A repro.Scratch
// grows its buffers on demand and is shape-agnostic, so pooling by signature
// is an affinity optimization, not a correctness requirement: a scratch
// checked out for the signature it was warmed on finds every buffer already
// sized, and the steady state of a mixed workload allocates nothing.
type PoolKey struct {
	// Scenario and Engine name the workload and execution regime.
	Scenario string
	Engine   string
	// N is the requested problem size (scenario default resolved in).
	N int
	// Workers is the requested processor count (0 = engine default) — it
	// decides how many per-worker operator scratches the engine slices out.
	Workers int
}

// ScratchPool hands out repro.Scratch values keyed by problem signature.
// Get never blocks: a miss allocates. Put returns a scratch for reuse.
// A checked-out scratch is owned exclusively by one solve — the facade's
// bit-identical-reuse guarantee (scratch_test.go) is what makes serving
// N concurrent jobs from one pool safe.
type ScratchPool struct {
	mu      sync.Mutex
	free    map[PoolKey][]*repro.Scratch
	created int64
	reused  int64
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return &ScratchPool{free: make(map[PoolKey][]*repro.Scratch)}
}

// Get checks a scratch out for signature k, allocating on a miss.
func (p *ScratchPool) Get(k PoolKey) *repro.Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if list := p.free[k]; len(list) > 0 {
		scr := list[len(list)-1]
		p.free[k] = list[:len(list)-1]
		p.reused++
		return scr
	}
	p.created++
	return repro.NewScratch()
}

// Put returns a checked-out scratch to signature k's free list. Put after
// a failed or cancelled solve is fine: scratch buffers carry no
// cross-solve state, only capacity.
func (p *ScratchPool) Put(k PoolKey, scr *repro.Scratch) {
	if scr == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[k] = append(p.free[k], scr)
}

// Stats reports lifetime checkout counters: fresh allocations and reuses.
func (p *ScratchPool) Stats() (created, reused int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.reused
}

// Idle reports how many scratches are currently parked under signature k.
func (p *ScratchPool) Idle(k PoolKey) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free[k])
}
