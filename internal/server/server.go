package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Config sizes the server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8080"; use ":0" to
	// pick a free port and read it back from Addr()).
	Addr string
	// QueueDepth bounds the admitted-but-not-running job queue (default 16).
	// A full queue is the admission-control signal: new jobs get 503.
	QueueDepth int
	// Workers is the number of concurrent solves (default GOMAXPROCS).
	Workers int
	// MaxJobTime caps every job's run time (default 60s); each job may
	// shorten it with timeout_ms but never extend it.
	MaxJobTime time.Duration
	// ProgressEvery is the NDJSON progress-event period (default 500ms).
	ProgressEvery time.Duration
	// RetryAfter is the hint sent with 503 rejections (default 1s).
	RetryAfter time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobTime <= 0 {
		c.MaxJobTime = 60 * time.Second
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 500 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Server is the solver-as-a-service HTTP front end: admission control into
// a bounded queue, a fixed worker pool running repro.Solve jobs with
// signature-keyed scratch reuse, NDJSON-streamed results, and graceful
// drain.
type Server struct {
	cfg  Config
	pool *ScratchPool

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	listener  net.Listener
	httpSrv   *http.Server
	serveDone chan struct{} // closed when the Serve goroutine exits

	draining  atomic.Bool
	nextJobID atomic.Int64
	running   atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
}

// New builds a Server and starts its worker pool; call Start to listen.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		pool:  NewScratchPool(),
		queue: make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.running.Add(1)
		j.run(s.pool)
		s.running.Add(-1)
		s.completed.Add(1)
	}
}

// Handler returns the routed HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// Start begins listening on cfg.Addr. It returns once the listener is
// bound; serving continues until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.serveDone = make(chan struct{})
	go func() {
		defer close(s.serveDone)
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("server: serve: %v", err)
		}
	}()
	s.logf("server: listening on %s (queue %d, workers %d)", ln.Addr(), s.cfg.QueueDepth, s.cfg.Workers)
	return nil
}

// Addr reports the bound listen address (useful with Addr ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.cfg.Addr
	}
	return s.listener.Addr().String()
}

// Shutdown drains gracefully: admission stops (new jobs get 503), in-flight
// streams and queued jobs run to completion (or to ctx's deadline), then
// the worker pool exits. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logf("server: draining (queued %d, running %d)", len(s.queue), s.running.Load())
	var err error
	if s.httpSrv != nil {
		// Shutdown waits for active handlers — every queued job keeps its
		// streaming handler open, so this also waits out the queue.
		err = s.httpSrv.Shutdown(ctx)
		// Serve returns as soon as Shutdown closes the listener; join its
		// goroutine so no stray logf races the caller after we return.
		<-s.serveDone
	}
	close(s.queue)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.logf("server: drained (completed %d, rejected %d)", s.completed.Load(), s.rejected.Load())
	return err
}

// reject sends the admission-control refusal: 503 with a Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, reason string) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, reason, http.StatusServiceUnavailable)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		s.reject(w, "server is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	j, err := resolve(req, s.cfg.MaxJobTime)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The job dies with the client connection or its deadline, whichever
	// fires first: Spec.Ctx plumbs this straight into the engine hot loop.
	j.ctx, j.cancel = context.WithTimeout(r.Context(), j.timeout(s.cfg.MaxJobTime))
	defer j.cancel()

	// Admission control: a full queue refuses immediately — no blocking,
	// no unbounded buffering.
	j.id = fmt.Sprintf("job-%d", s.nextJobID.Add(1))
	select {
	case s.queue <- j:
	default:
		s.reject(w, "job queue full")
		return
	}
	s.accepted.Add(1)
	s.logf("server: %s accepted (%s/%s n=%d)", j.id, j.req.Scenario, j.engine.Name(), j.n)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.stream(w, j)
}

// stream writes the job's NDJSON event sequence: accepted, started,
// periodic progress, then exactly one terminal report/error event.
func (s *Server) stream(w http.ResponseWriter, j *job) {
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) {
		ev.JobID = j.id
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	begin := time.Now()
	emit(Event{Type: EventAccepted, Queued: len(s.queue)})

	ticker := time.NewTicker(s.cfg.ProgressEvery)
	defer ticker.Stop()
	startedCh := j.started
	for {
		select {
		case <-startedCh:
			emit(Event{Type: EventStarted})
			startedCh = nil // a closed channel always wins a select; disarm it
		case <-ticker.C:
			emit(Event{
				Type:      EventProgress,
				Updates:   j.progress.Updates(),
				ElapsedMS: time.Since(begin).Milliseconds(),
			})
		case <-j.done:
			elapsed := time.Since(begin).Milliseconds()
			if j.err != nil {
				s.logf("server: %s failed: %v", j.id, j.err)
				emit(Event{Type: EventError, Error: j.err.Error(), ElapsedMS: elapsed})
				return
			}
			s.logf("server: %s done (converged=%v updates=%d)", j.id, j.report.Converged, j.report.Updates)
			emit(Event{Type: EventReport, Report: j.report, Describe: j.describe, ElapsedMS: elapsed})
			return
		}
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	list := repro.Scenarios()
	out := make([]ScenarioInfo, 0, len(list))
	for _, sc := range list {
		out = append(out, ScenarioInfo{Name: sc.Name, Summary: sc.Summary, DefaultN: sc.DefaultN})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	created, reused := s.pool.Stats()
	h := Health{
		Status:         status,
		Queued:         len(s.queue),
		Running:        s.running.Load(),
		Accepted:       s.accepted.Load(),
		Rejected:       s.rejected.Load(),
		Completed:      s.completed.Load(),
		ScratchCreated: created,
		ScratchReused:  reused,
	}
	w.Header().Set("Content-Type", "application/json")
	if status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}
