// Package server implements solver-as-a-service: a multi-tenant HTTP job
// server over the unified repro.Solve facade. Jobs arrive as JSON on
// POST /v1/solve, pass admission control into a bounded queue (503 +
// Retry-After when full), run on a fixed worker pool with per-signature
// scratch reuse, and stream back NDJSON progress events followed by the
// terminal repro.Report.
package server

import (
	"repro"
)

// Event is one NDJSON line of a /v1/solve response stream. Type is always
// set; the other fields depend on it:
//
//	accepted  job admitted: JobID, Queued (depth behind it)
//	started   a worker picked the job up: JobID
//	progress  periodic liveness: JobID, Updates so far, ElapsedMS
//	report    terminal success: JobID, Report, Describe, ElapsedMS
//	error     terminal failure: JobID, Error, ElapsedMS
//
// Exactly one terminal event (report or error) ends every stream.
type Event struct {
	Type      string        `json:"type"`
	JobID     string        `json:"job_id,omitempty"`
	Queued    int           `json:"queued,omitempty"`
	Updates   int64         `json:"updates,omitempty"`
	ElapsedMS int64         `json:"elapsed_ms,omitempty"`
	Report    *repro.Report `json:"report,omitempty"`
	Describe  string        `json:"describe,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// Event types.
const (
	EventAccepted = "accepted"
	EventStarted  = "started"
	EventProgress = "progress"
	EventReport   = "report"
	EventError    = "error"
)

// ScenarioInfo is one entry of the GET /v1/scenarios listing.
type ScenarioInfo struct {
	Name     string `json:"name"`
	Summary  string `json:"summary"`
	DefaultN int    `json:"default_n"`
}

// Health is the GET /healthz body.
type Health struct {
	// Status is "ok" while accepting jobs, "draining" once shutdown began.
	Status string `json:"status"`
	// Queued is the number of admitted jobs waiting for a worker.
	Queued int `json:"queued"`
	// Running is the number of jobs currently on a worker.
	Running int64 `json:"running"`
	// Accepted / Rejected / Completed are lifetime counters: jobs admitted,
	// jobs refused by admission control (503), jobs finished (either way).
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	// ScratchCreated / ScratchReused count signature-pool checkouts that
	// allocated fresh state vs reused a returned one.
	ScratchCreated int64 `json:"scratch_created"`
	ScratchReused  int64 `json:"scratch_reused"`
}
