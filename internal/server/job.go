package server

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// JobRequest is the POST /v1/solve body: one solve job, mirroring the
// asyncsolve CLI flags. Zero values mean "scenario / engine default".
type JobRequest struct {
	// Scenario is the registered workload name (required; see
	// GET /v1/scenarios).
	Scenario string `json:"scenario"`
	// N is the problem size; 0 uses the scenario default.
	N int `json:"n,omitempty"`
	// Seed drives workload construction and engine randomness.
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the execution engine (default "model"). The "dist"
	// engine is rejected: it spans OS processes and cannot be cancelled
	// mid-run, so it is unfit for multi-tenant serving.
	Engine string `json:"engine,omitempty"`
	// Delay is a ParseDelay string (model engine; default "bounded:8").
	Delay string `json:"delay,omitempty"`
	// Workers is the processor count; 0 uses the engine default.
	Workers int `json:"workers,omitempty"`
	// Tol overrides the scenario's convergence tolerance when non-nil
	// (0 disables the stop and runs to budget).
	Tol *float64 `json:"tol,omitempty"`
	// MaxIter caps both iterations and updates when > 0.
	MaxIter int `json:"max_iter,omitempty"`
	// Theta enables flexible communication on the model engine.
	Theta float64 `json:"theta,omitempty"`
	// Flex publishes k uniform partial updates per phase (sim/shared).
	Flex int `json:"flex,omitempty"`
	// TimeoutMS bounds this job's run time; 0 uses the server maximum, and
	// values above the server maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// job is one admitted solve: the validated request plus everything the
// worker and the streaming handler share.
type job struct {
	id  string
	req JobRequest

	// Resolved at admission so a bad request fails with 400 before it
	// consumes a queue slot.
	engine repro.Engine
	delay  repro.DelayModel
	n      int // requested size resolved against the scenario default
	key    PoolKey

	ctx      context.Context
	cancel   context.CancelFunc
	progress *repro.Progress

	// started is closed when a worker picks the job up; done when the job
	// reaches its terminal state. After done: report/describe or err.
	started  chan struct{}
	done     chan struct{}
	report   *repro.Report
	describe string
	err      error
}

// resolve validates req and builds the job skeleton. It returns a
// client-errored (400-worthy) error for unknown scenarios/engines/delay
// models and for options the serving layer does not support.
func resolve(req JobRequest, maxJobTime time.Duration) (*job, error) {
	if req.Scenario == "" {
		return nil, fmt.Errorf("scenario is required (see GET /v1/scenarios)")
	}
	scen, ok := repro.ScenarioByName(req.Scenario)
	if !ok {
		// Reuse the facade's unknown-scenario error: it lists every
		// registered name.
		_, err := repro.BuildScenario(req.Scenario, 0, 0)
		return nil, err
	}
	engineName := req.Engine
	if engineName == "" {
		engineName = "model"
	}
	engine, err := repro.EngineByName(engineName)
	if err != nil {
		return nil, err
	}
	if engine == repro.EngineDist {
		return nil, fmt.Errorf("engine dist is not served: it spans OS processes and cannot be cancelled mid-run")
	}
	delayName := req.Delay
	if delayName == "" {
		delayName = "bounded:8"
	}
	delay, err := repro.ParseDelay(delayName, req.Seed)
	if err != nil {
		return nil, err
	}
	if req.Theta < 0 || req.Theta > 1 {
		return nil, fmt.Errorf("theta %v out of range [0, 1]", req.Theta)
	}
	if req.Flex < 0 {
		return nil, fmt.Errorf("flex %d must be >= 0", req.Flex)
	}
	if req.MaxIter < 0 {
		return nil, fmt.Errorf("max_iter %d must be >= 0", req.MaxIter)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d must be >= 0", req.TimeoutMS)
	}
	n := req.N
	if n <= 0 {
		n = scen.DefaultN
	}
	j := &job{
		req:      req,
		engine:   engine,
		delay:    delay,
		n:        n,
		progress: new(repro.Progress),
		started:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.key = PoolKey{
		Scenario: req.Scenario,
		Engine:   engine.Name(),
		N:        n,
		Workers:  req.Workers,
	}
	_ = maxJobTime // deadline is attached by the handler, off its request context
	return j, nil
}

// timeout returns the job's effective run-time bound under the server cap.
func (j *job) timeout(maxJobTime time.Duration) time.Duration {
	d := maxJobTime
	if j.req.TimeoutMS > 0 {
		if t := time.Duration(j.req.TimeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}

// run executes the solve on the calling worker goroutine, checking scratch
// state out of (and back into) pool. It owns the terminal transition:
// exactly one close(j.done) per job.
func (j *job) run(pool *ScratchPool) {
	defer close(j.done)
	if err := j.ctx.Err(); err != nil {
		// The client went away (or the deadline passed) while the job was
		// still queued; do not burn a worker on it.
		j.err = err
		return
	}
	close(j.started)
	inst, err := repro.BuildScenario(j.req.Scenario, j.req.N, j.req.Seed)
	if err != nil {
		j.err = err
		return
	}
	scr := pool.Get(j.key)
	defer pool.Put(j.key, scr)
	opts := []repro.Option{
		repro.WithEngine(j.engine),
		repro.WithDelay(j.delay),
		repro.WithSeed(j.req.Seed),
		repro.WithScratch(scr),
		repro.WithContext(j.ctx),
		repro.WithProgress(j.progress),
	}
	if j.req.Workers > 0 {
		opts = append(opts, repro.WithWorkers(j.req.Workers))
	}
	if j.req.Tol != nil {
		opts = append(opts, repro.WithTol(*j.req.Tol))
	}
	if j.req.MaxIter > 0 {
		opts = append(opts, repro.WithMaxIter(j.req.MaxIter), repro.WithMaxUpdates(j.req.MaxIter))
	}
	if j.req.Theta > 0 {
		opts = append(opts, repro.WithTheta(j.req.Theta))
	}
	if j.req.Flex > 0 {
		opts = append(opts, repro.WithFlexible(repro.UniformFlex(j.req.Flex)))
	}
	rep, err := repro.Solve(inst.Spec, opts...)
	if err != nil {
		j.err = err
		return
	}
	j.report = rep
	if inst.Describe != nil {
		j.describe = inst.Describe(rep.X)
	}
}
