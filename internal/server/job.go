package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro"
)

// JobRequest is the POST /v1/solve body: one solve job, mirroring the
// asyncsolve CLI flags. Zero values mean "scenario / engine default".
type JobRequest struct {
	// Scenario is the registered workload name (required; see
	// GET /v1/scenarios).
	Scenario string `json:"scenario"`
	// N is the problem size; 0 uses the scenario default.
	N int `json:"n,omitempty"`
	// Seed drives workload construction and engine randomness.
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the execution engine (default "model"). The "dist"
	// engine is rejected: it spans OS processes and cannot be cancelled
	// mid-run, so it is unfit for multi-tenant serving.
	Engine string `json:"engine,omitempty"`
	// Delay is a ParseDelay string (model engine; default "bounded:8").
	Delay string `json:"delay,omitempty"`
	// Workers is the processor count; 0 uses the engine default.
	Workers int `json:"workers,omitempty"`
	// Tol overrides the scenario's convergence tolerance when non-nil
	// (0 disables the stop and runs to budget).
	Tol *float64 `json:"tol,omitempty"`
	// MaxIter caps both iterations and updates when > 0.
	MaxIter int `json:"max_iter,omitempty"`
	// Theta enables flexible communication on the model engine.
	Theta float64 `json:"theta,omitempty"`
	// Flex publishes k uniform partial updates per phase (sim/shared).
	Flex int `json:"flex,omitempty"`
	// TimeoutMS bounds this job's run time; 0 uses the server maximum, and
	// values above the server maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Knobs carries the tuning and fault knob fields (block_size,
	// intra_parallel, gram_precompute, drop_prob, ...) in flag syntax,
	// keyed by JSON field name. On the wire they are top-level job fields —
	// DecodeJobRequest splits them off the body and MarshalJSON merges them
	// back — so the server's JSON schema is the knob table, verbatim.
	Knobs map[string]string `json:"-"`
}

// MarshalJSON flattens Knobs into top-level fields, each in the wire form
// its knob-table entry prescribes (numerics and booleans bare, durations
// quoted).
func (r JobRequest) MarshalJSON() ([]byte, error) {
	type plain JobRequest // methodless alias: plain struct-tag marshaling
	b, err := json.Marshal(plain(r))
	if err != nil {
		return nil, err
	}
	if len(r.Knobs) == 0 {
		return b, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	for name, val := range r.Knobs {
		k, ok := repro.KnobByJSON(name)
		if !ok {
			return nil, fmt.Errorf("unknown knob field %q", name)
		}
		raw, err := k.JSONValue(val)
		if err != nil {
			return nil, err
		}
		m[name] = raw
	}
	return json.Marshal(m)
}

// DecodeJobRequest parses a /v1/solve body: knob-table fields are split
// into Knobs, every remaining field must be a core JobRequest field
// (unknown fields stay a 400, exactly as strict as before knobs existed).
func DecodeJobRequest(body []byte) (JobRequest, error) {
	var req JobRequest
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		return req, err
	}
	var knobs map[string]string
	for name, raw := range fields {
		k, ok := repro.KnobByJSON(name)
		if !ok {
			continue
		}
		val, err := repro.KnobValueFromJSON(k, raw)
		if err != nil {
			return req, err
		}
		if knobs == nil {
			knobs = map[string]string{}
		}
		knobs[name] = val
		delete(fields, name)
	}
	rest, err := json.Marshal(fields)
	if err != nil {
		return req, err
	}
	dec := json.NewDecoder(bytes.NewReader(rest))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	req.Knobs = knobs
	return req, nil
}

// job is one admitted solve: the validated request plus everything the
// worker and the streaming handler share.
type job struct {
	id  string
	req JobRequest

	// Resolved at admission so a bad request fails with 400 before it
	// consumes a queue slot.
	engine   repro.Engine
	delay    repro.DelayModel
	n        int // requested size resolved against the scenario default
	key      PoolKey
	knobOpts []repro.Option
	tuning   repro.Tuning

	ctx      context.Context
	cancel   context.CancelFunc
	progress *repro.Progress

	// started is closed when a worker picks the job up; done when the job
	// reaches its terminal state. After done: report/describe or err.
	started  chan struct{}
	done     chan struct{}
	report   *repro.Report
	describe string
	err      error
}

// resolve validates req and builds the job skeleton. It returns a
// client-errored (400-worthy) error for unknown scenarios/engines/delay
// models and for options the serving layer does not support.
func resolve(req JobRequest, maxJobTime time.Duration) (*job, error) {
	if req.Scenario == "" {
		return nil, fmt.Errorf("scenario is required (see GET /v1/scenarios)")
	}
	scen, ok := repro.ScenarioByName(req.Scenario)
	if !ok {
		// Reuse the facade's unknown-scenario error: it lists every
		// registered name.
		_, err := repro.BuildScenario(req.Scenario, 0, 0)
		return nil, err
	}
	engineName := req.Engine
	if engineName == "" {
		engineName = "model"
	}
	engine, err := repro.EngineByName(engineName)
	if err != nil {
		return nil, err
	}
	if engine == repro.EngineDist {
		return nil, fmt.Errorf("engine dist is not served: it spans OS processes and cannot be cancelled mid-run")
	}
	delayName := req.Delay
	if delayName == "" {
		delayName = "bounded:8"
	}
	delay, err := repro.ParseDelay(delayName, req.Seed)
	if err != nil {
		return nil, err
	}
	if req.Theta < 0 || req.Theta > 1 {
		return nil, fmt.Errorf("theta %v out of range [0, 1]", req.Theta)
	}
	if req.Flex < 0 {
		return nil, fmt.Errorf("flex %d must be >= 0", req.Flex)
	}
	if req.MaxIter < 0 {
		return nil, fmt.Errorf("max_iter %d must be >= 0", req.MaxIter)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d must be >= 0", req.TimeoutMS)
	}
	// Knob fields validate at admission like every other field, in table
	// order for a deterministic first error.
	var knobOpts []repro.Option
	for _, k := range repro.KnobTable() {
		val, ok := req.Knobs[k.JSON]
		if !ok {
			continue
		}
		opt, err := k.Option(val)
		if err != nil {
			return nil, err
		}
		knobOpts = append(knobOpts, opt)
	}
	for name := range req.Knobs {
		if _, ok := repro.KnobByJSON(name); !ok {
			return nil, fmt.Errorf("unknown knob field %q", name)
		}
	}
	var knobSpec repro.Spec
	for _, o := range knobOpts {
		o(&knobSpec)
	}
	n := req.N
	if n <= 0 {
		n = scen.DefaultN
	}
	j := &job{
		req:      req,
		engine:   engine,
		delay:    delay,
		n:        n,
		knobOpts: knobOpts,
		tuning:   knobSpec.Tuning,
		progress: new(repro.Progress),
		started:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.key = PoolKey{
		Scenario: req.Scenario,
		Engine:   engine.Name(),
		N:        n,
		Workers:  req.Workers,
	}
	_ = maxJobTime // deadline is attached by the handler, off its request context
	return j, nil
}

// timeout returns the job's effective run-time bound under the server cap.
func (j *job) timeout(maxJobTime time.Duration) time.Duration {
	d := maxJobTime
	if j.req.TimeoutMS > 0 {
		if t := time.Duration(j.req.TimeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}

// run executes the solve on the calling worker goroutine, checking scratch
// state out of (and back into) pool. It owns the terminal transition:
// exactly one close(j.done) per job.
func (j *job) run(pool *ScratchPool) {
	defer close(j.done)
	if err := j.ctx.Err(); err != nil {
		// The client went away (or the deadline passed) while the job was
		// still queued; do not burn a worker on it.
		j.err = err
		return
	}
	close(j.started)
	// Build with the job's tuning so build-time choices (Gram form, sharded
	// precompute) see the knobs; pooled scratches are safe across jobs with
	// different tuning because engines install Spec.Tuning on every scratch
	// at solve time.
	inst, err := repro.BuildScenarioTuned(j.req.Scenario, j.req.N, j.req.Seed, j.tuning)
	if err != nil {
		j.err = err
		return
	}
	scr := pool.Get(j.key)
	defer pool.Put(j.key, scr)
	opts := []repro.Option{
		repro.WithEngine(j.engine),
		repro.WithDelay(j.delay),
		repro.WithSeed(j.req.Seed),
		repro.WithScratch(scr),
		repro.WithContext(j.ctx),
		repro.WithProgress(j.progress),
	}
	opts = append(opts, j.knobOpts...)
	if j.req.Workers > 0 {
		opts = append(opts, repro.WithWorkers(j.req.Workers))
	}
	if j.req.Tol != nil {
		opts = append(opts, repro.WithTol(*j.req.Tol))
	}
	if j.req.MaxIter > 0 {
		opts = append(opts, repro.WithMaxIter(j.req.MaxIter), repro.WithMaxUpdates(j.req.MaxIter))
	}
	if j.req.Theta > 0 {
		opts = append(opts, repro.WithTheta(j.req.Theta))
	}
	if j.req.Flex > 0 {
		opts = append(opts, repro.WithFlexible(repro.UniformFlex(j.req.Flex)))
	}
	rep, err := repro.Solve(inst.Spec, opts...)
	if err != nil {
		j.err = err
		return
	}
	j.report = rep
	if inst.Describe != nil {
		j.describe = inst.Describe(rep.X)
	}
}
