package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro"
)

// The server's knob surface IS the knob table: every table entry must be
// accepted as a top-level /v1/solve field under its JSON name, round-trip
// through the client's marshaling, and validate at admission — while
// unknown fields keep their strict 400.

func TestDecodeJobRequestSplitsKnobs(t *testing.T) {
	body := []byte(`{"scenario":"lasso","n":16,"block_size":64,"intra_parallel":4,` +
		`"gram_precompute":false,"drop_prob":0.25,"max_link_delay":"10ms"}`)
	req, err := DecodeJobRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if req.Scenario != "lasso" || req.N != 16 {
		t.Fatalf("core fields lost: %+v", req)
	}
	want := map[string]string{"block_size": "64", "intra_parallel": "4",
		"gram_precompute": "false", "drop_prob": "0.25", "max_link_delay": "10ms"}
	if len(req.Knobs) != len(want) {
		t.Fatalf("knobs = %v, want %v", req.Knobs, want)
	}
	for k, v := range want {
		if req.Knobs[k] != v {
			t.Errorf("knob %s = %q, want %q", k, req.Knobs[k], v)
		}
	}

	// Unknown fields are still a hard error — knobs did not loosen the
	// schema.
	if _, err := DecodeJobRequest([]byte(`{"scenario":"lasso","blocksize":8}`)); err == nil {
		t.Error("unknown field accepted")
	}
	// A bare-number duration is rejected at decode, with the field named.
	_, err = DecodeJobRequest([]byte(`{"scenario":"lasso","max_link_delay":10}`))
	if err == nil || !strings.Contains(err.Error(), "max_link_delay") {
		t.Errorf("bare duration: err = %v", err)
	}
}

func TestJobRequestMarshalRoundTrip(t *testing.T) {
	req := JobRequest{
		Scenario: "ridge", N: 32, Seed: 9,
		Knobs: map[string]string{"block_size": "64", "gram_precompute": "false",
			"max_link_delay": "5ms"},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// Knob fields appear as top-level JSON fields in wire syntax.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["block_size"]) != "64" || string(m["gram_precompute"]) != "false" {
		t.Errorf("numeric/bool knobs not bare literals: %s", b)
	}
	if string(m["max_link_delay"]) != `"5ms"` {
		t.Errorf("duration knob not a quoted string: %s", b)
	}
	back, err := DecodeJobRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != req.Scenario || back.N != req.N || back.Seed != req.Seed {
		t.Fatalf("core fields did not round-trip: %+v", back)
	}
	if len(back.Knobs) != len(req.Knobs) {
		t.Fatalf("knobs did not round-trip: %v vs %v", back.Knobs, req.Knobs)
	}
	for k, v := range req.Knobs {
		if back.Knobs[k] != v {
			t.Errorf("knob %s: %q != %q after round-trip", k, back.Knobs[k], v)
		}
	}
}

// Every knob in the table must be accepted end to end over HTTP at its
// default value — if someone adds a knob whose JSON name the server cannot
// take, or renames one side, this fails. This is the server half of the
// flag<->JSON drift gate (the flag half lives in the root package tests).
func TestEveryTableKnobAcceptedOverHTTP(t *testing.T) {
	_, c := testServer(t, Config{Workers: 2, QueueDepth: 4})
	for _, k := range repro.KnobTable() {
		k := k
		t.Run(k.JSON, func(t *testing.T) {
			out, err := c.Solve(context.Background(), JobRequest{
				Scenario: "lasso", N: 16, Seed: 7,
				Knobs: map[string]string{k.JSON: k.Default},
			})
			if err != nil {
				t.Fatalf("knob %s at default %q rejected: %v", k.JSON, k.Default, err)
			}
			if out.JobErr != "" {
				t.Fatalf("knob %s job failed: %s", k.JSON, out.JobErr)
			}
			if out.Report == nil || !out.Report.Converged {
				t.Fatalf("knob %s job did not converge", k.JSON)
			}
		})
	}
}

// A fully tuned job — tiling, fan-out and the lean Gram form — must solve
// and report bit-identically to the untuned job for the bit-preserving
// knobs (block_size, intra_parallel), and still converge under the lean
// form.
func TestServeTunedJobs(t *testing.T) {
	_, c := testServer(t, Config{Workers: 2, QueueDepth: 4})
	base, err := c.Solve(context.Background(), JobRequest{Scenario: "lasso", N: 96, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if base.Report == nil || !base.Report.Converged {
		t.Fatal("untuned job did not converge")
	}
	tuned, err := c.Solve(context.Background(), JobRequest{
		Scenario: "lasso", N: 96, Seed: 7,
		Knobs: map[string]string{"block_size": "16", "intra_parallel": "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Report == nil || !tuned.Report.Converged {
		t.Fatal("tuned job did not converge")
	}
	if tuned.Report.Updates != base.Report.Updates ||
		tuned.Report.FinalResidual != base.Report.FinalResidual {
		t.Errorf("bit-preserving knobs changed the trajectory: updates %d vs %d, residual %v vs %v",
			tuned.Report.Updates, base.Report.Updates,
			tuned.Report.FinalResidual, base.Report.FinalResidual)
	}
	lean, err := c.Solve(context.Background(), JobRequest{
		Scenario: "lasso", N: 96, Seed: 7,
		Knobs: map[string]string{"gram_precompute": "false"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lean.Report == nil || !lean.Report.Converged {
		t.Fatal("lean-Gram job did not converge")
	}
}

// Invalid knob values are 400s at admission — never a queue slot, never a
// 200 stream with a late error.
func TestServeKnobValidation(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 1})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"negative block size", `{"scenario":"lasso","block_size":-4}`, "below minimum"},
		{"drop out of range", `{"scenario":"lasso","drop_prob":1.5}`, "[0,1]"},
		{"bad bool", `{"scenario":"lasso","gram_precompute":"maybe"}`, "boolean"},
		{"negative delay", `{"scenario":"lasso","max_link_delay":"-5ms"}`, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := c.http().Post(c.Base+"/v1/solve", "application/json",
				bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var msg bytes.Buffer
			msg.ReadFrom(resp.Body)
			if !strings.Contains(msg.String(), tc.want) {
				t.Fatalf("body %q does not mention %q", msg.String(), tc.want)
			}
		})
	}
}
