package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// testServer spins up a Server over httptest and returns it with a client.
func testServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// waitHealth polls /healthz until pred holds or the deadline passes.
func waitHealth(t *testing.T, c *Client, pred func(*Health) bool) *Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err == nil && pred(h) {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("health predicate never held (last: %+v, err: %v)", h, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeSolveEndToEnd: a small lasso job streams accepted/started events
// and a converged terminal report with the scenario quality line.
func TestServeSolveEndToEnd(t *testing.T) {
	_, c := testServer(t, Config{Workers: 2, QueueDepth: 4})
	out, err := c.Solve(context.Background(), JobRequest{Scenario: "lasso", N: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rejected {
		t.Fatal("job rejected by an idle server")
	}
	if out.JobErr != "" {
		t.Fatalf("job failed: %s", out.JobErr)
	}
	if out.Report == nil || !out.Report.Converged {
		t.Fatalf("report = %+v, want converged", out.Report)
	}
	if out.Report.Engine != "model" {
		t.Fatalf("engine = %q, want default model", out.Report.Engine)
	}
	if !strings.Contains(out.Describe, "MSE") {
		t.Fatalf("describe = %q, want the lasso quality line", out.Describe)
	}
	if out.JobID == "" {
		t.Fatal("no job id on the stream")
	}
}

// TestServeEngineMatrix runs one job per served engine; each must converge.
func TestServeEngineMatrix(t *testing.T) {
	_, c := testServer(t, Config{Workers: 4, QueueDepth: 8})
	for _, engine := range []string{"model", "sim", "simsync", "shared", "message"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			out, err := c.Solve(context.Background(), JobRequest{
				Scenario: "lasso", N: 16, Seed: 7, Engine: engine, Workers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.JobErr != "" {
				t.Fatalf("job failed: %s", out.JobErr)
			}
			if out.Report == nil || !out.Report.Converged {
				t.Fatalf("engine %s did not converge", engine)
			}
		})
	}
}

// TestServeBadRequests: malformed jobs fail admission with 400 (a transport
// error from the client's point of view), not a queue slot.
func TestServeBadRequests(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 1})
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"unknown scenario", JobRequest{Scenario: "nope"}, "registered:"},
		{"missing scenario", JobRequest{}, "scenario is required"},
		{"dist engine", JobRequest{Scenario: "lasso", Engine: "dist"}, "not served"},
		{"unknown engine", JobRequest{Scenario: "lasso", Engine: "warp"}, "unknown engine"},
		{"bad delay", JobRequest{Scenario: "lasso", Delay: "bounded:0"}, "delay"},
		{"bad theta", JobRequest{Scenario: "lasso", Theta: 1.5}, "theta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Solve(context.Background(), tc.req)
			if err == nil {
				t.Fatal("bad request was accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.want)
			}
		})
	}
	// The unknown-scenario 400 must list every registered name.
	_, err := c.Solve(context.Background(), JobRequest{Scenario: "nope"})
	for _, name := range []string{"lasso", "ridge", "netflow", "routing"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-scenario error %v does not list %q", err, name)
		}
	}
}

// slowJob is a request that cannot finish on its own: stopping disabled,
// huge budget — only its deadline or a cancel ends it.
func slowJob(timeoutMS int64) JobRequest {
	tol := 0.0
	return JobRequest{
		Scenario: "lasso", N: 16, Seed: 7,
		Tol: &tol, MaxIter: 1 << 30, TimeoutMS: timeoutMS,
	}
}

// TestServeAdmissionControl fills one worker and a depth-1 queue with
// unbounded jobs; the third concurrent job must be refused with 503 and a
// Retry-After hint.
func TestServeAdmissionControl(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 1, MaxJobTime: 20 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Solve(ctx, slowJob(15000)) // ends via cancel below
		}()
	}
	// Wait until one job runs and one sits in the queue — the server is
	// provably saturated before the third job asks.
	waitHealth(t, c, func(h *Health) bool { return h.Running == 1 && h.Queued == 1 })

	out, err := c.Solve(context.Background(), slowJob(15000))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rejected {
		t.Fatal("third job was admitted past a full queue")
	}
	if out.RetryAfter <= 0 {
		t.Fatalf("503 carried no Retry-After hint (got %v)", out.RetryAfter)
	}
	cancel()
	wg.Wait()
	h := waitHealth(t, c, func(h *Health) bool { return h.Rejected >= 1 })
	if h.Accepted != 2 {
		t.Fatalf("accepted = %d, want 2", h.Accepted)
	}
}

// TestServeJobDeadline: a job whose timeout_ms elapses mid-run ends with a
// terminal error event naming the deadline, and the worker is freed.
func TestServeJobDeadline(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 2})
	out, err := c.Solve(context.Background(), slowJob(150))
	if err != nil {
		t.Fatal(err)
	}
	if out.JobErr == "" {
		t.Fatalf("deadline-bound unbounded job returned a report (converged=%v)", out.Report != nil && out.Report.Converged)
	}
	if !strings.Contains(out.JobErr, "deadline") {
		t.Fatalf("terminal error %q does not name the deadline", out.JobErr)
	}
	// The pool must be usable right after: the same worker takes new work.
	out2, err := c.Solve(context.Background(), JobRequest{Scenario: "lasso", N: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Report == nil || !out2.Report.Converged {
		t.Fatal("worker did not recover after a deadline-killed job")
	}
}

// TestServeProgressEvents: a long-enough job emits progress liveness events
// before its terminal event.
func TestServeProgressEvents(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 2, ProgressEvery: 20 * time.Millisecond})
	out, err := c.Solve(context.Background(), slowJob(300))
	if err != nil {
		t.Fatal(err)
	}
	if out.Progress == 0 {
		t.Fatal("no progress events over a 300ms job with a 20ms progress period")
	}
}

// TestServeScratchReuse: sequential same-signature jobs hit the signature
// pool instead of allocating fresh scratch state.
func TestServeScratchReuse(t *testing.T) {
	s, c := testServer(t, Config{Workers: 1, QueueDepth: 2})
	req := JobRequest{Scenario: "lasso", N: 16, Seed: 7, Engine: "sim", Workers: 2}
	for i := 0; i < 3; i++ {
		out, err := c.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if out.JobErr != "" {
			t.Fatalf("job %d failed: %s", i, out.JobErr)
		}
	}
	created, reused := s.pool.Stats()
	if created != 1 || reused != 2 {
		t.Fatalf("pool stats created=%d reused=%d, want 1 and 2", created, reused)
	}
}

// TestServeScenariosEndpoint: the listing carries every registered scenario.
func TestServeScenariosEndpoint(t *testing.T) {
	_, c := testServer(t, Config{Workers: 1, QueueDepth: 1})
	list, err := c.Scenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, sc := range repro.Scenarios() {
		want[sc.Name] = false
	}
	for _, info := range list {
		if _, ok := want[info.Name]; !ok {
			t.Fatalf("listing has unregistered scenario %q", info.Name)
		}
		want[info.Name] = true
		if info.Summary == "" || info.DefaultN <= 0 {
			t.Fatalf("scenario %q listed without summary/default size: %+v", info.Name, info)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("registered scenario %q missing from listing", name)
		}
	}
}

// TestServeDrain: Shutdown lets the running job finish its stream, then new
// submissions are refused as draining.
func TestServeDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}

	type result struct {
		out *Outcome
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		out, err := c.Solve(context.Background(), slowJob(400))
		resCh <- result{out, err}
	}()
	waitHealth(t, c, func(h *Health) bool { return h.Running == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight stream broken by drain: %v", r.err)
	}
	if r.out.JobErr == "" && r.out.Report == nil {
		t.Fatal("in-flight job got no terminal event")
	}

	out, err := c.Solve(context.Background(), JobRequest{Scenario: "lasso", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rejected {
		t.Fatal("draining server admitted a new job")
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health status = %q, want draining", h.Status)
	}
}

// TestServeListens: the real listener path (Start/Addr/Shutdown) works on
// an ephemeral port.
func TestServeListens(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", Workers: 1, QueueDepth: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + s.Addr()}
	out, err := c.Solve(context.Background(), JobRequest{Scenario: "routing", N: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.JobErr != "" || out.Report == nil || !out.Report.Converged {
		t.Fatalf("routing solve over TCP failed: %+v", out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
