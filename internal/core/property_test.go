package core

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/macroiter"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/steering"
	"repro/internal/vec"
)

// Property: Theorem 1's bound (5) holds on randomly generated admissible
// instances — separable strongly convex f + L1, any admissible step, any
// bounded delay, any flexibility fraction.
func TestTheorem1RandomInstances(t *testing.T) {
	rng := vec.NewRNG(71)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		a := make([]float64, n)
		tt := make([]float64, n)
		for i := range a {
			a[i] = 0.5 + 4*rng.Float64()
			tt[i] = 4*rng.Float64() - 2
		}
		f := operators.NewSeparable(a, tt)
		gamma := (0.3 + 0.7*rng.Float64()) * operators.MaxStep(f)
		lambda := 0.3 * rng.Float64()
		op := operators.NewProxGradBF(f, prox.L1{Lambda: lambda}, gamma)
		ystar, ok := operators.FixedPoint(op, make([]float64, n), 1e-14, 400000)
		if !ok {
			t.Fatalf("trial %d: reference failed", trial)
		}
		b := 1 + rng.Intn(8)
		theta := rng.Float64()
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = ystar[i] + rng.Range(1, 5)
		}
		res, err := Run(Config{
			Op:       op,
			Steering: steering.NewCyclic(n),
			Delay:    delay.BoundedRandom{B: b, Seed: rng.Uint64()},
			Theta:    theta,
			X0:       x0,
			XStar:    ystar,
			Tol:      1e-11,
			MaxIter:  2000000,
		})
		if err != nil || !res.Converged {
			t.Fatalf("trial %d: run failed (err=%v)", trial, err)
		}
		rho := operators.TheoreticalRho(f, gamma)
		rep, err := CheckTheorem1(res, rho)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !rep.Holds {
			t.Fatalf("trial %d: bound violated (n=%d b=%d theta=%.2f gamma=%.3f): ratio %v",
				trial, n, b, theta, gamma, rep.WorstRatio)
		}
	}
}

// Property: the engine's recorded strict boundaries always satisfy the
// suffix guarantee against the recorded labels, for varied delay models.
func TestStrictBoundariesSuffixGuaranteeProperty(t *testing.T) {
	op, xstar := testSystem(t, 6)
	models := []delay.Model{
		delay.Fresh{},
		delay.BoundedRandom{B: 10, Seed: 3},
		delay.OutOfOrder{W: 20, Seed: 4},
		delay.SqrtGrowth{},
	}
	for _, m := range models {
		res, err := Run(Config{
			Op:      op,
			Delay:   m,
			XStar:   xstar,
			MaxIter: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		bs := res.StrictBoundaries
		for k, b := range bs {
			start := 0
			if k > 0 {
				start = bs[k-1]
			}
			for _, r := range res.Records {
				if r.J > b && r.MinLabel < start {
					t.Fatalf("%s: suffix guarantee violated at boundary %d (J=%d label=%d < %d)",
						m.Name(), b, r.J, r.MinLabel, start)
				}
			}
		}
		// Strict boundaries can be no denser than Definition 2 boundaries.
		if len(bs) > len(res.Boundaries) {
			t.Fatalf("%s: strict count %d > def2 count %d", m.Name(), len(bs), len(res.Boundaries))
		}
		// And strict macro windows never admit pre-previous-window reads.
		if v := macroiter.EpochStaleness(bs, res.Records); v != 0 {
			t.Fatalf("%s: %d staleness violations in strict windows", m.Name(), v)
		}
	}
}

// Property: the error sequence of a contracting run is bounded by its
// initial value at all times (the outermost box), for any delay model and
// theta.
func TestErrorNeverExceedsInitialBox(t *testing.T) {
	op, xstar := testSystem(t, 6)
	rng := vec.NewRNG(73)
	for trial := 0; trial < 10; trial++ {
		theta := rng.Float64()
		res, err := Run(Config{
			Op:      op,
			Delay:   delay.BoundedRandom{B: 1 + rng.Intn(16), Seed: rng.Uint64()},
			Theta:   theta,
			XStar:   xstar,
			MaxIter: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		e0 := res.Errors[0]
		for j, e := range res.Errors {
			if e > e0+1e-12 {
				t.Fatalf("trial %d: error %v at iteration %d exceeds initial %v",
					trial, e, j, e0)
			}
		}
	}
}

// Property: updates count equals the total size of all recorded S_j.
func TestUpdatesMatchRecords(t *testing.T) {
	op, _ := testSystem(t, 5)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewBlockCyclic(5, 2),
		MaxIter:  321,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range res.Records {
		total += len(r.S)
	}
	if total != res.Updates {
		t.Errorf("sum |S_j| = %d, Updates = %d", total, res.Updates)
	}
}
