package core

import (
	"errors"
	"math"

	"repro/internal/macroiter"
	"repro/internal/vec"
)

// Theorem1Report is the outcome of checking inequality (5) of the paper,
//
//	||x(j) - x*||^2 <= (1 - rho)^k * max_i ||x_i(0) - x*||^2,  rho = gamma*mu,
//
// against a recorded run, with k the number of completed macro-iterations
// at iteration j (strict sequence).
type Theorem1Report struct {
	// Holds reports whether the bound held at every iteration.
	Holds bool
	// WorstRatio is max_j measured/bound (<= 1 when the bound holds).
	WorstRatio float64
	// WorstIter is the iteration attaining WorstRatio.
	WorstIter int
	// K is the number of macro-iterations completed by the end of the run.
	K int
	// MeasuredRatePerK is the fitted per-macro-iteration contraction of the
	// squared error (compare against 1-rho).
	MeasuredRatePerK float64
	// BoundRatePerK is 1 - rho.
	BoundRatePerK float64
	// ErrSqAtBoundaries lists the squared max-norm error at each strict
	// macro-iteration boundary (the series the bound constrains).
	ErrSqAtBoundaries []float64
	// BoundAtBoundaries lists the corresponding theoretical bounds.
	BoundAtBoundaries []float64
}

// CheckTheorem1 validates inequality (5) for a run produced with a known
// XStar (so that res.Errors is populated) and a contraction parameter
// rho = gamma*mu. It uses the strict macro-iteration sequence, whose suffix
// guarantee is the hypothesis under which the level-set argument proves (5).
func CheckTheorem1(res *Result, rho float64) (*Theorem1Report, error) {
	if len(res.Errors) == 0 {
		return nil, errors.New("core: CheckTheorem1 needs a run with XStar error tracking")
	}
	if rho <= 0 || rho >= 1 {
		return nil, errors.New("core: CheckTheorem1 needs rho in (0,1)")
	}
	e0 := res.Errors[0]
	e0sq := e0 * e0
	rep := &Theorem1Report{Holds: true, BoundRatePerK: 1 - rho}
	bs := res.StrictBoundaries
	rep.K = len(bs)
	for j := 0; j < len(res.Errors); j++ {
		k := macroiter.KOf(bs, j)
		bound := math.Pow(1-rho, float64(k)) * e0sq
		measured := res.Errors[j] * res.Errors[j]
		var ratio float64
		switch {
		case bound > 0:
			ratio = measured / bound
		case measured == 0:
			ratio = 0
		default:
			ratio = math.Inf(1)
		}
		if ratio > rep.WorstRatio {
			rep.WorstRatio = ratio
			rep.WorstIter = j
		}
	}
	if rep.WorstRatio > 1+1e-9 {
		rep.Holds = false
	}
	for _, b := range bs {
		if b < len(res.Errors) {
			k := macroiter.KOf(bs, b)
			esq := res.Errors[b] * res.Errors[b]
			rep.ErrSqAtBoundaries = append(rep.ErrSqAtBoundaries, esq)
			rep.BoundAtBoundaries = append(rep.BoundAtBoundaries,
				math.Pow(1-rho, float64(k))*e0sq)
		}
	}
	rep.MeasuredRatePerK = fitRate(rep.ErrSqAtBoundaries)
	return rep, nil
}

// fitRate fits a geometric decay factor to a positive series by
// least-squares on the logs (NaN when fewer than two usable points).
func fitRate(series []float64) float64 {
	var xs, ys []float64
	for k, v := range series {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			xs = append(xs, float64(k))
			ys = append(ys, math.Log(v))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	sx, sy := vec.Sum(xs), vec.Sum(ys)
	sxx, sxy := vec.Dot(xs, xs), vec.Dot(xs, ys)
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return math.Exp((n*sxy - sx*sy) / den)
}
