// Package core implements the paper's primary contribution: an engine for
// parallel or distributed asynchronous iterations with unbounded delays,
// possible out-of-order messages, and flexible communication, together with
// the macro-iteration bookkeeping and the Theorem 1 convergence-bound
// checker.
//
// The engine in this package (ModelSim) executes the *mathematical model* of
// Definitions 1 and 3 literally: a global iteration counter j, explicit
// steering sets S_j, explicit label functions l_i(j), and full access to the
// past iterates that unbounded delays may reach back to. The systems-level
// engines (virtual-time discrete events, real goroutines) live in
// internal/des and internal/runtime and feed the same bookkeeping.
package core

import (
	"fmt"
	"sort"
)

// History stores the per-component update history of an asynchronous
// iteration so that any past value x_i(l) can be retrieved — the storage
// required by unbounded delays. Memory is proportional to the number of
// updates actually performed (not iterations x dimension), because a
// component's value only changes when it is relaxed.
type History struct {
	n     int
	iters [][]int     // per component: strictly increasing update iterations
	vals  [][]float64 // parallel values
}

// NewHistory starts a history at iteration 0 with initial iterate x0.
func NewHistory(x0 []float64) *History {
	h := &History{
		n:     len(x0),
		iters: make([][]int, len(x0)),
		vals:  make([][]float64, len(x0)),
	}
	for i, v := range x0 {
		h.iters[i] = append(h.iters[i], 0)
		h.vals[i] = append(h.vals[i], v)
	}
	return h
}

// Dim returns the number of components.
func (h *History) Dim() int { return h.n }

// Set records that component i took value v at iteration j. Iterations must
// be recorded in increasing order per component.
func (h *History) Set(i, j int, v float64) {
	last := h.iters[i][len(h.iters[i])-1]
	if j < last {
		panic(fmt.Sprintf("core: History.Set out of order for comp %d: j=%d after %d", i, j, last))
	}
	if j == last {
		h.vals[i][len(h.vals[i])-1] = v
		return
	}
	h.iters[i] = append(h.iters[i], j)
	h.vals[i] = append(h.vals[i], v)
}

// At returns x_i(l): the value component i had at iteration label l (the
// most recent update at or before l).
func (h *History) At(i, l int) float64 {
	it := h.iters[i]
	// Find the largest index with it[idx] <= l.
	idx := sort.Search(len(it), func(k int) bool { return it[k] > l }) - 1
	if idx < 0 {
		idx = 0
	}
	return h.vals[i][idx]
}

// Latest returns the most recent value of component i.
func (h *History) Latest(i int) float64 { return h.vals[i][len(h.vals[i])-1] }

// LatestIter returns the iteration at which component i was last updated.
func (h *History) LatestIter(i int) int { return h.iters[i][len(h.iters[i])-1] }

// Snapshot materializes the full iterate vector x(l) at label l.
func (h *History) Snapshot(l int) []float64 {
	x := make([]float64, h.n)
	for i := range x {
		x[i] = h.At(i, l)
	}
	return x
}

// LatestSnapshot materializes the freshest iterate vector.
func (h *History) LatestSnapshot() []float64 {
	x := make([]float64, h.n)
	h.LatestSnapshotInto(x)
	return x
}

// LatestSnapshotInto writes the freshest iterate vector into dst (length n)
// without allocating.
func (h *History) LatestSnapshotInto(dst []float64) {
	for i := range dst {
		dst[i] = h.Latest(i)
	}
}

// Updates returns the total number of recorded updates (excluding the
// initial values).
func (h *History) Updates() int {
	total := 0
	for i := range h.iters {
		total += len(h.iters[i]) - 1
	}
	return total
}
