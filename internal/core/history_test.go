package core

import "testing"

func TestHistoryBasics(t *testing.T) {
	h := NewHistory([]float64{1, 2})
	if h.Dim() != 2 {
		t.Fatalf("Dim = %d", h.Dim())
	}
	if h.At(0, 0) != 1 || h.At(1, 0) != 2 {
		t.Fatal("initial values wrong")
	}
	h.Set(0, 3, 10)
	h.Set(0, 5, 20)
	cases := []struct {
		l    int
		want float64
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 10}, {4, 10}, {5, 20}, {100, 20},
	}
	for _, c := range cases {
		if got := h.At(0, c.l); got != c.want {
			t.Errorf("At(0, %d) = %v, want %v", c.l, got, c.want)
		}
	}
	if h.Latest(0) != 20 || h.LatestIter(0) != 5 {
		t.Error("Latest wrong")
	}
	if h.Latest(1) != 2 || h.LatestIter(1) != 0 {
		t.Error("untouched component changed")
	}
	if h.Updates() != 2 {
		t.Errorf("Updates = %d", h.Updates())
	}
}

func TestHistorySnapshot(t *testing.T) {
	h := NewHistory([]float64{0, 0, 0})
	h.Set(0, 1, 1)
	h.Set(1, 2, 2)
	h.Set(2, 3, 3)
	h.Set(0, 4, 4)
	snap2 := h.Snapshot(2)
	if snap2[0] != 1 || snap2[1] != 2 || snap2[2] != 0 {
		t.Errorf("Snapshot(2) = %v", snap2)
	}
	latest := h.LatestSnapshot()
	if latest[0] != 4 || latest[1] != 2 || latest[2] != 3 {
		t.Errorf("LatestSnapshot = %v", latest)
	}
}

func TestHistorySameIterationOverwrites(t *testing.T) {
	h := NewHistory([]float64{0})
	h.Set(0, 1, 5)
	h.Set(0, 1, 7)
	if h.Latest(0) != 7 {
		t.Errorf("Latest = %v, want 7", h.Latest(0))
	}
	if h.Updates() != 1 {
		t.Errorf("Updates = %d, want 1", h.Updates())
	}
}

func TestHistoryOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h := NewHistory([]float64{0})
	h.Set(0, 5, 1)
	h.Set(0, 3, 2)
}
