package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/delay"
	"repro/internal/flexible"
	"repro/internal/macroiter"
	"repro/internal/operators"
	"repro/internal/steering"
	"repro/internal/vec"
)

// Config describes an asynchronous iteration (F or G, x(0), S, L) in the
// sense of Definitions 1 and 3 of the paper.
type Config struct {
	// Op is the fixed-point operator being relaxed.
	Op operators.Operator
	// Steering produces the sets S_j (Definition 1). Defaults to cyclic.
	Steering steering.Policy
	// Delay produces the labels l_i(j). Defaults to Fresh (l = j-1).
	Delay delay.Model
	// X0 is the initial iterate; defaults to the zero vector.
	X0 []float64

	// Theta enables flexible communication (Definition 3): reads blend the
	// labelled value x_h(l_h(j)) toward the freshest available value
	// x_h(j-1) by fraction Theta in [0, 1]. Theta = 0 reproduces plain
	// asynchronous iterations (Definition 1); Theta = 1 reads fully fresh
	// partial state. Intermediate values model consuming one-sided partial
	// updates mid-computation (the hatched arrows of Fig. 2).
	Theta float64

	// MaxIter bounds the number of global iterations.
	MaxIter int
	// Tol stops the run when the fixed-point residual ||F(x)-x||_inf (or
	// the error to XStar when provided) falls below it. Zero disables.
	Tol float64
	// XStar, when known, enables exact error tracking, Theorem 1 checking
	// and constraint (3) validation.
	XStar []float64
	// Weights is the positive weight vector u of the weighted max norm;
	// defaults to all ones.
	Weights []float64
	// WorkerOf maps a component to the machine that owns it (for the epoch
	// sequence of [30]); defaults to identity (one component per machine).
	WorkerOf func(i int) int
	// Workers is the number of machines (required if WorkerOf is set).
	Workers int
	// ResidualEvery controls how often the O(n*row) fixed-point residual is
	// evaluated for stopping; defaults to the dimension.
	ResidualEvery int
	// CheckConstraint3 validates inequality (3) at every read when XStar is
	// known, recording violations.
	CheckConstraint3 bool
	// Scratch, when non-nil, supplies reusable hot-path buffers so repeated
	// runs of the same shape do not re-allocate them. The model engine is
	// single-threaded, so one RunScratch serves a whole run; it must not be
	// shared by concurrent Runs.
	Scratch *RunScratch
	// Tuning is installed on the operator scratch (supplied or fresh), so
	// a pooled scratch reused across runs always carries this run's knobs.
	Tuning operators.Tuning
	// Done, when non-nil, cancels the run: the iteration loop stops at the
	// next doneCheckEvery boundary and the result reports Cancelled and
	// not Converged. Cancellation never perturbs the trajectory computed
	// so far — the model engine stays deterministic.
	Done <-chan struct{}
	// Progress, when non-nil, is incremented once per global iteration so
	// external observers can watch the run live.
	Progress *atomic.Int64
}

// doneCheckEvery is how many iterations pass between Done-channel polls: a
// non-blocking select is cheap but not free, and model iterations can be
// as small as one component relaxation.
const doneCheckEvery = 256

// RunScratch bundles the model engine's reusable buffers: the operator
// evaluation scratch and the read vectors assembled every iteration.
type RunScratch struct {
	// Op is the operator-evaluation scratch threaded through every
	// component relaxation.
	Op            *operators.Scratch
	xread, xlabel []float64
	gsSnap        []float64 // residual-aware steering's snapshot buffer
	blockOut      []float64 // block-evaluation output buffer
	seenWorkers   []bool
}

// NewRunScratch returns an empty RunScratch; buffers grow on first use.
func NewRunScratch() *RunScratch { return &RunScratch{Op: operators.NewScratch()} }

// vecs returns the read buffers resized to n.
func (s *RunScratch) vecs(n int) (xread, xlabel []float64) {
	if cap(s.xread) < n {
		s.xread = make([]float64, n)
	}
	if cap(s.xlabel) < n {
		s.xlabel = make([]float64, n)
	}
	return s.xread[:n], s.xlabel[:n]
}

// blockVec returns the block-evaluation output buffer resized to n.
func (s *RunScratch) blockVec(n int) []float64 {
	if cap(s.blockOut) < n {
		s.blockOut = make([]float64, n)
	}
	return s.blockOut[:n]
}

// workersSeen returns a cleared bool slice of length w.
func (s *RunScratch) workersSeen(w int) []bool {
	if cap(s.seenWorkers) < w {
		s.seenWorkers = make([]bool, w)
	}
	seen := s.seenWorkers[:w]
	for i := range seen {
		seen[i] = false
	}
	return seen
}

// recordArena hands out stable []int copies from chunked backing storage so
// per-iteration steering-set records cost amortized one allocation per chunk
// instead of one per iteration. Saved slices stay valid for the life of the
// Result that references them.
type recordArena struct{ buf []int }

func (a *recordArena) save(s []int) []int {
	if cap(a.buf)-len(a.buf) < len(s) {
		size := 4096
		if len(s) > size {
			size = len(s)
		}
		a.buf = make([]int, 0, size)
	}
	start := len(a.buf)
	a.buf = append(a.buf, s...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// Result reports an asynchronous iteration run.
type Result struct {
	// X is the final iterate vector.
	X []float64
	// Iterations is the number of global iterations performed.
	Iterations int
	// Converged reports whether the tolerance was met.
	Converged bool
	// Updates is the total number of component relaxations.
	Updates int

	// Boundaries is the Definition 2 macro-iteration sequence {j_k}.
	Boundaries []int
	// StrictBoundaries is the suffix-guaranteed macro-iteration sequence
	// used for Theorem 1 validation.
	StrictBoundaries []int
	// Epochs is the epoch sequence of Mishchenko et al. [30].
	Epochs []int

	// Errors[j] = ||x(j) - x*||_inf for j = 0..Iterations (only when XStar
	// was provided).
	Errors []float64
	// Residuals holds (iteration, residual) samples.
	Residuals []ResidualSample
	// Records is the per-iteration log (S_j, l(j), worker) for offline
	// macro/epoch analysis.
	Records []macroiter.Record
	// Constraint3Violations counts reads that violated inequality (3)
	// (checked only when XStar is known and CheckConstraint3 is set).
	Constraint3Violations int
	// FinalResidual is ||F(x)-x||_inf at the final iterate.
	FinalResidual float64
	// Cancelled reports that Config.Done fired before the run converged or
	// exhausted MaxIter.
	Cancelled bool
}

// ResidualSample pairs an iteration with its fixed-point residual.
type ResidualSample struct {
	Iter     int
	Residual float64
}

// Run executes the asynchronous iteration model. It is deterministic for
// deterministic steering/delay models.
func Run(cfg Config) (*Result, error) {
	if cfg.Op == nil {
		return nil, errors.New("core: Config.Op is required")
	}
	n := cfg.Op.Dim()
	if n < 1 {
		return nil, errors.New("core: operator dimension must be positive")
	}
	if cfg.Steering == nil {
		cfg.Steering = steering.NewCyclic(n)
	}
	if cfg.Delay == nil {
		cfg.Delay = delay.Fresh{}
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	if len(x0) != n {
		return nil, fmt.Errorf("core: X0 has length %d, want %d", len(x0), n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 1000 * n
	}
	if cfg.Theta < 0 || cfg.Theta > 1 {
		return nil, fmt.Errorf("core: Theta %v outside [0,1]", cfg.Theta)
	}
	u := cfg.Weights
	if u == nil {
		u = operators.Ones(n)
	}
	if len(u) != n {
		return nil, fmt.Errorf("core: Weights has length %d, want %d", len(u), n)
	}
	workerOf := cfg.WorkerOf
	workers := cfg.Workers
	if workerOf == nil {
		workerOf = func(i int) int { return i }
		workers = n
	}
	if workers < 1 {
		return nil, errors.New("core: Workers must be positive when WorkerOf is set")
	}
	residEvery := cfg.ResidualEvery
	if residEvery <= 0 {
		residEvery = n
	}

	hist := NewHistory(x0)
	tracker := macroiter.NewTracker(n)
	epochs := macroiter.NewEpochTracker(workers)
	res := &Result{}
	scratch := cfg.Scratch
	if scratch == nil {
		scratch = NewRunScratch()
	}
	if scratch.Op == nil {
		scratch.Op = operators.NewScratch()
	}
	scratch.Op.SetTuning(cfg.Tuning)

	// Wire residual-aware steering (Gauss–Southwell) to live residuals. The
	// closure runs once per candidate component per Select, so it reuses a
	// dedicated snapshot buffer instead of materializing one per call.
	if ra, ok := cfg.Steering.(steering.ResidualAware); ok {
		if cap(scratch.gsSnap) < n {
			scratch.gsSnap = make([]float64, n)
		}
		gsSnap := scratch.gsSnap[:n]
		ra.SetResidualFunc(func(i int) float64 {
			hist.LatestSnapshotInto(gsSnap)
			return operators.EvalComponent(cfg.Op, scratch.Op, i, gsSnap) - gsSnap[i]
		})
	}

	if cfg.XStar != nil {
		res.Errors = append(res.Errors, vec.DistInf(x0, cfg.XStar))
	}

	xread, xlabel := scratch.vecs(n)
	var arena recordArena
	converged := false

	for j := 1; j <= cfg.MaxIter; j++ {
		if cfg.Done != nil && j%doneCheckEvery == 0 {
			select {
			case <-cfg.Done:
				res.Cancelled = true
			default:
			}
			if res.Cancelled {
				break
			}
		}
		S := cfg.Steering.Select(j)

		// Assemble the read vector: labelled values, optionally blended
		// toward the freshest state (flexible communication).
		minLabel := j - 1
		for h := 0; h < n; h++ {
			l := cfg.Delay.Label(h, j)
			if l < minLabel {
				minLabel = l
			}
			lv := hist.At(h, l)
			xlabel[h] = lv
			if cfg.Theta > 0 {
				xread[h] = flexible.Interpolate(lv, hist.At(h, j-1), cfg.Theta)
			} else {
				xread[h] = lv
			}
		}

		if cfg.CheckConstraint3 && cfg.XStar != nil && cfg.Theta > 0 {
			if rep := flexible.CheckConstraint3(xread, xlabel, cfg.XStar, u); !rep.OK {
				res.Constraint3Violations++
			}
		}

		// Relax the selected components; others keep x_i(j-1) implicitly.
		// Maximal contiguous ascending runs of S are evaluated as blocks so
		// coupled operators amortize their shared work across the run (a
		// block-steered worker phase is exactly one such run); scattered
		// components degrade to length-1 runs, which EvalBlock routes
		// through the same code path with identical results.
		for s := 0; s < len(S); {
			e := s + 1
			for e < len(S) && S[e] == S[e-1]+1 {
				e++
			}
			lo, hi := S[s], S[e-1]+1
			out := scratch.blockVec(hi - lo)
			operators.EvalBlock(cfg.Op, scratch.Op, lo, hi, xread, out)
			for c := lo; c < hi; c++ {
				hist.Set(c, j, out[c-lo])
			}
			s = e
		}

		// Bookkeeping: macro-iterations (Definition 2), epochs, records.
		tracker.Observe(j, S, minLabel)
		seen := scratch.workersSeen(workers)
		for _, i := range S {
			w := workerOf(i)
			if w >= 0 && w < len(seen) && !seen[w] {
				epochs.Observe(j, w)
				seen[w] = true
			}
		}
		// Steering policies may reuse their S buffer, so the record needs a
		// copy; the arena amortizes those copies into chunked allocations.
		res.Records = append(res.Records, macroiter.Record{
			J: j, S: arena.save(S), MinLabel: minLabel, Worker: workerOf(S[0]),
		})

		if cfg.XStar != nil {
			res.Errors = append(res.Errors, distInfLatest(hist, cfg.XStar))
		}
		if cfg.Progress != nil {
			cfg.Progress.Add(1)
		}

		// Stopping.
		if cfg.Tol > 0 {
			if cfg.XStar != nil {
				if res.Errors[len(res.Errors)-1] <= cfg.Tol {
					converged, res.Iterations = true, j
					break
				}
			} else if j%residEvery == 0 {
				// xlabel is dead until the next iteration re-fills it, so it
				// doubles as the snapshot buffer for the residual check.
				hist.LatestSnapshotInto(xlabel)
				r := operators.ResidualWith(cfg.Op, scratch.Op, xlabel)
				res.Residuals = append(res.Residuals, ResidualSample{Iter: j, Residual: r})
				if r <= cfg.Tol {
					converged, res.Iterations = true, j
					break
				}
			}
		}
		res.Iterations = j
	}

	res.X = hist.LatestSnapshot()
	res.Converged = converged
	res.Updates = hist.Updates()
	res.Boundaries = tracker.Boundaries()
	res.StrictBoundaries = macroiter.StrictBoundaries(n, res.Records)
	res.Epochs = epochs.Boundaries()
	res.FinalResidual = operators.Residual(cfg.Op, res.X)
	return res, nil
}

func distInfLatest(h *History, xstar []float64) float64 {
	m := 0.0
	for i := 0; i < h.Dim(); i++ {
		d := math.Abs(h.Latest(i) - xstar[i])
		if d > m {
			m = d
		}
	}
	return m
}
