package core

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/steering"
	"repro/internal/vec"
)

// testSystem returns a diagonally dominant Jacobi operator and its exact
// fixed point.
func testSystem(t *testing.T, n int) (*operators.Linear, []float64) {
	t.Helper()
	rng := vec.NewRNG(123)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.5*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, off*1.5+1)
	}
	rhs := rng.NormalVector(n)
	op := operators.JacobiFromSystem(m, rhs)
	if cf := op.ContractionFactor(); cf >= 1 {
		t.Fatalf("test operator not contracting: %v", cf)
	}
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return op, xstar
}

func TestRunRequiresOperator(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error for missing operator")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	op, _ := testSystem(t, 3)
	if _, err := Run(Config{Op: op, X0: []float64{1}}); err == nil {
		t.Error("expected X0 length error")
	}
	if _, err := Run(Config{Op: op, Theta: 2}); err == nil {
		t.Error("expected Theta range error")
	}
	if _, err := Run(Config{Op: op, Weights: []float64{1}}); err == nil {
		t.Error("expected Weights length error")
	}
}

func TestRunSynchronousJacobiConverges(t *testing.T) {
	op, xstar := testSystem(t, 8)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewAll(8),
		Delay:    delay.Fresh{},
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; final error %v", res.Errors[len(res.Errors)-1])
	}
	if !vec.Equal(res.X, xstar, 1e-9) {
		t.Errorf("X = %v, want %v", res.X, xstar)
	}
	// Jacobi with fresh labels: every iteration covers all components, so
	// each iteration is a macro-iteration.
	if len(res.Boundaries) != res.Iterations {
		t.Errorf("Jacobi should have one macro-iteration per sweep: %d vs %d",
			len(res.Boundaries), res.Iterations)
	}
}

func TestRunAsyncCyclicConverges(t *testing.T) {
	op, xstar := testSystem(t, 8)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewCyclic(8),
		Delay:    delay.BoundedRandom{B: 6, Seed: 1},
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("bounded-delay async run did not converge")
	}
	if len(res.Boundaries) == 0 || len(res.StrictBoundaries) == 0 {
		t.Error("no macro-iterations recorded")
	}
	if len(res.Epochs) == 0 {
		t.Error("no epochs recorded")
	}
}

func TestRunUnboundedDelaysConverge(t *testing.T) {
	// Baudet's regime: delays grow like sqrt(j) yet the iteration converges
	// because condition b) holds.
	op, xstar := testSystem(t, 6)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewCyclic(6),
		Delay:    delay.SqrtGrowth{},
		XStar:    xstar,
		Tol:      1e-8,
		MaxIter:  300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("unbounded-delay run did not converge; error %v",
			res.Errors[len(res.Errors)-1])
	}
}

func TestRunOutOfOrderConverges(t *testing.T) {
	op, xstar := testSystem(t, 6)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewCyclic(6),
		Delay:    delay.OutOfOrder{W: 12, Seed: 3},
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("out-of-order run did not converge")
	}
}

func TestFlexibleCommunicationSpeedsConvergence(t *testing.T) {
	// With heavy delays, blending reads toward fresher partial state
	// (Theta > 0) should not slow convergence — typically it accelerates it
	// ([9],[10]'s empirical claim).
	op, xstar := testSystem(t, 8)
	run := func(theta float64) int {
		res, err := Run(Config{
			Op:       op,
			Steering: steering.NewCyclic(8),
			Delay:    delay.BoundedRandom{B: 16, Seed: 7},
			Theta:    theta,
			XStar:    xstar,
			Tol:      1e-10,
			MaxIter:  400000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("theta=%v did not converge", theta)
		}
		return res.Iterations
	}
	plain := run(0)
	flex := run(0.8)
	if flex > plain {
		t.Errorf("flexible (%d iters) slower than plain async (%d iters)", flex, plain)
	}
}

// monotoneSystem builds a Jacobi operator with a nonnegative iteration
// matrix (M-matrix source system) and a start above the fixed point: the
// async iterates then decrease monotonically componentwise — the monotone
// convergence regime in which the paper says flexible communication is
// naturally admissible.
func monotoneSystem(t *testing.T, n int) (*operators.Linear, []float64, []float64) {
	t.Helper()
	rng := vec.NewRNG(77)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, -rng.Range(0, 0.5)) // nonpositive off-diagonals
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, off*1.5+1)
	}
	rhs := rng.RandomVector(n, 0.5, 2)
	op := operators.JacobiFromSystem(m, rhs) // A = -M_offdiag/D >= 0
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = xstar[i] + 1 + rng.Float64()
	}
	return op, xstar, x0
}

func TestConstraint3NoViolationsOnMonotoneRun(t *testing.T) {
	op, xstar, x0 := monotoneSystem(t, 6)
	res, err := Run(Config{
		Op:               op,
		Steering:         steering.NewCyclic(6),
		Delay:            delay.BoundedRandom{B: 8, Seed: 5},
		Theta:            0.5,
		X0:               x0,
		XStar:            xstar,
		Tol:              1e-10,
		MaxIter:          200000,
		CheckConstraint3: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Constraint3Violations != 0 {
		t.Errorf("constraint (3) violated %d times on a monotone run",
			res.Constraint3Violations)
	}
}

func TestConstraint3ViolationsAreRareOnNonMonotoneRun(t *testing.T) {
	// Without monotonicity the engine cannot guarantee (3) for every read;
	// the theory's assumption may be transiently violated, but violations
	// must remain a small fraction of iterations.
	op, xstar := testSystem(t, 6)
	res, err := Run(Config{
		Op:               op,
		Steering:         steering.NewCyclic(6),
		Delay:            delay.BoundedRandom{B: 8, Seed: 5},
		Theta:            0.5,
		XStar:            xstar,
		Tol:              1e-10,
		MaxIter:          200000,
		CheckConstraint3: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if frac := float64(res.Constraint3Violations) / float64(res.Iterations); frac > 0.05 {
		t.Errorf("constraint (3) violation fraction %v too high", frac)
	}
}

func TestGaussSouthwellSteering(t *testing.T) {
	op, xstar := testSystem(t, 8)
	gs := steering.NewFair(steering.NewGaussSouthwell(8), 8, 32)
	res, err := Run(Config{
		Op:       op,
		Steering: gs,
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Gauss-Southwell run did not converge")
	}
}

func TestErrorsMonotoneEnough(t *testing.T) {
	// The error sequence need not be monotone under delays, but it must
	// decay overall: final error far below initial.
	op, xstar := testSystem(t, 6)
	res, err := Run(Config{
		Op:      op,
		Delay:   delay.BoundedRandom{B: 10, Seed: 2},
		XStar:   xstar,
		Tol:     1e-9,
		MaxIter: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors[len(res.Errors)-1] >= res.Errors[0] {
		t.Error("error did not decrease")
	}
}

func TestResidualStoppingWithoutXStar(t *testing.T) {
	op, xstar := testSystem(t, 6)
	res, err := Run(Config{
		Op:      op,
		Tol:     1e-9,
		MaxIter: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("residual-based stop did not trigger")
	}
	if !vec.Equal(res.X, xstar, 1e-6) {
		t.Errorf("converged away from fixed point")
	}
	if len(res.Residuals) == 0 {
		t.Error("no residual samples recorded")
	}
	if res.FinalResidual > 1e-8 {
		t.Errorf("FinalResidual = %v", res.FinalResidual)
	}
}

func TestWorkerOfGroupsEpochs(t *testing.T) {
	op, _ := testSystem(t, 8)
	blocks := vec.Blocks(8, 2)
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewBlockCyclic(8, 2),
		WorkerOf: func(i int) int { return vec.BlockOf(blocks, i) },
		Workers:  2,
		MaxIter:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 machines alternate blocks; each epoch needs 2 updates per machine =
	// 4 iterations.
	if len(res.Epochs) != 25 {
		t.Errorf("epochs = %d, want 25", len(res.Epochs))
	}
}

func TestTheorem1BoundHolds(t *testing.T) {
	// Separable strongly convex f + L1: the Definition 4 operator contracts
	// in max norm with factor exactly 1 - gamma*mu at gamma = 2/(mu+L).
	a := []float64{1, 1.5, 2, 3}
	tt := []float64{2, -1, 0.5, -0.25}
	f := operators.NewSeparable(a, tt)
	g := prox.L1{Lambda: 0.3}
	gamma := operators.MaxStep(f)
	op := operators.NewProxGradBF(f, g, gamma)
	ystar, ok := operators.FixedPoint(op, make([]float64, 4), 1e-14, 200000)
	if !ok {
		t.Fatal("reference fixed point not found")
	}
	res, err := Run(Config{
		Op:       op,
		Steering: steering.NewCyclic(4),
		Delay:    delay.BoundedRandom{B: 4, Seed: 11},
		Theta:    0.5,
		X0:       []float64{5, 5, 5, 5},
		XStar:    ystar,
		Tol:      1e-12,
		MaxIter:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("prox-grad run did not converge")
	}
	rho := operators.TheoreticalRho(f, gamma)
	rep, err := CheckTheorem1(res, rho)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("Theorem 1 bound violated: worst ratio %v at iteration %d",
			rep.WorstRatio, rep.WorstIter)
	}
	if rep.K == 0 {
		t.Error("no macro-iterations for bound check")
	}
	if !(rep.MeasuredRatePerK <= rep.BoundRatePerK+1e-9) {
		t.Errorf("measured rate %v slower than bound %v",
			rep.MeasuredRatePerK, rep.BoundRatePerK)
	}
}

func TestCheckTheorem1Errors(t *testing.T) {
	if _, err := CheckTheorem1(&Result{}, 0.5); err == nil {
		t.Error("expected error without Errors")
	}
	if _, err := CheckTheorem1(&Result{Errors: []float64{1}}, 1.5); err == nil {
		t.Error("expected error for rho out of range")
	}
}

func TestRecordsMatchIterations(t *testing.T) {
	op, _ := testSystem(t, 4)
	res, err := Run(Config{Op: op, MaxIter: 57})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 57 || res.Iterations != 57 {
		t.Errorf("records %d, iterations %d", len(res.Records), res.Iterations)
	}
	for k, r := range res.Records {
		if r.J != k+1 {
			t.Fatalf("record %d has J=%d", k, r.J)
		}
	}
	if res.Updates != 57 { // cyclic relaxes one component per iteration
		t.Errorf("Updates = %d", res.Updates)
	}
}
