package core

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/steering"
)

func TestRunWithComponentErrorsReplayMatches(t *testing.T) {
	op, xstar := testSystem(t, 6)
	res, perIter, err := RunWithComponentErrors(Config{
		Op:       op,
		Steering: steering.NewCyclic(6),
		Delay:    delay.BoundedRandom{B: 6, Seed: 3},
		XStar:    xstar,
		Tol:      1e-9,
		MaxIter:  200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(perIter) != res.Iterations+1 {
		t.Fatalf("perIter length %d, iterations %d", len(perIter), res.Iterations)
	}
	// Max over components of the recorded componentwise error must equal
	// the engine's max-norm error series.
	for j, errs := range perIter {
		m := 0.0
		for _, e := range errs {
			if e > m {
				m = e
			}
		}
		if math.Abs(m-res.Errors[j]) > 1e-12 {
			t.Fatalf("iteration %d: component-error max %v != engine error %v",
				j, m, res.Errors[j])
		}
	}
}

func TestCheckBoxesNestedAndShrinking(t *testing.T) {
	// The nested-box structure of the General Convergence Theorem: suffix
	// envelopes at strict macro boundaries form strictly shrinking boxes on
	// a contracting run.
	op, xstar := testSystem(t, 6)
	res, perIter, err := RunWithComponentErrors(Config{
		Op:       op,
		Steering: steering.NewCyclic(6),
		Delay:    delay.BoundedRandom{B: 4, Seed: 5},
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckBoxes(res.StrictBoundaries, perIter)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nested {
		t.Errorf("boxes not nested: worst violation %v", rep.WorstInclusionViolation)
	}
	if len(rep.Radii) < 3 {
		t.Fatalf("too few boxes: %v", rep.Radii)
	}
	// Radii must shrink overall: final radius far below the initial one.
	first, last := rep.Radii[0], rep.Radii[len(rep.Radii)-1]
	if last >= first*1e-3 {
		t.Errorf("box radii did not shrink: %v -> %v", first, last)
	}
	// Every shrink factor is at most 1 (+ tolerance).
	for k, f := range rep.ShrinkFactors {
		if !math.IsNaN(f) && f > 1+1e-12 {
			t.Errorf("shrink factor %d = %v > 1", k, f)
		}
	}
}

func TestCheckBoxesWithFlexibleCommunication(t *testing.T) {
	op, xstar := testSystem(t, 6)
	res, perIter, err := RunWithComponentErrors(Config{
		Op:       op,
		Steering: steering.NewCyclic(6),
		Delay:    delay.BoundedRandom{B: 6, Seed: 7},
		Theta:    0.6,
		XStar:    xstar,
		Tol:      1e-10,
		MaxIter:  300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckBoxes(res.StrictBoundaries, perIter)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nested {
		t.Error("flexible-communication run broke box nesting")
	}
}

func TestCheckBoxesValidation(t *testing.T) {
	if _, err := CheckBoxes(nil, [][]float64{{1}}); err == nil {
		t.Error("expected error for empty boundaries")
	}
	if _, err := CheckBoxes([]int{1}, nil); err == nil {
		t.Error("expected error for empty errors")
	}
}

func TestRunWithComponentErrorsRequiresXStar(t *testing.T) {
	op, _ := testSystem(t, 4)
	if _, _, err := RunWithComponentErrors(Config{Op: op, MaxIter: 10}); err == nil {
		t.Error("expected error without XStar")
	}
}
