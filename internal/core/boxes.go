package core

import (
	"errors"
	"math"

	"repro/internal/delay"
)

// BoxReport is the outcome of checking the nested level-set ("box")
// structure of the General Convergence Theorem of Bertsekas (the paper's
// Section III): from one macro-iteration to the next, the iterate vector
// enters a strictly smaller box around the fixed point,
//
//	X(0) ⊃ X(1) ⊃ X(2) ⊃ ...,  x* = ∩_k X(k),
//
// where X(k) is the Cartesian product of per-component error intervals.
// Empirically we take X(k) to be the envelope of per-component errors
// observed after the k-th strict macro-iteration boundary and verify the
// inclusions (with tolerance) plus geometric shrinkage of the box radius.
type BoxReport struct {
	// Nested reports whether every successive box was contained in its
	// predecessor (within tolerance).
	Nested bool
	// Radii[k] is the max-norm radius of box k (the envelope over all
	// iterations in window k and later of the componentwise error).
	Radii []float64
	// ShrinkFactors[k] = Radii[k+1] / Radii[k].
	ShrinkFactors []float64
	// WorstInclusionViolation is the largest amount (absolute error units)
	// by which a later box exceeded an earlier one; 0 when perfectly
	// nested.
	WorstInclusionViolation float64
}

// CheckBoxes verifies the nested-box structure on a recorded run. It
// requires the run to have tracked per-iteration errors (XStar provided)
// and uses the strict macro-iteration boundaries. perIterComponentErrors
// must contain, for each iteration j = 0..Iterations, the componentwise
// absolute errors |x_i(j) - x*_i| (the engine's ComponentErrors option
// records them).
func CheckBoxes(boundaries []int, perIterComponentErrors [][]float64) (*BoxReport, error) {
	if len(perIterComponentErrors) == 0 {
		return nil, errors.New("core: CheckBoxes needs per-iteration component errors")
	}
	if len(boundaries) == 0 {
		return nil, errors.New("core: CheckBoxes needs at least one macro-iteration boundary")
	}
	n := len(perIterComponentErrors[0])
	numIters := len(perIterComponentErrors)

	// envelope[k][i] = sup over j >= boundaries[k] of |x_i(j) - x*_i|: the
	// half-width of box k in component i. Computed by a reverse sweep.
	suffixMax := make([]float64, n)
	for i := range suffixMax {
		suffixMax[i] = 0
	}
	// envAt[j][i] would be O(iters*n) memory; we only need it at the
	// boundaries, so collect those on the way back.
	boxAt := make(map[int][]float64, len(boundaries)+1)
	wanted := map[int]bool{0: true}
	for _, b := range boundaries {
		if b < numIters {
			wanted[b] = true
		}
	}
	for j := numIters - 1; j >= 0; j-- {
		errs := perIterComponentErrors[j]
		for i := 0; i < n; i++ {
			if errs[i] > suffixMax[i] {
				suffixMax[i] = errs[i]
			}
		}
		if wanted[j] {
			cp := make([]float64, n)
			copy(cp, suffixMax)
			boxAt[j] = cp
		}
	}

	rep := &BoxReport{Nested: true}
	// Box 0 is the envelope from iteration 0; box k from boundary k.
	ordered := make([][]float64, 0, len(boundaries)+1)
	ordered = append(ordered, boxAt[0])
	for _, b := range boundaries {
		if env, ok := boxAt[b]; ok {
			ordered = append(ordered, env)
		}
	}
	for k, env := range ordered {
		radius := 0.0
		for _, v := range env {
			if v > radius {
				radius = v
			}
		}
		rep.Radii = append(rep.Radii, radius)
		if k > 0 {
			prev := ordered[k-1]
			for i := 0; i < n; i++ {
				if d := env[i] - prev[i]; d > rep.WorstInclusionViolation {
					rep.WorstInclusionViolation = d
				}
			}
		}
	}
	// Suffix envelopes are nonincreasing by construction, so inclusion
	// holds automatically; the informative checks are the radii shrinkage.
	for k := 1; k < len(rep.Radii); k++ {
		if rep.Radii[k-1] > 0 {
			rep.ShrinkFactors = append(rep.ShrinkFactors, rep.Radii[k]/rep.Radii[k-1])
		} else {
			rep.ShrinkFactors = append(rep.ShrinkFactors, math.NaN())
		}
	}
	if rep.WorstInclusionViolation > 1e-12 {
		rep.Nested = false
	}
	return rep, nil
}

// RunWithComponentErrors executes Run and additionally records the
// per-iteration componentwise errors |x_i(j) - x*_i| needed by CheckBoxes.
// cfg.XStar is required.
func RunWithComponentErrors(cfg Config) (*Result, [][]float64, error) {
	if cfg.XStar == nil {
		return nil, nil, errors.New("core: RunWithComponentErrors requires XStar")
	}
	n := cfg.Op.Dim()
	if cfg.Delay == nil {
		cfg.Delay = delay.Fresh{} // mirror Run's default for the replay
	}
	var perIter [][]float64
	// Wrap the operator to observe the evolving iterate? The engine owns
	// the history; simplest correct approach: run the engine, then replay
	// the recorded run to reconstruct iterates. Replaying requires the
	// exact read vectors, which depend on delays/theta; instead we re-run
	// the engine logic here via the records and a fresh history.
	res, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Reconstruct: execute the same configuration again, mirroring updates
	// into a history and snapshotting errors. Determinism of the engine
	// under identical cfg guarantees the same trajectory, but stateful
	// steering policies may not be replayable; guard against mismatch by
	// comparing final iterates.
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	hist := NewHistory(x0)
	snapshotErr := func() []float64 {
		e := make([]float64, n)
		for i := 0; i < n; i++ {
			d := hist.Latest(i) - cfg.XStar[i]
			if d < 0 {
				d = -d
			}
			e[i] = d
		}
		return e
	}
	perIter = append(perIter, snapshotErr())
	xread := make([]float64, n)
	for _, rec := range res.Records {
		for h := 0; h < n; h++ {
			l := cfg.Delay.Label(h, rec.J)
			lv := hist.At(h, l)
			if cfg.Theta > 0 {
				fresh := hist.At(h, rec.J-1)
				lv = lv + cfg.Theta*(fresh-lv)
			}
			xread[h] = lv
		}
		for _, i := range rec.S {
			hist.Set(i, rec.J, cfg.Op.Component(i, xread))
		}
		perIter = append(perIter, snapshotErr())
	}
	// Sanity: the replay must match the engine's final iterate.
	for i := 0; i < n; i++ {
		if math.Abs(hist.Latest(i)-res.X[i]) > 1e-12 {
			return nil, nil, errors.New("core: replay diverged from engine run (non-replayable steering?)")
		}
	}
	return res, perIter, nil
}
