// Package delay implements the delay/label models of the asynchronous
// iterations literature reproduced by this library.
//
// An asynchronous iteration (Definition 1 of the paper) uses, at global
// iteration j, component values x_i(l_i(j)) where the label functions
// l_i : N -> N are subject to
//
//	a) l_i(j) <= j-1                       (values come from the past),
//	b) lim_{j->inf} l_i(j) = +inf          (unbounded delays allowed, but
//	                                        arbitrarily old values are
//	                                        eventually abandoned),
//	c) every i appears infinitely often in the steering sets S_j.
//
// Chaotic relaxation (Chazan–Miranker, Miellou) instead assumes a delay
// bound: d_i(j) = j - l_i(j) <= b (condition d). Baudet's model removes the
// bound; his canonical example has the delay of one component growing like
// sqrt(j). Out-of-order message delivery corresponds to label functions that
// are not monotone in j.
//
// A Model here answers "which past iterate does component i read at
// iteration j". All stochastic models are *stateless*: the label for (i, j)
// is a pure hash of (seed, i, j), so repeated queries agree and simulations
// are reproducible.
package delay

import (
	"fmt"
	"math"
)

// Model yields the label function of an asynchronous iteration.
type Model interface {
	// Label returns l_i(j) for 1-based iteration j >= 1, clamped to
	// [0, j-1] so that condition a) holds by construction.
	Label(i, j int) int
	// Name identifies the model in traces and experiment tables.
	Name() string
}

func clampLabel(l, j int) int {
	if l > j-1 {
		l = j - 1
	}
	if l < 0 {
		l = 0
	}
	return l
}

// hash64 mixes (seed, i, j) into pseudo-random 64 bits (SplitMix64 finalizer).
func hash64(seed uint64, i, j int) uint64 {
	z := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ (uint64(j)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fresh is the zero-delay model: every update reads the immediately
// preceding iterate, l_i(j) = j-1. This is the Gauss–Seidel-style freshest
// admissible schedule and the natural synchronous baseline.
type Fresh struct{}

func (Fresh) Label(i, j int) int { return clampLabel(j-1, j) }
func (Fresh) Name() string       { return "fresh" }

// Constant applies a fixed delay D >= 1: l_i(j) = j - D (clamped).
type Constant struct{ D int }

func (c Constant) Label(i, j int) int { return clampLabel(j-c.D, j) }
func (c Constant) Name() string       { return fmt.Sprintf("constant(%d)", c.D) }

// BoundedRandom draws, independently per (i, j), a delay uniform on [1, B].
// This is the chaotic-relaxation regime (condition d with bound b = B).
type BoundedRandom struct {
	B    int
	Seed uint64
}

func (m BoundedRandom) Label(i, j int) int {
	if m.B <= 1 {
		return clampLabel(j-1, j)
	}
	d := 1 + int(hash64(m.Seed, i, j)%uint64(m.B))
	return clampLabel(j-d, j)
}

func (m BoundedRandom) Name() string { return fmt.Sprintf("boundedRandom(B=%d)", m.B) }

// SqrtGrowth reproduces Baudet's unbounded-delay example (Section II of the
// paper): the delay of the designated slow components grows like sqrt(j)
// while fast components read fresh values. Condition b) still holds because
// l(j) = j - sqrt(j) - 1 -> +inf.
type SqrtGrowth struct {
	// Slow marks which components experience the growing delay. A nil map
	// means every component is slow.
	Slow map[int]bool
}

func (m SqrtGrowth) Label(i, j int) int {
	if m.Slow != nil && !m.Slow[i] {
		return clampLabel(j-1, j)
	}
	d := 1 + int(math.Floor(math.Sqrt(float64(j))))
	return clampLabel(j-d, j)
}

func (m SqrtGrowth) Name() string { return "sqrtGrowth" }

// LogGrowth has delays growing like log2(j): a milder unbounded-delay model.
type LogGrowth struct{ Slow map[int]bool }

func (m LogGrowth) Label(i, j int) int {
	if m.Slow != nil && !m.Slow[i] {
		return clampLabel(j-1, j)
	}
	d := 1
	if j > 1 {
		d = 1 + int(math.Floor(math.Log2(float64(j))))
	}
	return clampLabel(j-d, j)
}

func (m LogGrowth) Name() string { return "logGrowth" }

// OutOfOrder models out-of-order message delivery: within a sliding window
// of width W the label jumps around non-monotonically (a later update may
// read an older iterate than an earlier update did). Delays stay bounded by
// W so convergence theory still applies, but label monotonicity — which the
// epoch analysis of Mishchenko et al. assumes — is violated.
type OutOfOrder struct {
	W    int
	Seed uint64
}

func (m OutOfOrder) Label(i, j int) int {
	w := m.W
	if w < 1 {
		w = 1
	}
	d := 1 + int(hash64(m.Seed, i, j)%uint64(w))
	return clampLabel(j-d, j)
}

func (m OutOfOrder) Name() string { return fmt.Sprintf("outOfOrder(W=%d)", m.W) }

// PerComponent assigns a distinct sub-model to each component; components
// beyond len(Models) fall back to Fresh. It expresses heterogeneous workers
// (one slow machine among fast ones).
type PerComponent struct{ Models []Model }

func (m PerComponent) Label(i, j int) int {
	if i >= 0 && i < len(m.Models) && m.Models[i] != nil {
		return m.Models[i].Label(i, j)
	}
	return clampLabel(j-1, j)
}

func (m PerComponent) Name() string { return "perComponent" }

// Monotone wraps a model and forces labels to be nondecreasing in j for
// each component (the Miellou / Mishchenko monotone-delay assumption).
// It is stateful and therefore not safe for concurrent use.
type Monotone struct {
	Inner Model
	last  map[int]int
}

// NewMonotone returns a monotone wrapper around inner.
func NewMonotone(inner Model) *Monotone {
	return &Monotone{Inner: inner, last: make(map[int]int)}
}

func (m *Monotone) Label(i, j int) int {
	l := m.Inner.Label(i, j)
	if prev, ok := m.last[i]; ok && l < prev {
		l = prev
	}
	m.last[i] = clampLabel(l, j)
	return m.last[i]
}

func (m *Monotone) Name() string { return "monotone(" + m.Inner.Name() + ")" }
