package delay

import (
	"math"
	"testing"
	"testing/quick"
)

// allModels returns one instance of every model for generic property checks.
func allModels() []Model {
	return []Model{
		Fresh{},
		Constant{D: 3},
		BoundedRandom{B: 5, Seed: 1},
		SqrtGrowth{},
		SqrtGrowth{Slow: map[int]bool{1: true}},
		LogGrowth{},
		OutOfOrder{W: 8, Seed: 2},
		PerComponent{Models: []Model{Fresh{}, Constant{D: 2}}},
		NewMonotone(OutOfOrder{W: 8, Seed: 3}),
	}
}

func TestConditionAHoldsByConstruction(t *testing.T) {
	for _, m := range allModels() {
		for j := 1; j <= 200; j++ {
			for i := 0; i < 4; i++ {
				l := m.Label(i, j)
				if l < 0 || l > j-1 {
					t.Fatalf("%s: l_%d(%d) = %d violates condition a", m.Name(), i, j, l)
				}
			}
		}
	}
}

func TestFresh(t *testing.T) {
	m := Fresh{}
	for j := 1; j < 10; j++ {
		if m.Label(0, j) != j-1 {
			t.Fatalf("Fresh label(%d) = %d", j, m.Label(0, j))
		}
	}
}

func TestConstant(t *testing.T) {
	m := Constant{D: 3}
	if m.Label(0, 10) != 7 {
		t.Errorf("Constant(3).Label(10) = %d", m.Label(0, 10))
	}
	if m.Label(0, 2) != 0 { // clamped
		t.Errorf("Constant(3).Label(2) = %d", m.Label(0, 2))
	}
}

func TestBoundedRandomDeterministicAndBounded(t *testing.T) {
	m := BoundedRandom{B: 7, Seed: 9}
	for j := 1; j <= 500; j++ {
		l1 := m.Label(2, j)
		l2 := m.Label(2, j)
		if l1 != l2 {
			t.Fatal("BoundedRandom not deterministic per (i,j)")
		}
		if d := j - l1; d > 7 && j > 7 {
			t.Fatalf("delay %d exceeds bound at j=%d", d, j)
		}
	}
	ok, i, j, d := CheckChaoticBound(m, 3, 500, 7)
	if !ok {
		t.Errorf("CheckChaoticBound failed at i=%d j=%d d=%d", i, j, d)
	}
	if ok, _, _, _ := CheckChaoticBound(m, 3, 500, 3); ok {
		t.Error("bound 3 should be violated by B=7 model")
	}
}

func TestSqrtGrowthMatchesBaudetExample(t *testing.T) {
	m := SqrtGrowth{}
	// d(j) = 1 + floor(sqrt(j)): unbounded but l(j) -> inf.
	for _, j := range []int{4, 16, 100, 10000} {
		d := j - m.Label(0, j)
		want := 1 + int(math.Floor(math.Sqrt(float64(j))))
		if d != want {
			t.Errorf("delay at j=%d is %d, want %d", j, d, want)
		}
	}
	// Ratio d(j)/sqrt(j) tends to 1.
	j := 1 << 20
	d := float64(j - m.Label(0, j))
	if r := d / math.Sqrt(float64(j)); math.Abs(r-1) > 0.01 {
		t.Errorf("d(j)/sqrt(j) = %v, want ~1", r)
	}
}

func TestSqrtGrowthSlowSet(t *testing.T) {
	m := SqrtGrowth{Slow: map[int]bool{1: true}}
	if m.Label(0, 100) != 99 {
		t.Error("fast component should read fresh value")
	}
	if m.Label(1, 100) == 99 {
		t.Error("slow component should be delayed")
	}
}

func TestConditionBProxy(t *testing.T) {
	for _, m := range allModels() {
		rep := CheckConditions(m, 3, 400)
		if !rep.AOK {
			t.Errorf("%s: condition a violated: %v", m.Name(), rep.Violations)
		}
		if !rep.BOK {
			t.Errorf("%s: condition b proxy failed: %v", m.Name(), rep.Violations)
		}
	}
}

// frozen is a pathological model whose component 0 reads x(0) forever;
// condition b fails and asynchronous convergence theory does not apply.
type frozen struct{}

func (frozen) Label(i, j int) int {
	if i == 0 {
		return 0
	}
	return j - 1
}
func (frozen) Name() string { return "frozen" }

func TestConditionBDetectsFrozenComponent(t *testing.T) {
	rep := CheckConditions(frozen{}, 2, 400)
	if rep.BOK {
		t.Error("frozen component not detected by condition b proxy")
	}
	if !rep.AOK {
		t.Error("frozen model still satisfies condition a")
	}
}

func TestOutOfOrderIsNonMonotone(t *testing.T) {
	rep := CheckConditions(OutOfOrder{W: 16, Seed: 4}, 2, 500)
	if rep.MonotoneLabels {
		t.Error("OutOfOrder produced monotone labels; expected reordering")
	}
	repFresh := CheckConditions(Fresh{}, 2, 500)
	if !repFresh.MonotoneLabels {
		t.Error("Fresh labels must be monotone")
	}
}

func TestMonotoneWrapperForcesMonotonicity(t *testing.T) {
	m := NewMonotone(OutOfOrder{W: 16, Seed: 4})
	prev := -1
	for j := 1; j <= 500; j++ {
		l := m.Label(0, j)
		if l < prev {
			t.Fatalf("monotone wrapper violated at j=%d: %d < %d", j, l, prev)
		}
		prev = l
	}
}

func TestDelaySeries(t *testing.T) {
	s := DelaySeries(Constant{D: 2}, 0, 10)
	if len(s) != 10 {
		t.Fatalf("series length %d", len(s))
	}
	if s[9] != 2 {
		t.Errorf("series tail = %d, want 2", s[9])
	}
}

func TestMeanDelayStats(t *testing.T) {
	rep := CheckConditions(Constant{D: 4}, 1, 1000)
	if rep.MaxDelay != 4 {
		t.Errorf("MaxDelay = %d, want 4", rep.MaxDelay)
	}
	// Early clamped iterations drag the mean slightly below 4.
	if rep.MeanDelay > 4 || rep.MeanDelay < 3.9 {
		t.Errorf("MeanDelay = %v", rep.MeanDelay)
	}
}

// Property: for arbitrary seeds/windows, OutOfOrder labels always satisfy
// condition a and delays stay within the window (after warmup).
func TestOutOfOrderProperties(t *testing.T) {
	f := func(seed uint64, wRaw uint8, iRaw uint8) bool {
		w := int(wRaw%32) + 1
		i := int(iRaw % 8)
		m := OutOfOrder{W: w, Seed: seed}
		for j := w + 1; j < w+200; j++ {
			l := m.Label(i, j)
			if l < 0 || l > j-1 {
				return false
			}
			if j-l > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerComponentFallback(t *testing.T) {
	m := PerComponent{Models: []Model{Constant{D: 5}}}
	if m.Label(0, 10) != 5 {
		t.Errorf("component 0 should use Constant(5)")
	}
	if m.Label(3, 10) != 9 {
		t.Errorf("component 3 should fall back to fresh")
	}
}

func TestNames(t *testing.T) {
	for _, m := range allModels() {
		if m.Name() == "" {
			t.Error("empty model name")
		}
	}
}
