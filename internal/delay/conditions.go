package delay

import "fmt"

// Report is the result of checking the classical admissibility conditions of
// asynchronous iterations over a finite horizon.
type Report struct {
	Horizon int
	// AOK: labels satisfy 0 <= l_i(j) <= j-1 everywhere (condition a).
	AOK bool
	// BOK: labels diverge — for the checked thresholds every component's
	// label eventually stays above the threshold (finite-horizon proxy of
	// condition b).
	BOK bool
	// MaxDelay is max over (i, j) of d_i(j) = j - l_i(j).
	MaxDelay int
	// MeanDelay is the average of d_i(j) over the horizon.
	MeanDelay float64
	// MonotoneLabels reports whether every l_i is nondecreasing in j (true
	// means no out-of-order reads were observed).
	MonotoneLabels bool
	// Violations holds human-readable descriptions of the first few
	// violations encountered, for diagnostics.
	Violations []string
}

// CheckConditions examines model m for n components over iterations
// 1..horizon and reports on conditions a) and b) plus delay statistics.
//
// Condition b) (lim l_i(j) = +inf) cannot be decided from a finite prefix;
// the proxy used here is: for the threshold J = horizon/4, there exists j0
// such that l_i(j) >= J for all j in [j0, horizon] and all i. Models with
// genuinely bounded-away labels (e.g. a frozen component) fail this proxy.
func CheckConditions(m Model, n, horizon int) Report {
	rep := Report{Horizon: horizon, AOK: true, BOK: true, MonotoneLabels: true}
	if horizon < 4 || n < 1 {
		return rep
	}
	sumDelay := 0
	count := 0
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	// minTail[i] over the final quarter of the horizon.
	threshold := horizon / 4
	minTail := make([]int, n)
	for i := range minTail {
		minTail[i] = int(^uint(0) >> 1)
	}
	for j := 1; j <= horizon; j++ {
		for i := 0; i < n; i++ {
			l := m.Label(i, j)
			if l < 0 || l > j-1 {
				rep.AOK = false
				rep.addViolation(fmt.Sprintf("condition a: l_%d(%d) = %d not in [0, %d]", i, j, l, j-1))
			}
			d := j - l
			sumDelay += d
			count++
			if d > rep.MaxDelay {
				rep.MaxDelay = d
			}
			if l < prev[i] {
				rep.MonotoneLabels = false
			}
			prev[i] = l
			if j > horizon-threshold {
				if l < minTail[i] {
					minTail[i] = l
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if minTail[i] < threshold {
			rep.BOK = false
			rep.addViolation(fmt.Sprintf("condition b proxy: component %d tail label %d < threshold %d", i, minTail[i], threshold))
		}
	}
	if count > 0 {
		rep.MeanDelay = float64(sumDelay) / float64(count)
	}
	return rep
}

func (r *Report) addViolation(s string) {
	if len(r.Violations) < 8 {
		r.Violations = append(r.Violations, s)
	}
}

// CheckChaoticBound verifies the Chazan–Miranker/Miellou condition d): every
// delay d_i(j) observed over the horizon (for j > b, where clamping cannot
// mask anything) satisfies d_i(j) <= b. It returns ok and the first
// violating (i, j, d) if any.
func CheckChaoticBound(m Model, n, horizon, b int) (ok bool, vi, vj, vd int) {
	for j := b + 1; j <= horizon; j++ {
		for i := 0; i < n; i++ {
			d := j - m.Label(i, j)
			if d > b {
				return false, i, j, d
			}
		}
	}
	return true, 0, 0, 0
}

// DelaySeries returns d_i(j) for j = 1..horizon for a fixed component;
// experiment E1 prints it to exhibit the sqrt(j) growth of Baudet's example.
func DelaySeries(m Model, i, horizon int) []int {
	out := make([]int, horizon)
	for j := 1; j <= horizon; j++ {
		out[j-1] = j - m.Label(i, j)
	}
	return out
}
