package multigrid

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestNewSolverValidation(t *testing.T) {
	for _, n := range []int{0, 2, 4, 6, 8} {
		if _, err := NewSolver(n); err == nil {
			t.Errorf("N=%d should be rejected", n)
		}
	}
	for _, n := range []int{3, 7, 15, 31, 63} {
		if _, err := NewSolver(n); err != nil {
			t.Errorf("N=%d should be accepted: %v", n, err)
		}
	}
}

// manufactured solution u = sin(pi x) sin(pi y): -Lap u = 2 pi^2 u.
func manufactured(n int) (f []float64, want []float64) {
	h := 1.0 / float64(n+1)
	f = PoissonRHS(n, func(x, y float64) float64 {
		return 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
	})
	want = make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			x := float64(c+1) * h
			y := float64(r+1) * h
			want[idx(n, r, c)] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	return f, want
}

func TestSolveManufacturedSolution(t *testing.T) {
	n := 31
	s, err := NewSolver(n)
	if err != nil {
		t.Fatal(err)
	}
	f, want := manufactured(n)
	u, cycles, _, ok := s.Solve(f, 1e-10, 60)
	if !ok {
		t.Fatalf("did not converge in %d cycles", cycles)
	}
	// Discretization error is O(h^2) ~ 1e-3 at n=31.
	worst := 0.0
	for i := range u {
		if d := math.Abs(u[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 5e-3 {
		t.Errorf("max deviation from manufactured solution %v", worst)
	}
}

func TestVCycleConvergenceFactorGridIndependent(t *testing.T) {
	// Multigrid's signature property: the per-cycle contraction factor is
	// bounded away from 1 independently of the grid size.
	for _, n := range []int{15, 31, 63} {
		s, _ := NewSolver(n)
		s.PreSmooth, s.PostSmooth = 2, 2
		f, _ := manufactured(n)
		_, _, factors, ok := s.Solve(f, 1e-10, 60)
		if !ok {
			t.Fatalf("n=%d did not converge", n)
		}
		mf := MeanConvergenceFactor(factors)
		if mf > 0.35 {
			t.Errorf("n=%d: convergence factor %v too close to 1", n, mf)
		}
	}
}

func TestChaoticSmootherConverges(t *testing.T) {
	n := 31
	s, _ := NewSolver(n)
	s.Smoother = SmootherChaotic
	s.Seed = 7
	f, _ := manufactured(n)
	_, cycles, factors, ok := s.Solve(f, 1e-10, 80)
	if !ok {
		t.Fatalf("chaotic smoother did not converge in %d cycles", cycles)
	}
	if mf := MeanConvergenceFactor(factors); mf > 0.5 {
		t.Errorf("chaotic smoother factor %v too weak", mf)
	}
}

func TestChaoticSmootherCompetitiveWithJacobi(t *testing.T) {
	// Free-steering mixes fresh values (Gauss-Seidel-like), so it should
	// smooth at least as well as damped Jacobi on average.
	n := 31
	f, _ := manufactured(n)
	run := func(sm Smoother) float64 {
		s, _ := NewSolver(n)
		s.Smoother = sm
		s.Seed = 9
		_, _, factors, ok := s.Solve(f, 1e-10, 80)
		if !ok {
			t.Fatalf("%v did not converge", sm)
		}
		return MeanConvergenceFactor(factors)
	}
	jac := run(SmootherJacobi)
	cha := run(SmootherChaotic)
	if cha > jac*1.2 {
		t.Errorf("chaotic factor %v much worse than jacobi %v", cha, jac)
	}
}

func TestRestrictProlongShapes(t *testing.T) {
	n := 7
	fine := make([]float64, n*n)
	for i := range fine {
		fine[i] = 1
	}
	coarse := restrict(n, fine)
	if len(coarse) != 9 {
		t.Fatalf("coarse length %d, want 9", len(coarse))
	}
	back := make([]float64, n*n)
	prolong(3, coarse, back)
	if vec.NormInf(back) == 0 {
		t.Error("prolongation produced zeros")
	}
}

func TestProlongInterpolatesConstants(t *testing.T) {
	// Interior of the prolonged field should reproduce the coarse constant.
	nc := 3
	coarse := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	n := 2*nc + 1
	fine := make([]float64, n*n)
	prolong(nc, coarse, fine)
	// Centre point (3,3) is coarse-coincident: must be exactly 1.
	if fine[idx(n, 3, 3)] != 1 {
		t.Errorf("coarse-coincident point = %v", fine[idx(n, 3, 3)])
	}
	// Odd-odd points between two coarse points: 1 as well.
	if fine[idx(n, 3, 2)] != 1 {
		t.Errorf("edge-interpolated point = %v", fine[idx(n, 3, 2)])
	}
}

func TestResidualOfExactSolveIsZero(t *testing.T) {
	// Solve a tiny system directly and compare applyA against it.
	n := 3
	f := PoissonRHS(n, func(x, y float64) float64 { return 1 })
	dim := n * n
	m := vec.NewDense(dim, dim)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := idx(n, r, c)
			m.Set(i, i, 4)
			if r > 0 {
				m.Set(i, i-n, -1)
			}
			if r < n-1 {
				m.Set(i, i+n, -1)
			}
			if c > 0 {
				m.Set(i, i-1, -1)
			}
			if c < n-1 {
				m.Set(i, i+1, -1)
			}
		}
	}
	want, err := m.SolveGaussian(f)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, dim)
	residual(n, want, f, r)
	if vec.NormInf(r) > 1e-12 {
		t.Errorf("residual of direct solution: %v", vec.NormInf(r))
	}
	// And multigrid reaches the same answer.
	s, _ := NewSolver(n)
	u, _, _, ok := s.Solve(f, 1e-12, 100)
	if !ok {
		t.Fatal("did not converge")
	}
	if !vec.Equal(u, want, 1e-10) {
		t.Error("multigrid deviates from direct solve")
	}
}

func TestMeanConvergenceFactor(t *testing.T) {
	if !math.IsNaN(MeanConvergenceFactor(nil)) {
		t.Error("empty factors should be NaN")
	}
	if got := MeanConvergenceFactor([]float64{0.5}); got != 0.5 {
		t.Errorf("single factor = %v", got)
	}
	got := MeanConvergenceFactor([]float64{0.9, 0.25, 0.25})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("mean factor = %v (first must be skipped)", got)
	}
}
