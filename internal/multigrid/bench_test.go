package multigrid

import "testing"

func benchSolve(b *testing.B, n int, sm Smoother) {
	s, err := NewSolver(n)
	if err != nil {
		b.Fatal(err)
	}
	s.Smoother = sm
	s.Seed = 1
	f := PoissonRHS(n, func(x, y float64) float64 { return 1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, ok := s.Solve(f, 1e-8, 60)
		if !ok {
			b.Fatal("did not converge")
		}
	}
}

func BenchmarkVCycleJacobi63(b *testing.B)  { benchSolve(b, 63, SmootherJacobi) }
func BenchmarkVCycleChaotic63(b *testing.B) { benchSolve(b, 63, SmootherChaotic) }

func BenchmarkSmoothSweep127(b *testing.B) {
	s, err := NewSolver(127)
	if err != nil {
		b.Fatal(err)
	}
	f := PoissonRHS(127, func(x, y float64) float64 { return 1 })
	u := make([]float64, 127*127)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.smoothSweep(127, u, f)
	}
}
