// Package multigrid implements geometric multigrid for the 2-D Poisson
// equation with asynchronous (chaotic) relaxation smoothers — the modern
// use of asynchronous block relaxation the paper highlights in its
// introduction ("asynchronous block relaxation methods are very popular as
// smoothers for multigrid methods", citing Rodriguez et al. [5]).
//
// The V-cycle is standard (full-weighting restriction, bilinear
// interpolation, damped-Jacobi or chaotic smoothing, exact coarsest solve);
// the smoother is the asynchronous ingredient:
//
//   - SmootherJacobi: synchronous damped Jacobi sweeps (the baseline);
//   - SmootherChaotic: free-steering relaxation — points are updated in a
//     seeded random order, in place, so each update mixes fresh and stale
//     neighbour values exactly as an asynchronous shared-memory smoother
//     does (Rosenfeld's chaotic relaxation, the paper's reference [13]).
package multigrid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Smoother selects the relaxation scheme used inside V-cycles.
type Smoother int

// Smoother kinds.
const (
	SmootherJacobi Smoother = iota
	SmootherChaotic
)

func (s Smoother) String() string {
	switch s {
	case SmootherJacobi:
		return "jacobi"
	case SmootherChaotic:
		return "chaotic"
	default:
		return fmt.Sprintf("smoother(%d)", int(s))
	}
}

// Solver is a 2-D Poisson multigrid solver on an n x n interior grid
// (n = 2^k - 1) of the unit square with zero Dirichlet boundary.
type Solver struct {
	// N is the finest interior grid side (must be 2^k - 1, k >= 2).
	N int
	// PreSmooth / PostSmooth are the smoothing sweeps per V-cycle level.
	PreSmooth, PostSmooth int
	// Omega is the Jacobi damping factor (2/3 is optimal for 2-D Poisson
	// high-frequency smoothing).
	Omega float64
	// Smoother selects synchronous Jacobi or chaotic (asynchronous-order)
	// relaxation.
	Smoother Smoother
	// Seed drives the chaotic orderings.
	Seed uint64

	rng *vec.RNG
}

// NewSolver validates the grid size and returns a solver with standard
// defaults (1 pre-, 1 post-smoothing sweep, omega = 2/3).
func NewSolver(n int) (*Solver, error) {
	if n < 3 || (n+1)&n != 0 {
		return nil, errors.New("multigrid: N must be 2^k - 1 with k >= 2")
	}
	return &Solver{
		N: n, PreSmooth: 1, PostSmooth: 1, Omega: 2.0 / 3.0,
		Smoother: SmootherJacobi,
	}, nil
}

// idx maps interior coordinates to the flat index on an n-grid.
func idx(n, r, c int) int { return r*n + c }

// applyA computes the scaled 5-point operator (A u)_i = 4u_i - sum of
// neighbours, i.e. h^2 * (-Laplace u).
func applyA(n int, u, out []float64) {
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := idx(n, r, c)
			s := 4 * u[i]
			if r > 0 {
				s -= u[i-n]
			}
			if r < n-1 {
				s -= u[i+n]
			}
			if c > 0 {
				s -= u[i-1]
			}
			if c < n-1 {
				s -= u[i+1]
			}
			out[i] = s
		}
	}
}

// residual computes r = f - A u.
func residual(n int, u, f, r []float64) {
	applyA(n, u, r)
	for i := range r {
		r[i] = f[i] - r[i]
	}
}

// smoothSweep performs one relaxation sweep of A u = f.
func (s *Solver) smoothSweep(n int, u, f []float64) {
	switch s.Smoother {
	case SmootherJacobi:
		next := make([]float64, len(u))
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				i := idx(n, r, c)
				sum := f[i]
				if r > 0 {
					sum += u[i-n]
				}
				if r < n-1 {
					sum += u[i+n]
				}
				if c > 0 {
					sum += u[i-1]
				}
				if c < n-1 {
					sum += u[i+1]
				}
				gs := sum / 4
				next[i] = u[i] + s.Omega*(gs-u[i])
			}
		}
		copy(u, next)
	case SmootherChaotic:
		// Free-steering: visit points in a fresh random order, updating in
		// place; each relaxation reads a mix of already-updated (fresh) and
		// not-yet-updated (stale) neighbours — the shared-memory
		// asynchronous pattern, deterministic under the seed.
		if s.rng == nil {
			s.rng = vec.NewRNG(s.Seed | 1)
		}
		order := s.rng.Perm(n * n)
		for _, i := range order {
			r, c := i/n, i%n
			sum := f[i]
			if r > 0 {
				sum += u[i-n]
			}
			if r < n-1 {
				sum += u[i+n]
			}
			if c > 0 {
				sum += u[i-1]
			}
			if c < n-1 {
				sum += u[i+1]
			}
			gs := sum / 4
			u[i] += s.Omega * (gs - u[i])
		}
	}
}

// restrict applies full weighting from an n-grid to the (n-1)/2-grid.
func restrict(n int, fine []float64) []float64 {
	nc := (n - 1) / 2
	coarse := make([]float64, nc*nc)
	at := func(r, c int) float64 {
		if r < 0 || r >= n || c < 0 || c >= n {
			return 0
		}
		return fine[idx(n, r, c)]
	}
	for r := 0; r < nc; r++ {
		for c := 0; c < nc; c++ {
			fr, fc := 2*r+1, 2*c+1
			v := 4*at(fr, fc) +
				2*(at(fr-1, fc)+at(fr+1, fc)+at(fr, fc-1)+at(fr, fc+1)) +
				(at(fr-1, fc-1) + at(fr-1, fc+1) + at(fr+1, fc-1) + at(fr+1, fc+1))
			coarse[idx(nc, r, c)] = v / 16 * 4 // x4: operator rescaling for h -> 2h
		}
	}
	return coarse
}

// prolong applies bilinear interpolation from an nc-grid to the 2nc+1 grid,
// accumulating into fine.
func prolong(nc int, coarse, fine []float64) {
	n := 2*nc + 1
	at := func(r, c int) float64 {
		if r < 0 || r >= nc || c < 0 || c >= nc {
			return 0
		}
		return coarse[idx(nc, r, c)]
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var v float64
			switch {
			case r%2 == 1 && c%2 == 1:
				v = at(r/2, c/2)
			case r%2 == 1:
				v = 0.5 * (at(r/2, c/2-1) + at(r/2, c/2))
			case c%2 == 1:
				v = 0.5 * (at(r/2-1, c/2) + at(r/2, c/2))
			default:
				v = 0.25 * (at(r/2-1, c/2-1) + at(r/2-1, c/2) + at(r/2, c/2-1) + at(r/2, c/2))
			}
			fine[idx(n, r, c)] += v
		}
	}
}

// VCycle performs one V-cycle on A u = f at grid size n, in place.
func (s *Solver) VCycle(n int, u, f []float64) {
	if n <= 3 {
		// Coarsest: solve directly with many sweeps (3x3 grid converges
		// immediately).
		for k := 0; k < 32; k++ {
			s.smoothSweep(n, u, f)
		}
		return
	}
	for k := 0; k < s.PreSmooth; k++ {
		s.smoothSweep(n, u, f)
	}
	r := make([]float64, n*n)
	residual(n, u, f, r)
	rc := restrict(n, r)
	nc := (n - 1) / 2
	ec := make([]float64, nc*nc)
	s.VCycle(nc, ec, rc)
	prolong(nc, ec, u)
	for k := 0; k < s.PostSmooth; k++ {
		s.smoothSweep(n, u, f)
	}
}

// Solve iterates V-cycles until the scaled residual infinity norm falls
// below tol, returning the solution, the cycle count, the per-cycle
// contraction factors, and whether it converged.
func (s *Solver) Solve(f []float64, tol float64, maxCycles int) (u []float64, cycles int, factors []float64, ok bool) {
	n := s.N
	if len(f) != n*n {
		panic(fmt.Sprintf("multigrid: f has length %d, want %d", len(f), n*n))
	}
	u = make([]float64, n*n)
	r := make([]float64, n*n)
	residual(n, u, f, r)
	prev := vec.NormInf(r)
	for cycles = 1; cycles <= maxCycles; cycles++ {
		s.VCycle(n, u, f)
		residual(n, u, f, r)
		cur := vec.NormInf(r)
		if prev > 0 {
			factors = append(factors, cur/prev)
		}
		prev = cur
		if cur <= tol {
			return u, cycles, factors, true
		}
	}
	return u, maxCycles, factors, false
}

// PoissonRHS samples h^2 * f at the interior points for the load function.
func PoissonRHS(n int, load func(x, y float64) float64) []float64 {
	h := 1.0 / float64(n+1)
	f := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			x := float64(c+1) * h
			y := float64(r+1) * h
			f[idx(n, r, c)] = h * h * load(x, y)
		}
	}
	return f
}

// MeanConvergenceFactor returns the geometric mean of the per-cycle
// contraction factors, skipping the first (transient) cycle.
func MeanConvergenceFactor(factors []float64) float64 {
	if len(factors) <= 1 {
		if len(factors) == 1 {
			return factors[0]
		}
		return math.NaN()
	}
	s, n := 0.0, 0
	for _, v := range factors[1:] {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}
