package flexible

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewScheduleValid(t *testing.T) {
	s := NewSchedule(0.25, 0.5, 1.0)
	if !s.Enabled() || len(s.Fracs) != 3 {
		t.Fatalf("schedule = %v", s)
	}
}

func TestNewSchedulePanicsOnBadFracs(t *testing.T) {
	for _, fr := range [][]float64{{0}, {0.5, 0.5}, {0.7, 0.3}, {1.2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", fr)
				}
			}()
			NewSchedule(fr...)
		}()
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(4)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i, f := range s.Fracs {
		if math.Abs(f-want[i]) > 1e-15 {
			t.Fatalf("Uniform(4) = %v", s.Fracs)
		}
	}
	if None().Enabled() {
		t.Error("None should be disabled")
	}
	if Uniform(0).Enabled() {
		t.Error("Uniform(0) should be disabled")
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	if Interpolate(2, 6, 0) != 2 || Interpolate(2, 6, 1) != 6 {
		t.Error("endpoints wrong")
	}
	if Interpolate(2, 6, 0.5) != 4 {
		t.Error("midpoint wrong")
	}
}

func TestEmit(t *testing.T) {
	s := Uniform(2)
	ps := s.Emit(3, 0, 10)
	if len(ps) != 2 {
		t.Fatalf("emitted %d", len(ps))
	}
	if ps[0].Comp != 3 || ps[0].Value != 5 || ps[0].Frac != 0.5 {
		t.Errorf("first partial = %+v", ps[0])
	}
	if ps[1].Value != 10 || ps[1].Frac != 1 {
		t.Errorf("second partial = %+v", ps[1])
	}
}

func TestCheckConstraint3Holds(t *testing.T) {
	xstar := []float64{0, 0}
	u := []float64{1, 1}
	xlabel := []float64{1, -0.5} // rhs = 1
	xtilde := []float64{0.7, 0.2}
	rep := CheckConstraint3(xtilde, xlabel, xstar, u)
	if !rep.OK {
		t.Fatalf("constraint should hold: %+v", rep)
	}
	if math.Abs(rep.WorstRatio-0.7) > 1e-12 {
		t.Errorf("WorstRatio = %v, want 0.7", rep.WorstRatio)
	}
}

func TestCheckConstraint3Violated(t *testing.T) {
	xstar := []float64{0, 0}
	u := []float64{1, 1}
	xlabel := []float64{0.5, -0.5}
	xtilde := []float64{2, 0}
	rep := CheckConstraint3(xtilde, xlabel, xstar, u)
	if rep.OK {
		t.Fatal("constraint should be violated")
	}
	if rep.WorstComp != 0 {
		t.Errorf("WorstComp = %d, want 0", rep.WorstComp)
	}
}

func TestCheckConstraint3Weighted(t *testing.T) {
	// With u = (1, 10), a large deviation in component 1 is tolerated.
	xstar := []float64{0, 0}
	u := []float64{1, 10}
	xlabel := []float64{1, 0} // rhs = max(1/1, 0/10) = 1
	xtilde := []float64{0, 9} // lhs_1 = 9/10 = 0.9 <= 1
	rep := CheckConstraint3(xtilde, xlabel, xstar, u)
	if !rep.OK {
		t.Fatalf("weighted constraint should hold: %+v", rep)
	}
}

func TestCheckConstraint3DegenerateAtFixedPoint(t *testing.T) {
	xstar := []float64{1, 2}
	u := []float64{1, 1}
	repOK := CheckConstraint3([]float64{1, 2}, []float64{1, 2}, xstar, u)
	if !repOK.OK {
		t.Error("x~ = x* with labelled = x* must pass")
	}
	repBad := CheckConstraint3([]float64{1.1, 2}, []float64{1, 2}, xstar, u)
	if repBad.OK {
		t.Error("x~ != x* with labelled = x* must fail")
	}
}

// Property: interpolation between the labelled value and any value at
// least as close to x* always satisfies constraint (3) (scalar case,
// uniform weights).
func TestInterpolantsSatisfyConstraint(t *testing.T) {
	f := func(oldRaw, newRaw int16, fracRaw uint8) bool {
		old := float64(oldRaw) / 100
		// Newer value is a contraction of old toward 0 = x*.
		newV := old * 0.5
		frac := float64(fracRaw%101) / 100
		xt := Interpolate(old, newV, frac)
		rep := CheckConstraint3(
			[]float64{xt}, []float64{old}, []float64{0}, []float64{1})
		return rep.OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpolateVec(t *testing.T) {
	got := InterpolateVec([]float64{0, 2}, []float64{4, 0}, 0.25)
	if got[0] != 1 || got[1] != 1.5 {
		t.Errorf("InterpolateVec = %v", got)
	}
}
