package obstacle

import (
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/operators"
	"repro/internal/steering"
	"repro/internal/vec"
)

func TestNewSamplesGrid(t *testing.T) {
	p, err := New(3, func(x, y float64) float64 { return x + y },
		func(x, y float64) float64 { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 9 {
		t.Fatalf("Dim = %d", p.Dim())
	}
	// Centre point is (0.5, 0.5): load = 1.
	if p.F[4] != 1.0 {
		t.Errorf("F[4] = %v, want 1", p.F[4])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, nil); err == nil {
		t.Error("expected error for empty grid")
	}
}

func TestUnconstrainedMatchesPoisson(t *testing.T) {
	// With the obstacle far below, the problem reduces to the Poisson
	// equation; compare against a direct sparse solve.
	n := 6
	p, err := New(n, func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return -1e6 })
	if err != nil {
		t.Fatal(err)
	}
	u, ok := operators.FixedPoint(p, make([]float64, p.Dim()), 1e-12, 100000)
	if !ok {
		t.Fatal("did not converge")
	}
	// Assemble and solve the 5-point Laplacian directly.
	dim := n * n
	m := vec.NewDense(dim, dim)
	rhs := make([]float64, dim)
	h2 := p.H * p.H
	for i := 0; i < dim; i++ {
		r, c := i/n, i%n
		m.Set(i, i, 4)
		if r > 0 {
			m.Set(i, i-n, -1)
		}
		if r < n-1 {
			m.Set(i, i+n, -1)
		}
		if c > 0 {
			m.Set(i, i-1, -1)
		}
		if c < n-1 {
			m.Set(i, i+1, -1)
		}
		rhs[i] = h2 * p.F[i]
	}
	want, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(u, want, 1e-8) {
		t.Error("projected Jacobi (inactive obstacle) deviates from Poisson solve")
	}
}

func TestMembraneComplementarity(t *testing.T) {
	p := Membrane(12)
	u, ok := operators.FixedPoint(p, p.Supersolution(), 1e-12, 400000)
	if !ok {
		t.Fatal("did not converge")
	}
	rep := p.CheckComplementarity(u)
	if rep.MinGap < -1e-9 {
		t.Errorf("feasibility violated: min gap %v", rep.MinGap)
	}
	if rep.WorstResidual < -1e-6 {
		t.Errorf("supersolution residual violated: %v", rep.WorstResidual)
	}
	if rep.WorstSlackProduct > 1e-6 {
		t.Errorf("complementary slackness violated: %v", rep.WorstSlackProduct)
	}
	if len(p.ContactSet(u, 1e-9)) == 0 {
		t.Error("obstacle never touched; instance is degenerate")
	}
}

func TestMonotoneDecreaseFromSupersolution(t *testing.T) {
	p := Membrane(8)
	u := p.Supersolution()
	next := make([]float64, p.Dim())
	for sweep := 0; sweep < 50; sweep++ {
		p.Apply(next, u)
		for i := range next {
			if next[i] > u[i]+1e-12 {
				t.Fatalf("sweep %d: component %d increased: %v -> %v",
					sweep, i, u[i], next[i])
			}
		}
		copy(u, next)
	}
}

func TestAsyncMatchesSyncSolution(t *testing.T) {
	p := Membrane(8)
	want, ok := operators.FixedPoint(p, p.Supersolution(), 1e-12, 400000)
	if !ok {
		t.Fatal("sync reference did not converge")
	}
	res, err := core.Run(core.Config{
		Op:       p,
		Steering: steering.NewBlockCyclic(p.Dim(), 4),
		Delay:    delay.BoundedRandom{B: 10, Seed: 3},
		X0:       p.Supersolution(),
		XStar:    want,
		Tol:      1e-9,
		MaxIter:  4000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async obstacle run did not converge; err %v",
			res.Errors[len(res.Errors)-1])
	}
}

func TestFlexibleAdmissibleOnMonotoneRun(t *testing.T) {
	// Obstacle iterates decrease monotonically from a supersolution, so
	// flexible communication must produce zero constraint-3 violations.
	p := Membrane(6)
	want, ok := operators.FixedPoint(p, p.Supersolution(), 1e-12, 400000)
	if !ok {
		t.Fatal("reference did not converge")
	}
	res, err := core.Run(core.Config{
		Op:               p,
		Steering:         steering.NewBlockCyclic(p.Dim(), 3),
		Delay:            delay.BoundedRandom{B: 6, Seed: 4},
		Theta:            0.7,
		X0:               p.Supersolution(),
		XStar:            want,
		Tol:              1e-9,
		MaxIter:          4000000,
		CheckConstraint3: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("flexible obstacle run did not converge")
	}
	if res.Constraint3Violations != 0 {
		t.Errorf("constraint (3) violated %d times on monotone run",
			res.Constraint3Violations)
	}
}
