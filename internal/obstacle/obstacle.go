// Package obstacle implements the discretized obstacle problem, the
// numerical-simulation workload the paper cites from [26] (MPI sub-domain
// methods on the IBM SP4, studying several data-exchange frequencies):
//
//	find u >= psi on a grid, -Laplace(u) >= f, u = 0 on the boundary,
//	with complementarity (u - psi) * (-Laplace(u) - f) = 0,
//
// solved by projected relaxation: the fixed-point map is the 5-point Jacobi
// step clipped at the obstacle,
//
//	F_i(u) = max(psi_i, (sum of neighbours + h^2 f_i) / 4).
//
// The map is monotone (an M-function setting, El Baz [4]); asynchronous
// relaxation converges from a supersolution regardless of delays, and
// flexible communication is admissible because iterates decrease
// monotonically.
package obstacle

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a discretized obstacle problem on an N x N interior grid of
// the unit square (h = 1/(N+1)).
type Problem struct {
	N   int
	H   float64
	F   []float64 // load, length N*N
	Psi []float64 // obstacle, length N*N
}

// New builds a problem with the given load and obstacle functions sampled
// at interior grid points (x, y) in (0,1)^2.
func New(n int, load, obstacle func(x, y float64) float64) (*Problem, error) {
	if n < 1 {
		return nil, errors.New("obstacle: grid must have at least one interior point")
	}
	h := 1.0 / float64(n+1)
	p := &Problem{N: n, H: h, F: make([]float64, n*n), Psi: make([]float64, n*n)}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			x := float64(c+1) * h
			y := float64(r+1) * h
			i := r*n + c
			p.F[i] = load(x, y)
			ps := obstacle(x, y)
			p.Psi[i] = ps
		}
	}
	// The boundary condition u = 0 requires psi <= 0 near the boundary to
	// be feasible; we do not enforce it but the canonical instances satisfy
	// it.
	return p, nil
}

// Membrane returns the canonical test instance: constant downward load and
// a spherical-cap obstacle pushing up in the middle of the domain.
func Membrane(n int) *Problem {
	p, _ := New(n,
		func(x, y float64) float64 { return -8 },
		func(x, y float64) float64 {
			dx, dy := x-0.5, y-0.5
			r2 := dx*dx + dy*dy
			return 0.3 - 3*r2 // positive cap near the centre, negative outside
		})
	return p
}

// Dim returns the number of unknowns.
func (p *Problem) Dim() int { return p.N * p.N }

// Name implements operators.Operator.
func (p *Problem) Name() string { return fmt.Sprintf("obstacle(%dx%d)", p.N, p.N) }

// Component implements operators.Operator: the projected Jacobi step at
// grid point i.
func (p *Problem) Component(i int, u []float64) float64 {
	n := p.N
	r, c := i/n, i%n
	s := 0.0
	if r > 0 {
		s += u[i-n]
	}
	if r < n-1 {
		s += u[i+n]
	}
	if c > 0 {
		s += u[i-1]
	}
	if c < n-1 {
		s += u[i+1]
	}
	v := (s + p.H*p.H*p.F[i]) * 0.25
	if v < p.Psi[i] {
		v = p.Psi[i]
	}
	return v
}

// Apply implements operators.FullApplier.
func (p *Problem) Apply(dst, u []float64) {
	for i := range dst {
		dst[i] = p.Component(i, u)
	}
}

// Supersolution returns a starting point above the solution (required for
// monotone decreasing convergence): the unconstrained harmonic bound plus
// the obstacle maximum.
func (p *Problem) Supersolution() []float64 {
	top := 0.0
	for _, v := range p.Psi {
		if v > top {
			top = v
		}
	}
	u0 := make([]float64, p.Dim())
	for i := range u0 {
		u0[i] = top + 1
	}
	return u0
}

// Complementarity reports the worst violations of the three KKT conditions
// at u: feasibility (u >= psi), supersolution residual (-Lap u - f >= 0
// wherever u > psi), and complementary slackness.
type Complementarity struct {
	MinGap            float64 // min(u - psi): feasibility if >= 0 (tolerance)
	WorstResidual     float64 // most negative (-Lap u - f) on untouched set
	WorstSlackProduct float64 // max (u-psi)*|residual| over contact set
}

// CheckComplementarity evaluates the discrete KKT system.
func (p *Problem) CheckComplementarity(u []float64) Complementarity {
	n := p.N
	rep := Complementarity{MinGap: math.Inf(1)}
	h2 := p.H * p.H
	for i := range u {
		gap := u[i] - p.Psi[i]
		if gap < rep.MinGap {
			rep.MinGap = gap
		}
		r, c := i/n, i%n
		s := 0.0
		if r > 0 {
			s += u[i-n]
		}
		if r < n-1 {
			s += u[i+n]
		}
		if c > 0 {
			s += u[i-1]
		}
		if c < n-1 {
			s += u[i+1]
		}
		// -Lap u - f at i, scaled by h^2: 4u_i - sum(neighbours) - h^2 f_i.
		resid := 4*u[i] - s - h2*p.F[i]
		if gap > 1e-8 { // u above obstacle: residual must be ~ 0
			if v := math.Abs(resid); v > rep.WorstSlackProduct {
				rep.WorstSlackProduct = v
			}
		} else { // contact: residual must be >= 0
			if resid < rep.WorstResidual {
				rep.WorstResidual = resid
			}
		}
	}
	if math.IsInf(rep.MinGap, 1) {
		rep.MinGap = 0
	}
	return rep
}

// ContactSet returns the indices where the solution touches the obstacle.
func (p *Problem) ContactSet(u []float64, tol float64) []int {
	var out []int
	for i := range u {
		if u[i]-p.Psi[i] <= tol {
			out = append(out, i)
		}
	}
	return out
}
