package vec

// This file holds the ONE canonical accumulation order for every dot-product
// reduction in the library. Floating-point addition is not associative, so
// the exact order of partial sums is observable in solver trajectories; to
// keep the full, range and componentwise evaluation paths bit-identical,
// they must all reduce in the same order. That order is:
//
//	s0 accumulates products at indices j ≡ 0 (mod 4)
//	s1 accumulates products at indices j ≡ 1 (mod 4)
//	s2 accumulates products at indices j ≡ 2 (mod 4)
//	s3 accumulates products at indices j ≡ 3 (mod 4)
//	tail accumulates the last len%4 products sequentially
//	result = ((s0+s1) + (s2+s3)) + tail
//
// The four independent accumulators break the floating-point add dependency
// chain (instruction-level parallelism the single-accumulator loop cannot
// reach) and give the compiler a vectorizable shape. Column tiling preserves
// the order exactly as long as every tile boundary is a multiple of 4 and
// tiles are visited in ascending order with the accumulators carried across
// tiles — which is what dot4Acc below provides.

// dot4 returns the canonical dot product of a and x (equal lengths assumed;
// callers bounds-check).
//
//repro:hotpath
func dot4(a, x []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(a) &^ 3
	for j := 0; j < n4; j += 4 {
		aj := a[j : j+4 : j+4]
		xj := x[j : j+4 : j+4]
		s0 += aj[0] * xj[0]
		s1 += aj[1] * xj[1]
		s2 += aj[2] * xj[2]
		s3 += aj[3] * xj[3]
	}
	tail := 0.0
	for j := n4; j < len(a); j++ {
		tail += a[j] * x[j]
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}

// dot4Acc accumulates the products of a[lo:hi] and x[lo:hi] into the four
// strided accumulators acc (len 4). lo and hi must be multiples of 4 except
// that hi may equal the true vector length on the final tile, in which case
// the caller finishes with dot4Tail. Carrying acc across ascending tiles
// reproduces dot4's reduction order bit for bit, independent of tile width.
//
//repro:hotpath
func dot4Acc(acc []float64, a, x []float64, lo, hi int) {
	s0, s1, s2, s3 := acc[0], acc[1], acc[2], acc[3]
	for j := lo; j < hi; j += 4 {
		aj := a[j : j+4 : j+4]
		xj := x[j : j+4 : j+4]
		s0 += aj[0] * xj[0]
		s1 += aj[1] * xj[1]
		s2 += aj[2] * xj[2]
		s3 += aj[3] * xj[3]
	}
	acc[0], acc[1], acc[2], acc[3] = s0, s1, s2, s3
}

// dot4Tail combines four strided accumulators with the sequential tail
// product of a[n4:] and x[n4:], completing the canonical reduction.
//
//repro:hotpath
func dot4Tail(acc []float64, a, x []float64, n4 int) float64 {
	tail := 0.0
	for j := n4; j < len(a); j++ {
		tail += a[j] * x[j]
	}
	return ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

// sum4 returns the canonical sum of a: the dot-product order of dot4 with
// the multiplications dropped — s0..s3 over j ≡ 0..3 (mod 4), sequential
// tail, fixed combine. Every plain float64 accumulation outside this
// package must reduce through Sum so the order stays canonical.
//
//repro:hotpath
func sum4(a []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(a) &^ 3
	for j := 0; j < n4; j += 4 {
		aj := a[j : j+4 : j+4]
		s0 += aj[0]
		s1 += aj[1]
		s2 += aj[2]
		s3 += aj[3]
	}
	tail := 0.0
	for j := n4; j < len(a); j++ {
		tail += a[j]
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}

// dot4Indexed returns the canonical dot product of vals and the gathered
// components x[idx[k]] — the sparse-row analog of dot4, with the identical
// reduction order over k.
//
//repro:hotpath
func dot4Indexed(vals []float64, idx []int, x []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(vals) &^ 3
	for k := 0; k < n4; k += 4 {
		vk := vals[k : k+4 : k+4]
		ik := idx[k : k+4 : k+4]
		s0 += vk[0] * x[ik[0]]
		s1 += vk[1] * x[ik[1]]
		s2 += vk[2] * x[ik[2]]
		s3 += vk[3] * x[ik[3]]
	}
	tail := 0.0
	for k := n4; k < len(vals); k++ {
		tail += vals[k] * x[idx[k]]
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}
