package vec

import (
	"math"
	"testing"
)

// Sum shares the canonical 4-accumulator order with Dot; pin it against an
// explicit reference like TestCanonicalDotOrder does.
func TestCanonicalSumOrder(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 8, 17, 64, 101} {
		a := NewRNG(uint64(57 + n)).NormalVector(n)
		var s0, s1, s2, s3 float64
		n4 := n &^ 3
		for j := 0; j < n4; j += 4 {
			s0 += a[j]
			s1 += a[j+1]
			s2 += a[j+2]
			s3 += a[j+3]
		}
		tail := 0.0
		for j := n4; j < n; j++ {
			tail += a[j]
		}
		want := ((s0 + s1) + (s2 + s3)) + tail
		if got := Sum(a); got != want {
			t.Errorf("n=%d: Sum %v != canonical %v", n, got, want)
		}
	}
}

// DotStrideAcc is the seeded SEQUENTIAL column reduction; pin the exact
// chain, bit for bit.
func TestDotStrideAccOrder(t *testing.T) {
	rows, cols := 13, 7
	b := NewRNG(61).NormalVector(rows * cols)
	a := NewRNG(63).NormalVector(rows)
	for c := 0; c < cols; c++ {
		seed := 0.25 * float64(c+1)
		want := seed
		for h := 0; h < rows; h++ {
			want += a[h] * b[h*cols+c]
		}
		if got := DotStrideAcc(seed, a, b, c, cols); got != want {
			t.Errorf("col %d: DotStrideAcc %v != sequential %v", c, got, want)
		}
	}
}

func TestDotStrideAccEdgeCases(t *testing.T) {
	if got := DotStrideAcc(3.5, nil, nil, 0, 1); got != 3.5 {
		t.Errorf("empty a: got %v, want the seed back", got)
	}
	if got := DotStrideAcc(0, []float64{2}, []float64{5, 7}, 1, 1); got != 7*2 {
		t.Errorf("offset single term: got %v, want 14", got)
	}
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"zero stride", func() { DotStrideAcc(0, []float64{1}, []float64{1}, 0, 0) }},
		{"out of range", func() { DotStrideAcc(0, []float64{1, 2}, []float64{1, 2}, 1, 2) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

func TestSumAllocationFree(t *testing.T) {
	a := NewRNG(71).NormalVector(256)
	b := NewRNG(73).NormalVector(256)
	if n := testing.AllocsPerRun(100, func() { _ = Sum(a) }); n != 0 {
		t.Errorf("Sum allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = DotStrideAcc(1, a[:16], b, 3, 15) }); n != 0 {
		t.Errorf("DotStrideAcc allocates %v per run", n)
	}
}

// Sum of a finite vector is finite and symmetric under reversal up to the
// reduction order; sanity-check the value against math.Fsum-style pairing.
func TestSumValue(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Sum(a); math.Abs(got-15) > 1e-12 {
		t.Errorf("Sum = %v, want 15", got)
	}
}
