package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, 5, 6}
	if got := Add(x, y); !Equal(got, Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(y, x); !Equal(got, Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(2, x); !Equal(got, Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	z := Clone(y)
	AXPY(2, x, z)
	if !Equal(z, Vector{6, 9, 12}, 0) {
		t.Errorf("AXPY = %v", z)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := Vector{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestNorms(t *testing.T) {
	x := Vector{3, -4}
	if got := Norm2(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v", got)
	}
	u := Vector{1, 2}
	if got := WeightedMaxNorm(x, u); got != 3 {
		t.Errorf("WeightedMaxNorm = %v, want 3", got)
	}
}

func TestNorm2Extreme(t *testing.T) {
	// Values whose squares overflow float64 must still produce finite norms.
	x := Vector{1e200, 1e200}
	got := Norm2(x)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := 1e200 * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestLerp(t *testing.T) {
	x := Vector{0, 0}
	y := Vector{2, 4}
	if got := Lerp(x, y, 0.5); !Equal(got, Vector{1, 2}, 1e-15) {
		t.Errorf("Lerp = %v", got)
	}
	if got := Lerp(x, y, 0); !Equal(got, x, 0) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(x, y, 1); !Equal(got, y, 0) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestDistances(t *testing.T) {
	x := Vector{1, 5}
	y := Vector{4, 1}
	if got := Dist2(x, y); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := DistInf(x, y); got != 4 {
		t.Errorf("DistInf = %v", got)
	}
	if got := MaxAbsComponentDist(x, y); got != 16 {
		t.Errorf("MaxAbsComponentDist = %v", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite(Vector{1, 2, 3}) {
		t.Error("finite vector reported non-finite")
	}
	if AllFinite(Vector{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite(Vector{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct {
		n, m int
		want [][2]int
	}{
		{10, 2, [][2]int{{0, 5}, {5, 10}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{4, 1, [][2]int{{0, 4}}},
	}
	for _, c := range cases {
		got := Blocks(c.n, c.m)
		if len(got) != len(c.want) {
			t.Fatalf("Blocks(%d,%d) = %v, want %v", c.n, c.m, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Blocks(%d,%d)[%d] = %v, want %v", c.n, c.m, i, got[i], c.want[i])
			}
		}
	}
}

func TestBlocksCoverEverything(t *testing.T) {
	// Property: blocks are contiguous, disjoint and cover [0, n).
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw%16) + 1
		bs := Blocks(n, m)
		pos := 0
		for _, b := range bs {
			if b[0] != pos || b[1] < b[0] {
				return false
			}
			pos = b[1]
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOf(t *testing.T) {
	bs := Blocks(10, 3)
	for i := 0; i < 10; i++ {
		b := BlockOf(bs, i)
		if b < 0 || i < bs[b][0] || i >= bs[b][1] {
			t.Errorf("BlockOf(%d) = %d out of range", i, b)
		}
	}
	if BlockOf(bs, 10) != -1 {
		t.Error("BlockOf out-of-range index should be -1")
	}
}

// Property: triangle inequality and homogeneity for the weighted max norm.
func TestWeightedMaxNormAxioms(t *testing.T) {
	r := NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		x := r.NormalVector(n)
		y := r.NormalVector(n)
		u := r.RandomVector(n, 0.5, 2.0)
		nx := WeightedMaxNorm(x, u)
		ny := WeightedMaxNorm(y, u)
		nxy := WeightedMaxNorm(Add(x, y), u)
		if nxy > nx+ny+1e-12 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", nxy, nx, ny)
		}
		a := r.Range(-3, 3)
		if got, want := WeightedMaxNorm(Scale(a, x), u), math.Abs(a)*nx; math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("homogeneity violated: %v != %v", got, want)
		}
	}
}

func TestWeightedMaxNormPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nonpositive weight")
		}
	}()
	WeightedMaxNorm(Vector{1}, Vector{0})
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Add(Vector{1}, Vector{1, 2})
}
