package vec

import "testing"

func randomDense(rows, cols int, seed uint64) *Dense {
	rng := NewRNG(seed)
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Normal()
	}
	return m
}

func randomCSRMatrix(rows, cols int, nnzPerRow int, seed uint64) *CSR {
	rng := NewRNG(seed)
	var entries []COOEntry
	for r := 0; r < rows; r++ {
		for k := 0; k < nnzPerRow; k++ {
			entries = append(entries, COOEntry{
				Row: r, Col: int(rng.Uint64() % uint64(cols)), Val: rng.Normal(),
			})
		}
	}
	return NewCSR(rows, cols, entries)
}

// MulRangeTo must agree bit-identically with the corresponding rows of a
// full MulVecTo on random matrices, for every range.
func TestDenseMulRangeToMatchesMulVecTo(t *testing.T) {
	const rows, cols = 23, 17
	m := randomDense(rows, cols, 31)
	x := NewRNG(32).NormalVector(cols)
	full := make([]float64, rows)
	m.MulVecTo(full, x)
	for _, blk := range [][2]int{{0, rows}, {0, 0}, {0, 1}, {5, 14}, {rows - 1, rows}} {
		lo, hi := blk[0], blk[1]
		y := make([]float64, hi-lo)
		m.MulRangeTo(y, x, lo, hi)
		for i := range y {
			if y[i] != full[lo+i] {
				t.Errorf("dense range [%d,%d) row %d: %v != %v", lo, hi, lo+i, y[i], full[lo+i])
			}
		}
	}
}

func TestCSRMulRangeToMatchesMulVecTo(t *testing.T) {
	const rows, cols = 29, 29
	m := randomCSRMatrix(rows, cols, 4, 33)
	x := NewRNG(34).NormalVector(cols)
	full := make([]float64, rows)
	m.MulVecTo(full, x)
	for _, blk := range [][2]int{{0, rows}, {0, 0}, {0, 1}, {7, 20}, {rows - 1, rows}} {
		lo, hi := blk[0], blk[1]
		y := make([]float64, hi-lo)
		m.MulRangeTo(y, x, lo, hi)
		for i := range y {
			if y[i] != full[lo+i] {
				t.Errorf("csr range [%d,%d) row %d: %v != %v", lo, hi, lo+i, y[i], full[lo+i])
			}
		}
	}
}

// MulRangeTiledTo must agree BIT-identically with MulRangeTo for every tile
// width and every range — including ranges that do not divide the tile and
// column counts that are not multiples of 4 — because the accumulator
// quartet carries across tiles and the tail folds in exactly once.
func TestDenseMulRangeTiledToMatchesMulRangeTo(t *testing.T) {
	for _, dims := range [][2]int{{23, 17}, {31, 64}, {16, 67}, {9, 8}} {
		rows, cols := dims[0], dims[1]
		m := randomDense(rows, cols, uint64(41+rows))
		x := NewRNG(uint64(43 + cols)).NormalVector(cols)
		for _, blk := range [][2]int{{0, rows}, {0, 1}, {3, rows - 2}, {rows - 1, rows}} {
			lo, hi := blk[0], blk[1]
			want := make([]float64, hi-lo)
			m.MulRangeTo(want, x, lo, hi)
			for _, tile := range []int{8, 12, 16, 40, cols, cols + 8} {
				got := make([]float64, hi-lo)
				acc := make([]float64, 4*(hi-lo))
				m.MulRangeTiledTo(got, x, lo, hi, tile, acc)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%dx%d tile %d range [%d,%d) row %d: %v != %v",
							rows, cols, tile, lo, hi, lo+i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Dot, MulVecTo and RowDotAt share the canonical 4-accumulator order; pin
// it against an explicit reference so a future "optimization" that
// reassociates differently cannot slip in silently.
func TestCanonicalDotOrder(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 8, 17, 64, 101} {
		a := NewRNG(uint64(51 + n)).NormalVector(n)
		x := NewRNG(uint64(53 + n)).NormalVector(n)
		var s0, s1, s2, s3 float64
		n4 := n &^ 3
		for j := 0; j < n4; j += 4 {
			s0 += a[j] * x[j]
			s1 += a[j+1] * x[j+1]
			s2 += a[j+2] * x[j+2]
			s3 += a[j+3] * x[j+3]
		}
		tail := 0.0
		for j := n4; j < n; j++ {
			tail += a[j] * x[j]
		}
		want := ((s0 + s1) + (s2 + s3)) + tail
		if got := Dot(a, x); got != want {
			t.Errorf("n=%d: Dot %v != canonical %v", n, got, want)
		}
	}
}

func TestMulRangeTiledToPanics(t *testing.T) {
	m := randomDense(8, 16, 45)
	x := make([]float64, 16)
	cases := []struct {
		name string
		call func()
	}{
		{"lo<0", func() { m.MulRangeTiledTo(make([]float64, 3), x, -1, 2, 8, make([]float64, 12)) }},
		{"hi>rows", func() { m.MulRangeTiledTo(make([]float64, 3), x, 6, 9, 8, make([]float64, 12)) }},
		{"bad y", func() { m.MulRangeTiledTo(make([]float64, 2), x, 0, 3, 8, make([]float64, 12)) }},
		{"bad x", func() { m.MulRangeTiledTo(make([]float64, 3), x[:5], 0, 3, 8, make([]float64, 12)) }},
		{"acc too small", func() { m.MulRangeTiledTo(make([]float64, 3), x, 0, 3, 8, make([]float64, 11)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

// AtAShard over any partition must reproduce AtA bit-for-bit: the
// per-element sample accumulation order is row-major regardless of shard
// boundaries.
func TestAtAShardMatchesAtA(t *testing.T) {
	m := randomDense(19, 13, 47)
	want := m.AtA()
	for _, bounds := range [][]int{{0, 13}, {0, 1, 13}, {0, 4, 8, 13}, {0, 6, 7, 13}} {
		got := NewDense(13, 13)
		for i := 0; i+1 < len(bounds); i++ {
			m.AtAShard(got, bounds[i], bounds[i+1])
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shards %v element %d: %v != %v", bounds, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulRangeToBoundsPanics(t *testing.T) {
	dense := randomDense(8, 8, 35)
	csr := randomCSRMatrix(8, 8, 2, 36)
	x := make([]float64, 8)
	cases := []struct {
		name string
		call func()
	}{
		{"dense lo<0", func() { dense.MulRangeTo(make([]float64, 3), x, -1, 2) }},
		{"dense hi>rows", func() { dense.MulRangeTo(make([]float64, 3), x, 6, 9) }},
		{"dense lo>hi", func() { dense.MulRangeTo(make([]float64, 0), x, 5, 3) }},
		{"dense bad y", func() { dense.MulRangeTo(make([]float64, 2), x, 0, 3) }},
		{"dense bad x", func() { dense.MulRangeTo(make([]float64, 3), x[:5], 0, 3) }},
		{"csr lo<0", func() { csr.MulRangeTo(make([]float64, 3), x, -1, 2) }},
		{"csr hi>rows", func() { csr.MulRangeTo(make([]float64, 3), x, 6, 9) }},
		{"csr lo>hi", func() { csr.MulRangeTo(make([]float64, 0), x, 5, 3) }},
		{"csr bad y", func() { csr.MulRangeTo(make([]float64, 2), x, 0, 3) }},
		{"csr bad x", func() { csr.MulRangeTo(make([]float64, 3), x[:5], 0, 3) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
