package vec

import "testing"

func randomDense(rows, cols int, seed uint64) *Dense {
	rng := NewRNG(seed)
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Normal()
	}
	return m
}

func randomCSRMatrix(rows, cols int, nnzPerRow int, seed uint64) *CSR {
	rng := NewRNG(seed)
	var entries []COOEntry
	for r := 0; r < rows; r++ {
		for k := 0; k < nnzPerRow; k++ {
			entries = append(entries, COOEntry{
				Row: r, Col: int(rng.Uint64() % uint64(cols)), Val: rng.Normal(),
			})
		}
	}
	return NewCSR(rows, cols, entries)
}

// MulRangeTo must agree bit-identically with the corresponding rows of a
// full MulVecTo on random matrices, for every range.
func TestDenseMulRangeToMatchesMulVecTo(t *testing.T) {
	const rows, cols = 23, 17
	m := randomDense(rows, cols, 31)
	x := NewRNG(32).NormalVector(cols)
	full := make([]float64, rows)
	m.MulVecTo(full, x)
	for _, blk := range [][2]int{{0, rows}, {0, 0}, {0, 1}, {5, 14}, {rows - 1, rows}} {
		lo, hi := blk[0], blk[1]
		y := make([]float64, hi-lo)
		m.MulRangeTo(y, x, lo, hi)
		for i := range y {
			if y[i] != full[lo+i] {
				t.Errorf("dense range [%d,%d) row %d: %v != %v", lo, hi, lo+i, y[i], full[lo+i])
			}
		}
	}
}

func TestCSRMulRangeToMatchesMulVecTo(t *testing.T) {
	const rows, cols = 29, 29
	m := randomCSRMatrix(rows, cols, 4, 33)
	x := NewRNG(34).NormalVector(cols)
	full := make([]float64, rows)
	m.MulVecTo(full, x)
	for _, blk := range [][2]int{{0, rows}, {0, 0}, {0, 1}, {7, 20}, {rows - 1, rows}} {
		lo, hi := blk[0], blk[1]
		y := make([]float64, hi-lo)
		m.MulRangeTo(y, x, lo, hi)
		for i := range y {
			if y[i] != full[lo+i] {
				t.Errorf("csr range [%d,%d) row %d: %v != %v", lo, hi, lo+i, y[i], full[lo+i])
			}
		}
	}
}

func TestMulRangeToBoundsPanics(t *testing.T) {
	dense := randomDense(8, 8, 35)
	csr := randomCSRMatrix(8, 8, 2, 36)
	x := make([]float64, 8)
	cases := []struct {
		name string
		call func()
	}{
		{"dense lo<0", func() { dense.MulRangeTo(make([]float64, 3), x, -1, 2) }},
		{"dense hi>rows", func() { dense.MulRangeTo(make([]float64, 3), x, 6, 9) }},
		{"dense lo>hi", func() { dense.MulRangeTo(make([]float64, 0), x, 5, 3) }},
		{"dense bad y", func() { dense.MulRangeTo(make([]float64, 2), x, 0, 3) }},
		{"dense bad x", func() { dense.MulRangeTo(make([]float64, 3), x[:5], 0, 3) }},
		{"csr lo<0", func() { csr.MulRangeTo(make([]float64, 3), x, -1, 2) }},
		{"csr hi>rows", func() { csr.MulRangeTo(make([]float64, 3), x, 6, 9) }},
		{"csr lo>hi", func() { csr.MulRangeTo(make([]float64, 0), x, 5, 3) }},
		{"csr bad y", func() { csr.MulRangeTo(make([]float64, 2), x, 0, 3) }},
		{"csr bad x", func() { csr.MulRangeTo(make([]float64, 3), x[:5], 0, 3) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
