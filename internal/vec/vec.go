// Package vec provides the small dense/sparse linear-algebra kernels used by
// the asynchronous-iteration library: BLAS-1 style vector operations, dense
// and compressed-sparse-row matrices, and the weighted maximum norms that the
// asynchronous-iterations literature (and the reproduced paper) states its
// contraction hypotheses in.
//
// Everything is deliberately simple, allocation-conscious and deterministic;
// no external numeric libraries are used.
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense vector of float64. The zero value is a usable empty
// vector. Most functions treat Vectors as plain slices so callers may pass
// []float64 directly.
type Vector = []float64

// New returns a zero vector of length n.
func New(n int) Vector {
	return make(Vector, n)
}

// Constant returns a vector of length n with every component equal to c.
func Constant(n int, c float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Clone returns a fresh copy of x.
func Clone(x Vector) Vector {
	y := make(Vector, len(x))
	copy(y, x)
	return y
}

// CopyInto copies src into dst; the lengths must match.
func CopyInto(dst, src Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: CopyInto length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Add returns x + y as a new vector.
func Add(x, y Vector) Vector {
	z := make(Vector, len(x))
	AddInto(z, x, y)
	return z
}

// AddInto computes dst = x + y without allocating; dst may alias x or y.
func AddInto(dst, x, y Vector) {
	checkLen(x, y)
	checkLen(dst, x)
	for i := range x {
		dst[i] = x[i] + y[i]
	}
}

// Sub returns x - y as a new vector.
func Sub(x, y Vector) Vector {
	z := make(Vector, len(x))
	SubInto(z, x, y)
	return z
}

// SubInto computes dst = x - y without allocating; dst may alias x or y.
func SubInto(dst, x, y Vector) {
	checkLen(x, y)
	checkLen(dst, x)
	for i := range x {
		dst[i] = x[i] - y[i]
	}
}

// Scale returns a*x as a new vector.
func Scale(a float64, x Vector) Vector {
	z := make(Vector, len(x))
	ScaleInto(z, a, x)
	return z
}

// ScaleInto computes dst = a*x without allocating; dst may alias x.
func ScaleInto(dst Vector, a float64, x Vector) {
	checkLen(dst, x)
	for i := range x {
		dst[i] = a * x[i]
	}
}

// AXPY computes y += a*x in place. The 4-wide unroll changes no bits:
// each component is updated independently, so no reduction is reassociated.
//
//repro:hotpath
func AXPY(a float64, x, y Vector) {
	checkLen(x, y)
	n4 := len(x) &^ 3
	for i := 0; i < n4; i += 4 {
		xi := x[i : i+4 : i+4]
		yi := y[i : i+4 : i+4]
		yi[0] += a * xi[0]
		yi[1] += a * xi[1]
		yi[2] += a * xi[2]
		yi[3] += a * xi[3]
	}
	for i := n4; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// AXPYInto computes dst = y + a*x without allocating; dst may alias x or y.
// Like AXPY, the unroll is bit-identical to the scalar loop.
//
//repro:hotpath
func AXPYInto(dst Vector, a float64, x, y Vector) {
	checkLen(x, y)
	checkLen(dst, x)
	n4 := len(x) &^ 3
	for i := 0; i < n4; i += 4 {
		xi := x[i : i+4 : i+4]
		yi := y[i : i+4 : i+4]
		di := dst[i : i+4 : i+4]
		di[0] = yi[0] + a*xi[0]
		di[1] = yi[1] + a*xi[1]
		di[2] = yi[2] + a*xi[2]
		di[3] = yi[3] + a*xi[3]
	}
	for i := n4; i < len(x); i++ {
		dst[i] = y[i] + a*x[i]
	}
}

// Dot returns the inner product of x and y in the canonical 4-accumulator
// reduction order (see kernels.go) — the one order every dense and sparse
// dot in the library uses, so full, range and componentwise evaluation
// paths stay mutually bit-identical.
//
//repro:hotpath
func Dot(x, y Vector) float64 {
	checkLen(x, y)
	return dot4(x, y)
}

// Sum returns the sum of the components of x in the canonical
// 4-accumulator reduction order (see kernels.go) — the accumulation analog
// of Dot, so ad-hoc summation loops elsewhere can reduce through one
// shared order.
//
//repro:hotpath
func Sum(x Vector) float64 {
	return sum4(x)
}

// DotStrideAcc returns acc + Σ_h a[h]·b[off+h·stride], accumulating
// SEQUENTIALLY in ascending h onto the seed acc. This is the canonical
// order for seeded column reductions — the LeastSquares lean gradient
// starts each component at reg·x_c and folds the sample terms in row
// order, and every granularity (full, range, componentwise) must share
// that exact chain to stay bit-identical.
//
//repro:hotpath
func DotStrideAcc(acc float64, a, b Vector, off, stride int) float64 {
	if stride <= 0 {
		panic("vec: DotStrideAcc requires positive stride")
	}
	if len(a) > 0 && off+(len(a)-1)*stride >= len(b) {
		//repro:alloc-ok cold panic path
		panic(fmt.Sprintf("vec: DotStrideAcc out of range: off %d stride %d over len %d", off, stride, len(b)))
	}
	for h := range a {
		acc += a[h] * b[off+h*stride]
	}
	return acc
}

// Lerp returns (1-t)*x + t*y, the linear interpolation between x and y.
// Flexible communication publishes such interpolants as partial updates.
func Lerp(x, y Vector, t float64) Vector {
	z := make(Vector, len(x))
	LerpInto(z, x, y, t)
	return z
}

// LerpInto computes dst = (1-t)*x + t*y without allocating; dst may alias
// x or y.
func LerpInto(dst, x, y Vector, t float64) {
	checkLen(x, y)
	checkLen(dst, x)
	for i := range x {
		dst[i] = x[i] + t*(y[i]-x[i])
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x Vector) float64 {
	// Scaled accumulation to avoid overflow on extreme inputs.
	s, scale := 0.0, 0.0
	for _, v := range x {
		a := math.Abs(v)
		if a == 0 {
			continue
		}
		if a > scale {
			r := scale / a
			s = 1 + s*r*r
			scale = a
		} else {
			r := a / scale
			s += r * r
		}
	}
	return scale * math.Sqrt(s)
}

// NormInf returns the maximum norm of x.
func NormInf(x Vector) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the 1-norm of x.
func Norm1(x Vector) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// DistInf returns ||x - y||_inf without allocating.
func DistInf(x, y Vector) float64 {
	checkLen(x, y)
	m := 0.0
	for i := range x {
		if a := math.Abs(x[i] - y[i]); a > m {
			m = a
		}
	}
	return m
}

// Dist2 returns ||x - y||_2 without allocating.
func Dist2(x, y Vector) float64 {
	checkLen(x, y)
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// WeightedMaxNorm returns the weighted maximum norm
//
//	||x||_u = max_i |x_i| / u_i,
//
// the norm in which the asynchronous-iterations contraction theory is stated
// (u must be componentwise positive).
func WeightedMaxNorm(x, u Vector) float64 {
	checkLen(x, u)
	m := 0.0
	for i := range x {
		if u[i] <= 0 {
			panic("vec: WeightedMaxNorm requires positive weights")
		}
		if a := math.Abs(x[i]) / u[i]; a > m {
			m = a
		}
	}
	return m
}

// WeightedMaxDist returns ||x - y||_u without allocating.
func WeightedMaxDist(x, y, u Vector) float64 {
	checkLen(x, y)
	checkLen(x, u)
	m := 0.0
	for i := range x {
		if u[i] <= 0 {
			panic("vec: WeightedMaxDist requires positive weights")
		}
		if a := math.Abs(x[i]-y[i]) / u[i]; a > m {
			m = a
		}
	}
	return m
}

// MaxAbsComponentDist returns max_i |x_i - y_i|^2, the right-hand-side
// quantity max_i ||x_i(0) - x*||^2 of inequality (5) in the paper for scalar
// component spaces.
func MaxAbsComponentDist(x, y Vector) float64 {
	d := DistInf(x, y)
	return d * d
}

// Equal reports whether x and y agree within absolute tolerance tol in every
// component.
func Equal(x, y Vector, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// AllFinite reports whether every component of x is finite (no NaN/Inf).
func AllFinite(x Vector) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func checkLen(x, y Vector) {
	if len(x) != len(y) {
		//repro:alloc-ok cold panic path
		panic(fmt.Sprintf("vec: length mismatch %d != %d", len(x), len(y)))
	}
}

// Blocks partitions {0,...,n-1} into m contiguous blocks of nearly equal
// size. It returns a slice of m index ranges [lo,hi). Blocks are the unit of
// work assigned to each simulated processor in the block-iterative methods.
func Blocks(n, m int) [][2]int {
	if m <= 0 || n < 0 {
		panic("vec: Blocks requires n >= 0, m > 0")
	}
	if m > n && n > 0 {
		m = n
	}
	out := make([][2]int, 0, m)
	base, rem := 0, 0
	if m > 0 {
		base, rem = n/m, n%m
	}
	lo := 0
	for b := 0; b < m; b++ {
		sz := base
		if b < rem {
			sz++
		}
		out = append(out, [2]int{lo, lo + sz})
		lo += sz
	}
	return out
}

// BlockOf returns the index of the block (as produced by Blocks(n, m))
// containing component i.
func BlockOf(blocks [][2]int, i int) int {
	for b, r := range blocks {
		if i >= r[0] && i < r[1] {
			return b
		}
	}
	return -1
}
