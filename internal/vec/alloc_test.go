package vec

import "testing"

// The iteration kernels are the innermost hot paths of every engine; these
// tests pin their zero-allocation property so a regression fails CI rather
// than silently eroding throughput.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s allocated %.1f times per run, want 0", name, avg)
	}
}

func TestDenseKernelsAllocationFree(t *testing.T) {
	m, x := benchMatrix(64)
	y := New(64)
	assertZeroAllocs(t, "Dense.MulVecTo", func() { m.MulVecTo(y, x) })
	assertZeroAllocs(t, "Dense.MulVecTransTo", func() { m.MulVecTransTo(y, x) })
	assertZeroAllocs(t, "Dense.RowDotAt", func() { _ = m.RowDotAt(3, x) })
}

func TestSparseKernelsAllocationFree(t *testing.T) {
	// 5-point stencil on a 16x16 grid — the obstacle problem's sparsity.
	n := 16
	dim := n * n
	var entries []COOEntry
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := r*n + c
			entries = append(entries, COOEntry{i, i, 4})
			if r > 0 {
				entries = append(entries, COOEntry{i, i - n, -1})
			}
			if r < n-1 {
				entries = append(entries, COOEntry{i, i + n, -1})
			}
			if c > 0 {
				entries = append(entries, COOEntry{i, i - 1, -1})
			}
			if c < n-1 {
				entries = append(entries, COOEntry{i, i + 1, -1})
			}
		}
	}
	m := NewCSR(dim, dim, entries)
	x := NewRNG(2).NormalVector(dim)
	y := New(dim)
	assertZeroAllocs(t, "CSR.MulVecTo", func() { m.MulVecTo(y, x) })
	assertZeroAllocs(t, "CSR.RowDotAt", func() { _ = m.RowDotAt(5, x) })
}

func TestVectorKernelsAllocationFree(t *testing.T) {
	rng := NewRNG(3)
	x := rng.NormalVector(256)
	y := rng.NormalVector(256)
	u := rng.RandomVector(256, 0.5, 2)
	dst := New(256)
	assertZeroAllocs(t, "AddInto", func() { AddInto(dst, x, y) })
	assertZeroAllocs(t, "SubInto", func() { SubInto(dst, x, y) })
	assertZeroAllocs(t, "ScaleInto", func() { ScaleInto(dst, 2.5, x) })
	assertZeroAllocs(t, "AXPY", func() { AXPY(0.5, x, dst) })
	assertZeroAllocs(t, "AXPYInto", func() { AXPYInto(dst, 0.5, x, y) })
	assertZeroAllocs(t, "LerpInto", func() { LerpInto(dst, x, y, 0.3) })
	assertZeroAllocs(t, "CopyInto", func() { CopyInto(dst, x) })
	assertZeroAllocs(t, "Dot", func() { _ = Dot(x, y) })
	assertZeroAllocs(t, "Norm2", func() { _ = Norm2(x) })
	assertZeroAllocs(t, "NormInf", func() { _ = NormInf(x) })
	assertZeroAllocs(t, "Norm1", func() { _ = Norm1(x) })
	assertZeroAllocs(t, "DistInf", func() { _ = DistInf(x, y) })
	assertZeroAllocs(t, "Dist2", func() { _ = Dist2(x, y) })
	assertZeroAllocs(t, "WeightedMaxNorm", func() { _ = WeightedMaxNorm(x, u) })
	assertZeroAllocs(t, "WeightedMaxDist", func() { _ = WeightedMaxDist(x, y, u) })
}

func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	rng := NewRNG(4)
	x := rng.NormalVector(32)
	y := rng.NormalVector(32)
	dst := New(32)

	AddInto(dst, x, y)
	if !Equal(dst, Add(x, y), 0) {
		t.Error("AddInto != Add")
	}
	SubInto(dst, x, y)
	if !Equal(dst, Sub(x, y), 0) {
		t.Error("SubInto != Sub")
	}
	ScaleInto(dst, -1.5, x)
	if !Equal(dst, Scale(-1.5, x), 0) {
		t.Error("ScaleInto != Scale")
	}
	LerpInto(dst, x, y, 0.25)
	if !Equal(dst, Lerp(x, y, 0.25), 0) {
		t.Error("LerpInto != Lerp")
	}
	want := Clone(y)
	AXPY(0.75, x, want)
	AXPYInto(dst, 0.75, x, y)
	if !Equal(dst, want, 0) {
		t.Error("AXPYInto != AXPY")
	}
	// Aliasing: dst == x must be supported.
	alias := Clone(x)
	AddInto(alias, alias, y)
	if !Equal(alias, Add(x, y), 0) {
		t.Error("AddInto aliasing broken")
	}
}
