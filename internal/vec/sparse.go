package vec

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix. It is the storage format for the
// large grid/graph operators (obstacle problem Laplacians, network
// incidence structures) where dense storage would be wasteful.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len nnz
	Val        []float64 // len nnz
}

// COOEntry is a coordinate-format triplet used to assemble CSR matrices.
type COOEntry struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from coordinate entries. Duplicate (row,col)
// entries are summed, matching standard sparse assembly semantics.
func NewCSR(rows, cols int, entries []COOEntry) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("vec: NewCSR entry (%d,%d) out of bounds %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	sorted := make([]COOEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		e := sorted[k]
		v := e.Val
		k++
		for k < len(sorted) && sorted[k].Row == e.Row && sorted[k].Col == e.Col {
			v += sorted[k].Val
			k++
		}
		m.ColIdx = append(m.ColIdx, e.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[e.Row+1] = len(m.ColIdx)
	}
	for r := 1; r <= rows; r++ {
		if m.RowPtr[r] < m.RowPtr[r-1] {
			m.RowPtr[r] = m.RowPtr[r-1]
		}
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVecTo computes y = M x. Each row reduces in the canonical
// 4-accumulator order (see kernels.go), matching RowDotAt bit for bit.
func (m *CSR) MulVecTo(y, x Vector) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("vec: CSR MulVecTo dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		y[r] = dot4Indexed(m.Val[lo:hi], m.ColIdx[lo:hi], x)
	}
}

// MulVec computes y = M x, allocating the result.
func (m *CSR) MulVec(x Vector) Vector {
	y := make(Vector, m.Rows)
	m.MulVecTo(y, x)
	return y
}

// MulRangeTo computes the row range y[i-lo] = (M x)_i for i in [lo, hi) —
// the sparse row-slab matvec behind the block-evaluation fast path of the
// grid/graph operators. Per-row summation order matches RowDotAt exactly, so
// range and componentwise evaluation are bit-identical.
func (m *CSR) MulRangeTo(y, x Vector, lo, hi int) {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("vec: CSR MulRangeTo range [%d,%d) outside %d rows", lo, hi, m.Rows))
	}
	if len(x) != m.Cols || len(y) != hi-lo {
		panic("vec: CSR MulRangeTo dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		klo, khi := m.RowPtr[i], m.RowPtr[i+1]
		y[i-lo] = dot4Indexed(m.Val[klo:khi], m.ColIdx[klo:khi], x)
	}
}

// RowDotAt returns (M x)_i touching only row i; this is the per-component
// evaluation the asynchronous engines call. Canonical reduction order,
// bit-identical to the corresponding MulVecTo / MulRangeTo component.
func (m *CSR) RowDotAt(i int, x Vector) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return dot4Indexed(m.Val[lo:hi], m.ColIdx[lo:hi], x)
}

// At returns element (i, j) (O(row nnz)).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// RowNNZ returns the column indices and values of row i as views.
func (m *CSR) RowNNZ(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// InfNorm returns the max absolute row sum.
func (m *CSR) InfNorm() float64 {
	worst := 0.0
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += math.Abs(m.Val[k])
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// Dense converts to a dense matrix (test/diagnostic use only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Set(r, m.ColIdx[k], d.At(r, m.ColIdx[k])+m.Val[k])
		}
	}
	return d
}
