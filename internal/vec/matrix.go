package vec

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zero Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("vec: NewDense negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromRows builds a Dense matrix from row slices (which are copied).
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("vec: DenseFromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M x, allocating the result.
func (m *Dense) MulVec(x Vector) Vector {
	y := make(Vector, m.Rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = M x into the provided slice.
func (m *Dense) MulVecTo(y, x Vector) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("vec: MulVecTo dimension mismatch (%dx%d)*%d -> %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = dot4(m.Row(i), x)
	}
}

// MulVecTransTo computes y = M^T x into y (len Cols).
func (m *Dense) MulVecTransTo(y, x Vector) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("vec: MulVecTransTo dimension mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, a := range row {
			y[j] += a * xi
		}
	}
}

// MulRangeTo computes the row range y[i-lo] = (M x)_i for i in [lo, hi) —
// the row-slab matvec the block-evaluation fast path runs once per worker
// phase instead of hi-lo independent RowDotAt calls. The per-row summation
// order is identical to RowDotAt, so range and componentwise evaluation are
// bit-identical.
func (m *Dense) MulRangeTo(y, x Vector, lo, hi int) {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("vec: MulRangeTo range [%d,%d) outside %d rows", lo, hi, m.Rows))
	}
	if len(x) != m.Cols || len(y) != hi-lo {
		panic(fmt.Sprintf("vec: MulRangeTo dimension mismatch (%dx%d)*%d -> %d (range %d)",
			m.Rows, m.Cols, len(x), len(y), hi-lo))
	}
	for i := lo; i < hi; i++ {
		y[i-lo] = dot4(m.Row(i), x)
	}
}

// MulRangeTiledTo computes the same row-slab matvec as MulRangeTo, but
// streams the slab through column tiles of width tile so each tile of x and
// of the matrix rows stays hot in cache across the whole slab. acc is the
// caller's accumulator scratch with capacity >= 4*(hi-lo): four strided
// partial sums per output row, carried across tiles so the reduction order
// is exactly dot4's regardless of tile width — the result is bit-identical
// to MulRangeTo for every tile size. tile is rounded down to a multiple of
// 4; tile < 8 or tile >= Cols falls back to the untiled loop.
func (m *Dense) MulRangeTiledTo(y, x Vector, lo, hi, tile int, acc []float64) {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("vec: MulRangeTiledTo range [%d,%d) outside %d rows", lo, hi, m.Rows))
	}
	if len(x) != m.Cols || len(y) != hi-lo {
		panic(fmt.Sprintf("vec: MulRangeTiledTo dimension mismatch (%dx%d)*%d -> %d (range %d)",
			m.Rows, m.Cols, len(x), len(y), hi-lo))
	}
	tile &^= 3
	if tile < 8 || tile >= m.Cols {
		m.MulRangeTo(y, x, lo, hi)
		return
	}
	rows := hi - lo
	if len(acc) < 4*rows {
		panic(fmt.Sprintf("vec: MulRangeTiledTo accumulator too small: %d < %d", len(acc), 4*rows))
	}
	acc = acc[:4*rows]
	for i := range acc {
		acc[i] = 0
	}
	cols4 := m.Cols &^ 3
	for t := 0; t < cols4; t += tile {
		te := t + tile
		if te > cols4 {
			te = cols4
		}
		for i := 0; i < rows; i++ {
			dot4Acc(acc[4*i:4*i+4], m.Row(lo+i), x, t, te)
		}
	}
	for i := 0; i < rows; i++ {
		y[i] = dot4Tail(acc[4*i:4*i+4], m.Row(lo+i), x, cols4)
	}
}

// RowDotAt returns the dot product of row i with x in the canonical
// reduction order; used for componentwise residual evaluation without
// touching other rows. Bit-identical to the corresponding MulVecTo /
// MulRangeTo component.
func (m *Dense) RowDotAt(i int, x Vector) float64 {
	return dot4(m.Row(i), x)
}

// AtA computes the Gram matrix M^T M (Cols x Cols).
func (m *Dense) AtA() *Dense {
	g := NewDense(m.Cols, m.Cols)
	m.AtAShard(g, 0, m.Cols)
	return g
}

// AtAShard fills rows [lo, hi) of the Gram matrix g = M^T M. Each output row
// depends only on the full sample set, never on other Gram rows, so disjoint
// shards may be filled concurrently; per element the sample-index
// accumulation order is ascending exactly as in AtA, so a sharded assembly
// is bit-identical to the serial one.
func (m *Dense) AtAShard(g *Dense, lo, hi int) {
	if g.Rows != m.Cols || g.Cols != m.Cols {
		panic(fmt.Sprintf("vec: AtAShard output %dx%d, want %dx%d", g.Rows, g.Cols, m.Cols, m.Cols))
	}
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("vec: AtAShard range [%d,%d) outside %d Gram rows", lo, hi, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := lo; a < hi; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			grow := g.Row(a)
			for b := 0; b < m.Cols; b++ {
				grow[b] += ra * row[b]
			}
		}
	}
}

// InfNorm returns the matrix norm induced by the max vector norm
// (maximum absolute row sum).
func (m *Dense) InfNorm() float64 {
	worst := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, a := range m.Row(i) {
			s += math.Abs(a)
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// WeightedInfNorm returns the operator norm of M with respect to the
// weighted max norm ||.||_u: max_i (1/u_i) * sum_j |M_ij| u_j. A value < 1
// certifies that x -> Mx + b is a ||.||_u contraction.
func (m *Dense) WeightedInfNorm(u Vector) float64 {
	if len(u) != m.Cols || m.Rows != m.Cols {
		panic("vec: WeightedInfNorm requires square matrix and matching weights")
	}
	worst := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j, a := range m.Row(i) {
			s += math.Abs(a) * u[j]
		}
		s /= u[i]
		if s > worst {
			worst = s
		}
	}
	return worst
}

// IsDiagonallyDominant reports whether |M_ii| > sum_{j!=i} |M_ij| for every
// row, with the strictness margin returned as the minimum row slack.
func (m *Dense) IsDiagonallyDominant() (bool, float64) {
	if m.Rows != m.Cols {
		return false, 0
	}
	minSlack := math.Inf(1)
	for i := 0; i < m.Rows; i++ {
		off := 0.0
		for j, a := range m.Row(i) {
			if j != i {
				off += math.Abs(a)
			}
		}
		slack := math.Abs(m.At(i, i)) - off
		if slack < minSlack {
			minSlack = slack
		}
	}
	return minSlack > 0, minSlack
}

// SymEigBounds returns cheap bounds [lo, hi] on the eigenvalues of a
// symmetric matrix via Gershgorin discs. For Hessians this yields usable
// (mu, L) estimates when the matrix is diagonally dominant.
func (m *Dense) SymEigBounds() (lo, hi float64) {
	if m.Rows != m.Cols {
		panic("vec: SymEigBounds requires a square matrix")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		r := 0.0
		for j, a := range m.Row(i) {
			if j != i {
				r += math.Abs(a)
			}
		}
		d := m.At(i, i)
		if d-r < lo {
			lo = d - r
		}
		if d+r > hi {
			hi = d + r
		}
	}
	return lo, hi
}

// PowerIterationLmax estimates the largest eigenvalue of a symmetric
// positive semidefinite matrix by power iteration (deterministic start).
func (m *Dense) PowerIterationLmax(iters int) float64 {
	if m.Rows != m.Cols || m.Rows == 0 {
		return 0
	}
	n := m.Rows
	x := Constant(n, 1/math.Sqrt(float64(n)))
	// Slight asymmetry so we do not start orthogonal to the top eigenvector.
	for i := range x {
		x[i] *= 1 + 1e-3*float64(i%7)
	}
	y := New(n)
	lambda := 0.0
	for k := 0; k < iters; k++ {
		m.MulVecTo(y, x)
		nrm := Norm2(y)
		if nrm == 0 {
			return 0
		}
		for i := range x {
			x[i] = y[i] / nrm
		}
		lambda = nrm
	}
	return lambda
}

// SolveGaussian solves M z = rhs by Gaussian elimination with partial
// pivoting (used only to compute reference fixed points in tests and
// experiment harnesses; the iterative methods never call it).
func (m *Dense) SolveGaussian(rhs Vector) (Vector, error) {
	n := m.Rows
	if m.Cols != n || len(rhs) != n {
		return nil, fmt.Errorf("vec: SolveGaussian needs square system, got %dx%d rhs %d", m.Rows, m.Cols, len(rhs))
	}
	a := m.Clone()
	b := Clone(rhs)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("vec: SolveGaussian singular at column %d", col)
		}
		if p != col {
			ra, rb := a.Row(p), a.Row(col)
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
			b[p], b[col] = b[col], b[p]
		}
		piv := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / piv
			if f == 0 {
				continue
			}
			rowR, rowC := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
			b[r] -= f * b[col]
		}
	}
	x := New(n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := a.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}
