package vec

import (
	"math"
	"testing"
)

func TestDenseMulVec(t *testing.T) {
	m := DenseFromRows([][]float64{
		{1, 2},
		{3, 4},
		{5, 6},
	})
	x := Vector{1, 1}
	got := m.MulVec(x)
	if !Equal(got, Vector{3, 7, 11}, 0) {
		t.Errorf("MulVec = %v", got)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowDotAt(i, x) != got[i] {
			t.Errorf("RowDotAt(%d) disagrees with MulVec", i)
		}
	}
}

func TestDenseMulVecTrans(t *testing.T) {
	m := DenseFromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	x := Vector{1, 2}
	y := New(2)
	m.MulVecTransTo(y, x)
	if !Equal(y, Vector{7, 10}, 0) {
		t.Errorf("MulVecTransTo = %v", y)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	x := Vector{1, 2, 3}
	if got := m.MulVec(x); !Equal(got, x, 0) {
		t.Errorf("Identity*x = %v", got)
	}
}

func TestAtA(t *testing.T) {
	m := DenseFromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	g := m.AtA()
	want := DenseFromRows([][]float64{
		{10, 14},
		{14, 20},
	})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if g.At(i, j) != want.At(i, j) {
				t.Errorf("AtA[%d][%d] = %v, want %v", i, j, g.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestInfNorms(t *testing.T) {
	m := DenseFromRows([][]float64{
		{0.5, -0.2},
		{0.1, 0.3},
	})
	if got := m.InfNorm(); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("InfNorm = %v", got)
	}
	u := Vector{1, 2}
	// row 0: (0.5*1 + 0.2*2)/1 = 0.9 ; row 1: (0.1*1 + 0.3*2)/2 = 0.35
	if got := m.WeightedInfNorm(u); math.Abs(got-0.9) > 1e-15 {
		t.Errorf("WeightedInfNorm = %v", got)
	}
}

func TestDiagonalDominance(t *testing.T) {
	m := DenseFromRows([][]float64{
		{4, -1, -1},
		{-1, 4, -1},
		{-1, -1, 4},
	})
	dd, slack := m.IsDiagonallyDominant()
	if !dd || math.Abs(slack-2) > 1e-15 {
		t.Errorf("IsDiagonallyDominant = %v slack %v", dd, slack)
	}
	m.Set(0, 0, 1)
	if dd, _ := m.IsDiagonallyDominant(); dd {
		t.Error("non-dominant matrix reported dominant")
	}
}

func TestSymEigBounds(t *testing.T) {
	m := DenseFromRows([][]float64{
		{4, -1},
		{-1, 4},
	})
	lo, hi := m.SymEigBounds()
	// Exact eigenvalues are 3 and 5; Gershgorin gives [3, 5].
	if lo > 3+1e-12 || hi < 5-1e-12 {
		t.Errorf("SymEigBounds = [%v, %v], want contains [3, 5]", lo, hi)
	}
}

func TestPowerIterationLmax(t *testing.T) {
	m := DenseFromRows([][]float64{
		{4, -1},
		{-1, 4},
	})
	got := m.PowerIterationLmax(200)
	if math.Abs(got-5) > 1e-6 {
		t.Errorf("PowerIterationLmax = %v, want 5", got)
	}
}

func TestSolveGaussian(t *testing.T) {
	m := DenseFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	rhs := Vector{3, 5}
	x, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MulVec(x); !Equal(got, rhs, 1e-12) {
		t.Errorf("solution residual: Mx = %v, want %v", got, rhs)
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	m := DenseFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := m.SolveGaussian(Vector{1, 2}); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestSolveGaussianRandom(t *testing.T) {
	r := NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(10)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.Normal())
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // keep well-conditioned
		}
		want := r.NormalVector(n)
		rhs := m.MulVec(want)
		got, err := m.SolveGaussian(rhs)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want, 1e-8) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}
