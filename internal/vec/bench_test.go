package vec

import "testing"

func benchMatrix(n int) (*Dense, Vector) {
	rng := NewRNG(1)
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Normal()
	}
	return m, rng.NormalVector(n)
}

func BenchmarkDenseMulVec256(b *testing.B) {
	m, x := benchMatrix(256)
	y := New(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

func BenchmarkCSRMulVec(b *testing.B) {
	// 5-point stencil pattern on a 64x64 grid (the obstacle problem's
	// sparsity).
	n := 64
	dim := n * n
	var entries []COOEntry
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := r*n + c
			entries = append(entries, COOEntry{i, i, 4})
			if r > 0 {
				entries = append(entries, COOEntry{i, i - n, -1})
			}
			if r < n-1 {
				entries = append(entries, COOEntry{i, i + n, -1})
			}
			if c > 0 {
				entries = append(entries, COOEntry{i, i - 1, -1})
			}
			if c < n-1 {
				entries = append(entries, COOEntry{i, i + 1, -1})
			}
		}
	}
	m := NewCSR(dim, dim, entries)
	x := NewRNG(2).NormalVector(dim)
	y := New(dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

func BenchmarkWeightedMaxNorm(b *testing.B) {
	rng := NewRNG(3)
	x := rng.NormalVector(1024)
	u := rng.RandomVector(1024, 0.5, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WeightedMaxNorm(x, u)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	rng := NewRNG(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rng.Normal()
	}
}
