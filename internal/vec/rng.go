package vec

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 seeding into xoshiro-style state). Every stochastic component
// of the simulators takes an explicit *RNG so that experiments and tests are
// exactly reproducible across runs and machines; we avoid math/rand's global
// state on purpose.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to expand the seed into two nonzero words.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1 = next(), next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new independent generator derived from r's stream; use it
// to give each simulated worker its own stream without cross-coupling.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Uint64 returns the next 64 random bits (xorshift128+).
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vec: RNG.Intn n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a standard normal variate (Box–Muller, polar form kept
// simple and branch-light for determinism).
func (r *RNG) Normal() float64 {
	// Marsaglia polar method.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrtNeg2LogOver(s)
		}
	}
}

func sqrtNeg2LogOver(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm fills a permutation of [0, n) into a new slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// RandomVector returns a vector of n iid uniform values in [lo, hi).
func (r *RNG) RandomVector(n int, lo, hi float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Range(lo, hi)
	}
	return v
}

// NormalVector returns a vector of n iid standard normal values.
func (r *RNG) NormalVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Normal()
	}
	return v
}
