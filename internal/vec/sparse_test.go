package vec

import (
	"math"
	"testing"
)

func TestCSRBasics(t *testing.T) {
	m := NewCSR(2, 3, []COOEntry{
		{0, 0, 1}, {0, 2, 2},
		{1, 1, 3},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	x := Vector{1, 1, 1}
	got := m.MulVec(x)
	if !Equal(got, Vector{3, 3}, 0) {
		t.Errorf("MulVec = %v", got)
	}
	if m.At(0, 2) != 2 || m.At(0, 1) != 0 {
		t.Errorf("At wrong: %v %v", m.At(0, 2), m.At(0, 1))
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(1, 1, []COOEntry{{0, 0, 1}, {0, 0, 2.5}})
	if m.At(0, 0) != 3.5 {
		t.Errorf("duplicate entries not summed: %v", m.At(0, 0))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestCSREmptyRows(t *testing.T) {
	m := NewCSR(3, 3, []COOEntry{{2, 0, 5}})
	x := Vector{1, 0, 0}
	got := m.MulVec(x)
	if !Equal(got, Vector{0, 0, 5}, 0) {
		t.Errorf("MulVec = %v", got)
	}
	cols, vals := m.RowNNZ(0)
	if len(cols) != 0 || len(vals) != 0 {
		t.Errorf("empty row returned entries")
	}
}

func TestCSRMatchesDense(t *testing.T) {
	r := NewRNG(3)
	for trial := 0; trial < 30; trial++ {
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		var entries []COOEntry
		for k := 0; k < rows*cols/2+1; k++ {
			entries = append(entries, COOEntry{r.Intn(rows), r.Intn(cols), r.Normal()})
		}
		m := NewCSR(rows, cols, entries)
		d := m.Dense()
		x := r.NormalVector(cols)
		ys, yd := m.MulVec(x), d.MulVec(x)
		if !Equal(ys, yd, 1e-12) {
			t.Fatalf("trial %d: CSR %v vs dense %v", trial, ys, yd)
		}
		for i := 0; i < rows; i++ {
			if math.Abs(m.RowDotAt(i, x)-ys[i]) > 1e-12 {
				t.Fatalf("RowDotAt(%d) mismatch", i)
			}
		}
		if math.Abs(m.InfNorm()-d.InfNorm()) > 1e-12 {
			t.Fatalf("InfNorm mismatch: %v vs %v", m.InfNorm(), d.InfNorm())
		}
	}
}

func TestCSROutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCSR(1, 1, []COOEntry{{1, 0, 1}})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		k := r.Intn(10)
		if k < 0 || k >= 10 {
			t.Fatalf("Intn out of range: %v", k)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(100)
	a := r.Split()
	b := r.Split()
	equal := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("split streams look correlated: %d equal draws", equal)
	}
}
