// Package trace records and renders the execution of parallel or
// distributed asynchronous iterations: updating phases (the labelled
// rectangles of the paper's Fig. 1) and communications of complete or
// partial updates (the plain and hatched arrows of Fig. 1 / Fig. 2). The
// ASCII Gantt renderer regenerates both figures from simulated runs, and
// the CSV writer exports the raw events for external plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind enumerates event types.
type Kind int

// Event kinds.
const (
	// UpdatePhase is a completed updating phase [Start, End] on a worker.
	UpdatePhase Kind = iota
	// Send is the emission of a (complete) update's value.
	Send
	// PartialSend is the emission of a partial update (flexible
	// communication, hatched arrows in Fig. 2).
	PartialSend
	// Deliver is the arrival of a previously sent value at its destination.
	Deliver
	// Drop marks a message lost in transit (fault injection).
	Drop
)

func (k Kind) String() string {
	switch k {
	case UpdatePhase:
		return "update"
	case Send:
		return "send"
	case PartialSend:
		return "partial"
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind       Kind
	Worker     int     // worker performing/emitting
	Peer       int     // destination worker for messages (-1 if n/a)
	Start, End float64 // virtual time span (Start == End for instants)
	Iter       int     // iteration label of the update involved
	Comp       int     // component or block id (-1 if n/a)
	Frac       float64 // fraction for partial updates (1 for complete)
}

// Log accumulates events.
type Log struct {
	Events []Event
}

// Add appends an event.
func (l *Log) Add(e Event) { l.Events = append(l.Events, e) }

// Phases returns the update phases of one worker sorted by start time.
func (l *Log) Phases(worker int) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Kind == UpdatePhase && e.Worker == worker {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Messages returns all send/partial/deliver/drop events sorted by time.
func (l *Log) Messages() []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Kind != UpdatePhase {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Workers returns the sorted set of worker ids appearing in the log.
func (l *Log) Workers() []int {
	set := map[int]bool{}
	for _, e := range l.Events {
		set[e.Worker] = true
	}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// MaxTime returns the largest event end time.
func (l *Log) MaxTime() float64 {
	m := 0.0
	for _, e := range l.Events {
		if e.End > m {
			m = e.End
		}
	}
	return m
}

// RenderGantt draws the run as ASCII lanes, one per worker, with updating
// phases shown as numbered rectangles positioned on a shared time axis —
// the textual equivalent of the paper's Fig. 1 — followed by the
// communication events. Partial-update sends are flagged "~" (the hatched
// arrows of Fig. 2). width is the number of character cells of the axis.
func RenderGantt(l *Log, width int) string {
	if width < 20 {
		width = 20
	}
	maxT := l.MaxTime()
	if maxT <= 0 {
		return "(empty trace)\n"
	}
	scale := float64(width) / maxT
	var b strings.Builder

	// Time axis.
	b.WriteString("time  ")
	step := maxT / 8
	axis := make([]byte, width+1)
	for i := range axis {
		axis[i] = ' '
	}
	for tn := 0; tn <= 8; tn++ {
		tv := step * float64(tn)
		pos := int(tv * scale)
		lbl := fmt.Sprintf("%.0f", tv)
		for k := 0; k < len(lbl) && pos+k < len(axis); k++ {
			axis[pos+k] = lbl[k]
		}
	}
	b.Write(axis)
	b.WriteByte('\n')

	for _, w := range l.Workers() {
		phases := l.Phases(w)
		if len(phases) == 0 {
			continue
		}
		lane := make([]byte, width+2)
		for i := range lane {
			lane[i] = ' '
		}
		for _, p := range phases {
			lo := int(p.Start * scale)
			hi := int(p.End * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi >= len(lane) {
				hi = len(lane) - 1
			}
			lane[lo] = '['
			for k := lo + 1; k < hi; k++ {
				lane[k] = '='
			}
			lane[hi] = ']'
			lbl := fmt.Sprintf("%d", p.Iter)
			mid := (lo + hi - len(lbl)/2) / 2
			if mid <= lo {
				mid = lo + 1
			}
			for k := 0; k < len(lbl) && mid+k < hi; k++ {
				lane[mid+k] = lbl[k]
			}
		}
		fmt.Fprintf(&b, "P%-4d ", w)
		b.Write(lane)
		b.WriteByte('\n')
	}

	msgs := l.Messages()
	if len(msgs) > 0 {
		b.WriteString("\ncommunications (── complete update, ~~ partial update):\n")
		for _, m := range msgs {
			switch m.Kind {
			case Send:
				fmt.Fprintf(&b, "  t=%8.2f  P%d ──> P%d   x(%d) [comp %d]\n",
					m.Start, m.Worker, m.Peer, m.Iter, m.Comp)
			case PartialSend:
				fmt.Fprintf(&b, "  t=%8.2f  P%d ~~> P%d   x~(%d) [comp %d, frac %.2f]\n",
					m.Start, m.Worker, m.Peer, m.Iter, m.Comp, m.Frac)
			case Deliver:
				fmt.Fprintf(&b, "  t=%8.2f  P%d <── P%d   x(%d) delivered [comp %d]\n",
					m.Start, m.Worker, m.Peer, m.Iter, m.Comp)
			case Drop:
				fmt.Fprintf(&b, "  t=%8.2f  P%d -x-> P%d  x(%d) DROPPED [comp %d]\n",
					m.Start, m.Worker, m.Peer, m.Iter, m.Comp)
			}
		}
	}
	return b.String()
}

// WriteCSV exports the event log with a header row.
func WriteCSV(w io.Writer, l *Log) error {
	if _, err := fmt.Fprintln(w, "kind,worker,peer,start,end,iter,comp,frac"); err != nil {
		return err
	}
	for _, e := range l.Events {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%g,%g,%d,%d,%g\n",
			e.Kind, e.Worker, e.Peer, e.Start, e.End, e.Iter, e.Comp, e.Frac); err != nil {
			return err
		}
	}
	return nil
}
