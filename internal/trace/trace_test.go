package trace

import (
	"strings"
	"testing"
)

func sampleLog() *Log {
	l := &Log{}
	l.Add(Event{Kind: UpdatePhase, Worker: 0, Start: 0, End: 1, Iter: 1, Comp: 0})
	l.Add(Event{Kind: Send, Worker: 0, Peer: 1, Start: 1, End: 1, Iter: 1, Comp: 0, Frac: 1})
	l.Add(Event{Kind: UpdatePhase, Worker: 1, Start: 0, End: 2, Iter: 2, Comp: 1})
	l.Add(Event{Kind: PartialSend, Worker: 1, Peer: 0, Start: 1, End: 1, Iter: 2, Comp: 1, Frac: 0.5})
	l.Add(Event{Kind: Deliver, Worker: 1, Peer: 0, Start: 1.4, End: 1.4, Iter: 1, Comp: 0})
	l.Add(Event{Kind: UpdatePhase, Worker: 0, Start: 1, End: 2.2, Iter: 3, Comp: 0})
	l.Add(Event{Kind: Drop, Worker: 1, Peer: 0, Start: 2, End: 2, Iter: 2, Comp: 1})
	return l
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		UpdatePhase: "update", Send: "send", PartialSend: "partial",
		Deliver: "deliver", Drop: "drop", Kind(42): "kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestPhasesSortedPerWorker(t *testing.T) {
	l := sampleLog()
	p0 := l.Phases(0)
	if len(p0) != 2 {
		t.Fatalf("worker 0 phases = %d", len(p0))
	}
	if p0[0].Start > p0[1].Start {
		t.Error("phases not sorted")
	}
	if len(l.Phases(1)) != 1 {
		t.Error("worker 1 phases wrong")
	}
	if len(l.Phases(9)) != 0 {
		t.Error("unknown worker should have no phases")
	}
}

func TestMessagesExcludePhases(t *testing.T) {
	l := sampleLog()
	msgs := l.Messages()
	if len(msgs) != 4 {
		t.Fatalf("messages = %d, want 4", len(msgs))
	}
	for _, m := range msgs {
		if m.Kind == UpdatePhase {
			t.Error("phase leaked into Messages")
		}
	}
}

func TestWorkersAndMaxTime(t *testing.T) {
	l := sampleLog()
	ws := l.Workers()
	if len(ws) != 2 || ws[0] != 0 || ws[1] != 1 {
		t.Errorf("Workers = %v", ws)
	}
	if l.MaxTime() != 2.2 {
		t.Errorf("MaxTime = %v", l.MaxTime())
	}
}

func TestRenderGanttContainsLanesAndArrows(t *testing.T) {
	out := RenderGantt(sampleLog(), 60)
	for _, want := range []string{"P0", "P1", "──>", "~~>", "DROPPED", "time"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	out := RenderGantt(&Log{}, 60)
	if !strings.Contains(out, "empty") {
		t.Errorf("empty log rendering = %q", out)
	}
}

func TestRenderGanttNarrowWidthClamped(t *testing.T) {
	out := RenderGantt(sampleLog(), 1)
	if len(out) == 0 {
		t.Error("clamped rendering empty")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleLog()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 { // header + 7 events
		t.Fatalf("CSV lines = %d, want 8:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "kind,worker,peer") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "update,0") {
		t.Errorf("first row = %q", lines[1])
	}
}
