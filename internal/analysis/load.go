package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads the packages matching patterns (resolved in dir) and
// type-checks them from source, resolving every import through compiler
// export data produced by `go list -export`. It needs no network: the go
// tool builds export data into the local build cache. Test files are not
// loaded; the lint suite's invariants target production code, and test
// files keep their freedom to hand-roll reference implementations.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, lp.Dir+"/"+name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(lp.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: lp.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// ExportDataFor returns the export-data file of pkg and of every package
// in its dependency closure, keyed by import path. dir only anchors the go
// tool invocation; pkg must be resolvable outside the module (stdlib).
func ExportDataFor(dir, pkg string) (map[string]string, error) {
	listed, err := goList(dir, []string{pkg})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			out[lp.ImportPath] = lp.Export
		}
	}
	return out, nil
}

// ExportImporter returns a types.Importer that resolves packages from gc
// compiler export data files, located by the supplied lookup (import path →
// file). "unsafe" resolves to types.Unsafe.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Check type-checks one package's parsed files with full types.Info maps.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// RunAnalyzers applies every analyzer to pkg, skipping _test.go files, and
// returns the surviving diagnostics tagged with the analyzer that produced
// them.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var files []*ast.File
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	return findings, nil
}

// A Finding is a diagnostic with its analyzer name and resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}
