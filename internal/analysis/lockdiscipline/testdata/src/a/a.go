// Fixture for the lockdiscipline analyzer. Positive cases carry // want
// markers; everything else must stay silent.
package a

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// branchLeak locks, but only the error branch unlocks: the happy path
// returns with the mutex held. CFG-sensitive: the Unlock exists, just not
// on every path.
func (s *S) branchLeak(fail bool) int {
	s.mu.Lock() // want `Lock of "s\.mu" is not released on every path`
	if fail {
		s.mu.Unlock()
		return -1
	}
	return s.n
}

// branchOK unlocks on both paths: must not be reported.
func (s *S) branchOK(fail bool) int {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return -1
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// deferOK is the canonical discharge: a deferred unlock covers every
// path, including early returns added later.
func (s *S) deferOK(fail bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return -1
	}
	return s.n
}

// deferClosureOK discharges through a deferred closure.
func (s *S) deferClosureOK() int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.n
}

// loopOK reacquires per iteration; the fixpoint must converge without a
// false positive.
func (s *S) loopOK(k int) int {
	t := 0
	for i := 0; i < k; i++ {
		s.mu.Lock()
		t += s.n
		s.mu.Unlock()
	}
	return t
}

// doubleUnlock releases twice on the same straight-line path.
func (s *S) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `Unlock of "s\.mu": no path to this statement holds the lock`
}

// unlockHelper only ever unlocks; lock handoff helpers are legal, so no
// diagnostic (the function never locks s.mu itself).
func (s *S) unlockHelper() {
	s.mu.Unlock()
}

// rwSplit pairs RLock with RUnlock; mixing the reader and writer sides is
// tracked separately, so the missing writer Unlock on the second branch
// is a leak.
func (s *S) rwSplit(w bool) int {
	if !w {
		s.rw.RLock()
		n := s.n
		s.rw.RUnlock()
		return n
	}
	s.rw.Lock() // want `Lock of "s\.rw" is not released on every path`
	s.n++
	s.rw.RUnlock() // want `RUnlock of "s\.rw": no path to this statement holds the lock`
	return s.n
}

// deferInLoop pyramids unlocks at function exit.
func (s *S) deferInLoop(k int) {
	for i := 0; i < k; i++ {
		s.mu.Lock()
		defer s.mu.Unlock() // want `defer of "s\.mu" Unlock inside a loop`
		s.n++
	}
}

// panicPathOK: the panic path may exit with the lock held (the process is
// dying); only normal returns are checked.
func (s *S) panicPathOK(bad bool) int {
	s.mu.Lock()
	if bad {
		panic("bad")
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// copyParam passes a mutex-bearing struct by value.
func copyParam(s S) int { // want `by-value parameter copies a\.S`
	return s.n
}

// copyAssign copies a mutex-bearing value out of a pointer.
func copyAssign(p *S) S {
	v := *p // want `assignment copies a\.S`
	return v
}

// copyRange copies mutex-bearing values while ranging.
func copyRange(ss []S) int {
	t := 0
	for _, v := range ss { // want `range value copies a\.S`
		t += v.n
	}
	return t
}

// pointerOK: pointers to mutex-bearing values copy nothing.
func pointerOK(ss []*S) int {
	t := 0
	for _, v := range ss {
		t += v.n
	}
	return t
}

// handoffSuppressed documents a deliberate lock handoff.
func (s *S) handoffSuppressed() {
	//repro:lock-ok handed off to finishHandoff, which always runs
	s.mu.Lock()
	go s.finishHandoff()
}

func (s *S) finishHandoff() {
	s.n++
	s.mu.Unlock()
}

// litSeparate: a goroutine body is its own function; the unlock inside it
// does not discharge the spawner's obligation, and conversely the body's
// bare Unlock (paired with the spawner's Lock) is not a double unlock
// because the literal never locks.
func (s *S) litSeparate(done chan struct{}) {
	s.mu.Lock() // want `Lock of "s\.mu" is not released on every path`
	go func() {
		s.n++
		s.mu.Unlock()
		close(done)
	}()
}
