package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockdiscipline.Analyzer, "a")
}
