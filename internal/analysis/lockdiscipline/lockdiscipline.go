// Package lockdiscipline enforces the mutex conventions the concurrent
// planes (the goroutine engines, the TCP data planes, the job server)
// depend on. The paper's asynchronous model tolerates unbounded delays
// but not torn critical sections: a lock held on one return path and
// released on another serializes nothing and deadlocks the next acquirer.
// The race detector only catches the schedules CI happens to run; this
// analyzer proves the discipline on every path of the control-flow graph.
//
// Four rules, all intraprocedural over internal/analysis/cfg graphs:
//
//   - a sync.Mutex/sync.RWMutex locked in a function must be unlocked on
//     every path to every return (a deferred unlock discharges all paths
//     after the defer executes);
//   - an Unlock with no matching Lock on ANY path to it (double unlock,
//     or unlock of a mutex this function never locked while also locking
//     it elsewhere) is reported;
//   - deferring a mutex Lock/Unlock inside a loop is reported: defers run
//     at function exit, not iteration exit, so the lock pyramids;
//   - copying a value whose type contains a sync.Mutex/RWMutex (by plain
//     assignment from an existing value, by-value parameter, or range
//     copy) is reported — a copied mutex guards nothing.
//
// A deliberate handoff (locking here, unlocking in a callee or another
// goroutine) takes an "//repro:lock-ok <reason>" suppression on the Lock
// line.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockdiscipline rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "mutexes must be released on every CFG path, never double-unlocked, never deferred in loops, never copied",
	Run:  run,
}

// lockOp is one Lock/Unlock-family call resolved against a trackable
// mutex expression.
type lockOp struct {
	key    string // normalized receiver expression, e.g. "s.mu"
	read   bool   // RLock/RUnlock (reader side of an RWMutex)
	unlock bool
	pos    token.Pos
}

// heldFact is the dataflow fact "key is locked, acquired at pos".
type heldFact struct {
	key  string
	read bool
	pos  token.Pos
}

// deferFact is the dataflow fact "an unlock of key is deferred".
type deferFact struct {
	key  string
	read bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		suppressed := analysis.SuppressedLines(pass.Fset, file, "lock-ok")
		checkCopies(pass, file, suppressed)
		for _, fn := range cfg.Functions([]*ast.File{file}) {
			checkFunc(pass, fn, suppressed)
		}
	}
	return nil, nil
}

// checkFunc runs the path-sensitive rules over one function body.
func checkFunc(pass *analysis.Pass, fn cfg.Function, suppressed map[int]bool) {
	// Fast pre-scan: skip the CFG entirely for lock-free functions, and
	// remember which keys this function ever locks (the double-unlock
	// rule only fires for those — a dedicated unlock helper is legal).
	// The same walk finds defers of lock operations inside loops, a
	// purely syntactic property.
	locksKey := map[string]bool{}
	anyOp := false
	var loopDepth int
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, analyzed separately
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), scan)
			loopDepth--
			return false
		case *ast.DeferStmt:
			if loopDepth > 0 {
				for _, op := range deferredOps(pass, n) {
					if !analysis.Suppressed(pass.Fset, n.Pos(), suppressed) {
						pass.Reportf(n.Pos(), "defer of %q %s inside a loop runs at function exit, not iteration exit",
							op.key, opName(op))
					}
				}
			}
		}
		if op, ok := asLockOp(pass, n); ok {
			anyOp = true
			if !op.unlock {
				locksKey[lockKeyID(op)] = true
			}
		}
		return true
	}
	ast.Inspect(fn.Body, scan)
	if !anyOp {
		return
	}

	g := cfg.New(fn.Body)

	transfer := func(b *cfg.Block, in cfg.FactSet) cfg.FactSet {
		for _, n := range b.Nodes {
			applyNode(pass, n, in, nil)
		}
		return in
	}
	in := cfg.Forward(g, cfg.Union, cfg.NewFacts(), transfer)

	// Final reporting pass: replay each reachable block with its entry
	// facts, reporting at unlock sites and at returns.
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] || analysis.Suppressed(pass.Fset, pos, suppressed) {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, b := range g.Blocks {
		facts, ok := in[b]
		if !ok {
			continue // unreachable
		}
		facts = facts.Clone()
		for _, n := range b.Nodes {
			applyNode(pass, n, facts, func(kind string, op lockOp, held heldFact) {
				switch kind {
				case "double-unlock":
					if locksKey[lockKeyID(op)] {
						report(op.pos, "%s of %q: no path to this statement holds the lock (double unlock?)",
							unlockName(op.read), op.key)
					}
				case "leak":
					report(held.pos, "%s of %q is not released on every path out of %s (missing %s or defer on some branch)",
						lockName(held.read), held.key, fn.Name(), unlockName(held.read))
				}
			})
		}
		// A block that ends the function normally (edges to Exit without
		// a return node) is covered because ReturnStmt nodes live in
		// blocks and the fall-off-the-end case is handled below.
		for _, s := range b.Succs {
			if s == g.Exit && !endsWithReturn(b) {
				reportLeaks(facts, fn, report)
			}
		}
	}
}

// applyNode is the single transfer function: it mutates facts in place
// and, when sink is non-nil, emits findings. Keeping one implementation
// for the fixpoint and the reporting pass guarantees they agree.
func applyNode(pass *analysis.Pass, n ast.Node, facts cfg.FactSet, sink func(kind string, op lockOp, held heldFact)) {
	cfg.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// A deferred unlock discharges the obligation on every path
			// past this point; a deferred closure is scanned for the
			// unlocks it performs.
			for _, op := range deferredOps(pass, m) {
				if op.unlock {
					facts[deferFact{key: op.key, read: op.read}] = true
				}
			}
			return false // don't re-walk the call as a plain lock op
		case *ast.CallExpr:
			op, ok := asLockOp(pass, m)
			if !ok {
				return true
			}
			if op.unlock {
				released := false
				for f := range facts {
					if h, ok := f.(heldFact); ok && h.key == op.key && h.read == op.read {
						delete(facts, f)
						released = true
					}
				}
				if !released && sink != nil {
					sink("double-unlock", op, heldFact{})
				}
			} else {
				facts[heldFact{key: op.key, read: op.read, pos: op.pos}] = true
			}
		case *ast.ReturnStmt:
			if sink != nil {
				for f := range facts {
					if h, ok := f.(heldFact); ok && !facts[deferFact{key: h.key, read: h.read}] {
						sink("leak", lockOp{}, h)
					}
				}
			}
		}
		return true
	})
}

// reportLeaks flags held locks at a fall-off-the-end function exit.
func reportLeaks(facts cfg.FactSet, fn cfg.Function, report func(token.Pos, string, ...interface{})) {
	for f := range facts {
		if h, ok := f.(heldFact); ok && !facts[deferFact{key: h.key, read: h.read}] {
			report(h.pos, "%s of %q is not released on every path out of %s (missing %s or defer on some branch)",
				lockName(h.read), h.key, fn.Name(), unlockName(h.read))
		}
	}
}

func endsWithReturn(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

// deferredOps extracts the lock operations a defer performs: a direct
// `defer mu.Unlock()` or any unlocks inside a deferred closure body.
func deferredOps(pass *analysis.Pass, d *ast.DeferStmt) []lockOp {
	var ops []lockOp
	if op, ok := asLockOp(pass, d.Call); ok {
		return []lockOp{op}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if op, ok := asLockOp(pass, n); ok {
				ops = append(ops, op)
			}
			return true
		})
	}
	return ops
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// lockKeyID distinguishes the reader and writer sides of one mutex.
func lockKeyID(op lockOp) string {
	if op.read {
		return "r:" + op.key
	}
	return "w:" + op.key
}

// asLockOp recognizes a call as Lock/Unlock/RLock/RUnlock on a trackable
// sync.Mutex/sync.RWMutex expression.
func asLockOp(pass *analysis.Pass, n ast.Node) (lockOp, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var read, unlock bool
	switch sel.Sel.Name {
	case "Lock":
	case "Unlock":
		unlock = true
	case "RLock":
		read = true
	case "RUnlock":
		read, unlock = true, true
	default:
		return lockOp{}, false
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil || !isSyncMutex(derefMutex(recv)) {
		return lockOp{}, false
	}
	key, ok := exprKey(sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, read: read, unlock: unlock, pos: call.Pos()}, true
}

// isSyncMutex reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// derefMutex unwraps one pointer level: lock calls go through &mu or a
// *Mutex field equally.
func derefMutex(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// exprKey renders a stable identity for the mutex expression; locks on
// unkeyable expressions (function results, index by variable) are not
// tracked rather than mis-tracked.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	case *ast.IndexExpr:
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			base, okb := exprKey(e.X)
			if okb {
				return base + "[" + lit.Value + "]", true
			}
		}
	}
	return "", false
}

// checkCopies flags by-value copies of mutex-bearing types.
func checkCopies(pass *analysis.Pass, file *ast.File, suppressed map[int]bool) {
	report := func(pos token.Pos, what string, t types.Type) {
		if analysis.Suppressed(pass.Fset, pos, suppressed) {
			return
		}
		pass.Reportf(pos, "%s copies %s, which contains a mutex; a copied mutex guards nothing (use a pointer)", what, t)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Type.Params == nil {
				return true
			}
			for _, field := range n.Type.Params.List {
				t := pass.TypesInfo.Types[field.Type].Type
				if t != nil && typeHasMutex(t, nil) {
					report(field.Pos(), "by-value parameter", t)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for _, rhs := range n.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				t := pass.TypesInfo.Types[rhs].Type
				if t != nil && typeHasMutex(t, nil) {
					report(rhs.Pos(), "assignment", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := pass.TypesInfo.Types[n.Value].Type
			if t == nil {
				// A := range defines the value ident: its type lives in
				// Defs, not Types.
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && typeHasMutex(t, nil) {
				report(n.Value.Pos(), "range value", t)
			}
		}
		return true
	})
}

// copiesValue reports whether evaluating e copies an existing value (as
// opposed to constructing a fresh one or taking a reference).
func copiesValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return false // &x takes a reference
	default:
		return false // composite literals, calls: fresh values
	}
}

// typeHasMutex reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value.
func typeHasMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isSyncMutex(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasMutex(u.Elem(), seen)
	}
	return false
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}

func opName(op lockOp) string {
	if op.unlock {
		return unlockName(op.read)
	}
	return lockName(op.read)
}
