// Package slotbudget enforces the scratch-slot contract documented on
// operators.Scratch and BlockScratchOperator. Scratch slots are a manually
// partitioned space: Vec slots belong to the operator being evaluated
// (ProxGradBF 1, InnerIterated 2, ...), Aux slot 0 is reserved for
// ResidualWith's full-application buffer, and RangeGradSmooth
// implementations use Aux slots >= 1. Nothing at runtime checks the
// partition — two views of the same slot silently alias one buffer, and
// the corruption shows up as a wrong trajectory, not a crash.
//
// Three rules:
//
//   - reservation: scr.Aux(0, ...) may only appear inside ResidualWith;
//   - stale views: binding a slot (v := scr.Vec(0, n)) and re-acquiring
//     the same slot into another name makes the first view an alias of
//     the second; a later read of the first is reported. The check runs
//     on the control-flow graph as a may-analysis, so a re-acquisition on
//     only one branch still taints the join;
//   - dispatch clobbers: a method call through an interface that receives
//     the *Scratch (EvalBlockScratch, GradRange, ApplyScratch) may
//     consume any Vec slot and any Aux slot >= 1 per the budget, so live
//     views of those slots are stale after the call. Aux slot 0 is
//     protected by the reservation rule and survives.
//
// Slot indices that are not integer constants are not tracked. A
// deliberate aliasing (a view handed off before re-acquisition, say) may
// carry "//repro:slot-ok <reason>" on the offending line or the line
// above.
package slotbudget

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the scratch-slot rule.
var Analyzer = &analysis.Analyzer{
	Name: "slotbudget",
	Doc:  "scratch Vec/Aux slot usage must respect the documented budget: Aux 0 reserved for ResidualWith, no stale views of re-acquired or dispatched slots",
	Run:  run,
}

// holdsFact: obj is the current view of (kind, slot).
type holdsFact struct {
	kind string // "Vec" or "Aux"
	slot int64
	obj  types.Object
}

// staleFact: obj's view of (kind, slot) no longer owns the buffer.
type staleFact struct {
	kind    string
	slot    int64
	obj     types.Object
	clobber bool // true: interface dispatch; false: re-acquisition
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		suppressed := analysis.SuppressedLines(pass.Fset, f, "slot-ok")
		report := func(pos token.Pos, format string, args ...interface{}) {
			if !analysis.Suppressed(pass.Fset, pos, suppressed) {
				pass.Reportf(pos, format, args...)
			}
		}
		for _, fn := range cfg.Functions([]*ast.File{f}) {
			checkFunc(pass, fn, report)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn cfg.Function, report func(token.Pos, string, ...interface{})) {
	// Cheap pre-scan: most functions never touch a Scratch.
	touches := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := scratchCall(pass, call); ok {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	inResidualWith := fn.Decl != nil && fn.Decl.Name.Name == "ResidualWith"

	g := cfg.New(fn.Body)
	transfer := func(b *cfg.Block, in cfg.FactSet) cfg.FactSet {
		for _, n := range b.Nodes {
			applyNode(pass, n, in, inResidualWith, nil)
		}
		return in
	}
	entry := cfg.Forward(g, cfg.Union, cfg.NewFacts(), transfer)

	for _, b := range g.Blocks {
		in, ok := entry[b]
		if !ok {
			continue
		}
		facts := in.Clone()
		for _, n := range b.Nodes {
			applyNode(pass, n, facts, inResidualWith, report)
		}
	}
}

// applyNode is the transfer function for one block node; with report
// non-nil it also emits findings (reservation breaches at acquisition
// sites, stale reads at identifier uses).
func applyNode(pass *analysis.Pass, n ast.Node, facts cfg.FactSet, inResidualWith bool, report func(token.Pos, string, ...interface{})) {
	// LHS identifiers of assignments processed below: their use position
	// is a (re)binding, not a read of the old view.
	rebound := make(map[*ast.Ident]bool)
	// Acquisition calls consumed by an assignment: skip in the generic
	// CallExpr pass so they do not stale their own fresh binding.
	bound := make(map[*ast.CallExpr]bool)

	cfg.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				rebound[id] = true
				obj := defOrUse(pass, id)
				if obj == nil {
					continue
				}
				// Any rebinding retires the old facts about this name.
				dropFactsFor(facts, obj)
				if i >= len(m.Rhs) {
					continue
				}
				call, ok := ast.Unparen(m.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind, slot, ok := scratchCall(pass, call)
				if !ok {
					continue
				}
				bound[call] = true
				staleOthers(facts, kind, slot, obj)
				if id.Name != "_" {
					facts[holdsFact{kind, slot, obj}] = true
				}
			}
			// Blank assignment of an acquisition (`_ = scr.Vec(0, n)`)
			// still re-acquires the slot.
			for i, lhs := range m.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && i < len(m.Rhs) {
					if call, ok := ast.Unparen(m.Rhs[i]).(*ast.CallExpr); ok {
						if kind, slot, ok := scratchCall(pass, call); ok {
							bound[call] = true
							staleOthers(facts, kind, slot, nil)
						}
					}
				}
			}

		case *ast.CallExpr:
			if kind, slot, ok := scratchCall(pass, m); ok {
				if report != nil && kind == "Aux" && slot == 0 && !inResidualWith {
					report(m.Pos(),
						"scratch Aux slot 0 is reserved for ResidualWith's residual buffer; operator implementations use Aux slots >= 1")
				}
				if !bound[m] {
					// Inline acquisition (passed straight to a callee):
					// no new view to track, but same-slot views go stale.
					staleOthers(facts, kind, slot, nil)
				}
				return true
			}
			if dispatchWithScratch(pass, m) {
				clobberLive(facts)
			}

		case *ast.Ident:
			if report == nil || rebound[m] {
				return true
			}
			obj := pass.TypesInfo.Uses[m]
			if obj == nil {
				return true
			}
			for f := range facts {
				sf, ok := f.(staleFact)
				if !ok || sf.obj != obj {
					continue
				}
				if sf.clobber {
					report(m.Pos(),
						"%q is a stale view of scratch %s slot %d: an interface dispatch received the Scratch and may have consumed the slot; re-acquire after the call or copy out first", m.Name, sf.kind, sf.slot)
				} else {
					report(m.Pos(),
						"%q is a stale view of scratch %s slot %d: the slot was re-acquired after this binding, so both names alias one buffer", m.Name, sf.kind, sf.slot)
				}
				break
			}
		}
		return true
	})
}

// staleOthers retires every view of (kind, slot) other than keep.
func staleOthers(facts cfg.FactSet, kind string, slot int64, keep types.Object) {
	for f := range facts {
		hf, ok := f.(holdsFact)
		if !ok || hf.kind != kind || hf.slot != slot || hf.obj == keep {
			continue
		}
		delete(facts, f)
		facts[staleFact{hf.kind, hf.slot, hf.obj, false}] = true
	}
}

// clobberLive retires every live view a dispatched operator may write:
// all Vec slots, Aux slots >= 1. Aux 0 is protected by the reservation.
func clobberLive(facts cfg.FactSet) {
	for f := range facts {
		hf, ok := f.(holdsFact)
		if !ok || (hf.kind == "Aux" && hf.slot == 0) {
			continue
		}
		delete(facts, f)
		facts[staleFact{hf.kind, hf.slot, hf.obj, true}] = true
	}
}

// dropFactsFor removes every fact about obj (a rebinding of the name).
func dropFactsFor(facts cfg.FactSet, obj types.Object) {
	for f := range facts {
		switch f := f.(type) {
		case holdsFact:
			if f.obj == obj {
				delete(facts, f)
			}
		case staleFact:
			if f.obj == obj {
				delete(facts, f)
			}
		}
	}
}

// scratchCall recognizes operators.Scratch.Vec/Aux calls with a constant
// slot index.
func scratchCall(pass *analysis.Pass, call *ast.CallExpr) (string, int64, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Vec" && fn.Name() != "Aux") {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isScratchType(sig.Recv().Type()) {
		return "", 0, false
	}
	if len(call.Args) < 1 {
		return "", 0, false
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return "", 0, false // dynamic slot: untracked
	}
	slot, ok := constant.Int64Val(tv.Value)
	if !ok {
		return "", 0, false
	}
	return fn.Name(), slot, true
}

// dispatchWithScratch reports whether call is a method call through an
// interface that receives a *Scratch argument.
func dispatchWithScratch(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
		return false
	}
	for _, arg := range call.Args {
		if t := pass.TypesInfo.Types[arg].Type; t != nil && isScratchType(t) {
			return true
		}
	}
	return false
}

// isScratchType reports whether t is (a pointer to) operators.Scratch.
func isScratchType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scratch" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/operators")
}

func defOrUse(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
