package slotbudget_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/slotbudget"
)

func TestSlotBudget(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), slotbudget.Analyzer,
		"repro/internal/operators")
}
