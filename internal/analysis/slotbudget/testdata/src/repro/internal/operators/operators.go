// Fixture for the slotbudget analyzer: a miniature of the real
// operators.Scratch contract (same package path suffix, so the receiver
// matching engages).
package operators

type Scratch struct {
	bufs [][]float64
	aux  [][]float64
}

func (s *Scratch) Vec(slot, n int) []float64 {
	for len(s.bufs) <= slot {
		s.bufs = append(s.bufs, nil)
	}
	if cap(s.bufs[slot]) < n {
		s.bufs[slot] = make([]float64, n)
	}
	return s.bufs[slot][:n]
}

func (s *Scratch) Aux(slot, n int) []float64 {
	for len(s.aux) <= slot {
		s.aux = append(s.aux, nil)
	}
	if cap(s.aux[slot]) < n {
		s.aux[slot] = make([]float64, n)
	}
	return s.aux[slot][:n]
}

type BlockOp interface {
	EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64)
}

func sink(v []float64) {}

// ResidualWith is the one function allowed to take Aux slot 0.
func ResidualWith(s *Scratch, x []float64) float64 {
	fx := s.Aux(0, len(x))
	sink(fx)
	return fx[0]
}

// auxZero breaches the reservation.
func auxZero(s *Scratch, n int) {
	sink(s.Aux(0, n)) // want `Aux slot 0 is reserved for ResidualWith`
}

// auxOneOK is the RangeGradSmooth budget.
func auxOneOK(s *Scratch, n int) {
	sink(s.Aux(1, n))
}

// straightReacquire binds Vec 0 twice: the first view aliases the second.
func straightReacquire(s *Scratch, n int) float64 {
	p := s.Vec(0, n)
	q := s.Vec(0, n)
	sink(q)
	return p[0] // want `"p" is a stale view of scratch Vec slot 0: the slot was re-acquired`
}

// branchReacquire is the CFG-sensitive positive: the re-acquisition
// happens on one branch only, and the read after the join must still be
// reported (stale on SOME path).
func branchReacquire(s *Scratch, n int, flip bool) float64 {
	p := s.Vec(0, n)
	if flip {
		sink(s.Vec(0, n))
	}
	return p[0] // want `"p" is a stale view of scratch Vec slot 0: the slot was re-acquired`
}

// branchOtherSlotOK: distinct slots are distinct buffers.
func branchOtherSlotOK(s *Scratch, n int, flip bool) float64 {
	p := s.Vec(0, n)
	if flip {
		sink(s.Vec(1, n))
	}
	return p[0]
}

// rebindOK re-acquires into the SAME name: one view, never stale.
func rebindOK(s *Scratch, n int) float64 {
	p := s.Vec(0, n)
	sink(p)
	p = s.Vec(0, n)
	return p[0]
}

// dispatchClobber holds a Vec view across an interface dispatch that
// receives the scratch: the operator may have consumed the slot.
func dispatchClobber(op BlockOp, s *Scratch, x, out []float64) float64 {
	p := s.Vec(0, len(x))
	op.EvalBlockScratch(s, 0, len(out), x, out)
	return p[0] // want `"p" is a stale view of scratch Vec slot 0: an interface dispatch received the Scratch`
}

type R struct{}

// ResidualWith (method form): Aux slot 0 survives a dispatch, because the
// reservation bars every implementation from touching it.
func (R) ResidualWith(op BlockOp, s *Scratch, x, out []float64) float64 {
	fx := s.Aux(0, len(x))
	op.EvalBlockScratch(s, 0, len(out), x, out)
	return fx[0]
}

func helper(s *Scratch, v []float64) {}

// concreteOK: a concrete call receiving the scratch is governed by the
// documented budget, not treated as a clobber.
func concreteOK(s *Scratch, n int) float64 {
	p := s.Vec(0, n)
	helper(s, p)
	return p[0]
}

// dynamicOK: non-constant slots are untracked.
func dynamicOK(s *Scratch, i, n int) float64 {
	p := s.Vec(i, n)
	sink(s.Vec(0, n))
	return p[0]
}

// handoff documents a deliberate alias.
func handoff(s *Scratch, n int) float64 {
	p := s.Vec(0, n)
	q := s.Vec(0, n)
	sink(q)
	//repro:slot-ok deliberate alias: the test compares both views
	return p[0]
}
