package cfg

import "go/ast"

// A Function is one analyzable function body: a declared function or
// method (Decl set) or a function literal (Lit set). CFG-backed analyzers
// analyze every Function independently — a literal's body never executes
// where it is written, so it must not leak statements into the enclosing
// function's graph.
type Function struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name returns the declared name, or "func literal".
func (f Function) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	return "func literal"
}

// Functions returns every function body in the files, declarations and
// (arbitrarily nested) literals alike, in source order.
func Functions(files []*ast.File) []Function {
	var out []Function
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, Function{Decl: n, Body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, Function{Lit: n, Body: n.Body})
			}
			return true
		})
	}
	return out
}

// Inspect walks the parts of a block node (see Parts) in ast.Inspect
// order, but does not descend into function literals: their bodies belong
// to a different Function's graph.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	for _, part := range Parts(n) {
		ast.Inspect(part, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				f(n) // visible as a value, opaque inside
				return false
			}
			return f(n)
		})
	}
}
