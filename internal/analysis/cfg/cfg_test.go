package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns its graph.
func parseBody(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body), fset
}

// reachable returns the blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// describe renders a block as "nodes -> succ indices" for failure output.
func describe(g *Graph, fset *token.FileSet) string {
	out := ""
	for _, b := range g.Blocks {
		out += fmt.Sprintf("b%d:", b.Index)
		for _, n := range b.Nodes {
			out += fmt.Sprintf(" %T@%d", n, fset.Position(n.Pos()).Line)
		}
		out += " ->"
		for _, s := range b.Succs {
			out += fmt.Sprintf(" b%d", s.Index)
		}
		out += "\n"
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g, _ := parseBody(t, "x := 1\n_ = x\nreturn")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry should hold all three statements, got %d", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must edge straight to exit")
	}
}

func TestIfElseDiamond(t *testing.T) {
	g, fset := parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x
return`)
	// entry(cond) -> then, else; both -> join -> exit.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond block should have 2 successors, got %d\n%s", n, describe(g, fset))
	}
	a, b := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("branches must rejoin at one block\n%s", describe(g, fset))
	}
	join := a.Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Fatalf("join must flow to exit\n%s", describe(g, fset))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g, fset := parseBody(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x`)
	// Cond block edges to both the then-block and the join.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond block should have 2 successors (then, join), got %d\n%s", n, describe(g, fset))
	}
}

func TestForLoopEdges(t *testing.T) {
	g, fset := parseBody(t, `
for i := 0; i < 3; i++ {
	_ = i
}
return`)
	// Find the header (the block holding the condition, with 2 succs:
	// body and after) and verify the back edge body -> post -> header.
	var header *Block
	for b := range reachable(g) {
		if len(b.Succs) == 2 && b != g.Entry {
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no loop header found\n%s", describe(g, fset))
	}
	// One successor chain must lead back to the header (the back edge).
	back := false
	for _, s := range header.Succs {
		cur := s
		for range 4 {
			if cur == header {
				back = true
				break
			}
			if len(cur.Succs) != 1 {
				break
			}
			cur = cur.Succs[0]
		}
	}
	if !back {
		t.Fatalf("no back edge to loop header\n%s", describe(g, fset))
	}
}

func TestInfiniteForHasNoExitEdge(t *testing.T) {
	g, fset := parseBody(t, `
for {
	_ = 1
}`)
	// for{} without break: the function exit must be unreachable.
	if reachable(g)[g.Exit] {
		t.Fatalf("exit reachable through an unbreakable for{}\n%s", describe(g, fset))
	}
}

func TestBreakReachesAfter(t *testing.T) {
	g, fset := parseBody(t, `
for {
	break
}
return`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("break must make the return reachable\n%s", describe(g, fset))
	}
}

func TestSelectFansOut(t *testing.T) {
	g, fset := parseBody(t, `
var a, b chan int
select {
case <-a:
	_ = 1
case <-b:
	_ = 2
}
return`)
	// The select block fans out to exactly the two comm clauses (no
	// default: no direct edge to after).
	var sel *Block
	for b := range reachable(g) {
		if len(b.Succs) == 2 {
			sel = b
		}
	}
	if sel == nil {
		t.Fatalf("no 2-way select fan-out found\n%s", describe(g, fset))
	}
	if a, b := sel.Succs[0], sel.Succs[1]; len(a.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("select cases must rejoin\n%s", describe(g, fset))
	}
}

func TestSwitchNoDefaultEdgesToAfter(t *testing.T) {
	g, fset := parseBody(t, `
x := 1
switch x {
case 1:
	return
case 2:
	return
}
_ = x`)
	// Without a default, the tag block must edge to the after block, so
	// `_ = x` stays reachable even though every case returns.
	found := false
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("statement after switch must stay reachable\n%s", describe(g, fset))
	}
}

func TestReturnTerminatesBlock(t *testing.T) {
	g, _ := parseBody(t, `
return
panic("dead")`)
	// The panic is dead code: present in the graph, unreachable from entry.
	dead := 0
	live := reachable(g)
	for _, b := range g.Blocks {
		if !live[b] && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("dead code after return should live in an unreachable block")
	}
}

func TestPanicDoesNotReachExit(t *testing.T) {
	g, fset := parseBody(t, `
x := 0
if x > 0 {
	panic("boom")
}
return`)
	// The panic path must not edge to Exit: only the normal path does.
	for _, p := range g.Exit.Preds {
		for _, n := range p.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanic(es.X) {
				t.Fatalf("panic block must not be an exit predecessor\n%s", describe(g, fset))
			}
		}
	}
}

func TestDeferIsANode(t *testing.T) {
	g, _ := parseBody(t, `
defer println("x")
return`)
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("defer statement must appear as a block node")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, fset := parseBody(t, `
i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	goto done
done:
	return`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("forward goto must reach the labeled return\n%s", describe(g, fset))
	}
	// Backward goto: the labeled block must have >= 2 preds (fallthrough
	// from entry + the goto).
	var labeled *Block
	for b := range reachable(g) {
		if len(b.Preds) >= 2 {
			labeled = b
		}
	}
	if labeled == nil {
		t.Fatalf("backward goto should give the label block two predecessors\n%s", describe(g, fset))
	}
}

func TestRangeHeaderUsesParts(t *testing.T) {
	g, _ := parseBody(t, `
m := map[int]float64{}
for k, v := range m {
	_, _ = k, v
}
return`)
	var rng *ast.RangeStmt
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.RangeStmt); ok {
				rng = r
			}
		}
	}
	if rng == nil {
		t.Fatal("range statement must appear in its header block")
	}
	parts := Parts(rng)
	if len(parts) != 3 {
		t.Fatalf("Parts(range) = %d parts, want X, Key, Value", len(parts))
	}
	for _, p := range parts {
		if _, ok := p.(*ast.BlockStmt); ok {
			t.Fatal("Parts must not expose the range body")
		}
	}
}

// TestForwardConvergence runs a reaching-facts pass over a loop: a fact
// generated inside the loop body must converge into the header's entry
// set (union meet) without oscillation.
func TestForwardConvergence(t *testing.T) {
	g, fset := parseBody(t, `
x := 0
for x < 10 {
	x = x + 1
}
return`)
	const fact = "loop-body-executed"
	in := Forward(g, Union, NewFacts(), func(b *Block, in FactSet) FactSet {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				in[fact] = true
			}
		}
		return in
	})
	// The header (condition block) must eventually see the fact via the
	// back edge.
	var header *Block
	for b := range in {
		if len(b.Succs) == 2 {
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no loop header\n%s", describe(g, fset))
	}
	if !in[header][fact] {
		t.Fatalf("fact did not propagate around the back edge; header in-set: %v", in[header])
	}
	// And the exit must see it too.
	if !in[g.Exit][fact] {
		t.Fatal("fact did not reach exit")
	}
}

// TestForwardMustAnalysis checks the intersection meet: a fact generated
// on only one branch of a diamond must NOT survive the join, while a fact
// generated on both must.
func TestForwardMustAnalysis(t *testing.T) {
	g, fset := parseBody(t, `
x := 0
if x > 0 {
	x = 1
	x = 10
} else {
	x = 2
}
_ = x
return`)
	// Facts: "one" gen'd only where x = 10 appears (then branch);
	// "both" gen'd at every plain assignment (both branches).
	in := Forward(g, Intersect, NewFacts(), func(b *Block, in FactSet) FactSet {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				continue
			}
			in["both"] = true
			if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "10" {
				in["one"] = true
			}
		}
		return in
	})
	exitIn := in[g.Exit]
	if exitIn == nil {
		t.Fatalf("exit unreachable\n%s", describe(g, fset))
	}
	if exitIn["one"] {
		t.Fatal("must-analysis kept a fact from only one branch")
	}
	if !exitIn["both"] {
		t.Fatal("must-analysis dropped a fact present on both branches")
	}
}
