// Package cfg builds intraprocedural control-flow graphs over Go function
// bodies and runs forward dataflow analyses over them. It is the shared
// engine behind the CFG-backed reprolint analyzers (lockdiscipline,
// determinism, goroutinelife, slotbudget): the PR 8 analyzers were purely
// syntactic, which is enough for "this construct may not appear" rules but
// not for path properties — "Unlock reaches every exit", "this WaitGroup
// Add reaches the go statement on all paths", "this tainted value flows
// into a float sink". Those need basic blocks and a fixpoint.
//
// The graph is deliberately small: basic blocks of ast.Node slices joined
// by unlabeled edges, one synthetic Exit block, panics terminating their
// block without reaching Exit. Compound statements never appear in a block
// themselves — only their control parts do (an if condition as an
// ast.Expr, a range header as the *ast.RangeStmt whose Body must NOT be
// re-inspected; see Parts). Function literals are opaque: a statement
// containing one appears as a single node and the literal's body is a
// separate function for a separate graph.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is a maximal straight-line sequence of nodes. Nodes holds
// statements and control expressions in execution order; Succs the
// possible control transfers out.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body. Entry is
// Blocks[0]; Exit is the single synthetic exit block (every return and
// every normal fall-off-the-end edges to it). Blocks unreachable from
// Entry (dead code after return, say) are kept in Blocks but carry no
// Preds path from Entry, so dataflow never visits them.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*labelInfo{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if li := b.labels[pg.label]; li != nil && li.block != nil {
			b.edge(pg.from, li.block)
		}
	}
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// Parts returns the sub-expressions of a block node that a transfer
// function should inspect. For most nodes that is the node itself; for an
// *ast.RangeStmt (which appears in its loop-header block) it is the range
// operand and the iteration variables — never the loop body, which lives
// in successor blocks.
func Parts(n ast.Node) []ast.Node {
	if r, ok := n.(*ast.RangeStmt); ok {
		var out []ast.Node
		if r.X != nil {
			out = append(out, r.X)
		}
		if r.Key != nil {
			out = append(out, r.Key)
		}
		if r.Value != nil {
			out = append(out, r.Value)
		}
		return out
	}
	return []ast.Node{n}
}

type labelInfo struct {
	block *Block // the block the label marks (goto target)
}

type pendingGoto struct {
	from  *Block
	label string
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label        string
	breakTarget  *Block
	contTarget   *Block // nil for switch/select
	fallthroughT *Block // next case block, switch only
}

type builder struct {
	g      *Graph
	cur    *Block // nil while statically unreachable
	scopes []scope
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel is set between a LabeledStmt and its underlying
	// loop/switch so the construct registers labeled break/continue.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// node appends n to the current block, starting a fresh (unreachable)
// block when control cannot reach here — dead nodes still exist in the
// graph so analyzers can choose to look at them.
func (b *builder) node(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) push(s scope) { b.scopes = append(b.scopes, s) }
func (b *builder) pop()         { b.scopes = b.scopes[:len(b.scopes)-1] }
func (b *builder) findBreak(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if label == "" || s.label == label {
			return s.breakTarget
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if s.contTarget == nil {
			continue // switch/select: continue belongs to an outer loop
		}
		if label == "" || s.label == label {
			return s.contTarget
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label marks a join point: a fresh block gotos can target.
		lb := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.labels[s.Label.Name] = &labelInfo{block: lb}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.node(s.Init)
		}
		b.node(s.Cond)
		condBlk := b.cur
		thenB := b.newBlock()
		b.edge(condBlk, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(condBlk, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		} else {
			elseEnd = condBlk
		}
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil
			return
		}
		after := b.newBlock()
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if elseEnd != nil {
			b.edge(elseEnd, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.node(s.Init)
		}
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = header
		if s.Cond != nil {
			b.node(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(header, after)
		}
		var post *Block
		contTarget := header
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, header)
			contTarget = post
		}
		body := b.newBlock()
		b.edge(header, body)
		b.push(scope{label: label, breakTarget: after, contTarget: contTarget})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, contTarget)
		}
		b.pop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		header.Nodes = append(header.Nodes, s) // the range check; see Parts
		after := b.newBlock()
		b.edge(header, after)
		body := b.newBlock()
		b.edge(header, body)
		b.push(scope{label: label, breakTarget: after, contTarget: header})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.pop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.node(s.Init)
		}
		if s.Tag != nil {
			b.node(s.Tag)
		}
		b.caseClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.node(s.Init)
		}
		b.node(s.Assign)
		b.caseClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		selBlk := b.cur
		if selBlk == nil {
			selBlk = b.newBlock()
			b.cur = selBlk
		}
		if len(s.Body.List) == 0 {
			// select {} blocks forever: no successors.
			b.cur = nil
			return
		}
		after := b.newBlock()
		b.push(scope{label: label, breakTarget: after})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			caseB := b.newBlock()
			b.edge(selBlk, caseB)
			b.cur = caseB
			if cc.Comm != nil {
				b.node(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.pop()
		b.cur = after

	case *ast.BranchStmt:
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := b.findBreak(label); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := b.findContinue(label); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			for i := len(b.scopes) - 1; i >= 0; i-- {
				if b.scopes[i].fallthroughT != nil {
					b.edge(b.cur, b.scopes[i].fallthroughT)
					break
				}
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.node(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.node(s)
		if isPanic(s.X) {
			// A panic terminates the path without reaching the normal
			// Exit: missing-unlock style analyses must not count it as a
			// return.
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, defer, go: one node.
		b.node(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the tag block
// fans out to every case (and to after when there is no default), case
// bodies join at after, fallthrough edges to the next case body.
func (b *builder) caseClauses(label string, clauses []ast.Stmt) {
	tagBlk := b.cur
	if tagBlk == nil {
		tagBlk = b.newBlock()
		b.cur = tagBlk
	}
	after := b.newBlock()

	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(tagBlk, caseBlocks[i])
		if clause.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(tagBlk, after)
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		var ft *Block
		if i+1 < len(clauses) {
			ft = caseBlocks[i+1]
		}
		b.push(scope{label: label, breakTarget: after, fallthroughT: ft})
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		b.pop()
	}
	b.cur = after
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
