package cfg

// Forward dataflow over a Graph: a small reaching-facts engine. A fact is
// any comparable value an analyzer invents ("mutex s.mu held since pos P",
// "variable obj tainted by time.Now", "wg.Add executed"). The engine
// iterates a transfer function over the blocks reachable from Entry until
// the per-block entry sets stop changing, meeting predecessor exit sets by
// union (may-analysis: "on SOME path") or intersection (must-analysis:
// "on ALL paths").
//
// Transfer functions must be monotone — they may add and remove facts, but
// what they do must depend only on the incoming set — and the fact space
// must be finite for the fixpoint to exist. Both hold naturally for the
// gen/kill style analyses the lint suite runs.

// A FactSet is a set of comparable dataflow facts.
type FactSet map[any]bool

// NewFacts returns a set holding the given facts.
func NewFacts(facts ...any) FactSet {
	s := make(FactSet, len(facts))
	for _, f := range facts {
		s[f] = true
	}
	return s
}

// Clone returns an independent copy of s.
func (s FactSet) Clone() FactSet {
	out := make(FactSet, len(s))
	for f := range s {
		out[f] = true
	}
	return out
}

// Equal reports whether s and t hold exactly the same facts.
func (s FactSet) Equal(t FactSet) bool {
	if len(s) != len(t) {
		return false
	}
	for f := range s {
		if !t[f] {
			return false
		}
	}
	return true
}

func (s FactSet) union(t FactSet) FactSet {
	out := s.Clone()
	for f := range t {
		out[f] = true
	}
	return out
}

func (s FactSet) intersect(t FactSet) FactSet {
	out := make(FactSet)
	for f := range s {
		if t[f] {
			out[f] = true
		}
	}
	return out
}

// Meet selects how predecessor facts combine at a join point.
type Meet int

const (
	// Union keeps a fact that holds on at least one incoming path
	// (may-analysis: "a lock may be held here").
	Union Meet = iota
	// Intersect keeps a fact only when it holds on every incoming path
	// (must-analysis: "wg.Add has executed on all paths to here").
	Intersect
)

// maxRounds bounds the fixpoint iteration as a safety net against a
// non-monotone transfer function; a monotone gen/kill analysis over a
// reducible CFG converges in a handful of rounds.
const maxRounds = 64

// Forward computes, for every block reachable from g.Entry, the fact set
// holding on entry to that block. entry seeds g.Entry; transfer maps a
// block's entry set to its exit set (it must not mutate in). Blocks not
// reachable from Entry are absent from the result.
func Forward(g *Graph, meet Meet, entry FactSet, transfer func(b *Block, in FactSet) FactSet) map[*Block]FactSet {
	in := map[*Block]FactSet{g.Entry: entry.Clone()}
	out := map[*Block]FactSet{}

	for round := 0; round < maxRounds; round++ {
		changed := false
		// Deterministic sweep in block order; the worklist would be
		// faster but the graphs here are function-sized.
		for _, b := range g.Blocks {
			inb, seen := in[b]
			if b != g.Entry {
				var merged FactSet
				for _, p := range b.Preds {
					po, ok := out[p]
					if !ok {
						continue // predecessor not yet reached
					}
					if merged == nil {
						merged = po.Clone()
					} else if meet == Union {
						merged = merged.union(po)
					} else {
						merged = merged.intersect(po)
					}
				}
				if merged == nil {
					continue // unreachable so far
				}
				if seen && merged.Equal(inb) {
					// entry set unchanged; recompute out only if absent
					if _, ok := out[b]; ok {
						continue
					}
				}
				inb = merged
				in[b] = inb
			} else if !seen {
				inb = entry.Clone()
				in[b] = inb
			}
			newOut := transfer(b, inb.Clone())
			if old, ok := out[b]; !ok || !newOut.Equal(old) {
				out[b] = newOut
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}
