// Package a exercises the knobdrift analyzer against the LIVE knob table:
// flag registrations and json tags duplicating a knob are flagged; other
// names pass.
package a

import "flag"

type jobRequest struct {
	BlockSize int     `json:"block_size"` // want `json tag "block_size" duplicates a knob`
	DropProb  float64 `json:"drop_prob"`  // want `json tag "drop_prob" duplicates a knob`
	Workers   int     `json:"workers"`
	Untagged  int
	NoJSON    int `yaml:"block_size"`
}

func register(fs *flag.FlagSet) {
	fs.Int("block-size", 0, "tile width")    // want `flag "block-size" duplicates a knob`
	fs.Float64("drop", 0, "per-link loss")   // want `flag "drop" duplicates a knob`
	flag.String("maxdelay", "", "jitter")    // want `flag "maxdelay" duplicates a knob`
	fs.Int("workers", 0, "worker count")     // not a knob
	fs.String("scenario", "lasso", "preset") // not a knob
}
