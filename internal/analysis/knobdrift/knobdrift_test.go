package knobdrift_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/knobdrift"
)

func TestKnobdrift(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), knobdrift.Analyzer, "a")
}
