// Package knobdrift keeps the tuning/fault knob table in knobs.go the
// single source of truth. Every knob (block-size, intra-parallel,
// gram-precompute, drop, reorder, maxdelay) is declared exactly once
// there, with its CLI flag name and its server JSON field name;
// cmd/asyncsolve registers flags via repro.RegisterKnobFlags and the
// server decodes job fields via repro.KnobByJSON. A flag.Int("block-size",
// ...) or a `json:"block_size"` struct tag anywhere else would silently
// fork the knob — same name, separately-maintained default, help text and
// validation — which is exactly the drift the table exists to prevent.
//
// The analyzer reads the LIVE table (repro.KnobTable), so adding a knob
// automatically extends the rule.
package knobdrift

import (
	"go/ast"
	"go/token"
	"reflect"
	"strconv"
	"strings"

	"repro"
	"repro/internal/analysis"
)

// Analyzer is the knobdrift rule.
var Analyzer = &analysis.Analyzer{
	Name: "knobdrift",
	Doc:  "flag flag registrations and json struct tags that duplicate a knob from the knobs.go table",
	Run:  run,
}

// knobFlags and knobJSON hold the table's names; loaded once from the live
// table so the analyzer can never lag behind knobs.go.
var knobFlags, knobJSON = func() (map[string]bool, map[string]bool) {
	flags, jsons := make(map[string]bool), make(map[string]bool)
	for _, k := range repro.KnobTable() {
		flags[k.Flag] = true
		jsons[k.JSON] = true
	}
	return flags, jsons
}()

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFlagCall(pass, n)
			case *ast.StructType:
				checkTags(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkFlagCall flags calls into package flag whose name argument is a
// string literal naming a knob.
func checkFlagCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "flag" {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		if knobFlags[name] {
			pass.Reportf(lit.Pos(),
				"flag %q duplicates a knob from the knobs.go table; register knob flags via repro.RegisterKnobFlags", name)
		}
	}
}

// checkTags flags json struct tags naming a knob's server field.
func checkTags(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(field.Tag.Value)
		if err != nil {
			continue
		}
		jsonTag := reflect.StructTag(raw).Get("json")
		name, _, _ := strings.Cut(jsonTag, ",")
		if knobJSON[name] {
			pass.Reportf(field.Tag.Pos(),
				"json tag %q duplicates a knob from the knobs.go table; decode knob fields via repro.KnobByJSON", name)
		}
	}
}
