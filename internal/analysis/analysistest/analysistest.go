// Package analysistest runs an analyzer over fixture packages laid out in
// the x/tools GOPATH style (testdata/src/<importpath>/*.go) and checks its
// diagnostics against inline "// want" markers:
//
//	s := fmt.Sprintf("x") // want `fmt\.Sprintf`
//
// Each marker holds one or more quoted regular expressions; every
// diagnostic the analyzer reports must match an unconsumed expectation on
// its line, and every expectation must be consumed by exactly one
// diagnostic. Fixture imports resolve testdata-first (so fixtures can fake
// the "repro" module surface), then through the real toolchain's export
// data — no network needed.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run analyzes each fixture package (import paths under testdata/src) and
// reports marker mismatches as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		checkMarkers(t, a.Name, pkg, findings)
	}
}

// loader loads fixture packages, caching them and the export-data table
// for external imports.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*analysis.Package
	loading  map[string]bool
	exports  map[string]string
}

func newLoader(testdata string) *loader {
	return &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*analysis.Package{},
		loading:  map[string]bool{},
		exports:  map[string]string{},
	}
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, info, err := analysis.Check(path, l.fset, files, importerFunc(l.importPkg))
	if err != nil {
		return nil, err
	}
	p := &analysis.Package{Path: path, Fset: l.fset, Files: files, Types: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves a fixture import: testdata-local packages load from
// source; anything else comes from toolchain export data fetched lazily
// with `go list -deps -export`.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.testdata, "src", filepath.FromSlash(path))); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if _, ok := l.exports[path]; !ok {
		more, err := analysis.ExportDataFor(l.testdata, path)
		if err != nil {
			return nil, err
		}
		for k, v := range more {
			l.exports[k] = v
		}
	}
	imp := analysis.ExportImporter(l.fset, func(p string) (string, bool) {
		f, ok := l.exports[p]
		return f, ok
	})
	return imp.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed "// want" regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkMarkers cross-matches findings against // want expectations.
func checkMarkers(t *testing.T, name string, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[1]
					if m[2] != "" || raw == "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, m[0], err)
							continue
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Line < findings[j].Pos.Line
	})
	for _, f := range findings {
		consumed := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				consumed = true
				break
			}
		}
		if !consumed {
			t.Errorf("%s: unexpected diagnostic: %s", name, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched `%s`", name, w.file, w.line, w.re)
		}
	}
}
