// Package hotpath flags allocating constructs inside functions annotated
// "//repro:hotpath". The repo's steady-state hot loops (engine phases,
// EvalBlock dispatch, vec kernels, scratch fast paths) were made
// allocation-free in PRs 2/5/7 and pinned by a handful of
// testing.AllocsPerRun tests — this analyzer makes the invariant
// structural by rejecting the constructs that allocate (or may allocate)
// at every annotated call site:
//
//   - composite literals, make and new (struct/array literals copied into
//     existing memory — `*e = event{}` — are exempt: a zeroing store, not
//     an allocation)
//   - append (it may grow its backing array)
//   - closure creation (func literals)
//   - boxing a concrete value into an interface (call arguments,
//     assignments and conversions)
//   - fmt and log calls (formatting boxes and allocates)
//   - map iteration (hidden iterator; nondeterministic order also breaks
//     reproducibility)
//
// The annotation is transitive through small same-package helpers (at most
// 60 AST nodes — the kind the compiler inlines), so factoring a hot loop
// body into little functions cannot hide an allocation. A construct that
// is provably cold (one-time lazy init on a guarded branch) may be
// suppressed with an "//repro:alloc-ok <reason>" comment on its line or
// the line above.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpath rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag allocating constructs in //repro:hotpath functions (transitively through small helpers)",
	Run:  run,
}

// inlineBudget is the maximum AST node count of a same-package helper that
// a hot function's annotation propagates into, mirroring the compiler's
// notion of a small inlinable function.
const inlineBudget = 60

func run(pass *analysis.Pass) (interface{}, error) {
	decls := analysis.FuncDecls(pass)

	suppressed := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		suppressed[name] = analysis.SuppressedLines(pass.Fset, f, "alloc-ok")
	}

	// Roots: annotated declarations, in source order.
	type hot struct {
		decl *ast.FuncDecl
		root string // annotated root function name
	}
	var work []hot
	seen := make(map[*ast.FuncDecl]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasDirective(fd.Doc, "hotpath") {
				work = append(work, hot{fd, fd.Name.Name})
				seen[fd] = true
			}
		}
	}

	// Propagate through small same-package helpers, breadth-first.
	for i := 0; i < len(work); i++ {
		h := work[i]
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() != pass.Pkg {
				return true
			}
			fd := decls[fn]
			if fd == nil || fd.Body == nil || seen[fd] {
				return true
			}
			if nodeCount(fd.Body) > inlineBudget {
				return true
			}
			seen[fd] = true
			work = append(work, hot{fd, h.root})
			return true
		})
	}

	for _, h := range work {
		c := &checker{pass: pass, fn: h.decl, root: h.root, suppressed: suppressed}
		ast.Inspect(h.decl.Body, c.visit)
	}
	return nil, nil
}

type checker struct {
	pass       *analysis.Pass
	fn         *ast.FuncDecl
	root       string
	suppressed map[string]map[int]bool
	// zeroing marks struct/array composite literals assigned into existing
	// memory (`*e = event{}`): a value copy, not an allocation.
	zeroing map[*ast.CompositeLit]bool
}

func (c *checker) report(pos token.Pos, what string) {
	p := c.pass.Fset.Position(pos)
	if analysis.Suppressed(c.pass.Fset, pos, c.suppressed[p.Filename]) {
		return
	}
	if c.fn.Name.Name == c.root {
		c.pass.Reportf(pos, "%s in //repro:hotpath function %q", what, c.root)
	} else {
		c.pass.Reportf(pos, "%s in %q, reached from //repro:hotpath function %q",
			what, c.fn.Name.Name, c.root)
	}
}

func (c *checker) visit(n ast.Node) bool {
	info := c.pass.TypesInfo
	switch n := n.(type) {
	case *ast.CompositeLit:
		if !c.zeroing[n] {
			c.report(n.Pos(), "composite literal allocates")
		}
	case *ast.FuncLit:
		c.report(n.Pos(), "closure allocates")
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				c.report(n.Pos(), "map iteration (hidden iterator, nondeterministic order)")
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				c.checkBox(n.Lhs[i], n.Rhs[i])
				if n.Tok == token.ASSIGN {
					c.markZeroing(n.Lhs[i], n.Rhs[i])
				}
			}
		}
	case *ast.CallExpr:
		c.checkCall(n)
	}
	return true
}

// markZeroing records a struct/array composite literal assigned (with `=`,
// not `:=`) into memory that already exists — `*e = event{}`,
// `buf[i] = pair{}`, `s.hdr = header{}`. The literal is copied into place;
// nothing escapes, nothing allocates. Slice and map literals still allocate
// their backing store and stay flagged.
func (c *checker) markZeroing(lhs, rhs ast.Expr) {
	lit, ok := ast.Unparen(rhs).(*ast.CompositeLit)
	if !ok {
		return
	}
	switch ast.Unparen(lhs).(type) {
	case *ast.StarExpr, *ast.IndexExpr, *ast.SelectorExpr, *ast.Ident:
	default:
		return
	}
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Struct, *types.Array, *types.Basic:
		if c.zeroing == nil {
			c.zeroing = make(map[*ast.CompositeLit]bool)
		}
		c.zeroing[lit] = true
	}
}

// checkBox flags rhs when it is a concrete value stored into an
// interface-typed lhs (boxing allocates unless the value is pointer-sized
// and escapes analysis gets lucky — the hot path may not bet on that).
func (c *checker) checkBox(lhs, rhs ast.Expr) {
	info := c.pass.TypesInfo
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" || info.Defs[id] != nil {
			return // blank, or a := definition (lhs type is rhs type)
		}
	}
	lt, ok := info.Types[lhs]
	if !ok || !types.IsInterface(lt.Type) {
		return
	}
	rt, ok := info.Types[rhs]
	if !ok || rt.IsNil() || rt.Type == nil || types.IsInterface(rt.Type) {
		return
	}
	c.report(rhs.Pos(), "assignment boxes a concrete value into an interface")
}

func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				c.report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Conversions, including to interface types.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && !at.IsNil() && !types.IsInterface(at.Type) {
				c.report(call.Pos(), "conversion boxes a concrete value into an interface")
			}
		}
		return
	}

	// fmt/log calls.
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			c.report(call.Pos(), fn.Pkg().Path()+"."+fn.Name()+" call allocates (formatting boxes its arguments)")
			return
		}
	}

	// Interface boxing at call arguments.
	sig, ok := typeAsSignature(info, call.Fun)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		c.report(arg.Pos(), "argument boxes a concrete value into an interface parameter")
	}
}

func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func nodeCount(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if node != nil { // Inspect also fires with nil on post-order pops
			n++
		}
		return true
	})
	return n
}
