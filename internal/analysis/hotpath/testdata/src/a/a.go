// Package a exercises the hotpath analyzer: every allocating construct in
// an annotated function, propagation through small helpers, the zeroing
// exemption and the alloc-ok suppression.
package a

import "fmt"

type pair struct{ x, y float64 }

type sink interface{ put(v interface{}) }

// hot is an annotated root: every allocating construct below must be
// flagged.
//
//repro:hotpath
func hot(dst []float64, m map[int]float64, s sink) {
	q := &pair{1, 2} // want `composite literal allocates`
	_ = q
	sl := []float64{1} // want `composite literal allocates`
	_ = sl
	buf := make([]float64, 4) // want `make allocates`
	_ = buf
	p := new(pair) // want `new allocates`
	_ = p
	dst = append(dst, 1) // want `append may grow its backing array`
	f := func() {}       // want `closure allocates`
	f()
	fmt.Println("x")   // want `fmt.Println call allocates`
	for k := range m { // want `map iteration`
		_ = k
	}
	var i interface{}
	i = dst[0] // want `assignment boxes a concrete value into an interface`
	_ = i
	s.put(3) // want `argument boxes a concrete value into an interface parameter`
	small(dst)
	big(dst)
}

// Zeroing stores copy a struct value into existing memory; nothing
// escapes, nothing allocates, nothing is flagged.
//
//repro:hotpath
func reset(ps []pair, pp *pair) {
	ps[0] = pair{}
	*pp = pair{3, 4}
	var t pair
	t = pair{5, 6}
	_ = t
	for i := range ps { // slice iteration has no hidden iterator
		ps[i].x = 0
	}
}

// warm demonstrates the suppression: a guarded one-time lazy init may
// carry an alloc-ok reason.
//
//repro:hotpath
func warm(s *store) []float64 {
	if s.buf == nil {
		s.buf = make([]float64, 8) //repro:alloc-ok one-time lazy init on the guarded branch
	}
	return s.buf
}

type store struct{ buf []float64 }

// small is under the inline budget, so hot's annotation reaches it.
func small(dst []float64) {
	tmp := make([]float64, 1) // want `reached from`
	dst[0] = tmp[0]
}

// big exceeds the inline budget: the annotation must NOT propagate, so its
// allocation goes unflagged.
func big(dst []float64) {
	tmp := make([]float64, 1)
	dst[0] = tmp[0]
	dst[0] = 1
	dst[0] = 2
	dst[0] = 3
	dst[0] = 4
	dst[0] = 5
	dst[0] = 6
	dst[0] = 7
	dst[0] = 8
	dst[0] = 9
	dst[0] = 10
	dst[0] = 11
	dst[0] = 12
	dst[0] = 13
	dst[0] = 14
	dst[0] = 15
	dst[0] = 16
}

// cold is unannotated: nothing here is flagged.
func cold() []float64 {
	return append(make([]float64, 1), 2)
}
