package hotpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "a")
}
