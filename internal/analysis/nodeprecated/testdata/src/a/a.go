// Package a exercises the nodeprecated analyzer: every deprecated shim use
// is flagged with its migration; the replacements pass.
package a

import "repro"

func use() {
	_ = repro.WithDropProb(0.1)                // want `repro.WithDropProb is deprecated: use WithFaults`
	_ = repro.WithReorderProb(0.1)             // want `repro.WithReorderProb is deprecated`
	_ = repro.WithMaxLinkDelay(3)              // want `repro.WithMaxLinkDelay is deprecated`
	_, _ = repro.RunModel(repro.SimConfig{})   // want `repro.RunModel is deprecated`
	_, _ = repro.RunSim(repro.SimConfig{})     // want `repro.RunSim is deprecated`
	_, _ = repro.RunSimSync(repro.SimConfig{}) // want `repro.RunSimSync is deprecated`
	_, _ = repro.RunShared(repro.SimConfig{})  // want `repro.RunShared is deprecated`
	_, _ = repro.RunMessage(repro.SimConfig{}) // want `repro.RunMessage is deprecated`

	_ = repro.WithFaults(repro.Faults{DropProb: 0.1})
}
