// Package repro fakes the module surface for the nodeprecated fixture. The
// shims' own defining package is exempt — no diagnostics here.
package repro

// Option configures a solve.
type Option func()

// SimConfig mirrors a legacy config struct.
type SimConfig struct{}

// Result mirrors a legacy result.
type Result struct{}

// Faults mirrors the grouped fault knobs.
type Faults struct {
	DropProb    float64
	ReorderProb float64
}

func WithDropProb(p float64) Option    { return nil }
func WithReorderProb(p float64) Option { return nil }
func WithMaxLinkDelay(d int) Option    { return nil }
func WithFaults(f Faults) Option       { return nil }

func RunModel(c SimConfig) (*Result, error)   { return nil, nil }
func RunSim(c SimConfig) (*Result, error)     { return nil, nil }
func RunSimSync(c SimConfig) (*Result, error) { return nil, nil }
func RunShared(c SimConfig) (*Result, error)  { return nil, nil }
func RunMessage(c SimConfig) (*Result, error) { return nil, nil }
