// Package nodeprecated keeps the deprecated repro shims from creeping back
// into internal packages, commands and examples. The shims survive for one
// release so external callers migrate gracefully, but in-repo code has no
// excuse: WithDropProb/WithReorderProb/WithMaxLinkDelay were replaced by
// the grouped WithFaults option (the fault knobs read and write as one
// unit), and the RunModel/RunSim/RunSimSync/RunShared/RunMessage entry
// points by Solve+WithEngine. Test files are exempt — the shim-equivalence
// pins must keep calling the shims to prove they still forward correctly.
package nodeprecated

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the nodeprecated rule.
var Analyzer = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc:  "forbid in-repo (non-test) calls to the deprecated repro shims; use WithFaults / Solve+WithEngine",
	Run:  run,
}

// replacements maps each deprecated repro identifier to its migration.
var replacements = map[string]string{
	"WithDropProb":     "WithFaults(Faults{DropProb: p})",
	"WithReorderProb":  "WithFaults(Faults{ReorderProb: p})",
	"WithMaxLinkDelay": "WithFaults(Faults{MaxLinkDelay: d})",
	"RunModel":         "Solve(spec, WithEngine(EngineModel))",
	"RunSim":           "Solve(spec, WithEngine(EngineSim))",
	"RunSimSync":       "Solve(spec, WithEngine(EngineSimSync))",
	"RunShared":        "Solve(spec, WithEngine(EngineShared))",
	"RunMessage":       "Solve(spec, WithEngine(EngineMessage))",
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == "repro" {
		return nil, nil // the shims' own package defines and documents them
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "repro" {
				return true
			}
			if repl, deprecated := replacements[obj.Name()]; deprecated {
				pass.Reportf(id.Pos(), "repro.%s is deprecated: use %s", obj.Name(), repl)
			}
			return true
		})
	}
	return nil, nil
}
