package nodeprecated_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeprecated"
)

func TestNodeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeprecated.Analyzer,
		"a", "repro")
}
