package vecorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/vecorder"
)

func TestVecorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), vecorder.Analyzer,
		"a", "repro/internal/vec")
}
