// Package vec stands in for repro/internal/vec: the one package allowed to
// hand-roll reductions, because it DEFINES the canonical order.
package vec

func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func Sum(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}
