// Package a exercises the vecorder analyzer: cross-iteration float64
// reductions are flagged; element-wise updates, per-iteration stencil sums
// and call-wrapped accumulations are not.
package a

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i] // want `hand-rolled float64 dot-product reduction`
	}
	return s
}

func sumRange(a []float64) float64 {
	total := 0.0
	for _, v := range a {
		total += v // want `hand-rolled float64 accumulation`
	}
	return total
}

func sumIndexed(a []float64) float64 {
	total := 0.0
	for i := 0; i < len(a); i++ {
		total += a[i] // want `hand-rolled float64 accumulation`
	}
	return total
}

type stats struct{ mean float64 }

// Struct-field accumulators are reductions too.
func (st *stats) add(vals []float64) {
	for _, v := range vals {
		st.mean += v // want `hand-rolled float64 accumulation`
	}
}

// Element-wise updates reassociate nothing.
func axpyLike(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// A stencil sum resets its accumulator every outer iteration: no
// cross-iteration reduction.
func stencil(u, out []float64) {
	for i := 1; i < len(u)-1; i++ {
		s := 0.0
		s += u[i-1]
		s += u[i+1]
		out[i] = s
	}
}

// A fixed-term sum outside any loop is not a reduction.
func pairSum(a []float64) float64 {
	s := a[0]
	s += a[1]
	return s
}

// Call-wrapped and scaled terms compute a different quantity, not a raw
// slice reduction.
func transformed(a []float64) float64 {
	s := 0.0
	for i := range a {
		s += square(a[i])
		s += a[i] * 2
	}
	return s
}

func square(x float64) float64 { return x * x }

// A reduction whose ad-hoc order is its own specification may be
// suppressed with a reason.
func suppressed(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v //repro:vec-ok compensated-summation reference kept in ad-hoc order
	}
	return s
}
