// Package vecorder forbids hand-rolled float64 reduction loops outside
// repro/internal/vec. Floating-point addition is not associative, so the
// order of partial sums is observable in solver trajectories; internal/vec
// holds the ONE canonical reduction order (the 4-wide unroll in
// kernels.go) that keeps the full, range, componentwise and tiled
// evaluation paths mutually bit-identical. A raw
//
//	s += a[i] * b[i]
//
// loop elsewhere silently introduces a second reduction order — exactly
// the class of implementation drift the asynchronous-iterations
// correctness argument cannot survive. Callers must use the vec kernels
// (Dot, Sum, DotStrideAcc, Dense.RowDotAt, ...) instead.
//
// The rule targets cross-iteration reductions only: the accumulator must
// be a scalar declared OUTSIDE the innermost loop carrying the
// accumulation. Element-wise updates (dst[i] += b[i]) and per-iteration
// stencil sums (a sum reset inside the loop body) reassociate nothing and
// are left alone. A reduction whose ad-hoc order is itself the
// specification (rare) may carry an "//repro:vec-ok <reason>" suppression
// comment.
package vecorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the vecorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "vecorder",
	Doc:  "forbid hand-rolled []float64 dot/accumulate reduction loops outside internal/vec (they break the bit-identity contract)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if path := pass.Pkg.Path(); path == "repro/internal/vec" || strings.HasSuffix(path, "/internal/vec") {
		return nil, nil
	}
	for _, f := range pass.Files {
		v := &visitor{
			pass:       pass,
			suppressed: analysis.SuppressedLines(pass.Fset, f, "vec-ok"),
		}
		// First pass: collect every loop with its body span (and, for
		// ranges over []float64, the value variable).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				v.loops = append(v.loops, loop{body: n.Body})
			case *ast.RangeStmt:
				l := loop{body: n.Body}
				if val, ok := n.Value.(*ast.Ident); ok && val.Name != "_" {
					if tv, ok := pass.TypesInfo.Types[n.X]; ok && analysis.IsFloat64Slice(tv.Type) {
						l.rangeVal = pass.TypesInfo.Defs[val]
					}
				}
				v.loops = append(v.loops, l)
			}
			return true
		})
		// Second pass: classify each float64 "+=".
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if ok && a.Tok == token.ADD_ASSIGN && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
				v.check(a)
			}
			return true
		})
	}
	return nil, nil
}

// loop is one for/range statement's body span; rangeVal is the value
// variable when the loop ranges over a []float64.
type loop struct {
	body     *ast.BlockStmt
	rangeVal types.Object
}

func (l loop) contains(pos token.Pos) bool {
	return l.body.Pos() <= pos && pos < l.body.End()
}

type visitor struct {
	pass       *analysis.Pass
	suppressed map[int]bool
	loops      []loop
}

// check classifies "acc += rhs": it is a cross-iteration reduction when
// acc is a scalar float64 declared outside the innermost enclosing loop. A
// product of two slice elements is then a dot-product step, a bare element
// an accumulation step; anything wrapped in calls or further arithmetic is
// left alone (it computes a different quantity, not a raw slice
// reduction).
func (v *visitor) check(n *ast.AssignStmt) {
	acc := ast.Unparen(n.Lhs[0])
	switch acc.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return // dst[i] += ...: element-wise, nothing reassociates
	}
	lt, ok := v.pass.TypesInfo.Types[acc]
	if !ok || !isFloat64(lt.Type) {
		return
	}
	inner, enclosed := v.innermost(n.Pos())
	if !enclosed {
		return // not in a loop: a fixed-term sum, not a reduction
	}
	if obj := v.accObject(acc); obj == nil || inner.contains(obj.Pos()) {
		return // accumulator resets every iteration (stencil sums)
	}
	if analysis.Suppressed(v.pass.Fset, n.Pos(), v.suppressed) {
		return
	}
	switch rhs := ast.Unparen(n.Rhs[0]).(type) {
	case *ast.BinaryExpr:
		if rhs.Op != token.MUL {
			return
		}
		if v.isElem(ast.Unparen(rhs.X), n.Pos()) && v.isElem(ast.Unparen(rhs.Y), n.Pos()) {
			v.pass.Reportf(n.Pos(),
				"hand-rolled float64 dot-product reduction; use the repro/internal/vec kernels (vec.Dot, vec.DotStrideAcc, Dense.RowDotAt) so every path shares the canonical reduction order")
		}
	default:
		if v.isElem(ast.Unparen(n.Rhs[0]), n.Pos()) {
			v.pass.Reportf(n.Pos(),
				"hand-rolled float64 accumulation; use vec.Sum (canonical reduction order) instead of an ad-hoc loop")
		}
	}
}

// innermost returns the smallest loop body containing pos.
func (v *visitor) innermost(pos token.Pos) (loop, bool) {
	var best loop
	found := false
	for _, l := range v.loops {
		if !l.contains(pos) {
			continue
		}
		if !found || (best.body.Pos() <= l.body.Pos() && l.body.End() <= best.body.End()) {
			best, found = l, true
		}
	}
	return best, found
}

// accObject resolves the accumulator's variable object: the ident itself,
// or the leftmost ident of a selector chain (s.Mean → s).
func (v *visitor) accObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return v.pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isElem reports whether e reads one float64 element of a slice: an index
// expression over a []float64, or the value variable of an enclosing
// []float64 range loop.
func (v *visitor) isElem(e ast.Expr, at token.Pos) bool {
	switch e := e.(type) {
	case *ast.IndexExpr:
		tv, ok := v.pass.TypesInfo.Types[e.X]
		return ok && analysis.IsFloat64Slice(tv.Type)
	case *ast.Ident:
		obj := v.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		for _, l := range v.loops {
			if l.rangeVal == obj && l.contains(at) {
				return true
			}
		}
	}
	return false
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
