package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Load must resolve a real in-module package offline, with full type
// information, through the toolchain's export data.
func TestLoadResolvesTypes(t *testing.T) {
	pkgs, err := Load("..", "repro/internal/vec")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var vecPkg *Package
	for _, p := range pkgs {
		if p.Path == "repro/internal/vec" {
			vecPkg = p
		}
	}
	if vecPkg == nil {
		t.Fatal("repro/internal/vec not among loaded packages")
	}
	if vecPkg.Types == nil || vecPkg.Types.Scope().Lookup("Dot") == nil {
		t.Fatal("vec.Dot not in the type-checked scope")
	}
	if len(vecPkg.Info.Types) == 0 {
		t.Fatal("no expression types recorded")
	}
}

// RunAnalyzers must skip _test.go files: the shim-equivalence pins and
// reference implementations live there on purpose.
func TestRunAnalyzersSkipsTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	srcs := map[string]string{
		"p.go":      "package p\nfunc f() { for {} }",
		"p_test.go": "package p\nfunc g() { for {} }",
	}
	var files []*ast.File
	for _, name := range []string{"p.go", "p_test.go"} {
		f, err := parser.ParseFile(fset, name, srcs[name], parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports once per analyzed file",
		Run: func(pass *Pass) (interface{}, error) {
			for _, f := range pass.Files {
				pass.Reportf(f.Package, "saw file")
			}
			return nil, nil
		},
	}
	pkg, info, err := Check("p", fset, files, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(&Package{Path: "p", Fset: fset, Files: files, Types: pkg, Info: info},
		[]*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the _test.go file must be skipped): %v", len(findings), findings)
	}
	if f := findings[0]; f.Pos.Filename != "p.go" || f.Analyzer != "probe" {
		t.Fatalf("unexpected finding %v", f)
	}
}

func TestHasDirective(t *testing.T) {
	cases := []struct {
		comment string
		want    bool
	}{
		{"//repro:hotpath", true},
		{"//repro:hotpath steady-state phase loop", true},
		{"// repro:hotpath", false},        // directives are unspaced
		{"//repro:hotpathological", false}, // exact name or name+space only
		{"//repro:alloc-ok", false},
	}
	for _, tc := range cases {
		doc := &ast.CommentGroup{List: []*ast.Comment{{Text: tc.comment}}}
		if got := HasDirective(doc, "hotpath"); got != tc.want {
			t.Errorf("HasDirective(%q) = %v, want %v", tc.comment, got, tc.want)
		}
	}
	if HasDirective(nil, "hotpath") {
		t.Error("HasDirective(nil) = true")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "hotpath",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
		Message:  "make allocates",
	}
	s := f.String()
	if !strings.Contains(s, "x.go:3:2") || !strings.Contains(s, "[hotpath]") {
		t.Errorf("Finding.String() = %q", s)
	}
}
