package goroutinelife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinelife"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goroutinelife.Analyzer,
		"repro/internal/runtime", "a")
}
