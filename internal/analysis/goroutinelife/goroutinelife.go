// Package goroutinelife requires every go statement in the engine and
// serving packages (internal/runtime, internal/dist, internal/server,
// internal/des) to carry a join or stop obligation. The asyncsolve server
// admits many jobs per process and PR 6 made every engine cancellable; a
// goroutine nothing ever waits for undoes both — teardown returns while
// the stray worker still touches pooled scratch, and a crash-looping
// helper leaks one goroutine per restart.
//
// A spawn is discharged by any of:
//
//   - stop observation: the spawned body (or the call's arguments, or a
//     same-package function it calls, transitively) mentions a
//     ctx/stop/done/quit/cancel signal or a bounded timer wait;
//   - channel drain: the body ranges over a channel, so closing the
//     channel joins the goroutine (the worker-pool idiom);
//   - closing: the body itself calls close(), signalling its completion
//     to a receiver (the "wait then close(done)" completion prober);
//   - WaitGroup pairing: the body calls wg.Done and a matching wg.Add
//     reaches the go statement on every control-flow path into it — an
//     Add on only one branch is exactly the bug where Wait returns early,
//     so the reach check runs on the control-flow graph with a
//     must-analysis (intersection at joins).
//
// WaitGroup identity is matched by the terminal field or variable name
// ("wg" in s.wg and in a bare wg), which survives receiver renames across
// helper methods. A spawn whose lifetime is genuinely managed elsewhere
// may carry "//repro:join-ok <reason>" on its line or the line above.
package goroutinelife

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the goroutine-lifecycle rule.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement in engine/serving packages must have a join/stop obligation discharged on all paths",
	Run:  run,
}

// spawnPackages matches the packages whose goroutines outlive function
// calls and therefore need explicit lifecycle management.
var spawnPackages = regexp.MustCompile(`(^|/)internal/(runtime|dist|server|des)(/|$)`)

// stopWords mirror ctxloop: identifier fragments accepted as evidence the
// goroutine observes a stop signal.
var stopWords = []string{"ctx", "stop", "done", "quit", "cancel"}

func run(pass *analysis.Pass) (interface{}, error) {
	if !spawnPackages.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	decls := analysis.FuncDecls(pass)
	memo := make(map[types.Object]bool)
	for _, f := range pass.Files {
		suppressed := analysis.SuppressedLines(pass.Fset, f, "join-ok")
		for _, fn := range cfg.Functions([]*ast.File{f}) {
			checkFunc(pass, fn, decls, memo, suppressed)
		}
	}
	return nil, nil
}

// checkFunc examines the go statements spawned directly by one function
// (nested literals are their own cfg.Function and check their own spawns).
func checkFunc(pass *analysis.Pass, fn cfg.Function, decls map[types.Object]*ast.FuncDecl, memo map[types.Object]bool, suppressed map[int]bool) {
	var gos []*ast.GoStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			gos = append(gos, n)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}

	// The Add-reach facts are computed lazily: most functions either spawn
	// nothing or discharge through a cheaper obligation.
	var g *cfg.Graph
	var entry map[*cfg.Block]cfg.FactSet

	for _, stmt := range gos {
		if analysis.Suppressed(pass.Fset, stmt.Pos(), suppressed) {
			continue
		}
		// Stop observation covers the call's arguments and, transitively,
		// same-package callees — so `go s.run(ctx)` passes through run's
		// body without explicit resolution.
		if observesStop(pass, stmt.Call, decls, memo, 0) {
			continue
		}
		body := spawnedBody(pass, fn, stmt.Call, decls)
		if body != nil {
			// A body resolved through a closure variable is not part of
			// stmt.Call, so give it its own stop-observation pass.
			if observesStop(pass, body, decls, memo, 0) {
				continue
			}
			if drainsChannel(pass, body) || callsClose(pass, body) {
				continue
			}
			if key := doneKey(pass, body); key != "" {
				if g == nil {
					g = cfg.New(fn.Body)
					entry = addFacts(pass, g)
				}
				if addReaches(pass, g, entry, stmt, key) {
					continue
				}
				pass.Reportf(stmt.Pos(),
					"goroutine calls %s.Done but no %s.Add reaches this go statement on every path (Add must happen-before the spawn, unconditionally)", key, key)
				continue
			}
		}
		pass.Reportf(stmt.Pos(),
			"goroutine has no join/stop obligation (no WaitGroup pairing, channel drain, close, or ctx/stop observation); teardown cannot wait for it")
	}
}

// spawnedBody resolves the block the go statement runs: a literal's body,
// a same-package function or method's body, or the literal assigned to a
// local closure variable.
func spawnedBody(pass *analysis.Pass, fn cfg.Function, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := analysis.Callee(pass.TypesInfo, call); callee != nil {
		if fd := decls[callee]; fd != nil {
			return fd.Body
		}
		return nil // other-package callee: opaque
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return closureBody(fn.Body, pass, obj)
		}
	}
	return nil
}

// closureBody finds the function literal assigned to the closure variable
// obj within the enclosing body: `h := func() { ... }; go h()`.
func closureBody(enclosing *ast.BlockStmt, pass *analysis.Pass, obj types.Object) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(enclosing, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						body = lit.Body
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						body = lit.Body
					}
				}
			}
		}
		return body == nil
	})
	return body
}

// addFacts runs the must-analysis: a fact "add:<key>" holds at a program
// point iff <key>.Add executed on EVERY path reaching it.
func addFacts(pass *analysis.Pass, g *cfg.Graph) map[*cfg.Block]cfg.FactSet {
	transfer := func(b *cfg.Block, in cfg.FactSet) cfg.FactSet {
		for _, n := range b.Nodes {
			genAdds(pass, n, in)
		}
		return in
	}
	return cfg.Forward(g, cfg.Intersect, cfg.NewFacts(), transfer)
}

// genAdds records WaitGroup.Add calls syntactically executed by node n
// (literals spawned later do not count as executed here).
func genAdds(pass *analysis.Pass, n ast.Node, facts cfg.FactSet) {
	cfg.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if name, key := wgMethod(pass, call); name == "Add" && key != "" {
				facts["add:"+key] = true
			}
		}
		return true
	})
}

// addReaches replays the block holding the go statement and reports
// whether key's Add fact holds immediately before the spawn.
func addReaches(pass *analysis.Pass, g *cfg.Graph, entry map[*cfg.Block]cfg.FactSet, stmt *ast.GoStmt, key string) bool {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n != ast.Node(stmt) {
				continue
			}
			in, ok := entry[b]
			if !ok {
				return true // unreachable code: nothing to enforce
			}
			facts := in.Clone()
			for _, prev := range b.Nodes[:i] {
				genAdds(pass, prev, facts)
			}
			return facts["add:"+key]
		}
	}
	return true // not in the graph (defensive): stay silent
}

// doneKey returns the WaitGroup name whose Done the spawned body calls
// (including inside deferred closures), or "".
func doneKey(pass *analysis.Pass, body *ast.BlockStmt) string {
	key := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, k := wgMethod(pass, call); name == "Done" && k != "" {
				key = k
			}
		}
		return key == ""
	})
	return key
}

// wgMethod recognizes sync.WaitGroup method calls, returning the method
// name and the terminal receiver name ("wg" for s.wg.Add(1)).
func wgMethod(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return "", ""
	}
	return fn.Name(), terminalName(sel.X)
}

// terminalName extracts the last identifier of a receiver chain.
func terminalName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.StarExpr:
		return terminalName(x.X)
	}
	return ""
}

// drainsChannel reports whether the body ranges over a channel — closing
// the channel is then the join.
func drainsChannel(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypesInfo.Types[r.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callsClose reports whether the body calls the close builtin.
func callsClose(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// observesStop mirrors ctxloop: any stop-word identifier under n, a
// bounded timer wait, or a same-package callee that observes one
// (transitively, cycle-cut by memo).
func observesStop(pass *analysis.Pass, n ast.Node, decls map[types.Object]*ast.FuncDecl, memo map[types.Object]bool, depth int) bool {
	if depth > 8 {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isStopName(n.Name) {
				// sync.WaitGroup.Done is a completion call by the goroutine,
				// not a stop signal observed by it — without this carve-out
				// every wg.Done body would dodge the Add-reach check.
				if fn, ok := pass.TypesInfo.Uses[n].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					return true
				}
				found = true
				return false
			}
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			if p := fn.Pkg(); p != nil && p.Path() == "time" {
				switch fn.Name() {
				case "After", "Tick", "NewTimer", "NewTicker":
					found = true
					return false
				}
			}
			if fn.Pkg() != pass.Pkg {
				return true
			}
			if hit, ok := memo[fn]; ok {
				found = found || hit
				return !found
			}
			fd := decls[fn]
			if fd == nil || fd.Body == nil {
				return true
			}
			memo[fn] = false // cut recursion on cycles
			hit := observesStop(pass, fd.Body, decls, memo, depth+1)
			memo[fn] = hit
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isStopName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range stopWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
