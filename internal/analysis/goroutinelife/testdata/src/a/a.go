// Package a is outside the spawn packages: naked goroutines are the
// caller's business here, so the analyzer stays silent.
package a

func work() {}

func Spawn() {
	go work()
}
