// Fixture for the goroutinelife analyzer: repro/internal/runtime is a
// spawn package, so every go statement needs a discharged obligation.
package runtime

import (
	"context"
	"sync"
	"time"
)

type S struct {
	wg    sync.WaitGroup
	queue chan int
	n     int
}

func work() {}

// naked spawns a same-package function with no obligation at all.
func (s *S) naked() {
	go work() // want `goroutine has no join/stop obligation`
}

// strayExternal spawns an opaque other-package call with no obligation.
func strayExternal() {
	go time.Sleep(time.Second) // want `goroutine has no join/stop obligation`
}

// pairOK is the canonical WaitGroup pairing: Add before the spawn, Done
// in the body, Wait at the join.
func (s *S) pairOK() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
	s.wg.Wait()
}

// branchAdd is the CFG-sensitive positive: the Add happens on one branch
// only, so Wait can return before the goroutine exits.
func (s *S) branchAdd(extra bool) {
	if extra {
		s.wg.Add(1)
	}
	go func() { // want `no wg\.Add reaches this go statement on every path`
		defer s.wg.Done()
		work()
	}()
	s.wg.Wait()
}

// bothBranchesOK: the must-analysis keeps a fact present on every branch.
func (s *S) bothBranchesOK(x bool) {
	if x {
		s.wg.Add(1)
	} else {
		s.wg.Add(1)
	}
	go func() {
		defer s.wg.Done()
	}()
	s.wg.Wait()
}

// fanOK hoists one Add(n) above the spawning loop; the fact must survive
// the loop back edge.
func (s *S) fanOK(xs []int) {
	s.wg.Add(len(xs))
	for range xs {
		go func() {
			defer s.wg.Done()
		}()
	}
	s.wg.Wait()
}

// startWorkers discharges through the worker-pool idiom: the body ranges
// over a channel, so close(s.queue) is the join.
func (s *S) startWorkers(k int) {
	for i := 0; i < k; i++ {
		go s.drain()
	}
}

func (s *S) drain() {
	for j := range s.queue {
		s.n += j
	}
}

// ctxRun discharges by observing the context passed in the spawn's
// arguments.
func (s *S) ctxRun(ctx context.Context) {
	go spin(ctx)
}

func spin(ctx context.Context) {
	<-ctx.Done()
}

// probe discharges by closing a completion channel.
func (s *S) probe(fin chan struct{}) {
	go func() {
		s.wg.Wait()
		close(fin)
	}()
}

// closureVarOK resolves the spawned body through a local closure variable.
func (s *S) closureVarOK() {
	h := func() {
		defer s.wg.Done()
		work()
	}
	s.wg.Add(1)
	go h()
	s.wg.Wait()
}

// closureStopOK resolves a closure variable whose body observes a quit
// channel (no WaitGroup at all).
func (s *S) closureStopOK(quit chan struct{}) {
	reader := func() {
		for {
			select {
			case j := <-s.queue:
				s.n += j
			case <-quit:
				return
			}
		}
	}
	go reader()
}

// suppressed documents an externally supervised spawn.
func (s *S) suppressed() {
	//repro:join-ok supervised by the test harness, which owns the process
	go work()
}
