// Package ctxloop requires every unbounded for-loop in the engine and
// worker packages (internal/runtime, internal/des, internal/core,
// internal/dist, internal/server) to observe a stop signal. The paper's
// totally-asynchronous convergence theory assumes every processor makes
// progress AND can be told to stop; PR 6 plumbed context cancellation
// through all engines precisely so a serving layer can kill abandoned
// jobs. An infinite `for { ... }` that never consults a ctx/stop/done/quit
// channel (directly, or via a same-package function that does) reverts
// that guarantee — a worker that spins past cancellation burns a goroutine
// forever.
//
// Loops with a termination condition in their header are exempt (the
// condition bounds them); so are loops whose blocking receive is the stop
// signal itself. A loop that is genuinely bounded by something the
// analyzer cannot see (a blocking read on a connection whose teardown is
// the stop signal, say) may carry an "//repro:ctx-ok <reason>" comment.
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxloop rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "require unbounded for-loops in engine/worker packages to observe a ctx/stop/done signal",
	Run:  run,
}

// enginePackages matches the packages whose loops drive workers.
var enginePackages = regexp.MustCompile(`(^|/)internal/(runtime|des|core|dist|server)(/|$)`)

// stopWords are the identifier fragments accepted as evidence that a loop
// observes a stop signal.
var stopWords = []string{"ctx", "stop", "done", "quit", "cancel"}

func run(pass *analysis.Pass) (interface{}, error) {
	if !enginePackages.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	decls := analysis.FuncDecls(pass)
	memo := make(map[types.Object]bool)
	for _, f := range pass.Files {
		suppressed := analysis.SuppressedLines(pass.Fset, f, "ctx-ok")
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if analysis.Suppressed(pass.Fset, loop.Pos(), suppressed) {
				return true
			}
			if isBoundedDrain(loop) {
				return true
			}
			if !observesStop(pass, loop.Body, decls, memo, 0) {
				pass.Reportf(loop.Pos(),
					"unbounded for-loop does not observe a ctx/stop/done signal (every engine loop must stay cancellable)")
			}
			return true
		})
	}
	return nil, nil
}

// observesStop reports whether any identifier under n matches a stop word,
// or any same-package function called under n does (transitively).
func observesStop(pass *analysis.Pass, n ast.Node, decls map[types.Object]*ast.FuncDecl, memo map[types.Object]bool, depth int) bool {
	if depth > 8 {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isStopName(n.Name) {
				found = true
				return false
			}
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			// Receiving from a timer bounds the wait: <-time.After(d)
			// in a select case is a deadline, not a spin.
			if p := fn.Pkg(); p != nil && p.Path() == "time" {
				switch fn.Name() {
				case "After", "Tick", "NewTimer", "NewTicker":
					found = true
					return false
				}
			}
			if fn.Pkg() != pass.Pkg {
				return true
			}
			if hit, ok := memo[fn]; ok {
				found = found || hit
				return !found
			}
			fd := decls[fn]
			if fd == nil || fd.Body == nil {
				return true
			}
			memo[fn] = false // cut recursion on cycles
			hit := observesStop(pass, fd.Body, decls, memo, depth+1)
			memo[fn] = hit
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBoundedDrain recognizes the non-blocking drain idiom — a loop whose
// body is a single select with a default case that leaves the loop:
//
//	for {
//		select {
//		case m := <-inbox:
//			...
//		default:
//			return drained
//		}
//	}
//
// Such a loop runs at most once per queued item plus one; it cannot spin.
func isBoundedDrain(loop *ast.ForStmt) bool {
	if len(loop.Body.List) != 1 {
		return false
	}
	sel, ok := loop.Body.List[0].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm != nil {
			continue // not the default case
		}
		for _, stmt := range cc.Body {
			switch s := stmt.(type) {
			case *ast.ReturnStmt:
				return true
			case *ast.BranchStmt:
				if s.Tok == token.BREAK || s.Tok == token.GOTO {
					return true
				}
			}
		}
	}
	return false
}

func isStopName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range stopWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
