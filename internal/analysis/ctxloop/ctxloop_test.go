package ctxloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxloop.Analyzer,
		"repro/internal/runtime", "a")
}
