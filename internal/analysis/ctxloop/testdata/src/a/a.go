// Package a is outside the engine packages: its loops are not ctxloop's
// business.
package a

func spin(work chan int) {
	for {
		select {
		case w := <-work:
			_ = w
		}
	}
}
