// Package runtime stands in for an engine package: unbounded loops here
// must observe a stop signal.
package runtime

import "time"

// spin never consults a stop signal: flagged.
func spin(work chan int) {
	for { // want `unbounded for-loop does not observe a ctx/stop/done signal`
		select {
		case w := <-work:
			_ = w
		}
	}
}

// polite selects on its stop channel.
func polite(work chan int, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case w := <-work:
			_ = w
		}
	}
}

// bounded loops have a termination condition in the header.
func bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// drain is the non-blocking drain idiom: at most one pass per queued item.
func drain(inbox chan int) int {
	got := 0
	for {
		select {
		case <-inbox:
			got++
		default:
			return got
		}
	}
}

// timed bounds its wait with a timer receive.
func timed(work chan int) {
	for {
		select {
		case w := <-work:
			_ = w
		case <-time.After(time.Second):
			return
		}
	}
}

type wkr struct {
	stopc chan struct{}
	inbox chan int
}

// run observes its stop signal only through a same-package callee: the
// analyzer must follow the call.
func (x *wkr) run() {
	for {
		if x.step() {
			return
		}
	}
}

func (x *wkr) step() bool {
	select {
	case <-x.stopc:
		return true
	case v := <-x.inbox:
		_ = v
		return false
	}
}

// forever is genuinely unbounded but carries a reasoned suppression.
func forever(work chan int) {
	//repro:ctx-ok fixture: torn down with the process
	for {
		<-work
	}
}
