// Test files are exempt from every analyzer: this spin loop must produce
// no diagnostic.
package runtime

func spinInTest(work chan int) {
	for {
		select {
		case w := <-work:
			_ = w
		}
	}
}
