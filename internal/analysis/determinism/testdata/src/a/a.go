// Package a is outside the result-affecting set: the same ambient reads
// that core.go flags must stay silent here.
package a

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func Ambient() (float64, string, int, uint64) {
	return rand.Float64(), os.Getenv("HOME"), runtime.NumCPU(), uint64(time.Now().UnixNano())
}
