// scenario.go of the root package builds the problem instances, so it is
// result-affecting even though the rest of the package is glue.
package repro

import "math/rand"

func BuildNoise(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.NormFloat64() // want `global math/rand\.NormFloat64 reads process-shared state`
	}
	return out
}
