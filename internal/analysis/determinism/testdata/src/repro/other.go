package repro

import "os"

// Glue outside scenario.go may read the environment (flag parsing, output
// paths): not result-affecting, not flagged.
func OutputDir() string {
	return os.Getenv("REPRO_OUT")
}
