// Fixture for the determinism analyzer: repro/internal/core is a
// result-affecting package, so ambient reads and order-dependent
// accumulation must be flagged.
package core

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// globalRand uses the process-shared source.
func globalRand() float64 {
	return rand.Float64() // want `global math/rand\.Float64 reads process-shared state`
}

// seededRandOK threads an explicit source: deterministic, no diagnostic.
func seededRandOK(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// envRead reads the environment outside the tuning gate.
func envRead() string {
	return os.Getenv("REPRO_MODE") // want `os\.Getenv reads ambient environment`
}

// cpuShape makes results depend on the machine.
func cpuShape() int {
	return runtime.NumCPU() // want `runtime\.NumCPU makes results depend on machine shape`
}

// poolSize observes machine shape legitimately: its doc carries the
// tuning-gate directive, because the lane count provably never changes a
// trajectory.
//
//repro:tuning-gate lane-pool sizing only; lanes write disjoint rows
func poolSize() int {
	n := runtime.NumCPU()
	if n > 16 {
		n = 16
	}
	return n
}

// suppressedRead documents a justified exception inline.
func suppressedRead() string {
	//repro:nondet-ok debug knob, read once at init, never touches iterates
	return os.Getenv("REPRO_DEBUG")
}

// clockEscape turns a wall-clock reading into a plain integer.
func clockEscape() uint64 {
	return uint64(time.Now().UnixNano()) // want `clock-derived value escapes the time domain via UnixNano`
}

// clockSeed seeds a rand source from the clock: both the escape and the
// seeding are reported.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `escapes the time domain via UnixNano` `rand source seeded from the clock`
}

// measurementOK keeps clock readings inside the time domain: durations,
// deadlines and comparisons never escape to numerics.
func measurementOK(budget time.Duration) time.Duration {
	start := time.Now()
	deadline := start.Add(budget)
	for time.Now().Before(deadline) {
		break
	}
	return time.Since(start)
}

// taintThroughBranch is the CFG-sensitive positive: the clock value flows
// into x on one branch only, and the escape after the join must still be
// caught.
func taintThroughBranch(useClock bool, ref time.Time) int64 {
	var x time.Time
	if useClock {
		x = time.Now()
	} else {
		x = ref
	}
	return x.Unix() // want `clock-derived value escapes the time domain via Unix`
}

// killOnAllPaths is the CFG-sensitive negative: the tainted value is
// overwritten with a parameter on every path before the escape, so no
// diagnostic.
func killOnAllPaths(flip bool, a, b time.Time) int64 {
	x := time.Now()
	if flip {
		x = a
	} else {
		x = b
	}
	return x.Unix()
}

// mapAccumulate folds map values in iteration order into a float.
func mapAccumulate(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v // want `float accumulation depends on map iteration order`
	}
	return s
}

// mapLongHand spells the same accumulation without the compound token.
func mapLongHand(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s = s + v // want `float accumulation depends on map iteration order`
	}
	return s
}

// mapCountOK: integer counters are order-independent.
func mapCountOK(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sliceAccumulateOK: slices iterate in index order.
func sliceAccumulateOK(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
