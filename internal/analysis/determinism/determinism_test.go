package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer,
		"repro/internal/core", "repro", "a")
}
