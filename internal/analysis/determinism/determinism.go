// Package determinism guards the repo's core claim: bit-identical
// trajectories across engines, block paths and tuning knobs. That claim
// (what makes signature-keyed Scratch pooling safe in `asyncsolve serve`,
// and what the trajectory pins in blockpath_test.go check by example)
// only holds if the result-affecting packages never read ambient state.
// This analyzer proves the absence of the three ways ambient state leaks
// into results:
//
//   - global sources: package-level math/rand calls (process-shared
//     state), os.Getenv/LookupEnv/Environ, runtime.NumCPU and
//     runtime.GOMAXPROCS are reported wherever they appear, except inside
//     a function whose doc comment carries "//repro:tuning-gate" — the
//     one place (lane-pool sizing) where machine shape may be observed
//     because the knob contract proves it cannot change a trajectory;
//   - clock escapes: time.Now/Since/Until values are tracked through the
//     control-flow graph (internal/analysis/cfg); they may flow into
//     deadlines, durations and Report timing fields freely, but the
//     moment a time-derived value escapes the time domain into plain
//     numerics (UnixNano, Seconds, a numeric conversion) or seeds a
//     rand.Source, it can reach iterate state and is reported;
//   - map-order escapes: values produced by ranging over a map are
//     tainted, and a float accumulation fed by them (the iteration-order-
//     dependent sum the vecorder analyzer's canonical kernels exist to
//     prevent) is reported.
//
// Scope: internal/vec, internal/operators, internal/core, internal/des,
// internal/runtime, internal/dist, and the scenario builders (scenario.go
// of the root package). A justified exception takes
// "//repro:nondet-ok <reason>" on the offending line or the line above.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the determinism rule.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "result-affecting packages must not read ambient state (clock, global rand, env, CPU count) or feed map order into float accumulation",
	Run:  run,
}

// resultPackages matches the packages whose computations decide
// trajectories.
var resultPackages = regexp.MustCompile(`(^|/)internal/(vec|operators|core|des|runtime|dist)(/|$)`)

// taintKind distinguishes what contaminated a value.
type taintKind int

const (
	taintTime taintKind = iota // derived from time.Now/Since/Until
	taintMap                   // derived from map iteration order
)

// taintFact marks a variable as carrying tainted data.
type taintFact struct {
	obj  types.Object
	kind taintKind
}

func run(pass *analysis.Pass) (interface{}, error) {
	rootScenario := pass.Pkg.Path() == "repro"
	if !resultPackages.MatchString(pass.Pkg.Path()) && !rootScenario {
		return nil, nil
	}
	for _, file := range pass.Files {
		if rootScenario && filepath.Base(pass.Fset.Position(file.Package).Filename) != "scenario.go" {
			continue // in the root package only the scenario builders are result-affecting
		}
		suppressed := analysis.SuppressedLines(pass.Fset, file, "nondet-ok")
		report := func(pos token.Pos, format string, args ...interface{}) {
			if !analysis.Suppressed(pass.Fset, pos, suppressed) {
				pass.Reportf(pos, format, args...)
			}
		}
		checkGlobalSources(pass, file, report)
		for _, fn := range cfg.Functions([]*ast.File{file}) {
			checkFlows(pass, fn, report)
		}
	}
	return nil, nil
}

// checkGlobalSources reports ambient reads that are never acceptable in
// result-affecting code, wherever they appear on the syntax tree.
func checkGlobalSources(pass *analysis.Pass, file *ast.File, report func(token.Pos, string, ...interface{})) {
	walk := func(n ast.Node, inGate bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewZipf) build explicit
				// sources — that is the fix, not the bug. Everything else at
				// package level reads or mutates the shared source.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
					!strings.HasPrefix(fn.Name(), "New") {
					report(call.Pos(),
						"global math/rand.%s reads process-shared state; use a seeded *rand.Rand so runs replay bit-identically", fn.Name())
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					if !inGate {
						report(call.Pos(),
							"os.%s reads ambient environment in a result-affecting package (move behind the tuning gate or plumb a knob)", fn.Name())
					}
				}
			case "runtime":
				switch fn.Name() {
				case "NumCPU", "GOMAXPROCS":
					if !inGate {
						report(call.Pos(),
							"runtime.%s makes results depend on machine shape (allowed only under a //repro:tuning-gate function)", fn.Name())
					}
				}
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			if fd.Body == nil {
				continue
			}
			walk(fd, analysis.HasDirective(fd.Doc, "tuning-gate"))
		} else {
			walk(decl, false)
		}
	}
}

// checkFlows runs the CFG taint analysis over one function: clock values
// escaping the time domain, and map-iteration values reaching float
// accumulation.
func checkFlows(pass *analysis.Pass, fn cfg.Function, report func(token.Pos, string, ...interface{})) {
	// Pre-scan: functions that neither touch time nor range over maps
	// skip the dataflow entirely.
	interesting := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if isMapType(pass, n.X) {
				interesting = true
			}
		case *ast.CallExpr:
			if isTimeSource(pass, n) {
				interesting = true
			}
		}
		return !interesting
	})
	if !interesting {
		return
	}

	g := cfg.New(fn.Body)
	transfer := func(b *cfg.Block, in cfg.FactSet) cfg.FactSet {
		for _, n := range b.Nodes {
			flowNode(pass, n, in, nil)
		}
		return in
	}
	in := cfg.Forward(g, cfg.Union, cfg.NewFacts(), transfer)

	for _, b := range g.Blocks {
		facts, ok := in[b]
		if !ok {
			continue
		}
		facts = facts.Clone()
		for _, n := range b.Nodes {
			flowNode(pass, n, facts, report)
		}
	}
}

// flowNode is the taint transfer function for one block node; with report
// non-nil it also emits findings at sink sites.
func flowNode(pass *analysis.Pass, n ast.Node, facts cfg.FactSet, report func(token.Pos, string, ...interface{})) {
	// Map range headers taint their iteration variables.
	if r, ok := n.(*ast.RangeStmt); ok {
		if isMapType(pass, r.X) {
			for _, v := range []ast.Expr{r.Key, r.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj := defOrUse(pass, id); obj != nil {
						facts[taintFact{obj: obj, kind: taintMap}] = true
					}
				}
			}
		}
		return
	}

	cfg.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			// Compound float accumulation fed by map-order taint is THE
			// iteration-order hazard.
			if report != nil && isCompound(m.Tok) && len(m.Lhs) == 1 && isFloat(pass, m.Lhs[0]) {
				for _, rhs := range m.Rhs {
					if tainted(pass, rhs, facts, taintMap) {
						report(m.TokPos, "float accumulation depends on map iteration order; collect keys, sort, then reduce through internal/vec")
					}
				}
			}
			// x = x + v spelled out long-hand.
			if report != nil && m.Tok == token.ASSIGN && len(m.Lhs) == 1 && len(m.Rhs) == 1 && isFloat(pass, m.Lhs[0]) {
				if lhsID, ok := m.Lhs[0].(*ast.Ident); ok {
					if mentions(m.Rhs[0], lhsID.Name) && tainted(pass, m.Rhs[0], facts, taintMap) {
						report(m.TokPos, "float accumulation depends on map iteration order; collect keys, sort, then reduce through internal/vec")
					}
				}
			}
			// Taint propagation through assignment: 1:1 and 1:n forms.
			for i, lhs := range m.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := defOrUse(pass, id)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(m.Rhs) == len(m.Lhs) {
					rhs = m.Rhs[i]
				} else if len(m.Rhs) == 1 {
					rhs = m.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				for _, kind := range []taintKind{taintTime, taintMap} {
					f := taintFact{obj: obj, kind: kind}
					if tainted(pass, rhs, facts, kind) || (isCompound(m.Tok) && facts[f]) {
						facts[f] = true
					} else if m.Tok == token.ASSIGN || m.Tok == token.DEFINE {
						delete(facts, f)
					}
				}
			}
		case *ast.CallExpr:
			if report == nil {
				return true
			}
			// Sinks. Numeric escape of a time value:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && isNumericEscape(sel.Sel.Name) {
				if recvT := pass.TypesInfo.Types[sel.X].Type; recvT != nil && isTimeType(recvT) {
					if tainted(pass, sel.X, facts, taintTime) || isTimeSourceExpr(pass, sel.X) {
						report(m.Pos(), "clock-derived value escapes the time domain via %s; results must not depend on wall-clock readings", sel.Sel.Name)
					}
				}
			}
			// Seeding a rand source from the clock:
			if fn := analysis.Callee(pass.TypesInfo, m); fn != nil && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
				(fn.Name() == "NewSource" || fn.Name() == "Seed") {
				for _, arg := range m.Args {
					if tainted(pass, arg, facts, taintTime) {
						report(m.Pos(), "rand source seeded from the clock; derive seeds from the spec so runs replay bit-identically")
					}
				}
			}
			// Numeric conversion of a tainted time value: float64(d) etc.
			if tv, ok := pass.TypesInfo.Types[m.Fun]; ok && tv.IsType() && isNumericType(tv.Type) && len(m.Args) == 1 {
				if argT := pass.TypesInfo.Types[m.Args[0]].Type; argT != nil && isTimeType(argT) &&
					(tainted(pass, m.Args[0], facts, taintTime) || isTimeSourceExpr(pass, m.Args[0])) {
					report(m.Pos(), "clock-derived value converted to %s; results must not depend on wall-clock readings", tv.Type)
				}
			}
		}
		return true
	})
}

// tainted reports whether any identifier inside e carries the taint kind,
// or e (sub)calls a time source for kind taintTime.
func tainted(pass *analysis.Pass, e ast.Expr, facts cfg.FactSet, kind taintKind) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := defOrUse(pass, n); obj != nil && facts[taintFact{obj: obj, kind: kind}] {
				found = true
			}
		case *ast.CallExpr:
			if kind == taintTime && isTimeSource(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTimeSource recognizes the clock reads: time.Now, time.Since,
// time.Until.
func isTimeSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// isTimeSourceExpr reports whether e is directly a clock read (possibly
// through method chaining on its result).
func isTimeSourceExpr(pass *analysis.Pass, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if isTimeSource(pass, x) {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return false
		case *ast.SelectorExpr:
			e = x.X
			continue
		default:
			return false
		}
	}
}

// isNumericEscape lists the time.Time/Duration methods whose results are
// plain numbers.
func isNumericEscape(name string) bool {
	switch name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro",
		"Seconds", "Milliseconds", "Microseconds", "Nanoseconds",
		"Minutes", "Hours":
		return true
	}
	return false
}

// isTimeType reports whether t is (or points to) time.Time or
// time.Duration.
func isTimeType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
		(obj.Name() == "Time" || obj.Name() == "Duration")
}

func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0 && !isTimeType(t)
}

func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		if id, ok := e.(*ast.Ident); ok {
			if obj := defOrUse(pass, id); obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func defOrUse(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
