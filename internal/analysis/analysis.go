// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// just large enough to host the repro lint suite. The container this repo
// builds in has no module proxy access, so the real x/tools module cannot
// be fetched; the API below mirrors its shape so the analyzers port to the
// upstream framework mechanically if that ever changes.
//
// The suite enforces conventions no compiler checks — conventions the
// asynchronous-iterations literature identifies as exactly the places
// where implementations silently diverge from the theory (El Baz ipps
// 2022; Assran et al. 2020): hot loops must stay allocation-free, every
// float64 reduction must use the canonical order in internal/vec, engine
// loops must stay stoppable, tuning knobs must flow through the single
// knob table, and deprecated shims must not creep back into internal
// callers. See the sibling packages hotpath, vecorder, ctxloop, knobdrift
// and nodeprecated for the individual rules, and cmd/reprolint for the
// driver (standalone or as a `go vet -vettool`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags.
	Name string
	// Doc is the one-paragraph description shown by `reprolint help`.
	Doc string
	// Run applies the rule to a single package, reporting findings
	// through pass.Report. The result value is unused by this driver
	// (kept for x/tools signature compatibility).
	Run func(*Pass) (interface{}, error)
}

// A Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test source files only
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasDirective reports whether the comment group contains a line whose
// text is exactly "//repro:<name>" (an optional explanation may follow
// after a space).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//repro:" + name
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// SuppressedLines returns the set of line numbers in file that carry an
// "//repro:<name>" suppression comment. A diagnostic is conventionally
// suppressed when its line, or the line directly above it, is in the set —
// so the escape hatch works both inline and as a lead comment:
//
//	//repro:alloc-ok one-time warmup, reused afterwards
//	buf := make([]float64, n)
func SuppressedLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	prefix := "//repro:" + name
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
				if lines == nil {
					lines = make(map[int]bool)
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// Suppressed reports whether a diagnostic at pos is covered by a
// suppression line set from SuppressedLines.
func Suppressed(fset *token.FileSet, pos token.Pos, lines map[int]bool) bool {
	if len(lines) == 0 {
		return false
	}
	line := fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// FuncDecls maps every function and method declared in the pass's files to
// its declaration, keyed by the *types.Func definition object. Analyzers
// use it to chase same-package calls (hotpath transitivity, ctxloop's
// "or calls a function that does").
func FuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// Callee resolves the called function object of a call expression when it
// is a statically-known function or method (nil for builtins, function
// values and interface-typed callees whose target is unknown).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFloat64Slice reports whether t is (an alias of) []float64.
func IsFloat64Slice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
