package benchsuite

import (
	"bytes"
	"testing"
	"time"
)

// TestMicroCasesMeasure runs every micro case once and checks the capture
// pipeline end to end: measure -> envelope -> JSON -> parse.
func TestMicroCasesMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("micro measurement skipped in -short mode")
	}
	var results []Result
	for _, c := range MicroCases() {
		r := Measure(c, 0) // one repetition per case
		if r.Err != "" {
			t.Errorf("%s: %s", c.Name, r.Err)
			continue
		}
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", c.Name, r)
		}
		if c.UnitsPerOp > 0 && r.SolveRate <= 0 {
			t.Errorf("%s: missing solve rate", c.Name)
		}
		results = append(results, r)
	}

	f := NewFile("testrev", time.Second, results)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	parsed, err := ReadFile(&buf)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if parsed.Revision != "testrev" || parsed.SchemaVersion != SchemaVersion {
		t.Errorf("round trip lost envelope: %+v", parsed)
	}
	if len(parsed.Results) != len(results) {
		t.Errorf("round trip lost results: %d != %d", len(parsed.Results), len(results))
	}
}

func TestExperimentCasesCoverRegistry(t *testing.T) {
	cases := ExperimentCases()
	if len(cases) != 19 { // F1, F2, E1..E17
		t.Fatalf("%d experiment cases", len(cases))
	}
	for _, c := range cases {
		if c.Kind != "experiment" || !c.Once {
			t.Errorf("%s: experiment cases must be Kind=experiment, Once", c.Name)
		}
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	if _, err := ReadFile(bytes.NewBufferString(`{"schema_version": 99}`)); err == nil {
		t.Error("want schema version error")
	}
}

func TestRevisionNeverEmpty(t *testing.T) {
	if Revision() == "" {
		t.Error("Revision must fall back to a non-empty label")
	}
}
