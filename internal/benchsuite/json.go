package benchsuite

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion identifies the BENCH_<rev>.json layout. Bump on breaking
// changes so downstream tooling can dispatch.
const SchemaVersion = 1

// File is the machine-readable benchmark capture emitted by
// `asyncsolve bench` and uploaded by the CI benchmark job.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Revision      string `json:"revision"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Timestamp     string `json:"timestamp"`
	BenchtimeNs   int64  `json:"benchtime_ns"`
	// Quick marks single-repetition smoke captures; downstream consumers
	// must not compare their ns/op against full captures.
	Quick   bool     `json:"quick"`
	Results []Result `json:"results"`
}

// NewFile assembles the capture envelope around measured results.
func NewFile(revision string, benchtime time.Duration, results []Result) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		BenchtimeNs:   benchtime.Nanoseconds(),
		Results:       results,
	}
}

// WriteJSON writes the capture as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFile parses a BENCH JSON capture, verifying the schema version.
func ReadFile(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchsuite: schema version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// Revision returns the short git revision of the working tree, or "dev"
// when git (or the repository) is unavailable — the CLI never fails just
// because it runs outside a checkout.
func Revision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}
