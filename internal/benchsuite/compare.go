package benchsuite

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PerComponentSuffix names the baseline member of a BlockEval pair: the same
// workload and partition forced onto the per-component fallback.
const PerComponentSuffix = "PerComponent"

// Speedup is one BlockEval pair's measured multiple in a capture.
type Speedup struct {
	// Name is the block case's name (the pair is Name + NamePerComponent).
	Name string
	// BlockRate / PerComponentRate are the pair's solve rates (units/s).
	BlockRate, PerComponentRate float64
	// Multiple is BlockRate / PerComponentRate.
	Multiple float64
}

// BlockEvalSpeedups extracts every complete BlockEval pair from a capture,
// sorted by name. Cases with errors, missing partners or zero rates are
// skipped — a pair must have two clean measurements to yield a multiple.
func BlockEvalSpeedups(f *File) []Speedup {
	byName := make(map[string]Result, len(f.Results))
	for _, r := range f.Results {
		byName[r.Name] = r
	}
	var out []Speedup
	for _, r := range f.Results {
		if !strings.HasPrefix(r.Name, "BlockEval") || strings.HasSuffix(r.Name, PerComponentSuffix) {
			continue
		}
		base, ok := byName[r.Name+PerComponentSuffix]
		if !ok || r.Err != "" || base.Err != "" || r.SolveRate <= 0 || base.SolveRate <= 0 {
			continue
		}
		out = append(out, Speedup{
			Name:             r.Name,
			BlockRate:        r.SolveRate,
			PerComponentRate: base.SolveRate,
			Multiple:         r.SolveRate / base.SolveRate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServeCaseName / ServeSoloCaseName are the pair behind the serving-
// efficiency gate: the sustained served solves/sec of the HTTP job server
// and the same solve run directly through the facade.
const (
	ServeCaseName     = "ServeSustained"
	ServeSoloCaseName = "ScenarioSolveLasso"
)

// ServeRatio is one capture's serving efficiency: sustained served
// solves/sec normalized by direct (unserved) solves/sec on the same
// machine in the same capture — machine-independent like the BlockEval
// multiples.
type ServeRatio struct {
	ServeRate float64
	SoloRate  float64
	Ratio     float64
}

// ServeSustainedRatio extracts the serving-efficiency ratio from a capture;
// ok is false when either case is absent, errored or rate-less.
func ServeSustainedRatio(f *File) (ServeRatio, bool) {
	var serve, solo *Result
	for i := range f.Results {
		switch f.Results[i].Name {
		case ServeCaseName:
			serve = &f.Results[i]
		case ServeSoloCaseName:
			solo = &f.Results[i]
		}
	}
	if serve == nil || solo == nil || serve.Err != "" || solo.Err != "" ||
		serve.SolveRate <= 0 || solo.SolveRate <= 0 {
		return ServeRatio{}, false
	}
	return ServeRatio{
		ServeRate: serve.SolveRate,
		SoloRate:  solo.SolveRate,
		Ratio:     serve.SolveRate / solo.SolveRate,
	}, true
}

// CompareServeSustained gates serving efficiency against the baseline
// capture: the current ServeSustained/ScenarioSolveLasso ratio must not
// fall more than tolerance below the baseline's. When neither capture has
// the pair there is nothing to gate (nil, nil); a baseline without the
// pair reports the current ratio as new coverage; a baseline WITH the pair
// whose current capture lacks it is shrunk coverage, which fails.
func CompareServeSustained(baseline, current *File, tolerance float64) ([]string, error) {
	cur, curOK := ServeSustainedRatio(current)
	base, baseOK := ServeSustainedRatio(baseline)
	switch {
	case !curOK && !baseOK:
		return nil, nil
	case !curOK:
		return nil, fmt.Errorf("benchsuite: %s/%s ratio present in baseline (%.3fx) but missing from current capture",
			ServeCaseName, ServeSoloCaseName, base.Ratio)
	case !baseOK:
		return []string{fmt.Sprintf("%-28s %8.3fx of solo solve rate (new case, no baseline)",
			ServeCaseName, cur.Ratio)}, nil
	}
	floor := base.Ratio * (1 - tolerance)
	status := "ok"
	var err error
	if cur.Ratio < floor {
		status = "REGRESSION"
		err = fmt.Errorf("benchsuite: serving efficiency regressed: %s %.3fx < %.3fx (baseline %.3fx - %.0f%%)",
			ServeCaseName, cur.Ratio, floor, base.Ratio, tolerance*100)
	}
	line := fmt.Sprintf("%-28s %8.3fx vs baseline %8.3fx (floor %.3fx) %s",
		ServeCaseName, cur.Ratio, base.Ratio, floor, status)
	return []string{line}, err
}

// IsSolveRateCase reports whether a benchmark case participates in the
// solve-rate trajectory gate: the end-to-end scenario solves, the two
// dist-engine deployments and the sustained serving case.
func IsSolveRateCase(name string) bool {
	return strings.HasPrefix(name, "Scenario") ||
		name == "DistStarWorkers" || name == "DistMeshWorkers" ||
		name == ServeCaseName
}

// solveRates extracts every clean solve-rate case from a capture.
func solveRates(f *File) map[string]float64 {
	out := map[string]float64{}
	for _, r := range f.Results {
		if IsSolveRateCase(r.Name) && r.Err == "" && r.SolveRate > 0 {
			out[r.Name] = r.SolveRate
		}
	}
	return out
}

// geomean returns the geometric mean of the named cases' rates.
func geomean(rates map[string]float64, names []string) float64 {
	if len(names) == 0 {
		return 0
	}
	s := 0.0
	for _, name := range names {
		s += math.Log(rates[name])
	}
	return math.Exp(s / float64(len(names)))
}

// solveRateTolerance is the per-case allowed fractional regression: the
// dist cases ride real TCP sockets and OS scheduling, so they gate looser
// than the in-process scenario and serve cases.
func solveRateTolerance(name string, tolerance, distTolerance float64) float64 {
	if strings.HasPrefix(name, "Dist") {
		return distTolerance
	}
	return tolerance
}

// CompareSolveRates gates end-to-end solve throughput against a committed
// baseline capture. Raw solves/sec are never compared across captures —
// machines differ. Instead each case's rate is normalized by the geometric
// mean of the cases COMMON to both captures within its own capture, so the
// compared quantity is "this case relative to this machine's overall solve
// speed": machine-independent, like the BlockEval multiples. A case whose
// normalized rate falls more than its tolerance below the baseline's fails;
// dist cases use the looser distTolerance. New cases report as info;
// baseline cases missing from the current capture are shrunk coverage and
// fail.
func CompareSolveRates(baseline, current *File, tolerance, distTolerance float64) ([]string, error) {
	base := solveRates(baseline)
	cur := solveRates(current)
	var common, fresh []string
	for name := range cur {
		if _, ok := base[name]; ok {
			common = append(common, name)
		} else {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(common)
	sort.Strings(fresh)

	var lines []string
	var failures []string
	if len(common) > 0 {
		baseMean := geomean(base, common)
		curMean := geomean(cur, common)
		for _, name := range common {
			b := base[name] / baseMean
			c := cur[name] / curMean
			tol := solveRateTolerance(name, tolerance, distTolerance)
			floor := b * (1 - tol)
			status := "ok"
			if c < floor {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.3f < %.3f (baseline %.3f - %.0f%%)",
					name, c, floor, b, tol*100))
			}
			lines = append(lines, fmt.Sprintf("%-28s %8.3f vs baseline %8.3f (floor %.3f) %s",
				name, c, b, floor, status))
		}
	}
	for _, name := range fresh {
		lines = append(lines, fmt.Sprintf("%-28s %8.1f solves/s (new case, no baseline)", name, cur[name]))
	}
	var missing []string
	for name := range base {
		if _, ok := cur[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current capture", name))
	}
	if len(common) == 0 && len(failures) == 0 && len(fresh) == 0 {
		return lines, fmt.Errorf("benchsuite: no solve-rate cases in either capture")
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("benchsuite: solve rate regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return lines, nil
}

// CompareBlockEval gates the block-evaluation fast path against a committed
// baseline capture: for every BlockEval pair present in both files, the
// current speedup multiple must not regress more than tolerance (e.g. 0.2 =
// 20%) below the baseline's. Multiples — not raw ns/op — are compared, so
// the gate is meaningful across machines of different absolute speed. It
// returns one report line per compared pair and an error listing every
// regression (or no pairs to compare at all).
func CompareBlockEval(baseline, current *File, tolerance float64) ([]string, error) {
	base := make(map[string]Speedup)
	for _, s := range BlockEvalSpeedups(baseline) {
		base[s.Name] = s
	}
	var lines []string
	var failures []string
	compared := 0
	seen := make(map[string]bool)
	for _, cur := range BlockEvalSpeedups(current) {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-28s %8.2fx (new case, no baseline)", cur.Name, cur.Multiple))
			continue
		}
		compared++
		floor := b.Multiple * (1 - tolerance)
		status := "ok"
		if cur.Multiple < floor {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.2fx < %.2fx (baseline %.2fx - %.0f%%)",
				cur.Name, cur.Multiple, floor, b.Multiple, tolerance*100))
		}
		lines = append(lines, fmt.Sprintf("%-28s %8.2fx vs baseline %8.2fx (floor %.2fx) %s",
			cur.Name, cur.Multiple, b.Multiple, floor, status))
	}
	// A baseline pair absent from the current capture means the gate's
	// coverage silently shrank (case renamed/deleted, or its measurement
	// errored out) — that is a failure, not a skip.
	var missing []string
	for name := range base {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		failures = append(failures, fmt.Sprintf("%s: present in baseline (%.2fx) but missing from current capture",
			name, base[name].Multiple))
	}
	if compared == 0 && len(failures) == 0 {
		return lines, fmt.Errorf("benchsuite: no BlockEval pairs common to baseline and current capture")
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("benchsuite: block-evaluation speedup regressed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return lines, nil
}
