package benchsuite

import "testing"

// RunBenchmark adapts a Case to a `go test -bench` benchmark: Setup and one
// warm-up run happen outside the timed region, so ns/op measures solving,
// not workload generation.
func RunBenchmark(b *testing.B, c Case) {
	b.Helper()
	op, err := c.Setup()
	if err != nil {
		b.Fatal(err)
	}
	if !c.Once {
		if err := op(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(); err != nil {
			b.Fatal(err)
		}
	}
}

// RunNamed runs the micro case with the given name (helper for delegating
// named benchmarks in bench files).
func RunNamed(b *testing.B, name string) {
	b.Helper()
	for _, c := range MicroCases() {
		if c.Name == name {
			RunBenchmark(b, c)
			return
		}
	}
	b.Fatalf("benchsuite: unknown micro case %q", name)
}
