// Package benchsuite defines the repository's performance suite once, so
// the same workloads are measured everywhere: `go test -bench` (via the
// root bench_test.go, which delegates here) and `asyncsolve bench` (which
// runs the suite standalone and emits a machine-readable BENCH_<rev>.json
// consumed by CI). ns/op measures solving only — workload generation happens
// in each case's Setup, outside the timed region.
package benchsuite

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/server"
)

// Case is one benchmark: Setup builds the workload (untimed) and returns
// the op to measure. UnitsPerOp is how many solver iterations/updates one
// op performs, so throughput ("solve rate") can be derived from ns/op.
// Once marks heavyweight cases (full experiments) that are timed over a
// single run instead of auto-scaled repetitions.
type Case struct {
	Name       string
	Kind       string // "micro" | "experiment"
	UnitsPerOp float64
	Once       bool
	Setup      func() (op func() error, err error)
}

// Result is one measured case in the BENCH JSON schema.
type Result struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// SolveRate is solver iterations/updates per wall-clock second (0 when
	// the case has no meaningful unit count).
	SolveRate float64 `json:"solve_rate_per_sec"`
	Err       string  `json:"error,omitempty"`
}

// benchLinearOp builds the 64-dim diagonally dominant Jacobi operator the
// engine micro-benchmarks share, plus its exact solution.
func benchLinearOp() (*repro.Linear, []float64, error) {
	rng := repro.NewRNG(7)
	n := 64
	m := repro.NewDense(n, n)
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := 0.3 * rng.Normal()
				m.Set(i, j, v)
				if v < 0 {
					off -= v
				} else {
					off += v
				}
			}
		}
		m.Set(i, i, 1.7*off+1)
	}
	rhs := rng.NormalVector(n)
	op := repro.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		return nil, nil, err
	}
	return op, xstar, nil
}

func solveCase(spec repro.Spec, check func(*repro.Report) error) func() error {
	return func() error {
		res, err := repro.Solve(spec)
		if err != nil {
			return err
		}
		return check(res)
	}
}

// MicroCases returns the engine and kernel micro-benchmarks.
func MicroCases() []Case {
	return []Case{
		{
			Name: "ModelEngineIteration", Kind: "micro", UnitsPerOp: 1000,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineModel),
					repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 3}),
					repro.WithMaxIter(1000),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if r.Iterations != 1000 {
						return fmt.Errorf("ran %d iterations", r.Iterations)
					}
					return nil
				}), nil
			},
		},
		{
			Name: "ModelEngineIterationScratch", Kind: "micro", UnitsPerOp: 1000,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				scr := repro.NewScratch()
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineModel),
					repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 3}),
					repro.WithMaxIter(1000),
					repro.WithScratch(scr),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if r.Iterations != 1000 {
						return fmt.Errorf("ran %d iterations", r.Iterations)
					}
					return nil
				}), nil
			},
		},
		{
			Name: "DESUpdatePhase", Kind: "micro", UnitsPerOp: 1000,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineSim),
					repro.WithWorkers(8),
					repro.WithMaxUpdates(1000),
					repro.WithSeed(4),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if r.Updates < 1000 {
						return fmt.Errorf("ran %d updates", r.Updates)
					}
					return nil
				}), nil
			},
		},
		{
			Name: "SharedMemoryGoroutines", Kind: "micro", UnitsPerOp: 1600,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineShared),
					repro.WithWorkers(8),
					repro.WithMaxUpdatesPerWorker(200),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if len(r.UpdatesPerWorker) != 8 {
						return fmt.Errorf("%d workers", len(r.UpdatesPerWorker))
					}
					return nil
				}), nil
			},
		},
		{
			Name: "MessagePassingGoroutines", Kind: "micro", UnitsPerOp: 1600,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineMessage),
					repro.WithWorkers(8),
					repro.WithMaxUpdatesPerWorker(200),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if len(r.UpdatesPerWorker) != 8 {
						return fmt.Errorf("%d workers", len(r.UpdatesPerWorker))
					}
					return nil
				}), nil
			},
		},
		{
			// One op is a complete distributed solve over localhost TCP:
			// listener + 4 worker sockets, 100 phases each, coordinator
			// relay and probe rounds included — the end-to-end cost of the
			// dist engine rather than just its inner loop.
			Name: "DistTCPWorkers", Kind: "micro", UnitsPerOp: 400,
			Setup: func() (func() error, error) {
				op, _, err := benchLinearOp()
				if err != nil {
					return nil, err
				}
				spec := repro.NewSpec(op,
					repro.WithEngine(repro.EngineDist),
					repro.WithWorkers(4),
					repro.WithMaxUpdatesPerWorker(100),
				)
				return solveCase(spec, func(r *repro.Report) error {
					if len(r.UpdatesPerWorker) != 4 {
						return fmt.Errorf("%d workers", len(r.UpdatesPerWorker))
					}
					if r.MessagesSent == 0 {
						return fmt.Errorf("no TCP traffic")
					}
					return nil
				}), nil
			},
		},
		{
			// Star and mesh at 8 workers over the same workload: the pair
			// CI captures to show the mesh data plane removing the
			// coordinator as the bandwidth bottleneck (mesh solve rate
			// should be at or above star).
			Name: "DistStarWorkers", Kind: "micro", UnitsPerOp: 800,
			Setup: distTopologyCase("star"),
		},
		{
			Name: "DistMeshWorkers", Kind: "micro", UnitsPerOp: 800,
			Setup: distTopologyCase("mesh"),
		},
		{
			// The same star solve with elastic membership on (heartbeats,
			// checkpoints, generation-fenced frames) and zero churn: the
			// price of elasticity on a healthy run, to compare against
			// DistStarWorkers.
			Name: "DistElasticWorkers", Kind: "micro", UnitsPerOp: 800,
			Setup: distElasticCase(),
		},
		{
			// One op is one complete lasso solve, so solve_rate_per_sec is
			// end-to-end solves per second — the denominator ServeSustained
			// is normalized against in bench-compare.
			Name: "ScenarioSolveLasso", Kind: "micro", UnitsPerOp: 1,
			Setup: func() (func() error, error) {
				inst, err := repro.BuildScenario("lasso", 32, 1)
				if err != nil {
					return nil, err
				}
				return func() error {
					res, err := repro.Solve(inst.Spec,
						repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}))
					if err != nil {
						return err
					}
					if !res.Converged {
						return fmt.Errorf("did not converge")
					}
					return nil
				}, nil
			},
		},
		{
			// End-to-end lasso solve at 10x the dimension of
			// ScenarioSolveLasso: large enough that the block path's shared
			// prox/gradient work dominates the solve rate.
			Name: "ScenarioSolveLassoLarge", Kind: "micro", UnitsPerOp: 1,
			Setup: func() (func() error, error) {
				inst, err := repro.BuildScenario("lasso", 320, 1)
				if err != nil {
					return nil, err
				}
				return func() error {
					res, err := repro.Solve(inst.Spec,
						repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}))
					if err != nil {
						return err
					}
					if !res.Converged {
						return fmt.Errorf("did not converge")
					}
					return nil
				}, nil
			},
		},
		// BlockEval pairs: identical workload and block partition, evaluated
		// through the whole-block fast path vs the forced per-component
		// fallback. The solve-rate ratio within one capture is the block
		// contract's measured multiple (CI gates on it via bench-compare).
		{
			Name: "BlockEvalN1024", Kind: "micro", UnitsPerOp: 1024,
			Setup: blockSweepCase(blockLassoOp, 1024, 128, false),
		},
		{
			Name: "BlockEvalN1024PerComponent", Kind: "micro", UnitsPerOp: 1024,
			Setup: blockSweepCase(blockLassoOp, 1024, 128, true),
		},
		{
			Name: "BlockEvalN4096", Kind: "micro", UnitsPerOp: 4096,
			Setup: blockSweepCase(blockSeparableLassoOp, 4096, 512, false),
		},
		{
			Name: "BlockEvalN4096PerComponent", Kind: "micro", UnitsPerOp: 4096,
			Setup: blockSweepCase(blockSeparableLassoOp, 4096, 512, true),
		},
		{
			// One op pushes a batch of lasso jobs through a real HTTP solve
			// server (internal/server) over localhost TCP — admission,
			// queueing, scratch-pool checkout, NDJSON streaming and report
			// marshalling all inside the timed region. UnitsPerOp is the
			// batch size, so solve_rate_per_sec is sustained served
			// solves/sec; bench-compare normalizes it against
			// ScenarioSolveLasso (the same solve without the server) within
			// the same capture.
			Name: "ServeSustained", Kind: "micro", UnitsPerOp: serveBatch,
			Setup: serveSustainedCase,
		},
		{
			Name: "ProxGradBFApply", Kind: "micro", UnitsPerOp: 1,
			Setup: func() (func() error, error) {
				reg, err := repro.NewRegression(repro.RegressionConfig{
					N: 64, Coupling: 0.3, Sparsity: 0.5, Reg: 0.1, Seed: 5,
				})
				if err != nil {
					return nil, err
				}
				f := reg.Smooth()
				op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f))
				scr := repro.NewOperatorScratch()
				x := make([]float64, 64)
				dst := make([]float64, 64)
				return func() error {
					repro.ApplyOperator(op, scr, dst, x)
					return nil
				}, nil
			},
		},
	}
}

// perComponent forwards the componentwise and scratch fast paths of its
// inner operator but hides BlockScratchOperator, so EvalBlock takes the
// per-component fallback — the exact pre-block-contract hot loop, measured
// as the baseline of every BlockEval pair.
type perComponent struct{ inner repro.Operator }

func (w perComponent) Dim() int                             { return w.inner.Dim() }
func (w perComponent) Component(i int, x []float64) float64 { return w.inner.Component(i, x) }
func (w perComponent) Name() string                         { return w.inner.Name() }

func (w perComponent) ComponentScratch(scr *repro.OperatorScratch, i int, x []float64) float64 {
	return repro.EvalComponent(w.inner, scr, i, x)
}

func (w perComponent) ApplyScratch(scr *repro.OperatorScratch, dst, x []float64) {
	repro.ApplyOperator(w.inner, scr, dst, x)
}

// blockLassoOp builds the n-dim ProxGradBF lasso operator of the BlockEval
// cases. The design matrix keeps a thin slab of dense coupling rows so the
// Gram matrix stays genuinely coupled without the O(samples*n^2) assembly
// cost of the default 4n-sample generator at this scale.
func blockLassoOp(n int) (repro.Operator, error) {
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: n, Samples: n + 32, Coupling: 0.2, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 17,
	})
	if err != nil {
		return nil, err
	}
	f := reg.Smooth()
	return repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f)), nil
}

// blockSeparableLassoOp builds the n-dim ProxGradBF operator over the
// paper's Section V separable smooth model — O(n) memory, so the BlockEval
// case can scale to dimensions where a dense Gram matrix would not fit.
// This is the regime where a block phase is O(n + b) against the
// per-component path's O(b*n).
func blockSeparableLassoOp(n int) (repro.Operator, error) {
	rng := repro.NewRNG(18)
	a := make([]float64, n)
	t := make([]float64, n)
	for i := range a {
		a[i] = 1 + rng.Float64()
		t[i] = rng.Normal()
	}
	f := repro.NewSeparable(a, t)
	return repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f)), nil
}

// blockSweepCase measures one full round of block phases — every contiguous
// worker block of the n-dim lasso operator evaluated once — through the
// block fast path or (perComp) the forced per-component fallback.
// UnitsPerOp is n, so solve_rate_per_sec is component updates per second
// and the pair's ratio is the block contract's speedup multiple.
func blockSweepCase(build func(int) (repro.Operator, error), n, blockSize int, perComp bool) func() (func() error, error) {
	return func() (func() error, error) {
		op, err := build(n)
		if err != nil {
			return nil, err
		}
		if perComp {
			op = perComponent{op}
		}
		scr := repro.NewOperatorScratch()
		x := repro.NewRNG(19).NormalVector(n)
		out := make([]float64, blockSize)
		return func() error {
			for lo := 0; lo < n; lo += blockSize {
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				repro.EvalBlock(op, scr, lo, hi, x, out[:hi-lo])
			}
			return nil
		}, nil
	}
}

// ServeSustained batch shape: serveClients closed-loop clients push
// serveBatch jobs total through the server per op. The jobs are identical
// (same signature), so after the warm-up op the scratch pool serves every
// checkout from its free lists — the steady state of a real deployment.
const (
	serveBatch   = 32
	serveClients = 4
)

// serveSustainedCase starts an in-process solve server on an ephemeral
// port (it lives for the remainder of the benchmark process) and returns
// an op that pushes one closed-loop batch through it.
func serveSustainedCase() (func() error, error) {
	srv := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		QueueDepth: 2 * serveClients,
		Workers:    serveClients,
	})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	c := &server.Client{Base: "http://" + srv.Addr()}
	req := server.JobRequest{Scenario: "lasso", N: 32, Seed: 1, Engine: "model"}
	return func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, serveClients)
		for w := 0; w < serveClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < serveBatch/serveClients; i++ {
					out, err := c.Solve(context.Background(), req)
					switch {
					case err != nil:
						errCh <- err
						return
					case out.Rejected:
						errCh <- fmt.Errorf("closed-loop job rejected (queue misconfigured)")
						return
					case out.JobErr != "":
						errCh <- fmt.Errorf("job failed: %s", out.JobErr)
						return
					case out.Report == nil || !out.Report.Converged:
						errCh <- fmt.Errorf("served solve did not converge")
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}, nil
}

// distTopologyCase builds the 8-worker × 100-phase end-to-end TCP solve
// used to compare the star and mesh data planes under identical load.
func distTopologyCase(topology string) func() (func() error, error) {
	return func() (func() error, error) {
		op, _, err := benchLinearOp()
		if err != nil {
			return nil, err
		}
		spec := repro.NewSpec(op,
			repro.WithEngine(repro.EngineDist),
			repro.WithTopology(topology),
			repro.WithWorkers(8),
			repro.WithMaxUpdatesPerWorker(100),
		)
		return solveCase(spec, func(r *repro.Report) error {
			if len(r.UpdatesPerWorker) != 8 {
				return fmt.Errorf("%d workers", len(r.UpdatesPerWorker))
			}
			if r.MessagesSent == 0 {
				return fmt.Errorf("no TCP traffic")
			}
			return nil
		}), nil
	}
}

// distElasticCase is distTopologyCase("star") with elastic membership on —
// a churn-free run that prices the heartbeat/checkpoint control traffic.
func distElasticCase() func() (func() error, error) {
	return func() (func() error, error) {
		op, _, err := benchLinearOp()
		if err != nil {
			return nil, err
		}
		spec := repro.NewSpec(op,
			repro.WithEngine(repro.EngineDist),
			repro.WithTopology("star"),
			repro.WithWorkers(8),
			repro.WithMaxUpdatesPerWorker(100),
			repro.WithElastic(repro.Elastic{HeartbeatEvery: 10 * time.Millisecond}),
		)
		return solveCase(spec, func(r *repro.Report) error {
			if len(r.UpdatesPerWorker) != 8 {
				return fmt.Errorf("%d workers", len(r.UpdatesPerWorker))
			}
			if r.WorkersLost != 0 || r.Resharding != 0 {
				return fmt.Errorf("churn on a healthy run: lost=%d reshardings=%d",
					r.WorkersLost, r.Resharding)
			}
			return nil
		}), nil
	}
}

// ExperimentCases returns one heavyweight case per registered experiment;
// each op runs the complete experiment (workload generation included, as
// that is the cost of regenerating the table).
func ExperimentCases() []Case {
	var cases []Case
	for _, e := range experiments.Registry() {
		id := e.ID
		run := e.Run
		cases = append(cases, Case{
			Name: "Experiment" + id, Kind: "experiment", UnitsPerOp: 1, Once: true,
			Setup: func() (func() error, error) {
				return func() error {
					rep := run()
					if !rep.Pass {
						return fmt.Errorf("%s failed acceptance criteria", id)
					}
					return nil
				}, nil
			},
		})
	}
	return cases
}

// Measure runs one case: Setup untimed, then the op repeated until at least
// benchtime has elapsed (or exactly once for Once cases / quick mode via a
// tiny benchtime), reporting per-op time and allocation figures.
func Measure(c Case, benchtime time.Duration) Result {
	res := Result{Name: c.Name, Kind: c.Kind}
	op, err := c.Setup()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	// Warm up once so lazily grown buffers, pools and scheduler state do
	// not count against the steady-state numbers; Once cases skip this
	// (one warm-up would double their cost for no extra signal).
	if !c.Once {
		if err := op(); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	var before, after runtime.MemStats
	iters := 0
	var elapsed time.Duration
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for elapsed < benchtime || iters == 0 {
		if err := op(); err != nil {
			res.Err = err.Error()
			return res
		}
		iters++
		elapsed = time.Since(start)
		if c.Once {
			break
		}
	}
	runtime.ReadMemStats(&after)

	res.Iterations = iters
	res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	if c.UnitsPerOp > 0 && res.NsPerOp > 0 {
		res.SolveRate = c.UnitsPerOp / res.NsPerOp * 1e9
	}
	return res
}
