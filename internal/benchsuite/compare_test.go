package benchsuite

import (
	"strings"
	"testing"
)

func captureWith(results ...Result) *File {
	return &File{SchemaVersion: SchemaVersion, Revision: "test", Results: results}
}

func pair(name string, blockRate, perCompRate float64) []Result {
	return []Result{
		{Name: name, Kind: "micro", SolveRate: blockRate},
		{Name: name + PerComponentSuffix, Kind: "micro", SolveRate: perCompRate},
	}
}

func TestBlockEvalSpeedups(t *testing.T) {
	f := captureWith(append(pair("BlockEvalN1024", 4000, 1000),
		Result{Name: "BlockEvalOrphan", SolveRate: 7}, // no PerComponent partner
		Result{Name: "DESUpdatePhase", SolveRate: 9},  // not a BlockEval case
	)...)
	got := BlockEvalSpeedups(f)
	if len(got) != 1 {
		t.Fatalf("want 1 pair, got %d: %+v", len(got), got)
	}
	if got[0].Name != "BlockEvalN1024" || got[0].Multiple != 4 {
		t.Errorf("unexpected speedup: %+v", got[0])
	}
}

func TestCompareBlockEvalPassesWithinTolerance(t *testing.T) {
	baseline := captureWith(pair("BlockEvalN1024", 4000, 1000)...) // 4.0x
	current := captureWith(pair("BlockEvalN1024", 3400, 1000)...)  // 3.4x > 4.0*0.8
	lines, err := CompareBlockEval(baseline, current, 0.2)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(lines, "\n"))
	}
}

func TestCompareBlockEvalFailsOnRegression(t *testing.T) {
	baseline := captureWith(pair("BlockEvalN1024", 4000, 1000)...) // 4.0x
	current := captureWith(pair("BlockEvalN1024", 3000, 1000)...)  // 3.0x < 3.2x floor
	_, err := CompareBlockEval(baseline, current, 0.2)
	if err == nil {
		t.Fatal("expected a regression failure")
	}
	if !strings.Contains(err.Error(), "BlockEvalN1024") {
		t.Errorf("error should name the regressed case: %v", err)
	}
}

func TestCompareBlockEvalNewCaseIsNotARegression(t *testing.T) {
	baseline := captureWith(pair("BlockEvalN1024", 4000, 1000)...)
	current := captureWith(append(pair("BlockEvalN1024", 4000, 1000),
		pair("BlockEvalN8192", 9000, 1000)...)...)
	lines, err := CompareBlockEval(baseline, current, 0.2)
	if err != nil {
		t.Fatalf("new case must not fail the gate: %v", err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "BlockEvalN8192") && strings.Contains(l, "no baseline") {
			found = true
		}
	}
	if !found {
		t.Errorf("new case should be reported as baseline-less:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareBlockEvalFailsWhenBaselinePairVanishes(t *testing.T) {
	baseline := captureWith(append(pair("BlockEvalN1024", 4000, 1000),
		pair("BlockEvalN4096", 9000, 1000)...)...)
	current := captureWith(pair("BlockEvalN1024", 4000, 1000)...)
	_, err := CompareBlockEval(baseline, current, 0.2)
	if err == nil {
		t.Fatal("a vanished baseline pair must fail the gate")
	}
	if !strings.Contains(err.Error(), "BlockEvalN4096") || !strings.Contains(err.Error(), "missing") {
		t.Errorf("error should name the vanished case: %v", err)
	}
}

func TestCompareBlockEvalNoCommonPairs(t *testing.T) {
	baseline := captureWith(Result{Name: "DESUpdatePhase", SolveRate: 9})
	current := captureWith(pair("BlockEvalN1024", 4000, 1000)...)
	if _, err := CompareBlockEval(baseline, current, 0.2); err == nil {
		t.Fatal("expected an error when no pairs are comparable")
	}
}

func servePair(serveRate, soloRate float64) []Result {
	return []Result{
		{Name: ServeCaseName, Kind: "micro", SolveRate: serveRate},
		{Name: ServeSoloCaseName, Kind: "micro", SolveRate: soloRate},
	}
}

func TestServeSustainedRatio(t *testing.T) {
	f := captureWith(servePair(400, 2000)...)
	r, ok := ServeSustainedRatio(f)
	if !ok || r.Ratio != 0.2 {
		t.Fatalf("ratio = %+v ok=%v, want 0.2", r, ok)
	}
	if _, ok := ServeSustainedRatio(captureWith(Result{Name: ServeCaseName, SolveRate: 400})); ok {
		t.Fatal("ratio extracted without the solo case")
	}
	if _, ok := ServeSustainedRatio(captureWith(
		Result{Name: ServeCaseName, SolveRate: 400, Err: "boom"},
		Result{Name: ServeSoloCaseName, SolveRate: 2000},
	)); ok {
		t.Fatal("ratio extracted from an errored case")
	}
}

func TestCompareServeSustainedPassesWithinTolerance(t *testing.T) {
	baseline := captureWith(servePair(400, 2000)...) // 0.20
	current := captureWith(servePair(240, 2000)...)  // 0.12 > 0.20*0.5
	lines, err := CompareServeSustained(baseline, current, 0.5)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "ok") {
		t.Fatalf("want one ok line, got %v", lines)
	}
}

func TestCompareServeSustainedFailsOnRegression(t *testing.T) {
	baseline := captureWith(servePair(400, 2000)...) // 0.20
	current := captureWith(servePair(150, 2000)...)  // 0.075 < 0.10 floor
	_, err := CompareServeSustained(baseline, current, 0.5)
	if err == nil {
		t.Fatal("expected a serving-efficiency regression failure")
	}
	if !strings.Contains(err.Error(), ServeCaseName) {
		t.Errorf("error should name the case: %v", err)
	}
}

func TestCompareServeSustainedNewCoverage(t *testing.T) {
	baseline := captureWith(pair("BlockEvalN1024", 4000, 1000)...) // no serve pair
	current := captureWith(servePair(400, 2000)...)
	lines, err := CompareServeSustained(baseline, current, 0.5)
	if err != nil {
		t.Fatalf("new coverage must not fail the gate: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "no baseline") {
		t.Fatalf("want a baseline-less report line, got %v", lines)
	}
}

func TestCompareServeSustainedFailsWhenCoverageShrinks(t *testing.T) {
	baseline := captureWith(servePair(400, 2000)...)
	current := captureWith(pair("BlockEvalN1024", 4000, 1000)...) // serve pair gone
	_, err := CompareServeSustained(baseline, current, 0.5)
	if err == nil {
		t.Fatal("vanished serve pair must fail the gate")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error should say the pair is missing: %v", err)
	}
}

func TestCompareServeSustainedAbsentEverywhere(t *testing.T) {
	baseline := captureWith(pair("BlockEvalN1024", 4000, 1000)...)
	current := captureWith(pair("BlockEvalN1024", 4000, 1000)...)
	lines, err := CompareServeSustained(baseline, current, 0.5)
	if err != nil || lines != nil {
		t.Fatalf("nothing to gate must be a clean no-op, got %v / %v", lines, err)
	}
}

func rateCase(name string, rate float64) Result {
	return Result{Name: name, Kind: "micro", SolveRate: rate}
}

func TestCompareSolveRatesPassesWithinTolerance(t *testing.T) {
	baseline := captureWith(rateCase("ScenarioSolveLasso", 2000), rateCase("ServeSustained", 400))
	// The whole machine is 2x slower — every normalized rate is unchanged.
	current := captureWith(rateCase("ScenarioSolveLasso", 1000), rateCase("ServeSustained", 200))
	lines, err := CompareSolveRates(baseline, current, 0.3, 0.5)
	if err != nil {
		t.Fatalf("uniformly slower machine must not fail: %v\n%s", err, strings.Join(lines, "\n"))
	}
}

func TestCompareSolveRatesFailsOnRelativeRegression(t *testing.T) {
	baseline := captureWith(rateCase("ScenarioSolveLasso", 2000), rateCase("ServeSustained", 2000))
	// Lasso collapsed 10x relative to the other case: a real regression even
	// though the serve case got faster in absolute terms.
	current := captureWith(rateCase("ScenarioSolveLasso", 200), rateCase("ServeSustained", 2200))
	_, err := CompareSolveRates(baseline, current, 0.3, 0.5)
	if err == nil {
		t.Fatal("expected a regression failure")
	}
	if !strings.Contains(err.Error(), "ScenarioSolveLasso") {
		t.Errorf("error should name the regressed case: %v", err)
	}
}

func TestCompareSolveRatesDistUsesLooserTolerance(t *testing.T) {
	baseline := captureWith(rateCase("DistStarWorkers", 1000), rateCase("ScenarioSolveLasso", 1000))
	// A relative shift that breaks a 0.3 tolerance but survives the dist 0.5:
	// geomeans are sqrt(1000*1000)=1000 vs sqrt(620*1000)~787, so the dist
	// case normalizes to 620/787 ~ 0.79 vs baseline 1.0 — a 21% relative
	// fall, within the dist band. Make it larger to straddle the two bands.
	current := captureWith(rateCase("DistStarWorkers", 450), rateCase("ScenarioSolveLasso", 1000))
	if _, err := CompareSolveRates(baseline, current, 0.3, 0.5); err != nil {
		t.Fatalf("dist case within its looser tolerance must pass: %v", err)
	}
	if _, err := CompareSolveRates(baseline, current, 0.3, 0.1); err == nil {
		t.Fatal("same shift must fail once the dist tolerance tightens")
	}
}

func TestCompareSolveRatesCoverage(t *testing.T) {
	baseline := captureWith(rateCase("ScenarioSolveLasso", 1000), rateCase("ServeSustained", 300))
	// New case: info, not failure.
	withNew := captureWith(rateCase("ScenarioSolveLasso", 1000), rateCase("ServeSustained", 300),
		rateCase("ScenarioSolveLassoLarge", 30))
	lines, err := CompareSolveRates(baseline, withNew, 0.3, 0.5)
	if err != nil {
		t.Fatalf("new case must not fail the gate: %v", err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "LassoLarge") && strings.Contains(l, "new case") {
			found = true
		}
	}
	if !found {
		t.Errorf("new case not reported: %v", lines)
	}
	// Vanished baseline case: shrunk coverage fails.
	shrunk := captureWith(rateCase("ScenarioSolveLasso", 1000))
	if _, err := CompareSolveRates(baseline, shrunk, 0.3, 0.5); err == nil {
		t.Fatal("vanished baseline case must fail the gate")
	}
	// Non-solve-rate cases are ignored entirely.
	noise := captureWith(rateCase("ScenarioSolveLasso", 1000), rateCase("ServeSustained", 300),
		Result{Name: "DESUpdatePhase", Kind: "micro", SolveRate: 99})
	if _, err := CompareSolveRates(baseline, noise, 0.3, 0.5); err != nil {
		t.Fatalf("non-solve-rate case leaked into the gate: %v", err)
	}
}
