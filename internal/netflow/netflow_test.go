package netflow

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/operators"
	"repro/internal/steering"
)

func twoNodeNet(t *testing.T) *Network {
	t.Helper()
	inf := math.Inf(1)
	n, err := New(2,
		[]Arc{{From: 0, To: 1, R: 1, T: 0, Lo: -inf, Hi: inf}},
		[]float64{1, -1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"zero nodes", func() error {
			_, err := New(0, nil, nil, 1)
			return err
		}},
		{"bad supply len", func() error {
			_, err := New(2, nil, []float64{1}, 1)
			return err
		}},
		{"unbalanced supply", func() error {
			_, err := New(2, nil, []float64{1, 1}, 1)
			return err
		}},
		{"zero ground", func() error {
			_, err := New(2, nil, []float64{0, 0}, 0)
			return err
		}},
		{"self loop", func() error {
			_, err := New(2, []Arc{{From: 0, To: 0, R: 1, Lo: -inf, Hi: inf}}, []float64{0, 0}, 1)
			return err
		}},
		{"bad weight", func() error {
			_, err := New(2, []Arc{{From: 0, To: 1, R: 0, Lo: -inf, Hi: inf}}, []float64{0, 0}, 1)
			return err
		}},
		{"empty capacity", func() error {
			_, err := New(2, []Arc{{From: 0, To: 1, R: 1, Lo: 2, Hi: 1}}, []float64{0, 0}, 1)
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFlowResponse(t *testing.T) {
	n := twoNodeNet(t)
	p := []float64{2, 0}
	if got := n.FlowOf(0, p); math.Abs(got-2) > 1e-12 {
		t.Errorf("flow = %v, want 2", got)
	}
	// Capacitated clamp.
	inf := math.Inf(1)
	_ = inf
	nc, err := New(2, []Arc{{From: 0, To: 1, R: 1, T: 0, Lo: -1, Hi: 1}}, []float64{0, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := nc.FlowOf(0, p); got != 1 {
		t.Errorf("clamped flow = %v, want 1", got)
	}
}

func TestRelaxOpZeroesImbalance(t *testing.T) {
	n := twoNodeNet(t)
	op := NewRelaxOp(n)
	p := []float64{0, 0}
	p0 := op.Component(0, p)
	q := []float64{p0, 0}
	if v := math.Abs(n.Imbalance(0, q)); v > 1e-9 {
		t.Errorf("imbalance after relaxation = %v", v)
	}
}

func TestSyncRelaxationSolvesKKT(t *testing.T) {
	net, err := Grid(4, 4, 2, 0, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	op := NewRelaxOp(net)
	p, ok := operators.FixedPoint(op, make([]float64, net.NumNodes), 1e-11, 20000)
	if !ok {
		t.Fatal("relaxation did not converge")
	}
	rep := net.CheckKKT(p)
	if rep.MaxImbalance > 1e-8 {
		t.Errorf("KKT imbalance %v", rep.MaxImbalance)
	}
}

func TestAsyncRelaxationMatchesSync(t *testing.T) {
	net, err := Random(12, 20, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	op := NewRelaxOp(net)
	pSync, ok := operators.FixedPoint(op, make([]float64, net.NumNodes), 1e-11, 40000)
	if !ok {
		t.Fatal("sync reference did not converge")
	}
	res, err := core.Run(core.Config{
		Op:       op,
		Steering: steering.NewCyclic(net.NumNodes),
		Delay:    delay.BoundedRandom{B: 8, Seed: 3},
		XStar:    pSync,
		Tol:      1e-8,
		MaxIter:  2000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async relaxation did not converge; error %v", res.Errors[len(res.Errors)-1])
	}
	rep := net.CheckKKT(res.X)
	if rep.MaxImbalance > 1e-6 {
		t.Errorf("async KKT imbalance %v", rep.MaxImbalance)
	}
}

func TestCapacitatedFlowsRespectBounds(t *testing.T) {
	net, err := Grid(3, 3, 5, 0.8, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	op := NewRelaxOp(net)
	p, ok := operators.FixedPoint(op, make([]float64, net.NumNodes), 1e-10, 40000)
	if !ok {
		t.Fatal("did not converge")
	}
	for k, f := range net.Flows(p) {
		a := net.Arcs[k]
		if f < a.Lo-1e-9 || f > a.Hi+1e-9 {
			t.Errorf("arc %d flow %v outside [%v, %v]", k, f, a.Lo, a.Hi)
		}
	}
}

func TestGroundLeakVanishesWithSmallGround(t *testing.T) {
	// As Ground -> 0, the conservation residual of the *original* problem
	// (without the leak) goes to 0: the leak is a vanishing regularization.
	resid := func(ground float64) float64 {
		net, err := Grid(3, 3, 1, 0, ground, 5)
		if err != nil {
			t.Fatal(err)
		}
		op := NewRelaxOp(net)
		p, ok := operators.FixedPoint(op, make([]float64, net.NumNodes), 1e-10, 500000)
		if !ok {
			t.Fatal("did not converge")
		}
		// True conservation residual excludes the leak term.
		worst := 0.0
		for i := 0; i < net.NumNodes; i++ {
			v := math.Abs(net.Imbalance(i, p) + net.Ground*p[i])
			if v > worst {
				worst = v
			}
		}
		return worst
	}
	big := resid(0.5)
	small := resid(0.05)
	if small >= big {
		t.Errorf("leak residual should shrink with ground: %v vs %v", small, big)
	}
}

func TestDegree(t *testing.T) {
	net, _ := Grid(2, 2, 1, 0, 0.1, 6)
	for i := 0; i < net.NumNodes; i++ {
		if net.Degree(i) != 2 {
			t.Errorf("corner node %d degree = %d, want 2", i, net.Degree(i))
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid(1, 1, 1, 0, 0.1, 7); err == nil {
		t.Error("expected error for 1x1 grid")
	}
	if _, err := Random(1, 0, 0.1, 7); err == nil {
		t.Error("expected error for single-node random net")
	}
}
