// Package netflow implements convex separable network flow problems and the
// distributed asynchronous dual relaxation method of Bertsekas and El Baz
// [6] (also the workload of [7], [8], [9]): minimize a sum of strictly
// convex arc costs subject to flow conservation, by coordinate ascent on
// node prices. Each node's relaxation step adjusts its own price so that
// the flow it induces on incident arcs satisfies its conservation
// constraint given the neighbours' current prices — a per-component
// fixed-point map that converges under totally asynchronous iteration.
//
// Arc costs are quadratic with optional capacity bounds,
//
//	c_a(f) = r_a/2 * (f - t_a)^2,   lo_a <= f <= hi_a,  r_a > 0,
//
// giving the dual flow response f_a(p) = clamp(t_a + (p_tail - p_head)/r_a,
// lo_a, hi_a). A small "ground conductance" regularizes the singular dual
// (prices are otherwise determined only up to a constant) and makes the
// relaxation a max-norm contraction.
package netflow

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Arc is a directed arc with quadratic cost parameters.
type Arc struct {
	From, To int
	R        float64 // strict convexity weight r_a > 0
	T        float64 // cost-minimizing free flow t_a
	Lo, Hi   float64 // capacity interval (use +-Inf for uncapacitated)
}

// Network is a convex separable network flow instance.
type Network struct {
	NumNodes int
	Arcs     []Arc
	Supply   []float64 // b_i, must sum to ~0
	// Ground is the conductance of the implicit grounding leak at every
	// node; it removes the dual's constant-shift degeneracy. Must be > 0.
	Ground float64

	in, out [][]int // arc indices incident to each node
}

// New validates and indexes a network.
func New(numNodes int, arcs []Arc, supply []float64, ground float64) (*Network, error) {
	if numNodes < 1 {
		return nil, errors.New("netflow: need at least one node")
	}
	if len(supply) != numNodes {
		return nil, fmt.Errorf("netflow: supply length %d, want %d", len(supply), numNodes)
	}
	if ground <= 0 {
		return nil, errors.New("netflow: ground conductance must be positive")
	}
	total := vec.Sum(supply)
	if math.Abs(total) > 1e-9 {
		return nil, fmt.Errorf("netflow: supplies sum to %v, want 0", total)
	}
	n := &Network{
		NumNodes: numNodes,
		Arcs:     arcs,
		Supply:   append([]float64(nil), supply...),
		Ground:   ground,
		in:       make([][]int, numNodes),
		out:      make([][]int, numNodes),
	}
	for k, a := range arcs {
		if a.From < 0 || a.From >= numNodes || a.To < 0 || a.To >= numNodes {
			return nil, fmt.Errorf("netflow: arc %d endpoints out of range", k)
		}
		if a.From == a.To {
			return nil, fmt.Errorf("netflow: arc %d is a self-loop", k)
		}
		if a.R <= 0 {
			return nil, fmt.Errorf("netflow: arc %d has nonpositive weight", k)
		}
		if a.Lo > a.Hi {
			return nil, fmt.Errorf("netflow: arc %d has empty capacity interval", k)
		}
		n.out[a.From] = append(n.out[a.From], k)
		n.in[a.To] = append(n.in[a.To], k)
	}
	return n, nil
}

// FlowOf returns the dual flow response of arc k to prices p.
func (n *Network) FlowOf(k int, p []float64) float64 {
	a := n.Arcs[k]
	f := a.T + (p[a.From]-p[a.To])/a.R
	if f < a.Lo {
		f = a.Lo
	}
	if f > a.Hi {
		f = a.Hi
	}
	return f
}

// Flows materializes all arc flows for prices p.
func (n *Network) Flows(p []float64) []float64 {
	f := make([]float64, len(n.Arcs))
	for k := range n.Arcs {
		f[k] = n.FlowOf(k, p)
	}
	return f
}

// Imbalance returns node i's conservation residual under prices p:
// supply + inflow - outflow - ground*p_i. The relaxation drives it to zero.
func (n *Network) Imbalance(i int, p []float64) float64 {
	s := n.Supply[i] - n.Ground*p[i]
	for _, k := range n.in[i] {
		s += n.FlowOf(k, p)
	}
	for _, k := range n.out[i] {
		s -= n.FlowOf(k, p)
	}
	return s
}

// Cost returns the total arc cost of flows f.
func (n *Network) Cost(f []float64) float64 {
	s := 0.0
	for k, a := range n.Arcs {
		d := f[k] - a.T
		s += 0.5 * a.R * d * d
	}
	return s
}

// Degree returns the number of arcs incident to node i.
func (n *Network) Degree(i int) int { return len(n.in[i]) + len(n.out[i]) }

// RelaxOp is the per-node dual relaxation operator: component i returns the
// price p_i* that zeroes node i's imbalance given the other prices — the
// exact single-coordinate maximization of the dual functional (the
// "relaxation method" of [6]). The imbalance is continuous, strictly
// decreasing in p_i (slope at least Ground), so bisection converges; the
// operator is monotone and, thanks to the ground leak, a max-norm
// contraction with factor deg_w/(deg_w + Ground) where deg_w is the node's
// total incident conductance.
type RelaxOp struct {
	Net *Network
	// Eps is the bisection tolerance on the imbalance root (default 1e-13).
	Eps float64
}

// NewRelaxOp wraps a network.
func NewRelaxOp(net *Network) *RelaxOp { return &RelaxOp{Net: net, Eps: 1e-13} }

// Dim implements operators.Operator.
func (o *RelaxOp) Dim() int { return o.Net.NumNodes }

// Name implements operators.Operator.
func (o *RelaxOp) Name() string {
	return fmt.Sprintf("netflowRelax(nodes=%d,arcs=%d)", o.Net.NumNodes, len(o.Net.Arcs))
}

// Component implements operators.Operator: solve Imbalance_i(p_i) = 0 in
// p_i by expanding-interval bisection.
func (o *RelaxOp) Component(i int, p []float64) float64 {
	local := make([]float64, len(p))
	copy(local, p)
	eval := func(pi float64) float64 {
		local[i] = pi
		return o.Net.Imbalance(i, local)
	}
	// Imbalance is decreasing in p_i. Bracket the root.
	lo, hi := p[i]-1, p[i]+1
	flo, fhi := eval(lo), eval(hi)
	for grow := 0; grow < 200 && flo < 0; grow++ {
		lo -= 2 * (hi - lo)
		flo = eval(lo)
	}
	for grow := 0; grow < 200 && fhi > 0; grow++ {
		hi += 2 * (hi - lo)
		fhi = eval(hi)
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 1e-13
	}
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lo + hi)
		fm := eval(mid)
		if math.Abs(fm) <= eps || hi-lo < 1e-15*(1+math.Abs(mid)) {
			return mid
		}
		if fm > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// KKTReport summarizes optimality of a price vector.
type KKTReport struct {
	// MaxImbalance is the worst node conservation residual (including the
	// ground leak term).
	MaxImbalance float64
	// Cost is the primal cost of the induced flows.
	Cost float64
}

// CheckKKT evaluates optimality of prices p.
func (n *Network) CheckKKT(p []float64) KKTReport {
	rep := KKTReport{}
	for i := 0; i < n.NumNodes; i++ {
		if v := math.Abs(n.Imbalance(i, p)); v > rep.MaxImbalance {
			rep.MaxImbalance = v
		}
	}
	rep.Cost = n.Cost(n.Flows(p))
	return rep
}

// Grid builds a w x h grid network (4-neighbour arcs in both directions)
// with random free flows and unit-ish weights, one source (node 0) and one
// sink (last node), each with the given supply magnitude.
func Grid(w, h int, supplyMag float64, capacity float64, ground float64, seed uint64) (*Network, error) {
	if w < 1 || h < 1 || w*h < 2 {
		return nil, errors.New("netflow: grid too small")
	}
	rng := vec.NewRNG(seed)
	var arcs []Arc
	id := func(x, y int) int { return y*w + x }
	addBoth := func(a, b int) {
		lo, hi := math.Inf(-1), math.Inf(1)
		if capacity > 0 {
			lo, hi = -capacity, capacity
		}
		arcs = append(arcs,
			Arc{From: a, To: b, R: rng.Range(0.5, 2), T: rng.Range(-0.2, 0.2), Lo: lo, Hi: hi})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addBoth(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				addBoth(id(x, y), id(x, y+1))
			}
		}
	}
	supply := make([]float64, w*h)
	supply[0] = supplyMag
	supply[w*h-1] = -supplyMag
	return New(w*h, arcs, supply, ground)
}

// Random builds a random connected network: a spanning chain plus extra
// random arcs, random supplies balanced to zero.
func Random(nodes, extraArcs int, ground float64, seed uint64) (*Network, error) {
	if nodes < 2 {
		return nil, errors.New("netflow: need at least two nodes")
	}
	rng := vec.NewRNG(seed)
	var arcs []Arc
	inf := math.Inf(1)
	for i := 1; i < nodes; i++ {
		arcs = append(arcs, Arc{From: i - 1, To: i, R: rng.Range(0.5, 2), T: 0, Lo: -inf, Hi: inf})
	}
	for e := 0; e < extraArcs; e++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		arcs = append(arcs, Arc{From: a, To: b, R: rng.Range(0.5, 2), T: rng.Range(-0.5, 0.5), Lo: -inf, Hi: inf})
	}
	supply := make([]float64, nodes)
	for i := 0; i < nodes-1; i++ {
		supply[i] = rng.Range(-1, 1)
	}
	supply[nodes-1] = -vec.Sum(supply[:nodes-1])
	return New(nodes, arcs, supply, ground)
}
