package netflow

import (
	"math"
	"testing"

	"repro/internal/operators"
	"repro/internal/vec"
)

// Property: the relaxation step exactly zeroes the relaxed node's imbalance
// from arbitrary price states, on arbitrary networks.
func TestRelaxationZeroesImbalanceRandomized(t *testing.T) {
	rng := vec.NewRNG(101)
	for trial := 0; trial < 20; trial++ {
		nodes := 2 + rng.Intn(10)
		net, err := Random(nodes, rng.Intn(3*nodes), 0.1+rng.Float64(), rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		op := NewRelaxOp(net)
		p := rng.NormalVector(nodes)
		for i := 0; i < nodes; i++ {
			pi := op.Component(i, p)
			q := vec.Clone(p)
			q[i] = pi
			if v := math.Abs(net.Imbalance(i, q)); v > 1e-8 {
				t.Fatalf("trial %d node %d: residual imbalance %v", trial, i, v)
			}
		}
	}
}

// Property: the relaxation operator is monotone in the relaxed node's
// neighbourhood — raising neighbour prices raises the relaxed price.
func TestRelaxationMonotoneInNeighbours(t *testing.T) {
	net, err := Grid(3, 3, 2, 0, 0.3, 102)
	if err != nil {
		t.Fatal(err)
	}
	op := NewRelaxOp(net)
	rng := vec.NewRNG(103)
	for trial := 0; trial < 100; trial++ {
		p1 := rng.NormalVector(net.NumNodes)
		p2 := vec.Clone(p1)
		for i := range p2 {
			p2[i] += rng.Range(0, 2)
		}
		i := rng.Intn(net.NumNodes)
		a := op.Component(i, p1)
		b := op.Component(i, p2)
		if b < a-1e-9 {
			t.Fatalf("trial %d: raising neighbours lowered relaxed price: %v -> %v", trial, a, b)
		}
	}
}

// Property: total cost at the relaxed optimum is no larger than the cost of
// arbitrary feasible-leak price vectors (dual optimality spot check).
func TestRelaxedPricesImproveImbalance(t *testing.T) {
	net, err := Random(10, 15, 0.3, 104)
	if err != nil {
		t.Fatal(err)
	}
	op := NewRelaxOp(net)
	pstar, ok := operators.FixedPoint(op, make([]float64, 10), 1e-11, 100000)
	if !ok {
		t.Fatal("did not converge")
	}
	optimal := net.CheckKKT(pstar).MaxImbalance
	rng := vec.NewRNG(105)
	for trial := 0; trial < 20; trial++ {
		p := rng.NormalVector(10)
		if net.CheckKKT(p).MaxImbalance < optimal-1e-9 {
			t.Fatalf("random prices beat the fixed point's imbalance")
		}
	}
}

// Property: flows are antisymmetric under price negation when free flows
// are zero: f(-p) = -f(p).
func TestFlowAntisymmetry(t *testing.T) {
	nodes := 6
	rng := vec.NewRNG(106)
	var arcs []Arc
	inf := math.Inf(1)
	for i := 1; i < nodes; i++ {
		arcs = append(arcs, Arc{From: i - 1, To: i, R: rng.Range(0.5, 2), T: 0, Lo: -inf, Hi: inf})
	}
	supply := make([]float64, nodes)
	net, err := New(nodes, arcs, supply, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.NormalVector(nodes)
	neg := vec.Scale(-1, p)
	for k := range net.Arcs {
		if math.Abs(net.FlowOf(k, p)+net.FlowOf(k, neg)) > 1e-12 {
			t.Fatalf("arc %d: antisymmetry violated", k)
		}
	}
}
