package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "name", "value", "note")
	tb.AddRow("alpha", 1.5, "ok")
	tb.AddRow("beta-long-name", 0.123456789, "x")
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "beta-long-name") {
		t.Error("missing row")
	}
	if !strings.Contains(out, "0.123457") { // %.6g
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// Header and rows must have the second column starting at the same
	// offset.
	idx := strings.Index(lines[2], "y")
	idx2 := strings.Index(lines[3], "z")
	if idx != idx2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx, idx2, tb.String())
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("zero time should give +inf speedup")
	}
	if got := Efficiency(5, 4); got != 1.25 {
		t.Errorf("Efficiency = %v", got)
	}
	if Efficiency(5, 0) != 0 {
		t.Error("zero workers efficiency should be 0")
	}
}

func TestFitContractionRateExact(t *testing.T) {
	rate := 0.7
	errs := make([]float64, 20)
	v := 3.0
	for i := range errs {
		errs[i] = v
		v *= rate
	}
	if got := FitContractionRate(errs); math.Abs(got-rate) > 1e-9 {
		t.Errorf("FitContractionRate = %v, want %v", got, rate)
	}
}

func TestFitContractionRateSkipsZeros(t *testing.T) {
	errs := []float64{1, 0.5, 0, 0.25, math.NaN(), 0.125}
	got := FitContractionRate(errs)
	if math.IsNaN(got) || got <= 0 || got >= 1 {
		t.Errorf("rate = %v", got)
	}
}

func TestFitContractionRateDegenerate(t *testing.T) {
	if !math.IsNaN(FitContractionRate([]float64{1})) {
		t.Error("single point should give NaN")
	}
	if !math.IsNaN(FitContractionRate(nil)) {
		t.Error("empty series should give NaN")
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeometricMean = %v", got)
	}
	if !math.IsNaN(GeometricMean([]float64{-1, 0})) {
		t.Error("no positive values should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-15 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}
