// Package metrics provides the reporting primitives of the experiment
// harness: aligned ASCII tables (the "rows the paper reports"), speedup and
// efficiency computations, and least-squares contraction-rate fits used to
// compare measured convergence against the theoretical (1-rho)^k of
// inequality (5).
package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/vec"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with %.6g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		case float32:
			row[i] = fmt.Sprintf("%.6g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Speedup returns tBase / t.
func Speedup(tBase, t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return tBase / t
}

// Efficiency returns speedup / workers.
func Efficiency(speedup float64, workers int) float64 {
	if workers <= 0 {
		return 0
	}
	return speedup / float64(workers)
}

// FitContractionRate fits err_k ~ C * rate^k by least squares on
// log(err_k) and returns the rate. Zero or non-finite entries are skipped;
// the fit needs at least two usable points (otherwise NaN is returned).
func FitContractionRate(errs []float64) float64 {
	var xs, ys []float64
	for k, e := range errs {
		if e > 0 && !math.IsInf(e, 0) && !math.IsNaN(e) {
			xs = append(xs, float64(k))
			ys = append(ys, math.Log(e))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	sx, sy := vec.Sum(xs), vec.Sum(ys)
	sxx, sxy := vec.Dot(xs, xs), vec.Dot(xs, ys)
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	slope := (n*sxy - sx*sy) / den
	return math.Exp(slope)
}

// GeometricMean returns the geometric mean of positive values (NaN if none).
func GeometricMean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N              int
	Min, Max, Mean float64
}

// Summarize computes min/max/mean of vals.
func Summarize(vals []float64) Summary {
	s := Summary{}
	for _, v := range vals {
		if s.N == 0 {
			s.Min, s.Max = v, v
		} else {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		s.N++
	}
	if s.N > 0 {
		s.Mean = vec.Sum(vals) / float64(s.N)
	}
	return s
}
