// Package sssp implements distributed asynchronous Bellman–Ford shortest
// paths — the algorithm the paper recalls as the first routing algorithm of
// the Arpanet (Section II, [11] pp. 479-480, [17]) and a canonical totally
// asynchronous iteration: the min-plus fixed-point map
//
//	F_i(d) = min over incoming arcs (j -> i) of d_j + w_ji,   F_s(d) = 0,
//
// is monotone and converges under unbounded delays and out-of-order
// messages from the standard initialization d = +inf. Dijkstra's algorithm
// provides the reference solution.
package sssp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Graph is a directed graph with nonnegative arc weights.
type Graph struct {
	N   int
	adj [][]edge // outgoing adjacency
	rev [][]edge // incoming adjacency (what Bellman-Ford relaxation reads)
}

type edge struct {
	to int
	w  float64
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) (*Graph, error) {
	if n < 1 {
		return nil, errors.New("sssp: need at least one node")
	}
	return &Graph{N: n, adj: make([][]edge, n), rev: make([][]edge, n)}, nil
}

// AddEdge inserts a directed edge with nonnegative weight.
func (g *Graph) AddEdge(from, to int, w float64) error {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		return fmt.Errorf("sssp: edge (%d,%d) out of range", from, to)
	}
	if w < 0 {
		return fmt.Errorf("sssp: negative weight %v", w)
	}
	g.adj[from] = append(g.adj[from], edge{to: to, w: w})
	g.rev[to] = append(g.rev[to], edge{to: from, w: w})
	return nil
}

// SetWeight updates the weight of every edge from->to (dynamic topology
// changes mid-run, as in routing).
func (g *Graph) SetWeight(from, to int, w float64) int {
	changed := 0
	for k := range g.adj[from] {
		if g.adj[from][k].to == to {
			g.adj[from][k].w = w
			changed++
		}
	}
	for k := range g.rev[to] {
		if g.rev[to][k].to == from {
			g.rev[to][k].w = w
		}
	}
	return changed
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// BellmanFordOp is the asynchronous distance-vector operator for a fixed
// source.
type BellmanFordOp struct {
	G      *Graph
	Source int
}

// NewBellmanFordOp wraps a graph and source.
func NewBellmanFordOp(g *Graph, source int) (*BellmanFordOp, error) {
	if source < 0 || source >= g.N {
		return nil, fmt.Errorf("sssp: source %d out of range", source)
	}
	return &BellmanFordOp{G: g, Source: source}, nil
}

// Dim implements operators.Operator.
func (o *BellmanFordOp) Dim() int { return o.G.N }

// Name implements operators.Operator.
func (o *BellmanFordOp) Name() string {
	return fmt.Sprintf("bellmanFord(n=%d,m=%d)", o.G.N, o.G.NumEdges())
}

// Component implements operators.Operator.
func (o *BellmanFordOp) Component(i int, d []float64) float64 {
	if i == o.Source {
		return 0
	}
	best := math.Inf(1)
	for _, e := range o.G.rev[i] {
		if v := d[e.to] + e.w; v < best {
			best = v
		}
	}
	return best
}

// InitialDistances returns the standard starting point: 0 at the source,
// +inf elsewhere.
func (o *BellmanFordOp) InitialDistances() []float64 {
	d := make([]float64, o.G.N)
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[o.Source] = 0
	return d
}

// Dijkstra computes reference shortest distances from source.
func (g *Graph) Dijkstra(source int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	pq := &nodeHeap{{node: source, d: 0}}
	visited := make([]bool, g.N)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, nodeItem{node: e.to, d: nd})
			}
		}
	}
	return dist
}

type nodeItem struct {
	node int
	d    float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RandomGraph builds a strongly connected random digraph: a Hamiltonian
// cycle plus extra random edges, weights uniform in [1, 10).
func RandomGraph(n, extraEdges int, seed uint64) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	rng := vec.NewRNG(seed)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n, rng.Range(1, 10)); err != nil {
			return nil, err
		}
	}
	for e := 0; e < extraEdges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if err := g.AddEdge(a, b, rng.Range(1, 10)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// GridGraph builds a w x h bidirectional grid (the Arpanet-style mesh)
// with weights uniform in [1, 5).
func GridGraph(w, h int, seed uint64) (*Graph, error) {
	g, err := NewGraph(w * h)
	if err != nil {
		return nil, err
	}
	rng := vec.NewRNG(seed)
	id := func(x, y int) int { return y*w + x }
	add := func(a, b int) {
		_ = g.AddEdge(a, b, rng.Range(1, 5))
		_ = g.AddEdge(b, a, rng.Range(1, 5))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				add(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				add(id(x, y), id(x, y+1))
			}
		}
	}
	return g, nil
}
