package sssp

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// Property: synchronous Bellman-Ford sweeps from the standard start match
// Dijkstra on arbitrary random strongly connected graphs.
func TestBellmanFordMatchesDijkstraRandomized(t *testing.T) {
	rng := vec.NewRNG(91)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		extra := rng.Intn(4 * n)
		g, err := RandomGraph(n, extra, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		src := rng.Intn(n)
		op, err := NewBellmanFordOp(g, src)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Dijkstra(src)
		d := op.InitialDistances()
		next := make([]float64, n)
		for sweep := 0; sweep < n+1; sweep++ {
			for i := range next {
				next[i] = op.Component(i, d)
			}
			copy(d, next)
		}
		if !vec.Equal(d, want, 1e-12) {
			t.Fatalf("trial %d (n=%d, src=%d): BF deviates from Dijkstra", trial, n, src)
		}
	}
}

// Property: the Bellman-Ford operator is monotone (order-preserving) and
// nonexpansive in the max norm — the structure behind totally asynchronous
// convergence.
func TestBellmanFordMonotoneNonexpansive(t *testing.T) {
	rng := vec.NewRNG(92)
	g, err := RandomGraph(12, 30, 93)
	if err != nil {
		t.Fatal(err)
	}
	op, _ := NewBellmanFordOp(g, 0)
	for trial := 0; trial < 200; trial++ {
		d1 := rng.RandomVector(12, 0, 50)
		d2 := make([]float64, 12)
		// d2 >= d1 componentwise.
		bump := rng.RandomVector(12, 0, 5)
		for i := range d2 {
			d2[i] = d1[i] + bump[i]
		}
		maxBump := vec.NormInf(bump)
		for i := 0; i < 12; i++ {
			f1 := op.Component(i, d1)
			f2 := op.Component(i, d2)
			if f2 < f1-1e-12 {
				t.Fatalf("monotonicity violated at component %d", i)
			}
			if f2-f1 > maxBump+1e-12 {
				t.Fatalf("nonexpansiveness violated at component %d: gap %v > %v",
					i, f2-f1, maxBump)
			}
		}
	}
}

// Property: distances satisfy the Bellman optimality conditions at the
// fixed point: d_i = min over incoming (d_j + w) and d_src = 0.
func TestBellmanOptimalityConditions(t *testing.T) {
	g, err := GridGraph(5, 5, 94)
	if err != nil {
		t.Fatal(err)
	}
	op, _ := NewBellmanFordOp(g, 3)
	d := g.Dijkstra(3)
	for i := 0; i < g.N; i++ {
		if math.Abs(op.Component(i, d)-d[i]) > 1e-12 {
			t.Fatalf("optimality violated at node %d", i)
		}
	}
}

// Property: adding an edge never increases any shortest distance.
func TestAddingEdgesOnlyImproves(t *testing.T) {
	rng := vec.NewRNG(95)
	g, err := RandomGraph(15, 10, 96)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Dijkstra(0)
	for k := 0; k < 10; k++ {
		a, b := rng.Intn(15), rng.Intn(15)
		if a == b {
			continue
		}
		if err := g.AddEdge(a, b, rng.Range(1, 10)); err != nil {
			t.Fatal(err)
		}
		after := g.Dijkstra(0)
		for i := range after {
			if after[i] > before[i]+1e-12 {
				t.Fatalf("distance to %d increased after adding an edge", i)
			}
		}
		before = after
	}
}
