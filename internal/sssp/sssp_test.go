package sssp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/steering"
	"repro/internal/vec"
)

func TestGraphBasics(t *testing.T) {
	g, err := NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("expected negative-weight error")
	}
	if _, err := NewGraph(0); err == nil {
		t.Error("expected empty-graph error")
	}
}

func TestDijkstraSmall(t *testing.T) {
	g, _ := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	d := g.Dijkstra(0)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g, _ := NewGraph(3)
	g.AddEdge(0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("unreachable node distance = %v", d[2])
	}
}

func TestBellmanFordSyncMatchesDijkstra(t *testing.T) {
	g, err := RandomGraph(40, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewBellmanFordOp(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Dijkstra(0)
	d := op.InitialDistances()
	next := make([]float64, len(d))
	for sweep := 0; sweep < g.N+2; sweep++ {
		for i := range next {
			next[i] = op.Component(i, d)
		}
		copy(d, next)
	}
	if !vec.Equal(d, want, 1e-12) {
		t.Error("synchronous Bellman-Ford deviates from Dijkstra")
	}
}

func TestAsyncBellmanFordUnboundedDelays(t *testing.T) {
	// The Arpanet scenario: asynchronous distance-vector iterations with
	// unbounded delays and out-of-order reads still reach the shortest
	// paths.
	g, err := RandomGraph(30, 90, 2)
	if err != nil {
		t.Fatal(err)
	}
	op, _ := NewBellmanFordOp(g, 0)
	want := g.Dijkstra(0)
	res, err := core.Run(core.Config{
		Op:       op,
		Steering: steering.NewCyclic(g.N),
		Delay:    delay.SqrtGrowth{},
		X0:       op.InitialDistances(),
		XStar:    want,
		Tol:      1e-12,
		MaxIter:  2000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async Bellman-Ford did not converge; error %v",
			res.Errors[len(res.Errors)-1])
	}
	if !vec.Equal(res.X, want, 1e-12) {
		t.Error("async distances deviate from Dijkstra")
	}
}

func TestAsyncBellmanFordOutOfOrder(t *testing.T) {
	g, err := GridGraph(6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	op, _ := NewBellmanFordOp(g, 0)
	want := g.Dijkstra(0)
	res, err := core.Run(core.Config{
		Op:       op,
		Steering: steering.NewRandomSubset(g.N, 3, 5),
		Delay:    delay.OutOfOrder{W: 16, Seed: 4},
		X0:       op.InitialDistances(),
		XStar:    want,
		Tol:      1e-12,
		MaxIter:  2000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("out-of-order Bellman-Ford did not converge")
	}
}

func TestDynamicWeightDecrease(t *testing.T) {
	// A link improves mid-run (cost decrease); the iteration must settle on
	// the new shortest paths without reinitialization.
	g, _ := NewGraph(4)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	g.AddEdge(0, 2, 10)
	g.AddEdge(2, 3, 1)
	op, _ := NewBellmanFordOp(g, 0)
	d := op.InitialDistances()
	next := make([]float64, 4)
	for sweep := 0; sweep < 8; sweep++ {
		for i := range next {
			next[i] = op.Component(i, d)
		}
		copy(d, next)
	}
	if changed := g.SetWeight(0, 2, 1); changed != 1 {
		t.Fatalf("SetWeight changed %d edges", changed)
	}
	for sweep := 0; sweep < 8; sweep++ {
		for i := range next {
			next[i] = op.Component(i, d)
		}
		copy(d, next)
	}
	want := g.Dijkstra(0)
	if !vec.Equal(d, want, 1e-12) {
		t.Errorf("after decrease: %v, want %v", d, want)
	}
}

func TestDynamicWeightIncreaseFromScratch(t *testing.T) {
	// Cost increases generally require restarting from +inf (the classic
	// distance-vector caveat); verify reconvergence after reinit.
	g, _ := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	op, _ := NewBellmanFordOp(g, 0)
	d := op.InitialDistances()
	next := make([]float64, 3)
	iterate := func() {
		for sweep := 0; sweep < 6; sweep++ {
			for i := range next {
				next[i] = op.Component(i, d)
			}
			copy(d, next)
		}
	}
	iterate()
	g.SetWeight(1, 2, 10)
	d = op.InitialDistances() // restart
	iterate()
	want := g.Dijkstra(0)
	if !vec.Equal(d, want, 1e-12) {
		t.Errorf("after increase: %v, want %v", d, want)
	}
}

func TestSourceValidation(t *testing.T) {
	g, _ := NewGraph(2)
	if _, err := NewBellmanFordOp(g, 5); err == nil {
		t.Error("expected source range error")
	}
}

func TestGridGraphShape(t *testing.T) {
	g, err := GridGraph(3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 6 {
		t.Fatalf("N = %d", g.N)
	}
	// 7 undirected grid edges -> 14 directed.
	if g.NumEdges() != 14 {
		t.Errorf("NumEdges = %d, want 14", g.NumEdges())
	}
}
