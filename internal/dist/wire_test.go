package dist

// Wire-format hardening tests: a frame reader fed by real sockets sees
// truncated streams, corrupt length prefixes and version-skewed peers. The
// reader must fail with a clean error every time — never panic, and never
// let an untrusted length prefix force a large up-front allocation.

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// frameWithLyingPrefix builds a header whose length prefix claims length
// bytes follow, backed by only got actual payload bytes.
func frameWithLyingPrefix(length uint32, typ byte, got int) []byte {
	f := make([]byte, frameHeaderLen+got)
	binary.LittleEndian.PutUint32(f, length)
	f[4] = typ
	return f
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	// Prefix claims 1 MiB; the stream ends after 16 bytes.
	data := frameWithLyingPrefix(1<<20, msgBlock, 16)
	_, _, err := readFrame(bytes.NewReader(data), maxFramePayload)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated large frame: err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
	// Same below the chunk threshold (the direct-allocation path).
	data = frameWithLyingPrefix(512, msgBlock, 3)
	if _, _, err := readFrame(bytes.NewReader(data), maxFramePayload); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated small frame: err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

func TestReadFrameOversizedLengthPrefix(t *testing.T) {
	for _, length := range []uint32{0, 0xffffffff, uint32(maxFramePayload) + 2} {
		data := frameWithLyingPrefix(length, msgBlock, 0)
		_, _, err := readFrame(bytes.NewReader(data), maxFramePayload)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("length prefix %d: err = %v, want out-of-range error", length, err)
		}
	}
}

// decodeFramePayload mirrors every production decode path for the frame
// types whose payloads are structured, so the fuzzer drives the cursor
// decoders with arbitrary bytes. Decode errors are fine; panics are not.
func decodeFramePayload(typ byte, payload []byte) {
	cur := cursor{b: payload}
	switch typ {
	case msgHello:
		// An unknown-version hello must surface as a comparison failure,
		// never anything worse.
		_ = cur.u32() != protocolVersion
	case msgWelcome:
		for i := 0; i < 5; i++ {
			cur.u32() // id, workers, n, lo, hi
		}
		cur.f64()                // tol
		cur.u32()                // sweeps
		cur.u32()                // maxUpdates
		cur.u8()                 // topology
		cur.f64()                // delta
		cur.u64()                // timeout
		cur.f64()                // drop
		cur.f64()                // reorder
		cur.u64()                // maxDelay
		cur.u64()                // faultSeed
		cur.u32()                // gen
		cur.u8()                 // rejoining
		cur.u64()                // heartbeat
		cur.u64()                // checkpoint
		cur.f64s(len(cur.b) / 8) // x
	case msgBlock:
		cur.u32() // from
		cur.u64() // seq
		cur.u8()  // flags
		cur.u32() // gen
		cur.u32() // lo
		cur.f64s(int(int32(cur.u32())))
	case msgStatus:
		cur.u64() // probeID
		cur.u8()  // flags
		cur.u32() // gen
		cur.u64() // epoch
		cur.u64() // sent
		cur.u64() // delivered
		cur.u64() // drained
	case msgCheckpoint, msgReshardAck:
		cur.u32() // gen
		cur.u32() // lo
		cur.f64s(int(int32(cur.u32())))
	case msgAssign:
		cur.u32() // gen
		cur.u32() // lo
		cur.u32() // hi
		cur.f64s(len(cur.b)/8 - 1)
		n := int(int32(cur.u32()))
		for i := 0; i < n && cur.err == nil; i++ {
			cur.str()
		}
	case msgFinal:
		cur.u32() // lo
		vals := int(int32(cur.u32()))
		cur.f64s(vals)
		cur.u32() // updates
		for i := 0; i < 6; i++ {
			cur.u64()
		}
		cur.u64s(int(int32(cur.u32())))
	case msgMeshAddr, msgReject:
		cur.str()
	case msgPeers:
		n := int(int32(cur.u32()))
		for i := 0; i < n && cur.err == nil; i++ {
			cur.str()
		}
	case msgReshard, msgMeshHello, msgProbe:
		cur.u64()
	}
}

// FuzzDecodeFrame feeds arbitrary byte streams through readFrame and the
// per-type payload decoders. Required behaviour for any input: no panic, a
// clean error on truncated or corrupt streams, and no payload larger than
// the bytes that actually arrived (a lying length prefix must not commit
// memory the stream never backed).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(buildFrame(msgHello, appendU32(nil, protocolVersion)))
	f.Add(buildFrame(msgHello, appendU32(nil, 99))) // unknown version
	f.Add(buildBlockFrame(1, 7, blockReliable, 2, 3, []float64{1.5, -2, 0.25}))
	f.Add(frameWithLyingPrefix(1<<20, msgBlock, 16))       // truncated
	f.Add(frameWithLyingPrefix(0xffffffff, msgWelcome, 0)) // oversized prefix
	f.Add(frameWithLyingPrefix(0, msgStop, 0))             // zero length
	f.Add(buildFrame(msgCheckpoint, appendU32(appendU32(appendU32(nil, 1), 0), 0xfffffff0)))
	f.Add(buildFrame(msgAssign, appendU32(appendU32(appendU32(nil, 2), 0), 4)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), maxFramePayload)
		if err != nil {
			return // clean rejection is the required outcome for bad streams
		}
		if len(payload) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte stream", len(payload), len(data))
		}
		decodeFramePayload(typ, payload)
	})
}
