package dist

// The mesh data plane: direct worker-to-worker TCP links over which shard
// frames travel without passing through the coordinator. Rendezvous runs on
// the control plane — every worker opens a listener, reports its address to
// the coordinator, and receives the full peer table back; worker i then
// dials every peer j != i, so each directed pair (i, j) has a dedicated
// connection owned by the sender.
//
// Because the sender owns the link, fault injection (drop, reorder hold,
// transit delay) and per-source sequence filtering both run on the sending
// side: the same decisions the star coordinator's relay takes, drawn from
// the same per-source RNG stream (seed + source*7919, destinations visited
// in worker order), so star and mesh runs with identical seeds inject the
// same per-(frame, destination) faults. A frame that a later-sequenced
// frame has already overtaken on its link is discarded at the link — never
// written — and counted reordered (seq below newest) or duplicate (seq
// equal); discards and drops feed the drained counter the termination
// probes subtract from in-flight.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// delayQueue tracks time.AfterFunc-scheduled frame deliveries so teardown
// can cancel every pending timer and wait out callbacks already firing
// before any connection is closed — a delayed delivery can then never write
// to a conn that teardown is closing. onDispose, when set, is called once
// for every scheduled delivery that is cancelled or skipped instead of run,
// so the owner can account the frame as drained (a cancelled frame was
// counted sent and will never be delivered).
type delayQueue struct {
	mu        sync.Mutex
	stopped   bool
	nextID    uint64
	timers    map[uint64]*time.Timer
	wg        sync.WaitGroup
	onDispose func()
}

func (d *delayQueue) dispose() {
	if d.onDispose != nil {
		d.onDispose()
	}
}

// after schedules fn to run once after delay; it reports false (and does
// not schedule) when the queue has already been drained. The callback
// re-checks the stopped flag, so a timer that drain could not cancel
// becomes a no-op instead of racing teardown.
func (d *delayQueue) after(delay time.Duration, fn func()) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return false
	}
	if d.timers == nil {
		d.timers = make(map[uint64]*time.Timer)
	}
	d.wg.Add(1)
	id := d.nextID
	d.nextID++
	// The callback acquires mu before looking itself up, and we hold mu
	// until the map entry exists, so even an immediately firing timer
	// observes its own registration.
	d.timers[id] = time.AfterFunc(delay, func() {
		defer d.wg.Done()
		d.mu.Lock()
		_, live := d.timers[id]
		delete(d.timers, id)
		stopped := d.stopped
		d.mu.Unlock()
		if live && !stopped {
			fn()
		} else {
			d.dispose()
		}
	})
	return true
}

// drain stops the queue: no new timers are accepted, every cancelable timer
// is canceled, and drain blocks until callbacks that were already firing
// have returned.
func (d *delayQueue) drain() {
	d.mu.Lock()
	d.stopped = true
	cancelled := 0
	for id, t := range d.timers {
		if t.Stop() {
			delete(d.timers, id)
			d.wg.Done()
			cancelled++
		}
	}
	d.mu.Unlock()
	for i := 0; i < cancelled; i++ {
		d.dispose()
	}
	d.wg.Wait()
}

// meshLink is one directed worker-to-worker connection, owned by the
// sending worker. Writes are whole prebuilt frames under mu; lastSeq is the
// newest sequence number delivered on this link (only the owner's frames
// travel on it, so one scalar suffices).
//
// pending is the link's one-frame outbox: the compute goroutine publishes
// each undelayed frame there and the sender goroutine swaps it out to
// write. Publishing over a frame the sender has not yet taken supersedes it
// before it ever touches the wire — newest-wins, the same discipline the
// link filter applies after delays, so a compute loop that outruns the
// socket sheds exactly the frames whose values are already stale instead of
// queueing them.
type meshLink struct {
	conn    net.Conn
	mu      sync.Mutex
	lastSeq uint64
	bytes   atomic.Int64
	pending atomic.Pointer[queuedFrame]
}

// queuedFrame is one undelayed frame awaiting the worker's sender
// goroutine.
type queuedFrame struct {
	seq   uint64
	frame []byte
}

// mesh is one worker's half of the data plane: p-1 outbound links it owns,
// p-1 inbound connections it accepted (read by reader goroutines into the
// worker's inbox), and the sender-side fault/filter state.
type mesh struct {
	id, p int
	out   []*meshLink // indexed by destination worker; nil at id
	in    []net.Conn  // accepted inbound connections

	// rng draws the fault decisions; it is touched only by the compute
	// goroutine (inside send), preserving the per-source decision order the
	// star relay uses.
	fault Fault
	rng   *rand.Rand
	hold  time.Duration

	delays    delayQueue
	notify    chan struct{} // doorbell: some link has a pending frame
	senders   sync.WaitGroup
	flushOnce sync.Once

	// dropped counts injection drops, reordered/duplicate the link-filter
	// discards; all three are drained messages for the termination
	// protocol. They are atomics because delayed deliveries and sender
	// goroutines bump them while the compute goroutine composes status
	// frames.
	dropped, reordered, duplicate atomic.Int64
}

// linkRNGSeed derives the fault RNG seed for frames originating at worker
// from — one stream per source, shared by the star relay and the mesh
// sender so the two topologies draw identical decision sequences.
func linkRNGSeed(seed uint64, from int) int64 {
	return int64(seed) + int64(from)*7919
}

// reorderHoldFor is the extra delay a reorder-injected frame is held for:
// long enough that frames sent after it on the same link overtake it.
func reorderHoldFor(f Fault) time.Duration {
	if hold := 4 * f.MaxDelay; hold > 0 {
		return hold
	}
	return defaultReorderHold
}

// decide draws the injection decision for one (frame, destination) pair in
// the canonical order — drop draw, transit-delay draw, reorder-hold draw,
// with reliable frames exempt from drop and hold. This order IS the
// cross-topology comparability contract: the star relay and the mesh
// sender both call this one function with the same per-source RNG streams,
// so identical seeds inject identical fault sequences on either data
// plane.
func (f Fault) decide(rng *rand.Rand, hold time.Duration, reliable bool) (drop bool, delay time.Duration) {
	if !reliable && f.DropProb > 0 && rng.Float64() < f.DropProb {
		return true, 0
	}
	if f.MaxDelay > 0 {
		delay = time.Duration(rng.Int63n(int64(f.MaxDelay) + 1))
	}
	if !reliable && f.ReorderProb > 0 && rng.Float64() < f.ReorderProb {
		delay += hold
	}
	return false, delay
}

// dialMesh establishes the full data plane for one worker: listen (already
// bound by the caller), report nothing — the peer table is already known —
// dial every peer, and accept every peer's dial. It returns only when all
// 2(p-1) connections exist, so no frame can ever race a missing link.
func dialMesh(id, p int, ln net.Listener, peers []string, fault Fault, deadline time.Time) (*mesh, error) {
	m := &mesh{
		id:    id,
		p:     p,
		out:   make([]*meshLink, p),
		fault: fault,
		rng:   rand.New(rand.NewSource(linkRNGSeed(fault.Seed, id))),
		hold:  reorderHoldFor(fault),
	}
	// A delayed frame cancelled or skipped at teardown was counted sent and
	// can never be delivered: account it as drained so the transport
	// counters stay as close to balanced as a torn-down run allows.
	m.delays.onDispose = func() { m.dropped.Add(1) }

	// Accept the p-1 inbound connections concurrently with our own dials
	// (every worker dials everyone else, so serial accept+dial would
	// deadlock), and handle every connection's handshake on its own
	// goroutine: with p workers each opening p-1 links at once, any
	// blocking step in the accept loop chains scheduling stalls across the
	// whole rendezvous.
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, p-1)
	//repro:join-ok joined by ln.Close below: the pending Accept errors out and the loop exits
	go func() {
		for i := 0; i < p-1; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{nil, err}
				return
			}
			//repro:join-ok bounded by conn.SetDeadline: the handshake read unblocks at the rendezvous deadline and acceptCh has room for every send
			go func() {
				conn.SetDeadline(deadline)
				typ, payload, err := readFrame(conn, maxFramePayload)
				if err != nil || typ != msgMeshHello {
					conn.Close()
					acceptCh <- accepted{nil, fmt.Errorf("dist: worker %d mesh accept handshake: %v", id, err)}
					return
				}
				cur := cursor{b: payload}
				from := int(cur.u32())
				if cur.err != nil || from < 0 || from >= p || from == id {
					conn.Close()
					acceptCh <- accepted{nil, fmt.Errorf("dist: worker %d mesh accept from invalid peer %d", id, from)}
					return
				}
				acceptCh <- accepted{conn, nil}
			}()
		}
	}()

	type dialed struct {
		q    int
		link *meshLink
		err  error
	}
	dialCh := make(chan dialed, p-1)
	for q := 0; q < p; q++ {
		if q == id {
			continue
		}
		//repro:join-ok joined by the dialCh drain below, which always receives all p-1 results; DialTimeout and the conn deadline bound every blocking step
		go func(q int) {
			conn, err := net.DialTimeout("tcp", peers[q], time.Until(deadline))
			if err != nil {
				dialCh <- dialed{q, nil, fmt.Errorf("dist: worker %d dial peer %d (%s): %w", id, q, peers[q], err)}
				return
			}
			conn.SetDeadline(deadline)
			if _, err := conn.Write(buildFrame(msgMeshHello, appendU32(nil, uint32(id)))); err != nil {
				conn.Close()
				dialCh <- dialed{q, nil, fmt.Errorf("dist: worker %d mesh hello to peer %d: %w", id, q, err)}
				return
			}
			dialCh <- dialed{q, &meshLink{conn: conn}, nil}
		}(q)
	}

	var firstErr error
	for got := 0; got < p-1; got++ {
		d := <-dialCh
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		m.out[d.q] = d.link
	}
	for got := 0; len(m.in) < p-1 && firstErr == nil; got++ {
		a := <-acceptCh
		if a.err != nil {
			firstErr = a.err
			break
		}
		m.in = append(m.in, a.conn)
	}
	ln.Close() // every inbound connection exists (or the rendezvous failed)
	if firstErr != nil {
		m.closeOut()
		for _, c := range m.in {
			c.Close()
		}
		return nil, firstErr
	}

	// One sender goroutine per worker drains the link outboxes, so the
	// compute goroutine never waits on a socket and a burst of fan-out
	// frames is written in one scheduling quantum — the same batching the
	// star coordinator's relay gets from its per-link reader goroutine.
	// The store-then-ring / receive-then-scan pairing makes missed
	// wakeups impossible.
	m.notify = make(chan struct{}, 1)
	m.senders.Add(1)
	go func() {
		defer m.senders.Done()
		for range m.notify {
			for _, l := range m.out {
				if l == nil {
					continue
				}
				if qf := l.pending.Swap(nil); qf != nil {
					m.deliver(l, qf.seq, qf.frame)
				}
			}
		}
	}()
	return m, nil
}

// send fans one prebuilt shard frame out to every peer, drawing the fault
// decisions in destination order from the per-source RNG. It runs on the
// compute goroutine; only delayed deliveries escape to timer callbacks.
func (m *mesh) send(seq uint64, frame []byte, reliable bool) {
	for q := 0; q < m.p; q++ {
		if q == m.id {
			continue
		}
		l := m.out[q]
		drop, delay := m.fault.decide(m.rng, m.hold, reliable)
		if drop {
			m.dropped.Add(1)
			continue
		}
		if delay > 0 {
			if !m.delays.after(delay, func() { m.deliver(l, seq, frame) }) {
				// Teardown already began: the run is stopping, no probe
				// round will look again, but the frame was counted sent —
				// account the disposal.
				m.dropped.Add(1)
			}
			continue
		}
		if reliable {
			// Reliable finals are rare and must not be lost to queue
			// overflow: write them directly (the link mutex serializes
			// with the sender goroutine, and any queued lower-sequence
			// frame the final overtakes is then link-filtered).
			m.deliver(l, seq, frame)
			continue
		}
		if prev := l.pending.Swap(&queuedFrame{seq, frame}); prev != nil {
			// The sender had not yet taken the previous frame: it is
			// superseded before ever touching the wire.
			m.reordered.Add(1)
		}
		select {
		case m.notify <- struct{}{}:
		default:
		}
	}
}

// deliver writes one frame to a link unless a later-sequenced frame already
// went out on it — the sender-side sequence filter. A superseded or
// duplicate frame is discarded here, never written, so the receiver cannot
// double-count it and the bandwidth is never spent.
func (m *mesh) deliver(l *meshLink, seq uint64, frame []byte) {
	l.mu.Lock()
	if seq <= l.lastSeq {
		newest := l.lastSeq
		l.mu.Unlock()
		if seq < newest {
			m.reordered.Add(1)
		} else {
			m.duplicate.Add(1)
		}
		return
	}
	l.lastSeq = seq
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		l.bytes.Add(int64(len(frame)))
		return
	}
	// A failed mesh write is a lost frame. Peers legitimately close their
	// sockets once the coordinator stops them — which can land before our
	// own stop — so the loss is accounted as a drop (keeping the in-flight
	// count drainable) rather than surfaced as an error.
	m.dropped.Add(1)
}

// drained is the total number of frames this sender disposed of without
// delivering: injection drops, link-filtered reordered frames and
// duplicates. The termination probes subtract it from in-flight.
func (m *mesh) drained() uint64 {
	return uint64(m.dropped.Load()) + uint64(m.reordered.Load()) + uint64(m.duplicate.Load())
}

// flush quiesces the outbound side: cancel pending delayed sends (waiting
// out callbacks already firing), then let every sender goroutine finish its
// queue and exit. After flush the drain counters and per-link byte totals
// are final. It is safe to call more than once; the compute goroutine must
// have stopped sending first.
func (m *mesh) flush() {
	m.flushOnce.Do(func() {
		m.delays.drain()
		if m.notify != nil {
			close(m.notify)
		}
		m.senders.Wait()
		// The run is over; any frame still sitting in an outbox is
		// discarded (and accounted, keeping sent = delivered + drained
		// exact) rather than written to peers that are tearing down too.
		for _, l := range m.out {
			if l != nil && l.pending.Swap(nil) != nil {
				m.dropped.Add(1)
			}
		}
	})
}

// shutdown flushes the outbound side and only then closes every connection
// — the ordering that keeps delayed and queued deliveries from writing to
// closing conns.
func (m *mesh) shutdown() {
	m.flush()
	m.closeOut()
	for _, c := range m.in {
		c.Close()
	}
}

func (m *mesh) closeOut() {
	for _, l := range m.out {
		if l != nil {
			l.conn.Close()
		}
	}
}

// linkBytes returns the per-destination data-plane byte counters (index =
// destination worker; zero at the sender's own slot).
func (m *mesh) linkBytes() []uint64 {
	out := make([]uint64, m.p)
	for q, l := range m.out {
		if l != nil {
			out[q] = uint64(l.bytes.Load())
		}
	}
	return out
}

// meshListener binds the listener a worker will accept peer connections on.
// It listens on the same interface the worker used to reach the coordinator
// so the advertised address is routable for every peer in a multi-process
// deployment.
func meshListener(coordConn net.Conn) (net.Listener, error) {
	host, _, err := net.SplitHostPort(coordConn.LocalAddr().String())
	if err != nil {
		return nil, fmt.Errorf("dist: mesh listener address: %w", err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("dist: mesh listener: %w", err)
	}
	return ln, nil
}
