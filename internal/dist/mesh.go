package dist

// The mesh data plane: direct worker-to-worker TCP links over which shard
// frames travel without passing through the coordinator. Rendezvous runs on
// the control plane — every worker opens a listener, reports its address to
// the coordinator, and receives the full peer table back; worker i then
// dials every peer j != i, so each directed pair (i, j) has a dedicated
// connection owned by the sender.
//
// Because the sender owns the link, fault injection (drop, reorder hold,
// transit delay) and per-source sequence filtering both run on the sending
// side: the same decisions the star coordinator's relay takes, drawn from
// the same per-source RNG stream (seed + source*7919, destinations visited
// in worker order), so star and mesh runs with identical seeds inject the
// same per-(frame, destination) faults. A frame that a later-sequenced
// frame has already overtaken on its link is discarded at the link — never
// written — and counted reordered (seq below newest) or duplicate (seq
// equal); discards and drops feed the drained counter the termination
// probes subtract from in-flight.
//
// Under elastic membership the mesh additionally survives churn: every
// frame is fenced to the membership generation it was sent in, a frame of
// an older generation is silently disposed wherever it surfaces (outbox,
// delay timer, delivery), the listener stays open so peers that rejoin can
// redial, and updatePeers swaps individual links to follow the
// coordinator's re-issued peer table ("" marks a dead slot).

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// delayQueue tracks time.AfterFunc-scheduled frame deliveries so teardown
// can cancel every pending timer and wait out callbacks already firing
// before any connection is closed — a delayed delivery can then never write
// to a conn that teardown is closing. onDispose, when set, is called once
// for every scheduled delivery that is cancelled or skipped instead of run,
// so the owner can account the frame as drained (a cancelled frame was
// counted sent and will never be delivered).
type delayQueue struct {
	mu        sync.Mutex
	stopped   bool
	nextID    uint64
	timers    map[uint64]*time.Timer
	wg        sync.WaitGroup
	onDispose func()
}

func (d *delayQueue) dispose() {
	if d.onDispose != nil {
		d.onDispose()
	}
}

// after schedules fn to run once after delay; it reports false (and does
// not schedule) when the queue has already been drained. The callback
// re-checks the stopped flag, so a timer that drain could not cancel
// becomes a no-op instead of racing teardown.
func (d *delayQueue) after(delay time.Duration, fn func()) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return false
	}
	if d.timers == nil {
		d.timers = make(map[uint64]*time.Timer)
	}
	d.wg.Add(1)
	id := d.nextID
	d.nextID++
	// The callback acquires mu before looking itself up, and we hold mu
	// until the map entry exists, so even an immediately firing timer
	// observes its own registration.
	d.timers[id] = time.AfterFunc(delay, func() {
		defer d.wg.Done()
		d.mu.Lock()
		_, live := d.timers[id]
		delete(d.timers, id)
		stopped := d.stopped
		d.mu.Unlock()
		if live && !stopped {
			fn()
		} else {
			d.dispose()
		}
	})
	return true
}

// drain stops the queue: no new timers are accepted, every cancelable timer
// is canceled, and drain blocks until callbacks that were already firing
// have returned.
func (d *delayQueue) drain() {
	d.mu.Lock()
	d.stopped = true
	cancelled := 0
	for id, t := range d.timers {
		if t.Stop() {
			delete(d.timers, id)
			d.wg.Done()
			cancelled++
		}
	}
	d.mu.Unlock()
	for i := 0; i < cancelled; i++ {
		d.dispose()
	}
	d.wg.Wait()
}

// meshLink is one directed worker-to-worker connection, owned by the
// sending worker. Writes are whole prebuilt frames under mu; lastSeq is the
// newest sequence number delivered on this link within generation seqGen
// (sequence streams restart at every re-shard, so the filter state is
// lazily reset when the first frame of a newer generation arrives — an
// older-generation frame can never reach the filter, the generation fence
// discards it first).
//
// pending is the link's one-frame outbox: the compute goroutine publishes
// each undelayed frame there and the sender goroutine swaps it out to
// write. Publishing over a frame the sender has not yet taken supersedes it
// before it ever touches the wire — newest-wins, the same discipline the
// link filter applies after delays, so a compute loop that outruns the
// socket sheds exactly the frames whose values are already stale instead of
// queueing them.
type meshLink struct {
	q       int // destination worker
	addr    string
	conn    net.Conn
	mu      sync.Mutex
	lastSeq uint64
	seqGen  uint32
	pending atomic.Pointer[queuedFrame]
}

// queuedFrame is one undelayed frame awaiting the worker's sender
// goroutine.
type queuedFrame struct {
	seq   uint64
	gen   uint32
	frame []byte
}

// mesh is one worker's half of the data plane: up to p-1 outbound links it
// owns, the inbound connections it accepted (read by reader goroutines into
// the worker's inbox), and the sender-side fault/filter state.
type mesh struct {
	id, p int
	// out is indexed by destination worker (nil at id and at dead slots).
	// Entries are atomic pointers because the compute goroutine swaps links
	// at a re-shard while the sender goroutine walks them.
	out []atomic.Pointer[meshLink]

	// inMu guards the inbound connection list shared by the rendezvous, the
	// elastic accept loop and shutdown; inClosed makes a late accept lose
	// the race with teardown cleanly.
	inMu     sync.Mutex
	in       []net.Conn
	inClosed bool

	// ln, under elastic membership, stays open after rendezvous so peers
	// that rejoin can redial us; accepts joins the accept goroutines.
	ln       net.Listener
	accepts  sync.WaitGroup
	deadline time.Time

	// rng draws the fault decisions; it is touched only by the compute
	// goroutine (inside send), preserving the per-source decision order the
	// star relay uses.
	fault Fault
	rng   *rand.Rand
	hold  time.Duration

	delays    delayQueue
	notify    chan struct{} // doorbell: some link has a pending frame
	senders   sync.WaitGroup
	flushOnce sync.Once

	// genMu guards gen and the reset of the generation-scoped counters: a
	// bump taken under RLock after re-confirming the frame's generation
	// either lands before a re-shard's reset (and is wiped with the rest of
	// the old generation) or observes the new generation and skips itself.
	genMu sync.RWMutex
	gen   uint32

	// dropped counts injection drops, reordered/duplicate the link-filter
	// discards. The gen- prefixed set is what the termination probes see:
	// it is zeroed at each re-shard, mirroring the worker's sent/delivered
	// reset, so in-flight accounting never mixes generations. The unprefixed
	// set is cumulative for the final report; with no churn the two are
	// identical. They are atomics because delayed deliveries and sender
	// goroutines bump them while the compute goroutine composes status
	// frames.
	dropped, reordered, duplicate          atomic.Int64
	genDropped, genReordered, genDuplicate atomic.Int64

	// bytesTo counts data-plane wire bytes per destination; it lives on the
	// mesh rather than the link so the totals survive link replacement.
	bytesTo []atomic.Int64
}

// linkRNGSeed derives the fault RNG seed for frames originating at worker
// from — one stream per source, shared by the star relay and the mesh
// sender so the two topologies draw identical decision sequences.
func linkRNGSeed(seed uint64, from int) int64 {
	return int64(seed) + int64(from)*7919
}

// reorderHoldFor is the extra delay a reorder-injected frame is held for:
// long enough that frames sent after it on the same link overtake it.
func reorderHoldFor(f Fault) time.Duration {
	if hold := 4 * f.MaxDelay; hold > 0 {
		return hold
	}
	return defaultReorderHold
}

// decide draws the injection decision for one (frame, destination) pair in
// the canonical order — drop draw, transit-delay draw, reorder-hold draw,
// with reliable frames exempt from drop and hold. This order IS the
// cross-topology comparability contract: the star relay and the mesh
// sender both call this one function with the same per-source RNG streams,
// so identical seeds inject identical fault sequences on either data
// plane. The decision is drawn even for a currently-dead destination, so
// churn never desynchronizes the per-source streams.
func (f Fault) decide(rng *rand.Rand, hold time.Duration, reliable bool) (drop bool, delay time.Duration) {
	if !reliable && f.DropProb > 0 && rng.Float64() < f.DropProb {
		return true, 0
	}
	if f.MaxDelay > 0 {
		delay = time.Duration(rng.Int63n(int64(f.MaxDelay) + 1))
	}
	if !reliable && f.ReorderProb > 0 && rng.Float64() < f.ReorderProb {
		delay += hold
	}
	return false, delay
}

// newMesh builds the sender-side state and starts the sender goroutine; the
// caller (dialMesh for a rendezvous worker, runWorker for a rejoiner whose
// links arrive only with its first assign) fills in the links.
func newMesh(id, p int, fault Fault, gen uint32, deadline time.Time) *mesh {
	m := &mesh{
		id:       id,
		p:        p,
		out:      make([]atomic.Pointer[meshLink], p),
		bytesTo:  make([]atomic.Int64, p),
		fault:    fault,
		rng:      rand.New(rand.NewSource(linkRNGSeed(fault.Seed, id))),
		hold:     reorderHoldFor(fault),
		gen:      gen,
		deadline: deadline,
	}
	// A delayed frame cancelled or skipped at teardown was counted sent and
	// can never be delivered: account it as drained so the transport
	// counters stay as close to balanced as a torn-down run allows.
	m.delays.onDispose = func() {
		m.dropped.Add(1)
		m.genDropped.Add(1)
	}

	// One sender goroutine per worker drains the link outboxes, so the
	// compute goroutine never waits on a socket and a burst of fan-out
	// frames is written in one scheduling quantum — the same batching the
	// star coordinator's relay gets from its per-link reader goroutine.
	// The store-then-ring / receive-then-scan pairing makes missed
	// wakeups impossible.
	m.notify = make(chan struct{}, 1)
	m.senders.Add(1)
	go func() {
		defer m.senders.Done()
		for range m.notify {
			for q := range m.out {
				l := m.out[q].Load()
				if l == nil {
					continue
				}
				if qf := l.pending.Swap(nil); qf != nil {
					m.deliver(l, qf.seq, qf.gen, qf.frame)
				}
			}
		}
	}()
	return m
}

// dialMesh establishes the full data plane for one worker: listen (already
// bound by the caller), report nothing — the peer table is already known —
// dial every peer, and accept every peer's dial. It returns only when all
// 2(p-1) connections exist, so no frame can ever race a missing link. When
// keepListener is set (elastic membership) the listener is left open for
// rejoining peers to redial; the caller must then start serveAccepts.
func dialMesh(id, p int, ln net.Listener, peers []string, fault Fault, gen uint32, deadline time.Time, keepListener bool) (*mesh, error) {
	m := newMesh(id, p, fault, gen, deadline)

	// Accept the p-1 inbound connections concurrently with our own dials
	// (every worker dials everyone else, so serial accept+dial would
	// deadlock), and handle every connection's handshake on its own
	// goroutine: with p workers each opening p-1 links at once, any
	// blocking step in the accept loop chains scheduling stalls across the
	// whole rendezvous.
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, p-1)
	//repro:join-ok joined by the rendezvous drain below (or ln.Close for elastic runs, where serveAccepts takes the listener over)
	go func() {
		for i := 0; i < p-1; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{nil, err}
				return
			}
			//repro:join-ok bounded by conn.SetDeadline: the handshake read unblocks at the rendezvous deadline and acceptCh has room for every send
			go func() {
				conn.SetDeadline(deadline)
				typ, payload, err := readFrame(conn, maxFramePayload)
				if err != nil || typ != msgMeshHello {
					conn.Close()
					acceptCh <- accepted{nil, fmt.Errorf("dist: worker %d mesh accept handshake: %v", id, err)}
					return
				}
				cur := cursor{b: payload}
				from := int(cur.u32())
				if cur.err != nil || from < 0 || from >= p || from == id {
					conn.Close()
					acceptCh <- accepted{nil, fmt.Errorf("dist: worker %d mesh accept from invalid peer %d", id, from)}
					return
				}
				acceptCh <- accepted{conn, nil}
			}()
		}
	}()

	type dialed struct {
		q    int
		link *meshLink
		err  error
	}
	dialCh := make(chan dialed, p-1)
	for q := 0; q < p; q++ {
		if q == id {
			continue
		}
		//repro:join-ok joined by the dialCh drain below, which always receives all p-1 results; DialTimeout and the conn deadline bound every blocking step
		go func(q int) {
			l, err := dialPeer(id, q, peers[q], deadline)
			dialCh <- dialed{q, l, err}
		}(q)
	}

	var firstErr error
	for got := 0; got < p-1; got++ {
		d := <-dialCh
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		m.out[d.q].Store(d.link)
	}
	for len(m.in) < p-1 && firstErr == nil {
		a := <-acceptCh
		if a.err != nil {
			firstErr = a.err
			break
		}
		m.in = append(m.in, a.conn)
	}
	if keepListener && firstErr == nil {
		m.ln = ln
	} else {
		ln.Close() // every inbound connection exists (or the rendezvous failed)
	}
	if firstErr != nil {
		m.shutdown()
		return nil, firstErr
	}
	return m, nil
}

// dialPeer opens one directed link to peer q and performs the mesh hello.
func dialPeer(id, q int, addr string, deadline time.Time) (*meshLink, error) {
	timeout := dialTimeout
	if until := time.Until(deadline); until < timeout {
		timeout = until
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d dial peer %d (%s): %w", id, q, addr, err)
	}
	conn.SetDeadline(deadline)
	if _, err := conn.Write(buildFrame(msgMeshHello, appendU32(nil, uint32(id)))); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: worker %d mesh hello to peer %d: %w", id, q, err)
	}
	return &meshLink{q: q, addr: addr, conn: conn}, nil
}

// serveAccepts keeps accepting peer dials after rendezvous — the elastic
// half of the data plane: a peer that rejoined (or re-sharded onto a fresh
// link) redials us, and spawn wires the handshaken connection into the
// worker's reader set. It returns when the listener closes (shutdown).
func (m *mesh) serveAccepts(spawn func(net.Conn)) {
	m.accepts.Add(1)
	//repro:join-ok joined by accepts.Wait in shutdown after the listener closes
	go func() {
		defer m.accepts.Done()
		for {
			conn, err := m.ln.Accept()
			if err != nil {
				return
			}
			m.inMu.Lock()
			if m.inClosed {
				m.inMu.Unlock()
				conn.Close()
				return
			}
			m.in = append(m.in, conn)
			m.inMu.Unlock()
			m.accepts.Add(1)
			//repro:join-ok joined by accepts.Wait in shutdown; the handshake read is bounded by the short conn deadline set first
			go func() {
				defer m.accepts.Done()
				conn.SetDeadline(time.Now().Add(dialTimeout))
				typ, payload, err := readFrame(conn, maxFramePayload)
				if err != nil || typ != msgMeshHello {
					conn.Close()
					return
				}
				cur := cursor{b: payload}
				from := int(cur.u32())
				if cur.err != nil || from < 0 || from >= m.p || from == m.id {
					conn.Close()
					return
				}
				conn.SetDeadline(m.deadline)
				spawn(conn)
			}()
		}
	}()
}

// updatePeers follows a re-issued peer table: links to unchanged addresses
// are kept (their sequence filters reset lazily via the generation fence),
// dead slots ("") are closed, and changed or new addresses are redialed. A
// failed redial leaves a nil link — frames to that slot are accounted as
// drops until the next re-shard fixes the table. Runs on the compute
// goroutine.
func (m *mesh) updatePeers(addrs []string) {
	for q := 0; q < m.p && q < len(addrs); q++ {
		if q == m.id {
			continue
		}
		cur := m.out[q].Load()
		want := addrs[q]
		if cur != nil && cur.addr == want {
			continue
		}
		var next *meshLink
		if want != "" {
			if l, err := dialPeer(m.id, q, want, m.deadline); err == nil {
				next = l
			}
		}
		m.out[q].Store(next)
		if cur != nil {
			cur.conn.Close()
			if cur.pending.Swap(nil) != nil {
				m.dropped.Add(1) // a pre-reshard frame; its send was already erased
			}
		}
	}
}

// send fans one prebuilt shard frame out to every peer, drawing the fault
// decisions in destination order from the per-source RNG. It runs on the
// compute goroutine; only delayed deliveries escape to timer callbacks.
func (m *mesh) send(seq uint64, gen uint32, frame []byte, reliable bool) {
	for q := 0; q < m.p; q++ {
		if q == m.id {
			continue
		}
		l := m.out[q].Load()
		drop, delay := m.fault.decide(m.rng, m.hold, reliable)
		if drop {
			m.accountDiscard(gen, &m.dropped, &m.genDropped)
			continue
		}
		if l == nil {
			// Dead slot: the frame was counted sent, nobody can receive it.
			m.accountDiscard(gen, &m.dropped, &m.genDropped)
			continue
		}
		if delay > 0 {
			if !m.delays.after(delay, func() { m.deliver(l, seq, gen, frame) }) {
				// Teardown already began: the run is stopping, no probe
				// round will look again, but the frame was counted sent —
				// account the disposal.
				m.accountDiscard(gen, &m.dropped, &m.genDropped)
			}
			continue
		}
		if reliable {
			// Reliable finals are rare and must not be lost to queue
			// overflow: write them directly (the link mutex serializes
			// with the sender goroutine, and any queued lower-sequence
			// frame the final overtakes is then link-filtered).
			m.deliver(l, seq, gen, frame)
			continue
		}
		if prev := l.pending.Swap(&queuedFrame{seq, gen, frame}); prev != nil {
			// The sender had not yet taken the previous frame: it is
			// superseded before ever touching the wire.
			m.accountDiscard(gen, &m.reordered, &m.genReordered)
		}
		select {
		case m.notify <- struct{}{}:
		default:
		}
	}
}

// accountDiscard accounts one disposed frame: always on the cumulative
// counter, and on the generation-scoped counter only while the frame's
// generation is still current — a frame from before a re-shard had its send
// erased from the in-flight books, so counting its disposal would push
// in-flight negative and stall termination. Taken under genMu so a bump can
// never land after the re-shard's counter reset it belongs before.
func (m *mesh) accountDiscard(gen uint32, cum, genCtr *atomic.Int64) {
	cum.Add(1)
	m.genMu.RLock()
	if gen == m.gen {
		genCtr.Add(1)
	}
	m.genMu.RUnlock()
}

// deliver writes one frame to a link unless the frame predates the current
// membership generation (silently disposed — its send was erased at the
// re-shard) or a later-sequenced frame already went out on the link — the
// sender-side sequence filter. A superseded or duplicate frame is discarded
// here, never written, so the receiver cannot double-count it and the
// bandwidth is never spent.
func (m *mesh) deliver(l *meshLink, seq uint64, gen uint32, frame []byte) {
	m.genMu.RLock()
	current := gen == m.gen
	m.genMu.RUnlock()
	if !current {
		m.dropped.Add(1)
		return
	}
	l.mu.Lock()
	if l.seqGen != gen {
		l.lastSeq = 0
		l.seqGen = gen
	}
	if seq <= l.lastSeq {
		newest := l.lastSeq
		l.mu.Unlock()
		if seq < newest {
			m.accountDiscard(gen, &m.reordered, &m.genReordered)
		} else {
			m.accountDiscard(gen, &m.duplicate, &m.genDuplicate)
		}
		return
	}
	l.lastSeq = seq
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		m.bytesTo[l.q].Add(int64(len(frame)))
		return
	}
	// A failed mesh write is a lost frame. Peers legitimately close their
	// sockets once the coordinator stops them — which can land before our
	// own stop — so the loss is accounted as a drop (keeping the in-flight
	// count drainable) rather than surfaced as an error.
	m.accountDiscard(gen, &m.dropped, &m.genDropped)
}

// pauseForGen enters membership generation gen: everything still in flight
// from the old generation (outbox frames, delay timers, frames mid-deliver)
// self-discards against the fence without touching the generation-scoped
// counters, which restart at zero alongside the worker's sent/delivered.
// Runs on the compute goroutine while it is paused between reshard and
// assign, so no new frame can race the reset.
func (m *mesh) pauseForGen(gen uint32) {
	m.genMu.Lock()
	m.gen = gen
	m.genDropped.Store(0)
	m.genReordered.Store(0)
	m.genDuplicate.Store(0)
	m.genMu.Unlock()
}

// drained is the number of frames this sender disposed of without
// delivering in the current membership generation: injection drops,
// link-filtered reordered frames and duplicates. The termination probes
// subtract it from in-flight.
func (m *mesh) drained() uint64 {
	return uint64(m.genDropped.Load()) + uint64(m.genReordered.Load()) + uint64(m.genDuplicate.Load())
}

// flush quiesces the outbound side: cancel pending delayed sends (waiting
// out callbacks already firing), then let every sender goroutine finish its
// queue and exit. After flush the drain counters and per-link byte totals
// are final. It is safe to call more than once; the compute goroutine must
// have stopped sending first.
func (m *mesh) flush() {
	m.flushOnce.Do(func() {
		m.delays.drain()
		if m.notify != nil {
			close(m.notify)
		}
		m.senders.Wait()
		// The run is over; any frame still sitting in an outbox is
		// discarded (and accounted, keeping sent = delivered + drained
		// exact) rather than written to peers that are tearing down too.
		for q := range m.out {
			if l := m.out[q].Load(); l != nil && l.pending.Swap(nil) != nil {
				m.dropped.Add(1)
				m.genDropped.Add(1)
			}
		}
	})
}

// shutdown flushes the outbound side and only then closes every connection
// — the ordering that keeps delayed and queued deliveries from writing to
// closing conns. The elastic listener closes first so no new inbound
// connection can be accepted while the rest tears down.
func (m *mesh) shutdown() {
	m.flush()
	if m.ln != nil {
		m.ln.Close()
	}
	m.inMu.Lock()
	m.inClosed = true
	in := m.in
	m.in = nil
	m.inMu.Unlock()
	for _, c := range in {
		c.Close() // unblocks any handshake read before we join the acceptors
	}
	m.accepts.Wait()
	m.closeOut()
}

func (m *mesh) closeOut() {
	for q := range m.out {
		if l := m.out[q].Load(); l != nil {
			l.conn.Close()
		}
	}
}

// linkBytes returns the per-destination data-plane byte counters (index =
// destination worker; zero at the sender's own slot).
func (m *mesh) linkBytes() []uint64 {
	out := make([]uint64, m.p)
	for q := range m.bytesTo {
		out[q] = uint64(m.bytesTo[q].Load())
	}
	return out
}

// meshListener binds the listener a worker will accept peer connections on.
// It listens on the same interface the worker used to reach the coordinator
// so the advertised address is routable for every peer in a multi-process
// deployment.
func meshListener(coordConn net.Conn) (net.Listener, error) {
	host, _, err := net.SplitHostPort(coordConn.LocalAddr().String())
	if err != nil {
		return nil, fmt.Errorf("dist: mesh listener address: %w", err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("dist: mesh listener: %w", err)
	}
	return ln, nil
}
