package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/vec"
)

// probeInterval paces the coordinator's termination probe rounds.
const probeInterval = 500 * time.Microsecond

// probeRoundTimeout bounds one probe round (and one reshard-barrier ack
// collection); a worker that cannot answer in time simply fails the round
// (it is retried), it does not fail the run.
const probeRoundTimeout = 2 * time.Second

// defaultReorderHold is the extra delay a reorder-injected block is held
// for when Fault.MaxDelay does not imply one (4x MaxDelay otherwise): long
// enough that blocks sent after it on the same link overtake it.
const defaultReorderHold = 800 * time.Microsecond

// ServerConfig configures the coordinator half of a distributed run.
type ServerConfig struct {
	// Listener accepts the worker connections; Serve closes it when the
	// run ends. Workers must know its address out of band. Under elastic
	// membership it stays open for the whole run so lost workers can
	// rejoin.
	Listener net.Listener
	// Workers is the number of worker connections to wait for. The
	// caller partitions the problem, so it must already be clamped to the
	// dimension.
	Workers int
	// Topology selects the data plane (TopologyStar default, TopologyMesh
	// for direct worker-to-worker links).
	Topology string
	// N is the problem dimension; X0 the initial iterate (defaults zero).
	N  int
	X0 []float64
	// Tol, SweepsBelowTol and MaxUpdatesPerWorker are forwarded to the
	// workers in the welcome frame (see runtime.Config for semantics).
	Tol                 float64
	SweepsBelowTol      int
	MaxUpdatesPerWorker int
	// DeltaThreshold enables flexible communication (see Config).
	DeltaThreshold float64
	// Fault is the per-link fault injection (applied by the coordinator's
	// relay in star, by the sending side of every mesh link in mesh).
	Fault Fault
	// Elastic configures elastic membership (see Elastic); the zero value
	// keeps the rigid pre-v3 behavior where any lost link fails the run.
	Elastic Elastic
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
}

// link is one worker connection from the coordinator's side. Writes are
// whole prebuilt frames under mu, so concurrent relays, probes and the
// stop broadcast never interleave bytes. lastSeq and bytesFrom are indexed
// by source worker: the newest sequence delivered on this link within
// membership generation seqGen (the filter state resets lazily when the
// first frame of a newer generation arrives — older-generation frames
// never reach the filter, the generation fence discards them first) and
// the data-plane bytes relayed onto it (star topology only).
type link struct {
	conn      net.Conn
	mu        sync.Mutex
	lastSeq   []uint64
	seqGen    uint32
	bytesFrom []int64
}

type status struct {
	worker          int
	probeID         uint64
	passive, done   bool
	gen             uint32
	epoch           uint64
	sent, delivered uint64
	drained         uint64
}

type reshardAck struct {
	worker int
	gen    uint32
	lo     int
	vals   []float64
}

type final struct {
	worker                 int
	lo                     int
	vals                   []float64
	updates                int
	sent, delivered, stale uint64
	dropped                uint64
	reordered, duplicate   uint64
	linkBytes              []uint64
	// lost marks a synthesized final for a worker whose link died after
	// stop: its shard stays at the coordinator's last checkpointed values.
	lost bool
}

type coordinator struct {
	cfg ServerConfig

	// mu guards the membership view: which slots are alive, their links,
	// mesh addresses, shard table, generation, done bits and the churn
	// counters. Fixed slot count (cfg.Workers); a lost slot is freed for a
	// rejoiner to claim.
	mu       sync.RWMutex
	links    []*link
	alive    []bool
	reserved []bool // slot handed to a rejoin handshake in progress
	addrs    []string
	blocks   [][2]int
	gen      uint32
	lastDone []bool
	// workersLost / workersRejoined / resharding are the churn counters
	// surfaced in Result.
	workersLost, workersRejoined, resharding int64

	// genA mirrors gen for lock-free reads in accountDiscard; genCtrMu
	// guards the generation-scoped counter resets: a bump taken under RLock
	// after re-confirming the frame's generation either lands before a
	// re-shard's reset (and is wiped with the rest of the old generation)
	// or observes the new generation and skips itself.
	genA     atomic.Uint32
	genCtrMu sync.RWMutex

	// dropped counts injection drops, reordered/duplicate the relay's
	// sequence-filter discards; all three are drained messages for the
	// termination protocol (they can never reactivate a worker). The gen-
	// prefixed set restarts at zero at each re-shard — it is what the
	// probes see; the unprefixed set is cumulative for the final report.
	// With no churn the two are identical.
	dropped, reordered, duplicate          atomic.Int64
	genDropped, genReordered, genDuplicate atomic.Int64
	bytesOut, bytesIn                      atomic.Int64
	delays                                 delayQueue // pending delayed relay deliveries

	// xmu guards xbest, the coordinator's best-known iterate: x0 overlaid
	// with every checkpoint and reshard ack absorbed so far. It seeds
	// rejoiner welcomes, re-shard assigns, the shards of workers lost
	// after stop, and the on-disk checkpoint.
	xmu           sync.Mutex
	xbest         []float64
	lastCkptWrite time.Time

	stopped  atomic.Bool
	statusCh chan status
	ackCh    chan reshardAck
	finalCh  chan final
	errCh    chan error
	// membership is the doorbell rung by workerLost and handleRejoin; the
	// run loop answers it with a reshard barrier.
	membership chan struct{}
	acceptWG   sync.WaitGroup

	// probeSeq numbers probe rounds so stale replies from an earlier round
	// are recognized and dropped. Only the probing loop touches it, and a
	// counter (unlike a clock reading) keeps coordinator behavior
	// bit-reproducible across runs.
	probeSeq uint64

	runDeadline time.Time
}

func (c *coordinator) elastic() bool { return c.cfg.Elastic.enabled() }

// Serve runs the coordinator: accept and welcome cfg.Workers workers, run
// the topology's rendezvous (mesh: collect listen addresses, broadcast the
// peer table), relay star shard broadcasts with fault injection, probe for
// quiescence with the two-phase double collect, and stop the run — on
// quiescence (converged), when every worker exhausts its budget (not
// converged), or at Timeout (error). Under elastic membership it
// additionally detects lost workers by heartbeat silence, re-shards the
// component space over the survivors, and accepts rejoining workers on the
// same listener for the whole run.
func Serve(cfg ServerConfig) (*Result, error) {
	if cfg.Listener == nil {
		return nil, errors.New("dist: ServerConfig.Listener is required")
	}
	defer cfg.Listener.Close()
	if cfg.Workers < 1 {
		return nil, errors.New("dist: need at least one worker")
	}
	if cfg.N < 1 {
		return nil, errors.New("dist: dimension must be positive")
	}
	if cfg.X0 != nil && len(cfg.X0) != cfg.N {
		return nil, fmt.Errorf("dist: X0 length %d, want %d", len(cfg.X0), cfg.N)
	}
	if cfg.Workers > cfg.N {
		// Same clamp as Config.validate: never more shards than components
		// (vec.Blocks would return fewer blocks than accept loops expect).
		cfg.Workers = cfg.N
	}
	if err := validateTopology(&cfg.Topology); err != nil {
		return nil, err
	}
	if err := validateDeltaThreshold(cfg.DeltaThreshold); err != nil {
		return nil, err
	}
	applyRunDefaults(&cfg.SweepsBelowTol, &cfg.MaxUpdatesPerWorker, &cfg.Timeout)
	if err := cfg.Fault.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Elastic.validate(); err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, cfg.N)
	}
	if cfg.Elastic.CheckpointPath != "" {
		// A coordinator-level restart warm-starts from the last persisted
		// iterate; a missing file is simply a fresh run.
		ck, err := readCheckpointFile(cfg.Elastic.CheckpointPath, cfg.N)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			x0 = ck
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	c := &coordinator{
		cfg:         cfg,
		links:       make([]*link, cfg.Workers),
		alive:       make([]bool, cfg.Workers),
		reserved:    make([]bool, cfg.Workers),
		addrs:       make([]string, cfg.Workers),
		blocks:      vec.Blocks(cfg.N, cfg.Workers),
		gen:         1,
		lastDone:    make([]bool, cfg.Workers),
		xbest:       append([]float64(nil), x0...),
		statusCh:    make(chan status, 4*cfg.Workers),
		ackCh:       make(chan reshardAck, 4*cfg.Workers),
		finalCh:     make(chan final, 2*cfg.Workers),
		errCh:       make(chan error, cfg.Workers),
		membership:  make(chan struct{}, 1),
		runDeadline: deadline,
	}
	c.genA.Store(1)
	// A delayed relay cancelled or skipped at teardown was counted sent by
	// its worker and can never be delivered: account the disposal as a
	// drop so the transport counters stay as close to balanced as a
	// torn-down run allows (a certified-quiescent run has nothing pending,
	// so converged accounting stays exact).
	c.delays.onDispose = func() { c.dropped.Add(1) }

	topo := topologyStarWire
	if cfg.Topology == TopologyMesh {
		topo = topologyMeshWire
	}

	// Accept and welcome every worker.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := cfg.Listener.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	for w := 0; w < cfg.Workers; w++ {
		conn, err := cfg.Listener.Accept()
		if err != nil {
			c.shutdown()
			return nil, fmt.Errorf("dist: accept worker %d: %w", w, err)
		}
		// An absolute I/O deadline guarantees no read or write on this
		// link can outlive the run's Timeout — a stalled worker (full TCP
		// buffers, paused process) surfaces as a deadline error instead of
		// hanging Serve inside a blocking conn.Write. The grace period
		// covers the post-deadline stop/final exchange.
		conn.SetDeadline(deadline.Add(cfg.Timeout))
		c.links[w] = &link{
			conn:      conn,
			lastSeq:   make([]uint64, cfg.Workers),
			seqGen:    1,
			bytesFrom: make([]int64, cfg.Workers),
		}
		c.alive[w] = true
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil || typ != msgHello {
			c.shutdown()
			return nil, fmt.Errorf("dist: worker %d handshake failed: %v", w, err)
		}
		cur := cursor{b: payload}
		if v := cur.u32(); cur.err != nil || v != protocolVersion {
			c.shutdown()
			return nil, fmt.Errorf("dist: worker %d protocol version %d, want %d", w, v, protocolVersion)
		}
		wel := c.welcome(topo, w, c.blocks[w][0], c.blocks[w][1], 1, false, x0)
		if err := c.writeLink(c.links[w], wel); err != nil {
			c.shutdown()
			return nil, fmt.Errorf("dist: welcome worker %d: %w", w, err)
		}
	}

	// Mesh rendezvous: collect every worker's listen address, then hand
	// each worker the full peer table. Every listener is up before any
	// worker learns a peer address, so no dial can race a missing listener.
	if cfg.Topology == TopologyMesh {
		for w := range c.links {
			typ, payload, err := readFrame(c.links[w].conn, maxFramePayload)
			if err != nil || typ != msgMeshAddr {
				c.shutdown()
				return nil, fmt.Errorf("dist: worker %d mesh address: %v", w, err)
			}
			cur := cursor{b: payload}
			c.addrs[w] = cur.str()
			if cur.err != nil || c.addrs[w] == "" {
				c.shutdown()
				return nil, fmt.Errorf("dist: worker %d sent a malformed mesh address", w)
			}
		}
		peers := appendU32(nil, uint32(cfg.Workers))
		for _, a := range c.addrs {
			peers = appendStr(peers, a)
		}
		frame := buildFrame(msgPeers, peers)
		for w := range c.links {
			if err := c.writeLink(c.links[w], frame); err != nil {
				c.shutdown()
				return nil, fmt.Errorf("dist: peer table to worker %d: %w", w, err)
			}
		}
	}

	for w := range c.links {
		go c.serveLink(w, c.links[w])
	}
	if c.elastic() {
		c.acceptWG.Add(1)
		//repro:join-ok joined by acceptWG.Wait in shutdown after the listener closes (its deadline bounds the run regardless)
		go c.acceptRejoins()
	}

	// Probe for quiescence until it is detected, every worker is done, or
	// the deadline passes. A membership doorbell (worker lost or rejoined)
	// interrupts the cadence and is answered with a reshard barrier before
	// any further certification is attempted.
	converged := false
	timedOut := true // cleared when the loop ends for a legitimate reason
	var probeRounds int64
	observe := func() runtime.Observation {
		probeRounds++
		return c.probeRound(deadline)
	}
	for time.Now().Before(deadline) {
		select {
		case <-c.membership:
			if err := c.reshardBarrier(deadline); err != nil {
				c.shutdown()
				return nil, err
			}
			continue
		default:
		}
		if cfg.Tol > 0 && runtime.DoubleCollect(observe, nil) {
			// A loss detected during the certifying collects makes every
			// involved probe round invalid, so a pending doorbell here
			// means the quiescence predates the change: re-shard first.
			select {
			case <-c.membership:
				if err := c.reshardBarrier(deadline); err != nil {
					c.shutdown()
					return nil, err
				}
				continue
			default:
			}
			converged = true
			timedOut = false
			break
		}
		if cfg.Tol <= 0 {
			// No convergence detection: a probe round still tracks done
			// bits so the run ends when every budget is exhausted.
			observe()
		}
		if c.allDone() {
			timedOut = false // budget exhaustion, a valid non-converged end
			break
		}
		select {
		case err := <-c.errCh:
			c.shutdown()
			return nil, err
		case <-c.membership:
			if err := c.reshardBarrier(deadline); err != nil {
				c.shutdown()
				return nil, err
			}
		case <-time.After(probeInterval):
		}
	}

	// Stop the run and collect the authoritative final shards from the
	// workers alive at stop; a worker lost after this point contributes its
	// last checkpointed values instead (lost finals, elastic only).
	c.stopped.Store(true)
	stopFrame := buildFrame(msgStop, nil)
	c.mu.RLock()
	targets := make([]*link, cfg.Workers)
	for w, l := range c.links {
		if c.alive[w] {
			targets[w] = l
		}
	}
	c.mu.RUnlock()
	expect := make([]bool, cfg.Workers)
	expected := 0
	for w, l := range targets {
		if l == nil {
			continue
		}
		if err := c.writeLink(l, stopFrame); err != nil {
			if c.elastic() {
				// The worker died at the finish line; its serveLink will
				// synthesize a lost final we are not waiting for.
				l.conn.Close()
				continue
			}
			c.shutdown()
			return nil, fmt.Errorf("dist: stop worker %d: %w", w, err)
		}
		expect[w] = true
		expected++
	}
	c.xmu.Lock()
	x := append([]float64(nil), c.xbest...)
	c.xmu.Unlock()
	updates := make([]int, cfg.Workers)
	linkBytes := make([][]int64, cfg.Workers)
	for i := range linkBytes {
		linkBytes[i] = make([]int64, cfg.Workers)
	}
	var sent, delivered, stale, dropped, reordered, duplicate int64
	finalDeadline := time.Now().Add(cfg.Timeout)
	for got := 0; got < expected; {
		select {
		case f := <-c.finalCh:
			if !expect[f.worker] {
				continue // a lost final from a slot nobody waits for
			}
			expect[f.worker] = false
			got++
			if f.lost {
				continue // shard stays at the checkpointed values in x
			}
			copy(x[f.lo:f.lo+len(f.vals)], f.vals)
			updates[f.worker] = f.updates
			sent += int64(f.sent)
			delivered += int64(f.delivered)
			stale += int64(f.stale)
			dropped += int64(f.dropped)
			reordered += int64(f.reordered)
			duplicate += int64(f.duplicate)
			for q, b := range f.linkBytes {
				linkBytes[f.worker][q] += int64(b)
			}
		case err := <-c.errCh:
			c.shutdown()
			return nil, err
		case <-time.After(time.Until(finalDeadline)):
			c.shutdown()
			return nil, errors.New("dist: timed out waiting for final blocks")
		}
	}
	c.shutdown()

	if timedOut {
		return nil, fmt.Errorf("dist: run exceeded timeout %v without quiescence or budget exhaustion", cfg.Timeout)
	}
	// Star relays every data-plane frame, so its per-link counters live on
	// the coordinator's links (stable now — shutdown drained every relay
	// writer); mesh workers reported theirs in the finals. Links lost to
	// churn take their relay byte counts with them, so under churn the star
	// totals cover surviving links only.
	if cfg.Topology == TopologyStar {
		c.mu.RLock()
		for to, l := range c.links {
			if l == nil {
				continue
			}
			for from, b := range l.bytesFrom {
				linkBytes[from][to] += b
			}
		}
		c.mu.RUnlock()
	}
	c.mu.RLock()
	lost, rejoined, reshards := c.workersLost, c.workersRejoined, c.resharding
	c.mu.RUnlock()
	return &Result{
		X:                 x,
		Converged:         converged,
		UpdatesPerWorker:  updates,
		Elapsed:           time.Since(start),
		Topology:          cfg.Topology,
		MessagesSent:      sent,
		MessagesDelivered: delivered,
		MessagesStale:     stale,
		MessagesDropped:   dropped + c.dropped.Load(),
		MessagesReordered: reordered + c.reordered.Load(),
		MessagesDuplicate: duplicate + c.duplicate.Load(),
		BytesSent:         c.bytesOut.Load(),
		BytesReceived:     c.bytesIn.Load(),
		LinkBytes:         linkBytes,
		ProbeRounds:       probeRounds,
		WorkersLost:       lost,
		WorkersRejoined:   rejoined,
		Resharding:        reshards,
	}, nil
}

// welcome builds one welcome frame for slot w: shard [lo, hi), membership
// generation gen, and the iterate x (x0 for the rendezvous, the
// checkpointed xbest for a rejoiner, whose shard is empty until its first
// assign).
func (c *coordinator) welcome(topo byte, w, lo, hi int, gen uint32, rejoining bool, x []float64) []byte {
	wel := appendU32(nil, uint32(w))
	wel = appendU32(wel, uint32(c.cfg.Workers))
	wel = appendU32(wel, uint32(c.cfg.N))
	wel = appendU32(wel, uint32(lo))
	wel = appendU32(wel, uint32(hi))
	wel = appendF64(wel, c.cfg.Tol)
	wel = appendU32(wel, uint32(c.cfg.SweepsBelowTol))
	wel = appendU32(wel, uint32(c.cfg.MaxUpdatesPerWorker))
	wel = append(wel, topo)
	wel = appendF64(wel, c.cfg.DeltaThreshold)
	wel = appendU64(wel, uint64(c.cfg.Timeout))
	wel = appendF64(wel, c.cfg.Fault.DropProb)
	wel = appendF64(wel, c.cfg.Fault.ReorderProb)
	wel = appendU64(wel, uint64(c.cfg.Fault.MaxDelay))
	wel = appendU64(wel, c.cfg.Fault.Seed)
	wel = appendU32(wel, gen)
	if rejoining {
		wel = append(wel, byte(1))
	} else {
		wel = append(wel, byte(0))
	}
	wel = appendU64(wel, uint64(c.cfg.Elastic.HeartbeatEvery))
	wel = appendU64(wel, uint64(c.cfg.Elastic.CheckpointEvery))
	wel = appendF64s(wel, x)
	return buildFrame(msgWelcome, wel)
}

// allDone reports whether every currently-alive worker has exhausted its
// update budget (an empty membership can never end the run this way — the
// doorbell or the deadline decides it instead).
func (c *coordinator) allDone() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	live := 0
	for w := range c.alive {
		if !c.alive[w] {
			continue
		}
		live++
		if !c.lastDone[w] {
			return false
		}
	}
	return live > 0
}

// shutdown tears the coordinator down in the only safe order: mark the run
// stopped (new delayed deliveries become no-ops), cancel pending relay
// timers and wait out callbacks already firing, stop accepting rejoiners,
// and only then close the worker connections. A delayed delivery can
// therefore never write to a conn that is being closed.
func (c *coordinator) shutdown() {
	c.stopped.Store(true)
	c.delays.drain()
	if c.elastic() {
		c.cfg.Listener.Close()
		c.acceptWG.Wait()
	}
	c.mu.RLock()
	links := append([]*link(nil), c.links...)
	c.mu.RUnlock()
	for _, l := range links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// fail reports an error to the run loop without ever blocking: the single
// drain reads one error, and every further failure racing it (multiple
// link goroutines dying together at teardown) is dropped rather than
// wedging its goroutine on the channel send.
func (c *coordinator) fail(err error) {
	select {
	case c.errCh <- err:
	default:
	}
}

// writeLink sends one prebuilt frame on a link; frames are written whole
// under the link mutex so concurrent writers never interleave.
func (c *coordinator) writeLink(l *link, frame []byte) error {
	l.mu.Lock()
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
	}
	return err
}

// accountDiscard accounts one disposed relay frame: always on the
// cumulative counter, and on the generation-scoped counter only while the
// frame's generation is still current — a frame from before a re-shard had
// its send erased from the in-flight books, so counting its disposal would
// push in-flight negative and stall termination. Taken under genCtrMu so a
// bump can never land after the re-shard's counter reset it belongs before.
func (c *coordinator) accountDiscard(gen uint32, cum, genCtr *atomic.Int64) {
	cum.Add(1)
	c.genCtrMu.RLock()
	if c.genA.Load() == gen {
		genCtr.Add(1)
	}
	c.genCtrMu.RUnlock()
}

// lostFinal synthesizes the final of a worker whose link died after stop,
// so the collection loop is never wedged on a shard that will not arrive;
// the shard keeps its last checkpointed values.
func (c *coordinator) lostFinal(w int) {
	select {
	case c.finalCh <- final{worker: w, lost: true}:
	default:
	}
}

// workerLost removes one worker from the membership (idempotently — the
// link pointer identifies the incarnation, so a stale loss report for a
// slot a rejoiner has since claimed is a no-op), closes its conn, and rings
// the membership doorbell. After stop it synthesizes a lost final instead:
// the membership no longer matters, only the finals collection does.
func (c *coordinator) workerLost(w int, l *link) {
	c.mu.Lock()
	if c.links[w] != l || !c.alive[w] {
		c.mu.Unlock()
		return
	}
	c.links[w] = nil
	c.alive[w] = false
	c.addrs[w] = ""
	c.lastDone[w] = false
	c.workersLost++
	c.mu.Unlock()
	l.conn.Close()
	if c.stopped.Load() {
		c.lostFinal(w)
		return
	}
	select {
	case c.membership <- struct{}{}:
	default:
	}
}

// linkDown handles a failed read on a worker link: before stop it is a
// worker loss (elastic) or a run error (rigid); after stop a missing final
// is synthesized (elastic) or the teardown is simply quiet (rigid).
func (c *coordinator) linkDown(w int, l *link, err error) {
	if c.stopped.Load() {
		if c.elastic() {
			c.lostFinal(w)
		}
		return
	}
	if !c.elastic() {
		c.fail(fmt.Errorf("dist: worker %d connection: %w", w, err))
		return
	}
	c.workerLost(w, l)
}

// deliverBlock writes a relayed shard frame from worker from to link q —
// unless the frame predates the current membership generation or the slot
// is no longer alive (silently disposed — its send was erased at the
// re-shard), or a later-sequenced frame from the same source has already
// been delivered on this link, in which case the frame is discarded HERE:
// superseded (reordered) and duplicate frames are never written, so the
// receiver cannot count them again and no bandwidth is spent on them. The
// discard counts as drained for the termination protocol, like a drop.
func (c *coordinator) deliverBlock(q, from int, seq uint64, gen uint32, frame []byte) {
	if c.stopped.Load() {
		c.dropped.Add(1) // sent but undeliverable: the run is tearing down
		return
	}
	c.mu.RLock()
	l := c.links[q]
	ok := c.alive[q] && l != nil && gen == c.gen
	c.mu.RUnlock()
	if !ok {
		c.accountDiscard(gen, &c.dropped, &c.genDropped)
		return
	}
	l.mu.Lock()
	if l.seqGen != gen {
		for i := range l.lastSeq {
			l.lastSeq[i] = 0
		}
		l.seqGen = gen
	}
	if seq <= l.lastSeq[from] {
		newest := l.lastSeq[from]
		l.mu.Unlock()
		if seq < newest {
			c.accountDiscard(gen, &c.reordered, &c.genReordered)
		} else {
			c.accountDiscard(gen, &c.duplicate, &c.genDuplicate)
		}
		return
	}
	l.lastSeq[from] = seq
	_, err := l.conn.Write(frame)
	if err == nil {
		l.bytesFrom[from] += int64(len(frame))
	}
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
		return
	}
	if c.stopped.Load() {
		c.dropped.Add(1) // teardown closed the conn under the write
		return
	}
	// A failed write before stop means a relayed block is lost with no
	// delivery or drop to account for it — under elastic membership the
	// destination is treated as lost (the disposal keeps in-flight
	// drainable); a rigid run surfaces the broken link instead of dying as
	// a generic timeout. (One-directional stalls exist: this link's reader
	// may still be healthy.)
	if c.elastic() {
		c.accountDiscard(gen, &c.dropped, &c.genDropped)
		c.workerLost(q, l)
		return
	}
	c.fail(fmt.Errorf("dist: relay to worker %d: %w", q, err))
}

// absorbCheckpoint folds a current-generation shard checkpoint into xbest
// and, when a checkpoint path is configured, persists the merged iterate at
// most once per CheckpointEvery (best-effort: a failed disk write never
// fails the run).
func (c *coordinator) absorbCheckpoint(w int, payload []byte) error {
	cur := cursor{b: payload}
	gen := cur.u32()
	lo := int(cur.u32())
	count := int(cur.u32())
	vals := cur.f64s(count)
	if cur.err != nil || lo < 0 || lo+count > c.cfg.N {
		return fmt.Errorf("dist: worker %d sent a malformed checkpoint frame", w)
	}
	c.mu.RLock()
	current := gen == c.gen && c.alive[w]
	c.mu.RUnlock()
	if !current {
		return nil // a checkpoint from before a re-shard: shard bounds are stale
	}
	var snapshot []float64
	c.xmu.Lock()
	copy(c.xbest[lo:lo+count], vals)
	if c.cfg.Elastic.CheckpointPath != "" && time.Since(c.lastCkptWrite) >= c.cfg.Elastic.CheckpointEvery {
		c.lastCkptWrite = time.Now()
		snapshot = append([]float64(nil), c.xbest...)
	}
	c.xmu.Unlock()
	if snapshot != nil {
		_ = writeCheckpointFile(c.cfg.Elastic.CheckpointPath, snapshot)
	}
	return nil
}

// serveLink reads one worker's frames: star shard broadcasts are relayed to
// every peer through the fault-injection path, statuses, reshard acks and
// finals are routed to the termination logic, checkpoints into xbest.
// Under elastic membership every read carries a heartbeat deadline — a link
// silent past it is a lost worker, not a run error.
func (c *coordinator) serveLink(w int, l *link) {
	rng := rand.New(rand.NewSource(linkRNGSeed(c.cfg.Fault.Seed, w)))
	hold := reorderHoldFor(c.cfg.Fault)
	conn := l.conn
	var hbTimeout time.Duration
	if c.elastic() {
		hbTimeout = heartbeatTimeout(c.cfg.Elastic.HeartbeatEvery)
	}
	for {
		if hbTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(hbTimeout))
		}
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil {
			c.linkDown(w, l, err)
			return
		}
		c.bytesIn.Add(int64(frameHeaderLen + len(payload)))
		switch typ {
		case msgHeartbeat:
			// Liveness only: arriving is the whole message.
		case msgBlock:
			if c.cfg.Topology != TopologyStar {
				c.fail(fmt.Errorf("dist: worker %d sent a data-plane frame on the mesh control plane", w))
				return
			}
			cur := cursor{b: payload}
			from := int(cur.u32())
			seq := cur.u64()
			flags := cur.u8()
			gen := cur.u32()
			if cur.err != nil || from != w {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed block frame", w))
				return
			}
			if c.stopped.Load() {
				// The worker counted p-1 sends for this broadcast; none
				// will be relayed now that the run is stopping.
				c.dropped.Add(int64(c.cfg.Workers - 1))
				continue
			}
			frame := buildFrame(msgBlock, payload)
			reliable := flags&blockReliable != 0
			for q := 0; q < c.cfg.Workers; q++ {
				if q == w {
					continue
				}
				// The fault decision is drawn for every destination —
				// dead slots included — so churn never desynchronizes the
				// per-source decision streams star and mesh share.
				drop, delay := c.cfg.Fault.decide(rng, hold, reliable)
				if drop {
					c.accountDiscard(gen, &c.dropped, &c.genDropped)
					continue
				}
				if delay <= 0 {
					c.deliverBlock(q, w, seq, gen, frame)
					continue
				}
				q := q
				if !c.delays.after(delay, func() { c.deliverBlock(q, w, seq, gen, frame) }) {
					// Teardown already began: no probe round will look
					// again, but the frame was counted sent — account the
					// disposal.
					c.dropped.Add(1)
				}
			}
		case msgStatus:
			cur := cursor{b: payload}
			st := status{worker: w, probeID: cur.u64()}
			flags := cur.u8()
			st.passive = flags&statusPassive != 0
			st.done = flags&statusDone != 0
			st.gen = cur.u32()
			st.epoch = cur.u64()
			st.sent = cur.u64()
			st.delivered = cur.u64()
			st.drained = cur.u64()
			if cur.err != nil {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed status frame", w))
				return
			}
			select {
			case c.statusCh <- st:
			default: // stale round backlog; the prober discards by id anyway
			}
		case msgCheckpoint:
			if err := c.absorbCheckpoint(w, payload); err != nil {
				c.fail(err)
				return
			}
		case msgReshardAck:
			cur := cursor{b: payload}
			a := reshardAck{worker: w, gen: cur.u32(), lo: int(cur.u32())}
			count := int(cur.u32())
			a.vals = cur.f64s(count)
			if cur.err != nil || a.lo < 0 || a.lo+count > c.cfg.N {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed reshard ack", w))
				return
			}
			select {
			case c.ackCh <- a:
			default: // a stale barrier attempt's backlog; acks are gen-checked anyway
			}
		case msgFinal:
			cur := cursor{b: payload}
			f := final{worker: w, lo: int(cur.u32())}
			count := int(cur.u32())
			f.vals = cur.f64s(count)
			f.updates = int(cur.u32())
			f.sent = cur.u64()
			f.delivered = cur.u64()
			f.stale = cur.u64()
			f.dropped = cur.u64()
			f.reordered = cur.u64()
			f.duplicate = cur.u64()
			f.linkBytes = cur.u64s(int(cur.u32()))
			if cur.err != nil || f.lo < 0 || f.lo+count > c.cfg.N || len(f.linkBytes) > c.cfg.Workers {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed final frame", w))
				return
			}
			c.finalCh <- f
			return
		default:
			c.fail(fmt.Errorf("dist: worker %d sent unexpected frame type %d", w, typ))
			return
		}
	}
}

// acceptRejoins keeps accepting connections after the rendezvous — the
// elastic half of the control plane. Each connection is handled on its own
// goroutine so a slow (or hostile) handshake never blocks other rejoiners.
// The loop exits when the listener closes (shutdown) or its deadline — the
// run deadline — expires.
func (c *coordinator) acceptRejoins() {
	defer c.acceptWG.Done()
	for {
		conn, err := c.cfg.Listener.Accept()
		if err != nil {
			return
		}
		c.acceptWG.Add(1)
		//repro:join-ok joined by acceptWG.Wait in shutdown; every blocking step is bounded by the short handshake deadline set first
		go func() {
			defer c.acceptWG.Done()
			c.handleRejoin(conn)
		}()
	}
}

// handleRejoin runs the rejoin handshake: validate the hello, reserve a
// free worker slot (rejecting when none is free — typically the lost
// link's read deadline has not expired yet, so the worker retries under
// backoff), welcome the worker with the checkpointed iterate and an empty
// shard, collect its mesh address, and install it into the membership. The
// next reshard barrier shards it in.
func (c *coordinator) handleRejoin(conn net.Conn) {
	if c.stopped.Load() {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Now().Add(dialTimeout))
	typ, payload, err := readFrame(conn, maxFramePayload)
	if err != nil || typ != msgHello {
		conn.Close()
		return
	}
	cur := cursor{b: payload}
	if v := cur.u32(); cur.err != nil || v != protocolVersion {
		conn.Close()
		return
	}
	c.mu.Lock()
	slot := -1
	for w := range c.alive {
		if !c.alive[w] && !c.reserved[w] && c.links[w] == nil {
			slot = w
			break
		}
	}
	if slot >= 0 {
		c.reserved[slot] = true
	}
	gen := c.gen
	c.mu.Unlock()
	if slot < 0 {
		conn.Write(buildFrame(msgReject, appendStr(nil, "no free worker slot")))
		conn.Close()
		return
	}
	unreserve := func() {
		c.mu.Lock()
		c.reserved[slot] = false
		c.mu.Unlock()
	}
	topo := topologyStarWire
	if c.cfg.Topology == TopologyMesh {
		topo = topologyMeshWire
	}
	c.xmu.Lock()
	x := append([]float64(nil), c.xbest...)
	c.xmu.Unlock()
	if _, err := conn.Write(c.welcome(topo, slot, 0, 0, gen, true, x)); err != nil {
		unreserve()
		conn.Close()
		return
	}
	meshAddr := ""
	if c.cfg.Topology == TopologyMesh {
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil || typ != msgMeshAddr {
			unreserve()
			conn.Close()
			return
		}
		cur := cursor{b: payload}
		meshAddr = cur.str()
		if cur.err != nil || meshAddr == "" {
			unreserve()
			conn.Close()
			return
		}
	}
	l := &link{
		conn:      conn,
		lastSeq:   make([]uint64, c.cfg.Workers),
		bytesFrom: make([]int64, c.cfg.Workers),
	}
	c.mu.Lock()
	if c.stopped.Load() {
		// The run ended while this handshake was in flight: the stop
		// broadcast's target snapshot must never grow afterwards.
		c.reserved[slot] = false
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.links[slot] = l
	c.alive[slot] = true
	c.reserved[slot] = false
	c.addrs[slot] = meshAddr
	c.lastDone[slot] = false
	c.workersRejoined++
	c.mu.Unlock()
	conn.SetDeadline(c.runDeadline.Add(c.cfg.Timeout))
	go c.serveLink(slot, l)
	select {
	case c.membership <- struct{}{}:
	default:
	}
}

// reshardBarrier answers the membership doorbell: enter a new generation,
// pause every survivor (reshard), fold their acknowledged shards into the
// checkpointed iterate, and re-issue the shard table and — on mesh — the
// peer address table (assign). A worker lost or rejoined mid-barrier simply
// restarts the attempt with a fresh generation; the run deadline bounds the
// retrying. Runs on the run-loop goroutine, so no probe round can overlap a
// generation flip.
func (c *coordinator) reshardBarrier(deadline time.Time) error {
	for {
		if !time.Now().Before(deadline) {
			return errors.New("dist: resharding did not complete before the run timeout")
		}
		select {
		case <-c.membership: // coalesce queued doorbell rings into this attempt
		default:
		}
		c.mu.Lock()
		c.gen++
		gen := c.gen
		c.genA.Store(gen)
		var live []int
		for w := range c.alive {
			if c.alive[w] {
				live = append(live, w)
			}
		}
		if len(live) == 0 {
			c.mu.Unlock()
			// Nobody left to compute: wait for a rejoiner (or give up at
			// the deadline above).
			select {
			case <-c.membership:
			case <-time.After(probeInterval):
			}
			continue
		}
		shards := vec.Blocks(c.cfg.N, len(live))
		for w := range c.blocks {
			c.blocks[w] = [2]int{0, 0}
		}
		blocks := make([][2]int, c.cfg.Workers)
		for i, w := range live {
			c.blocks[w] = shards[i]
			blocks[w] = shards[i]
		}
		c.resharding++
		links := make([]*link, len(live))
		for i, w := range live {
			links[i] = c.links[w]
		}
		addrs := append([]string(nil), c.addrs...)
		c.mu.Unlock()

		// The old generation's books close: frames still in flight from it
		// self-discard against the fence without touching these counters.
		c.genCtrMu.Lock()
		c.genDropped.Store(0)
		c.genReordered.Store(0)
		c.genDuplicate.Store(0)
		c.genCtrMu.Unlock()

		// Phase 1 — pause: every survivor acknowledges the new generation
		// with its current shard values (the freshest warm-start data).
		reshard := buildFrame(msgReshard, appendU32(nil, gen))
		retry := false
		for i, w := range live {
			if err := c.writeLink(links[i], reshard); err != nil {
				c.workerLost(w, links[i])
				retry = true
			}
		}
		if retry {
			continue
		}
		acked := make([]bool, c.cfg.Workers)
		ackDeadline := time.Now().Add(probeRoundTimeout)
		if ackDeadline.After(deadline) {
			ackDeadline = deadline
		}
		for got := 0; got < len(live) && !retry; {
			select {
			case a := <-c.ackCh:
				if a.gen != gen || acked[a.worker] {
					continue // stale barrier attempt or duplicate
				}
				acked[a.worker] = true
				got++
				if len(a.vals) > 0 {
					c.xmu.Lock()
					copy(c.xbest[a.lo:a.lo+len(a.vals)], a.vals)
					c.xmu.Unlock()
				}
			case <-c.membership:
				retry = true // membership changed mid-barrier: fresh attempt
			case <-time.After(time.Until(ackDeadline)):
				retry = true // an unresponsive survivor; its heartbeat deadline will evict it
			}
		}
		if retry {
			continue
		}

		// Phase 2 — resume: re-issue the shard table over the merged
		// iterate; mesh workers also get the refreshed peer table ("" marks
		// a dead slot) to redial replaced links.
		c.xmu.Lock()
		x := append([]float64(nil), c.xbest...)
		c.xmu.Unlock()
		for i, w := range live {
			payload := appendU32(nil, gen)
			payload = appendU32(payload, uint32(blocks[w][0]))
			payload = appendU32(payload, uint32(blocks[w][1]))
			payload = appendF64s(payload, x)
			if c.cfg.Topology == TopologyMesh {
				payload = appendU32(payload, uint32(c.cfg.Workers))
				for _, a := range addrs {
					payload = appendStr(payload, a)
				}
			} else {
				payload = appendU32(payload, 0)
			}
			if err := c.writeLink(links[i], buildFrame(msgAssign, payload)); err != nil {
				c.workerLost(w, links[i])
				retry = true
			}
		}
		if retry {
			continue
		}
		return nil
	}
}

// probeRound is one network collect of the double-collect protocol: probe
// every live worker, gather matching statuses, and assemble the
// Observation. The passive flags come from the statuses (each a
// self-consistent worker-side snapshot) and the coordinator's drain
// counters are read after the last status arrives, matching the in-process
// Tracker's "flags before counters" collect order. The drained total —
// injection drops plus link-filter discards, wherever they happened
// (coordinator relay in star, sending workers in mesh) — enters the
// observation as Dropped: none of those frames can ever reactivate a
// worker. Any timeout, stale or cross-generation reply makes the round
// invalid; it is retried. The membership generation is folded into the
// observation's Epoch so two quiet collects can never straddle a re-shard
// unnoticed, and done bits are applied to lastDone as a side effect of a
// completed round.
func (c *coordinator) probeRound(deadline time.Time) runtime.Observation {
	c.probeSeq++
	probeID := c.probeSeq
	probe := buildFrame(msgProbe, appendU64(nil, probeID))
	c.mu.RLock()
	gen := c.gen
	var workers []int
	var links []*link
	for w, l := range c.links {
		if c.alive[w] && l != nil {
			workers = append(workers, w)
			links = append(links, l)
		}
	}
	c.mu.RUnlock()
	if len(workers) == 0 {
		return runtime.Observation{} // an empty membership is never quiescent
	}
	for i, w := range workers {
		if err := c.writeLink(links[i], probe); err != nil {
			if c.elastic() {
				c.workerLost(w, links[i])
			}
			return runtime.Observation{}
		}
	}
	roundTimeout := probeRoundTimeout
	if c.elastic() {
		// A lost worker is detected within the heartbeat timeout; waiting
		// longer for its status would only delay the reshard barrier.
		if hb := heartbeatTimeout(c.cfg.Elastic.HeartbeatEvery); hb < roundTimeout {
			roundTimeout = hb
		}
	}
	roundDeadline := time.Now().Add(roundTimeout)
	if roundDeadline.After(deadline) {
		roundDeadline = deadline
	}
	obs := runtime.Observation{AllPassive: true}
	seen := make([]bool, c.cfg.Workers)
	done := make([]bool, c.cfg.Workers)
	for got := 0; got < len(workers); {
		select {
		case st := <-c.statusCh:
			if st.probeID != probeID || st.gen != gen || seen[st.worker] {
				continue // stale round, stale generation, or duplicate
			}
			seen[st.worker] = true
			got++
			done[st.worker] = st.done
			if !st.passive {
				obs.AllPassive = false
			}
			obs.Epoch += st.epoch
			obs.Sent += int64(st.sent)
			obs.Delivered += int64(st.delivered)
			obs.Dropped += int64(st.drained)
		case <-time.After(time.Until(roundDeadline)):
			return runtime.Observation{}
		}
	}
	c.mu.Lock()
	if c.gen == gen {
		for _, w := range workers {
			c.lastDone[w] = done[w]
		}
	}
	c.mu.Unlock()
	obs.Epoch += uint64(gen)
	obs.Dropped += c.genDropped.Load() + c.genReordered.Load() + c.genDuplicate.Load()
	return obs
}
