package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/vec"
)

// probeInterval paces the coordinator's termination probe rounds.
const probeInterval = 500 * time.Microsecond

// probeRoundTimeout bounds one probe round; a worker that cannot answer in
// time simply fails the round (it is retried), it does not fail the run.
const probeRoundTimeout = 2 * time.Second

// defaultReorderHold is the extra delay a reorder-injected block is held
// for when Fault.MaxDelay does not imply one (4x MaxDelay otherwise): long
// enough that blocks sent after it on the same link overtake it.
const defaultReorderHold = 800 * time.Microsecond

// ServerConfig configures the coordinator half of a distributed run.
type ServerConfig struct {
	// Listener accepts the worker connections; Serve closes it when the
	// run ends. Workers must know its address out of band.
	Listener net.Listener
	// Workers is the number of worker connections to wait for. The
	// caller partitions the problem, so it must already be clamped to the
	// dimension.
	Workers int
	// Topology selects the data plane (TopologyStar default, TopologyMesh
	// for direct worker-to-worker links).
	Topology string
	// N is the problem dimension; X0 the initial iterate (defaults zero).
	N  int
	X0 []float64
	// Tol, SweepsBelowTol and MaxUpdatesPerWorker are forwarded to the
	// workers in the welcome frame (see runtime.Config for semantics).
	Tol                 float64
	SweepsBelowTol      int
	MaxUpdatesPerWorker int
	// DeltaThreshold enables flexible communication (see Config).
	DeltaThreshold float64
	// Fault is the per-link fault injection (applied by the coordinator's
	// relay in star, by the sending side of every mesh link in mesh).
	Fault Fault
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
}

// link is one worker connection from the coordinator's side. Writes are
// whole prebuilt frames under mu, so concurrent relays, probes and the
// stop broadcast never interleave bytes. lastSeq and bytesFrom are indexed
// by source worker: the newest sequence delivered on this link and the
// data-plane bytes relayed onto it (star topology only).
type link struct {
	conn      net.Conn
	mu        sync.Mutex
	lastSeq   []uint64
	bytesFrom []int64
}

type status struct {
	worker          int
	probeID         uint64
	passive, done   bool
	epoch           uint64
	sent, delivered uint64
	drained         uint64
}

type final struct {
	worker                 int
	lo                     int
	vals                   []float64
	updates                int
	sent, delivered, stale uint64
	dropped                uint64
	reordered, duplicate   uint64
	linkBytes              []uint64
}

type coordinator struct {
	cfg    ServerConfig
	links  []*link
	blocks [][2]int

	// dropped counts injection drops, reordered/duplicate the relay's
	// sequence-filter discards; all three are drained messages for the
	// termination protocol (they can never reactivate a worker).
	dropped, reordered, duplicate atomic.Int64
	bytesOut, bytesIn             atomic.Int64
	delays                        delayQueue // pending delayed relay deliveries

	stopped  atomic.Bool
	statusCh chan status
	finalCh  chan final
	errCh    chan error

	// probeSeq numbers probe rounds so stale replies from an earlier round
	// are recognized and dropped. Only the probing loop touches it, and a
	// counter (unlike a clock reading) keeps coordinator behavior
	// bit-reproducible across runs.
	probeSeq uint64
}

// Serve runs the coordinator: accept and welcome cfg.Workers workers, run
// the topology's rendezvous (mesh: collect listen addresses, broadcast the
// peer table), relay star shard broadcasts with fault injection, probe for
// quiescence with the two-phase double collect, and stop the run — on
// quiescence (converged), when every worker exhausts its budget (not
// converged), or at Timeout (error).
func Serve(cfg ServerConfig) (*Result, error) {
	if cfg.Listener == nil {
		return nil, errors.New("dist: ServerConfig.Listener is required")
	}
	defer cfg.Listener.Close()
	if cfg.Workers < 1 {
		return nil, errors.New("dist: need at least one worker")
	}
	if cfg.N < 1 {
		return nil, errors.New("dist: dimension must be positive")
	}
	if cfg.X0 != nil && len(cfg.X0) != cfg.N {
		return nil, fmt.Errorf("dist: X0 length %d, want %d", len(cfg.X0), cfg.N)
	}
	if cfg.Workers > cfg.N {
		// Same clamp as Config.validate: never more shards than components
		// (vec.Blocks would return fewer blocks than accept loops expect).
		cfg.Workers = cfg.N
	}
	if err := validateTopology(&cfg.Topology); err != nil {
		return nil, err
	}
	if err := validateDeltaThreshold(cfg.DeltaThreshold); err != nil {
		return nil, err
	}
	applyRunDefaults(&cfg.SweepsBelowTol, &cfg.MaxUpdatesPerWorker, &cfg.Timeout)
	if err := cfg.Fault.validate(); err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, cfg.N)
	}

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	c := &coordinator{
		cfg:      cfg,
		links:    make([]*link, cfg.Workers),
		blocks:   vec.Blocks(cfg.N, cfg.Workers),
		statusCh: make(chan status, 4*cfg.Workers),
		finalCh:  make(chan final, cfg.Workers),
		errCh:    make(chan error, cfg.Workers),
	}
	// A delayed relay cancelled or skipped at teardown was counted sent by
	// its worker and can never be delivered: account the disposal as a
	// drop so the transport counters stay as close to balanced as a
	// torn-down run allows (a certified-quiescent run has nothing pending,
	// so converged accounting stays exact).
	c.delays.onDispose = func() { c.dropped.Add(1) }

	topo := topologyStarWire
	if cfg.Topology == TopologyMesh {
		topo = topologyMeshWire
	}

	// Accept and welcome every worker.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := cfg.Listener.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	for w := 0; w < cfg.Workers; w++ {
		conn, err := cfg.Listener.Accept()
		if err != nil {
			c.shutdown()
			return nil, fmt.Errorf("dist: accept worker %d: %w", w, err)
		}
		// An absolute I/O deadline guarantees no read or write on this
		// link can outlive the run's Timeout — a stalled worker (full TCP
		// buffers, paused process) surfaces as a deadline error instead of
		// hanging Serve inside a blocking conn.Write. The grace period
		// covers the post-deadline stop/final exchange.
		conn.SetDeadline(deadline.Add(cfg.Timeout))
		c.links[w] = &link{
			conn:      conn,
			lastSeq:   make([]uint64, cfg.Workers),
			bytesFrom: make([]int64, cfg.Workers),
		}
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil || typ != msgHello {
			c.shutdown()
			return nil, fmt.Errorf("dist: worker %d handshake failed: %v", w, err)
		}
		cur := cursor{b: payload}
		if v := cur.u32(); cur.err != nil || v != protocolVersion {
			c.shutdown()
			return nil, fmt.Errorf("dist: worker %d protocol version %d, want %d", w, v, protocolVersion)
		}
		wel := appendU32(nil, uint32(w))
		wel = appendU32(wel, uint32(cfg.Workers))
		wel = appendU32(wel, uint32(cfg.N))
		wel = appendU32(wel, uint32(c.blocks[w][0]))
		wel = appendU32(wel, uint32(c.blocks[w][1]))
		wel = appendF64(wel, cfg.Tol)
		wel = appendU32(wel, uint32(cfg.SweepsBelowTol))
		wel = appendU32(wel, uint32(cfg.MaxUpdatesPerWorker))
		wel = append(wel, topo)
		wel = appendF64(wel, cfg.DeltaThreshold)
		wel = appendU64(wel, uint64(cfg.Timeout))
		wel = appendF64(wel, cfg.Fault.DropProb)
		wel = appendF64(wel, cfg.Fault.ReorderProb)
		wel = appendU64(wel, uint64(cfg.Fault.MaxDelay))
		wel = appendU64(wel, cfg.Fault.Seed)
		wel = appendF64s(wel, x0)
		if err := c.write(w, buildFrame(msgWelcome, wel)); err != nil {
			c.shutdown()
			return nil, fmt.Errorf("dist: welcome worker %d: %w", w, err)
		}
	}

	// Mesh rendezvous: collect every worker's listen address, then hand
	// each worker the full peer table. Every listener is up before any
	// worker learns a peer address, so no dial can race a missing listener.
	if cfg.Topology == TopologyMesh {
		addrs := make([]string, cfg.Workers)
		for w := range c.links {
			typ, payload, err := readFrame(c.links[w].conn, maxFramePayload)
			if err != nil || typ != msgMeshAddr {
				c.shutdown()
				return nil, fmt.Errorf("dist: worker %d mesh address: %v", w, err)
			}
			cur := cursor{b: payload}
			addrs[w] = cur.str()
			if cur.err != nil || addrs[w] == "" {
				c.shutdown()
				return nil, fmt.Errorf("dist: worker %d sent a malformed mesh address", w)
			}
		}
		peers := appendU32(nil, uint32(cfg.Workers))
		for _, a := range addrs {
			peers = appendStr(peers, a)
		}
		frame := buildFrame(msgPeers, peers)
		for w := range c.links {
			if err := c.write(w, frame); err != nil {
				c.shutdown()
				return nil, fmt.Errorf("dist: peer table to worker %d: %w", w, err)
			}
		}
	}

	for w := range c.links {
		go c.serveLink(w)
	}

	// Probe for quiescence until it is detected, every worker is done, or
	// the deadline passes.
	converged := false
	timedOut := true // cleared when the loop ends for a legitimate reason
	var probeRounds int64
	lastDone := make([]bool, cfg.Workers)
	observe := func() runtime.Observation {
		probeRounds++
		return c.probeRound(lastDone, deadline)
	}
	for time.Now().Before(deadline) {
		if cfg.Tol > 0 && runtime.DoubleCollect(observe, nil) {
			converged = true
			timedOut = false
			break
		}
		if cfg.Tol <= 0 {
			// No convergence detection: a probe round still tracks done
			// bits so the run ends when every budget is exhausted.
			observe()
		}
		allDone := true
		for _, d := range lastDone {
			if !d {
				allDone = false
				break
			}
		}
		if allDone {
			timedOut = false // budget exhaustion, a valid non-converged end
			break
		}
		select {
		case err := <-c.errCh:
			c.shutdown()
			return nil, err
		case <-time.After(probeInterval):
		}
	}

	// Stop the run and collect the authoritative final shards.
	c.stopped.Store(true)
	stopFrame := buildFrame(msgStop, nil)
	for w := range c.links {
		if err := c.write(w, stopFrame); err != nil {
			c.shutdown()
			return nil, fmt.Errorf("dist: stop worker %d: %w", w, err)
		}
	}
	x := make([]float64, cfg.N)
	copy(x, x0)
	updates := make([]int, cfg.Workers)
	linkBytes := make([][]int64, cfg.Workers)
	for i := range linkBytes {
		linkBytes[i] = make([]int64, cfg.Workers)
	}
	var sent, delivered, stale, dropped, reordered, duplicate int64
	finalDeadline := time.Now().Add(cfg.Timeout)
	for got := 0; got < cfg.Workers; got++ {
		select {
		case f := <-c.finalCh:
			copy(x[f.lo:f.lo+len(f.vals)], f.vals)
			updates[f.worker] = f.updates
			sent += int64(f.sent)
			delivered += int64(f.delivered)
			stale += int64(f.stale)
			dropped += int64(f.dropped)
			reordered += int64(f.reordered)
			duplicate += int64(f.duplicate)
			for q, b := range f.linkBytes {
				linkBytes[f.worker][q] += int64(b)
			}
		case err := <-c.errCh:
			c.shutdown()
			return nil, err
		case <-time.After(time.Until(finalDeadline)):
			c.shutdown()
			return nil, errors.New("dist: timed out waiting for final blocks")
		}
	}
	c.shutdown()

	if timedOut {
		return nil, fmt.Errorf("dist: run exceeded timeout %v without quiescence or budget exhaustion", cfg.Timeout)
	}
	// Star relays every data-plane frame, so its per-link counters live on
	// the coordinator's links (stable now — shutdown drained every relay
	// writer); mesh workers reported theirs in the finals.
	if cfg.Topology == TopologyStar {
		for to, l := range c.links {
			for from, b := range l.bytesFrom {
				linkBytes[from][to] += b
			}
		}
	}
	return &Result{
		X:                 x,
		Converged:         converged,
		UpdatesPerWorker:  updates,
		Elapsed:           time.Since(start),
		Topology:          cfg.Topology,
		MessagesSent:      sent,
		MessagesDelivered: delivered,
		MessagesStale:     stale,
		MessagesDropped:   dropped + c.dropped.Load(),
		MessagesReordered: reordered + c.reordered.Load(),
		MessagesDuplicate: duplicate + c.duplicate.Load(),
		BytesSent:         c.bytesOut.Load(),
		BytesReceived:     c.bytesIn.Load(),
		LinkBytes:         linkBytes,
		ProbeRounds:       probeRounds,
	}, nil
}

// shutdown tears the coordinator down in the only safe order: mark the run
// stopped (new delayed deliveries become no-ops), cancel pending relay
// timers and wait out callbacks already firing, and only then close the
// worker connections. A delayed delivery can therefore never write to a
// conn that is being closed.
func (c *coordinator) shutdown() {
	c.stopped.Store(true)
	c.delays.drain()
	for _, l := range c.links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// fail reports an error to the run loop without ever blocking: the single
// drain reads one error, and every further failure racing it (multiple
// link goroutines dying together at teardown) is dropped rather than
// wedging its goroutine on the channel send.
func (c *coordinator) fail(err error) {
	select {
	case c.errCh <- err:
	default:
	}
}

// write sends one prebuilt frame on link w; frames are written whole under
// the link mutex so concurrent writers never interleave.
func (c *coordinator) write(w int, frame []byte) error {
	l := c.links[w]
	l.mu.Lock()
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
	}
	return err
}

// deliverBlock writes a relayed shard frame from worker from to link w —
// unless a later-sequenced frame from the same source has already been
// delivered on this link, in which case the frame is discarded HERE:
// superseded (reordered) and duplicate frames are never written, so the
// receiver cannot count them again and no bandwidth is spent on them. The
// discard counts as drained for the termination protocol, like a drop.
func (c *coordinator) deliverBlock(w, from int, seq uint64, frame []byte) {
	if c.stopped.Load() {
		c.dropped.Add(1) // sent but undeliverable: the run is tearing down
		return
	}
	l := c.links[w]
	l.mu.Lock()
	if seq <= l.lastSeq[from] {
		newest := l.lastSeq[from]
		l.mu.Unlock()
		if seq < newest {
			c.reordered.Add(1)
		} else {
			c.duplicate.Add(1)
		}
		return
	}
	l.lastSeq[from] = seq
	_, err := l.conn.Write(frame)
	if err == nil {
		l.bytesFrom[from] += int64(len(frame))
	}
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
		return
	}
	// A failed write after stop is expected teardown. Before stop it means
	// a relayed block is lost with no delivery or drop to account for it —
	// in-flight could never reach zero again — so surface the broken link
	// instead of letting the run die as a generic timeout. (One-directional
	// stalls exist: this link's reader may still be healthy.)
	if !c.stopped.Load() {
		c.fail(fmt.Errorf("dist: relay to worker %d: %w", w, err))
	}
}

// serveLink reads one worker's frames: star shard broadcasts are relayed to
// every peer through the fault-injection path, statuses and finals are
// routed to the termination logic.
func (c *coordinator) serveLink(w int) {
	rng := rand.New(rand.NewSource(linkRNGSeed(c.cfg.Fault.Seed, w)))
	hold := reorderHoldFor(c.cfg.Fault)
	conn := c.links[w].conn
	for {
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil {
			if !c.stopped.Load() {
				c.fail(fmt.Errorf("dist: worker %d connection: %w", w, err))
			}
			return
		}
		c.bytesIn.Add(int64(frameHeaderLen + len(payload)))
		switch typ {
		case msgBlock:
			if c.cfg.Topology != TopologyStar {
				c.fail(fmt.Errorf("dist: worker %d sent a data-plane frame on the mesh control plane", w))
				return
			}
			cur := cursor{b: payload}
			from := int(cur.u32())
			seq := cur.u64()
			flags := cur.u8()
			if cur.err != nil || from != w {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed block frame", w))
				return
			}
			if c.stopped.Load() {
				// The worker counted p-1 sends for this broadcast; none
				// will be relayed now that the run is stopping.
				c.dropped.Add(int64(c.cfg.Workers - 1))
				continue
			}
			frame := buildFrame(msgBlock, payload)
			reliable := flags&blockReliable != 0
			for q := 0; q < c.cfg.Workers; q++ {
				if q == w {
					continue
				}
				drop, delay := c.cfg.Fault.decide(rng, hold, reliable)
				if drop {
					c.dropped.Add(1)
					continue
				}
				if delay <= 0 {
					c.deliverBlock(q, w, seq, frame)
					continue
				}
				q := q
				if !c.delays.after(delay, func() { c.deliverBlock(q, w, seq, frame) }) {
					// Teardown already began: no probe round will look
					// again, but the frame was counted sent — account the
					// disposal.
					c.dropped.Add(1)
				}
			}
		case msgStatus:
			cur := cursor{b: payload}
			st := status{worker: w, probeID: cur.u64()}
			flags := cur.u8()
			st.passive = flags&statusPassive != 0
			st.done = flags&statusDone != 0
			st.epoch = cur.u64()
			st.sent = cur.u64()
			st.delivered = cur.u64()
			st.drained = cur.u64()
			if cur.err != nil {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed status frame", w))
				return
			}
			select {
			case c.statusCh <- st:
			default: // stale round backlog; the prober discards by id anyway
			}
		case msgFinal:
			cur := cursor{b: payload}
			f := final{worker: w, lo: int(cur.u32())}
			count := int(cur.u32())
			f.vals = cur.f64s(count)
			f.updates = int(cur.u32())
			f.sent = cur.u64()
			f.delivered = cur.u64()
			f.stale = cur.u64()
			f.dropped = cur.u64()
			f.reordered = cur.u64()
			f.duplicate = cur.u64()
			f.linkBytes = cur.u64s(int(cur.u32()))
			if cur.err != nil || f.lo < 0 || f.lo+count > c.cfg.N || len(f.linkBytes) > c.cfg.Workers {
				c.fail(fmt.Errorf("dist: worker %d sent a malformed final frame", w))
				return
			}
			c.finalCh <- f
			return
		default:
			c.fail(fmt.Errorf("dist: worker %d sent unexpected frame type %d", w, typ))
			return
		}
	}
}

// probeRound is one network collect of the double-collect protocol: probe
// every worker, gather matching statuses, and assemble the Observation.
// The passive flags come from the statuses (each a self-consistent
// worker-side snapshot) and the coordinator's drain counters are read after
// the last status arrives, matching the in-process Tracker's "flags before
// counters" collect order. The drained total — injection drops plus
// link-filter discards, wherever they happened (coordinator relay in star,
// sending workers in mesh) — enters the observation as Dropped: none of
// those frames can ever reactivate a worker. Any timeout or stale reply
// just makes the round non-quiet; it is retried. lastDone is updated with
// each worker's done bit as a side effect.
func (c *coordinator) probeRound(lastDone []bool, deadline time.Time) runtime.Observation {
	c.probeSeq++
	probeID := c.probeSeq
	probe := buildFrame(msgProbe, appendU64(nil, probeID))
	for w := range c.links {
		if err := c.write(w, probe); err != nil {
			return runtime.Observation{}
		}
	}
	roundDeadline := time.Now().Add(probeRoundTimeout)
	if roundDeadline.After(deadline) {
		roundDeadline = deadline
	}
	obs := runtime.Observation{AllPassive: true}
	seen := make([]bool, len(c.links))
	for got := 0; got < len(c.links); {
		select {
		case st := <-c.statusCh:
			if st.probeID != probeID || seen[st.worker] {
				continue // stale round or duplicate
			}
			seen[st.worker] = true
			got++
			lastDone[st.worker] = st.done
			if !st.passive {
				obs.AllPassive = false
			}
			obs.Epoch += st.epoch
			obs.Sent += int64(st.sent)
			obs.Delivered += int64(st.delivered)
			obs.Dropped += int64(st.drained)
		case <-time.After(time.Until(roundDeadline)):
			return runtime.Observation{}
		}
	}
	obs.Dropped += c.dropped.Load() + c.reordered.Load() + c.duplicate.Load()
	return obs
}
