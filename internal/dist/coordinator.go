package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/vec"
)

// probeInterval paces the coordinator's termination probe rounds.
const probeInterval = 500 * time.Microsecond

// probeRoundTimeout bounds one probe round; a worker that cannot answer in
// time simply fails the round (it is retried), it does not fail the run.
const probeRoundTimeout = 2 * time.Second

// reorderHold is the extra delay a reorder-injected block is held for when
// Fault.MaxDelay does not imply one (4x MaxDelay otherwise): long enough
// that blocks sent after it on the same link overtake it.
const defaultReorderHold = 800 * time.Microsecond

// ServerConfig configures the coordinator half of a distributed run.
type ServerConfig struct {
	// Listener accepts the worker connections; Serve closes it when the
	// run ends. Workers must know its address out of band.
	Listener net.Listener
	// Workers is the number of worker connections to wait for. The
	// caller partitions the problem, so it must already be clamped to the
	// dimension.
	Workers int
	// N is the problem dimension; X0 the initial iterate (defaults zero).
	N  int
	X0 []float64
	// Tol, SweepsBelowTol and MaxUpdatesPerWorker are forwarded to the
	// workers in the welcome frame (see runtime.Config for semantics).
	Tol                 float64
	SweepsBelowTol      int
	MaxUpdatesPerWorker int
	// Fault is the per-link fault injection.
	Fault Fault
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
}

// link is one worker connection from the coordinator's side. Writes are
// whole prebuilt frames under mu, so concurrent relays, probes and the
// stop broadcast never interleave bytes.
type link struct {
	conn    net.Conn
	mu      sync.Mutex
	lastSeq []uint64 // per source worker: highest seq delivered on this link
}

type status struct {
	worker          int
	probeID         uint64
	passive, done   bool
	epoch           uint64
	sent, delivered uint64
}

type final struct {
	worker                 int
	lo                     int
	vals                   []float64
	updates                int
	sent, delivered, stale uint64
}

type coordinator struct {
	cfg    ServerConfig
	links  []*link
	blocks [][2]int

	dropped, reordered atomic.Int64
	bytesOut, bytesIn  atomic.Int64
	relays             sync.WaitGroup // in-flight delayed relay writes

	stopped  atomic.Bool
	statusCh chan status
	finalCh  chan final
	errCh    chan error
}

// Serve runs the coordinator: accept and welcome cfg.Workers workers,
// relay their block broadcasts with fault injection, probe for quiescence
// with the two-phase double collect, and stop the run — on quiescence
// (converged), when every worker exhausts its budget (not converged), or
// at Timeout (error).
func Serve(cfg ServerConfig) (*Result, error) {
	if cfg.Listener == nil {
		return nil, errors.New("dist: ServerConfig.Listener is required")
	}
	defer cfg.Listener.Close()
	if cfg.Workers < 1 {
		return nil, errors.New("dist: need at least one worker")
	}
	if cfg.N < 1 {
		return nil, errors.New("dist: dimension must be positive")
	}
	if cfg.X0 != nil && len(cfg.X0) != cfg.N {
		return nil, fmt.Errorf("dist: X0 length %d, want %d", len(cfg.X0), cfg.N)
	}
	if cfg.Workers > cfg.N {
		// Same clamp as Config.validate: never more blocks than components
		// (vec.Blocks would return fewer blocks than accept loops expect).
		cfg.Workers = cfg.N
	}
	applyRunDefaults(&cfg.SweepsBelowTol, &cfg.MaxUpdatesPerWorker, &cfg.Timeout)
	if err := cfg.Fault.validate(); err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, cfg.N)
	}

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	c := &coordinator{
		cfg:      cfg,
		links:    make([]*link, cfg.Workers),
		blocks:   vec.Blocks(cfg.N, cfg.Workers),
		statusCh: make(chan status, 4*cfg.Workers),
		finalCh:  make(chan final, cfg.Workers),
		errCh:    make(chan error, cfg.Workers),
	}

	// Accept and welcome every worker, then start its reader.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := cfg.Listener.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	for w := 0; w < cfg.Workers; w++ {
		conn, err := cfg.Listener.Accept()
		if err != nil {
			c.closeLinks()
			return nil, fmt.Errorf("dist: accept worker %d: %w", w, err)
		}
		// An absolute I/O deadline guarantees no read or write on this
		// link can outlive the run's Timeout — a stalled worker (full TCP
		// buffers, paused process) surfaces as a deadline error instead of
		// hanging Serve inside a blocking conn.Write. The grace period
		// covers the post-deadline stop/final exchange.
		conn.SetDeadline(deadline.Add(cfg.Timeout))
		c.links[w] = &link{conn: conn, lastSeq: make([]uint64, cfg.Workers)}
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil || typ != msgHello {
			c.closeLinks()
			return nil, fmt.Errorf("dist: worker %d handshake failed: %v", w, err)
		}
		cur := cursor{b: payload}
		if v := cur.u32(); cur.err != nil || v != protocolVersion {
			c.closeLinks()
			return nil, fmt.Errorf("dist: worker %d protocol version %d, want %d", w, v, protocolVersion)
		}
		wel := appendU32(nil, uint32(w))
		wel = appendU32(wel, uint32(cfg.Workers))
		wel = appendU32(wel, uint32(cfg.N))
		wel = appendU32(wel, uint32(c.blocks[w][0]))
		wel = appendU32(wel, uint32(c.blocks[w][1]))
		wel = appendF64(wel, cfg.Tol)
		wel = appendU32(wel, uint32(cfg.SweepsBelowTol))
		wel = appendU32(wel, uint32(cfg.MaxUpdatesPerWorker))
		wel = appendF64s(wel, x0)
		if err := c.write(w, buildFrame(msgWelcome, wel)); err != nil {
			c.closeLinks()
			return nil, fmt.Errorf("dist: welcome worker %d: %w", w, err)
		}
	}
	for w := range c.links {
		go c.serveLink(w)
	}

	// Probe for quiescence until it is detected, every worker is done, or
	// the deadline passes.
	converged := false
	timedOut := true // cleared when the loop ends for a legitimate reason
	var probeRounds int64
	lastDone := make([]bool, cfg.Workers)
	observe := func() runtime.Observation {
		probeRounds++
		return c.probeRound(lastDone, deadline)
	}
	for time.Now().Before(deadline) {
		if cfg.Tol > 0 && runtime.DoubleCollect(observe, nil) {
			converged = true
			timedOut = false
			break
		}
		if cfg.Tol <= 0 {
			// No convergence detection: a probe round still tracks done
			// bits so the run ends when every budget is exhausted.
			observe()
		}
		allDone := true
		for _, d := range lastDone {
			if !d {
				allDone = false
				break
			}
		}
		if allDone {
			timedOut = false // budget exhaustion, a valid non-converged end
			break
		}
		select {
		case err := <-c.errCh:
			c.stopped.Store(true)
			c.closeLinks()
			return nil, err
		case <-time.After(probeInterval):
		}
	}

	// Stop the run and collect the authoritative final blocks.
	c.stopped.Store(true)
	stopFrame := buildFrame(msgStop, nil)
	for w := range c.links {
		if err := c.write(w, stopFrame); err != nil {
			c.closeLinks()
			return nil, fmt.Errorf("dist: stop worker %d: %w", w, err)
		}
	}
	x := make([]float64, cfg.N)
	copy(x, x0)
	updates := make([]int, cfg.Workers)
	var sent, delivered, stale int64
	finalDeadline := time.Now().Add(cfg.Timeout)
	for got := 0; got < cfg.Workers; got++ {
		select {
		case f := <-c.finalCh:
			copy(x[f.lo:f.lo+len(f.vals)], f.vals)
			updates[f.worker] = f.updates
			sent += int64(f.sent)
			delivered += int64(f.delivered)
			stale += int64(f.stale)
		case err := <-c.errCh:
			c.closeLinks()
			return nil, err
		case <-time.After(time.Until(finalDeadline)):
			c.closeLinks()
			return nil, errors.New("dist: timed out waiting for final blocks")
		}
	}
	c.closeLinks()
	c.relays.Wait() // delayed relay writes now fail fast against closed conns

	if timedOut {
		return nil, fmt.Errorf("dist: run exceeded timeout %v without quiescence or budget exhaustion", cfg.Timeout)
	}
	return &Result{
		X:                 x,
		Converged:         converged,
		UpdatesPerWorker:  updates,
		Elapsed:           time.Since(start),
		MessagesSent:      sent,
		MessagesDelivered: delivered,
		MessagesStale:     stale,
		MessagesDropped:   c.dropped.Load(),
		MessagesReordered: c.reordered.Load(),
		BytesSent:         c.bytesOut.Load(),
		BytesReceived:     c.bytesIn.Load(),
		ProbeRounds:       probeRounds,
	}, nil
}

func (c *coordinator) closeLinks() {
	for _, l := range c.links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// write sends one prebuilt frame on link w; frames are written whole under
// the link mutex so concurrent writers never interleave.
func (c *coordinator) write(w int, frame []byte) error {
	l := c.links[w]
	l.mu.Lock()
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
	}
	return err
}

// deliverBlock writes a relayed block to link w, counting a reordered
// delivery when an earlier-sequenced block arrives after a later one from
// the same source.
func (c *coordinator) deliverBlock(w, from int, seq uint64, frame []byte) {
	if c.stopped.Load() {
		return
	}
	l := c.links[w]
	l.mu.Lock()
	if seq < l.lastSeq[from] {
		c.reordered.Add(1)
	} else {
		l.lastSeq[from] = seq
	}
	_, err := l.conn.Write(frame)
	l.mu.Unlock()
	if err == nil {
		c.bytesOut.Add(int64(len(frame)))
		return
	}
	// A failed write after stop is expected teardown. Before stop it means
	// a relayed block is lost with no delivery or drop to account for it —
	// in-flight could never reach zero again — so surface the broken link
	// instead of letting the run die as a generic timeout. (One-directional
	// stalls exist: this link's reader may still be healthy.)
	if !c.stopped.Load() {
		select {
		case c.errCh <- fmt.Errorf("dist: relay to worker %d: %w", w, err):
		default:
		}
	}
}

// serveLink reads one worker's frames: blocks are relayed to every peer
// through the fault-injection path, statuses and finals are routed to the
// termination logic.
func (c *coordinator) serveLink(w int) {
	rng := rand.New(rand.NewSource(int64(c.cfg.Fault.Seed) + int64(w)*7919))
	hold := 4 * c.cfg.Fault.MaxDelay
	if hold <= 0 {
		hold = defaultReorderHold
	}
	conn := c.links[w].conn
	for {
		typ, payload, err := readFrame(conn, maxFramePayload)
		if err != nil {
			if !c.stopped.Load() {
				c.errCh <- fmt.Errorf("dist: worker %d connection: %w", w, err)
			}
			return
		}
		c.bytesIn.Add(int64(frameHeaderLen + len(payload)))
		switch typ {
		case msgBlock:
			cur := cursor{b: payload}
			from := int(cur.u32())
			seq := cur.u64()
			flags := cur.u8()
			if cur.err != nil || from != w {
				c.errCh <- fmt.Errorf("dist: worker %d sent a malformed block frame", w)
				return
			}
			if c.stopped.Load() {
				continue
			}
			frame := buildFrame(msgBlock, payload)
			reliable := flags&blockReliable != 0
			for q := 0; q < c.cfg.Workers; q++ {
				if q == w {
					continue
				}
				if !reliable && c.cfg.Fault.DropProb > 0 && rng.Float64() < c.cfg.Fault.DropProb {
					c.dropped.Add(1)
					continue
				}
				var delay time.Duration
				if c.cfg.Fault.MaxDelay > 0 {
					delay = time.Duration(rng.Int63n(int64(c.cfg.Fault.MaxDelay) + 1))
				}
				if !reliable && c.cfg.Fault.ReorderProb > 0 && rng.Float64() < c.cfg.Fault.ReorderProb {
					delay += hold
				}
				if delay <= 0 {
					c.deliverBlock(q, w, seq, frame)
					continue
				}
				q := q
				c.relays.Add(1)
				time.AfterFunc(delay, func() {
					defer c.relays.Done()
					c.deliverBlock(q, w, seq, frame)
				})
			}
		case msgStatus:
			cur := cursor{b: payload}
			st := status{worker: w, probeID: cur.u64()}
			flags := cur.u8()
			st.passive = flags&statusPassive != 0
			st.done = flags&statusDone != 0
			st.epoch = cur.u64()
			st.sent = cur.u64()
			st.delivered = cur.u64()
			if cur.err != nil {
				c.errCh <- fmt.Errorf("dist: worker %d sent a malformed status frame", w)
				return
			}
			select {
			case c.statusCh <- st:
			default: // stale round backlog; the prober discards by id anyway
			}
		case msgFinal:
			cur := cursor{b: payload}
			f := final{worker: w, lo: int(cur.u32())}
			count := int(cur.u32())
			f.vals = cur.f64s(count)
			f.updates = int(cur.u32())
			f.sent = cur.u64()
			f.delivered = cur.u64()
			f.stale = cur.u64()
			if cur.err != nil || f.lo < 0 || f.lo+count > c.cfg.N {
				c.errCh <- fmt.Errorf("dist: worker %d sent a malformed final frame", w)
				return
			}
			c.finalCh <- f
			return
		default:
			c.errCh <- fmt.Errorf("dist: worker %d sent unexpected frame type %d", w, typ)
			return
		}
	}
}

// probeRound is one network collect of the double-collect protocol: probe
// every worker, gather matching statuses, and assemble the Observation.
// The passive flags come from the statuses (each a self-consistent
// worker-side snapshot) and the coordinator's drop counter is read after
// the last status arrives, matching the in-process Tracker's "flags before
// counters" collect order. Any timeout or stale reply just makes the round
// non-quiet; it is retried. lastDone is updated with each worker's done
// bit as a side effect.
func (c *coordinator) probeRound(lastDone []bool, deadline time.Time) runtime.Observation {
	probeID := uint64(time.Now().UnixNano())
	probe := buildFrame(msgProbe, appendU64(nil, probeID))
	for w := range c.links {
		if err := c.write(w, probe); err != nil {
			return runtime.Observation{}
		}
	}
	roundDeadline := time.Now().Add(probeRoundTimeout)
	if roundDeadline.After(deadline) {
		roundDeadline = deadline
	}
	obs := runtime.Observation{AllPassive: true}
	seen := make([]bool, len(c.links))
	for got := 0; got < len(c.links); {
		select {
		case st := <-c.statusCh:
			if st.probeID != probeID || seen[st.worker] {
				continue // stale round or duplicate
			}
			seen[st.worker] = true
			got++
			lastDone[st.worker] = st.done
			if !st.passive {
				obs.AllPassive = false
			}
			obs.Epoch += st.epoch
			obs.Sent += int64(st.sent)
			obs.Delivered += int64(st.delivered)
		case <-time.After(time.Until(roundDeadline)):
			return runtime.Observation{}
		}
	}
	obs.Dropped = c.dropped.Load()
	return obs
}
