package dist

// Chaos tests: the elastic engine must survive scheduled worker churn —
// kills that close sockets mid-solve, replacements that rejoin through the
// accept loop and warm-start from checkpoints — and still converge to the
// same tolerance, on both data planes, under drop/reorder/delay faults.
// And the other direction: with elasticity on but zero churn, nothing about
// the trajectory may change.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// slowOp stretches every component evaluation so a small test problem's
// solve spans the churn schedule instead of finishing before the first
// kill. It deliberately implements only the base Operator interface, so
// EvalBlock takes the componentwise path and the delay applies per
// component.
type slowOp struct {
	op    operators.Operator
	delay time.Duration
}

func (s slowOp) Dim() int { return s.op.Dim() }
func (s slowOp) Component(i int, x []float64) float64 {
	time.Sleep(s.delay)
	return s.op.Component(i, x)
}
func (s slowOp) Name() string { return "slow(" + s.op.Name() + ")" }

// TestChaosConvergesUnderChurn is the acceptance scenario: an 8-worker
// solve on each topology, under drop+reorder+delay fault injection, with 2
// workers killed mid-solve and restarted shortly after. The run must
// converge to tolerance anyway, and the report must show both the losses
// and the rejoins.
func TestChaosConvergesUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos schedule")
	}
	for _, topo := range []string{"star", "mesh"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			op, xstar := contractingOp(t, 64, 5)
			tol := 1e-9
			ckptDir := t.TempDir()
			ckptPath := filepath.Join(ckptDir, "chaos.ckpt")
			res, err := RunChaos(Config{
				Op:       slowOp{op: op, delay: 300 * time.Microsecond},
				Workers:  8,
				Topology: topo,
				Tol:      tol,
				Fault: Fault{
					DropProb:    0.05,
					ReorderProb: 0.05,
					MaxDelay:    200 * time.Microsecond,
					Seed:        11,
				},
				Elastic: Elastic{
					HeartbeatEvery: 20 * time.Millisecond,
					CheckpointPath: ckptPath,
				},
				Timeout: 2 * time.Minute,
			}, ChaosPlan{Events: []ChaosEvent{
				{Worker: 1, KillAfter: 80 * time.Millisecond, RestartAfter: 100 * time.Millisecond},
				{Worker: 5, KillAfter: 140 * time.Millisecond, RestartAfter: 100 * time.Millisecond},
			}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("chaos run did not converge")
			}
			if r := operators.Residual(op, res.X); r > 1.01*tol {
				t.Errorf("declared quiescent with residual %.3e > 1.01*tol %.1e", r, tol)
			}
			if e := vec.DistInf(res.X, xstar); e > 1e-5 {
				t.Errorf("error %v too large", e)
			}
			if res.WorkersLost < 2 {
				t.Errorf("WorkersLost = %d, want >= 2 (two scheduled kills)", res.WorkersLost)
			}
			if res.WorkersRejoined < 2 {
				t.Errorf("WorkersRejoined = %d, want >= 2 (both kills restarted)", res.WorkersRejoined)
			}
			// Losses and rejoins each ring the membership doorbell, but the
			// barrier coalesces changes that land close together — so the
			// count is >= 1, not one per event.
			if res.Resharding < 1 {
				t.Errorf("Resharding = %d, want >= 1", res.Resharding)
			}
			if fi, err := os.Stat(ckptPath); err != nil || fi.Size() == 0 {
				t.Errorf("coordinator checkpoint file missing or empty (err=%v)", err)
			}
		})
	}
}

// TestElasticZeroChurnBitIdentical pins the regression guarantee: with
// elasticity enabled but no churn, the trajectory is byte-for-byte the
// rigid one. A single worker makes the schedule deterministic, so the
// comparison can demand exact equality of the iterate and the update
// counts on both topologies.
func TestElasticZeroChurnBitIdentical(t *testing.T) {
	for _, topo := range []string{"star", "mesh"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			op, _ := contractingOp(t, 24, 3)
			base := Config{
				Op: op, Workers: 1, Topology: topo, Tol: 1e-11,
				MaxUpdatesPerWorker: 1 << 18,
			}
			rigid, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			elastic := base
			elastic.Elastic = Elastic{HeartbeatEvery: 5 * time.Millisecond}
			el, err := Run(elastic)
			if err != nil {
				t.Fatal(err)
			}
			if !rigid.Converged || !el.Converged {
				t.Fatalf("converged: rigid=%v elastic=%v", rigid.Converged, el.Converged)
			}
			if !reflect.DeepEqual(rigid.X, el.X) {
				t.Error("elastic zero-churn X differs from the rigid run")
			}
			if !reflect.DeepEqual(rigid.UpdatesPerWorker, el.UpdatesPerWorker) {
				t.Errorf("updates per worker drifted: rigid=%v elastic=%v",
					rigid.UpdatesPerWorker, el.UpdatesPerWorker)
			}
			if el.WorkersLost != 0 || el.WorkersRejoined != 0 || el.Resharding != 0 {
				t.Errorf("churn counters on a churn-free run: lost=%d rejoined=%d reshardings=%d",
					el.WorkersLost, el.WorkersRejoined, el.Resharding)
			}
		})
	}
}

// TestElasticZeroChurnMultiWorker: heartbeats and checkpoints across many
// workers must not perturb a healthy solve — it converges normally and the
// churn counters stay zero.
func TestElasticZeroChurnMultiWorker(t *testing.T) {
	op, xstar := contractingOp(t, 48, 7)
	res, err := Run(Config{
		Op: op, Workers: 6, Topology: "mesh", Tol: 1e-10,
		MaxUpdatesPerWorker: 1 << 18,
		Elastic:             Elastic{HeartbeatEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("elastic zero-churn run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-6 {
		t.Errorf("error %v too large", e)
	}
	if res.WorkersLost != 0 || res.WorkersRejoined != 0 || res.Resharding != 0 {
		t.Errorf("churn counters on a churn-free run: lost=%d rejoined=%d reshardings=%d",
			res.WorkersLost, res.WorkersRejoined, res.Resharding)
	}
}

// TestRunChaosRequiresElastic: a churn schedule without elastic membership
// is a configuration error, not a mysterious hang.
func TestRunChaosRequiresElastic(t *testing.T) {
	op, _ := contractingOp(t, 8, 1)
	if _, err := RunChaos(Config{Op: op, Workers: 2, Tol: 1e-8}, ChaosPlan{}); err == nil {
		t.Fatal("RunChaos accepted a config without Elastic.HeartbeatEvery")
	}
}
