// Package dist executes asynchronous iterations across workers that
// exchange blocks over real TCP sockets — the genuinely distributed
// transport behind the repro "dist" engine. The topology is a star: every
// worker connects to one coordinator, which relays block broadcasts
// between workers, injects per-link faults (extra delay, reordering
// holds, drops) so the paper's unbounded-delay and out-of-order regimes
// run on an actual network path, and decides termination.
//
// Termination is the two-phase double-collect protocol of
// internal/runtime (quiescence.go), run over the network as Safra-style
// probe rounds: the coordinator probes every worker, each replies with a
// self-consistent status (passive flag, activity epoch, sent/delivered
// counters — composed by the worker's single compute goroutine), and the
// run stops only after two consecutive quiet rounds with identical
// epochs and counters and nothing in flight (sum sent == sum delivered +
// coordinator-side drops). Workers obey the protocol's ordering rule —
// a reactivation is published (epoch bump, passive cleared) before the
// reactivating block is counted delivered — so a quiet round can never
// hide a message being absorbed.
//
// The same code paths serve two deployments: Run spawns the coordinator
// and all workers in-process over localhost TCP (how the tests and the
// in-process engine use it), and Serve/Connect are the halves the
// `asyncsolve dist-coordinator` / `asyncsolve dist-worker` subcommands
// expose for true multi-process runs.
package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/operators"
)

// Fault configures the coordinator's per-link fault injection. Every
// non-reliable relayed block is independently subjected to each knob.
type Fault struct {
	// DropProb is the iid probability a relayed block is dropped.
	DropProb float64
	// ReorderProb is the iid probability a relayed block is held back long
	// enough for later blocks on the same link to overtake it.
	ReorderProb float64
	// MaxDelay adds a uniform random transit delay in [0, MaxDelay] to
	// every relayed block (reliable ones included — delay is not loss).
	MaxDelay time.Duration
	// Seed drives the injection randomness.
	Seed uint64
}

// Config describes one distributed run.
type Config struct {
	// Op is the fixed-point operator; every worker evaluates its own block.
	Op operators.Operator
	// Workers is the number of TCP workers (clamped to the dimension).
	Workers int
	// X0 is the initial iterate (defaults to zero).
	X0 []float64
	// Tol is the per-coordinate block displacement tolerance (see
	// runtime.Config.Tol); zero disables convergence detection.
	Tol float64
	// SweepsBelowTol is the consecutive-confirmation count (default 2).
	SweepsBelowTol int
	// MaxUpdatesPerWorker bounds each worker's loop iterations.
	MaxUpdatesPerWorker int
	// Fault is the per-link fault injection.
	Fault Fault
	// Timeout is the wall-clock safety bound on the whole run (default 2m).
	Timeout time.Duration
	// Scratches optionally supplies one reusable operator scratch per
	// worker, as in runtime.Config.
	Scratches []*operators.Scratch
}

// Result reports one distributed run.
type Result struct {
	X                []float64
	Converged        bool
	UpdatesPerWorker []int
	Elapsed          time.Duration
	// MessagesSent counts per-recipient block sends (a broadcast to p-1
	// peers counts p-1); MessagesDelivered counts blocks acknowledged by
	// receivers; MessagesStale counts delivered blocks a receiver
	// discarded as superseded (an out-of-order arrival older than an
	// already-applied block); MessagesDropped counts injection drops;
	// MessagesReordered counts blocks delivered after a later-sequenced
	// block on the same directed link.
	MessagesSent, MessagesDelivered, MessagesStale, MessagesDropped, MessagesReordered int64
	// BytesSent / BytesReceived count wire bytes from the coordinator's
	// perspective (sent to workers / received from workers).
	BytesSent, BytesReceived int64
	// ProbeRounds counts termination probe rounds the coordinator ran.
	ProbeRounds int64
}

func (c *Config) validate() (n int, err error) {
	if c.Op == nil {
		return 0, errors.New("dist: Config.Op is required")
	}
	n = c.Op.Dim()
	if c.Workers < 1 {
		return 0, errors.New("dist: need at least one worker")
	}
	if c.Workers > n {
		c.Workers = n
	}
	if c.X0 != nil && len(c.X0) != n {
		return 0, fmt.Errorf("dist: X0 length %d, want %d", len(c.X0), n)
	}
	applyRunDefaults(&c.SweepsBelowTol, &c.MaxUpdatesPerWorker, &c.Timeout)
	if err := c.Fault.validate(); err != nil {
		return 0, err
	}
	return n, nil
}

// applyRunDefaults fills the run-knob defaults shared by the in-process
// Config and the coordinator's ServerConfig, so the two entry points cannot
// drift apart.
func applyRunDefaults(sweepsBelowTol, maxUpdatesPerWorker *int, timeout *time.Duration) {
	if *sweepsBelowTol <= 0 {
		*sweepsBelowTol = 2
	}
	if *maxUpdatesPerWorker <= 0 {
		*maxUpdatesPerWorker = 1 << 20
	}
	if *timeout <= 0 {
		*timeout = 2 * time.Minute
	}
}

func (f Fault) validate() error {
	if !(f.DropProb >= 0 && f.DropProb < 1) { // NaN fails too
		return fmt.Errorf("dist: DropProb %v outside [0, 1)", f.DropProb)
	}
	if !(f.ReorderProb >= 0 && f.ReorderProb < 1) {
		return fmt.Errorf("dist: ReorderProb %v outside [0, 1)", f.ReorderProb)
	}
	if f.MaxDelay < 0 {
		return fmt.Errorf("dist: MaxDelay %v is negative", f.MaxDelay)
	}
	return nil
}

// workerScratch mirrors runtime.Config.workerScratch.
func (c *Config) workerScratch(w int) *operators.Scratch {
	if w < len(c.Scratches) && c.Scratches[w] != nil {
		return c.Scratches[w]
	}
	return operators.NewScratch()
}

// Run executes the full distributed solve in-process over localhost TCP:
// it listens on an ephemeral port, launches the coordinator, dials one TCP
// worker per block, and returns the coordinator's result. This is real
// networking end to end — the same frames, fault injection and probe
// rounds a multi-process deployment uses — just with every endpoint in one
// process so tests and the engine need no orchestration.
func Run(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()

	type serveOut struct {
		res *Result
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener:            ln,
			Workers:             cfg.Workers,
			N:                   n,
			X0:                  cfg.X0,
			Tol:                 cfg.Tol,
			SweepsBelowTol:      cfg.SweepsBelowTol,
			MaxUpdatesPerWorker: cfg.MaxUpdatesPerWorker,
			Fault:               cfg.Fault,
			Timeout:             cfg.Timeout,
		})
		serveCh <- serveOut{res, err}
	}()

	workerErr := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			workerErr <- Connect(addr, cfg.Op, cfg.workerScratch(w))
		}(w)
	}

	out := <-serveCh
	// The coordinator has finished (stop sent, finals collected, or an
	// error); workers unwind on their own — surface the first failure.
	var firstWorkerErr error
	for w := 0; w < cfg.Workers; w++ {
		if err := <-workerErr; err != nil && firstWorkerErr == nil {
			firstWorkerErr = err
		}
	}
	if out.err != nil {
		return nil, out.err
	}
	if firstWorkerErr != nil {
		return nil, firstWorkerErr
	}
	return out.res, nil
}
