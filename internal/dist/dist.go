// Package dist executes asynchronous iterations across workers that
// exchange shard frames over real TCP sockets — the genuinely distributed
// transport behind the repro "dist" engine. Each worker owns a contiguous
// multi-component shard of the iterate (Workers may be far smaller than the
// dimension) and publishes [offset, len) slices of it; under a delta
// threshold only the components that moved significantly are shipped — the
// paper's flexible communication realized on the wire.
//
// Two data planes share one control plane:
//
//   - Star (TopologyStar): every worker connects to one coordinator, which
//     relays shard broadcasts between workers and injects per-link faults
//     (extra delay, reordering holds, drops) so the paper's unbounded-delay
//     and out-of-order regimes run on an actual network path.
//   - Mesh (TopologyMesh): after rendezvous the coordinator hands every
//     worker its peers' listen addresses and workers exchange shard frames
//     directly over worker-to-worker TCP links, removing the coordinator as
//     the bandwidth bottleneck. Fault injection and per-source sequence
//     filtering run on the sending side of each mesh link, so star and mesh
//     are behaviorally comparable under identical seeds.
//
// In both topologies the coordinator keeps the control plane: rendezvous,
// fault/topology config distribution, probe-round double-collect
// termination, and final shard collection.
//
// On every directed link (a star relay leg or a mesh link) frames are
// sequence-filtered at the delivery point: a frame overtaken by a
// later-sequenced frame from the same source is discarded there — never
// written, never applied — and counted reordered (seq below the newest) or
// duplicate (seq equal). Discarded frames count as drained for the
// termination protocol, like injection drops: they can never reactivate a
// worker.
//
// Termination is the two-phase double-collect protocol of
// internal/runtime (quiescence.go), run over the network as Safra-style
// probe rounds: the coordinator probes every worker, each replies with a
// self-consistent status (passive flag, activity epoch, sent/delivered
// counters — composed by the worker's single compute goroutine — plus its
// monotone drained counter), and the run stops only after two consecutive
// quiet rounds with identical epochs and counters and nothing in flight
// (sum sent == sum delivered + drops + link-filter discards). Workers obey
// the protocol's ordering rule — a reactivation is published (epoch bump,
// passive cleared) before the reactivating block is counted delivered — so
// a quiet round can never hide a message being absorbed.
//
// Under elastic membership (Config.Elastic, protocol v3) the run survives
// worker churn: workers heartbeat the control link, the coordinator treats
// a silent link as a lost worker, re-shards the component space over the
// survivors behind a pause/ack/assign barrier (a re-shard counts as a
// reactivation under the two-phase protocol, so no quiescence can be
// certified across one), and keeps its listener open so a restarted worker
// — retrying under capped exponential backoff — can claim the freed slot
// and warm-start from the last checkpointed iterate instead of x0. Every
// data frame is fenced to the membership generation it was sent in, so
// frames from before a re-shard self-discard wherever they surface.
//
// The same code paths serve two deployments: Run spawns the coordinator
// and all workers in-process over localhost TCP (how the tests and the
// in-process engine use it), and Serve/Connect are the halves the
// `asyncsolve dist-coordinator` / `asyncsolve dist-worker` subcommands
// expose for true multi-process runs.
package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/operators"
)

// The supported data-plane topologies.
const (
	// TopologyStar relays every shard frame through the coordinator.
	TopologyStar = "star"
	// TopologyMesh exchanges shard frames over direct worker-to-worker TCP
	// links; the coordinator keeps only the control plane.
	TopologyMesh = "mesh"
)

// Fault configures per-link fault injection. Every non-reliable shard frame
// is independently subjected to each knob — by the coordinator's relay in
// the star topology, by the sending side of each mesh link in the mesh
// topology.
type Fault struct {
	// DropProb is the iid probability a relayed block is dropped.
	DropProb float64
	// ReorderProb is the iid probability a relayed block is held back long
	// enough for later blocks on the same link to overtake it.
	ReorderProb float64
	// MaxDelay adds a uniform random transit delay in [0, MaxDelay] to
	// every relayed block (reliable ones included — delay is not loss).
	MaxDelay time.Duration
	// Seed drives the injection randomness. The per-source RNG derivation
	// is shared by both topologies, so a star and a mesh run with the same
	// seed draw the same per-(frame, destination) fault decisions.
	Seed uint64
}

// Config describes one distributed run.
type Config struct {
	// Op is the fixed-point operator; every worker evaluates its own shard.
	Op operators.Operator
	// Workers is the number of TCP workers (clamped to the dimension); each
	// owns a contiguous shard of roughly Dim/Workers components.
	Workers int
	// Topology selects the data plane: TopologyStar (default) or
	// TopologyMesh.
	Topology string
	// X0 is the initial iterate (defaults to zero).
	X0 []float64
	// Tol is the per-coordinate block displacement tolerance (see
	// runtime.Config.Tol); zero disables convergence detection.
	Tol float64
	// SweepsBelowTol is the consecutive-confirmation count (default 2).
	SweepsBelowTol int
	// MaxUpdatesPerWorker bounds each worker's loop iterations.
	MaxUpdatesPerWorker int
	// DeltaThreshold, when positive, enables flexible communication: a
	// non-final broadcast ships one frame covering the span from the first
	// to the last shard component that moved by more than the threshold
	// since it was last shipped (sub-threshold components inside the span
	// ride along), and ships nothing when nothing moved. On loss-free
	// delivery peer views lag the sender by at most the threshold per
	// component, so it should be chosen at or below Tol; a frame lost to
	// injection or superseded before delivery leaves its components stale
	// until they move again, and the reliable final re-broadcast — always
	// the whole shard — restores exactness for termination.
	DeltaThreshold float64
	// Fault is the per-link fault injection.
	Fault Fault
	// Elastic configures elastic membership: heartbeat-based worker-loss
	// detection, mid-solve re-sharding, rejoin and checkpointing. The zero
	// value keeps the rigid behavior where a lost worker fails the run.
	Elastic Elastic
	// Timeout is the wall-clock safety bound on the whole run (default 2m).
	Timeout time.Duration
	// Scratches optionally supplies one reusable operator scratch per
	// worker, as in runtime.Config.
	Scratches []*operators.Scratch
	// Tuning is installed on every worker scratch, as in runtime.Config.
	Tuning operators.Tuning
}

// Result reports one distributed run.
type Result struct {
	X                []float64
	Converged        bool
	UpdatesPerWorker []int
	Elapsed          time.Duration
	// Topology is the data plane that ran (TopologyStar or TopologyMesh).
	Topology string
	// MessagesSent counts per-recipient shard-frame sends (a broadcast to
	// p-1 peers counts p-1); MessagesDelivered counts frames acknowledged
	// by receivers; MessagesDropped counts fault-injection drops plus
	// frames disposed at teardown (sent but no longer deliverable once the
	// run stopped). A certified-quiescent (converged) run with no churn
	// stops with nothing pending, so its counters balance exactly: sent =
	// delivered + dropped + reordered + duplicate; a budget- or
	// timeout-ended run may leave a small residual of frames cut off
	// mid-teardown, and a run with churn loses the lifetime counters of
	// workers that died (each re-shard also erases the old generation's
	// in-flight frames from the books), so under churn the identity is not
	// expected to hold.
	//
	// The link-filter counters are disjoint from each other and from the
	// above: MessagesReordered counts frames discarded at the delivery
	// point of a directed link because a later-sequenced frame from the
	// same source had already been delivered there (seq strictly below the
	// newest — they are dropped at the link, never written or applied);
	// MessagesDuplicate counts frames whose sequence number exactly matched
	// the newest already delivered on that link; MessagesStale counts
	// frames that slipped past the link filter and were discarded by the
	// receiver as superseded (defense in depth — zero in a healthy run).
	MessagesSent, MessagesDelivered, MessagesStale, MessagesDropped, MessagesReordered, MessagesDuplicate int64
	// BytesSent / BytesReceived count wire bytes from the coordinator's
	// perspective (sent to workers / received from workers). In the star
	// topology that is the whole run; in the mesh topology it is the
	// control plane only — the data plane is in LinkBytes.
	BytesSent, BytesReceived int64
	// LinkBytes[i][j] counts data-plane wire bytes shipped from worker i to
	// worker j (through the relay in star, directly in mesh).
	LinkBytes [][]int64
	// ProbeRounds counts termination probe rounds the coordinator ran.
	ProbeRounds int64
	// WorkersLost counts links the coordinator declared dead (heartbeat
	// silence or failed writes), WorkersRejoined the restarted workers that
	// successfully claimed a freed slot, and Resharding the membership
	// barriers that re-issued the shard table. All three are zero in a
	// rigid (non-elastic) or churn-free run. A slot that was lost and
	// re-occupied reports only its final occupant's UpdatesPerWorker.
	WorkersLost, WorkersRejoined, Resharding int64
}

func (c *Config) validate() (n int, err error) {
	if c.Op == nil {
		return 0, errors.New("dist: Config.Op is required")
	}
	n = c.Op.Dim()
	if c.Workers < 1 {
		return 0, errors.New("dist: need at least one worker")
	}
	if c.Workers > n {
		c.Workers = n
	}
	if c.X0 != nil && len(c.X0) != n {
		return 0, fmt.Errorf("dist: X0 length %d, want %d", len(c.X0), n)
	}
	if err := validateTopology(&c.Topology); err != nil {
		return 0, err
	}
	if err := validateDeltaThreshold(c.DeltaThreshold); err != nil {
		return 0, err
	}
	applyRunDefaults(&c.SweepsBelowTol, &c.MaxUpdatesPerWorker, &c.Timeout)
	if err := c.Fault.validate(); err != nil {
		return 0, err
	}
	if err := c.Elastic.validate(); err != nil {
		return 0, err
	}
	return n, nil
}

// applyRunDefaults fills the run-knob defaults shared by the in-process
// Config and the coordinator's ServerConfig, so the two entry points cannot
// drift apart.
func applyRunDefaults(sweepsBelowTol, maxUpdatesPerWorker *int, timeout *time.Duration) {
	if *sweepsBelowTol <= 0 {
		*sweepsBelowTol = 2
	}
	if *maxUpdatesPerWorker <= 0 {
		*maxUpdatesPerWorker = 1 << 20
	}
	if *timeout <= 0 {
		*timeout = 2 * time.Minute
	}
}

func validateTopology(topology *string) error {
	switch *topology {
	case "":
		*topology = TopologyStar
	case TopologyStar, TopologyMesh:
	default:
		return fmt.Errorf("dist: unknown topology %q (want %q or %q)", *topology, TopologyStar, TopologyMesh)
	}
	return nil
}

func validateDeltaThreshold(d float64) error {
	if d < 0 || d != d {
		return fmt.Errorf("dist: DeltaThreshold %v is not a non-negative number", d)
	}
	return nil
}

func (f Fault) validate() error {
	if !(f.DropProb >= 0 && f.DropProb < 1) { // NaN fails too
		return fmt.Errorf("dist: DropProb %v outside [0, 1)", f.DropProb)
	}
	if !(f.ReorderProb >= 0 && f.ReorderProb < 1) {
		return fmt.Errorf("dist: ReorderProb %v outside [0, 1)", f.ReorderProb)
	}
	if f.MaxDelay < 0 {
		return fmt.Errorf("dist: MaxDelay %v is negative", f.MaxDelay)
	}
	return nil
}

// workerScratch mirrors runtime.Config.workerScratch.
func (c *Config) workerScratch(w int) *operators.Scratch {
	scr := operators.NewScratch()
	if w < len(c.Scratches) && c.Scratches[w] != nil {
		scr = c.Scratches[w]
	}
	scr.SetTuning(c.Tuning)
	return scr
}

// Run executes the full distributed solve in-process over localhost TCP:
// it listens on an ephemeral port, launches the coordinator, dials one TCP
// worker per shard, and returns the coordinator's result. This is real
// networking end to end — the same frames, fault injection and probe
// rounds a multi-process deployment uses (including the worker-to-worker
// links of the mesh topology) — just with every endpoint in one process so
// tests and the engine need no orchestration.
func Run(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()

	type serveOut struct {
		res *Result
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener:            ln,
			Workers:             cfg.Workers,
			Topology:            cfg.Topology,
			N:                   n,
			X0:                  cfg.X0,
			Tol:                 cfg.Tol,
			SweepsBelowTol:      cfg.SweepsBelowTol,
			MaxUpdatesPerWorker: cfg.MaxUpdatesPerWorker,
			DeltaThreshold:      cfg.DeltaThreshold,
			Fault:               cfg.Fault,
			Elastic:             cfg.Elastic,
			Timeout:             cfg.Timeout,
		})
		serveCh <- serveOut{res, err}
	}()

	workerErr := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			workerErr <- Connect(addr, cfg.Op, cfg.workerScratch(w))
		}(w)
	}

	out := <-serveCh
	// The coordinator has finished (stop sent, finals collected, or an
	// error); workers unwind on their own — surface the first failure.
	var firstWorkerErr error
	for w := 0; w < cfg.Workers; w++ {
		if err := <-workerErr; err != nil && firstWorkerErr == nil {
			firstWorkerErr = err
		}
	}
	if out.err != nil {
		return nil, out.err
	}
	if firstWorkerErr != nil {
		return nil, firstWorkerErr
	}
	return out.res, nil
}
