package dist

import (
	"fmt"
	"math"
	"net"
	"time"

	"repro/internal/operators"
)

// maxFramePayload is the sanity bound on any frame's payload.
const maxFramePayload = 1 << 26

// passiveWait is how long a passive or done worker blocks for input before
// re-checking its loop condition; it bounds the latency of noticing stop.
const passiveWait = 200 * time.Microsecond

// doneWait is the fallback deadline a budget-exhausted worker waits for the
// coordinator's stop before giving up (the coordinator's own Timeout should
// always fire first).
const doneWait = 5 * time.Minute

type inFrame struct {
	typ     byte
	payload []byte
}

// workerState is the per-worker protocol state. It lives entirely on the
// compute goroutine, so status replies are self-consistent snapshots by
// construction — the property the coordinator's probe rounds rely on. The
// only mesh-side exceptions are the drained counters, which delayed-send
// timers bump through atomics.
type workerState struct {
	conn            net.Conn
	id, p, n        int
	lo, hi          int
	tol             float64
	sweeps, maxUpds int
	deltaThreshold  float64

	view     []float64
	out      []float64
	chk      []float64 // blockDelta's evaluation buffer
	lastSent []float64 // per own component: value last shipped to peers
	lastSeq  []uint64  // per source: highest applied block sequence (this gen)
	op       operators.Operator
	scr      *operators.Scratch

	mesh *mesh // nil in the star topology

	// Elastic membership. gen is the current membership generation — every
	// data frame is fenced to it, and sent/delivered restart at zero when it
	// changes, so in-flight accounting never mixes generations. awaitAssign
	// is the paused window between acknowledging a reshard and receiving
	// the new shard table; resetStreak tells the loop its convergence
	// streak spans a re-shard and must restart.
	gen              uint32
	hbEvery, ckEvery time.Duration
	awaitAssign      bool
	resetStreak      bool
	lastHB, lastCk   time.Time

	passive, done, stopped bool
	epoch                  uint64
	// sent/delivered/stale are lifetime counters for the final report;
	// gsent/gdelivered are the generation-scoped pair the termination
	// probes see. With no churn the pairs are identical.
	sent, delivered, stale uint64
	gsent, gdelivered      uint64
	updates                int
	seq                    uint64
}

func runWorker(conn net.Conn, op operators.Operator, scr *operators.Scratch, ctl *WorkerCtl) error {
	if scr == nil {
		scr = operators.NewScratch()
	}
	if _, err := conn.Write(buildFrame(msgHello, appendU32(nil, protocolVersion))); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}
	typ, payload, err := readFrame(conn, maxFramePayload)
	if err != nil {
		return fmt.Errorf("dist: worker welcome: %w", err)
	}
	if typ == msgReject {
		cur := cursor{b: payload}
		return &rejectedError{reason: cur.str()}
	}
	if typ != msgWelcome {
		return fmt.Errorf("dist: worker expected welcome, got frame type %d", typ)
	}
	cur := cursor{b: payload}
	ws := &workerState{
		conn: conn,
		id:   int(cur.u32()),
		p:    int(cur.u32()),
		n:    int(cur.u32()),
		lo:   int(cur.u32()),
		hi:   int(cur.u32()),
		tol:  cur.f64(),
		op:   op,
		scr:  scr,
	}
	ws.sweeps = int(cur.u32())
	ws.maxUpds = int(cur.u32())
	topology := cur.u8()
	ws.deltaThreshold = cur.f64()
	timeout := time.Duration(cur.u64())
	fault := Fault{
		DropProb:    cur.f64(),
		ReorderProb: cur.f64(),
		MaxDelay:    time.Duration(cur.u64()),
		Seed:        cur.u64(),
	}
	ws.gen = cur.u32()
	rejoining := cur.u8() != 0
	ws.hbEvery = time.Duration(cur.u64())
	ws.ckEvery = time.Duration(cur.u64())
	if cur.err == nil {
		ws.view = cur.f64s(ws.n)
	}
	if cur.err != nil {
		return fmt.Errorf("dist: worker welcome decode: %w", cur.err)
	}
	if op.Dim() != ws.n {
		return fmt.Errorf("dist: worker operator dim %d, coordinator says %d", op.Dim(), ws.n)
	}
	ws.out = make([]float64, ws.hi-ws.lo)
	ws.chk = make([]float64, ws.hi-ws.lo)
	ws.lastSent = append([]float64(nil), ws.view[ws.lo:ws.hi]...)
	ws.lastSeq = make([]uint64, ws.p)
	// A rejoiner owns no shard until its first assign re-shards it in.
	ws.awaitAssign = rejoining

	// Reader goroutines decode frames into the shared inbox; the quit
	// channel unblocks them if the compute loop returns while they hold a
	// frame. The control reader reports a lost coordinator with an
	// in-band sentinel (multiple readers share the inbox, so nobody may
	// close it); mesh readers go quiet on error — a peer closing its
	// sockets after stop is normal teardown (and under elastic membership a
	// crashed peer is the coordinator's heartbeat timeout to notice, not
	// ours), so a dead inbound link just stops producing frames.
	inbox := make(chan inFrame, 1024)
	quit := make(chan struct{})
	defer close(quit)
	readInto := func(c net.Conn, ctrl bool) {
		for {
			typ, payload, err := readFrame(c, maxFramePayload)
			if err != nil {
				if ctrl {
					select {
					case inbox <- inFrame{typ: msgConnLost, payload: []byte(err.Error())}:
					case <-quit:
					}
				}
				return
			}
			if !ctrl && typ != msgBlock {
				select {
				case inbox <- inFrame{typ: msgConnLost, payload: []byte(fmt.Sprintf("mesh peer sent frame type %d", typ))}:
				case <-quit:
				}
				return
			}
			select {
			case inbox <- inFrame{typ, payload}:
			case <-quit:
				return
			}
		}
	}

	// Mesh rendezvous: open a listener on the interface that reaches the
	// coordinator, advertise it and — unless we are rejoining a run already
	// in flight, whose peer table arrives with our first assign — receive
	// the full peer table and establish every worker-to-worker link before
	// the first compute phase.
	if topology == topologyMeshWire {
		ln, err := meshListener(conn)
		if err != nil {
			return err
		}
		if !ctl.register(ln) {
			ln.Close()
			return errWorkerKilled
		}
		if _, err := conn.Write(buildFrame(msgMeshAddr, appendStr(nil, ln.Addr().String()))); err != nil {
			ln.Close()
			return fmt.Errorf("dist: worker %d mesh address: %w", ws.id, err)
		}
		// Mesh sockets outlive the coordinator Timeout by design (the
		// stop/final exchange), but must never outlive the run unboundedly.
		meshDeadline := time.Now().Add(2 * timeout)
		if timeout <= 0 {
			meshDeadline = time.Now().Add(doneWait)
		}
		if rejoining {
			m := newMesh(ws.id, ws.p, fault, ws.gen, meshDeadline)
			m.ln = ln
			ws.mesh = m
		} else {
			typ, payload, err := readFrame(conn, maxFramePayload)
			if err != nil || typ != msgPeers {
				ln.Close()
				return fmt.Errorf("dist: worker %d peer table: %v", ws.id, err)
			}
			cur := cursor{b: payload}
			count := int(cur.u32())
			if cur.err != nil || count != ws.p {
				ln.Close()
				return fmt.Errorf("dist: worker %d peer table count %d, want %d", ws.id, count, ws.p)
			}
			peers := make([]string, count)
			for i := range peers {
				peers[i] = cur.str()
			}
			if cur.err != nil {
				ln.Close()
				return fmt.Errorf("dist: worker %d peer table decode: %w", ws.id, cur.err)
			}
			m, err := dialMesh(ws.id, ws.p, ln, peers, fault, ws.gen, meshDeadline, ws.hbEvery > 0)
			if err != nil {
				return err
			}
			ws.mesh = m
		}
		defer ws.mesh.shutdown()
	}

	//repro:join-ok exits on conn close (the deferred Close in connectOnce) or the quit close above
	go readInto(conn, true)
	if ws.mesh != nil {
		// Readers for the rendezvous links go up BEFORE the accept loop:
		// serveAccepts appends late-accepted conns to mesh.in and spawns
		// their readers itself, so starting it first would race on the
		// slice and double-read any conn that lands in the gap.
		for _, mc := range ws.mesh.in {
			//repro:join-ok exits on conn close (mesh shutdown or peer teardown) or the quit close above
			go readInto(mc, false)
		}
		if ws.mesh.ln != nil {
			ws.mesh.serveAccepts(func(c net.Conn) {
				//repro:join-ok exits on conn close (mesh shutdown or peer teardown) or the quit close above
				go readInto(c, false)
			})
		}
	}

	return ws.loop(inbox)
}

// blockDelta is the worker's local convergence measure: the max displacement
// |F_c(view) - view_c| over its own shard, evaluated on its current view.
//
//repro:hotpath
func (ws *workerState) blockDelta() float64 {
	operators.EvalBlock(ws.op, ws.scr, ws.lo, ws.hi, ws.view, ws.chk)
	d := 0.0
	for i, v := range ws.chk {
		v -= ws.view[ws.lo+i]
		if v < 0 {
			v = -v
		}
		if v > d {
			d = v
		}
	}
	return d
}

// heartbeatFrame is shared by every worker: conn.Write never mutates it.
var heartbeatFrame = buildFrame(msgHeartbeat, nil)

// maintain paces the elastic control traffic from the compute goroutine: a
// heartbeat whenever the control link has been quiet for HeartbeatEvery
// (every control frame proves liveness, but the heartbeat guarantees a
// bound), and a shard checkpoint every CheckpointEvery while the worker
// owns a shard. Both are trajectory-neutral: they read the view, never
// write it.
func (ws *workerState) maintain() error {
	if ws.hbEvery <= 0 {
		return nil
	}
	now := time.Now()
	if now.Sub(ws.lastHB) >= ws.hbEvery {
		ws.lastHB = now
		if _, err := ws.conn.Write(heartbeatFrame); err != nil {
			return fmt.Errorf("dist: worker %d heartbeat: %w", ws.id, err)
		}
	}
	if ws.ckEvery > 0 && !ws.awaitAssign && ws.hi > ws.lo && now.Sub(ws.lastCk) >= ws.ckEvery {
		ws.lastCk = now
		ck := appendU32(nil, ws.gen)
		ck = appendU32(ck, uint32(ws.lo))
		ck = appendU32(ck, uint32(ws.hi-ws.lo))
		ck = appendF64s(ck, ws.view[ws.lo:ws.hi])
		if _, err := ws.conn.Write(buildFrame(msgCheckpoint, ck)); err != nil {
			return fmt.Errorf("dist: worker %d checkpoint: %w", ws.id, err)
		}
	}
	return nil
}

// handle processes one inbound frame. A block that arrives while the worker
// is passive reactivates it BEFORE the delivery is counted — the protocol's
// ordering rule: the coordinator's probe rounds either still see the block
// in flight or see this worker active (or the epoch bumps of a re-check).
func (ws *workerState) handle(f inFrame) error {
	switch f.typ {
	case msgBlock:
		cur := cursor{b: f.payload}
		from := int(cur.u32())
		seq := cur.u64()
		cur.u8() // flags
		gen := cur.u32()
		blo := int(cur.u32())
		count := int(cur.u32())
		vals := cur.f64s(count)
		if cur.err != nil || blo < 0 || blo+count > ws.n || from < 0 || from >= ws.p {
			return fmt.Errorf("dist: worker %d: bad block frame", ws.id)
		}
		if gen != ws.gen {
			// A frame from before a re-shard we have already acknowledged
			// (or, transiently, after one we have not yet seen — the
			// coordinator's reshard is in our inbox behind it). Its send was
			// erased from the generation books, so it is disposed without
			// touching them; the lifetime counters still record it.
			ws.delivered++
			ws.stale++
			return nil
		}
		if seq <= ws.lastSeq[from] {
			// Defense in depth: the link filter already discards superseded
			// and duplicate frames at the delivery point, so a frame older
			// than one already applied should never reach us — but if one
			// does (the label discipline for out-of-order messages), the
			// stale values are discarded. The delivery is still acknowledged
			// to drain the in-flight count; a discarded block cannot
			// reactivate anyone, so no epoch bump is needed.
			ws.delivered++
			ws.stale++
			ws.gdelivered++
			return nil
		}
		ws.lastSeq[from] = seq
		// The protocol's ordering rule: publish the reactivation before
		// acknowledging the delivery. Budget-exhausted workers reactivate
		// too — they cannot compute, but staying observably passive while
		// absorbing data they can no longer verify would let the
		// coordinator certify a false quiescence; recheck() re-passivates
		// them only if the new data left their shard converged.
		if ws.passive {
			ws.passive = false
			ws.epoch++
		}
		copy(ws.view[blo:blo+count], vals)
		ws.delivered++
		ws.gdelivered++
	case msgProbe:
		cur := cursor{b: f.payload}
		probeID := cur.u64()
		if cur.err != nil {
			return fmt.Errorf("dist: worker %d: bad probe frame", ws.id)
		}
		var flags byte
		if ws.passive {
			flags |= statusPassive
		}
		if ws.done {
			flags |= statusDone
		}
		var drained uint64
		if ws.mesh != nil {
			drained = ws.mesh.drained()
		}
		st := appendU64(nil, probeID)
		st = append(st, flags)
		st = appendU32(st, ws.gen)
		st = appendU64(st, ws.epoch)
		st = appendU64(st, ws.gsent)
		st = appendU64(st, ws.gdelivered)
		st = appendU64(st, drained)
		if _, err := ws.conn.Write(buildFrame(msgStatus, st)); err != nil {
			return fmt.Errorf("dist: worker %d status: %w", ws.id, err)
		}
	case msgReshard:
		cur := cursor{b: f.payload}
		gen := cur.u32()
		if cur.err != nil {
			return fmt.Errorf("dist: worker %d: bad reshard frame", ws.id)
		}
		if gen <= ws.gen {
			return nil // a barrier attempt we already acknowledged
		}
		// Enter the new generation: a re-shard is a reactivation under the
		// two-phase protocol (the epoch bump invalidates any probe round in
		// flight), the generation-scoped books restart at zero on both
		// sides, sequence streams restart, and the mesh fence flips so
		// everything still in flight from the old generation self-discards.
		ws.gen = gen
		ws.epoch++
		ws.passive = false
		ws.awaitAssign = true
		ws.resetStreak = true
		ws.gsent, ws.gdelivered = 0, 0
		ws.seq = 0
		for i := range ws.lastSeq {
			ws.lastSeq[i] = 0
		}
		if ws.mesh != nil {
			ws.mesh.pauseForGen(gen)
		}
		// Acknowledge with our current shard — the freshest values the
		// coordinator can fold into the warm-start iterate it re-issues.
		ack := appendU32(nil, gen)
		ack = appendU32(ack, uint32(ws.lo))
		ack = appendU32(ack, uint32(ws.hi-ws.lo))
		ack = appendF64s(ack, ws.view[ws.lo:ws.hi])
		if _, err := ws.conn.Write(buildFrame(msgReshardAck, ack)); err != nil {
			return fmt.Errorf("dist: worker %d reshard ack: %w", ws.id, err)
		}
	case msgAssign:
		cur := cursor{b: f.payload}
		gen := cur.u32()
		lo := int(cur.u32())
		hi := int(cur.u32())
		x := cur.f64s(ws.n)
		peerCount := int(cur.u32())
		var addrs []string
		if peerCount > 0 {
			addrs = make([]string, peerCount)
			for i := range addrs {
				addrs[i] = cur.str()
			}
		}
		if cur.err != nil || lo < 0 || lo > hi || hi > ws.n || (peerCount != 0 && peerCount != ws.p) {
			return fmt.Errorf("dist: worker %d: bad assign frame", ws.id)
		}
		if gen != ws.gen {
			return nil // a barrier attempt that was superseded before landing
		}
		// Adopt the new shard over the coordinator's merged iterate. A
		// current-generation frame absorbed while we awaited this assign is
		// overwritten here — transient staleness the totally-asynchronous
		// regime tolerates by construction (its sender re-broadcasts
		// whatever still moves).
		copy(ws.view, x)
		ws.lo, ws.hi = lo, hi
		ws.out = make([]float64, hi-lo)
		ws.chk = make([]float64, hi-lo)
		ws.lastSent = append(ws.lastSent[:0], ws.view[lo:hi]...)
		if ws.mesh != nil && addrs != nil {
			ws.mesh.updatePeers(addrs)
		}
		ws.awaitAssign = false
		ws.resetStreak = true
	case msgStop:
		ws.stopped = true
	case msgConnLost:
		return fmt.Errorf("dist: worker %d: connection lost: %s", ws.id, f.payload)
	default:
		return fmt.Errorf("dist: worker %d: unexpected frame type %d", ws.id, f.typ)
	}
	return nil
}

// recheck re-evaluates local convergence after a reactivating block and
// re-passivates (with the epoch bumps the double collect watches) when the
// fresh data left the shard converged. A done worker that stays active here
// can never be part of a certified quiescence — it absorbed data it has no
// budget left to verify, so the run ends by budget exhaustion instead of a
// false Converged. A worker awaiting its assign owns no verifiable shard
// and stays active until it does.
func (ws *workerState) recheck() {
	if ws.passive || ws.stopped || ws.awaitAssign || ws.tol <= 0 {
		return
	}
	if ws.blockDelta() <= ws.tol {
		ws.epoch++
		ws.passive = true
	}
}

// drain handles every frame already queued without blocking.
func (ws *workerState) drain(inbox chan inFrame) error {
	for {
		select {
		case f := <-inbox:
			if err := ws.handle(f); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// broadcast ships this worker's shard values to all peers and accounts the
// fan-out share of the in-flight count. Under a delta threshold a
// non-reliable broadcast is flexible communication on the wire: it ships
// ONE frame covering the span from the first to the last component that
// moved by more than the threshold since it was last shipped (sub-
// threshold components inside the span ride along), and ships nothing when
// nothing moved. One frame per broadcast makes each broadcast atomic on
// the sequence stream: a newest-wins outbox swap or an out-of-order
// discard disposes of whole broadcasts, never of half of one. A disposed
// broadcast is the same loss class as an injection drop — its components
// stay stale at the receiver until they move beyond the threshold again or
// the reliable final (always the whole shard) restores exactness.
func (ws *workerState) broadcast(vals []float64, flags byte) error {
	if ws.p <= 1 {
		return nil
	}
	if flags&blockReliable == 0 && ws.deltaThreshold > 0 {
		first, last := -1, -1
		for i, v := range vals {
			if math.Abs(v-ws.lastSent[i]) > ws.deltaThreshold {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first < 0 {
			return nil // nothing moved: flexible communication skips the round
		}
		if err := ws.sendSlice(ws.lo+first, vals[first:last+1], flags); err != nil {
			return err
		}
		copy(ws.lastSent[first:last+1], vals[first:last+1])
		return nil
	}
	if err := ws.sendSlice(ws.lo, vals, flags); err != nil {
		return err
	}
	copy(ws.lastSent, vals)
	return nil
}

// sendSlice ships one [lo, lo+len(vals)) slice of the shard to every peer —
// directly over the mesh links (sender-side fault injection and sequence
// filtering) or through the coordinator's relay in the star topology.
func (ws *workerState) sendSlice(lo int, vals []float64, flags byte) error {
	ws.seq++
	frame := buildBlockFrame(ws.id, ws.seq, flags, ws.gen, lo, vals)
	if ws.mesh != nil {
		ws.mesh.send(ws.seq, ws.gen, frame, flags&blockReliable != 0)
	} else if _, err := ws.conn.Write(frame); err != nil {
		return fmt.Errorf("dist: worker %d broadcast: %w", ws.id, err)
	}
	ws.sent += uint64(ws.p - 1)
	ws.gsent += uint64(ws.p - 1)
	return nil
}

func (ws *workerState) loop(inbox chan inFrame) error {
	streak := 0
	ws.lastHB = time.Now()
	ws.lastCk = ws.lastHB
	for k := 0; k < ws.maxUpds && !ws.stopped; k++ {
		if err := ws.maintain(); err != nil {
			return err
		}
		wasPassive := ws.passive
		if err := ws.drain(inbox); err != nil {
			return err
		}
		if ws.stopped {
			break
		}
		if ws.resetStreak {
			streak = 0
			ws.resetStreak = false
		}
		if wasPassive && !ws.passive {
			// A block absorbed by that drain reactivated us. Re-verify local
			// convergence BEFORE resuming the active compute-and-broadcast
			// path: when the fresh data left the shard converged, we
			// re-passivate without broadcasting. Skipping this check lets
			// converged workers whose evaluations are slow enough to always
			// have a peer frame in flight reactivate each other forever —
			// every spurious resume broadcasts, and every broadcast is the
			// next worker's spurious resume.
			ws.recheck()
			if !ws.passive {
				streak = 0
			}
		}
		if ws.awaitAssign {
			// Paused across a re-shard barrier: keep serving probes and
			// absorbing frames (staying observably active) until the new
			// shard table lands. The coordinator's run Timeout bounds this.
			select {
			case f := <-inbox:
				if err := ws.handle(f); err != nil {
					return err
				}
			case <-time.After(passiveWait):
			}
			continue
		}
		if ws.passive {
			// Passive: wait briefly for input; a reactivating block was
			// already marked active by handle, so re-check local
			// convergence with the fresh data and either resume computing
			// or re-passivate (both paths bump the epoch, invalidating any
			// probe round in progress).
			select {
			case f := <-inbox:
				if err := ws.handle(f); err != nil {
					return err
				}
				if err := ws.drain(inbox); err != nil {
					return err
				}
				ws.recheck()
				if !ws.passive {
					streak = 0 // new data broke convergence: resume
				}
			case <-time.After(passiveWait):
			}
			continue // passivity consumes budget, bounding the loop
		}
		// Active updating phase over the current view: the whole shard in
		// one coupled-operator pass (shared prox/gradient work amortized).
		operators.EvalBlock(ws.op, ws.scr, ws.lo, ws.hi, ws.view, ws.out)
		delta := 0.0
		for i, v := range ws.out {
			if d := v - ws.view[ws.lo+i]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		copy(ws.view[ws.lo:ws.hi], ws.out)
		ws.updates++
		if err := ws.broadcast(ws.out, 0); err != nil {
			return err
		}
		if ws.tol > 0 {
			if delta <= ws.tol {
				streak++
			} else {
				streak = 0
			}
			if streak >= ws.sweeps {
				// Reliable final broadcast (never dropped or reorder-held
				// by the fault injection), then go passive — unless data
				// that arrived meanwhile already broke local convergence.
				if err := ws.broadcast(ws.view[ws.lo:ws.hi], blockReliable); err != nil {
					return err
				}
				if err := ws.drain(inbox); err != nil {
					return err
				}
				if ws.stopped {
					break
				}
				if ws.awaitAssign {
					continue // a re-shard landed in that drain
				}
				if ws.blockDelta() > ws.tol {
					streak = 0
					continue
				}
				ws.epoch++
				ws.passive = true
			}
		}
	}

	// Budget exhausted (or stop observed): keep serving probes and
	// absorbing blocks until the coordinator stops the run, then upload
	// the final shard.
	if !ws.stopped {
		ws.done = true
		deadline := time.Now().Add(doneWait)
		for !ws.stopped {
			if time.Now().After(deadline) {
				return fmt.Errorf("dist: worker %d: no stop from coordinator", ws.id)
			}
			if err := ws.maintain(); err != nil {
				return err
			}
			select {
			case f := <-inbox:
				if err := ws.handle(f); err != nil {
					return err
				}
				// A reactivating block must be re-verified even without
				// budget: recheck re-passivates only if the block is still
				// converged, otherwise this worker stays active and blocks
				// any further quiescence certification.
				ws.recheck()
			case <-time.After(passiveWait):
			}
		}
	}

	// The run is over. Flush the data plane first — cancel pending delayed
	// sends, wait out callbacks already firing, and let the link senders
	// empty their queues — so nothing can write after teardown proceeds and
	// the drain counters are final, then upload the authoritative shard.
	if ws.mesh != nil {
		ws.mesh.flush()
	}
	var dropped, reordered, duplicate uint64
	var linkBytes []uint64
	if ws.mesh != nil {
		dropped = uint64(ws.mesh.dropped.Load())
		reordered = uint64(ws.mesh.reordered.Load())
		duplicate = uint64(ws.mesh.duplicate.Load())
		linkBytes = ws.mesh.linkBytes()
	}
	fin := appendU32(nil, uint32(ws.lo))
	fin = appendU32(fin, uint32(ws.hi-ws.lo))
	fin = appendF64s(fin, ws.view[ws.lo:ws.hi])
	fin = appendU32(fin, uint32(ws.updates))
	fin = appendU64(fin, ws.sent)
	fin = appendU64(fin, ws.delivered)
	fin = appendU64(fin, ws.stale)
	fin = appendU64(fin, dropped)
	fin = appendU64(fin, reordered)
	fin = appendU64(fin, duplicate)
	fin = appendU32(fin, uint32(len(linkBytes)))
	for _, b := range linkBytes {
		fin = appendU64(fin, b)
	}
	if _, err := ws.conn.Write(buildFrame(msgFinal, fin)); err != nil {
		return fmt.Errorf("dist: worker %d final: %w", ws.id, err)
	}

	// Hold the mesh open until the coordinator confirms the run is over by
	// closing the control connection (it does so only after every worker's
	// final arrived): peers that have not yet processed stop may still be
	// sending, and their frames must land on open sockets, not teardown
	// errors.
	if ws.mesh != nil {
		waitDeadline := time.Now().Add(doneWait)
		for {
			select {
			case f := <-inbox:
				if f.typ == msgConnLost {
					return nil // expected EOF: the coordinator is done
				}
				// Late data frames are irrelevant after stop; discard.
			case <-time.After(time.Until(waitDeadline)):
				return nil
			}
		}
	}
	return nil
}
