package dist

import (
	"fmt"
	"net"
	"time"

	"repro/internal/operators"
)

// maxFramePayload is the sanity bound on any frame's payload.
const maxFramePayload = 1 << 26

// passiveWait is how long a passive or done worker blocks for input before
// re-checking its loop condition; it bounds the latency of noticing stop.
const passiveWait = 200 * time.Microsecond

// doneWait is the fallback deadline a budget-exhausted worker waits for the
// coordinator's stop before giving up (the coordinator's own Timeout should
// always fire first).
const doneWait = 5 * time.Minute

type inFrame struct {
	typ     byte
	payload []byte
}

// Connect dials the coordinator at addr and runs one worker to completion:
// handshake, compute/exchange loop, final-block upload. It returns when
// the coordinator stops the run (nil) or on a protocol/network error. scr
// may be nil.
func Connect(addr string, op operators.Operator, scr *operators.Scratch) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: worker dial: %w", err)
	}
	defer conn.Close()
	return runWorker(conn, op, scr)
}

// workerState is the per-worker protocol state. It lives entirely on the
// compute goroutine, so status replies are self-consistent snapshots by
// construction — the property the coordinator's probe rounds rely on.
type workerState struct {
	conn            net.Conn
	id, p, n        int
	lo, hi          int
	tol             float64
	sweeps, maxUpds int

	view    []float64
	out     []float64
	lastSeq []uint64 // per source: highest applied block sequence
	op      operators.Operator
	scr     *operators.Scratch

	passive, done, stopped bool
	epoch                  uint64
	sent, delivered, stale uint64
	updates                int
	seq                    uint64
}

func runWorker(conn net.Conn, op operators.Operator, scr *operators.Scratch) error {
	if scr == nil {
		scr = operators.NewScratch()
	}
	if _, err := conn.Write(buildFrame(msgHello, appendU32(nil, protocolVersion))); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}
	typ, payload, err := readFrame(conn, maxFramePayload)
	if err != nil {
		return fmt.Errorf("dist: worker welcome: %w", err)
	}
	if typ != msgWelcome {
		return fmt.Errorf("dist: worker expected welcome, got frame type %d", typ)
	}
	cur := cursor{b: payload}
	ws := &workerState{
		conn: conn,
		id:   int(cur.u32()),
		p:    int(cur.u32()),
		n:    int(cur.u32()),
		lo:   int(cur.u32()),
		hi:   int(cur.u32()),
		tol:  cur.f64(),
		op:   op,
		scr:  scr,
	}
	ws.sweeps = int(cur.u32())
	ws.maxUpds = int(cur.u32())
	if cur.err == nil {
		ws.view = cur.f64s(ws.n)
	}
	if cur.err != nil {
		return fmt.Errorf("dist: worker welcome decode: %w", cur.err)
	}
	if op.Dim() != ws.n {
		return fmt.Errorf("dist: worker operator dim %d, coordinator says %d", op.Dim(), ws.n)
	}
	ws.out = make([]float64, ws.hi-ws.lo)
	ws.lastSeq = make([]uint64, ws.p)

	// Reader goroutine: decode frames into the inbox; the quit channel
	// unblocks it if the compute loop returns while it holds a frame.
	inbox := make(chan inFrame, 1024)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		for {
			typ, payload, err := readFrame(conn, maxFramePayload)
			if err != nil {
				close(inbox)
				return
			}
			select {
			case inbox <- inFrame{typ, payload}:
			case <-quit:
				return
			}
		}
	}()

	return ws.loop(inbox)
}

// blockDelta is the worker's local convergence measure: the max displacement
// |F_c(view) - view_c| over its own block, evaluated on its current view.
func (ws *workerState) blockDelta() float64 {
	d := 0.0
	for c := ws.lo; c < ws.hi; c++ {
		v := operators.EvalComponent(ws.op, ws.scr, c, ws.view) - ws.view[c]
		if v < 0 {
			v = -v
		}
		if v > d {
			d = v
		}
	}
	return d
}

// handle processes one inbound frame. A block that arrives while the worker
// is passive reactivates it BEFORE the delivery is counted — the protocol's
// ordering rule: the coordinator's probe rounds either still see the block
// in flight or see this worker active (or the epoch bumps of a re-check).
func (ws *workerState) handle(f inFrame) error {
	switch f.typ {
	case msgBlock:
		cur := cursor{b: f.payload}
		from := int(cur.u32())
		seq := cur.u64()
		cur.u8() // flags
		blo := int(cur.u32())
		count := int(cur.u32())
		vals := cur.f64s(count)
		if cur.err != nil || blo < 0 || blo+count > ws.n || from < 0 || from >= ws.p {
			return fmt.Errorf("dist: worker %d: bad block frame", ws.id)
		}
		if seq <= ws.lastSeq[from] {
			// Out-of-order delivery of a superseded block (the label
			// discipline for out-of-order messages): a fresher block from
			// this source was already applied — possibly its reliable
			// final — so the stale values are discarded. The delivery is
			// still acknowledged to drain the in-flight count; a discarded
			// block cannot reactivate anyone, so no epoch bump is needed.
			ws.delivered++
			ws.stale++
			return nil
		}
		ws.lastSeq[from] = seq
		// The protocol's ordering rule: publish the reactivation before
		// acknowledging the delivery. Budget-exhausted workers reactivate
		// too — they cannot compute, but staying observably passive while
		// absorbing data they can no longer verify would let the
		// coordinator certify a false quiescence; recheck() re-passivates
		// them only if the new data left their block converged.
		if ws.passive {
			ws.passive = false
			ws.epoch++
		}
		copy(ws.view[blo:blo+count], vals)
		ws.delivered++
	case msgProbe:
		cur := cursor{b: f.payload}
		probeID := cur.u64()
		if cur.err != nil {
			return fmt.Errorf("dist: worker %d: bad probe frame", ws.id)
		}
		var flags byte
		if ws.passive {
			flags |= statusPassive
		}
		if ws.done {
			flags |= statusDone
		}
		st := appendU64(nil, probeID)
		st = append(st, flags)
		st = appendU64(st, ws.epoch)
		st = appendU64(st, ws.sent)
		st = appendU64(st, ws.delivered)
		if _, err := ws.conn.Write(buildFrame(msgStatus, st)); err != nil {
			return fmt.Errorf("dist: worker %d status: %w", ws.id, err)
		}
	case msgStop:
		ws.stopped = true
	default:
		return fmt.Errorf("dist: worker %d: unexpected frame type %d", ws.id, f.typ)
	}
	return nil
}

// recheck re-evaluates local convergence after a reactivating block and
// re-passivates (with the epoch bumps the double collect watches) when the
// fresh data left the block converged. A done worker that stays active here
// can never be part of a certified quiescence — it absorbed data it has no
// budget left to verify, so the run ends by budget exhaustion instead of a
// false Converged.
func (ws *workerState) recheck() {
	if ws.passive || ws.stopped || ws.tol <= 0 {
		return
	}
	if ws.blockDelta() <= ws.tol {
		ws.epoch++
		ws.passive = true
	}
}

// drain handles every frame already queued without blocking.
func (ws *workerState) drain(inbox chan inFrame) error {
	for {
		select {
		case f, ok := <-inbox:
			if !ok {
				return fmt.Errorf("dist: worker %d: connection lost", ws.id)
			}
			if err := ws.handle(f); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// broadcast ships this worker's block to all peers via the coordinator and
// accounts its fan-out share of the in-flight count.
func (ws *workerState) broadcast(vals []float64, flags byte) error {
	if ws.p <= 1 {
		return nil
	}
	ws.seq++
	b := appendU32(nil, uint32(ws.id))
	b = appendU64(b, ws.seq)
	b = append(b, flags)
	b = appendU32(b, uint32(ws.lo))
	b = appendU32(b, uint32(len(vals)))
	b = appendF64s(b, vals)
	if _, err := ws.conn.Write(buildFrame(msgBlock, b)); err != nil {
		return fmt.Errorf("dist: worker %d broadcast: %w", ws.id, err)
	}
	ws.sent += uint64(ws.p - 1)
	return nil
}

func (ws *workerState) loop(inbox chan inFrame) error {
	streak := 0
	for k := 0; k < ws.maxUpds && !ws.stopped; k++ {
		if err := ws.drain(inbox); err != nil {
			return err
		}
		if ws.stopped {
			break
		}
		if ws.passive {
			// Passive: wait briefly for input; a reactivating block was
			// already marked active by handle, so re-check local
			// convergence with the fresh data and either resume computing
			// or re-passivate (both paths bump the epoch, invalidating any
			// probe round in progress).
			select {
			case f, ok := <-inbox:
				if !ok {
					return fmt.Errorf("dist: worker %d: connection lost", ws.id)
				}
				if err := ws.handle(f); err != nil {
					return err
				}
				if err := ws.drain(inbox); err != nil {
					return err
				}
				ws.recheck()
				if !ws.passive {
					streak = 0 // new data broke convergence: resume
				}
			case <-time.After(passiveWait):
			}
			continue // passivity consumes budget, bounding the loop
		}
		// Active updating phase over the current view.
		delta := 0.0
		for c := ws.lo; c < ws.hi; c++ {
			ws.out[c-ws.lo] = operators.EvalComponent(ws.op, ws.scr, c, ws.view)
			if d := ws.out[c-ws.lo] - ws.view[c]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		copy(ws.view[ws.lo:ws.hi], ws.out)
		ws.updates++
		if err := ws.broadcast(ws.out, 0); err != nil {
			return err
		}
		if ws.tol > 0 {
			if delta <= ws.tol {
				streak++
			} else {
				streak = 0
			}
			if streak >= ws.sweeps {
				// Reliable final broadcast (never dropped or reorder-held
				// by the coordinator), then go passive — unless data that
				// arrived meanwhile already broke local convergence.
				if err := ws.broadcast(ws.view[ws.lo:ws.hi], blockReliable); err != nil {
					return err
				}
				if err := ws.drain(inbox); err != nil {
					return err
				}
				if ws.stopped {
					break
				}
				if ws.blockDelta() > ws.tol {
					streak = 0
					continue
				}
				ws.epoch++
				ws.passive = true
			}
		}
	}

	// Budget exhausted (or stop observed): keep serving probes and
	// absorbing blocks until the coordinator stops the run, then upload
	// the final block.
	if !ws.stopped {
		ws.done = true
		deadline := time.Now().Add(doneWait)
		for !ws.stopped {
			if time.Now().After(deadline) {
				return fmt.Errorf("dist: worker %d: no stop from coordinator", ws.id)
			}
			select {
			case f, ok := <-inbox:
				if !ok {
					return fmt.Errorf("dist: worker %d: connection lost", ws.id)
				}
				if err := ws.handle(f); err != nil {
					return err
				}
				// A reactivating block must be re-verified even without
				// budget: recheck re-passivates only if the block is still
				// converged, otherwise this worker stays active and blocks
				// any further quiescence certification.
				ws.recheck()
			case <-time.After(passiveWait):
			}
		}
	}

	fin := appendU32(nil, uint32(ws.lo))
	fin = appendU32(fin, uint32(ws.hi-ws.lo))
	fin = appendF64s(fin, ws.view[ws.lo:ws.hi])
	fin = appendU32(fin, uint32(ws.updates))
	fin = appendU64(fin, ws.sent)
	fin = appendU64(fin, ws.delivered)
	fin = appendU64(fin, ws.stale)
	if _, err := ws.conn.Write(buildFrame(msgFinal, fin)); err != nil {
		return fmt.Errorf("dist: worker %d final: %w", ws.id, err)
	}
	return nil
}
