package dist

// The wire format: length-prefixed little-endian binary frames over TCP.
//
//	frame    := u32 length | u8 type | payload          (length counts type + payload)
//	hello    := u32 protocolVersion
//	welcome  := u32 id | u32 workers | u32 n | u32 lo | u32 hi |
//	            f64 tol | u32 sweepsBelowTol | u32 maxUpdates |
//	            u8 topology | f64 deltaThreshold | u64 timeoutNs |
//	            f64 dropProb | f64 reorderProb | u64 maxDelayNs | u64 faultSeed |
//	            u32 gen | u8 rejoining | u64 heartbeatNs | u64 checkpointNs |
//	            f64×n x
//	block    := u32 from | u64 seq | u8 flags | u32 gen | u32 lo | u32 count |
//	            f64×count
//	meshaddr := str addr                                (worker → coordinator, mesh)
//	peers    := u32 workers | workers × str addr        (coordinator → workers, mesh)
//	meshhello:= u32 from                                (dialing worker → peer, mesh)
//	probe    := u64 probeID
//	status   := u64 probeID | u8 flags | u32 gen | u64 epoch | u64 sent |
//	            u64 delivered | u64 drained
//	stop     := (empty)
//	final    := u32 lo | u32 count | f64×count | u32 updates |
//	            u64 sent | u64 delivered | u64 stale |
//	            u64 dropped | u64 reordered | u64 duplicate |
//	            u32 workers | workers × u64 linkBytes
//	heartbeat:= (empty)                                 (worker → coordinator)
//	checkpoint:= u32 gen | u32 lo | u32 count | f64×count (worker → coordinator)
//	reshard  := u32 gen                                 (coordinator → workers)
//	reshardack:= u32 gen | u32 lo | u32 count | f64×count (worker → coordinator)
//	assign   := u32 gen | u32 lo | u32 hi | f64×n x |
//	            u32 peerCount | peerCount × str addr    (coordinator → workers)
//	reject   := str reason                              (coordinator → rejoiner)
//	str      := u32 len | len × u8
//
// Protocol v3 delta (v2 added topology/fault/delta-threshold config and the
// drained/link-byte accounting; v1 was the star-only format of PR 3): the
// elastic-membership protocol. The welcome carries the membership generation,
// a rejoining flag and the heartbeat/checkpoint cadences; block and status
// frames carry the generation so frames from before a re-shard are fenced
// off; heartbeat frames keep a link observably alive between data frames;
// checkpoint frames stream shard snapshots to the coordinator so a restarted
// worker warm-starts; the reshard/reshardack/assign triple is the membership-
// change barrier (pause survivors, collect their shards, re-issue the shard
// table and — on mesh — the peer address table, "" marking dead slots); a
// reject answers a rejoin attempt that found no free worker slot.
//
// block.flags bit 0 marks a reliable frame (a worker's final re-broadcast):
// fault injection never drops or reorder-holds it, the TCP analogue of the
// in-process transport's sendReliable. A block frame may carry any
// [lo, lo+count) slice of the sender's shard — under a delta threshold only
// the runs of components that moved by more than the threshold are shipped.
// status.flags bit 0 is passive, bit 1 is done (update budget exhausted).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const protocolVersion = 3

const (
	msgHello byte = iota + 1
	msgWelcome
	msgBlock
	msgProbe
	msgStatus
	msgStop
	msgFinal
	msgMeshAddr
	msgPeers
	msgMeshHello
	msgHeartbeat
	msgCheckpoint
	msgReshard
	msgReshardAck
	msgAssign
	msgReject

	// msgConnLost is an internal sentinel a worker's control-connection
	// reader enqueues when the coordinator link dies; it never crosses the
	// wire.
	msgConnLost byte = 255
)

const (
	blockReliable  = 1 << 0
	statusPassive  = 1 << 0
	statusDone     = 1 << 1
	frameHeaderLen = 5 // u32 length + u8 type

	topologyStarWire byte = 0
	topologyMeshWire byte = 1
)

// appendU32 .. appendStr build payloads; the cursor type consumes them.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// cursor decodes a payload sequentially; the first short read poisons it so
// call sites check err once at the end.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) u8() byte {
	v := c.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (c *cursor) u32() uint32 {
	v := c.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (c *cursor) u64() uint64 {
	v := c.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) f64s(n int) []float64 {
	if n < 0 {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return vs
}

func (c *cursor) u64s(n int) []uint64 {
	if n < 0 {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return vs
}

func (c *cursor) str() string {
	n := int(c.u32())
	if c.err != nil || n > len(c.b) {
		if c.err == nil {
			c.err = io.ErrUnexpectedEOF
		}
		return ""
	}
	return string(c.take(n))
}

// buildFrame assembles a complete frame (header + payload) in one buffer so
// a single Write puts it on the wire without interleaving.
func buildFrame(typ byte, payload []byte) []byte {
	f := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(f, uint32(1+len(payload)))
	f[4] = typ
	copy(f[frameHeaderLen:], payload)
	return f
}

// buildBlockFrame assembles one data-plane frame carrying the [lo, lo+count)
// slice vals of worker from's shard, fenced to membership generation gen.
func buildBlockFrame(from int, seq uint64, flags byte, gen uint32, lo int, vals []float64) []byte {
	b := appendU32(nil, uint32(from))
	b = appendU64(b, seq)
	b = append(b, flags)
	b = appendU32(b, gen)
	b = appendU32(b, uint32(lo))
	b = appendU32(b, uint32(len(vals)))
	b = appendF64s(b, vals)
	return buildFrame(msgBlock, b)
}

// readFrameChunk bounds the allocation a single untrusted length prefix can
// force before any payload byte has actually arrived.
const readFrameChunk = 64 << 10

// readFrame reads one frame, enforcing maxPayload as a sanity bound against
// corrupt length prefixes. The length prefix is never trusted for an up-front
// allocation beyond one chunk: a large payload is read incrementally, so a
// lying prefix on a short or hostile stream fails after the bytes that truly
// arrived instead of first committing maxPayload of memory.
func readFrame(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[:4]))
	if length < 1 || length-1 > maxPayload {
		return 0, nil, fmt.Errorf("dist: frame length %d out of range (max payload %d)", length, maxPayload)
	}
	n := length - 1
	if n <= readFrameChunk {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
		return hdr[4], payload, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[4], buf.Bytes(), nil
}
