package dist

// The wire format: length-prefixed little-endian binary frames over TCP.
//
//	frame   := u32 length | u8 type | payload           (length counts type + payload)
//	hello   := u32 protocolVersion
//	welcome := u32 id | u32 workers | u32 n | u32 lo | u32 hi |
//	           f64 tol | u32 sweepsBelowTol | u32 maxUpdates | f64×n x0
//	block   := u32 from | u64 seq | u8 flags | u32 lo | u32 count | f64×count
//	probe   := u64 probeID
//	status  := u64 probeID | u8 flags | u64 epoch | u64 sent | u64 delivered
//	stop    := (empty)
//	final   := u32 lo | u32 count | f64×count | u32 updates |
//	           u64 sent | u64 delivered | u64 stale
//
// block.flags bit 0 marks a reliable frame (a worker's final re-broadcast):
// the coordinator's fault injection never drops or reorder-holds it, the
// TCP analogue of the in-process transport's sendReliable. status.flags
// bit 0 is passive, bit 1 is done (update budget exhausted).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const protocolVersion = 1

const (
	msgHello byte = iota + 1
	msgWelcome
	msgBlock
	msgProbe
	msgStatus
	msgStop
	msgFinal
)

const (
	blockReliable  = 1 << 0
	statusPassive  = 1 << 0
	statusDone     = 1 << 1
	frameHeaderLen = 5 // u32 length + u8 type
)

// appendU32 .. appendF64s build payloads; the cursor type consumes them.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

// cursor decodes a payload sequentially; the first short read poisons it so
// call sites check err once at the end.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) u8() byte {
	v := c.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (c *cursor) u32() uint32 {
	v := c.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (c *cursor) u64() uint64 {
	v := c.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) f64s(n int) []float64 {
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return vs
}

// buildFrame assembles a complete frame (header + payload) in one buffer so
// a single Write puts it on the wire without interleaving.
func buildFrame(typ byte, payload []byte) []byte {
	f := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(f, uint32(1+len(payload)))
	f[4] = typ
	copy(f[frameHeaderLen:], payload)
	return f
}

// readFrame reads one frame, enforcing maxPayload as a sanity bound against
// corrupt length prefixes.
func readFrame(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[:4]))
	if length < 1 || length-1 > maxPayload {
		return 0, nil, fmt.Errorf("dist: frame length %d out of range (max payload %d)", length, maxPayload)
	}
	payload = make([]byte, length-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
