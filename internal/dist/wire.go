package dist

// The wire format: length-prefixed little-endian binary frames over TCP.
//
//	frame    := u32 length | u8 type | payload          (length counts type + payload)
//	hello    := u32 protocolVersion
//	welcome  := u32 id | u32 workers | u32 n | u32 lo | u32 hi |
//	            f64 tol | u32 sweepsBelowTol | u32 maxUpdates |
//	            u8 topology | f64 deltaThreshold | u64 timeoutNs |
//	            f64 dropProb | f64 reorderProb | u64 maxDelayNs | u64 faultSeed |
//	            f64×n x0
//	block    := u32 from | u64 seq | u8 flags | u32 lo | u32 count | f64×count
//	meshaddr := str addr                                (worker → coordinator, mesh)
//	peers    := u32 workers | workers × str addr        (coordinator → workers, mesh)
//	meshhello:= u32 from                                (dialing worker → peer, mesh)
//	probe    := u64 probeID
//	status   := u64 probeID | u8 flags | u64 epoch | u64 sent | u64 delivered |
//	            u64 drained
//	stop     := (empty)
//	final    := u32 lo | u32 count | f64×count | u32 updates |
//	            u64 sent | u64 delivered | u64 stale |
//	            u64 dropped | u64 reordered | u64 duplicate |
//	            u32 workers | workers × u64 linkBytes
//	str      := u32 len | len × u8
//
// Protocol v2 delta (v1 was the star-only format of PR 3): the welcome
// carries the topology, the flexible-communication delta threshold, the run
// timeout and the fault-injection config (mesh workers inject faults on
// their own outbound links, so the knobs must reach them); meshaddr, peers
// and meshhello exist only on the mesh rendezvous path; the status gains
// the worker-side drained counter (frames a sender discarded — injection
// drops plus link-filtered superseded/duplicate frames — which the
// termination probe must subtract from in-flight); the final gains the
// sender-side drop/reorder/duplicate counters and the per-destination
// data-plane byte counters behind Result.LinkBytes.
//
// block.flags bit 0 marks a reliable frame (a worker's final re-broadcast):
// fault injection never drops or reorder-holds it, the TCP analogue of the
// in-process transport's sendReliable. A block frame may carry any
// [lo, lo+count) slice of the sender's shard — under a delta threshold only
// the runs of components that moved by more than the threshold are shipped.
// status.flags bit 0 is passive, bit 1 is done (update budget exhausted).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const protocolVersion = 2

const (
	msgHello byte = iota + 1
	msgWelcome
	msgBlock
	msgProbe
	msgStatus
	msgStop
	msgFinal
	msgMeshAddr
	msgPeers
	msgMeshHello

	// msgConnLost is an internal sentinel a worker's control-connection
	// reader enqueues when the coordinator link dies; it never crosses the
	// wire.
	msgConnLost byte = 255
)

const (
	blockReliable  = 1 << 0
	statusPassive  = 1 << 0
	statusDone     = 1 << 1
	frameHeaderLen = 5 // u32 length + u8 type

	topologyStarWire byte = 0
	topologyMeshWire byte = 1
)

// appendU32 .. appendStr build payloads; the cursor type consumes them.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// cursor decodes a payload sequentially; the first short read poisons it so
// call sites check err once at the end.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) u8() byte {
	v := c.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (c *cursor) u32() uint32 {
	v := c.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (c *cursor) u64() uint64 {
	v := c.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) f64s(n int) []float64 {
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return vs
}

func (c *cursor) u64s(n int) []uint64 {
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return vs
}

func (c *cursor) str() string {
	n := int(c.u32())
	if c.err != nil || n > len(c.b) {
		if c.err == nil {
			c.err = io.ErrUnexpectedEOF
		}
		return ""
	}
	return string(c.take(n))
}

// buildFrame assembles a complete frame (header + payload) in one buffer so
// a single Write puts it on the wire without interleaving.
func buildFrame(typ byte, payload []byte) []byte {
	f := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(f, uint32(1+len(payload)))
	f[4] = typ
	copy(f[frameHeaderLen:], payload)
	return f
}

// buildBlockFrame assembles one data-plane frame carrying the [lo, lo+count)
// slice vals of worker from's shard.
func buildBlockFrame(from int, seq uint64, flags byte, lo int, vals []float64) []byte {
	b := appendU32(nil, uint32(from))
	b = appendU64(b, seq)
	b = append(b, flags)
	b = appendU32(b, uint32(lo))
	b = appendU32(b, uint32(len(vals)))
	b = appendF64s(b, vals)
	return buildFrame(msgBlock, b)
}

// readFrame reads one frame, enforcing maxPayload as a sanity bound against
// corrupt length prefixes.
func readFrame(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[:4]))
	if length < 1 || length-1 > maxPayload {
		return 0, nil, fmt.Errorf("dist: frame length %d out of range (max payload %d)", length, maxPayload)
	}
	payload = make([]byte, length-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
