package dist

// Elastic membership: the knobs, the worker-side rejoin/backoff machinery,
// and the chaos harness. The coordinator-side protocol (heartbeat deadlines,
// the reshard barrier, checkpoint collection) lives in coordinator.go; the
// worker-side state machine in worker.go; the v3 frame formats in wire.go.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/operators"
)

// Elastic configures elastic membership: worker-loss detection, mid-solve
// re-sharding, rejoin, and checkpointing. The zero value disables all of it
// — the run then behaves exactly like a pre-v3 rigid run (heartbeats and
// checkpoints are trajectory-neutral, but disabling them keeps the wire
// byte-for-byte quiet between data frames).
type Elastic struct {
	// HeartbeatEvery, when positive, enables elastic membership: each worker
	// writes a heartbeat frame on the control link at this cadence whenever
	// no other frame has gone out, and the coordinator treats a link silent
	// for max(6×HeartbeatEvery, 200ms) as lost — it re-shards the component
	// space over the survivors and keeps solving. Choose it comfortably
	// above one block evaluation so a slow iteration is not mistaken for a
	// dead worker.
	HeartbeatEvery time.Duration
	// CheckpointEvery is the cadence at which an active worker streams a
	// checkpoint of its shard to the coordinator, which folds it into the
	// warm-start iterate handed to rejoining workers. Defaults to
	// 4×HeartbeatEvery when elastic membership is on.
	CheckpointEvery time.Duration
	// MaxRejoinWait bounds a worker's dial/register retry loop (capped
	// exponential backoff with jitter); it is also the default Rejoin.MaxWait
	// RunChaos hands restarted workers. Defaults to 10s when elastic
	// membership is on.
	MaxRejoinWait time.Duration
	// CheckpointPath, when non-empty, additionally persists the
	// coordinator's warm-start iterate to this file (atomically, at most
	// once per CheckpointEvery) and, when a matching-dimension checkpoint
	// exists at startup, warm-starts the whole run from it instead of X0 —
	// a coordinator-level restart survives with the last solve's progress.
	CheckpointPath string
}

// enabled reports whether elastic membership is on.
func (e Elastic) enabled() bool { return e.HeartbeatEvery > 0 }

func (e *Elastic) validate() error {
	if e.HeartbeatEvery < 0 || e.CheckpointEvery < 0 || e.MaxRejoinWait < 0 {
		return errors.New("dist: Elastic durations must be non-negative")
	}
	if !e.enabled() && (e.CheckpointEvery > 0 || e.CheckpointPath != "") {
		return errors.New("dist: Elastic checkpointing requires HeartbeatEvery > 0")
	}
	if e.enabled() {
		if e.CheckpointEvery == 0 {
			e.CheckpointEvery = 4 * e.HeartbeatEvery
		}
		if e.MaxRejoinWait == 0 {
			e.MaxRejoinWait = 10 * time.Second
		}
	}
	return nil
}

// heartbeatTimeout is how long a silent elastic link stays trusted. The
// multiple absorbs scheduler jitter under load (a false positive costs a
// spurious re-shard); the floor keeps tiny test cadences from turning GC
// pauses into worker losses.
func heartbeatTimeout(heartbeatEvery time.Duration) time.Duration {
	if t := 6 * heartbeatEvery; t > 200*time.Millisecond {
		return t
	}
	return 200 * time.Millisecond
}

// The checkpoint file layout: magic, u32 dimension, f64×n values. It is
// written via a temp file + rename so readers never observe a torn write.
const checkpointMagic = "repro-dist-ckpt1"

func writeCheckpointFile(path string, x []float64) error {
	buf := make([]byte, 0, len(checkpointMagic)+4+8*len(x))
	buf = append(buf, checkpointMagic...)
	buf = appendU32(buf, uint32(len(x)))
	buf = appendF64s(buf, x)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readCheckpointFile loads a checkpoint written by writeCheckpointFile,
// returning (nil, nil) when no file exists and an error only for a file that
// exists but is corrupt or has the wrong dimension.
func readCheckpointFile(path string, n int) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(checkpointMagic)+4 || string(raw[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("dist: %s is not a checkpoint file", filepath.Base(path))
	}
	raw = raw[len(checkpointMagic):]
	dim := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	if dim != n || len(raw) != 8*n {
		return nil, fmt.Errorf("dist: checkpoint %s has dimension %d, want %d", filepath.Base(path), dim, n)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return x, nil
}

// Rejoin configures the dial/register retry loop of ConnectWorker.
type Rejoin struct {
	// MaxWait bounds the total retrying time; zero means a single attempt
	// (the pre-elastic Connect behavior).
	MaxWait time.Duration
	// Seed drives the backoff jitter. Seeding it from the worker's identity
	// (RunChaos uses Fault.Seed mixed with the slot) keeps retry schedules
	// reproducible run to run.
	Seed uint64
}

// WorkerOptions bundles the optional knobs of ConnectWorker.
type WorkerOptions struct {
	// Scratch is the reusable operator scratch (nil allocates one).
	Scratch *operators.Scratch
	// Rejoin is the dial/register retry policy.
	Rejoin Rejoin
	// Ctl, when non-nil, lets the caller kill this worker mid-run (the
	// chaos harness's kill switch).
	Ctl *WorkerCtl
}

// WorkerCtl is a kill switch for one in-process worker: Kill closes every
// connection (and listener) the worker has registered and stops any retry
// loop, making the worker indistinguishable from a crashed process to
// everyone else.
type WorkerCtl struct {
	mu     sync.Mutex
	conns  []io.Closer
	killed bool
}

// Kill abruptly severs the worker. Safe to call at any time and more than
// once.
func (c *WorkerCtl) Kill() {
	c.mu.Lock()
	conns := c.conns
	c.conns = nil
	c.killed = true
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

// Killed reports whether Kill has been called.
func (c *WorkerCtl) Killed() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// register adds a connection to the kill set; it reports false (and the
// caller must abandon the connection) when the worker is already killed.
func (c *WorkerCtl) register(conn io.Closer) bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return false
	}
	c.conns = append(c.conns, conn)
	return true
}

// errWorkerKilled is returned by a worker severed through its WorkerCtl.
var errWorkerKilled = errors.New("dist: worker killed")

// rejectedError is a coordinator msgReject: the rejoin attempt found no free
// worker slot (typically a transient state while the lost link's read
// deadline has not yet expired), so it is retried under backoff.
type rejectedError struct{ reason string }

func (e *rejectedError) Error() string { return "dist: rejoin rejected: " + e.reason }

// Dial/register backoff bounds: capped exponential, factor 2, jittered to
// [backoff/2, backoff) so simultaneously restarted workers do not dial in
// lockstep.
const (
	rejoinBaseBackoff = 10 * time.Millisecond
	rejoinMaxBackoff  = 500 * time.Millisecond
	dialTimeout       = 5 * time.Second
)

// ConnectWorker dials the coordinator and runs one worker to completion,
// retrying the dial/register phase under capped exponential backoff with
// jitter for up to Rejoin.MaxWait — the client half of elastic rejoin: a
// restarted worker keeps knocking until the coordinator has noticed the old
// link die and freed its slot. Only connect-phase failures (dial errors,
// msgReject) are retried; an error after a successful registration is a run
// error and surfaces immediately.
func Connect(addr string, op operators.Operator, scr *operators.Scratch) error {
	return ConnectWorker(addr, op, WorkerOptions{Scratch: scr})
}

// ConnectWorker is Connect with explicit options; see Connect.
func ConnectWorker(addr string, op operators.Operator, o WorkerOptions) error {
	// The jitter RNG is seeded from the caller-provided identity, never the
	// clock, so a rerun retries on the same schedule.
	rng := rand.New(rand.NewSource(int64(o.Rejoin.Seed)*7919 + 1))
	backoff := rejoinBaseBackoff
	start := time.Now()
	for {
		err := connectOnce(addr, op, o)
		if err == nil {
			return nil
		}
		if o.Ctl.Killed() {
			return errWorkerKilled
		}
		var rej *rejectedError
		retryable := errors.As(err, &rej)
		if !retryable {
			var ne net.Error
			var opErr *net.OpError
			retryable = errors.As(err, &ne) && errors.As(err, &opErr) && opErr.Op == "dial"
		}
		if !retryable || o.Rejoin.MaxWait <= 0 {
			return err
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		if time.Since(start)+sleep >= o.Rejoin.MaxWait {
			return err
		}
		time.Sleep(sleep)
		if backoff *= 2; backoff > rejoinMaxBackoff {
			backoff = rejoinMaxBackoff
		}
	}
}

func connectOnce(addr string, op operators.Operator, o WorkerOptions) error {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("dist: worker dial: %w", err)
	}
	if !o.Ctl.register(conn) {
		conn.Close()
		return errWorkerKilled
	}
	defer conn.Close()
	return runWorker(conn, op, o.Scratch, o.Ctl)
}

// ChaosEvent schedules one kill (and optional restart) of a worker slot.
type ChaosEvent struct {
	// Worker is the initial worker index to kill.
	Worker int
	// KillAfter is when, after the run starts, the worker is severed.
	KillAfter time.Duration
	// RestartAfter is how long after the kill a fresh worker process is
	// launched to rejoin; zero or negative means the worker never comes
	// back.
	RestartAfter time.Duration
}

// ChaosPlan is a deterministic schedule of worker churn for RunChaos.
type ChaosPlan struct {
	Events []ChaosEvent
}

// RunChaos is Run under a churn schedule: it launches the coordinator and
// cfg.Workers in-process workers exactly like Run, then executes the plan —
// severing each event's worker at KillAfter (closing its sockets, exactly
// what a crashed process looks like from the network) and, RestartAfter
// later, launching a replacement worker that rejoins through the elastic
// accept loop under the backoff policy. cfg.Elastic must be enabled. The
// coordinator's result is authoritative; errors from deliberately killed
// workers (and from replacements that raced the end of the run) are
// expected and not surfaced.
func RunChaos(cfg Config, plan ChaosPlan) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if !cfg.Elastic.enabled() {
		return nil, errors.New("dist: RunChaos requires Config.Elastic.HeartbeatEvery > 0")
	}
	for _, ev := range plan.Events {
		if ev.Worker < 0 || ev.Worker >= cfg.Workers {
			return nil, fmt.Errorf("dist: chaos event targets worker %d of %d", ev.Worker, cfg.Workers)
		}
		if ev.KillAfter < 0 {
			return nil, fmt.Errorf("dist: chaos event for worker %d has negative KillAfter", ev.Worker)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()

	type serveOut struct {
		res *Result
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener:            ln,
			Workers:             cfg.Workers,
			Topology:            cfg.Topology,
			N:                   n,
			X0:                  cfg.X0,
			Tol:                 cfg.Tol,
			SweepsBelowTol:      cfg.SweepsBelowTol,
			MaxUpdatesPerWorker: cfg.MaxUpdatesPerWorker,
			DeltaThreshold:      cfg.DeltaThreshold,
			Fault:               cfg.Fault,
			Timeout:             cfg.Timeout,
			Elastic:             cfg.Elastic,
		})
		serveCh <- serveOut{res, err}
	}()

	type workerOut struct {
		ctl *WorkerCtl
		err error
	}
	var wg sync.WaitGroup
	var outMu sync.Mutex
	var outs []workerOut
	launch := func(w int, ctl *WorkerCtl, rejoin Rejoin) {
		wg.Add(1)
		//repro:join-ok joined by the wg.Wait below; every blocking step inside is bounded by dial timeouts, conn deadlines and Rejoin.MaxWait
		go func() {
			defer wg.Done()
			err := ConnectWorker(addr, cfg.Op, WorkerOptions{
				Scratch: cfg.workerScratch(w),
				Rejoin:  rejoin,
				Ctl:     ctl,
			})
			outMu.Lock()
			outs = append(outs, workerOut{ctl, err})
			outMu.Unlock()
		}()
	}

	ctls := make([]*WorkerCtl, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		ctls[w] = &WorkerCtl{}
		launch(w, ctls[w], Rejoin{MaxWait: cfg.Elastic.MaxRejoinWait, Seed: cfg.Fault.Seed ^ uint64(w)})
	}

	// The churn schedule. Each event goroutine sleeps out its offsets so
	// kills land mid-solve regardless of how the solve itself is paced.
	for i, ev := range plan.Events {
		ev := ev
		seed := cfg.Fault.Seed ^ (uint64(cfg.Workers+i) * 0x9e3779b97f4a7c15)
		wg.Add(1)
		//repro:join-ok joined by the wg.Wait below; the sleeps are bounded by the plan's fixed offsets
		go func() {
			defer wg.Done()
			time.Sleep(ev.KillAfter)
			ctls[ev.Worker].Kill()
			if ev.RestartAfter <= 0 {
				return
			}
			time.Sleep(ev.RestartAfter)
			launch(ev.Worker, &WorkerCtl{}, Rejoin{MaxWait: cfg.Elastic.MaxRejoinWait, Seed: seed})
		}()
	}

	out := <-serveCh
	wg.Wait()
	if out.err != nil {
		return nil, out.err
	}
	// The run converged (or ended legitimately): deliberate kills and
	// replacements cut off by the end of the run are expected casualties,
	// not failures. With a successful coordinator result there is no healthy
	// worker left to have failed in a way the result would not show.
	return out.res, nil
}
