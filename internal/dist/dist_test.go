package dist

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// contractingOp builds a diagonally dominant Jacobi operator with known
// fixed point (the same construction the runtime tests use).
func contractingOp(t testing.TB, n int, seed uint64) (*operators.Linear, []float64) {
	t.Helper()
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.4*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 2*off+1)
	}
	rhs := rng.NormalVector(n)
	op := operators.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return op, xstar
}

func TestRunConverges(t *testing.T) {
	op, xstar := contractingOp(t, 32, 1)
	tol := 1e-10
	res, err := Run(Config{
		Op: op, Workers: 4, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("distributed run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-6 {
		t.Errorf("error %v too large", e)
	}
	if r := operators.Residual(op, res.X); r > tol*4 {
		t.Errorf("declared quiescent with residual %.3e > tol %.1e", r, tol)
	}
	if res.MessagesSent == 0 {
		t.Error("no messages sent over TCP")
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Error("byte counters not populated")
	}
	if res.ProbeRounds == 0 {
		t.Error("no probe rounds recorded")
	}
	for w, u := range res.UpdatesPerWorker {
		if u == 0 {
			t.Errorf("worker %d performed no updates", w)
		}
	}
}

func TestRunSingleWorker(t *testing.T) {
	op, xstar := contractingOp(t, 8, 2)
	res, err := Run(Config{Op: op, Workers: 1, Tol: 1e-12, MaxUpdatesPerWorker: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single worker did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-9 {
		t.Errorf("error %v", e)
	}
}

// TestRunFaultInjection is the unbounded-delay / out-of-order / lossy-link
// regime on a real network path: drops, reordering holds and transit
// jitter must not break convergence or termination, and the injection
// counters must show the faults actually happened.
func TestRunFaultInjection(t *testing.T) {
	op, xstar := contractingOp(t, 64, 3)
	res, err := Run(Config{
		Op: op, Workers: 8, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
		Timeout: 60 * time.Second,
		Fault: Fault{
			DropProb:    0.3,
			ReorderProb: 0.5,
			MaxDelay:    300 * time.Microsecond,
			Seed:        11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("faulty-link run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v too large", e)
	}
	if res.MessagesDropped == 0 {
		t.Error("drop injection never fired")
	}
	if res.MessagesReordered == 0 {
		t.Error("reorder injection never produced an out-of-order delivery")
	}
	if res.MessagesStale == 0 {
		t.Error("no out-of-order delivery was discarded as superseded")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	op, _ := contractingOp(t, 8, 4)
	res, err := Run(Config{
		Op: op, Workers: 4, Tol: 1e-30, // unreachable tolerance
		MaxUpdatesPerWorker: 50,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unreachable tolerance should not converge")
	}
}

func TestRunNoTol(t *testing.T) {
	op, _ := contractingOp(t, 8, 5)
	res, err := Run(Config{
		Op: op, Workers: 2, MaxUpdatesPerWorker: 20,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("should not report convergence without Tol")
	}
	for w, u := range res.UpdatesPerWorker {
		if u != 20 {
			t.Errorf("worker %d updates = %d, want 20", w, u)
		}
	}
}

func TestRunWorkersClampedToDim(t *testing.T) {
	op, _ := contractingOp(t, 3, 6)
	res, err := Run(Config{Op: op, Workers: 16, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UpdatesPerWorker) != 3 {
		t.Errorf("workers not clamped: %d", len(res.UpdatesPerWorker))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("expected error without operator")
	}
	op, _ := contractingOp(t, 4, 7)
	if _, err := Run(Config{Op: op}); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := Run(Config{Op: op, Workers: 2, X0: []float64{1}}); err == nil {
		t.Error("expected error for bad X0")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{DropProb: 1.5}}); err == nil {
		t.Error("expected error for DropProb outside [0, 1)")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{ReorderProb: 1}}); err == nil {
		t.Error("expected error for ReorderProb outside [0, 1)")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{MaxDelay: -1}}); err == nil {
		t.Error("expected error for negative MaxDelay")
	}
}

// TestServeConnectSplit exercises the exact halves the dist-coordinator /
// dist-worker subcommands run: an explicit listener served in one
// goroutine, workers dialing it separately.
func TestServeConnectSplit(t *testing.T) {
	op, xstar := contractingOp(t, 16, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	type out struct {
		res *Result
		err error
	}
	serveCh := make(chan out, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener: ln, Workers: p, N: op.Dim(),
			Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 30 * time.Second,
		})
		serveCh <- out{res, err}
	}()
	workerCh := make(chan error, p)
	for w := 0; w < p; w++ {
		go func() { workerCh <- Connect(ln.Addr().String(), op, nil) }()
	}
	got := <-serveCh
	for w := 0; w < p; w++ {
		if err := <-workerCh; err != nil {
			t.Errorf("worker error: %v", err)
		}
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	if !got.res.Converged {
		t.Fatal("split serve/connect run did not converge")
	}
	if e := vec.DistInf(got.res.X, xstar); e > 1e-6 {
		t.Errorf("error %v", e)
	}
}

// TestQuiescenceStressTCP mirrors the in-process message-engine stress
// regression over the network path: many workers, tiny tolerance, and the
// invariant that a converged run's assembled iterate genuinely meets the
// tolerance (early termination would leave a stale block).
func TestQuiescenceStressTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP stress in -short mode")
	}
	tol := 1e-10
	for trial := 0; trial < 3; trial++ {
		op, _ := contractingOp(t, 48, 20+uint64(trial))
		res, err := Run(Config{
			Op: op, Workers: 6, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 60 * time.Second,
			Fault:   Fault{DropProb: 0.1, ReorderProb: 0.3, Seed: uint64(trial)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if r := operators.Residual(op, res.X); r > tol*4 {
			t.Fatalf("trial %d: quiescent with residual %.3e > tol %.1e", trial, r, tol)
		}
	}
}
