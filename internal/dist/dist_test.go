package dist

import (
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// contractingOp builds a diagonally dominant Jacobi operator with known
// fixed point (the same construction the runtime tests use).
func contractingOp(t testing.TB, n int, seed uint64) (*operators.Linear, []float64) {
	t.Helper()
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.4*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 2*off+1)
	}
	rhs := rng.NormalVector(n)
	op := operators.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return op, xstar
}

func TestRunConverges(t *testing.T) {
	op, xstar := contractingOp(t, 32, 1)
	tol := 1e-10
	res, err := Run(Config{
		Op: op, Workers: 4, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("distributed run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-6 {
		t.Errorf("error %v too large", e)
	}
	if r := operators.Residual(op, res.X); r > tol*4 {
		t.Errorf("declared quiescent with residual %.3e > tol %.1e", r, tol)
	}
	if res.MessagesSent == 0 {
		t.Error("no messages sent over TCP")
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Error("byte counters not populated")
	}
	if res.ProbeRounds == 0 {
		t.Error("no probe rounds recorded")
	}
	for w, u := range res.UpdatesPerWorker {
		if u == 0 {
			t.Errorf("worker %d performed no updates", w)
		}
	}
}

func TestRunSingleWorker(t *testing.T) {
	op, xstar := contractingOp(t, 8, 2)
	res, err := Run(Config{Op: op, Workers: 1, Tol: 1e-12, MaxUpdatesPerWorker: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single worker did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-9 {
		t.Errorf("error %v", e)
	}
}

// TestRunFaultInjection is the unbounded-delay / out-of-order / lossy-link
// regime on a real network path: drops, reordering holds and transit
// jitter must not break convergence or termination, and the injection
// counters must show the faults actually happened.
func TestRunFaultInjection(t *testing.T) {
	op, xstar := contractingOp(t, 64, 3)
	res, err := Run(Config{
		Op: op, Workers: 8, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
		Timeout: 60 * time.Second,
		Fault: Fault{
			DropProb:    0.3,
			ReorderProb: 0.5,
			MaxDelay:    300 * time.Microsecond,
			Seed:        11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("faulty-link run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v too large", e)
	}
	if res.MessagesDropped == 0 {
		t.Error("drop injection never fired")
	}
	if res.MessagesReordered == 0 {
		t.Error("reorder injection never produced a link-filtered out-of-order frame")
	}
	// Superseded frames are discarded at the link, never delivered: the
	// receiver-side stale counter must stay zero (it is defense in depth).
	if res.MessagesStale != 0 {
		t.Errorf("link filter leaked %d superseded frames to receivers", res.MessagesStale)
	}
	if got := res.MessagesSent - res.MessagesDelivered - res.MessagesDropped -
		res.MessagesReordered - res.MessagesDuplicate; got != 0 {
		t.Errorf("message accounting does not balance: %d frames unaccounted", got)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	op, _ := contractingOp(t, 8, 4)
	res, err := Run(Config{
		Op: op, Workers: 4, Tol: 1e-30, // unreachable tolerance
		MaxUpdatesPerWorker: 50,
		Timeout:             30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unreachable tolerance should not converge")
	}
}

func TestRunNoTol(t *testing.T) {
	op, _ := contractingOp(t, 8, 5)
	res, err := Run(Config{
		Op: op, Workers: 2, MaxUpdatesPerWorker: 20,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("should not report convergence without Tol")
	}
	for w, u := range res.UpdatesPerWorker {
		if u != 20 {
			t.Errorf("worker %d updates = %d, want 20", w, u)
		}
	}
}

func TestRunWorkersClampedToDim(t *testing.T) {
	op, _ := contractingOp(t, 3, 6)
	res, err := Run(Config{Op: op, Workers: 16, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UpdatesPerWorker) != 3 {
		t.Errorf("workers not clamped: %d", len(res.UpdatesPerWorker))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("expected error without operator")
	}
	op, _ := contractingOp(t, 4, 7)
	if _, err := Run(Config{Op: op}); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := Run(Config{Op: op, Workers: 2, X0: []float64{1}}); err == nil {
		t.Error("expected error for bad X0")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{DropProb: 1.5}}); err == nil {
		t.Error("expected error for DropProb outside [0, 1)")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{ReorderProb: 1}}); err == nil {
		t.Error("expected error for ReorderProb outside [0, 1)")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Fault: Fault{MaxDelay: -1}}); err == nil {
		t.Error("expected error for negative MaxDelay")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Topology: "ring"}); err == nil {
		t.Error("expected error for unknown topology")
	}
	if _, err := Run(Config{Op: op, Workers: 2, DeltaThreshold: -1e-9}); err == nil {
		t.Error("expected error for negative DeltaThreshold")
	}
}

// TestServeConnectSplit exercises the exact halves the dist-coordinator /
// dist-worker subcommands run: an explicit listener served in one
// goroutine, workers dialing it separately.
func TestServeConnectSplit(t *testing.T) {
	op, xstar := contractingOp(t, 16, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	type out struct {
		res *Result
		err error
	}
	serveCh := make(chan out, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener: ln, Workers: p, N: op.Dim(),
			Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 30 * time.Second,
		})
		serveCh <- out{res, err}
	}()
	workerCh := make(chan error, p)
	for w := 0; w < p; w++ {
		go func() { workerCh <- Connect(ln.Addr().String(), op, nil) }()
	}
	got := <-serveCh
	for w := 0; w < p; w++ {
		if err := <-workerCh; err != nil {
			t.Errorf("worker error: %v", err)
		}
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	if !got.res.Converged {
		t.Fatal("split serve/connect run did not converge")
	}
	if e := vec.DistInf(got.res.X, xstar); e > 1e-6 {
		t.Errorf("error %v", e)
	}
}

// TestQuiescenceStressTCP mirrors the in-process message-engine stress
// regression over the network path: many workers, tiny tolerance, and the
// invariant that a converged run's assembled iterate genuinely meets the
// tolerance (early termination would leave a stale block).
func TestQuiescenceStressTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP stress in -short mode")
	}
	tol := 1e-10
	for trial := 0; trial < 3; trial++ {
		op, _ := contractingOp(t, 48, 20+uint64(trial))
		res, err := Run(Config{
			Op: op, Workers: 6, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 60 * time.Second,
			Fault:   Fault{DropProb: 0.1, ReorderProb: 0.3, Seed: uint64(trial)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if r := operators.Residual(op, res.X); r > tol*4 {
			t.Fatalf("trial %d: quiescent with residual %.3e > tol %.1e", trial, r, tol)
		}
	}
}

// TestRunMeshConverges is the basic mesh data-plane check: workers exchange
// shard frames directly, the coordinator keeps only the control plane, and
// the per-link byte matrix shows worker-to-worker traffic.
func TestRunMeshConverges(t *testing.T) {
	op, xstar := contractingOp(t, 32, 1)
	tol := 1e-10
	res, err := Run(Config{
		Op: op, Workers: 4, Topology: TopologyMesh, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("mesh run did not converge")
	}
	if res.Topology != TopologyMesh {
		t.Errorf("Result.Topology = %q", res.Topology)
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-6 {
		t.Errorf("error %v too large", e)
	}
	if r := operators.Residual(op, res.X); r > tol*4 {
		t.Errorf("declared quiescent with residual %.3e > tol %.1e", r, tol)
	}
	var dataBytes int64
	for i, row := range res.LinkBytes {
		for j, b := range row {
			if i == j && b != 0 {
				t.Errorf("self-link bytes [%d][%d] = %d", i, j, b)
			}
			dataBytes += b
		}
	}
	if dataBytes == 0 {
		t.Error("no worker-to-worker data-plane bytes recorded")
	}
	// The coordinator must be out of the data path: its wire traffic is
	// rendezvous, probes and finals only, far below the shard traffic.
	if res.BytesSent > dataBytes {
		t.Errorf("coordinator shipped %d bytes > data plane %d: mesh did not bypass it", res.BytesSent, dataBytes)
	}
}

// TestRunMeshShardedFaultInjection is the acceptance regime: Workers << n
// (multi-component shards) on the mesh under drop+reorder+delay, with the
// sender-side injection and link-filter counters balancing exactly.
func TestRunMeshShardedFaultInjection(t *testing.T) {
	op, xstar := contractingOp(t, 64, 3)
	res, err := Run(Config{
		Op: op, Workers: 8, Topology: TopologyMesh, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
		Timeout: 60 * time.Second,
		Fault: Fault{
			DropProb:    0.3,
			ReorderProb: 0.5,
			MaxDelay:    300 * time.Microsecond,
			Seed:        11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("faulty mesh run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v too large", e)
	}
	if res.MessagesDropped == 0 {
		t.Error("drop injection never fired on the mesh")
	}
	if res.MessagesReordered == 0 {
		t.Error("reorder injection never produced a link-filtered frame")
	}
	if res.MessagesStale != 0 {
		t.Errorf("sender-side link filter leaked %d superseded frames", res.MessagesStale)
	}
	if got := res.MessagesSent - res.MessagesDelivered - res.MessagesDropped -
		res.MessagesReordered - res.MessagesDuplicate; got != 0 {
		t.Errorf("mesh accounting does not balance: %d frames unaccounted", got)
	}
}

// TestRunMeshSingleWorker exercises the degenerate mesh (no peers, no
// links): rendezvous must still complete and the solve still run.
func TestRunMeshSingleWorker(t *testing.T) {
	op, xstar := contractingOp(t, 8, 2)
	res, err := Run(Config{Op: op, Workers: 1, Topology: TopologyMesh, Tol: 1e-12, MaxUpdatesPerWorker: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single mesh worker did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-9 {
		t.Errorf("error %v", e)
	}
}

// TestDeltaThresholdFraming pins the flexible-communication framing
// exactly: under a threshold a broadcast ships ONE frame covering the span
// from the first to the last component that moved by more than the
// threshold since it was LAST SHIPPED (so sub-threshold creep accumulates
// until it crosses, and a broadcast is atomic on the sequence stream — a
// supersession can never keep half of one), an unmoved shard costs zero
// frames and zero bytes, and a reliable final always carries the whole
// shard.
func TestDeltaThresholdFraming(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	type sent struct {
		flags byte
		lo    int
		vals  []float64
	}
	frames := make(chan sent, 32)
	go func() {
		for {
			typ, payload, err := readFrame(cli, maxFramePayload)
			if err != nil {
				close(frames)
				return
			}
			if typ != msgBlock {
				continue
			}
			cur := cursor{b: payload}
			cur.u32() // from
			cur.u64() // seq
			f := sent{flags: cur.u8()}
			cur.u32() // gen
			f.lo = int(cur.u32())
			f.vals = cur.f64s(int(cur.u32()))
			frames <- f
		}
	}()
	next := func() sent {
		select {
		case f := <-frames:
			return f
		case <-time.After(5 * time.Second):
			t.Fatal("expected a frame, got none")
			return sent{}
		}
	}
	none := func(context string) {
		select {
		case f := <-frames:
			t.Fatalf("%s: unexpected frame [%d, +%d)", context, f.lo, len(f.vals))
		case <-time.After(20 * time.Millisecond):
		}
	}
	expect := func(context string, lo int, vals ...float64) {
		t.Helper()
		f := next()
		if f.lo != lo || len(f.vals) != len(vals) {
			t.Fatalf("%s: frame [%d, +%d), want [%d, +%d)", context, f.lo, len(f.vals), lo, len(vals))
		}
		for i, v := range vals {
			if f.vals[i] != v {
				t.Fatalf("%s: frame value [%d] = %v, want %v", context, i, f.vals[i], v)
			}
		}
	}

	ws := &workerState{
		conn: srv, id: 0, p: 2, n: 8, lo: 0, hi: 8,
		deltaThreshold: 0.1,
		lastSent:       make([]float64, 8),
	}

	// Components 0, 2-3 and 6 moved beyond the threshold (baseline:
	// lastSent all zero): ONE frame covering [0, 7) goes out, with the
	// sub-threshold components inside the span riding along; component 7,
	// outside the span, stays unshipped.
	if err := ws.broadcast([]float64{1, 0.05, 1, 1, 0.05, 0.05, 1, 0.05}, 0); err != nil {
		t.Fatal(err)
	}
	expect("covering span", 0, 1, 0.05, 1, 1, 0.05, 0.05, 1)
	none("covering span")
	if ws.sent != 1 {
		t.Errorf("sent = %d frames × (p-1), want 1", ws.sent)
	}

	// Re-broadcasting the identical vector ships nothing at all.
	if err := ws.broadcast([]float64{1, 0.05, 1, 1, 0.05, 0.05, 1, 0.05}, 0); err != nil {
		t.Fatal(err)
	}
	none("unchanged vector")

	// Sub-threshold creep: component 7 was never shipped (its baseline is
	// still 0), so a step to 0.08 stays below the threshold, but the next
	// step to 0.12 crosses the CUMULATIVE move against the last shipped
	// value and must go out — the accumulation rule that bounds peer
	// staleness by the threshold on loss-free links.
	if err := ws.broadcast([]float64{1, 0.05, 1, 1, 0.05, 0.05, 1, 0.08}, 0); err != nil {
		t.Fatal(err)
	}
	none("first creep step")
	if err := ws.broadcast([]float64{1, 0.05, 1, 1, 0.05, 0.05, 1, 0.12}, 0); err != nil {
		t.Fatal(err)
	}
	expect("second creep step", 7, 0.12)
	none("second creep step")

	// A reliable final ships the whole shard no matter what moved.
	if err := ws.broadcast([]float64{1, 0.05, 1, 1, 0.05, 0.05, 1, 0.12}, blockReliable); err != nil {
		t.Fatal(err)
	}
	f := next()
	if f.flags&blockReliable == 0 || f.lo != 0 || len(f.vals) != 8 {
		t.Fatalf("reliable final = flags %d [%d, +%d), want the whole reliable shard", f.flags, f.lo, len(f.vals))
	}
	none("after final")
}

// TestSupersededNeverRelayed is the regression test for the stale-block
// relay bug: a frame superseded on its link (an earlier sequence arriving
// after a later one was already delivered) must be discarded AT the relay —
// never written to the link, so the receiver can never apply or re-count
// it — and counted reordered, disjointly from duplicates.
func TestSupersededNeverRelayed(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	c := &coordinator{
		cfg:   ServerConfig{Workers: 2, Topology: TopologyStar, N: 4},
		links: []*link{nil, {conn: srv, lastSeq: make([]uint64, 2), seqGen: 1, bytesFrom: make([]int64, 2)}},
		alive: []bool{false, true},
		gen:   1,
	}
	c.genA.Store(1)
	frames := make(chan uint64, 16)
	go func() {
		for {
			typ, payload, err := readFrame(cli, maxFramePayload)
			if err != nil {
				close(frames)
				return
			}
			if typ != msgBlock {
				continue
			}
			cur := cursor{b: payload}
			cur.u32() // from
			frames <- cur.u64()
		}
	}()
	frame := func(seq uint64) []byte { return buildBlockFrame(0, seq, 0, 1, 0, []float64{1, 2}) }

	c.deliverBlock(1, 0, 2, 1, frame(2)) // newest first
	c.deliverBlock(1, 0, 1, 1, frame(1)) // superseded: must be discarded here
	c.deliverBlock(1, 0, 2, 1, frame(2)) // duplicate: must be discarded here
	c.deliverBlock(1, 0, 3, 1, frame(3)) // fresh: must pass

	if got := <-frames; got != 2 {
		t.Fatalf("first relayed seq = %d, want 2", got)
	}
	if got := <-frames; got != 3 {
		t.Fatalf("second relayed seq = %d, want 3 (the superseded/duplicate frames leaked)", got)
	}
	if got := c.reordered.Load(); got != 1 {
		t.Errorf("reordered = %d, want 1", got)
	}
	if got := c.duplicate.Load(); got != 1 {
		t.Errorf("duplicate = %d, want 1", got)
	}
	if got := c.dropped.Load(); got != 0 {
		t.Errorf("dropped = %d, want 0 (filter discards are not injection drops)", got)
	}
}

// TestSupersededNeverWrittenOnMeshLink is the mesh-side twin: the sending
// worker's link filter discards superseded and duplicate frames before they
// touch the wire.
func TestSupersededNeverWrittenOnMeshLink(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	m := &mesh{id: 0, p: 2, out: make([]atomic.Pointer[meshLink], 2), bytesTo: make([]atomic.Int64, 2), gen: 1}
	m.out[1].Store(&meshLink{q: 1, conn: srv, seqGen: 1})
	frames := make(chan uint64, 16)
	go func() {
		for {
			typ, payload, err := readFrame(cli, maxFramePayload)
			if err != nil {
				close(frames)
				return
			}
			if typ != msgBlock {
				continue
			}
			cur := cursor{b: payload}
			cur.u32()
			frames <- cur.u64()
		}
	}()
	frame := func(seq uint64) []byte { return buildBlockFrame(0, seq, 0, 1, 0, []float64{1}) }
	l := m.out[1].Load()
	m.deliver(l, 5, 1, frame(5))
	m.deliver(l, 4, 1, frame(4)) // superseded
	m.deliver(l, 5, 1, frame(5)) // duplicate
	m.deliver(l, 6, 1, frame(6))
	if got := <-frames; got != 5 {
		t.Fatalf("first written seq = %d, want 5", got)
	}
	if got := <-frames; got != 6 {
		t.Fatalf("second written seq = %d, want 6 (filtered frames leaked onto the wire)", got)
	}
	if m.reordered.Load() != 1 || m.duplicate.Load() != 1 || m.dropped.Load() != 0 {
		t.Errorf("counters (reordered, duplicate, dropped) = (%d, %d, %d), want (1, 1, 0)",
			m.reordered.Load(), m.duplicate.Load(), m.dropped.Load())
	}
}

// TestSupersededNeverApplied covers the receiver's defense in depth: even
// if a stale frame slips past every link filter, the worker discards its
// values (acknowledging the delivery so in-flight drains) instead of
// overwriting fresher state.
func TestSupersededNeverApplied(t *testing.T) {
	ws := &workerState{
		id: 1, p: 2, n: 4, lo: 2, hi: 4,
		view:    []float64{0, 0, 0, 0},
		lastSeq: make([]uint64, 2),
	}
	block := func(seq uint64, vals []float64) inFrame {
		f := buildBlockFrame(0, seq, 0, 0, 0, vals)
		return inFrame{typ: msgBlock, payload: f[frameHeaderLen:]}
	}
	if err := ws.handle(block(2, []float64{7, 7})); err != nil {
		t.Fatal(err)
	}
	if err := ws.handle(block(1, []float64{3, 3})); err != nil {
		t.Fatal(err)
	}
	if ws.view[0] != 7 || ws.view[1] != 7 {
		t.Errorf("superseded block was applied: view = %v", ws.view)
	}
	if ws.stale != 1 {
		t.Errorf("stale = %d, want 1", ws.stale)
	}
	if ws.delivered != 2 {
		t.Errorf("delivered = %d, want 2 (stale frames still drain in-flight)", ws.delivered)
	}
}

// TestDelayQueueDrain pins the teardown discipline of delayed deliveries:
// drain cancels what it can, waits out callbacks already firing, and no
// callback can start after drain returns.
func TestDelayQueueDrain(t *testing.T) {
	var q delayQueue
	var fired atomic.Int64
	for i := 0; i < 64; i++ {
		if !q.after(50*time.Millisecond, func() { fired.Add(1) }) {
			t.Fatal("after refused before drain")
		}
	}
	q.drain()
	if got := fired.Load(); got != 0 {
		t.Errorf("%d far-future callbacks ran despite drain", got)
	}
	if q.after(time.Microsecond, func() { fired.Add(1) }) {
		t.Error("after accepted a timer post-drain")
	}
	time.Sleep(2 * time.Millisecond)
	if got := fired.Load(); got != 0 {
		t.Errorf("post-drain timer fired (%d)", got)
	}

	// A callback that is already running when drain starts must complete
	// before drain returns (the write-before-close guarantee).
	var q2 delayQueue
	started := make(chan struct{})
	var finished atomic.Bool
	q2.after(time.Microsecond, func() {
		close(started)
		time.Sleep(10 * time.Millisecond)
		finished.Store(true)
	})
	<-started
	q2.drain()
	if !finished.Load() {
		t.Error("drain returned while a callback was still running")
	}
}

// TestDelayedDeliveryTeardown is the race-detector regression for the
// teardown bug: with injected delays comparable to the whole solve, many
// relay timers are still pending when the run stops, and teardown must
// cancel or complete every one before any connection closes. Run under
// -race (CI does) this fails loudly if a delayed write races conn close.
func TestDelayedDeliveryTeardown(t *testing.T) {
	for _, topology := range []string{TopologyStar, TopologyMesh} {
		t.Run(topology, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				op, _ := contractingOp(t, 16, 30+uint64(trial))
				res, err := Run(Config{
					Op: op, Workers: 4, Topology: topology, Tol: 1e-8,
					MaxUpdatesPerWorker: 1 << 18,
					Timeout:             60 * time.Second,
					Fault: Fault{
						ReorderProb: 0.5,
						MaxDelay:    3 * time.Millisecond, // >> per-phase compute time
						Seed:        uint64(100 + trial),
					},
				})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !res.Converged {
					t.Fatalf("trial %d did not converge", trial)
				}
			}
		})
	}
}

// TestMeshServeConnectSplit exercises the multi-process halves on the mesh
// topology: an explicit listener served in one goroutine, workers dialing
// it separately and then each other.
func TestMeshServeConnectSplit(t *testing.T) {
	op, xstar := contractingOp(t, 16, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	type out struct {
		res *Result
		err error
	}
	serveCh := make(chan out, 1)
	go func() {
		res, err := Serve(ServerConfig{
			Listener: ln, Workers: p, Topology: TopologyMesh, N: op.Dim(),
			Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 30 * time.Second,
		})
		serveCh <- out{res, err}
	}()
	workerCh := make(chan error, p)
	for w := 0; w < p; w++ {
		go func() { workerCh <- Connect(ln.Addr().String(), op, nil) }()
	}
	got := <-serveCh
	for w := 0; w < p; w++ {
		if err := <-workerCh; err != nil {
			t.Errorf("worker error: %v", err)
		}
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	if !got.res.Converged {
		t.Fatal("split mesh run did not converge")
	}
	if e := vec.DistInf(got.res.X, xstar); e > 1e-6 {
		t.Errorf("error %v", e)
	}
}

// TestQuiescenceStressMesh mirrors the TCP stress regression on the mesh
// data plane: many workers, tiny tolerance, faulty links, and the invariant
// that a converged run's assembled iterate genuinely meets the tolerance.
func TestQuiescenceStressMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP stress in -short mode")
	}
	tol := 1e-10
	for trial := 0; trial < 3; trial++ {
		op, _ := contractingOp(t, 48, 20+uint64(trial))
		res, err := Run(Config{
			Op: op, Workers: 6, Topology: TopologyMesh, Tol: tol, MaxUpdatesPerWorker: 1 << 18,
			Timeout: 60 * time.Second,
			Fault:   Fault{DropProb: 0.1, ReorderProb: 0.3, Seed: uint64(trial)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if r := operators.Residual(op, res.X); r > tol*4 {
			t.Fatalf("trial %d: quiescent with residual %.3e > tol %.1e", trial, r, tol)
		}
	}
}
