// Package mldata generates the synthetic machine-learning workloads of the
// experiments: regression problems (ridge/lasso) with *controlled* strong
// convexity mu, smoothness L and Hessian diagonal dominance — the properties
// Theorem 1 needs to be checkable against a known solution — plus logistic
// regression for classification examples. It substitutes for the paper's
// unavailable training sets; the substitution is sound because the paper's
// claims depend only on (mu, L, operator contraction), not on specific data.
package mldata

import (
	"fmt"
	"math"

	"repro/internal/operators"
	"repro/internal/vec"
)

// Regression is a synthetic linear-regression problem y = A x_true + noise.
type Regression struct {
	A     *vec.Dense // m x n design matrix
	Y     []float64  // m targets
	XTrue []float64  // generating parameter vector (sparse for lasso)
	Reg   float64    // L2 regularization of the smooth part
}

// RegressionConfig controls generation.
type RegressionConfig struct {
	// N is the number of features (model dimension).
	N int
	// Samples is the number of rows m (default 4*N).
	Samples int
	// Coupling in [0, 1) scales the off-diagonal mass of the Hessian; small
	// values give strongly diagonally dominant Hessians (max-norm
	// contraction of the gradient operator), larger values approach the
	// dominance boundary.
	Coupling float64
	// Sparsity is the fraction of zero entries in XTrue (lasso ground
	// truth); 0 gives a dense generator.
	Sparsity float64
	// Noise is the standard deviation of the target noise.
	Noise float64
	// Reg is the L2 regularization (contributes to mu).
	Reg float64
	// Seed drives generation.
	Seed uint64
}

// NewRegression generates a problem whose least-squares Hessian
// (1/m) A^T A + Reg I is strictly diagonally dominant by construction:
// the design matrix is a strong per-feature diagonal block plus Coupling-
// scaled dense Gaussian rows, rescaled until Gershgorin dominance holds.
func NewRegression(cfg RegressionConfig) (*Regression, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("mldata: N must be positive, got %d", cfg.N)
	}
	if cfg.Coupling < 0 || cfg.Coupling >= 1 {
		return nil, fmt.Errorf("mldata: Coupling %v outside [0,1)", cfg.Coupling)
	}
	n := cfg.N
	m := cfg.Samples
	if m <= 0 {
		m = 4 * n
	}
	if m < n {
		return nil, fmt.Errorf("mldata: Samples %d < N %d", m, n)
	}
	rng := vec.NewRNG(cfg.Seed)

	// Rows 0..n-1: scaled identity block giving each feature a strong
	// diagonal presence. Remaining rows: dense coupling.
	a := vec.NewDense(m, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, math.Sqrt(float64(m))*rng.Range(0.8, 1.2))
	}
	sigma := cfg.Coupling
	for i := n; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, sigma*rng.Normal())
		}
	}
	// Rescale coupling rows until the Hessian is diagonally dominant.
	for iter := 0; iter < 60; iter++ {
		h := hessian(a, cfg.Reg)
		if dd, _ := h.IsDiagonallyDominant(); dd {
			break
		}
		for i := n; i < m; i++ {
			row := a.Row(i)
			for j := range row {
				row[j] *= 0.8
			}
		}
	}
	h := hessian(a, cfg.Reg)
	if dd, _ := h.IsDiagonallyDominant(); !dd {
		return nil, fmt.Errorf("mldata: failed to reach diagonal dominance")
	}

	xt := make([]float64, n)
	for i := range xt {
		if rng.Float64() >= cfg.Sparsity {
			xt[i] = rng.Range(-2, 2)
		}
	}
	y := a.MulVec(xt)
	for i := range y {
		y[i] += cfg.Noise * rng.Normal()
	}
	return &Regression{A: a, Y: y, XTrue: xt, Reg: cfg.Reg}, nil
}

func hessian(a *vec.Dense, reg float64) *vec.Dense {
	h := a.AtA()
	m := float64(a.Rows)
	for i := range h.Data {
		h.Data[i] /= m
	}
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, h.At(i, i)+reg)
	}
	return h
}

// Smooth returns the least-squares smooth part f with its (L, mu) bounds.
func (r *Regression) Smooth() *operators.LeastSquares {
	return r.SmoothTuned(false, 1)
}

// SmoothTuned is Smooth with build-time tuning: lean selects the residual
// gradient form (no precomputed Gram matrix — a bit-different but
// mathematically equivalent objective evaluation, see
// operators.NewLeastSquaresLean), and shards > 1 fans the eager Gram
// assembly over that many concurrent lanes (bit-identical to serial).
func (r *Regression) SmoothTuned(lean bool, shards int) *operators.LeastSquares {
	if lean {
		return operators.NewLeastSquaresLean(r.A, r.Y, r.Reg)
	}
	if shards > 1 {
		return operators.NewLeastSquaresSharded(r.A, r.Y, r.Reg, shards)
	}
	return operators.NewLeastSquares(r.A, r.Y, r.Reg)
}

// MSE returns the mean squared prediction error of x on the data.
func (r *Regression) MSE(x []float64) float64 {
	pred := r.A.MulVec(x)
	s := 0.0
	for i := range pred {
		d := pred[i] - r.Y[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// Classification is a synthetic binary classification problem with labels
// in {-1, +1}.
type Classification struct {
	A     *vec.Dense
	Z     []float64 // labels
	XTrue []float64
	Reg   float64
}

// NewClassification generates linearly separable-ish data with label noise.
func NewClassification(n, samples int, flip float64, reg float64, seed uint64) *Classification {
	rng := vec.NewRNG(seed)
	a := vec.NewDense(samples, n)
	xt := rng.NormalVector(n)
	z := make([]float64, samples)
	for i := 0; i < samples; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Normal())
		}
		margin := a.RowDotAt(i, xt)
		if margin >= 0 {
			z[i] = 1
		} else {
			z[i] = -1
		}
		if rng.Float64() < flip {
			z[i] = -z[i]
		}
	}
	return &Classification{A: a, Z: z, XTrue: xt, Reg: reg}
}

// Logistic is the regularized logistic loss
//
//	f(x) = (1/m) sum_h log(1 + exp(-z_h a_h^T x)) + (Reg/2)||x||^2,
//
// an L-smooth (L <= lmax((1/4m) A^T A) + Reg), Reg-strongly convex function
// implementing operators.Smooth.
type Logistic struct {
	A     *vec.Dense
	Z     []float64
	Reg   float64
	l, mu float64
}

// NewLogistic wraps classification data as a Smooth function.
func NewLogistic(c *Classification) *Logistic {
	g := c.A.AtA()
	m := float64(c.A.Rows)
	for i := range g.Data {
		g.Data[i] /= 4 * m
	}
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+c.Reg)
	}
	_, hi := g.SymEigBounds()
	return &Logistic{A: c.A, Z: c.Z, Reg: c.Reg, l: hi, mu: c.Reg}
}

// Dim implements operators.Smooth.
func (f *Logistic) Dim() int { return f.A.Cols }

// Value implements operators.Smooth.
func (f *Logistic) Value(x []float64) float64 {
	m := f.A.Rows
	s := 0.0
	for h := 0; h < m; h++ {
		t := -f.Z[h] * f.A.RowDotAt(h, x)
		// log(1+exp(t)) computed stably.
		if t > 30 {
			s += t
		} else {
			s += math.Log1p(math.Exp(t))
		}
	}
	return s/float64(m) + 0.5*f.Reg*vec.Dot(x, x)
}

// Grad implements operators.Smooth.
func (f *Logistic) Grad(dst, x []float64) {
	for j := range dst {
		dst[j] = f.Reg * x[j]
	}
	m := f.A.Rows
	for h := 0; h < m; h++ {
		t := -f.Z[h] * f.A.RowDotAt(h, x)
		sig := 1 / (1 + math.Exp(-t)) // sigma(t)
		coef := -f.Z[h] * sig / float64(m)
		row := f.A.Row(h)
		for j := range row {
			dst[j] += coef * row[j]
		}
	}
}

// GradComponent implements operators.Smooth. The per-sample coefficient is
// formed exactly as in Grad/GradRange (coef = -z*sigma/m, then coef*a), so
// the three evaluation granularities are bit-identical.
func (f *Logistic) GradComponent(i int, x []float64) float64 {
	g := f.Reg * x[i]
	m := f.A.Rows
	for h := 0; h < m; h++ {
		t := -f.Z[h] * f.A.RowDotAt(h, x)
		sig := 1 / (1 + math.Exp(-t))
		coef := -f.Z[h] * sig / float64(m)
		g += coef * f.A.At(h, i)
	}
	return g
}

// GradRange implements operators.RangeGradSmooth: the m margins and sigmoid
// coefficients — the part of every logistic gradient that does not depend
// on which component is asked for — are computed ONCE per call (O(m*n)) and
// each component in [lo, hi) then costs one m-length column pass. The
// per-component path pays the full O(m*n) margin pass per component, so a
// b-component block drops from O(b*m*n) to O(m*n + b*m). Uses Aux slot 1
// (slot 0 is reserved for ResidualWith).
func (f *Logistic) GradRange(scr *operators.Scratch, dst, x []float64, lo, hi int) {
	m := f.A.Rows
	var coef []float64
	if scr != nil {
		coef = scr.Aux(1, m)
	} else {
		coef = make([]float64, m)
	}
	for h := 0; h < m; h++ {
		t := -f.Z[h] * f.A.RowDotAt(h, x)
		sig := 1 / (1 + math.Exp(-t))
		coef[h] = -f.Z[h] * sig / float64(m)
	}
	for c := lo; c < hi; c++ {
		g := f.Reg * x[c]
		for h := 0; h < m; h++ {
			g += coef[h] * f.A.At(h, c)
		}
		dst[c-lo] = g
	}
}

// LMu implements operators.Smooth.
func (f *Logistic) LMu() (float64, float64) { return f.l, f.mu }

// Accuracy returns the fraction of correctly classified samples.
func (c *Classification) Accuracy(x []float64) float64 {
	correct := 0
	for h := 0; h < c.A.Rows; h++ {
		margin := c.A.RowDotAt(h, x)
		if (margin >= 0 && c.Z[h] > 0) || (margin < 0 && c.Z[h] < 0) {
			correct++
		}
	}
	return float64(correct) / float64(c.A.Rows)
}
