package mldata

import (
	"math"
	"testing"

	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/vec"
)

func TestNewRegressionShape(t *testing.T) {
	r, err := NewRegression(RegressionConfig{N: 8, Samples: 40, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.A.Rows != 40 || r.A.Cols != 8 || len(r.Y) != 40 || len(r.XTrue) != 8 {
		t.Fatalf("bad shapes: A %dx%d, y %d, xtrue %d", r.A.Rows, r.A.Cols, len(r.Y), len(r.XTrue))
	}
}

func TestRegressionHessianDiagonallyDominant(t *testing.T) {
	for _, coupling := range []float64{0, 0.2, 0.6, 0.9} {
		r, err := NewRegression(RegressionConfig{N: 12, Coupling: coupling, Reg: 0.05, Seed: 2})
		if err != nil {
			t.Fatalf("coupling %v: %v", coupling, err)
		}
		f := r.Smooth()
		if dd, slack := f.Hessian().IsDiagonallyDominant(); !dd {
			t.Errorf("coupling %v: Hessian not diagonally dominant (slack %v)", coupling, slack)
		}
	}
}

func TestRegressionValidation(t *testing.T) {
	if _, err := NewRegression(RegressionConfig{N: 0}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := NewRegression(RegressionConfig{N: 4, Coupling: 1.0}); err == nil {
		t.Error("expected error for Coupling=1")
	}
	if _, err := NewRegression(RegressionConfig{N: 8, Samples: 4}); err == nil {
		t.Error("expected error for Samples < N")
	}
}

func TestRegressionDeterministic(t *testing.T) {
	cfg := RegressionConfig{N: 6, Coupling: 0.4, Sparsity: 0.3, Noise: 0.1, Reg: 0.1, Seed: 42}
	a, _ := NewRegression(cfg)
	b, _ := NewRegression(cfg)
	if !vec.Equal(a.Y, b.Y, 0) || !vec.Equal(a.XTrue, b.XTrue, 0) {
		t.Error("same seed produced different problems")
	}
}

func TestRegressionSparsity(t *testing.T) {
	r, _ := NewRegression(RegressionConfig{N: 100, Coupling: 0.1, Sparsity: 0.7, Seed: 3})
	zeros := 0
	for _, v := range r.XTrue {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 50 || zeros > 90 {
		t.Errorf("zeros = %d out of 100, expected near 70", zeros)
	}
}

func TestRidgeRecoversXTrue(t *testing.T) {
	// With tiny noise and tiny regularization, minimizing the smooth part
	// recovers XTrue approximately.
	r, _ := NewRegression(RegressionConfig{N: 8, Coupling: 0.2, Noise: 0.001, Reg: 1e-4, Seed: 4})
	f := r.Smooth()
	gamma := operators.MaxStep(f)
	op := operators.NewGradOp(f, gamma)
	x, ok := operators.FixedPoint(op, make([]float64, 8), 1e-12, 200000)
	if !ok {
		t.Fatal("did not converge")
	}
	if !vec.Equal(x, r.XTrue, 0.05) {
		t.Errorf("recovered %v, want %v", x, r.XTrue)
	}
	if mse := r.MSE(x); mse > 0.01 {
		t.Errorf("MSE = %v", mse)
	}
}

func TestLassoZerosRecovered(t *testing.T) {
	// Lasso on a sparse ground truth should zero out at least some of the
	// truly-zero coefficients.
	r, _ := NewRegression(RegressionConfig{N: 16, Coupling: 0.2, Sparsity: 0.5, Noise: 0.01, Reg: 0.01, Seed: 5})
	f := r.Smooth()
	gamma := operators.MaxStep(f)
	op := operators.NewProxGradFB(f, prox.L1{Lambda: 0.1}, gamma)
	x, ok := operators.FixedPoint(op, make([]float64, 16), 1e-12, 400000)
	if !ok {
		t.Fatal("did not converge")
	}
	zeroMatches := 0
	trueZeros := 0
	for i, v := range r.XTrue {
		if v == 0 {
			trueZeros++
			if math.Abs(x[i]) < 1e-6 {
				zeroMatches++
			}
		}
	}
	if trueZeros == 0 {
		t.Skip("degenerate draw: no true zeros")
	}
	if zeroMatches == 0 {
		t.Errorf("lasso recovered no zero coefficients (%d true zeros)", trueZeros)
	}
}

func TestLogisticGradMatchesFiniteDifference(t *testing.T) {
	c := NewClassification(5, 30, 0.05, 0.1, 6)
	f := NewLogistic(c)
	x := vec.NewRNG(7).NormalVector(5)
	g := make([]float64, 5)
	f.Grad(g, x)
	const h = 1e-6
	for i := 0; i < 5; i++ {
		xp, xm := vec.Clone(x), vec.Clone(x)
		xp[i] += h
		xm[i] -= h
		fd := (f.Value(xp) - f.Value(xm)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-4 {
			t.Errorf("grad[%d] = %v, fd %v", i, g[i], fd)
		}
		if math.Abs(f.GradComponent(i, x)-g[i]) > 1e-10 {
			t.Errorf("GradComponent(%d) mismatch", i)
		}
	}
}

func TestLogisticTrainingImprovesAccuracy(t *testing.T) {
	c := NewClassification(8, 200, 0.05, 0.05, 8)
	f := NewLogistic(c)
	x0 := make([]float64, 8)
	acc0 := c.Accuracy(x0)
	gamma := operators.MaxStep(f)
	op := operators.NewGradOp(f, gamma)
	x, _ := operators.FixedPoint(op, x0, 1e-9, 50000)
	acc := c.Accuracy(x)
	if acc <= acc0 {
		t.Errorf("training did not improve accuracy: %v -> %v", acc0, acc)
	}
	if acc < 0.8 {
		t.Errorf("accuracy %v too low for near-separable data", acc)
	}
}

func TestLogisticLMu(t *testing.T) {
	c := NewClassification(4, 50, 0, 0.2, 9)
	f := NewLogistic(c)
	l, mu := f.LMu()
	if mu != 0.2 {
		t.Errorf("mu = %v, want Reg = 0.2", mu)
	}
	if l <= mu {
		t.Errorf("L = %v should exceed mu = %v", l, mu)
	}
}
