package newton

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/operators"
	"repro/internal/steering"
	"repro/internal/vec"
)

// testQuadratic builds a diagonally dominant SPD quadratic with known
// minimizer.
func testQuadratic(t *testing.T, n int, seed uint64) (QuadraticHessian, []float64) {
	t.Helper()
	rng := vec.NewRNG(seed)
	q := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := 0.3 * rng.Normal()
			q.Set(i, j, v)
			q.Set(j, i, v) // symmetric
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(q.At(i, j))
			}
		}
		q.Set(i, i, 1.5*off+1)
	}
	b := rng.NormalVector(n)
	f := operators.NewQuadratic(q, b, 0)
	xstar, err := f.Minimizer()
	if err != nil {
		t.Fatal(err)
	}
	return QuadraticHessian{Quadratic: f}, xstar
}

func TestDiagNewtonFixedPointIsMinimizer(t *testing.T) {
	f, xstar := testQuadratic(t, 8, 1)
	op := NewDiagNewton(f, 1.0)
	x, ok := operators.FixedPoint(op, make([]float64, 8), 1e-12, 100000)
	if !ok {
		t.Fatal("did not converge")
	}
	if !vec.Equal(x, xstar, 1e-9) {
		t.Errorf("fixed point %v, minimizer %v", x, xstar)
	}
}

func TestDiagNewtonIsJacobiOnQuadratic(t *testing.T) {
	// With gamma = 1 and a quadratic, diagonal Newton is exactly the Jacobi
	// iteration on Qx = b.
	f, _ := testQuadratic(t, 5, 2)
	op := NewDiagNewton(f, 1.0)
	jac := operators.JacobiFromSystem(f.Q, f.B)
	x := vec.NewRNG(3).NormalVector(5)
	for i := 0; i < 5; i++ {
		if math.Abs(op.Component(i, x)-jac.Component(i, x)) > 1e-12 {
			t.Errorf("component %d: diagNewton %v != jacobi %v",
				i, op.Component(i, x), jac.Component(i, x))
		}
	}
}

func TestBlockNewtonFixedPointIsMinimizer(t *testing.T) {
	f, xstar := testQuadratic(t, 12, 4)
	for _, nb := range []int{1, 2, 3, 4} {
		op := NewBlockNewton(f, 1.0, nb)
		x, ok := operators.FixedPoint(op, make([]float64, 12), 1e-12, 100000)
		if !ok {
			t.Fatalf("blocks=%d did not converge", nb)
		}
		if !vec.Equal(x, xstar, 1e-8) {
			t.Errorf("blocks=%d: fixed point deviates", nb)
		}
	}
}

func TestBlockNewtonSingleBlockIsExactNewton(t *testing.T) {
	// One block = full Newton = exact minimizer in a single application
	// (quadratic case, gamma = 1).
	f, xstar := testQuadratic(t, 6, 5)
	op := NewBlockNewton(f, 1.0, 1)
	x0 := vec.NewRNG(6).NormalVector(6)
	got := make([]float64, 6)
	for i := range got {
		got[i] = op.Component(i, x0)
	}
	if !vec.Equal(got, xstar, 1e-9) {
		t.Errorf("one Newton step %v, want %v", got, xstar)
	}
}

func TestBlockNewtonFasterThanDiagonal(t *testing.T) {
	// Bigger blocks use more curvature and need fewer synchronous sweeps.
	f, xstar := testQuadratic(t, 16, 7)
	iters := func(op operators.Operator) int {
		x := make([]float64, 16)
		y := make([]float64, 16)
		for it := 1; it <= 100000; it++ {
			operators.Apply(op, y, x)
			copy(x, y)
			if vec.DistInf(x, xstar) <= 1e-10 {
				return it
			}
		}
		return math.MaxInt32
	}
	diag := iters(NewDiagNewton(f, 1.0))
	blk4 := iters(NewBlockNewton(f, 1.0, 4))
	if blk4 > diag {
		t.Errorf("block Newton (%d sweeps) slower than diagonal (%d)", blk4, diag)
	}
}

func TestMultisplittingConverges(t *testing.T) {
	f, xstar := testQuadratic(t, 16, 8)
	op := NewMultisplitting(f, 1.0, 4)
	x, ok := operators.FixedPoint(op, make([]float64, 16), 1e-11, 100000)
	if !ok {
		t.Fatal("multisplitting did not converge")
	}
	if !vec.Equal(x, xstar, 1e-8) {
		t.Error("multisplitting fixed point deviates from minimizer")
	}
}

func TestAsyncNewtonUnderDelays(t *testing.T) {
	// The [25] setting: asynchronous iteration of the Newton operators with
	// delays; all variants must converge.
	f, xstar := testQuadratic(t, 12, 9)
	ops := []operators.Operator{
		NewDiagNewton(f, 1.0),
		NewBlockNewton(f, 1.0, 3),
		NewMultisplitting(f, 1.0, 3),
	}
	for _, op := range ops {
		res, err := core.Run(core.Config{
			Op:       op,
			Steering: steering.NewCyclic(12),
			Delay:    delay.BoundedRandom{B: 8, Seed: 10},
			XStar:    xstar,
			Tol:      1e-9,
			MaxIter:  2000000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s did not converge asynchronously", op.Name())
		}
	}
}

func TestLeastSquaresHessianAdapter(t *testing.T) {
	a := vec.DenseFromRows([][]float64{
		{2, 0},
		{0, 3},
		{1, 1},
	})
	f := operators.NewLeastSquares(a, []float64{1, 2, 3}, 0.5)
	h := NewLeastSquaresHessian(f)
	full := f.Hessian()
	for i := 0; i < 2; i++ {
		if math.Abs(h.HessDiag(i, nil)-full.At(i, i)) > 1e-12 {
			t.Errorf("HessDiag(%d) mismatch", i)
		}
	}
	blk := h.HessBlock([]int{0, 1}, nil)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(blk.At(i, j)-full.At(i, j)) > 1e-12 {
				t.Errorf("HessBlock[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestUnderRelaxedNewton(t *testing.T) {
	f, xstar := testQuadratic(t, 6, 11)
	op := NewDiagNewton(f, 0.5) // damped
	x, ok := operators.FixedPoint(op, make([]float64, 6), 1e-11, 200000)
	if !ok {
		t.Fatal("damped Newton did not converge")
	}
	if !vec.Equal(x, xstar, 1e-8) {
		t.Error("damped Newton fixed point deviates")
	}
}

func TestGammaValidation(t *testing.T) {
	f, _ := testQuadratic(t, 2, 12)
	for _, fn := range []func(){
		func() { NewDiagNewton(f, 0) },
		func() { NewBlockNewton(f, -1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad gamma")
				}
			}()
			fn()
		}()
	}
}

func TestNamesNonEmpty(t *testing.T) {
	f, _ := testQuadratic(t, 4, 13)
	for _, op := range []operators.Operator{
		NewDiagNewton(f, 1), NewBlockNewton(f, 1, 2), NewMultisplitting(f, 1, 2),
	} {
		if op.Name() == "" {
			t.Error("empty name")
		}
	}
}
