// Package newton implements the asynchronous modified Newton and Newton
// multisplitting operators of El Baz and Elkihel [25] ("Parallel
// asynchronous modified Newton methods for network flows", IPDPSW 2015),
// which the paper cites as flexible-communication methods with proven
// convergence on convex network flow problems.
//
// Three operators are provided, in increasing curvature use:
//
//   - DiagNewton: x_i <- x_i - gamma * (grad f(x))_i / H_ii(x), the modified
//     Newton method with diagonal Hessian approximation (Jacobi–Newton);
//   - BlockNewton: each component's block performs an exact Newton step on
//     its block subsystem, x_B <- x_B - gamma * (H_BB)^{-1} grad_B f(x);
//   - Multisplitting: a weighted combination of overlapping block-Newton
//     solves (O'Leary–White multisplitting), the structure used by [25].
//
// For diagonally dominant Hessians all three contract in the max norm and
// converge under totally asynchronous iteration; the block variants trade
// more local work per update for fewer updates — exactly the knob flexible
// communication exploits (partial results of the inner solve can be
// published early).
package newton

import (
	"fmt"

	"repro/internal/operators"
	"repro/internal/vec"
)

// HessianProvider exposes second-order information. The Quadratic and
// LeastSquares functions have constant Hessians; implementations may depend
// on x (the operators re-query per evaluation).
type HessianProvider interface {
	operators.Smooth
	// HessDiag returns H_ii(x).
	HessDiag(i int, x []float64) float64
	// HessBlock materializes the principal submatrix H_BB(x) for the given
	// (sorted) row/column index set.
	HessBlock(rows []int, x []float64) *vec.Dense
}

// QuadraticHessian adapts operators.Quadratic to HessianProvider.
type QuadraticHessian struct {
	*operators.Quadratic
}

// HessDiag implements HessianProvider.
func (q QuadraticHessian) HessDiag(i int, x []float64) float64 { return q.Q.At(i, i) }

// HessBlock implements HessianProvider.
func (q QuadraticHessian) HessBlock(rows []int, x []float64) *vec.Dense {
	b := vec.NewDense(len(rows), len(rows))
	for a, i := range rows {
		for c, j := range rows {
			b.Set(a, c, q.Q.At(i, j))
		}
	}
	return b
}

// LeastSquaresHessian adapts operators.LeastSquares to HessianProvider.
type LeastSquaresHessian struct {
	*operators.LeastSquares
	h *vec.Dense
}

// NewLeastSquaresHessian precomputes the (constant) Hessian.
func NewLeastSquaresHessian(f *operators.LeastSquares) LeastSquaresHessian {
	return LeastSquaresHessian{LeastSquares: f, h: f.Hessian()}
}

// HessDiag implements HessianProvider.
func (q LeastSquaresHessian) HessDiag(i int, x []float64) float64 { return q.h.At(i, i) }

// HessBlock implements HessianProvider.
func (q LeastSquaresHessian) HessBlock(rows []int, x []float64) *vec.Dense {
	b := vec.NewDense(len(rows), len(rows))
	for a, i := range rows {
		for c, j := range rows {
			b.Set(a, c, q.h.At(i, j))
		}
	}
	return b
}

// DiagNewton is the modified Newton operator with diagonal curvature:
// F_i(x) = x_i - Gamma * grad_i f(x) / H_ii(x).
type DiagNewton struct {
	F     HessianProvider
	Gamma float64
}

// NewDiagNewton builds the operator; gamma in (0, 1] (1 = full step).
func NewDiagNewton(f HessianProvider, gamma float64) *DiagNewton {
	if gamma <= 0 {
		panic("newton: NewDiagNewton gamma must be positive")
	}
	return &DiagNewton{F: f, Gamma: gamma}
}

// Dim implements operators.Operator.
func (o *DiagNewton) Dim() int { return o.F.Dim() }

// Component implements operators.Operator.
func (o *DiagNewton) Component(i int, x []float64) float64 {
	h := o.F.HessDiag(i, x)
	if h <= 0 {
		// Degenerate curvature: fall back to a plain gradient step scaled
		// by the global smoothness constant.
		l, _ := o.F.LMu()
		h = l
	}
	return x[i] - o.Gamma*o.F.GradComponent(i, x)/h
}

// Name implements operators.Operator.
func (o *DiagNewton) Name() string { return fmt.Sprintf("diagNewton(gamma=%.3g)", o.Gamma) }

// BlockNewton performs, for each component, the exact Newton step of the
// block owning it: d_B = (H_BB)^{-1} grad_B f(x), F_i(x) = x_i - Gamma*d_i.
// Blocks are the contiguous partition of {0..n-1} into NumBlocks pieces.
type BlockNewton struct {
	F         HessianProvider
	Gamma     float64
	NumBlocks int
	blocks    [][2]int
}

// NewBlockNewton builds the operator with the given block count.
func NewBlockNewton(f HessianProvider, gamma float64, numBlocks int) *BlockNewton {
	if gamma <= 0 {
		panic("newton: NewBlockNewton gamma must be positive")
	}
	if numBlocks < 1 {
		numBlocks = 1
	}
	return &BlockNewton{
		F: f, Gamma: gamma, NumBlocks: numBlocks,
		blocks: vec.Blocks(f.Dim(), numBlocks),
	}
}

// Dim implements operators.Operator.
func (o *BlockNewton) Dim() int { return o.F.Dim() }

// blockSolve returns the Newton direction of the block containing i and
// the block's start offset.
func (o *BlockNewton) blockSolve(i int, x []float64) ([]float64, int) {
	b := o.blocks[vec.BlockOf(o.blocks, i)]
	rows := make([]int, b[1]-b[0])
	g := make([]float64, len(rows))
	for k := range rows {
		rows[k] = b[0] + k
		g[k] = o.F.GradComponent(rows[k], x)
	}
	h := o.F.HessBlock(rows, x)
	d, err := h.SolveGaussian(g)
	if err != nil {
		// Singular block (should not happen for SPD Hessians): fall back
		// to diagonal scaling.
		d = make([]float64, len(g))
		for k := range g {
			hd := o.F.HessDiag(rows[k], x)
			if hd <= 0 {
				hd = 1
			}
			d[k] = g[k] / hd
		}
	}
	return d, b[0]
}

// Component implements operators.Operator.
func (o *BlockNewton) Component(i int, x []float64) float64 {
	d, lo := o.blockSolve(i, x)
	return x[i] - o.Gamma*d[i-lo]
}

// Name implements operators.Operator.
func (o *BlockNewton) Name() string {
	return fmt.Sprintf("blockNewton(blocks=%d,gamma=%.3g)", o.NumBlocks, o.Gamma)
}

// Multisplitting combines two staggered overlapping block partitions with
// equal weights (the simplest O'Leary–White multisplitting): component i's
// update is the average of the block-Newton steps of the two blocks
// containing it. Overlap smooths the block boundaries, which is what [25]
// exploits on network flow duals.
type Multisplitting struct {
	F      HessianProvider
	Gamma  float64
	a, b   *BlockNewton
	offset int
}

// NewMultisplitting builds the operator: partition A has numBlocks
// contiguous blocks; partition B is A shifted by half a block.
func NewMultisplitting(f HessianProvider, gamma float64, numBlocks int) *Multisplitting {
	m := &Multisplitting{F: f, Gamma: gamma}
	m.a = NewBlockNewton(f, gamma, numBlocks)
	m.b = NewBlockNewton(f, gamma, numBlocks)
	// Stagger partition B by rotating the block boundaries half a block.
	n := f.Dim()
	if numBlocks > 1 {
		half := (n / numBlocks) / 2
		if half > 0 {
			shifted := make([][2]int, 0, numBlocks+1)
			shifted = append(shifted, [2]int{0, half})
			lo := half
			for _, blk := range vec.Blocks(n-half, numBlocks) {
				shifted = append(shifted, [2]int{lo + blk[0], lo + blk[1]})
			}
			m.b.blocks = shifted
		}
	}
	return m
}

// Dim implements operators.Operator.
func (m *Multisplitting) Dim() int { return m.F.Dim() }

// Component implements operators.Operator.
func (m *Multisplitting) Component(i int, x []float64) float64 {
	return 0.5*m.a.Component(i, x) + 0.5*m.b.Component(i, x)
}

// Name implements operators.Operator.
func (m *Multisplitting) Name() string {
	return fmt.Sprintf("multisplitting(blocks=%d,gamma=%.3g)", m.a.NumBlocks, m.Gamma)
}
