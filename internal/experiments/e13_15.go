package experiments

import (
	"repro"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/macroiter"
	"repro/internal/metrics"
	"repro/internal/multigrid"
	"repro/internal/newton"
	"repro/internal/operators"
	"repro/internal/steering"
	"repro/internal/vec"
)

// E13 compares the asynchronous second-order operators of [25] (modified
// Newton with diagonal curvature, block Newton, and Newton multisplitting)
// against the first-order gradient operator on the same strongly convex
// quadratic: more curvature per update means fewer updates to converge,
// and all variants converge totally asynchronously.
func E13() *Report {
	rep := &Report{ID: "E13", Title: "Asynchronous modified Newton and multisplitting ([25]) vs gradient"}
	n := 24
	rng := newRNG(131)
	q := newDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := 0.3 * rng.Normal()
			q.Set(i, j, v)
			q.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				v := q.At(i, j)
				if v < 0 {
					v = -v
				}
				off += v
			}
		}
		q.Set(i, i, 1.5*off+1)
	}
	b := rng.NormalVector(n)
	f := operators.NewQuadratic(q, b, 0)
	hp := newton.QuadraticHessian{Quadratic: f}
	xstar, err := f.Minimizer()
	if err != nil {
		rep.Note("minimizer failed: %v", err)
		return rep
	}

	ops := []operators.Operator{
		operators.NewGradOp(f, operators.MaxStep(f)),
		newton.NewDiagNewton(hp, 1.0),
		newton.NewBlockNewton(hp, 1.0, 6),
		newton.NewBlockNewton(hp, 1.0, 3),
		newton.NewMultisplitting(hp, 1.0, 6),
	}
	tb := metrics.NewTable("24-dim diagonally dominant quadratic, bounded random delays B=8, iterations to 1e-10",
		"operator", "iterations", "macro-iterations", "converged")
	pass := true
	iters := map[string]int{}
	for _, op := range ops {
		res, err := repro.Solve(repro.Spec{
			Problem: repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
			Dynamics: repro.Dynamics{
				Steering: steering.NewCyclic(n),
				Delay:    delay.BoundedRandom{B: 8, Seed: 132},
			},
			Stopping: repro.Stopping{Tol: 1e-10, MaxIter: 4000000},
		})
		if err != nil || !res.Converged {
			rep.Note("%s failed", op.Name())
			pass = false
			continue
		}
		tb.AddRow(op.Name(), res.Iterations, len(res.Boundaries), res.Converged)
		iters[op.Name()] = res.Iterations
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: block Newton needs fewer iterations than diagonal Newton,")
	rep.Note("which needs no more than the gradient operator; multisplitting sits between")
	grad := iters[ops[0].Name()]
	diag := iters[ops[1].Name()]
	blk3 := iters[ops[3].Name()]
	rep.Pass = pass && blk3 <= diag && diag <= grad
	return rep
}

// E14 reproduces the paper's introduction claim (via [5]) that asynchronous
// block relaxation makes an effective multigrid smoother: chaotic
// (free-steering, stale-mixing) smoothing achieves V-cycle convergence
// factors comparable to synchronous damped Jacobi, independent of grid
// size.
func E14() *Report {
	rep := &Report{ID: "E14", Title: "Asynchronous (chaotic) relaxation as a multigrid smoother ([5])"}
	tb := metrics.NewTable("2-D Poisson V(nu,nu)-cycles, convergence factor per cycle (geometric mean)",
		"grid", "smoother", "nu", "factor", "cycles to 1e-10")
	pass := true
	for _, n := range []int{15, 31, 63} {
		f := multigrid.PoissonRHS(n, func(x, y float64) float64 { return 1 + x*y })
		for _, sm := range []multigrid.Smoother{multigrid.SmootherJacobi, multigrid.SmootherChaotic} {
			for _, nu := range []int{1, 2} {
				s, err := multigrid.NewSolver(n)
				if err != nil {
					rep.Note("solver: %v", err)
					pass = false
					continue
				}
				s.Smoother = sm
				s.Seed = uint64(140 + n)
				s.PreSmooth, s.PostSmooth = nu, nu
				_, cycles, factors, ok := s.Solve(f, 1e-10, 100)
				if !ok {
					rep.Note("n=%d %v nu=%d did not converge", n, sm, nu)
					pass = false
					continue
				}
				mf := multigrid.MeanConvergenceFactor(factors)
				tb.AddRow(n, sm.String(), nu, mf, cycles)
				if mf > 0.6 {
					pass = false
				}
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: factors bounded away from 1 independent of grid size;")
	rep.Note("chaotic smoothing competitive with (often better than) damped Jacobi")
	rep.Pass = pass
	return rep
}

// E15 demonstrates the macro-iteration stopping criterion of Miellou,
// Spiteri and El Baz [15]: under heavy delays, the naive rule "stop when
// the last W updates all moved less than tol" fires while the true error is
// still large (stale re-reads make updates look converged), whereas
// requiring small displacements over consecutive *macro-iteration* windows
// is reliable.
func E15() *Report {
	rep := &Report{ID: "E15", Title: "Stopping criteria: naive displacement window vs macro-iteration rule ([15])"}
	n := 8
	sys, rhs := diagDominantSystem(n, 151)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	x0 := offsetStart(xstar)

	// Heavy constant delay: for a long prefix every read is the initial
	// vector, so re-updates move by exactly zero while the error is huge.
	dm := delay.Constant{D: 64}
	pol := steering.NewCyclic(n)
	tol := 1e-6

	hist := core.NewHistory(x0)
	tracker := macroiter.NewTracker(n)
	type stopEvent struct {
		iter int
		err  float64
	}
	var naive, macroRule *stopEvent

	// Naive rule state: sliding count of consecutive small displacements.
	smallStreak := 0
	// Macro rule state ([15]): displacement maximum within the current
	// macro window; require 2 consecutive windows below tol.
	windowMax := 0.0
	windowStreak := 0
	prevK := 0

	xread := make([]float64, n)
	maxIter := 20000
	for j := 1; j <= maxIter; j++ {
		S := pol.Select(j)
		minLabel := j - 1
		for h := 0; h < n; h++ {
			l := dm.Label(h, j)
			if l < minLabel {
				minLabel = l
			}
			xread[h] = hist.At(h, l)
		}
		disp := 0.0
		for _, i := range S {
			v := op.Component(i, xread)
			if d := v - hist.Latest(i); d > disp {
				disp = d
			} else if -d > disp {
				disp = -d
			}
			hist.Set(i, j, v)
		}
		tracker.Observe(j, S, minLabel)

		errNow := vec.DistInf(hist.LatestSnapshot(), xstar)
		// Naive: W = n consecutive updates below tol.
		if disp <= tol {
			smallStreak++
		} else {
			smallStreak = 0
		}
		if naive == nil && smallStreak >= n {
			naive = &stopEvent{iter: j, err: errNow}
		}
		// Macro rule: track window displacement maxima.
		if disp > windowMax {
			windowMax = disp
		}
		if k := tracker.K(); k > prevK {
			if windowMax <= tol {
				windowStreak++
			} else {
				windowStreak = 0
			}
			windowMax = 0
			prevK = k
			if macroRule == nil && windowStreak >= 2 {
				macroRule = &stopEvent{iter: j, err: errNow}
			}
		}
		if naive != nil && macroRule != nil {
			break
		}
	}

	tb := metrics.NewTable("constant delay D=64, tol=1e-6, true error at the moment each rule fires",
		"rule", "fires at iteration", "true error then", "reliable (err <= 10*tol)")
	pass := true
	if naive == nil {
		rep.Note("naive rule never fired")
		pass = false
	} else {
		tb.AddRow("naive: n consecutive small updates", naive.iter, naive.err, naive.err <= 10*tol)
	}
	if macroRule == nil {
		rep.Note("macro rule never fired")
		pass = false
	} else {
		tb.AddRow("[15]: 2 consecutive macro windows small", macroRule.iter, macroRule.err, macroRule.err <= 10*tol)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: the naive rule fires early at a large true error (stale re-reads")
	rep.Note("masquerade as convergence); the macro-iteration rule fires only when genuinely converged")
	if naive != nil && macroRule != nil {
		rep.Pass = pass && naive.err > 10*tol && macroRule.err <= 10*tol &&
			naive.iter < macroRule.iter
	}
	return rep
}
