package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E5", "E6",
		"E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLookup(t *testing.T) {
	if Lookup("E2") == nil {
		t.Error("E2 not found")
	}
	if Lookup("e2") != nil {
		t.Error("lookup should be case-sensitive")
	}
	if Lookup("E99") != nil {
		t.Error("unknown id should return nil")
	}
}

func TestSampledIndices(t *testing.T) {
	idx := sampledIndices(100, 5)
	if len(idx) > 5 || len(idx) < 2 {
		t.Fatalf("sampled %v", idx)
	}
	if idx[0] != 0 || idx[len(idx)-1] != 99 {
		t.Errorf("endpoints missing: %v", idx)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Errorf("not increasing: %v", idx)
		}
	}
	small := sampledIndices(3, 10)
	if len(small) != 3 {
		t.Errorf("small case: %v", small)
	}
}

// TestAllExperimentsPass executes the full reproduction suite; every
// experiment must meet its acceptance criterion. This is the integration
// test of the whole library (engines x workloads x analyses).
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run()
			if rep.ID != e.ID {
				t.Errorf("report id %q, want %q", rep.ID, e.ID)
			}
			if rep.Title == "" {
				t.Error("empty title")
			}
			if !rep.Pass {
				t.Errorf("%s failed acceptance: %s", e.ID, strings.Join(rep.Notes, " | "))
			}
			if len(rep.Tables) == 0 && len(rep.Notes) == 0 {
				t.Error("experiment produced no output")
			}
			for _, tb := range rep.Tables {
				if tb.NumRows() == 0 {
					t.Error("empty table")
				}
			}
		})
	}
}

func TestReportNote(t *testing.T) {
	rep := &Report{ID: "X"}
	rep.Note("a=%d", 5)
	if len(rep.Notes) != 1 || rep.Notes[0] != "a=5" {
		t.Errorf("Notes = %v", rep.Notes)
	}
}

func TestDiagDominantSystemIsDominant(t *testing.T) {
	m, rhs := diagDominantSystem(12, 5)
	if dd, _ := m.IsDiagonallyDominant(); !dd {
		t.Error("system not diagonally dominant")
	}
	if len(rhs) != 12 {
		t.Errorf("rhs length %d", len(rhs))
	}
}

func TestOffsetStart(t *testing.T) {
	x := offsetStart([]float64{1, -2})
	if x[0] != 11 || x[1] != 8 {
		t.Errorf("offsetStart = %v", x)
	}
}
