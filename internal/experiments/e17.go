package experiments

import (
	"math"

	"repro"
	"repro/internal/delay"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/vec"
)

// E17 demonstrates that the max-norm contraction hypothesis of the paper's
// Theorem 1 (Remark 1) is not a technicality but *necessary* for totally
// asynchronous convergence — the classical Chazan–Miranker boundary. The
// affine operator built from a scaled rotation,
//
//	A = r * [[cos t, -sin t], [sin t, cos t]],  t = 45 degrees,
//
// has spectral radius rho(A) = r < 1, so the synchronous iteration always
// converges; but rho(|A|) = r*sqrt(2) exceeds 1 for r > 0.71, and
// Chazan–Miranker proved chaotic relaxation can then diverge. We exhibit
// the divergence with a perfectly admissible asynchronous schedule
// (conditions a–c hold: fresh reads, both components relaxed infinitely
// often): exhaustively relax one component, then the other. Each
// half-phase transfers the frozen component's value with gain
// g = r sin t / (1 - r cos t), so the alternation amplifies by g^2 > 1.
//
// Random bounded delays, by contrast, leave every r < 1 convergent in
// practice — asynchronous divergence is an adversarial-schedule phenomenon,
// which is why the literature states convergence for *all* admissible
// schedules only under rho(|A|) < 1.
func E17() *Report {
	rep := &Report{ID: "E17", Title: "Necessity of the max-norm contraction (Chazan–Miranker boundary)"}
	theta := math.Pi / 4
	tb := metrics.NewTable("scaled rotation, sync Jacobi vs adversarial and random asynchronous schedules",
		"r", "rho(A)", "rho(|A|)", "phase gain g^2", "sync", "async random B=16", "async adversarial")
	pass := true
	for _, r := range []float64{0.5, 0.65, 0.8, 0.95} {
		a := vec.DenseFromRows([][]float64{
			{r * math.Cos(theta), -r * math.Sin(theta)},
			{r * math.Sin(theta), r * math.Cos(theta)},
		})
		op := operators.NewLinear(a, []float64{1, 1})
		m := vec.Identity(2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m.Set(i, j, m.At(i, j)-a.At(i, j))
			}
		}
		xstar, err := m.SolveGaussian([]float64{1, 1})
		if err != nil {
			rep.Note("r=%v: %v", r, err)
			pass = false
			continue
		}
		g := r * math.Sin(theta) / (1 - r*math.Cos(theta))
		gain := g * g

		outcome := func(res *repro.Report, err error) string {
			if err != nil {
				return "error"
			}
			final := res.Errors[len(res.Errors)-1]
			switch {
			case res.Converged && vec.AllFinite(res.X):
				return "conv"
			case vec.AllFinite(res.X) && final <= res.Errors[0]:
				return "stable"
			default:
				return "DIV"
			}
		}

		base := repro.Spec{
			Problem:  repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
			Stopping: repro.Stopping{Tol: 1e-9, MaxIter: 100000},
		}
		sync := outcome(repro.Solve(base, repro.WithDelay(delay.Fresh{})))
		random := outcome(repro.Solve(base, repro.WithDelay(delay.BoundedRandom{B: 16, Seed: 171})))
		adversarial := outcome(repro.Solve(base,
			repro.WithDelay(delay.Fresh{}),
			repro.WithSteering(newExhaustivePhases(2, 40))))
		tb.AddRow(r, r, r*math.Sqrt2, gain, sync, random, adversarial)

		if sync != "conv" || random != "conv" {
			pass = false // rho(A) < 1: these must converge
		}
		if gain > 1.05 && adversarial != "DIV" {
			pass = false // above the boundary the adversarial schedule must diverge
		}
		if gain < 0.95 && adversarial == "DIV" {
			pass = false // below the boundary even the adversary converges
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: sync and randomly-delayed async always converge (rho(A) < 1);")
	rep.Note("the adversarial exhaustive-relaxation schedule diverges exactly when the")
	rep.Note("phase gain g^2 = (r sin t / (1 - r cos t))^2 exceeds 1 — i.e. when the operator")
	rep.Note("is not a max-norm contraction, vindicating the paper's Remark 1 hypothesis")
	rep.Pass = pass
	return rep
}

// exhaustivePhases relaxes component 0 for phaseLen iterations, then
// component 1, and so on — an admissible schedule (every component occurs
// infinitely often) that exhausts each coordinate against frozen values of
// the others.
type exhaustivePhases struct {
	n, phaseLen int
	buf         [1]int
}

func newExhaustivePhases(n, phaseLen int) *exhaustivePhases {
	return &exhaustivePhases{n: n, phaseLen: phaseLen}
}

func (p *exhaustivePhases) Select(j int) []int {
	p.buf[0] = ((j - 1) / p.phaseLen) % p.n
	return p.buf[:]
}

func (p *exhaustivePhases) Name() string { return "exhaustivePhases" }
