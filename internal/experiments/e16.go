package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/steering"
)

// E16 exhibits the level-set ("box") mechanism of the General Convergence
// Theorem of Bertsekas that the paper's Section III describes: "from one
// macro-iteration to the next, the sequence of iterate vectors ... enters
// the next box that is smaller and consequently progresses towards the
// solution". We record the per-component error envelopes after each strict
// macro-iteration boundary and verify the boxes are nested and shrink
// geometrically — under plain asynchronous iteration and under flexible
// communication.
func E16() *Report {
	rep := &Report{ID: "E16", Title: "Nested boxes of the General Convergence Theorem (Section III)"}
	sys, rhs := diagDominantSystem(12, 161)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)

	pass := true
	for _, theta := range []float64{0, 0.5} {
		res, perIter, err := core.RunWithComponentErrors(core.Config{
			Op:       op,
			Steering: steering.NewCyclic(12),
			Delay:    delay.BoundedRandom{B: 6, Seed: 162},
			Theta:    theta,
			X0:       offsetStart(xstar),
			XStar:    xstar,
			Tol:      1e-10,
			MaxIter:  2000000,
		})
		if err != nil || !res.Converged {
			rep.Note("theta=%v: run failed (%v)", theta, err)
			pass = false
			continue
		}
		box, err := core.CheckBoxes(res.StrictBoundaries, perIter)
		if err != nil {
			rep.Note("theta=%v: %v", theta, err)
			pass = false
			continue
		}
		tb := metrics.NewTable(
			"box radii per strict macro-iteration window (theta = "+
				map[float64]string{0: "0, plain async", 0.5: "0.5, flexible"}[theta]+")",
			"box k", "radius", "shrink factor")
		for _, k := range sampledIndices(len(box.Radii), 10) {
			sf := ""
			if k > 0 && k-1 < len(box.ShrinkFactors) {
				sf = fmt.Sprintf("%.4f", box.ShrinkFactors[k-1])
			}
			tb.AddRow(k, box.Radii[k], sf)
		}
		rep.Tables = append(rep.Tables, tb)
		rep.Note("theta=%v: nested=%v boxes=%d worstInclusionViolation=%.3g",
			theta, box.Nested, len(box.Radii), box.WorstInclusionViolation)
		if !box.Nested {
			pass = false
		}
		if len(box.Radii) >= 2 &&
			box.Radii[len(box.Radii)-1] >= box.Radii[0]*1e-3 {
			pass = false
		}
	}
	rep.Note("expected shape: boxes nested (violation 0) and radii shrinking geometrically,")
	rep.Note("with and without flexible communication")
	rep.Pass = pass
	return rep
}
