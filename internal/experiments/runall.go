package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Outcome is the result of one experiment executed by RunAll: the report,
// how long the run took, and any failure to launch (context cancellation).
type Outcome struct {
	ID      string
	Report  *Report // nil when Err is non-nil
	Elapsed time.Duration
	Err     error
}

// RunAll executes the whole registry on a worker pool of the given
// parallelism and returns outcomes in registry order. Experiments are
// independent (each builds its own workloads and seeds), so they
// parallelize perfectly; parallelism <= 0 defaults to GOMAXPROCS.
//
// Cancelling ctx stops launching new experiments; in-flight ones complete.
// Outcomes for experiments never launched carry ctx's error. RunAll itself
// returns ctx's error if any experiment was skipped, nil otherwise.
func RunAll(ctx context.Context, parallelism int) ([]Outcome, error) {
	return RunSelected(ctx, parallelism, IDs())
}

// RunSelected is RunAll restricted to the given experiment ids (unknown ids
// yield an error Outcome, not a panic).
func RunSelected(ctx context.Context, parallelism int, ids []string) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(ids) {
		parallelism = len(ids)
	}
	outcomes := make([]Outcome, len(ids))
	next := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				id := ids[idx]
				run := Lookup(id)
				if run == nil {
					outcomes[idx] = Outcome{ID: id, Err: fmt.Errorf("experiments: unknown id %q", id)}
					continue
				}
				start := time.Now()
				rep := run()
				outcomes[idx] = Outcome{ID: id, Report: rep, Elapsed: time.Since(start)}
			}
		}()
	}

	var ctxErr error
feed:
	for i := range ids {
		select {
		case next <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			// Indices >= i were never dispatched, so no worker touches them.
			for j := i; j < len(ids); j++ {
				outcomes[j] = Outcome{ID: ids[j], Err: ctxErr}
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	return outcomes, ctxErr
}
