package experiments

import (
	"math"

	"repro"
	"repro/internal/delay"
	"repro/internal/des"
	"repro/internal/flexible"
	"repro/internal/metrics"
	"repro/internal/netflow"
	"repro/internal/obstacle"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/sssp"
	"repro/internal/steering"
)

// buildFlowGrid and helpers shared with e01_05.go.
func buildFlowGrid() (*netflow.Network, error) {
	return netflow.Grid(6, 6, 4.0, 2.5, 0.2, 40)
}

func newFlowOp(net *netflow.Network) *netflow.RelaxOp { return netflow.NewRelaxOp(net) }

func flexSchedule4() flexible.Schedule { return flexible.Uniform(4) }

// E6 reproduces the data-exchange frequency study of [26] on the obstacle
// problem: rarer exchanges (modelled as proportionally larger latency per
// exchange) slow convergence; flexible communication recovers part of the
// loss by publishing partial values.
func E6() *Report {
	rep := &Report{ID: "E6", Title: "Obstacle problem: data-exchange frequency study ([26])"}
	p := obstacle.Membrane(16)
	ustar, ok := operators.FixedPoint(p, p.Supersolution(), 1e-11, 2000000)
	if !ok {
		rep.Note("reference solve failed")
		return rep
	}
	tb := metrics.NewTable("16x16 obstacle problem, 4 workers, virtual time to 1e-6",
		"exchange period q", "plain async", "flexible async")
	pass := true
	var first, last float64
	for _, q := range []int{1, 2, 4, 8, 16} {
		base := repro.Spec{
			Problem: repro.Problem{Op: p, X0: p.Supersolution(), XStar: ustar},
			Execution: repro.Execution{
				Workers: 4,
				Cost:    des.UniformCost(1),
				Latency: des.FixedLatency(0.4 * float64(q)),
				Seed:    uint64(60 + q),
			},
			Stopping: repro.Stopping{Tol: 1e-6, MaxUpdates: 10000000},
			Engine:   repro.EngineSim,
		}
		plain, err1 := repro.Solve(base)
		flex, err2 := repro.Solve(base, repro.WithFlexible(flexible.Uniform(2)))
		if err1 != nil || err2 != nil || !plain.Converged || !flex.Converged {
			rep.Note("q=%d: run failed", q)
			pass = false
			continue
		}
		tb.AddRow(q, plain.Time, flex.Time)
		if q == 1 {
			first = plain.Time
		}
		last = plain.Time
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: time grows with q (staler data); flexible communication softens the penalty")
	rep.Pass = pass && last > first
	return rep
}

// E7 validates the Arpanet workload of Section II: asynchronous
// Bellman-Ford converges to Dijkstra's distances under bounded, unbounded
// (sqrt) and out-of-order delays, including after a link improvement.
func E7() *Report {
	rep := &Report{ID: "E7", Title: "Asynchronous Bellman-Ford routing under delay pathologies"}
	tb := metrics.NewTable("distance-vector iterations to exact Dijkstra distances",
		"graph", "delay model", "iterations", "max deviation", "converged")
	pass := true
	cases := []struct {
		name string
		n, m int
		seed uint64
	}{
		{"random(64,192)", 64, 192, 71},
		{"random(256,768)", 256, 768, 72},
		{"grid(16x16)", 0, 0, 73},
	}
	for _, c := range cases {
		var g *sssp.Graph
		var err error
		if c.n > 0 {
			g, err = sssp.RandomGraph(c.n, c.m, c.seed)
		} else {
			g, err = sssp.GridGraph(16, 16, c.seed)
		}
		if err != nil {
			rep.Note("%s: %v", c.name, err)
			pass = false
			continue
		}
		op, _ := sssp.NewBellmanFordOp(g, 0)
		want := g.Dijkstra(0)
		for _, dm := range []delay.Model{
			delay.BoundedRandom{B: 8, Seed: c.seed + 1},
			delay.SqrtGrowth{},
			delay.OutOfOrder{W: 16, Seed: c.seed + 2},
		} {
			res, err := repro.Solve(repro.Spec{
				Problem:  repro.Problem{Op: op, X0: op.InitialDistances(), XStar: want},
				Dynamics: repro.Dynamics{Steering: steering.NewCyclic(g.N), Delay: dm},
				Stopping: repro.Stopping{Tol: 1e-12, MaxIter: 8000000},
			})
			if err != nil || !res.Converged {
				rep.Note("%s/%s failed", c.name, dm.Name())
				pass = false
				continue
			}
			dev := 0.0
			for i := range want {
				if d := math.Abs(res.X[i] - want[i]); d > dev {
					dev = d
				}
			}
			tb.AddRow(c.name, dm.Name(), res.Iterations, dev, res.Converged)
			if dev > 1e-9 {
				pass = false
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: exact convergence in every regime; iterations grow with delay severity")
	rep.Pass = pass
	return rep
}

// E8 injects transient message loss: Section II argues faults are covered
// by the arrival of later messages, so convergence survives any drop rate
// below 1 with graceful degradation of virtual time.
func E8() *Report {
	rep := &Report{ID: "E8", Title: "Fault tolerance: convergence under message loss"}
	sys, rhs := diagDominantSystem(32, 81)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	tb := metrics.NewTable("32 components, 4 workers, virtual time to 1e-8",
		"drop probability", "virtual time", "updates", "dropped/sent", "converged")
	pass := true
	var t0 float64
	for _, dp := range []float64{0, 0.1, 0.3, 0.5} {
		res, err := repro.Solve(repro.Spec{
			Problem:   repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
			Execution: repro.Execution{Workers: 4, DropProb: dp, Seed: 82},
			Stopping:  repro.Stopping{Tol: 1e-8, MaxUpdates: 4000000},
			Engine:    repro.EngineSim,
		})
		if err != nil || !res.Converged {
			rep.Note("drop %v: failed", dp)
			pass = false
			continue
		}
		frac := 0.0
		if res.MessagesSent > 0 {
			frac = float64(res.MessagesDropped) / float64(res.MessagesSent)
		}
		tb.AddRow(dp, res.Time, res.Updates, frac, res.Converged)
		if dp == 0 {
			t0 = res.Time
		} else if res.Time < t0*0.5 {
			pass = false // losing messages should not make things faster by 2x
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: convergence at every loss rate; time inflates gracefully with loss")
	rep.Pass = pass
	return rep
}

// E9 sweeps the fixed step gamma over (0, 2/(mu+L)]: the measured
// per-macro-iteration contraction of the squared error must stay at or
// below the theoretical 1 - gamma*mu of inequality (5).
func E9() *Report {
	rep := &Report{ID: "E9", Title: "Step-size sweep: measured contraction vs 1 - gamma*mu"}
	a := make([]float64, 32)
	tt := make([]float64, 32)
	rng := newRNG(91)
	for i := range a {
		a[i] = 1 + 3*rng.Float64()
		tt[i] = 2*rng.Float64() - 1
	}
	f := operators.NewSeparable(a, tt)
	gammaMax := operators.MaxStep(f)
	tb := metrics.NewTable("separable f + L1, bounded random delays, flexible theta 0.5",
		"gamma/gammaMax", "rho", "measured rate/k", "bound 1-rho", "bound holds")
	pass := true
	for _, fr := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		gamma := fr * gammaMax
		op := operators.NewProxGradBF(f, prox.L1{Lambda: 0.1}, gamma)
		ystar, ok := operators.FixedPoint(op, make([]float64, 32), 1e-14, 2000000)
		if !ok {
			rep.Note("gamma frac %v: reference failed", fr)
			pass = false
			continue
		}
		res, err := repro.Solve(repro.Spec{
			Problem:  repro.Problem{Op: op, X0: offsetStart(ystar), XStar: ystar},
			Dynamics: repro.Dynamics{Delay: delay.BoundedRandom{B: 6, Seed: 92}, Theta: 0.5},
			Stopping: repro.Stopping{Tol: 1e-11, MaxIter: 4000000},
		})
		if err != nil || !res.Converged {
			rep.Note("gamma frac %v: run failed", fr)
			pass = false
			continue
		}
		mres, _ := res.ModelDetail()
		rho := operators.TheoreticalRho(f, gamma)
		t1, err := repro.CheckTheorem1(mres, rho)
		if err != nil {
			rep.Note("gamma frac %v: %v", fr, err)
			pass = false
			continue
		}
		tb.AddRow(fr, rho, t1.MeasuredRatePerK, t1.BoundRatePerK, t1.Holds)
		if !t1.Holds || t1.MeasuredRatePerK > t1.BoundRatePerK+1e-9 {
			pass = false
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: measured rate always at or below the bound; both shrink as gamma grows")
	rep.Pass = pass
	return rep
}

// E10 measures scalability: with heterogeneous workers, asynchronous
// efficiency stays high as workers are added while barrier-synchronous
// efficiency degrades (Section II/IV claims on efficiency and scalability).
func E10() *Report {
	rep := &Report{ID: "E10", Title: "Scalability: speedup and efficiency, async vs sync"}
	sys, rhs := diagDominantSystem(64, 101)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	x0 := offsetStart(xstar)

	// The paper's target regime (GRID5000/Planetlab-like): communication
	// latency comparable to compute, heterogeneous workers (+-50% speed
	// spread); per-phase cost scales with block size (n/p components).
	costFor := func(p int) des.CostFunc {
		rng := newRNG(uint64(1000 + p))
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = 0.5 + rng.Float64()
		}
		blockFrac := 64.0 / float64(p)
		return func(w, k int) float64 { return blockFrac * speeds[w] / 64.0 * 8 }
	}

	// Latency is jittered with a heavy spread: a barrier waits for the
	// slowest of p*(p-1) messages every round (tail latency), while
	// asynchronous workers only ever feel the typical latency.
	tb := metrics.NewTable("64 components, heterogeneous workers (+-50%), jittered links (0.2 + U[0,3)), virtual time to 1e-8",
		"workers", "sync time", "async time", "sync speedup", "async speedup", "async efficiency")
	var syncBase, asyncBase float64
	pass := true
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := repro.Spec{
			Problem: repro.Problem{Op: op, X0: x0, XStar: xstar},
			Execution: repro.Execution{
				Workers: p,
				Cost:    costFor(p),
				Latency: des.JitterLatency(0.2, 3.0),
				Seed:    uint64(102 + p),
			},
			Stopping: repro.Stopping{Tol: 1e-8, MaxUpdates: 8000000},
		}
		syncRes, err1 := repro.Solve(cfg, repro.WithEngine(repro.EngineSimSync))
		asyncRes, err2 := repro.Solve(cfg, repro.WithEngine(repro.EngineSim))
		if err1 != nil || err2 != nil || !syncRes.Converged || !asyncRes.Converged {
			rep.Note("p=%d: failed", p)
			pass = false
			continue
		}
		if p == 1 {
			syncBase, asyncBase = syncRes.Time, asyncRes.Time
		}
		ssp := metrics.Speedup(syncBase, syncRes.Time)
		asp := metrics.Speedup(asyncBase, asyncRes.Time)
		tb.AddRow(p, syncRes.Time, asyncRes.Time, ssp, asp, metrics.Efficiency(asp, p))
		if p >= 4 && asyncRes.Time >= syncRes.Time {
			pass = false
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: a crossover at small p, then async wins at every p >= 4 with a")
	rep.Note("gap that widens as barriers couple more workers to the latency tail")
	rep.Pass = pass
	return rep
}

// E11 contrasts the chaotic-relaxation regime (bounded delays, condition d)
// with unbounded-delay models: iterations to converge grow with the delay
// bound, and convergence persists when the bound is removed entirely.
func E11() *Report {
	rep := &Report{ID: "E11", Title: "Bounded (chaotic relaxation) vs unbounded delays"}
	sys, rhs := diagDominantSystem(16, 111)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	models := []delay.Model{
		delay.Fresh{},
		delay.BoundedRandom{B: 2, Seed: 112},
		delay.BoundedRandom{B: 8, Seed: 112},
		delay.BoundedRandom{B: 32, Seed: 112},
		delay.LogGrowth{},
		delay.SqrtGrowth{},
	}
	tb := metrics.NewTable("16 components, cyclic steering, iterations to 1e-9",
		"delay model", "max delay", "iterations", "macro-iterations", "converged")
	pass := true
	var freshIters, worstBoundedIters int
	for _, m := range models {
		res, err := repro.Solve(repro.Spec{
			Problem:  repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
			Dynamics: repro.Dynamics{Steering: steering.NewCyclic(16), Delay: m},
			Stopping: repro.Stopping{Tol: 1e-9, MaxIter: 8000000},
		})
		if err != nil || !res.Converged {
			rep.Note("%s: failed", m.Name())
			pass = false
			continue
		}
		cond := delay.CheckConditions(m, 16, 4000)
		tb.AddRow(m.Name(), cond.MaxDelay, res.Iterations, len(res.Boundaries), res.Converged)
		switch m.(type) {
		case delay.Fresh:
			freshIters = res.Iterations
		case delay.BoundedRandom:
			if res.Iterations > worstBoundedIters {
				worstBoundedIters = res.Iterations
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: iterations grow with the delay bound; unbounded models still converge")
	rep.Pass = pass && worstBoundedIters >= freshIters
	return rep
}

// E12 ablates the flexible-communication fraction theta: how much of the
// freshest partial state reads blend in. On a monotone instance every
// theta is admissible (constraint (3) never violated) and larger theta
// converges in fewer iterations.
func E12() *Report {
	rep := &Report{ID: "E12", Title: "Ablation: flexible-communication fraction theta"}
	// Monotone system: nonnegative Jacobi matrix, start above the fixed
	// point (the paper's monotone-convergence setting for flexible
	// communication).
	rng := newRNG(121)
	n := 24
	m := newDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, -rng.Float64()*0.4)
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 1.5*off+1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 0.5 + rng.Float64()
	}
	op := operators.JacobiFromSystem(m, rhs)
	xstar, _ := m.SolveGaussian(rhs)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = xstar[i] + 2
	}

	tb := metrics.NewTable("monotone Jacobi system, bounded random delays B=16",
		"theta", "iterations to 1e-10", "constraint-3 violations", "converged")
	pass := true
	var itersAt0, itersAt1 int
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		res, err := repro.Solve(repro.Spec{
			Problem: repro.Problem{Op: op, X0: x0, XStar: xstar},
			Dynamics: repro.Dynamics{
				Steering:            steering.NewCyclic(n),
				Delay:               delay.BoundedRandom{B: 16, Seed: 122},
				Theta:               theta,
				ValidateConstraint3: true,
			},
			Stopping: repro.Stopping{Tol: 1e-10, MaxIter: 8000000},
		})
		if err != nil || !res.Converged {
			rep.Note("theta %v: failed", theta)
			pass = false
			continue
		}
		mres, _ := res.ModelDetail()
		tb.AddRow(theta, res.Iterations, mres.Constraint3Violations, res.Converged)
		if mres.Constraint3Violations != 0 {
			pass = false
		}
		if theta == 0 {
			itersAt0 = res.Iterations
		}
		if theta == 1 {
			itersAt1 = res.Iterations
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: zero violations at every theta (monotone run); iterations shrink as theta grows")
	rep.Pass = pass && itersAt1 <= itersAt0
	return rep
}
