package experiments

import (
	"repro"
	"repro/internal/des"
	"repro/internal/flexible"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/trace"
	"repro/internal/vec"
)

// figureRun executes the schematic two-processor run of the paper's
// figures and returns its trace.
func figureRun(flex flexible.Schedule) (*trace.Log, *repro.Report, error) {
	a := vec.DenseFromRows([][]float64{
		{0, 0.5},
		{0.5, 0},
	})
	op := operators.NewLinear(a, []float64{1, 1}) // fixed point (2, 2)
	lg := &trace.Log{}
	res, err := repro.Solve(repro.Spec{
		Problem:  repro.Problem{Op: op, X0: []float64{10, 10}, XStar: []float64{2, 2}},
		Dynamics: repro.Dynamics{Flexible: flex},
		Execution: repro.Execution{
			Workers: 2,
			Cost:    des.HeterogeneousCost([]float64{1.0, 1.6}),
			Latency: des.FixedLatency(0.25),
			Seed:    1,
			Trace:   lg,
		},
		Stopping: repro.Stopping{MaxUpdates: 9},
		Engine:   repro.EngineSim,
	})
	return lg, res, err
}

// F1 regenerates Figure 1: plain asynchronous iterations between two
// processors — numbered updating phases, communications at phase ends,
// computations covered by communication (no idle time).
func F1() *Report {
	rep := &Report{ID: "F1", Title: "Figure 1: asynchronous iterative algorithm (two processors)"}
	lg, res, err := figureRun(flexible.None())
	if err != nil {
		rep.Note("error: %v", err)
		return rep
	}
	rep.Note("%s", trace.RenderGantt(lg, 76))
	sends, partials := 0, 0
	for _, e := range lg.Events {
		switch e.Kind {
		case trace.Send:
			sends++
		case trace.PartialSend:
			partials++
		}
	}
	tb := metrics.NewTable("trace summary", "updates", "complete sends", "partial sends", "virtual time")
	tb.AddRow(res.Updates, sends, partials, res.Time)
	rep.Tables = append(rep.Tables, tb)
	rep.Pass = res.Updates == 9 && sends > 0 && partials == 0
	return rep
}

// F2 regenerates Figure 2: the same run with flexible communication —
// partial updates (hatched arrows) published mid-phase.
func F2() *Report {
	rep := &Report{ID: "F2", Title: "Figure 2: asynchronous iterations with flexible communication"}
	lg, res, err := figureRun(flexible.Uniform(2))
	if err != nil {
		rep.Note("error: %v", err)
		return rep
	}
	rep.Note("%s", trace.RenderGantt(lg, 76))
	sends, partials := 0, 0
	for _, e := range lg.Events {
		switch e.Kind {
		case trace.Send:
			sends++
		case trace.PartialSend:
			partials++
		}
	}
	tb := metrics.NewTable("trace summary", "updates", "complete sends", "partial sends", "virtual time")
	tb.AddRow(res.Updates, sends, partials, res.Time)
	rep.Tables = append(rep.Tables, tb)
	rep.Pass = partials > 0
	return rep
}
