package experiments

import (
	"math"

	"repro"
	"repro/internal/delay"
	"repro/internal/des"
	"repro/internal/macroiter"
	"repro/internal/metrics"
	"repro/internal/mldata"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/steering"
)

// E1 reproduces Baudet's unbounded-delay example from Section II: processor
// P0 updates component 1 in unit time while P1's k-th updating phase takes
// k time units; the delay in the labels of component 2 grows like sqrt(j),
// so delays are unbounded yet condition b) (lim l(j) = +inf) holds.
func E1() *Report {
	rep := &Report{ID: "E1", Title: "Baudet's unbounded-delay example: d(j) ~ sqrt(j), condition b) holds"}

	// Analytic model: delay.SqrtGrowth.
	m := delay.SqrtGrowth{}
	tb := metrics.NewTable("label delays of the slow component (analytic model)",
		"j", "l(j)", "d(j)=j-l(j)", "d(j)/sqrt(j)")
	for _, j := range []int{16, 64, 256, 1024, 4096, 16384, 65536} {
		l := m.Label(1, j)
		d := j - l
		tb.AddRow(j, l, d, float64(d)/math.Sqrt(float64(j)))
	}
	rep.Tables = append(rep.Tables, tb)

	cond := delay.CheckConditions(m, 2, 20000)
	rep.Note("conditions over horizon %d: a)=%v b)=%v maxDelay=%d meanDelay=%.2f",
		cond.Horizon, cond.AOK, cond.BOK, cond.MaxDelay, cond.MeanDelay)

	// Systems model: DES with Baudet's costs; measure the delay P0 observes.
	sys, rhs := diagDominantSystem(2, 3)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	res, err := repro.Solve(repro.Spec{
		Problem: repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
		Execution: repro.Execution{
			Workers: 2,
			Cost: func(w, k int) float64 {
				if w == 0 {
					return 1
				}
				return float64(k)
			},
			Latency: des.FixedLatency(0.01),
			Seed:    4,
		},
		Stopping: repro.Stopping{MaxUpdates: 4000},
		Engine:   repro.EngineSim,
	})
	if err != nil {
		rep.Note("DES error: %v", err)
		return rep
	}
	tb2 := metrics.NewTable("delays observed in the simulated run (worker P0 reading P1)",
		"global j", "min label", "delay", "delay/sqrt(j)")
	count := 0
	for _, r := range res.Records {
		if r.Worker == 0 && r.J >= 64 && (r.J&(r.J-1)) == 0 { // powers of two
			d := r.J - r.MinLabel
			tb2.AddRow(r.J, r.MinLabel, d, float64(d)/math.Sqrt(float64(r.J)))
			count++
		}
	}
	rep.Tables = append(rep.Tables, tb2)
	rep.Pass = cond.AOK && cond.BOK && count > 0
	return rep
}

// E2 validates Theorem 1: on a lasso problem with diagonally dominant
// Hessian, the asynchronous iteration with flexible communication satisfies
// ||x(j)-x*||^2 <= (1-rho)^k max_i ||x_i(0)-x*||^2 with rho = gamma*mu.
func E2() *Report {
	rep := &Report{ID: "E2", Title: "Theorem 1: measured error vs (1-rho)^k bound across macro-iterations"}
	reg, err := mldata.NewRegression(mldata.RegressionConfig{
		N: 64, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 21,
	})
	if err != nil {
		rep.Note("generation error: %v", err)
		return rep
	}
	f := reg.Smooth()
	gamma := operators.MaxStep(f)
	op := operators.NewProxGradBF(f, prox.L1{Lambda: 0.02}, gamma)
	ystar, ok := operators.FixedPoint(op, make([]float64, f.Dim()), 1e-13, 500000)
	if !ok {
		rep.Note("reference solve failed")
		return rep
	}
	res, err := repro.Solve(repro.Spec{
		Problem:  repro.Problem{Op: op, X0: offsetStart(ystar), XStar: ystar},
		Dynamics: repro.Dynamics{Delay: delay.BoundedRandom{B: 8, Seed: 22}, Theta: 0.5},
		Stopping: repro.Stopping{Tol: 1e-11, MaxIter: 2000000},
	})
	if err != nil || !res.Converged {
		rep.Note("run failed: err=%v", err)
		return rep
	}
	mres, _ := res.ModelDetail()
	rho := operators.TheoreticalRho(f, gamma)
	t1, err := repro.CheckTheorem1(mres, rho)
	if err != nil {
		rep.Note("check error: %v", err)
		return rep
	}
	tb := metrics.NewTable("squared max-norm error at strict macro-iteration boundaries",
		"k", "measured err^2", "bound (1-rho)^k * e0^2", "ratio")
	for _, k := range sampledIndices(len(t1.ErrSqAtBoundaries), 12) {
		meas, bound := t1.ErrSqAtBoundaries[k], t1.BoundAtBoundaries[k]
		ratio := 0.0
		if bound > 0 {
			ratio = meas / bound
		}
		tb.AddRow(k+1, meas, bound, ratio)
	}
	rep.Tables = append(rep.Tables, tb)
	l, mu := f.LMu()
	rep.Note("L=%.3f mu=%.3f gamma=%.4f rho=%.4f", l, mu, gamma, rho)
	rep.Note("bound holds: %v (worst measured/bound ratio %.3g at iteration %d)",
		t1.Holds, t1.WorstRatio, t1.WorstIter)
	rep.Note("per-macro-iteration squared-error rate: measured %.4f vs bound %.4f",
		t1.MeasuredRatePerK, t1.BoundRatePerK)
	rep.Pass = t1.Holds && t1.MeasuredRatePerK <= t1.BoundRatePerK+1e-9
	return rep
}

// E3 measures the paper's Section II advantage claims: asynchronous
// iterations eliminate synchronization idle time and cope with load
// imbalance; the gap over barrier-synchronous execution widens as the
// imbalance grows.
func E3() *Report {
	rep := &Report{ID: "E3", Title: "Async vs sync under load imbalance (virtual time to 1e-8)"}
	sys, rhs := diagDominantSystem(64, 31)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)
	x0 := offsetStart(xstar)

	tb := metrics.NewTable("4 workers, worker 3 slowed by the imbalance factor",
		"imbalance", "sync time", "async time", "async speedup", "sync idle (fast worker)")
	pass := true
	var spFirst, spLast float64
	for _, imb := range []float64{1, 2, 4, 8} {
		costs := []float64{1, 1, 1, imb}
		base := repro.Spec{
			Problem: repro.Problem{Op: op, X0: x0, XStar: xstar},
			Execution: repro.Execution{
				Workers: 4,
				Cost:    des.HeterogeneousCost(costs),
				Latency: des.FixedLatency(0.2),
				Seed:    32,
			},
			Stopping: repro.Stopping{Tol: 1e-8, MaxUpdates: 4000000},
		}
		syncRes, err1 := repro.Solve(base, repro.WithEngine(repro.EngineSimSync))
		asyncRes, err2 := repro.Solve(base, repro.WithEngine(repro.EngineSim))
		if err1 != nil || err2 != nil || !syncRes.Converged || !asyncRes.Converged {
			rep.Note("imbalance %v: run failed", imb)
			pass = false
			continue
		}
		syncDetail, _ := syncRes.SimSyncDetail()
		sp := metrics.Speedup(syncRes.Time, asyncRes.Time)
		tb.AddRow(imb, syncRes.Time, asyncRes.Time, sp, syncDetail.IdleTime[0])
		if imb == 1 {
			spFirst = sp
		}
		spLast = sp
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: a crossover — balanced loads may favour the synchronous method")
	rep.Note("(fresh reads every round), but the async advantage grows with imbalance and")
	rep.Note("async wins once the straggler dominates the barrier")
	// Acceptance: the advantage grows with imbalance and async wins at the
	// heaviest imbalance (the crossover the paper's claims predict).
	rep.Pass = pass && spLast > spFirst && spLast > 1
	return rep
}

// E4 compares flexible communication against plain asynchronous iteration
// on the network-flow workload ([9],[10]: flexible communication improves
// efficiency when updating phases are long relative to link latency).
func E4() *Report {
	rep := &Report{ID: "E4", Title: "Flexible vs plain asynchronous communication (network flow)"}
	net, err := buildFlowGrid()
	if err != nil {
		rep.Note("network error: %v", err)
		return rep
	}
	op := newFlowOp(net)
	pstar, ok := operators.FixedPoint(op, make([]float64, op.Dim()), 1e-12, 200000)
	if !ok {
		rep.Note("reference relaxation failed")
		return rep
	}
	tb := metrics.NewTable("6x6 grid, 4 workers, long phases (cost 4) over fast links (latency 0.05)",
		"mode", "virtual time", "updates", "partial sends")
	base := repro.Spec{
		Problem: repro.Problem{Op: op, X0: offsetStart(pstar), XStar: pstar},
		Execution: repro.Execution{
			Workers: 4,
			Cost:    des.UniformCost(4),
			Latency: des.FixedLatency(0.05),
			Seed:    41,
		},
		Stopping: repro.Stopping{Tol: 1e-7, MaxUpdates: 4000000},
		Engine:   repro.EngineSim,
	}
	plain, err := repro.Solve(base)
	if err != nil || !plain.Converged {
		rep.Note("plain run failed: %v", err)
		return rep
	}
	tb.AddRow("plain async", plain.Time, plain.Updates, 0)

	flex, err := repro.Solve(base, repro.WithFlexible(flexSchedule4()))
	if err != nil || !flex.Converged {
		rep.Note("flexible run failed: %v", err)
		return rep
	}
	partials := (flex.MessagesSent - plain.MessagesSent)
	tb.AddRow("async + flexible", flex.Time, flex.Updates, partials)
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: flexible <= plain in virtual time (partial updates propagate early)")
	rep.Pass = flex.Time <= plain.Time*1.02
	return rep
}

// E5 quantifies the Section IV comparison between macro-iteration sequences
// (Miellou) and epoch sequences (Mishchenko et al. [30]): under
// out-of-order message consumption, epochs close while information from
// before the previous epoch is still in use (staleness violations), whereas
// the strict macro-iteration sequence never admits such reads.
func E5() *Report {
	rep := &Report{ID: "E5", Title: "Macro-iterations vs epochs under out-of-order messages"}
	sys, rhs := diagDominantSystem(8, 51)
	op := operators.JacobiFromSystem(sys, rhs)
	xstar, _ := sys.SolveGaussian(rhs)

	tb := metrics.NewTable("cyclic steering over 8 components, 20000 iterations",
		"OOO window", "def2 macro", "strict macro", "epochs",
		"epoch staleness", "strict staleness")
	pass := true
	anyViolation := false
	for _, w := range []int{1, 4, 16, 64} {
		var dm delay.Model
		if w <= 1 {
			dm = delay.Fresh{}
		} else {
			dm = delay.OutOfOrder{W: w, Seed: uint64(50 + w)}
		}
		res, err := repro.Solve(repro.Spec{
			Problem:  repro.Problem{Op: op, X0: offsetStart(xstar), XStar: xstar},
			Dynamics: repro.Dynamics{Steering: steering.NewCyclic(8), Delay: dm},
			Stopping: repro.Stopping{MaxIter: 20000},
		})
		if err != nil {
			rep.Note("window %d: %v", w, err)
			pass = false
			continue
		}
		epochStale := macroiter.EpochStaleness(res.Epochs, res.Records)
		strictStale := macroiter.EpochStaleness(res.StrictBoundaries, res.Records)
		tb.AddRow(w, len(res.Boundaries), len(res.StrictBoundaries),
			len(res.Epochs), epochStale, strictStale)
		if strictStale != 0 {
			pass = false
		}
		if epochStale > 0 {
			anyViolation = true
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("expected shape: epoch staleness grows with the reordering window; strict macro staleness is always 0")
	rep.Pass = pass && anyViolation
	return rep
}
