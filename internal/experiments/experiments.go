// Package experiments implements the reproduction suite F1–F2 and E1–E12
// described in DESIGN.md: machine-generated versions of the paper's two
// figures plus quantitative experiments validating Theorem 1 and every
// qualitative claim (asynchronous vs synchronous efficiency, flexible
// communication, macro-iterations vs epochs, fault tolerance, unbounded
// delays, ...). Each experiment returns a Report whose tables are exactly
// the rows recorded in EXPERIMENTS.md; cmd/experiments prints them and the
// root bench suite times them.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/vec"
)

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Notes carries free-form findings (bound held, who won, ...).
	Notes []string
	// Pass indicates the experiment's acceptance criterion was met.
	Pass bool
}

// Note appends a formatted note.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner is an experiment entry point.
type Runner func() *Report

// Registry maps experiment ids to runners, in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"F1", F1}, {"F2", F2},
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4},
		{"E5", E5}, {"E6", E6}, {"E7", E7}, {"E8", E8},
		{"E9", E9}, {"E10", E10}, {"E11", E11}, {"E12", E12},
		{"E13", E13}, {"E14", E14}, {"E15", E15}, {"E16", E16},
		{"E17", E17},
	}
}

// Lookup returns the runner for an id (case-sensitive) or nil.
func Lookup(id string) Runner {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared problem builders.

func newRNG(seed uint64) *vec.RNG { return vec.NewRNG(seed) }

func newDense(rows, cols int) *vec.Dense { return vec.NewDense(rows, cols) }

// diagDominantSystem builds an n x n strictly diagonally dominant system and
// returns its Jacobi operator with the exact solution.
func diagDominantSystem(n int, seed uint64) (*vec.Dense, []float64) {
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.4*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 1.7*off+1)
	}
	return m, rng.NormalVector(n)
}

// offsetStart returns xstar shifted by +10 in every coordinate.
func offsetStart(xstar []float64) []float64 {
	x0 := make([]float64, len(xstar))
	for i := range x0 {
		x0[i] = xstar[i] + 10
	}
	return x0
}

// sampledIndices returns up to k roughly evenly spaced indices of [0, n).
func sampledIndices(n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	set := map[int]bool{0: true, n - 1: true}
	for i := 1; i < k-1; i++ {
		set[i*(n-1)/(k-1)] = true
	}
	var out []int
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
