package experiments

import (
	"context"
	"testing"
)

// TestRunSelectedParallel exercises the worker pool with parallelism > 1 on
// a fast subset; under `go test -race` this doubles as the data-race check
// for the harness (and for concurrent engine runs inside experiments).
func TestRunSelectedParallel(t *testing.T) {
	ids := []string{"F1", "F2", "E1", "E2"}
	outcomes, err := RunSelected(context.Background(), 4, ids)
	if err != nil {
		t.Fatalf("RunSelected: %v", err)
	}
	if len(outcomes) != len(ids) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(ids))
	}
	for i, oc := range outcomes {
		if oc.ID != ids[i] {
			t.Errorf("outcome %d id %s, want %s (order must be registry order)", i, oc.ID, ids[i])
		}
		if oc.Err != nil {
			t.Errorf("%s: %v", oc.ID, oc.Err)
			continue
		}
		if oc.Report == nil || !oc.Report.Pass {
			t.Errorf("%s: missing or failing report", oc.ID)
		}
		if oc.Elapsed <= 0 {
			t.Errorf("%s: elapsed not recorded", oc.ID)
		}
	}
}

// TestRunAllMatchesSerial checks the parallel harness returns the same
// pass/fail verdicts as serial execution (experiments are deterministic).
func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite comparison skipped in -short mode")
	}
	outcomes, err := RunAll(context.Background(), 8)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outcomes) != len(IDs()) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(IDs()))
	}
	for _, oc := range outcomes {
		if oc.Err != nil {
			t.Errorf("%s: %v", oc.ID, oc.Err)
			continue
		}
		serial := Lookup(oc.ID)()
		if serial.Pass != oc.Report.Pass {
			t.Errorf("%s: parallel pass=%v, serial pass=%v", oc.ID, oc.Report.Pass, serial.Pass)
		}
	}
}

func TestRunSelectedUnknownID(t *testing.T) {
	outcomes, err := RunSelected(context.Background(), 2, []string{"F1", "E99"})
	if err != nil {
		t.Fatalf("RunSelected: %v", err)
	}
	if outcomes[0].Err != nil || outcomes[0].Report == nil {
		t.Errorf("F1 should succeed: %+v", outcomes[0])
	}
	if outcomes[1].Err == nil {
		t.Error("E99 should report an error")
	}
}

func TestRunSelectedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes, err := RunSelected(ctx, 2, IDs())
	if err == nil {
		t.Fatal("want context error")
	}
	skipped := 0
	for _, oc := range outcomes {
		if oc.Err != nil {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("cancellation before launch should skip experiments")
	}
}
