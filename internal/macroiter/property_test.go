package macroiter

import (
	"testing"

	"repro/internal/vec"
)

// randomRun builds a random admissible record stream: every component is
// relaxed infinitely often (cyclic backbone plus random extras) and labels
// satisfy condition a).
func randomRun(rng *vec.RNG, n, horizon, maxDelay int) []Record {
	recs := make([]Record, 0, horizon)
	for j := 1; j <= horizon; j++ {
		comp := (j - 1) % n
		s := []int{comp}
		if rng.Float64() < 0.3 {
			s = append(s, rng.Intn(n))
		}
		d := 1 + rng.Intn(maxDelay)
		l := j - d
		if l < 0 {
			l = 0
		}
		recs = append(recs, Record{J: j, S: s, MinLabel: l, Worker: comp})
	}
	return recs
}

// Property battery over random admissible runs.
func TestRandomRunProperties(t *testing.T) {
	rng := vec.NewRNG(201)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		maxDelay := 1 + rng.Intn(20)
		recs := randomRun(rng, n, 400, maxDelay)

		def2 := Boundaries(n, recs)
		strict := StrictBoundaries(n, recs)

		// Both sequences strictly increase and stay within the horizon.
		check := func(name string, bs []int) {
			prev := 0
			for _, b := range bs {
				if b <= prev || b > 400 {
					t.Fatalf("trial %d: %s boundary %d invalid", trial, name, b)
				}
				prev = b
			}
		}
		check("def2", def2)
		check("strict", strict)

		// Strict is never denser than Definition 2.
		if len(strict) > len(def2) {
			t.Fatalf("trial %d: strict %d > def2 %d", trial, len(strict), len(def2))
		}

		// Strict suffix guarantee holds by construction.
		for k, b := range strict {
			start := 0
			if k > 0 {
				start = strict[k-1]
			}
			for _, r := range recs {
				if r.J > b && r.MinLabel < start {
					t.Fatalf("trial %d: strict suffix violated", trial)
				}
			}
		}
		// Strict windows admit no pre-previous-window staleness.
		if v := EpochStaleness(strict, recs); v != 0 {
			t.Fatalf("trial %d: strict staleness %d", trial, v)
		}

		// Within each Definition 2 window, every component is relaxed at
		// least once by an update whose labels reach into the window.
		for k, b := range def2 {
			start := 0
			if k > 0 {
				start = def2[k-1]
			}
			covered := make([]bool, n)
			for _, r := range recs {
				if r.J > start && r.J <= b && r.MinLabel >= start {
					for _, i := range r.S {
						covered[i] = true
					}
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("trial %d: window (%d,%d] does not cover component %d",
						trial, start, b, i)
				}
			}
		}
	}
}

// Property: with bounded delay d and a cyclic backbone, Definition 2
// boundaries are spaced at most n + d + slack apart once past the warmup.
func TestBoundarySpacingBounded(t *testing.T) {
	n, d := 5, 7
	recs := cyclicRecords(n, 600, d)
	bs := Boundaries(n, recs)
	if len(bs) < 4 {
		t.Fatalf("too few boundaries: %v", bs)
	}
	for k := 2; k < len(bs); k++ {
		gap := bs[k] - bs[k-1]
		if gap > n+d+n {
			t.Fatalf("boundary gap %d too large (n=%d d=%d)", gap, n, d)
		}
	}
}

// Property: epochs are invariant to labels — two runs differing only in
// MinLabel give identical epoch sequences (the paper's Section IV point
// that epochs ignore message ordering).
func TestEpochsIgnoreLabels(t *testing.T) {
	rng := vec.NewRNG(202)
	recsA := randomRun(rng, 4, 300, 5)
	recsB := make([]Record, len(recsA))
	copy(recsB, recsA)
	for i := range recsB {
		recsB[i].MinLabel = 0 // maximally stale labels
	}
	ea := EpochBoundaries(4, recsA)
	eb := EpochBoundaries(4, recsB)
	if len(ea) != len(eb) {
		t.Fatalf("epoch counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("epoch boundaries differ at %d", i)
		}
	}
	// Macro-iterations, by contrast, do react to labels.
	ma := Boundaries(4, recsA)
	mb := Boundaries(4, recsB)
	if len(mb) >= len(ma) {
		t.Fatalf("macro boundaries should collapse under stale labels: %d vs %d",
			len(mb), len(ma))
	}
}
