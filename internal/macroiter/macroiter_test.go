package macroiter

import (
	"testing"
	"testing/quick"
)

// runRecords builds a deterministic run: n components relaxed cyclically one
// per iteration with a constant delay d (so l(j) = max(0, j-d)).
func cyclicRecords(n, horizon, d int) []Record {
	recs := make([]Record, 0, horizon)
	for j := 1; j <= horizon; j++ {
		l := j - d
		if l < 0 {
			l = 0
		}
		if l > j-1 {
			l = j - 1
		}
		recs = append(recs, Record{J: j, S: []int{(j - 1) % n}, MinLabel: l, Worker: (j - 1) % n})
	}
	return recs
}

func TestTrackerCyclicFresh(t *testing.T) {
	// n=3, fresh labels (d=1). Window 1: iterations 1..3 cover {0,1,2} and all
	// labels l(j)=j-1 >= 0, so j_1 = 3; then j_2 = 6, etc.
	bs := Boundaries(3, cyclicRecords(3, 12, 1))
	want := []int{3, 6, 9, 12}
	if len(bs) != len(want) {
		t.Fatalf("boundaries = %v, want %v", bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", bs, want)
		}
	}
}

func TestTrackerDelayedLabels(t *testing.T) {
	// With constant delay d=3 and n=2 cyclic: labels lag, so coverage of a
	// macro window only counts iterations whose l(j) >= j_k; boundaries are
	// pushed later than the fresh case.
	bsFresh := Boundaries(2, cyclicRecords(2, 40, 1))
	bsSlow := Boundaries(2, cyclicRecords(2, 40, 5))
	if len(bsSlow) >= len(bsFresh) {
		t.Fatalf("delays should reduce macro-iteration count: fresh %d vs slow %d",
			len(bsFresh), len(bsSlow))
	}
	// Early boundaries may coincide because labels clamp to 0 near the start
	// of the run; from the second boundary on the delayed run lags.
	if len(bsSlow) < 2 || bsSlow[1] <= bsFresh[1] {
		t.Fatalf("second slow boundary should exceed fresh: slow %v fresh %v", bsSlow, bsFresh)
	}
}

func TestTrackerBoundariesStrictlyIncrease(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%5) + 1
		d := int(dRaw%7) + 1
		bs := Boundaries(n, cyclicRecords(n, 200, d))
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackerKAt(t *testing.T) {
	tr := NewTracker(2)
	tr.Observe(1, []int{0}, 0)
	tr.Observe(2, []int{1}, 1) // boundary at 2
	tr.Observe(3, []int{0}, 2)
	tr.Observe(4, []int{1}, 3) // boundary at 4
	if tr.K() != 2 {
		t.Fatalf("K = %d", tr.K())
	}
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 9: 2}
	for j, want := range cases {
		if got := tr.KAt(j); got != want {
			t.Errorf("KAt(%d) = %d, want %d", j, got, want)
		}
	}
}

func TestObserveOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr := NewTracker(1)
	tr.Observe(2, []int{0}, 0)
	tr.Observe(1, []int{0}, 0)
}

func TestStaleIterationsDoNotCover(t *testing.T) {
	// Component 1 is only ever relaxed with very stale labels; after the
	// first boundary the tracker must not count those relaxations, so only
	// one boundary forms.
	tr := NewTracker(2)
	tr.Observe(1, []int{0}, 0)
	tr.Observe(2, []int{1}, 0) // covers -> boundary j_1 = 2
	for j := 3; j < 30; j++ {
		if j%2 == 1 {
			tr.Observe(j, []int{0}, j-1)
		} else {
			tr.Observe(j, []int{1}, 0) // stale: l(j)=0 < j_1
		}
	}
	if tr.K() != 1 {
		t.Fatalf("stale relaxations covered a window: K = %d, boundaries %v", tr.K(), tr.Boundaries())
	}
}

func TestStrictBoundariesSuffixGuarantee(t *testing.T) {
	// Build a run with one out-of-order stale read late in the stream; the
	// strict sequence must not close a window before it.
	recs := cyclicRecords(2, 20, 1)
	recs[9].MinLabel = 0 // iteration 10 suddenly reads x(0)
	strict := StrictBoundaries(2, recs)
	// No strict boundary with start > 0 may appear before iteration 10.
	for _, b := range strict {
		if b > 0 && b <= 10 && b != recs[9].J {
			// Any boundary at or before 10 must have start 0 and be >= covering point.
			_ = b
		}
	}
	// The guarantee: for every window (j_k, j_{k+1}], all iterations after
	// j_{k+1} have MinLabel >= j_k.
	check := func(bs []int) bool {
		for k, b := range bs {
			start := 0
			if k > 0 {
				start = bs[k-1]
			}
			for _, r := range recs {
				if r.J > b && r.MinLabel < start {
					return false
				}
			}
		}
		return true
	}
	if !check(strict) {
		t.Fatalf("strict boundaries %v violate suffix guarantee", strict)
	}
}

func TestStrictEqualsDefinition2OnMonotoneRuns(t *testing.T) {
	recs := cyclicRecords(3, 60, 2)
	def2 := Boundaries(3, recs)
	strict := StrictBoundaries(3, recs)
	if len(strict) == 0 || len(def2) == 0 {
		t.Fatal("no boundaries formed")
	}
	// With monotone labels the strict sequence matches Definition 2.
	if len(strict) != len(def2) {
		t.Fatalf("lengths differ: def2 %v strict %v", def2, strict)
	}
	for i := range def2 {
		if def2[i] != strict[i] {
			t.Fatalf("mismatch at %d: def2 %v strict %v", i, def2, strict)
		}
	}
}

func TestKOf(t *testing.T) {
	bs := []int{3, 7, 12}
	cases := map[int]int{0: 0, 3: 1, 6: 1, 7: 2, 100: 3}
	for j, want := range cases {
		if got := KOf(bs, j); got != want {
			t.Errorf("KOf(%d) = %d, want %d", j, got, want)
		}
	}
}

func TestEpochTrackerTwoUpdatesPerMachine(t *testing.T) {
	// 2 machines alternating: epochs close once each has 2 updates, i.e.
	// after iterations 4, 8, 12, ...
	et := NewEpochTracker(2)
	for j := 1; j <= 12; j++ {
		et.Observe(j, (j-1)%2)
	}
	want := []int{4, 8, 12}
	got := et.Boundaries()
	if len(got) != len(want) {
		t.Fatalf("epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epochs = %v, want %v", got, want)
		}
	}
}

func TestEpochTrackerSlowMachine(t *testing.T) {
	// Machine 1 updates rarely; epochs stretch accordingly.
	et := NewEpochTracker(2)
	j := 0
	for r := 0; r < 50; r++ {
		j++
		et.Observe(j, 0)
		if r%10 == 9 {
			j++
			et.Observe(j, 1)
		}
	}
	bs := et.Boundaries()
	if len(bs) == 0 {
		t.Fatal("no epochs formed")
	}
	if bs[0] < 20 {
		t.Errorf("first epoch closed too early at %d", bs[0])
	}
}

func TestEpochStalenessZeroForStrictMacro(t *testing.T) {
	recs := cyclicRecords(2, 60, 3)
	strict := StrictBoundaries(2, recs)
	if v := EpochStaleness(strict, recs); v != 0 {
		t.Fatalf("strict macro-iterations produced %d staleness violations", v)
	}
}

func TestEpochStalenessPositiveUnderOOO(t *testing.T) {
	// Two machines alternate and usually read fresh values, but sporadically
	// an old message arrives: MinLabel drops to 0. Epochs ignore labels, so
	// windows close while pre-window information is still in use.
	var recs []Record
	for j := 1; j <= 100; j++ {
		l := j - 1
		if j%17 == 0 {
			l = 0 // an ancient message is consumed
		}
		recs = append(recs, Record{J: j, S: []int{(j - 1) % 2}, MinLabel: l, Worker: (j - 1) % 2})
	}
	epochs := EpochBoundaries(2, recs)
	if len(epochs) < 3 {
		t.Fatalf("too few epochs: %v", epochs)
	}
	if v := EpochStaleness(epochs, recs); v == 0 {
		t.Fatal("expected staleness violations for epoch windows under OOO delivery")
	}
	strict := StrictBoundaries(2, recs)
	if v := EpochStaleness(strict, recs); v != 0 {
		t.Fatalf("strict macro sequence must have zero violations, got %d (boundaries %v)", v, strict)
	}
}

func TestStopCriterion(t *testing.T) {
	s := NewStopCriterion(1e-6, 2)
	if s.ObserveBoundary(1e-3) {
		t.Fatal("should not stop at large residual")
	}
	if s.ObserveBoundary(1e-7) {
		t.Fatal("needs 2 consecutive")
	}
	if !s.ObserveBoundary(1e-8) {
		t.Fatal("should stop after 2 consecutive")
	}
	if !s.Done() {
		t.Fatal("Done should be latched")
	}
	s.Reset()
	if s.Done() {
		t.Fatal("Reset failed")
	}
}

func TestStopCriterionStreakResets(t *testing.T) {
	s := NewStopCriterion(1e-6, 3)
	s.ObserveBoundary(1e-7)
	s.ObserveBoundary(1e-7)
	s.ObserveBoundary(1.0) // breaks the streak
	s.ObserveBoundary(1e-7)
	s.ObserveBoundary(1e-7)
	if s.Done() {
		t.Fatal("streak should have been reset")
	}
	if !s.ObserveBoundary(1e-7) {
		t.Fatal("third consecutive should finish")
	}
}
