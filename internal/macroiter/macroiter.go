// Package macroiter implements the macro-iteration sequence of Miellou (the
// paper's Definition 2), the Bertsekas-style strict variant used in
// convergence proofs, and — for comparison (Section IV of the paper) — the
// epoch sequence of Mishchenko, Iutzeler and Malick [30].
//
// Definition 2: with l(j) = min_h l_h(j),
//
//	j_0 = 0,
//	j_{k+1} = min_j { union of S_r over { r : j_k <= l(r) <= r <= j } = {1..n} }.
//
// Inside the window (j_k, j_{k+1}] every component is relaxed at least once
// using only information labelled >= j_k; that is what drives level-set
// ("box") convergence arguments and the per-macro-iteration contraction of
// Theorem 1.
//
// The paper additionally asserts that every update after j_{k+1} uses labels
// >= j_k. Guaranteeing that requires looking at future labels; the
// StrictBoundaries function computes, offline over a recorded run, the
// boundary sequence with that suffix guarantee (the construction underlying
// the General Convergence Theorem of Bertsekas). Under condition b) the
// strict sequence is infinite; with monotone labels it coincides with
// Definition 2 up to small shifts.
package macroiter

import "fmt"

// Tracker incrementally computes the Definition 2 macro-iteration sequence
// from an observed run. Feed Observe with strictly increasing j.
type Tracker struct {
	n          int
	start      int // j_k of the macro-iteration being built
	covered    []bool
	nCovered   int
	boundaries []int // j_1, j_2, ...
	lastJ      int
}

// NewTracker returns a tracker over n components.
func NewTracker(n int) *Tracker {
	if n < 1 {
		panic("macroiter: need n >= 1")
	}
	return &Tracker{n: n, covered: make([]bool, n)}
}

// Observe records that iteration j relaxed the components in S using values
// whose minimum label is minLabel = l(j). Iterations must be fed in
// increasing order.
func (t *Tracker) Observe(j int, S []int, minLabel int) {
	if j <= t.lastJ {
		panic(fmt.Sprintf("macroiter: Observe out of order: j=%d after %d", j, t.lastJ))
	}
	t.lastJ = j
	// Only iterations whose entire read set is labelled >= j_k count toward
	// covering the current macro-iteration.
	if minLabel >= t.start {
		for _, i := range S {
			if i >= 0 && i < t.n && !t.covered[i] {
				t.covered[i] = true
				t.nCovered++
			}
		}
	}
	if t.nCovered == t.n {
		t.boundaries = append(t.boundaries, j)
		t.start = j
		for i := range t.covered {
			t.covered[i] = false
		}
		t.nCovered = 0
	}
}

// Boundaries returns the completed boundaries j_1, j_2, ... (j_0 = 0 is
// implicit). Callers must not mutate the result.
func (t *Tracker) Boundaries() []int { return t.boundaries }

// K returns the number of completed macro-iterations.
func (t *Tracker) K() int { return len(t.boundaries) }

// KAt returns k such that j_k <= j < j_{k+1}: the number of macro-iterations
// completed by (global) iteration j.
func (t *Tracker) KAt(j int) int {
	k := 0
	for k < len(t.boundaries) && t.boundaries[k] <= j {
		k++
	}
	return k
}

// Record captures one iteration of a run for offline analysis.
type Record struct {
	J        int   `json:"j"`         // global iteration number (1-based, increasing)
	S        []int `json:"s"`         // components relaxed
	MinLabel int   `json:"min_label"` // l(J) = min_h l_h(J)
	Worker   int   `json:"worker"`    // machine that performed the update (for epoch analysis)
}

// Boundaries computes the Definition 2 sequence offline from records.
func Boundaries(n int, recs []Record) []int {
	t := NewTracker(n)
	for _, r := range recs {
		t.Observe(r.J, r.S, r.MinLabel)
	}
	return t.Boundaries()
}

// StrictBoundaries computes the macro-iteration sequence with the suffix
// guarantee: j_{k+1} is the smallest j such that
//
//	(i)  every component is relaxed at some r in (j_k, j] with l(r) >= j_k, and
//	(ii) every subsequent iteration r > j also has l(r) >= j_k.
//
// Inside window k and ever after, no information older than j_k is used, so
// a max-norm contraction argument gives exactly one contraction factor per
// window — the k of inequality (5).
func StrictBoundaries(n int, recs []Record) []int {
	if len(recs) == 0 {
		return nil
	}
	// suffixMin[idx] = min over records idx.. of MinLabel.
	suffixMin := make([]int, len(recs)+1)
	suffixMin[len(recs)] = int(^uint(0) >> 1)
	for i := len(recs) - 1; i >= 0; i-- {
		m := recs[i].MinLabel
		if suffixMin[i+1] < m {
			m = suffixMin[i+1]
		}
		suffixMin[i] = m
	}
	var boundaries []int
	start := 0
	covered := make([]bool, n)
	nCovered := 0
	for idx, r := range recs {
		if r.MinLabel >= start {
			for _, i := range r.S {
				if i >= 0 && i < n && !covered[i] {
					covered[i] = true
					nCovered++
				}
			}
		}
		if nCovered == n && suffixMin[idx+1] >= start {
			boundaries = append(boundaries, r.J)
			start = r.J
			for i := range covered {
				covered[i] = false
			}
			nCovered = 0
		}
	}
	return boundaries
}

// KOf returns, for a boundary sequence and an iteration j, the number of
// boundaries <= j (i.e. the macro-iteration count k at iteration j).
func KOf(boundaries []int, j int) int {
	k := 0
	for k < len(boundaries) && boundaries[k] <= j {
		k++
	}
	return k
}
