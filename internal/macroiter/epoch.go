package macroiter

// EpochTracker implements the epoch sequence {k_m} of Mishchenko, Iutzeler
// and Malick [30], quoted in Section IV of the paper:
//
//	k_0 = 0,
//	k_{m+1} = min_k { each machine made at least two updates on {k_m, ..., k} }.
//
// Updates are attributed to machines, not components. The paper argues this
// notion is less general than the macro-iteration sequence because it does
// not account for out-of-order messages: completing two updates per machine
// says nothing about how stale the information used by those updates was.
// EpochStaleness quantifies exactly that gap.
type EpochTracker struct {
	machines   int
	counts     []int
	satisfied  int
	boundaries []int
	lastJ      int
}

// NewEpochTracker returns a tracker over the given number of machines.
func NewEpochTracker(machines int) *EpochTracker {
	if machines < 1 {
		panic("macroiter: need at least one machine")
	}
	return &EpochTracker{machines: machines, counts: make([]int, machines)}
}

// Observe records that machine performed an update at global iteration j.
// Several machines may update at the same j (block-parallel sweeps), so j
// must be nondecreasing rather than strictly increasing.
func (t *EpochTracker) Observe(j, machine int) {
	if j < t.lastJ {
		panic("macroiter: EpochTracker.Observe out of order")
	}
	t.lastJ = j
	if machine < 0 || machine >= t.machines {
		return
	}
	t.counts[machine]++
	if t.counts[machine] == 2 {
		t.satisfied++
	}
	if t.satisfied == t.machines {
		t.boundaries = append(t.boundaries, j)
		for i := range t.counts {
			t.counts[i] = 0
		}
		t.satisfied = 0
	}
}

// Boundaries returns the completed epoch boundaries k_1, k_2, ...
func (t *EpochTracker) Boundaries() []int { return t.boundaries }

// M returns the number of completed epochs.
func (t *EpochTracker) M() int { return len(t.boundaries) }

// EpochBoundaries computes the epoch sequence offline from records.
func EpochBoundaries(machines int, recs []Record) []int {
	t := NewEpochTracker(machines)
	for _, r := range recs {
		t.Observe(r.J, r.Worker)
	}
	return t.Boundaries()
}

// EpochStaleness counts, for a boundary sequence (epochs or otherwise), the
// updates that fall in window m (boundaries[m-1], boundaries[m]] but read
// information labelled before the start of the *previous* window — i.e.
// information the window-based analysis implicitly assumes has been retired.
// For the strict macro-iteration sequence this count is zero by
// construction; for epochs under out-of-order delivery it is generally
// positive, which is the paper's Section IV critique made quantitative.
func EpochStaleness(boundaries []int, recs []Record) int {
	if len(boundaries) == 0 {
		return 0
	}
	violations := 0
	for _, r := range recs {
		// Find the window m with boundaries[m-1] < J <= boundaries[m].
		m := 0
		for m < len(boundaries) && boundaries[m] < r.J {
			m++
		}
		if m >= len(boundaries) || m == 0 {
			continue // before first boundary or after last: no previous window start
		}
		prevStart := 0
		if m >= 2 {
			prevStart = boundaries[m-2]
		}
		if r.MinLabel < prevStart {
			violations++
		}
	}
	return violations
}
