package macroiter

// StopCriterion is the macro-iteration based stopping rule in the spirit of
// Miellou, Spiteri and El Baz [15]: because inequality (5) contracts the
// error once per macro-iteration, declaring convergence after the residual
// has stayed below the tolerance for R consecutive macro-iteration
// boundaries is robust to the transient residual oscillations that plague
// per-iteration tests of asynchronous methods (a single small residual may
// be an artifact of a stale read).
type StopCriterion struct {
	// Tol is the residual threshold.
	Tol float64
	// ConsecutiveK is the number of consecutive macro-iteration boundaries
	// whose residual must be below Tol (>= 1).
	ConsecutiveK int

	streak int
	done   bool
}

// NewStopCriterion returns a criterion requiring the residual to stay below
// tol at consecutiveK successive macro-iteration boundaries.
func NewStopCriterion(tol float64, consecutiveK int) *StopCriterion {
	if consecutiveK < 1 {
		consecutiveK = 1
	}
	return &StopCriterion{Tol: tol, ConsecutiveK: consecutiveK}
}

// ObserveBoundary feeds the residual measured at a macro-iteration boundary
// and reports whether the criterion is now satisfied.
func (s *StopCriterion) ObserveBoundary(residual float64) bool {
	if s.done {
		return true
	}
	if residual <= s.Tol {
		s.streak++
	} else {
		s.streak = 0
	}
	if s.streak >= s.ConsecutiveK {
		s.done = true
	}
	return s.done
}

// Done reports whether the criterion has been satisfied.
func (s *StopCriterion) Done() bool { return s.done }

// Reset clears the criterion for reuse.
func (s *StopCriterion) Reset() { s.streak, s.done = 0, false }
