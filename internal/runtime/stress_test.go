package runtime

import (
	"testing"

	"repro/internal/flexible"
	"repro/internal/obstacle"
	"repro/internal/operators"
	"repro/internal/vec"
)

// Oversubscription: far more workers than cores must still converge and
// terminate (scheduler-interleaving stress).
func TestSharedOversubscribed(t *testing.T) {
	op, xstar, _ := contractingOp(t, 128, 50)
	res, err := RunShared(Config{
		Op: op, Workers: 64, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("oversubscribed shared run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v", e)
	}
}

func TestMessageOversubscribed(t *testing.T) {
	op, xstar, _ := contractingOp(t, 128, 51)
	res, err := RunMessage(Config{
		Op: op, Workers: 32, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("oversubscribed message run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v", e)
	}
}

// Monotone workload end to end on real concurrency: the obstacle problem
// from a supersolution, with flexible partial stores.
func TestSharedObstacleMonotone(t *testing.T) {
	p := obstacle.Membrane(12)
	want, ok := operators.FixedPoint(p, p.Supersolution(), 1e-11, 1000000)
	if !ok {
		t.Fatal("reference failed")
	}
	res, err := RunShared(Config{
		Op: p, Workers: 4, X0: p.Supersolution(),
		Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18,
		Flexible: flexible.Uniform(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if e := vec.DistInf(res.X, want); e > 1e-6 {
		t.Errorf("error vs reference %v", e)
	}
	rep := p.CheckComplementarity(res.X)
	if rep.MinGap < -1e-9 {
		t.Errorf("feasibility violated: %v", rep.MinGap)
	}
}

// Repeated runs under the race detector exercise different interleavings;
// every run must converge to the same fixed point.
func TestSharedRepeatedInterleavings(t *testing.T) {
	op, xstar, _ := contractingOp(t, 24, 52)
	for trial := 0; trial < 5; trial++ {
		res, err := RunShared(Config{
			Op: op, Workers: 6, Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if e := vec.DistInf(res.X, xstar); e > 1e-6 {
			t.Fatalf("trial %d error %v", trial, e)
		}
	}
}

// All three transports agree on the solution of one problem.
func TestTransportsAgree(t *testing.T) {
	op, xstar, _ := contractingOp(t, 32, 53)
	shared, err := RunShared(Config{Op: op, Workers: 4, Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := RunMessage(Config{Op: op, Workers: 4, Tol: 1e-10, MaxUpdatesPerWorker: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Converged || !msg.Converged {
		t.Fatal("a transport failed to converge")
	}
	for _, res := range []*Result{shared, msg} {
		if e := vec.DistInf(res.X, xstar); e > 1e-6 {
			t.Errorf("transport deviates by %v", e)
		}
	}
}
