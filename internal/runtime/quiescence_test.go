package runtime

import (
	"testing"

	"repro/internal/flexible"
	"repro/internal/operators"
	"repro/internal/vec"
)

func TestTrackerStateMachine(t *testing.T) {
	q := NewTracker(2)
	if q.IsPassive(0) || q.IsPassive(1) {
		t.Fatal("workers must start active")
	}
	o := q.Observe()
	if o.AllPassive {
		t.Error("observation of active workers reports AllPassive")
	}
	q.SetPassive(0)
	q.SetPassive(1)
	o = q.Observe()
	if !o.AllPassive || o.InFlight() != 0 {
		t.Errorf("all-passive idle system not quiet: %+v", o)
	}
	if !q.Quiescent(nil) {
		t.Error("frozen all-passive system must be quiescent")
	}
	q.MsgSent()
	if q.Quiescent(nil) {
		t.Error("quiescent with a message in flight")
	}
	q.MsgDelivered()
	if !q.Quiescent(nil) {
		t.Error("delivered message still counts as in flight")
	}
	q.MsgSent()
	q.MsgDropped()
	if !q.Quiescent(nil) {
		t.Error("dropped message still counts as in flight")
	}
	if q.Sent() != 2 || q.Dropped() != 1 {
		t.Errorf("Sent/Dropped = %d/%d, want 2/1", q.Sent(), q.Dropped())
	}
	q.SetActive(1)
	if q.Quiescent(nil) {
		t.Error("quiescent with an active worker")
	}
}

// TestDoubleCollectRejectsTransition scripts the torn-read scenario the
// protocol exists to catch: both collects look individually quiet, but a
// worker reactivated (epoch bump) between them.
func TestDoubleCollectRejectsTransition(t *testing.T) {
	calls := 0
	observe := func() Observation {
		calls++
		return Observation{AllPassive: true, Epoch: uint64(calls)}
	}
	if DoubleCollect(observe, nil) {
		t.Error("double collect accepted an epoch change between passes")
	}

	// Counter movement between passes must also be rejected even when
	// in-flight is zero at both.
	calls = 0
	observe = func() Observation {
		calls++
		return Observation{AllPassive: true, Sent: int64(calls), Delivered: int64(calls)}
	}
	if DoubleCollect(observe, nil) {
		t.Error("double collect accepted counter movement between passes")
	}

	// The confirm callback vetoes between the passes.
	stable := func() Observation { return Observation{AllPassive: true} }
	if DoubleCollect(stable, func() bool { return false }) {
		t.Error("double collect ignored confirm veto")
	}
	if !DoubleCollect(stable, func() bool { return true }) {
		t.Error("double collect rejected a stable confirmed state")
	}
}

// chainOp builds a dense contraction dominated by a one-directional chain:
// component i leans hard on component i-1 (weight decaying slowly along the
// block partition) plus weak dense coupling. Convergence then propagates as
// a wave through the worker blocks — downstream workers converge early on
// stale inputs, passivate, and are REACTIVATED when the wave arrives. That
// reactivation churn is exactly the window of the termination stop races:
// a supervisor that samples passivity and in-flight counters non-atomically
// can catch a worker between absorbing the wave and publishing that it woke
// up, and declare convergence with the wave still un-absorbed.
func chainOp(t testing.TB, n int, seed uint64) *operators.Linear {
	t.Helper()
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	weak := 0.05 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, weak*rng.Normal())
			}
		}
		if i > 0 {
			m.Set(i, i-1, 0.85)
		}
	}
	b := rng.NormalVector(n)
	for i := range b {
		b[i] += 3 // push the fixed point away from the zero start
	}
	return operators.NewLinear(m, b)
}

// TestMessageStopRace is the deterministic regression test for the
// message-engine stop race. The pre-fix worker acknowledged a delivery
// BEFORE publishing its reactivation, and the pre-fix supervisor stopped on
// a single quiet observation — so in the instant between the
// acknowledgement and the passive-flag clear, the supervisor could observe
// "all passive, in flight == 0" and stop with the reactivating message
// un-absorbed. This test scripts exactly that interleaving against the
// extracted protocol: the single collect the old supervisor used accepts
// the torn state, the two-phase double collect must reject it.
func TestMessageStopRace(t *testing.T) {
	q := NewTracker(1)
	q.SetPassive(0)
	// A message is sent toward the passive worker...
	q.MsgSent()
	// ...and the worker acknowledges it with the PRE-FIX ordering:
	// delivery first, reactivation afterwards.
	q.MsgDelivered()

	// The old supervisor polls here, between the two steps of the worker's
	// racy acknowledge-then-reactivate sequence: one observation, stop if
	// quiet. It accepts — this is the bug.
	if got := q.Observe(); !(got.AllPassive && got.InFlight() == 0) {
		t.Fatal("torn window not reproduced: single collect should look quiet")
	}

	// The two-phase protocol must catch the same interleaving: its second
	// collect lands after the worker finishes reactivating.
	first := q.Observe()
	q.SetActive(0) // the delayed reactivation of the pre-fix ordering
	second := q.Observe()
	if first.AllPassive && first.InFlight() == 0 &&
		second.AllPassive && second.InFlight() == 0 && second == first {
		t.Fatal("double collect accepted the torn interleaving the old supervisor raced on")
	}
	// And with the FIXED ordering (reactivate before acknowledging) even a
	// single collect can no longer look quiet while the message is being
	// absorbed: the in-flight count stays positive until after SetActive.
	q2 := NewTracker(1)
	q2.SetPassive(0)
	q2.MsgSent()
	q2.SetActive(0)
	if got := q2.Observe(); got.AllPassive {
		t.Fatal("fixed ordering still observable as passive mid-absorption")
	}
	q2.MsgDelivered()
	if q2.Quiescent(nil) {
		t.Fatal("worker is active with absorbed data; not quiescent")
	}
}

// TestMessageQuiescenceStress is the end-to-end invariant behind the stop
// race fix: a converged run guarantees every worker's final evaluation saw
// every final block, so the assembled iterate's fixed-point residual must
// actually meet the tolerance (the margin covers only floating-point
// noise). The chain workload maximizes the passive/reactivate churn that
// opened the pre-fix window.
func TestMessageQuiescenceStress(t *testing.T) {
	const trials = 6
	tol := 1e-12
	for trial := 0; trial < trials; trial++ {
		op := chainOp(t, 128, 60+uint64(trial))
		res, err := RunMessage(Config{
			Op: op, Workers: 12, Tol: tol,
			MaxUpdatesPerWorker: 1 << 18,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		// True quiescence means every worker's last evaluation saw every
		// final block, so the assembled iterate's residual is <= Tol
		// exactly (the evaluations are deterministic); the margin covers
		// only floating-point noise. A supervisor that fired mid-
		// reactivation leaves a block whose displacement exceeds Tol.
		if r := operators.Residual(op, res.X); r > tol*1.01 {
			t.Fatalf("trial %d: declared quiescent with residual %.3e > tol %.1e — termination fired early",
				trial, r, tol)
		}
	}
}

// TestSharedCertificationRace is the deterministic regression test for the
// shared-engine certification race. The pre-fix certifier sampled the
// workers' streak counters, took ONE snapshot — which could straddle a
// peer's mid-phase interpolated flexible partial stores — certified its
// residual, and stopped: a state that never existed could pass. Under the
// protocol the certification runs between two collects, so a peer storing
// mid-certification (exactly the torn-snapshot scenario) invalidates the
// result even when the certification itself happened to pass.
func TestSharedCertificationRace(t *testing.T) {
	q := NewTracker(2)
	q.SetPassive(0)
	q.SetPassive(1)
	if DoubleCollect(q.Observe, func() bool {
		// A peer resumes an update phase while the certifier is
		// snapshotting: its interpolated partial stores tear the snapshot.
		// The pre-fix certifier had no second look and would stop on this
		// certification alone; returning true simulates the torn snapshot
		// happening to look converged.
		q.SetActive(1)
		return true
	}) {
		t.Fatal("double collect accepted a certification torn by a peer's mid-phase stores")
	}
	// Re-certifying once the peer has finished and re-passivated succeeds.
	q.SetPassive(1)
	if !q.Quiescent(func() bool { return true }) {
		t.Fatal("stable all-passive state with passing certification must be quiescent")
	}
}

// TestSharedFlexibleCertificationStress is the end-to-end invariant behind
// the certification race fix: the certification happens on a frozen
// all-passive vector that is exactly the vector the run returns, so a
// converged run's final residual meets the tolerance even under an
// aggressive flexible schedule.
func TestSharedFlexibleCertificationStress(t *testing.T) {
	const trials = 6
	tol := 1e-11
	for trial := 0; trial < trials; trial++ {
		op := chainOp(t, 96, 70+uint64(trial))
		res, err := RunShared(Config{
			Op: op, Workers: 8, Tol: tol,
			MaxUpdatesPerWorker: 1 << 18,
			Flexible:            flexible.Uniform(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		// The certification happens on a frozen all-passive vector that is
		// exactly the vector the run returns, so a converged run's final
		// residual is <= Tol up to floating-point noise. A certifier whose
		// snapshot straddled a peer's mid-phase (interpolated flexible
		// partial) stores certifies a state that never existed and leaves
		// a residual above Tol behind.
		if r := operators.Residual(op, res.X); r > tol*1.01 {
			t.Fatalf("trial %d: certified stop with residual %.3e > tol %.1e — certification was torn",
				trial, r, tol)
		}
	}
}
