package runtime

import (
	"errors"
	"fmt"
	"math"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flexible"
	"repro/internal/operators"
	"repro/internal/vec"
)

// Config describes a concurrent asynchronous run.
type Config struct {
	// Op is the fixed-point operator (must be safe for concurrent
	// read-only evaluation).
	Op operators.Operator
	// Workers is the number of goroutines (components are block-partitioned).
	Workers int
	// X0 is the initial iterate (defaults to zero).
	X0 []float64
	// Tol is the per-coordinate displacement tolerance: a worker considers
	// itself locally converged when max_i |F_i(x) - x_i| over its block is
	// <= Tol. For an alpha-contraction the true error is then bounded by
	// Tol/(1-alpha).
	Tol float64
	// SweepsBelowTol is how many consecutive locally-converged sweeps every
	// worker must observe before the run terminates (default 2) — the
	// consecutive-confirmation idea of the macro-iteration stopping rule.
	SweepsBelowTol int
	// MaxUpdatesPerWorker bounds each worker's updating phases.
	MaxUpdatesPerWorker int
	// Flexible publishes partial coordinate values mid-phase (shared-memory
	// transport only).
	Flexible flexible.Schedule
	// Scratches, when non-nil, supplies one reusable operator scratch per
	// worker (index = worker id) so repeated runs of the same shape share
	// hot-path buffers. Missing entries fall back to fresh scratches.
	Scratches []*operators.Scratch
	// Tuning is installed on every worker scratch (supplied or fresh), so
	// pooled scratches reused across runs always carry this run's knobs.
	Tuning operators.Tuning
	// Done, when non-nil, cancels the run: every worker stops at its next
	// phase boundary, the result reports Cancelled and not Converged.
	Done <-chan struct{}
	// Progress, when non-nil, is incremented once per completed updating
	// phase so external observers can watch the run live.
	Progress *atomic.Int64
}

// workerScratch returns the caller-supplied scratch for worker w or a fresh
// one. Each worker owns its scratch exclusively for the duration of the run.
func (c *Config) workerScratch(w int) *operators.Scratch {
	scr := operators.NewScratch()
	if w < len(c.Scratches) && c.Scratches[w] != nil {
		scr = c.Scratches[w]
	}
	scr.SetTuning(c.Tuning)
	return scr
}

// Result reports a concurrent run.
type Result struct {
	X                []float64
	Converged        bool
	UpdatesPerWorker []int
	Elapsed          time.Duration
	// MessagesSent/MessagesDropped are populated by the message transport.
	MessagesSent, MessagesDropped int64
	// Cancelled reports that Config.Done fired before the run converged or
	// exhausted its budgets.
	Cancelled bool
}

func (c *Config) validate() (n int, err error) {
	if c.Op == nil {
		return 0, errors.New("runtime: Config.Op is required")
	}
	n = c.Op.Dim()
	if c.Workers < 1 {
		return 0, errors.New("runtime: need at least one worker")
	}
	if c.Workers > n {
		c.Workers = n
	}
	if c.X0 != nil && len(c.X0) != n {
		return 0, fmt.Errorf("runtime: X0 length %d, want %d", len(c.X0), n)
	}
	if c.SweepsBelowTol <= 0 {
		c.SweepsBelowTol = 2
	}
	if c.MaxUpdatesPerWorker <= 0 {
		c.MaxUpdatesPerWorker = 1 << 20
	}
	return n, nil
}

// RunShared executes the shared-memory transport: every coordinate is an
// atomic cell; workers snapshot the vector (an inconsistent cut — the
// asynchronous read model), relax their block, and publish results (and,
// under flexible communication, intermediate partial values) coordinate by
// coordinate with one-sided stores.
//
// Termination uses the two-phase protocol of quiescence.go. A worker with
// SweepsBelowTol consecutive locally-converged sweeps turns passive: it
// stops storing and downgrades to read-only watch sweeps, reactivating
// (BEFORE its first store — the protocol's ordering rule) if a peer's
// stores break its local convergence. Once every worker is passive the
// published vector is frozen, so any passive worker can certify the
// candidate: first collect, then a re-snapshot and full fixed-point
// residual re-certification, then a second collect proving no worker
// reactivated meanwhile. Only a certification bracketed by two identical
// quiet collects broadcasts stop — a residual computed from a snapshot
// torn across a peer's mid-phase (possibly interpolated flexible partial)
// stores can never terminate the run, because the storing worker was
// active at one of the collects or bumped the epoch in between.
func RunShared(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	sv := NewAtomicVector(x0)
	blocks := vec.Blocks(n, cfg.Workers)
	p := len(blocks)

	var stop, converged, cancelled atomic.Bool
	q := NewTracker(p)
	updates := make([]int, p)

	// Cancellation monitor: Done turns into the same stop broadcast the
	// certification path uses, so workers exit at their next loop check.
	if cfg.Done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-cfg.Done:
				cancelled.Store(true)
				stop.Store(true)
			case <-finished:
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := blocks[w][0], blocks[w][1]
			snap := make([]float64, n)
			cert := make([]float64, n)
			out := make([]float64, hi-lo)
			old := make([]float64, hi-lo)
			chk := make([]float64, hi-lo) // watch-sweep evaluation buffer
			scr := cfg.workerScratch(w)

			// certify re-snapshots the full vector and re-checks the
			// fixed-point residual; it runs between the two collects of the
			// double collect, when the vector is a candidate frozen state.
			// ResidualWith routes through ONE full operator application, not
			// n componentwise evaluations each redoing the shared work.
			certify := func() bool {
				sv.Snapshot(cert)
				return operators.ResidualWith(cfg.Op, scr, cert) <= cfg.Tol
			}

			streak := 0
			for k := 0; k < cfg.MaxUpdatesPerWorker; k++ {
				if stop.Load() {
					return
				}
				if q.IsPassive(w) {
					// Passive watch sweep: read-only re-check of local
					// convergence against the live vector. No stores, so a
					// fully passive system is frozen and certifiable.
					sv.Snapshot(snap)
					operators.EvalBlock(cfg.Op, scr, lo, hi, snap, chk)
					delta := 0.0
					for i, v := range chk {
						if d := math.Abs(v - snap[lo+i]); d > delta {
							delta = d
						}
					}
					if delta > cfg.Tol {
						// A peer's stores broke local convergence:
						// reactivate before the next iteration's stores.
						q.SetActive(w)
						streak = 0
						continue
					}
					if q.Quiescent(certify) {
						converged.Store(true)
						stop.Store(true)
						return
					}
					// Not certifiable yet (a peer is active or was caught
					// mid-transition): yield and watch again.
					gort.Gosched()
					continue // watch sweeps consume budget, bounding the loop
				}
				sv.Snapshot(snap)
				copy(old, snap[lo:hi])
				// Phase evaluation: the whole block in one coupled-operator
				// pass (shared prox/gradient work amortized across the block).
				operators.EvalBlock(cfg.Op, scr, lo, hi, snap, out)
				delta := 0.0
				for i, v := range out {
					if d := math.Abs(v - snap[lo+i]); d > delta {
						delta = d
					}
				}
				// Flexible communication: publish interpolated partial
				// values before the final ones (one-sided puts mid-phase).
				for _, f := range cfg.Flexible.Fracs {
					if f >= 1 {
						continue
					}
					for c := lo; c < hi; c++ {
						sv.Store(c, flexible.Interpolate(old[c-lo], out[c-lo], f))
					}
				}
				for c := lo; c < hi; c++ {
					sv.Store(c, out[c-lo])
				}
				updates[w]++
				if cfg.Progress != nil {
					cfg.Progress.Add(1)
				}

				if cfg.Tol > 0 {
					if delta <= cfg.Tol {
						streak++
						// Locally converged: yield the processor so peers can
						// advance. Without this, an oversubscribed or
						// single-CPU schedule lets one worker burn its entire
						// update budget re-relaxing an already-converged block
						// while its peers are descheduled with stale blocks.
						gort.Gosched()
					} else {
						streak = 0
					}
					if streak >= cfg.SweepsBelowTol {
						// This phase's stores are complete; go passive.
						q.SetPassive(w)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	res := &Result{
		X:                sv.Copy(),
		Converged:        converged.Load(),
		UpdatesPerWorker: updates,
		Elapsed:          time.Since(start),
		Cancelled:        cancelled.Load(),
	}
	return res, nil
}
