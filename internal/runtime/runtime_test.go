package runtime

import (
	"math"
	"testing"

	"repro/internal/flexible"
	"repro/internal/operators"
	"repro/internal/vec"
)

// contractingOp builds a diagonally dominant Jacobi operator with known
// fixed point and contraction factor.
func contractingOp(t *testing.T, n int, seed uint64) (*operators.Linear, []float64, float64) {
	t.Helper()
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.4*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 2*off+1)
	}
	rhs := rng.NormalVector(n)
	op := operators.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return op, xstar, op.ContractionFactor()
}

func TestAtomicVector(t *testing.T) {
	v := NewAtomicVector([]float64{1.5, -2.5})
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Load(0) != 1.5 || v.Load(1) != -2.5 {
		t.Error("initial values wrong")
	}
	v.Store(0, 3.25)
	if v.Load(0) != 3.25 {
		t.Error("Store/Load roundtrip failed")
	}
	snap := v.Copy()
	if snap[0] != 3.25 || snap[1] != -2.5 {
		t.Errorf("Copy = %v", snap)
	}
}

func TestRunSharedConverges(t *testing.T) {
	op, xstar, alpha := contractingOp(t, 32, 1)
	tol := 1e-10
	res, err := RunShared(Config{
		Op: op, Workers: 4, Tol: tol,
		MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("shared-memory run did not converge")
	}
	// Displacement tol implies error <= tol/(1-alpha).
	bound := tol / (1 - alpha) * 10 // slack for concurrent interleaving
	if e := vec.DistInf(res.X, xstar); e > bound {
		t.Errorf("error %v exceeds bound %v", e, bound)
	}
	for w, u := range res.UpdatesPerWorker {
		if u == 0 {
			t.Errorf("worker %d performed no updates", w)
		}
	}
}

func TestRunSharedFlexible(t *testing.T) {
	op, xstar, alpha := contractingOp(t, 32, 2)
	tol := 1e-10
	res, err := RunShared(Config{
		Op: op, Workers: 4, Tol: tol,
		MaxUpdatesPerWorker: 1 << 18,
		Flexible:            flexible.Uniform(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("flexible shared run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > tol/(1-alpha)*10 {
		t.Errorf("error %v too large", e)
	}
}

func TestRunSharedSingleWorker(t *testing.T) {
	op, xstar, _ := contractingOp(t, 8, 3)
	res, err := RunShared(Config{
		Op: op, Workers: 1, Tol: 1e-12, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single worker did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-9 {
		t.Errorf("error %v", e)
	}
}

func TestRunSharedMaxUpdatesBound(t *testing.T) {
	op, _, _ := contractingOp(t, 8, 4)
	res, err := RunShared(Config{
		Op: op, Workers: 2, MaxUpdatesPerWorker: 10, // no Tol: never "converges"
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("should not report convergence without Tol")
	}
	for w, u := range res.UpdatesPerWorker {
		if u != 10 {
			t.Errorf("worker %d updates = %d, want 10", w, u)
		}
	}
}

func TestRunMessageConverges(t *testing.T) {
	op, xstar, alpha := contractingOp(t, 32, 5)
	tol := 1e-10
	res, err := RunMessage(Config{
		Op: op, Workers: 4, Tol: tol,
		MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("message run did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > tol/(1-alpha)*10 {
		t.Errorf("error %v too large", e)
	}
	if res.MessagesSent == 0 {
		t.Error("no messages sent")
	}
}

func TestRunMessageTerminatesAtUpdateBound(t *testing.T) {
	op, _, _ := contractingOp(t, 8, 6)
	res, err := RunMessage(Config{
		Op: op, Workers: 4, Tol: 1e-30, // unreachable tolerance
		MaxUpdatesPerWorker: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unreachable tolerance should not converge")
	}
}

func TestRunMessageDropsCovered(t *testing.T) {
	// Tiny inboxes force drops; convergence must survive because newer
	// messages supersede lost ones. (Drops occur naturally under heavy
	// traffic; this test just asserts the run still converges.)
	op, xstar, _ := contractingOp(t, 64, 7)
	res, err := RunMessage(Config{
		Op: op, Workers: 8, Tol: 1e-9,
		MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if e := vec.DistInf(res.X, xstar); e > 1e-5 {
		t.Errorf("error %v too large", e)
	}
}

func TestConfigValidation(t *testing.T) {
	op, _, _ := contractingOp(t, 4, 8)
	if _, err := RunShared(Config{}); err == nil {
		t.Error("expected error without operator")
	}
	if _, err := RunShared(Config{Op: op, Workers: 0}); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := RunShared(Config{Op: op, Workers: 2, X0: []float64{1}}); err == nil {
		t.Error("expected error for bad X0")
	}
	if _, err := RunMessage(Config{Op: op, Workers: 0}); err == nil {
		t.Error("expected message error for zero workers")
	}
}

func TestWorkersClampedToDim(t *testing.T) {
	op, _, _ := contractingOp(t, 3, 9)
	res, err := RunShared(Config{Op: op, Workers: 16, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UpdatesPerWorker) != 3 {
		t.Errorf("workers not clamped: %d", len(res.UpdatesPerWorker))
	}
}
