package runtime

import "sync/atomic"

// Two-phase (Safra-style double-collect) quiescence detection, shared by
// every concurrent transport (shared memory, in-process message passing,
// and the TCP engine in internal/dist).
//
// The state machine: each worker is either active (computing, publishing
// stores or sending messages) or passive (locally converged, only watching
// for input that would reactivate it). A run is quiescent — and may be
// stopped — exactly when every worker is passive and no communication is
// in flight that could reactivate one.
//
// Deciding that from concurrently mutated state is the classic distributed
// termination problem: a supervisor that samples passivity flags and
// message counters one by one can assemble an observation that was never
// globally true (the torn-read stop races this protocol replaced). The fix
// is the double collect:
//
//  1. First pass observes all-passive with in-flight == 0 (sent ==
//     delivered + dropped).
//  2. An optional confirm callback re-validates convergence against the
//     now-candidate-frozen state (the shared-memory engine re-snapshots
//     and re-certifies the full fixed-point residual here).
//  3. Second pass confirms no worker reactivated in between — every
//     passivity flag still set, the activity epoch unchanged, and every
//     counter identical.
//
// Soundness rests on one ordering rule the transports must follow: a
// worker MUST publish its reactivation (Tracker.SetActive, or the
// transport's equivalent epoch bump) BEFORE it acknowledges the input that
// reactivated it — before counting a message delivered, and before its
// first store of a resumed phase. Then an observation with in-flight == 0
// has already seen the delivery acknowledgement of any reactivating
// message, so the second pass must see either the reactivation itself
// (passive flag cleared) or, if the worker already re-passivated after
// re-checking convergence with the new data, the epoch bumps of that
// round trip. Either way the collect is rejected and retried; a collect
// that survives both passes observed a genuinely frozen, quiescent system.

// Observation is one collect of the global termination state. The zero
// value is "not quiescent".
type Observation struct {
	// AllPassive reports whether every worker was observed passive.
	AllPassive bool
	// Epoch is the activity epoch: a counter bumped on every worker state
	// transition (activation and passivation). Epochs only grow, so two
	// equal observations bracket an interval with no transitions.
	Epoch uint64
	// Sent, Delivered and Dropped count transport messages. Transports
	// without messages leave them zero.
	Sent, Delivered, Dropped int64
}

// InFlight is the number of messages sent but not yet delivered or dropped.
func (o Observation) InFlight() int64 { return o.Sent - o.Delivered - o.Dropped }

// quiet reports whether this single observation is consistent with
// quiescence (necessary, not sufficient — hence the double collect).
func (o Observation) quiet() bool { return o.AllPassive && o.InFlight() == 0 }

// DoubleCollect runs the two-phase protocol over an observation source:
// collect, optionally confirm, collect again, and report quiescence only
// if both collects are quiet and identical. observe may be a set of atomic
// loads (in-process transports) or a network probe round (dist transport);
// confirm, when non-nil, runs between the passes and may veto (the
// shared-memory engine re-certifies the fixed-point residual there).
func DoubleCollect(observe func() Observation, confirm func() bool) bool {
	first := observe()
	if !first.quiet() {
		return false
	}
	if confirm != nil && !confirm() {
		return false
	}
	second := observe()
	return second.quiet() && second == first
}

// Tracker is the in-process implementation of the protocol state: per-worker
// passivity flags, a global activity epoch, and message counters, all
// atomics so workers update them lock-free on the hot path.
type Tracker struct {
	passive                  []atomic.Bool
	epoch                    atomic.Uint64
	sent, delivered, dropped atomic.Int64
}

// NewTracker returns a Tracker for the given worker count; every worker
// starts active.
func NewTracker(workers int) *Tracker {
	return &Tracker{passive: make([]atomic.Bool, workers)}
}

// SetActive marks worker w active. Per the protocol's ordering rule it must
// be called BEFORE the worker acknowledges the reactivating input: before
// MsgDelivered for the message that woke it, and before the first store of
// a resumed update phase.
func (t *Tracker) SetActive(w int) {
	t.passive[w].Store(false)
	t.epoch.Add(1)
}

// SetPassive marks worker w passive (locally converged and no longer
// publishing). The epoch bump lets the double collect detect a worker that
// reactivated and re-passivated between the two passes.
func (t *Tracker) SetPassive(w int) {
	t.epoch.Add(1)
	t.passive[w].Store(true)
}

// IsPassive reports worker w's current state.
func (t *Tracker) IsPassive(w int) bool { return t.passive[w].Load() }

// MsgSent / MsgDelivered / MsgDropped account one transport message.
// A dropped message is one that can never reactivate a worker.
func (t *Tracker) MsgSent()      { t.sent.Add(1) }
func (t *Tracker) MsgDelivered() { t.delivered.Add(1) }
func (t *Tracker) MsgDropped()   { t.dropped.Add(1) }

// Sent and Dropped expose the message totals for reporting.
func (t *Tracker) Sent() int64    { return t.sent.Load() }
func (t *Tracker) Dropped() int64 { return t.dropped.Load() }

// Observe performs one collect. The passivity flags are read before the
// epoch and counters: combined with the SetActive-before-acknowledge rule
// this ordering makes the double collect sound (see the package comment
// above).
func (t *Tracker) Observe() Observation {
	o := Observation{AllPassive: true}
	for w := range t.passive {
		if !t.passive[w].Load() {
			o.AllPassive = false
			break
		}
	}
	o.Epoch = t.epoch.Load()
	o.Sent = t.sent.Load()
	o.Delivered = t.delivered.Load()
	o.Dropped = t.dropped.Load()
	return o
}

// Quiescent runs the double collect against this tracker's state.
func (t *Tracker) Quiescent(confirm func() bool) bool {
	return DoubleCollect(t.Observe, confirm)
}
