//go:build unix

package runtime

import (
	gort "runtime"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// slowDiagOp is a diagonal contraction F_i(x) = 0.5 x_i + b_i whose
// component 0 sleeps for the first slowEvals evaluations. The diagonal
// makes every block independent: all workers but the owner of component 0
// converge almost immediately and then sit passive while that owner crawls
// — the workload that made the old 50µs sleep-polling idle loops burn CPU
// and allocate a timer per poll.
type slowDiagOp struct {
	n         int
	b         []float64
	sleep     time.Duration
	slowEvals int64
	evals     atomic.Int64
}

func (o *slowDiagOp) Dim() int     { return o.n }
func (o *slowDiagOp) Name() string { return "slowDiag" }
func (o *slowDiagOp) Component(i int, x []float64) float64 {
	if i == 0 && o.evals.Add(1) <= o.slowEvals {
		time.Sleep(o.sleep)
	}
	return 0.5*x[i] + o.b[i]
}

// TestMessagePassiveIdleIsEventDriven pins the event-driven idle paths of
// the message engine: while three of four workers are passive for hundreds
// of milliseconds, neither they nor the supervisor may burn a poll loop.
// The sharp assertion is on allocations — the old implementation allocated
// a fresh timer per 50µs poll per idle goroutine (tens of thousands over
// this run), the event-driven one allocates nothing while idle — with a
// coarse CPU-time ceiling on top.
func TestMessagePassiveIdleIsEventDriven(t *testing.T) {
	op := &slowDiagOp{
		n:         8,
		b:         []float64{1, 2, 3, 4, 5, 6, 7, 8},
		sleep:     7 * time.Millisecond,
		slowEvals: 60, // component 0 needs ~35 evals to converge: ≈ 250ms of near-idle run time for everyone else
	}

	cpuTime := func() time.Duration {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			t.Fatal(err)
		}
		u := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
		s := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
		return u + s
	}
	var before, after gort.MemStats
	gort.GC()
	gort.ReadMemStats(&before)
	cpuBefore := cpuTime()
	wallBefore := time.Now()

	res, err := RunMessage(Config{
		Op: op, Workers: 4, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("slow-worker run did not converge")
	}

	wall := time.Since(wallBefore)
	cpu := cpuTime() - cpuBefore
	gort.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	if wall < 150*time.Millisecond {
		t.Fatalf("run finished in %v; the idle window this test needs never existed", wall)
	}
	// The old polling loops allocated >10k timers over a window this long;
	// the event-driven paths allocate only startup state and pooled churn.
	if allocs > 5000 {
		t.Errorf("idle run allocated %d objects (event-driven paths should stay in the hundreds)", allocs)
	}
	// Three passive workers + supervisor must not busy-spin: their share of
	// a mostly-sleeping run has to stay well under one core.
	if cpu > wall/2 {
		t.Errorf("run burned %v CPU over %v wall while mostly idle", cpu, wall)
	}
}
