// Package runtime executes asynchronous iterations with real concurrency:
// one goroutine per worker. Two transports are provided, mirroring the
// paper's two data-exchange settings:
//
//   - shared memory with per-coordinate atomic cells (the one-sided
//     put()/get() SHMEM style of [10]; flexible communication publishes
//     partial values mid-phase), and
//   - message passing over channels (the distributed-memory setting of
//     [6],[9]), with the supervisor-based termination detection of [22]
//     (quiescence = all local residuals below tolerance and no messages in
//     flight).
//
// Both transports — and the TCP transport in internal/dist — decide
// termination with the two-phase double-collect quiescence protocol of
// quiescence.go: a stop is broadcast only after two identical observations
// of "every worker passive, nothing in flight" bracketing an optional
// re-certification, with workers publishing reactivation before they
// acknowledge the input that caused it. See the quiescence.go package
// comment for the protocol and its soundness argument.
//
// Real schedulers are nondeterministic, so tests assert invariants
// (convergence, termination, race freedom) rather than exact traces; the
// deterministic studies live in internal/core and internal/des.
package runtime

import (
	"math"
	"sync/atomic"
)

// AtomicVector is a float64 vector with atomic per-coordinate access: the
// shared iterate of Hogwild-style asynchronous relaxation. Coordinates are
// stored as uint64 bit patterns.
type AtomicVector struct {
	bits []atomic.Uint64
}

// NewAtomicVector initializes the vector to x0.
func NewAtomicVector(x0 []float64) *AtomicVector {
	v := &AtomicVector{bits: make([]atomic.Uint64, len(x0))}
	for i, x := range x0 {
		v.bits[i].Store(math.Float64bits(x))
	}
	return v
}

// Len returns the dimension.
func (v *AtomicVector) Len() int { return len(v.bits) }

// Load atomically reads coordinate i.
func (v *AtomicVector) Load(i int) float64 {
	return math.Float64frombits(v.bits[i].Load())
}

// Store atomically writes coordinate i.
func (v *AtomicVector) Store(i int, x float64) {
	v.bits[i].Store(math.Float64bits(x))
}

// Snapshot copies the vector into dst (coordinatewise atomic; the snapshot
// is not a consistent cut, which is exactly the asynchronous reading model).
func (v *AtomicVector) Snapshot(dst []float64) {
	for i := range dst {
		dst[i] = v.Load(i)
	}
}

// Copy returns a freshly allocated snapshot.
func (v *AtomicVector) Copy() []float64 {
	dst := make([]float64, len(v.bits))
	v.Snapshot(dst)
	return dst
}
