package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// blockMsg carries one worker's freshly computed block to a peer. The
// payload is a pooled buffer: receivers copy it into their view and return
// it to the pool, so the steady-state broadcast traffic allocates nothing.
type blockMsg struct {
	from int
	lo   int
	vals *[]float64
}

// RunMessage executes the message-passing transport: each worker owns its
// block, keeps a private view of the full vector, and exchanges blocks over
// buffered channels. Active workers send without blocking — when a peer's
// inbox is full the message is dropped, the transient-fault regime the
// paper argues asynchronous iterations tolerate (later messages carry
// fresher values).
//
// Termination follows the supervisor scheme of [22]: a worker whose block
// displacement stays below Tol for SweepsBelowTol consecutive sweeps turns
// passive — it reliably re-broadcasts its final block, stops computing and
// only drains its inbox; a received value that breaks local convergence
// reactivates it. The run is quiescent when every worker is passive and no
// messages are in flight (sent == delivered + dropped), at which point the
// supervisor broadcasts stop.
func RunMessage(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	blocks := vec.Blocks(n, cfg.Workers)
	p := len(blocks)

	inboxes := make([]chan blockMsg, p)
	for w := range inboxes {
		inboxes[w] = make(chan blockMsg, 16*p)
	}

	// Message payload pool, sized to the largest block. Senders Get, fill
	// and ship; receivers copy out and Put back (drops Put immediately).
	// Payloads abandoned in inboxes when the run stops are reclaimed by GC.
	maxBlock := 0
	for _, b := range blocks {
		if sz := b[1] - b[0]; sz > maxBlock {
			maxBlock = sz
		}
	}
	valPool := sync.Pool{New: func() interface{} {
		buf := make([]float64, maxBlock)
		return &buf
	}}

	var stop atomic.Bool
	var sent, delivered, dropped atomic.Int64
	var doneWorkers atomic.Int64
	passive := make([]atomic.Bool, p)
	exited := make([]atomic.Bool, p)
	updates := make([]int, p)
	finals := make([][]float64, p)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer doneWorkers.Add(1)
			defer exited[w].Store(true)
			lo, hi := blocks[w][0], blocks[w][1]
			view := make([]float64, n)
			copy(view, x0)
			out := make([]float64, hi-lo)
			scr := cfg.workerScratch(w)

			receive := func(m blockMsg) {
				copy(view[m.lo:m.lo+len(*m.vals)], *m.vals)
				valPool.Put(m.vals)
				delivered.Add(1)
			}
			newPayload := func(src []float64) *[]float64 {
				vp := valPool.Get().(*[]float64)
				*vp = (*vp)[:len(src)]
				copy(*vp, src)
				return vp
			}
			drain := func() bool {
				got := false
				for {
					select {
					case m := <-inboxes[w]:
						receive(m)
						got = true
					default:
						return got
					}
				}
			}
			blockDelta := func() float64 {
				d := 0.0
				for c := lo; c < hi; c++ {
					v := operators.EvalComponent(cfg.Op, scr, c, view) - view[c]
					if v < 0 {
						v = -v
					}
					if v > d {
						d = v
					}
				}
				return d
			}
			// sendReliable retries a full send, draining our own inbox
			// between attempts so no cyclic wait can form. It only gives up
			// when the run is stopping or the receiver has exited (an
			// exited peer never drains; its view no longer matters because
			// the owner's own block values remain authoritative).
			// Termination detection depends on finals being truly reliable:
			// a lost final would let the system quiesce on inconsistent
			// views.
			sendReliable := func(q int, m blockMsg) {
				sent.Add(1)
				for {
					select {
					case inboxes[q] <- m:
						return
					default:
						drain()
						runtime.Gosched()
					}
					if stop.Load() || exited[q].Load() {
						valPool.Put(m.vals)
						dropped.Add(1)
						return
					}
				}
			}

			streak := 0
			for k := 0; k < cfg.MaxUpdatesPerWorker; k++ {
				if stop.Load() {
					break
				}
				if passive[w].Load() {
					// Passive: only drain; reactivate if new data breaks
					// local convergence. Wait for one message then drain
					// the rest so a burst cannot back up the inbox.
					got := false
					select {
					case m := <-inboxes[w]:
						receive(m)
						got = true
					case <-time.After(50 * time.Microsecond):
					}
					if drain() {
						got = true
					}
					if got && blockDelta() > cfg.Tol {
						passive[w].Store(false)
						streak = 0
					}
					continue // passivity consumes budget, bounding the loop
				}
				drain()
				delta := 0.0
				for c := lo; c < hi; c++ {
					out[c-lo] = operators.EvalComponent(cfg.Op, scr, c, view)
					if d := out[c-lo] - view[c]; d > delta {
						delta = d
					} else if -d > delta {
						delta = -d
					}
				}
				copy(view[lo:hi], out)
				updates[w]++
				// Lossy broadcast while active.
				for q := 0; q < p; q++ {
					if q == w {
						continue
					}
					m := blockMsg{from: w, lo: lo, vals: newPayload(out)}
					sent.Add(1)
					select {
					case inboxes[q] <- m:
					default:
						valPool.Put(m.vals)
						dropped.Add(1)
					}
				}
				if cfg.Tol > 0 {
					if delta <= cfg.Tol {
						streak++
					} else {
						streak = 0
					}
					if streak >= cfg.SweepsBelowTol {
						// Reliable final broadcast, then go passive.
						for q := 0; q < p; q++ {
							if q == w {
								continue
							}
							sendReliable(q, blockMsg{from: w, lo: lo, vals: newPayload(view[lo:hi])})
						}
						if blockDelta() > cfg.Tol {
							streak = 0 // drained data broke convergence
							continue
						}
						passive[w].Store(true)
					}
				}
			}
			finals[w] = append([]float64(nil), view[lo:hi]...)
		}(w)
	}

	// Supervisor: poll for quiescence.
	if cfg.Tol > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if doneWorkers.Load() == int64(p) {
					return // every worker hit its update bound
				}
				all := true
				for q := 0; q < p; q++ {
					if !passive[q].Load() {
						all = false
						break
					}
				}
				inFlight := sent.Load() - delivered.Load() - dropped.Load()
				if all && inFlight == 0 {
					stop.Store(true)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	x := make([]float64, n)
	for w, b := range blocks {
		if finals[w] != nil {
			copy(x[b[0]:b[1]], finals[w])
		}
	}
	return &Result{
		X:                x,
		Converged:        stop.Load(),
		UpdatesPerWorker: updates,
		Elapsed:          time.Since(start),
		MessagesSent:     sent.Load(),
		MessagesDropped:  dropped.Load(),
	}, nil
}
