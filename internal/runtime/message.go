package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// blockMsg carries one worker's freshly computed block to a peer. The
// payload is a pooled buffer: receivers copy it into their view and return
// it to the pool, so the steady-state broadcast traffic allocates nothing.
type blockMsg struct {
	from int
	lo   int
	vals *[]float64
}

// supervisorFallback bounds how long the supervisor waits for a wake signal
// before re-collecting anyway — a safety net behind the event-driven
// notifications, three orders of magnitude rarer than the old 50µs poll.
const supervisorFallback = 5 * time.Millisecond

// RunMessage executes the message-passing transport: each worker owns its
// block, keeps a private view of the full vector, and exchanges blocks over
// buffered channels. Active workers send without blocking — when a peer's
// inbox is full the message is dropped, the transient-fault regime the
// paper argues asynchronous iterations tolerate (later messages carry
// fresher values).
//
// Termination combines the supervisor scheme of [22] with the two-phase
// double-collect protocol of this package (see quiescence.go): a worker
// whose block displacement stays below Tol for SweepsBelowTol consecutive
// sweeps turns passive — it reliably re-broadcasts its final block, stops
// computing and blocks on its inbox; a received message reactivates it
// BEFORE the delivery is acknowledged, so the supervisor can never observe
// "all passive, nothing in flight" while a reactivating message is being
// absorbed. The supervisor broadcasts stop only after two identical quiet
// collects.
//
// Idle paths are event-driven, not polled: a passive worker sleeps on its
// inbox and the stop channel (zero CPU, zero timer allocations while
// nothing happens), and the supervisor sleeps on a wake channel that
// workers signal at every quiescence-relevant transition — going passive,
// exiting, or draining a message addressed to an exited worker. Workers
// that exhaust their budget count as parked for the supervisor's collect
// (with undeliverable messages in their inboxes reaped as drops), so a run
// where some workers exhaust their budgets while others sit passive still
// terminates promptly — the strict all-passive double collect alone then
// decides whether the end state counts as converged.
func RunMessage(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	blocks := vec.Blocks(n, cfg.Workers)
	p := len(blocks)

	inboxes := make([]chan blockMsg, p)
	for w := range inboxes {
		inboxes[w] = make(chan blockMsg, 16*p)
	}

	// Message payload pool, sized to the largest block. Senders Get, fill
	// and ship; receivers copy out and Put back (drops Put immediately).
	// Payloads abandoned in inboxes when the run stops are reclaimed by GC.
	maxBlock := 0
	for _, b := range blocks {
		if sz := b[1] - b[0]; sz > maxBlock {
			maxBlock = sz
		}
	}
	valPool := sync.Pool{New: func() interface{} {
		buf := make([]float64, maxBlock)
		return &buf
	}}

	var stop atomic.Bool
	var converged atomic.Bool
	var cancelled atomic.Bool
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	halt := func() {
		stop.Store(true)
		stopOnce.Do(func() { close(stopCh) })
	}
	// Cancellation monitor: Done becomes the same halt broadcast the
	// supervisor uses, waking passive workers off their inboxes.
	if cfg.Done != nil {
		go func() {
			select {
			case <-cfg.Done:
				cancelled.Store(true)
				halt()
			case <-stopCh:
			}
		}()
	}
	// wake is the supervisor's doorbell: non-blocking, capacity one —
	// a pending ring is as good as many.
	wake := make(chan struct{}, 1)
	ring := func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}

	var doneWorkers atomic.Int64
	q := NewTracker(p)
	exited := make([]atomic.Bool, p)
	updates := make([]int, p)
	finals := make([][]float64, p)

	// Reapers drain the inbox of a worker that exited with budget spent:
	// messages already queued there (and the rare send that lands before
	// the sender notices the exit) can never be delivered, so they are
	// accounted as drops — otherwise the in-flight count could never reach
	// zero again and the supervisor could never certify an end state.
	var reaperWg sync.WaitGroup
	reap := func(w int) {
		reaperWg.Add(1)
		go func() {
			defer reaperWg.Done()
			for {
				select {
				case m := <-inboxes[w]:
					valPool.Put(m.vals)
					q.MsgDropped()
					ring()
				case <-stopCh:
					return
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer doneWorkers.Add(1)
			defer func() {
				// Publish the exit for the supervisor's parked collect:
				// exited flag first, then the epoch bump that invalidates
				// any collect straddling the transition, then the doorbell.
				exited[w].Store(true)
				q.epoch.Add(1)
				reap(w)
				ring()
			}()
			lo, hi := blocks[w][0], blocks[w][1]
			view := make([]float64, n)
			copy(view, x0)
			out := make([]float64, hi-lo)
			chk := make([]float64, hi-lo) // blockDelta's evaluation buffer
			scr := cfg.workerScratch(w)

			receive := func(m blockMsg) {
				copy(view[m.lo:m.lo+len(*m.vals)], *m.vals)
				valPool.Put(m.vals)
				q.MsgDelivered()
			}
			newPayload := func(src []float64) *[]float64 {
				vp := valPool.Get().(*[]float64)
				*vp = (*vp)[:len(src)]
				copy(*vp, src)
				return vp
			}
			drain := func() bool {
				got := false
				for {
					select {
					case m := <-inboxes[w]:
						receive(m)
						got = true
					default:
						return got
					}
				}
			}
			blockDelta := func() float64 {
				operators.EvalBlock(cfg.Op, scr, lo, hi, view, chk)
				d := 0.0
				for i, v := range chk {
					v -= view[lo+i]
					if v < 0 {
						v = -v
					}
					if v > d {
						d = v
					}
				}
				return d
			}
			// sendReliable retries a full send, draining our own inbox
			// between attempts so no cyclic wait can form. It only gives up
			// when the run is stopping or the receiver has exited (an
			// exited peer never drains; its view no longer matters because
			// the owner's own block values remain authoritative).
			// Termination detection depends on finals being truly reliable:
			// a lost final would let the system quiesce on inconsistent
			// views.
			sendReliable := func(qi int, m blockMsg) {
				q.MsgSent()
				for {
					select {
					case inboxes[qi] <- m:
						return
					default:
						drain()
						runtime.Gosched()
					}
					if stop.Load() || exited[qi].Load() {
						valPool.Put(m.vals)
						q.MsgDropped()
						return
					}
				}
			}

			streak := 0
			for k := 0; k < cfg.MaxUpdatesPerWorker; k++ {
				if stop.Load() {
					break
				}
				if q.IsPassive(w) {
					// Passive: block on the inbox with no timer — the only
					// events that matter arrive there or on stopCh. Any
					// receipt reactivates the worker BEFORE the delivery is
					// acknowledged (the protocol's ordering rule): the
					// supervisor either still sees the message in flight
					// or sees this worker active. After absorbing the
					// burst the worker re-checks local convergence and
					// either resumes computing or re-passivates (the epoch
					// bumps of that round trip invalidate any collect in
					// progress, and the re-passivation rings the doorbell).
					select {
					case m := <-inboxes[w]:
						q.SetActive(w)
						receive(m)
						drain()
						if blockDelta() > cfg.Tol {
							streak = 0 // new data broke convergence: resume
						} else {
							q.SetPassive(w)
							ring()
						}
					case <-stopCh:
					}
					continue // an event while passive consumes budget, bounding the loop
				}
				drain()
				// Phase evaluation: the whole block in one coupled-operator
				// pass (shared prox/gradient work amortized across the block).
				operators.EvalBlock(cfg.Op, scr, lo, hi, view, out)
				delta := 0.0
				for i, v := range out {
					if d := v - view[lo+i]; d > delta {
						delta = d
					} else if -d > delta {
						delta = -d
					}
				}
				copy(view[lo:hi], out)
				updates[w]++
				if cfg.Progress != nil {
					cfg.Progress.Add(1)
				}
				// Lossy broadcast while active.
				for qi := 0; qi < p; qi++ {
					if qi == w {
						continue
					}
					m := blockMsg{from: w, lo: lo, vals: newPayload(out)}
					q.MsgSent()
					select {
					case inboxes[qi] <- m:
					default:
						valPool.Put(m.vals)
						q.MsgDropped()
					}
				}
				if cfg.Tol > 0 {
					if delta <= cfg.Tol {
						streak++
					} else {
						streak = 0
					}
					if streak >= cfg.SweepsBelowTol {
						// Reliable final broadcast, then go passive.
						for qi := 0; qi < p; qi++ {
							if qi == w {
								continue
							}
							sendReliable(qi, blockMsg{from: w, lo: lo, vals: newPayload(view[lo:hi])})
						}
						if blockDelta() > cfg.Tol {
							streak = 0 // drained data broke convergence
							continue
						}
						q.SetPassive(w)
						ring()
					}
				}
			}
			finals[w] = append([]float64(nil), view[lo:hi]...)
		}(w)
	}

	// Supervisor: certify an end state with the two-phase double collect,
	// sleeping on the doorbell between attempts. The collect treats an
	// exited worker as parked — it can publish nothing further — so the
	// run also ends when every worker is passive-or-exited with nothing in
	// flight; Converged is then decided by the strict all-passive collect.
	if cfg.Tol > 0 {
		observePark := func() Observation {
			o := Observation{AllPassive: true}
			for w := 0; w < p; w++ {
				// Flags before counters, the Tracker.Observe collect order
				// the protocol's soundness argument relies on.
				if !q.passive[w].Load() && !exited[w].Load() {
					o.AllPassive = false
					break
				}
			}
			o.Epoch = q.epoch.Load()
			o.Sent = q.sent.Load()
			o.Delivered = q.delivered.Load()
			o.Dropped = q.dropped.Load()
			return o
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if doneWorkers.Load() == int64(p) {
					return // every worker hit its update bound
				}
				if DoubleCollect(observePark, nil) {
					// The system is frozen: nobody computes, nothing is in
					// flight. Converged only if every worker is genuinely
					// passive (locally converged) — an exited-active worker
					// means a budget ran out first.
					converged.Store(q.Observe().AllPassive)
					halt()
					return
				}
				select {
				case <-wake:
				case <-time.After(supervisorFallback):
				}
			}
		}()
	}
	wg.Wait()
	halt() // release reapers (and make stop state final) on every path
	reaperWg.Wait()

	x := make([]float64, n)
	for w, b := range blocks {
		if finals[w] != nil {
			copy(x[b[0]:b[1]], finals[w])
		}
	}
	return &Result{
		X:                x,
		Converged:        converged.Load(),
		UpdatesPerWorker: updates,
		Elapsed:          time.Since(start),
		MessagesSent:     q.Sent(),
		MessagesDropped:  q.Dropped(),
		Cancelled:        cancelled.Load(),
	}, nil
}
