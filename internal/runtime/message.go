package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/operators"
	"repro/internal/vec"
)

// blockMsg carries one worker's freshly computed block to a peer. The
// payload is a pooled buffer: receivers copy it into their view and return
// it to the pool, so the steady-state broadcast traffic allocates nothing.
type blockMsg struct {
	from int
	lo   int
	vals *[]float64
}

// RunMessage executes the message-passing transport: each worker owns its
// block, keeps a private view of the full vector, and exchanges blocks over
// buffered channels. Active workers send without blocking — when a peer's
// inbox is full the message is dropped, the transient-fault regime the
// paper argues asynchronous iterations tolerate (later messages carry
// fresher values).
//
// Termination combines the supervisor scheme of [22] with the two-phase
// double-collect protocol of this package (see quiescence.go): a worker
// whose block displacement stays below Tol for SweepsBelowTol consecutive
// sweeps turns passive — it reliably re-broadcasts its final block, stops
// computing and only drains its inbox; a received message reactivates it
// BEFORE the delivery is acknowledged, so the supervisor can never observe
// "all passive, nothing in flight" while a reactivating message is being
// absorbed. The supervisor broadcasts stop only after two identical quiet
// collects.
func RunMessage(cfg Config) (*Result, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	blocks := vec.Blocks(n, cfg.Workers)
	p := len(blocks)

	inboxes := make([]chan blockMsg, p)
	for w := range inboxes {
		inboxes[w] = make(chan blockMsg, 16*p)
	}

	// Message payload pool, sized to the largest block. Senders Get, fill
	// and ship; receivers copy out and Put back (drops Put immediately).
	// Payloads abandoned in inboxes when the run stops are reclaimed by GC.
	maxBlock := 0
	for _, b := range blocks {
		if sz := b[1] - b[0]; sz > maxBlock {
			maxBlock = sz
		}
	}
	valPool := sync.Pool{New: func() interface{} {
		buf := make([]float64, maxBlock)
		return &buf
	}}

	var stop atomic.Bool
	var doneWorkers atomic.Int64
	q := NewTracker(p)
	exited := make([]atomic.Bool, p)
	updates := make([]int, p)
	finals := make([][]float64, p)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer doneWorkers.Add(1)
			defer exited[w].Store(true)
			lo, hi := blocks[w][0], blocks[w][1]
			view := make([]float64, n)
			copy(view, x0)
			out := make([]float64, hi-lo)
			scr := cfg.workerScratch(w)

			receive := func(m blockMsg) {
				copy(view[m.lo:m.lo+len(*m.vals)], *m.vals)
				valPool.Put(m.vals)
				q.MsgDelivered()
			}
			newPayload := func(src []float64) *[]float64 {
				vp := valPool.Get().(*[]float64)
				*vp = (*vp)[:len(src)]
				copy(*vp, src)
				return vp
			}
			drain := func() bool {
				got := false
				for {
					select {
					case m := <-inboxes[w]:
						receive(m)
						got = true
					default:
						return got
					}
				}
			}
			blockDelta := func() float64 {
				d := 0.0
				for c := lo; c < hi; c++ {
					v := operators.EvalComponent(cfg.Op, scr, c, view) - view[c]
					if v < 0 {
						v = -v
					}
					if v > d {
						d = v
					}
				}
				return d
			}
			// sendReliable retries a full send, draining our own inbox
			// between attempts so no cyclic wait can form. It only gives up
			// when the run is stopping or the receiver has exited (an
			// exited peer never drains; its view no longer matters because
			// the owner's own block values remain authoritative).
			// Termination detection depends on finals being truly reliable:
			// a lost final would let the system quiesce on inconsistent
			// views.
			sendReliable := func(qi int, m blockMsg) {
				q.MsgSent()
				for {
					select {
					case inboxes[qi] <- m:
						return
					default:
						drain()
						runtime.Gosched()
					}
					if stop.Load() || exited[qi].Load() {
						valPool.Put(m.vals)
						q.MsgDropped()
						return
					}
				}
			}

			streak := 0
			for k := 0; k < cfg.MaxUpdatesPerWorker; k++ {
				if stop.Load() {
					break
				}
				if q.IsPassive(w) {
					// Passive: wait briefly for a message. Any receipt
					// reactivates the worker BEFORE the delivery is
					// acknowledged (the protocol's ordering rule): the
					// supervisor either still sees the message in flight
					// or sees this worker active. After absorbing the
					// burst the worker re-checks local convergence and
					// either resumes computing or re-passivates (the epoch
					// bumps of that round trip invalidate any collect in
					// progress).
					select {
					case m := <-inboxes[w]:
						q.SetActive(w)
						receive(m)
						drain()
						if blockDelta() > cfg.Tol {
							streak = 0 // new data broke convergence: resume
						} else {
							q.SetPassive(w)
						}
					case <-time.After(50 * time.Microsecond):
					}
					continue // passivity consumes budget, bounding the loop
				}
				drain()
				delta := 0.0
				for c := lo; c < hi; c++ {
					out[c-lo] = operators.EvalComponent(cfg.Op, scr, c, view)
					if d := out[c-lo] - view[c]; d > delta {
						delta = d
					} else if -d > delta {
						delta = -d
					}
				}
				copy(view[lo:hi], out)
				updates[w]++
				// Lossy broadcast while active.
				for qi := 0; qi < p; qi++ {
					if qi == w {
						continue
					}
					m := blockMsg{from: w, lo: lo, vals: newPayload(out)}
					q.MsgSent()
					select {
					case inboxes[qi] <- m:
					default:
						valPool.Put(m.vals)
						q.MsgDropped()
					}
				}
				if cfg.Tol > 0 {
					if delta <= cfg.Tol {
						streak++
					} else {
						streak = 0
					}
					if streak >= cfg.SweepsBelowTol {
						// Reliable final broadcast, then go passive.
						for qi := 0; qi < p; qi++ {
							if qi == w {
								continue
							}
							sendReliable(qi, blockMsg{from: w, lo: lo, vals: newPayload(view[lo:hi])})
						}
						if blockDelta() > cfg.Tol {
							streak = 0 // drained data broke convergence
							continue
						}
						q.SetPassive(w)
					}
				}
			}
			finals[w] = append([]float64(nil), view[lo:hi]...)
		}(w)
	}

	// Supervisor: poll for quiescence with the two-phase double collect.
	if cfg.Tol > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if doneWorkers.Load() == int64(p) {
					return // every worker hit its update bound
				}
				if q.Quiescent(nil) {
					stop.Store(true)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	x := make([]float64, n)
	for w, b := range blocks {
		if finals[w] != nil {
			copy(x[b[0]:b[1]], finals[w])
		}
	}
	return &Result{
		X:                x,
		Converged:        stop.Load(),
		UpdatesPerWorker: updates,
		Elapsed:          time.Since(start),
		MessagesSent:     q.Sent(),
		MessagesDropped:  q.Dropped(),
	}, nil
}
