package steering

import (
	"sort"
	"testing"
)

func TestCyclic(t *testing.T) {
	p := NewCyclic(3)
	want := []int{0, 1, 2, 0, 1, 2}
	for j := 1; j <= 6; j++ {
		s := p.Select(j)
		if len(s) != 1 || s[0] != want[j-1] {
			t.Fatalf("Select(%d) = %v, want [%d]", j, s, want[j-1])
		}
	}
}

func TestAll(t *testing.T) {
	p := NewAll(4)
	s := p.Select(1)
	if len(s) != 4 {
		t.Fatalf("All returned %v", s)
	}
	for i, v := range s {
		if v != i {
			t.Fatalf("All returned %v", s)
		}
	}
}

func TestBlockCyclic(t *testing.T) {
	p := NewBlockCyclic(5, 2)
	s1 := p.Select(1)
	s2 := p.Select(2)
	s3 := p.Select(3)
	if len(s1)+len(s2) != 5 {
		t.Fatalf("blocks don't cover: %v %v", s1, s2)
	}
	if !equalInts(s1, s3) {
		t.Fatalf("cycle broken: %v vs %v", s1, s3)
	}
	union := append(append([]int{}, s1...), s2...)
	sort.Ints(union)
	for i, v := range union {
		if v != i {
			t.Fatalf("union not {0..4}: %v", union)
		}
	}
}

func TestBlockCyclicClamps(t *testing.T) {
	p := NewBlockCyclic(2, 10)
	seen := map[int]bool{}
	for j := 1; j <= 4; j++ {
		for _, i := range p.Select(j) {
			seen[i] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("expected both components, saw %v", seen)
	}
}

func TestRandomSubsetShape(t *testing.T) {
	p := NewRandomSubset(10, 3, 42)
	for j := 1; j <= 100; j++ {
		s := p.Select(j)
		if len(s) != 3 {
			t.Fatalf("size %d, want 3", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("bad subset %v", s)
			}
			seen[v] = true
		}
	}
}

func TestRandomSubsetDeterministicUnderSeed(t *testing.T) {
	a := NewRandomSubset(10, 3, 7)
	b := NewRandomSubset(10, 3, 7)
	for j := 1; j <= 50; j++ {
		if !equalInts(a.Select(j), b.Select(j)) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGaussSouthwellGreedy(t *testing.T) {
	p := NewGaussSouthwell(4)
	resid := []float64{0.1, -5, 2, 0}
	p.SetResidualFunc(func(i int) float64 { return resid[i] })
	s := p.Select(1)
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("GS picked %v, want [1]", s)
	}
	resid[1] = 0
	s = p.Select(2)
	if s[0] != 2 {
		t.Fatalf("GS picked %v, want [2]", s)
	}
}

func TestGaussSouthwellFallbackCyclic(t *testing.T) {
	p := NewGaussSouthwell(3)
	if s := p.Select(2); s[0] != 1 {
		t.Fatalf("fallback not cyclic: %v", s)
	}
}

func TestFairEnforcesConditionC(t *testing.T) {
	// A pathological inner policy that always selects component 0.
	inner := fixed{comp: 0}
	p := NewFair(inner, 5, 3)
	ok, comp, at := CheckConditionC(p, 5, 500, 5)
	if !ok {
		t.Fatalf("Fair failed condition c: component %d starving at %d", comp, at)
	}
}

func TestUnfairPolicyDetected(t *testing.T) {
	ok, comp, _ := CheckConditionC(fixed{comp: 0}, 3, 100, 10)
	if ok {
		t.Fatal("starvation not detected")
	}
	if comp == 0 {
		t.Fatal("component 0 is the only one selected; it cannot starve")
	}
}

func TestAllPoliciesSatisfyConditionC(t *testing.T) {
	n := 6
	policies := []Policy{
		NewCyclic(n),
		NewAll(n),
		NewBlockCyclic(n, 3),
		NewFair(NewRandomSubset(n, 2, 3), n, 8),
		NewFair(NewGaussSouthwell(n), n, 8),
	}
	for _, p := range policies {
		ok, comp, at := CheckConditionC(p, n, 1000, 3*n+10)
		if !ok {
			t.Errorf("%s: component %d starving at %d", p.Name(), comp, at)
		}
	}
}

func TestFairForwardsResiduals(t *testing.T) {
	gs := NewGaussSouthwell(4)
	p := NewFair(gs, 4, 100)
	p.SetResidualFunc(func(i int) float64 {
		if i == 3 {
			return 10
		}
		return 0
	})
	s := p.Select(1)
	found := false
	for _, v := range s {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("residual func not forwarded; got %v", s)
	}
}

func TestSelectionsNonEmptyAndInRange(t *testing.T) {
	n := 7
	policies := []Policy{
		NewCyclic(n), NewAll(n), NewBlockCyclic(n, 2),
		NewRandomSubset(n, 3, 1), NewGaussSouthwell(n),
		NewFair(NewCyclic(n), n, 4),
	}
	for _, p := range policies {
		for j := 1; j <= 200; j++ {
			s := p.Select(j)
			if len(s) == 0 {
				t.Fatalf("%s: empty S_%d", p.Name(), j)
			}
			for _, v := range s {
				if v < 0 || v >= n {
					t.Fatalf("%s: out of range %d", p.Name(), v)
				}
			}
		}
	}
}

func TestNamesNonEmpty(t *testing.T) {
	for _, p := range []Policy{NewCyclic(1), NewAll(1), NewBlockCyclic(2, 2), NewRandomSubset(2, 1, 1), NewGaussSouthwell(1), NewFair(NewCyclic(1), 1, 1)} {
		if p.Name() == "" {
			t.Error("empty name")
		}
	}
}

// fixed always selects a single fixed component.
type fixed struct{ comp int }

func (f fixed) Select(j int) []int { return []int{f.comp} }
func (f fixed) Name() string       { return "fixed" }

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
