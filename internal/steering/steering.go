// Package steering implements the steering policies of asynchronous
// iterations: the choice of the nonempty component sets S_j that are relaxed
// at each global iteration j (Definition 1 of the reproduced paper). The
// convergence theory only requires condition c) — every component occurs
// infinitely often — so the policy space is large; this package provides the
// classical ones plus a fairness wrapper that enforces condition c) around
// any inner policy.
package steering

import (
	"fmt"
	"sort"
)

// Policy produces the steering sequence S = {S_j}. Implementations must
// return a nonempty subset of {0, ..., n-1} for every j >= 1. Policies are
// queried with strictly increasing j by the engines; stateful policies may
// rely on that.
type Policy interface {
	// Select returns S_j for the 1-based iteration j. Callers must not
	// mutate the returned slice.
	Select(j int) []int
	// Name identifies the policy in traces and experiment tables.
	Name() string
}

// ResidualAware is implemented by policies (e.g. Gauss–Southwell) that
// select components from current residual magnitudes. Engines that know how
// to compute per-component residuals wire the callback before iterating.
type ResidualAware interface {
	SetResidualFunc(f func(i int) float64)
}

// Cyclic relaxes exactly one component per iteration in round-robin order:
// S_j = {(j-1) mod n}. This is the classical free steering of sequential
// Gauss–Seidel.
type Cyclic struct {
	N   int
	buf [1]int
}

// NewCyclic returns a cyclic single-component policy over n components.
func NewCyclic(n int) *Cyclic {
	mustPositive(n)
	return &Cyclic{N: n}
}

func (c *Cyclic) Select(j int) []int {
	c.buf[0] = (j - 1) % c.N
	return c.buf[:]
}

func (c *Cyclic) Name() string { return fmt.Sprintf("cyclic(n=%d)", c.N) }

// All relaxes every component at every iteration (Jacobi steering): S_j =
// {0, ..., n-1}. Combined with the Fresh delay model this is exactly the
// synchronous Jacobi method, the baseline of experiments E3/E10.
type All struct {
	idx []int
}

// NewAll returns the Jacobi steering over n components.
func NewAll(n int) *All {
	mustPositive(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return &All{idx: idx}
}

func (a *All) Select(j int) []int { return a.idx }
func (a *All) Name() string       { return fmt.Sprintf("all(n=%d)", len(a.idx)) }

// BlockCyclic relaxes one contiguous block per iteration in round-robin
// order; blocks model per-processor component ownership.
type BlockCyclic struct {
	blocks [][]int
}

// NewBlockCyclic partitions n components into m nearly equal contiguous
// blocks and cycles through them.
func NewBlockCyclic(n, m int) *BlockCyclic {
	mustPositive(n)
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	base, rem := n/m, n%m
	var blocks [][]int
	lo := 0
	for b := 0; b < m; b++ {
		sz := base
		if b < rem {
			sz++
		}
		blk := make([]int, sz)
		for k := range blk {
			blk[k] = lo + k
		}
		blocks = append(blocks, blk)
		lo += sz
	}
	return &BlockCyclic{blocks: blocks}
}

func (b *BlockCyclic) Select(j int) []int { return b.blocks[(j-1)%len(b.blocks)] }
func (b *BlockCyclic) Name() string       { return fmt.Sprintf("blockCyclic(m=%d)", len(b.blocks)) }

// rngState is a tiny xorshift so this package stays dependency-free and
// deterministic under explicit seeds.
type rngState uint64

func (r *rngState) next() uint64 {
	x := uint64(*r)
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rngState(x)
	return x
}

// RandomSubset relaxes a uniformly random nonempty subset of fixed size K
// each iteration. It models uncoordinated workers grabbing components.
// Condition c) holds almost surely but not deterministically; wrap in Fair
// for a hard guarantee.
type RandomSubset struct {
	N, K int
	rng  rngState
	buf  []int
}

// NewRandomSubset returns a policy drawing K distinct components per
// iteration from n, using the given seed.
func NewRandomSubset(n, k int, seed uint64) *RandomSubset {
	mustPositive(n)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return &RandomSubset{N: n, K: k, rng: rngState(seed | 1), buf: make([]int, 0, k)}
}

func (r *RandomSubset) Select(j int) []int {
	r.buf = r.buf[:0]
	// Floyd's algorithm for a K-subset of [0, N).
	chosen := make(map[int]bool, r.K)
	for v := r.N - r.K; v < r.N; v++ {
		t := int(r.rng.next() % uint64(v+1))
		if chosen[t] {
			t = v
		}
		chosen[t] = true
		r.buf = append(r.buf, t)
	}
	sort.Ints(r.buf)
	return r.buf
}

func (r *RandomSubset) Name() string { return fmt.Sprintf("randomSubset(k=%d)", r.K) }

// GaussSouthwell greedily relaxes the component with the largest current
// residual (plus optional ties within a tolerance). It needs a residual
// callback wired by the engine; until then it behaves cyclically.
type GaussSouthwell struct {
	N     int
	resid func(i int) float64
	buf   [1]int
}

// NewGaussSouthwell returns a greedy largest-residual policy.
func NewGaussSouthwell(n int) *GaussSouthwell {
	mustPositive(n)
	return &GaussSouthwell{N: n}
}

// SetResidualFunc implements ResidualAware.
func (g *GaussSouthwell) SetResidualFunc(f func(i int) float64) { g.resid = f }

func (g *GaussSouthwell) Select(j int) []int {
	if g.resid == nil {
		g.buf[0] = (j - 1) % g.N
		return g.buf[:]
	}
	best, bestV := 0, -1.0
	for i := 0; i < g.N; i++ {
		v := g.resid(i)
		if v < 0 {
			v = -v
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	g.buf[0] = best
	return g.buf[:]
}

func (g *GaussSouthwell) Name() string { return fmt.Sprintf("gaussSouthwell(n=%d)", g.N) }

// Fair wraps any policy and enforces condition c) deterministically: if a
// component has not been selected for MaxStarve consecutive iterations it is
// force-appended to S_j. With MaxStarve = s, every component occurs at least
// once in every window of s+1 iterations.
type Fair struct {
	Inner     Policy
	N         int
	MaxStarve int
	lastSeen  []int
	buf       []int
}

// NewFair wraps inner over n components with the given starvation bound.
func NewFair(inner Policy, n, maxStarve int) *Fair {
	mustPositive(n)
	if maxStarve < 1 {
		maxStarve = 1
	}
	ls := make([]int, n)
	return &Fair{Inner: inner, N: n, MaxStarve: maxStarve, lastSeen: ls}
}

func (f *Fair) Select(j int) []int {
	inner := f.Inner.Select(j)
	f.buf = f.buf[:0]
	f.buf = append(f.buf, inner...)
	present := make(map[int]bool, len(inner))
	for _, i := range inner {
		present[i] = true
	}
	for i := 0; i < f.N; i++ {
		if !present[i] && j-f.lastSeen[i] > f.MaxStarve {
			f.buf = append(f.buf, i)
			present[i] = true
		}
	}
	for _, i := range f.buf {
		f.lastSeen[i] = j
	}
	sort.Ints(f.buf)
	return f.buf
}

func (f *Fair) Name() string { return fmt.Sprintf("fair(%s,s=%d)", f.Inner.Name(), f.MaxStarve) }

// SetResidualFunc forwards to the inner policy when it is residual-aware.
func (f *Fair) SetResidualFunc(fn func(i int) float64) {
	if ra, ok := f.Inner.(ResidualAware); ok {
		ra.SetResidualFunc(fn)
	}
}

// CheckConditionC verifies, over a finite horizon, that every component of
// {0..n-1} appears in every window of `window` consecutive iterations — the
// finite proxy for condition c). It returns ok and the first starving
// component/window start on failure.
//
// The policy is driven with increasing j, so stateful policies are exercised
// exactly as an engine would.
func CheckConditionC(p Policy, n, horizon, window int) (ok bool, comp, at int) {
	lastSeen := make([]int, n)
	for j := 1; j <= horizon; j++ {
		for _, i := range p.Select(j) {
			if i >= 0 && i < n {
				lastSeen[i] = j
			}
		}
		if j >= window {
			for i := 0; i < n; i++ {
				if j-lastSeen[i] >= window {
					return false, i, j
				}
			}
		}
	}
	return true, 0, 0
}

func mustPositive(n int) {
	if n < 1 {
		panic("steering: need at least one component")
	}
}
