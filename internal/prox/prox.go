// Package prox implements the proximal operators of separable non-smooth
// convex regularizers g, as used by the approximate gradient-type operator G
// of the paper's Definition 4:
//
//	prox_{gamma,g}(x) = argmin_v { g(v) + 1/(2 gamma) ||v - x||^2 }.
//
// Because g is separable (g(x) = sum_i g_i(x_i)), the prox decomposes into
// independent scalar maps, which is what lets asynchronous per-component
// updates apply it locally. Every map here is nonexpansive (1-Lipschitz) in
// each coordinate — the property the max-norm contraction argument of
// Theorem 1 needs — and the test suite property-checks that.
package prox

import (
	"fmt"
	"math"
)

// Prox is a separable proximal operator. Apply returns the scalar prox of
// coordinate i at v with step gamma; Value returns g_i(v) so objective
// values can be reported.
type Prox interface {
	Apply(i int, v, gamma float64) float64
	Value(i int, v float64) float64
	Name() string
}

// Zero is g = 0: the prox is the identity and the composite problem reduces
// to smooth minimization.
type Zero struct{}

func (Zero) Apply(i int, v, gamma float64) float64 { return v }
func (Zero) Value(i int, v float64) float64        { return 0 }
func (Zero) Name() string                          { return "zero" }

// L1 is g(x) = Lambda * ||x||_1, the lasso regularizer; its prox is the
// soft-thresholding operator.
type L1 struct{ Lambda float64 }

func (p L1) Apply(i int, v, gamma float64) float64 {
	t := gamma * p.Lambda
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

func (p L1) Value(i int, v float64) float64 { return p.Lambda * math.Abs(v) }
func (p L1) Name() string                   { return fmt.Sprintf("l1(%g)", p.Lambda) }

// SquaredL2 is g(x) = (Lambda/2) * ||x||^2; its prox is a shrinkage.
type SquaredL2 struct{ Lambda float64 }

func (p SquaredL2) Apply(i int, v, gamma float64) float64 {
	return v / (1 + gamma*p.Lambda)
}

func (p SquaredL2) Value(i int, v float64) float64 { return 0.5 * p.Lambda * v * v }
func (p SquaredL2) Name() string                   { return fmt.Sprintf("l2sq(%g)", p.Lambda) }

// ElasticNet is g(x) = L1w*||x||_1 + (L2w/2)*||x||^2; the prox composes
// soft-thresholding and shrinkage.
type ElasticNet struct{ L1w, L2w float64 }

func (p ElasticNet) Apply(i int, v, gamma float64) float64 {
	s := L1{Lambda: p.L1w}.Apply(i, v, gamma)
	return s / (1 + gamma*p.L2w)
}

func (p ElasticNet) Value(i int, v float64) float64 {
	return p.L1w*math.Abs(v) + 0.5*p.L2w*v*v
}

func (p ElasticNet) Name() string { return fmt.Sprintf("elasticNet(%g,%g)", p.L1w, p.L2w) }

// Box is the indicator of the box [Lo_i, Hi_i]; its prox is projection.
// A nil Lo (Hi) slice means unbounded below (above). Box projection is the
// constraint mechanism of the obstacle problem and of capacitated flows.
type Box struct {
	Lo, Hi []float64
}

// NewBoxScalar returns the box [lo, hi]^n.
func NewBoxScalar(n int, lo, hi float64) Box {
	l := make([]float64, n)
	h := make([]float64, n)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return Box{Lo: l, Hi: h}
}

func (p Box) Apply(i int, v, gamma float64) float64 {
	if p.Lo != nil && v < p.Lo[i] {
		v = p.Lo[i]
	}
	if p.Hi != nil && v > p.Hi[i] {
		v = p.Hi[i]
	}
	return v
}

func (p Box) Value(i int, v float64) float64 {
	// Indicator: 0 inside (within tolerance), +inf outside.
	const eps = 1e-12
	if p.Lo != nil && v < p.Lo[i]-eps {
		return math.Inf(1)
	}
	if p.Hi != nil && v > p.Hi[i]+eps {
		return math.Inf(1)
	}
	return 0
}

func (p Box) Name() string { return "box" }

// NonNeg is the indicator of the nonnegative orthant.
type NonNeg struct{}

func (NonNeg) Apply(i int, v, gamma float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func (NonNeg) Value(i int, v float64) float64 {
	if v < -1e-12 {
		return math.Inf(1)
	}
	return 0
}

func (NonNeg) Name() string { return "nonneg" }

// ApplyVec writes prox_{gamma,g}(src) into dst componentwise.
func ApplyVec(p Prox, dst, src []float64, gamma float64) {
	if len(dst) != len(src) {
		panic("prox: ApplyVec length mismatch")
	}
	for i := range src {
		dst[i] = p.Apply(i, src[i], gamma)
	}
}

// TotalValue returns g(x) = sum_i g_i(x_i).
func TotalValue(p Prox, x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += p.Value(i, v)
	}
	return s
}
