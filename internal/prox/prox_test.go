package prox

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoftThreshold(t *testing.T) {
	p := L1{Lambda: 1}
	cases := []struct{ v, gamma, want float64 }{
		{3, 1, 2},
		{-3, 1, -2},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
		{3, 0.5, 2.5},
	}
	for _, c := range cases {
		if got := p.Apply(0, c.v, c.gamma); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("soft(%v, gamma=%v) = %v, want %v", c.v, c.gamma, got, c.want)
		}
	}
}

func TestSquaredL2Shrink(t *testing.T) {
	p := SquaredL2{Lambda: 2}
	if got := p.Apply(0, 3, 0.5); math.Abs(got-1.5) > 1e-15 {
		t.Errorf("shrink = %v, want 1.5", got)
	}
}

func TestBoxProjection(t *testing.T) {
	p := NewBoxScalar(2, -1, 1)
	if got := p.Apply(0, 5, 1); got != 1 {
		t.Errorf("project above = %v", got)
	}
	if got := p.Apply(1, -5, 1); got != -1 {
		t.Errorf("project below = %v", got)
	}
	if got := p.Apply(0, 0.5, 1); got != 0.5 {
		t.Errorf("interior moved = %v", got)
	}
	if !math.IsInf(p.Value(0, 2), 1) {
		t.Error("indicator should be +inf outside")
	}
	if p.Value(0, 0.5) != 0 {
		t.Error("indicator should be 0 inside")
	}
}

func TestBoxHalfOpen(t *testing.T) {
	p := Box{Lo: []float64{0}} // only lower bound
	if got := p.Apply(0, -3, 1); got != 0 {
		t.Errorf("lower-only box = %v", got)
	}
	if got := p.Apply(0, 1e9, 1); got != 1e9 {
		t.Errorf("unbounded above clipped: %v", got)
	}
}

func TestNonNeg(t *testing.T) {
	p := NonNeg{}
	if p.Apply(0, -2, 1) != 0 || p.Apply(0, 2, 1) != 2 {
		t.Error("NonNeg projection wrong")
	}
}

func TestElasticNetReducesToParts(t *testing.T) {
	en := ElasticNet{L1w: 0.5, L2w: 0}
	l1 := L1{Lambda: 0.5}
	for _, v := range []float64{-2, -0.1, 0, 0.3, 4} {
		if math.Abs(en.Apply(0, v, 1)-l1.Apply(0, v, 1)) > 1e-15 {
			t.Errorf("elastic net with L2w=0 != soft threshold at %v", v)
		}
	}
	en2 := ElasticNet{L1w: 0, L2w: 0.7}
	l2 := SquaredL2{Lambda: 0.7}
	for _, v := range []float64{-2, 0.3, 4} {
		if math.Abs(en2.Apply(0, v, 1)-l2.Apply(0, v, 1)) > 1e-15 {
			t.Errorf("elastic net with L1w=0 != shrinkage at %v", v)
		}
	}
}

// Property: every prox map is nonexpansive per coordinate:
// |prox(a) - prox(b)| <= |a - b|. This is what Theorem 1's max-norm
// contraction argument requires of g.
func TestNonexpansiveness(t *testing.T) {
	maps := []Prox{
		Zero{}, L1{Lambda: 0.7}, SquaredL2{Lambda: 1.3},
		ElasticNet{L1w: 0.4, L2w: 0.9}, NewBoxScalar(1, -2, 3), NonNeg{},
	}
	for _, p := range maps {
		f := func(a, b float64, gRaw uint8) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			gamma := 0.01 + float64(gRaw)/64.0
			pa := p.Apply(0, a, gamma)
			pb := p.Apply(0, b, gamma)
			return math.Abs(pa-pb) <= math.Abs(a-b)+1e-12
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s not nonexpansive: %v", p.Name(), err)
		}
	}
}

// Property: the prox is the unique minimizer of g(v) + (1/2 gamma)(v-x)^2.
// Verify first-order optimality for L1 by comparing against a grid search.
func TestProxMinimizesObjective(t *testing.T) {
	p := L1{Lambda: 0.8}
	gamma := 0.5
	obj := func(v, x float64) float64 {
		return p.Value(0, v) + (v-x)*(v-x)/(2*gamma)
	}
	for _, x := range []float64{-3, -0.2, 0, 0.1, 2.4} {
		best := p.Apply(0, x, gamma)
		bestObj := obj(best, x)
		for dv := -2.0; dv <= 2.0; dv += 0.001 {
			if o := obj(best+dv, x); o < bestObj-1e-9 {
				t.Fatalf("prox(%v) = %v not a minimizer: %v beats %v", x, best, best+dv, bestObj)
			}
		}
	}
}

func TestApplyVecAndTotalValue(t *testing.T) {
	p := L1{Lambda: 1}
	src := []float64{3, -3, 0.5}
	dst := make([]float64, 3)
	ApplyVec(p, dst, src, 1)
	want := []float64{2, -2, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("ApplyVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if got := TotalValue(p, src); math.Abs(got-6.5) > 1e-15 {
		t.Errorf("TotalValue = %v, want 6.5", got)
	}
}

func TestApplyVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ApplyVec(Zero{}, make([]float64, 2), make([]float64, 3), 1)
}

func TestNames(t *testing.T) {
	for _, p := range []Prox{Zero{}, L1{1}, SquaredL2{1}, ElasticNet{1, 1}, Box{}, NonNeg{}} {
		if p.Name() == "" {
			t.Error("empty name")
		}
	}
}
