package operators

import (
	"runtime"
	"sync"

	"repro/internal/vec"
)

// Tuning holds the kernel-level performance knobs a Scratch carries into
// every block evaluation. The zero value is the default: untiled, serial.
// Every setting is bit-identical to the scalar reference — tiling carries
// the canonical 4-accumulator reduction across tiles, and parallel lanes
// write disjoint output rows — so tuning never changes a trajectory.
type Tuning struct {
	// Tile is the column-tile width for dense row-slab matvecs; 0 disables
	// tiling. Rounded down to a multiple of 4 (tiles must end on
	// 4-aligned boundaries to preserve the canonical reduction order).
	Tile int
	// Parallelism is the number of goroutine lanes a large block evaluation
	// may fan out over; 0 or 1 keeps evaluation on the calling goroutine.
	Parallelism int
	// Threshold is the minimum block height (hi-lo) at which fan-out
	// engages; 0 means DefaultParallelThreshold. Small slabs are cheaper
	// than a channel round-trip, so they always run inline.
	Threshold int
}

// DefaultParallelThreshold is the block height below which intra-block
// fan-out is never attempted (the join overhead would exceed the slab work).
const DefaultParallelThreshold = 64

func (t Tuning) threshold() int {
	if t.Threshold <= 0 {
		return DefaultParallelThreshold
	}
	return t.Threshold
}

// SetTuning installs the kernel tuning knobs on s. Engines call it once per
// solve on every worker scratch, so a pooled Scratch reused across jobs with
// different tuning always runs with the current job's settings.
func (s *Scratch) SetTuning(t Tuning) { s.tun = t }

// Tuning reports the currently installed knobs.
func (s *Scratch) Tuning() Tuning { return s.tun }

// Acc returns the tiled-matvec accumulator buffer resized to length n. It
// lives outside the Vec/Aux slot spaces so kernels can never collide with
// operator- or harness-owned slots.
func (s *Scratch) Acc(n int) []float64 {
	if cap(s.acc) < n {
		s.acc = make([]float64, n)
	}
	return s.acc[:n]
}

// Lane returns the k-th lane sub-scratch for intra-block fan-out, created
// lazily. Lane scratches inherit the tile setting but are always serial
// (Parallelism 1) so a lane can never recursively fan out.
func (s *Scratch) Lane(k int) *Scratch {
	for len(s.lanes) <= k {
		s.lanes = append(s.lanes, NewScratch())
	}
	sub := s.lanes[k]
	sub.tun = Tuning{Tile: s.tun.Tile, Parallelism: 1, Threshold: s.tun.Threshold}
	return sub
}

// laneExecutor is the process-wide worker pool behind intra-block fan-out.
// It is shared by every Scratch (a Scratch has no Close, and the server
// pools scratches indefinitely, so per-Scratch goroutines would leak) and
// started lazily on the first parallel block evaluation.
var laneExecutor struct {
	once sync.Once
	jobs chan func()
}

// submitLane enqueues one lane job on the shared executor, starting the
// pool on first use. The worker count is read from the machine exactly
// once and is a pure throughput knob: lanes write disjoint output rows
// and each lane's reduction order is fixed by the tile plan, so pool
// width can never change a trajectory — which is what licenses the
// tuning-gate below.
//
//repro:tuning-gate pool sizing only; lane fan-out is bit-identical at any width
func submitLane(f func()) {
	laneExecutor.once.Do(func() {
		laneExecutor.jobs = make(chan func(), 64)
		n := runtime.NumCPU()
		if n < 2 {
			n = 2
		}
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			go func() {
				for job := range laneExecutor.jobs {
					job()
				}
			}()
		}
	})
	laneExecutor.jobs <- f
}

// fanOut reports whether a slab of the given row count should be split
// across lanes. Small slabs always run inline: the join overhead would
// exceed the slab work.
func (s *Scratch) fanOut(rows int) bool {
	return s.tun.Parallelism > 1 && rows >= 2 && rows >= s.tun.threshold()
}

// parallelRows splits the row range [lo, hi) across the scratch's configured
// lanes and runs fn on each sub-range, lane 0 inline on the calling
// goroutine. fn must write only the output rows of its own sub-range; the
// join is the only synchronization. Callers check fanOut first — the serial
// path never constructs the closure, keeping warmed serial evaluation
// allocation-free.
func (s *Scratch) parallelRows(lo, hi int, fn func(sub *Scratch, l, h int)) {
	p := s.tun.Parallelism
	if p > hi-lo {
		p = hi - lo
	}
	blocks := vec.Blocks(hi-lo, p)
	var wg sync.WaitGroup
	for k := 1; k < len(blocks); k++ {
		k := k
		sub := s.Lane(k)
		wg.Add(1)
		submitLane(func() {
			defer wg.Done()
			fn(sub, lo+blocks[k][0], lo+blocks[k][1])
		})
	}
	fn(s, lo+blocks[0][0], lo+blocks[0][1])
	wg.Wait()
}

// denseSlabSerial is one lane's worth of denseSlab: the tiled row-slab
// matvec when tiling is installed, the plain one otherwise.
func denseSlabSerial(scr *Scratch, m *vec.Dense, dst, x []float64, lo, hi int) {
	t := scr.tun.Tile &^ 3
	if t >= 8 && t < m.Cols {
		m.MulRangeTiledTo(dst, x, lo, hi, t, scr.Acc(4*(hi-lo)))
		return
	}
	m.MulRangeTo(dst, x, lo, hi)
}

// denseSlab computes dst[i-lo] = (M x)_i for i in [lo, hi) with every
// installed tuning knob applied: fan-out over lanes when the slab is large
// enough, and column tiling within each lane. Bit-identical to
// M.MulRangeTo(dst, x, lo, hi) for every knob combination.
func denseSlab(scr *Scratch, m *vec.Dense, dst, x []float64, lo, hi int) {
	if scr == nil {
		m.MulRangeTo(dst, x, lo, hi)
		return
	}
	if !scr.fanOut(hi - lo) {
		denseSlabSerial(scr, m, dst, x, lo, hi)
		return
	}
	scr.parallelRows(lo, hi, func(sub *Scratch, l, h int) {
		denseSlabSerial(sub, m, dst[l-lo:h-lo], x, l, h)
	})
}

// csrSlab is denseSlab's sparse analog: lane fan-out, no column tiling
// (sparse rows are short and already stream compactly).
func csrSlab(scr *Scratch, m *vec.CSR, dst, x []float64, lo, hi int) {
	if scr == nil || !scr.fanOut(hi-lo) {
		m.MulRangeTo(dst, x, lo, hi)
		return
	}
	scr.parallelRows(lo, hi, func(sub *Scratch, l, h int) {
		m.MulRangeTo(dst[l-lo:h-lo], x, l, h)
	})
}
