package operators

// Scratch is a bundle of reusable work vectors. The asynchronous engines
// evaluate operators like ProxGradBF millions of times on their hot paths;
// without scratch every evaluation that needs a temporary (the prox point,
// a gradient) would allocate. Each worker owns one Scratch and threads it
// through EvalComponent / ApplyInto, making steady-state evaluation
// allocation-free.
//
// A Scratch is NOT safe for concurrent use: it embodies exactly the
// "per-worker buffer" idea, so give each goroutine its own instance (the
// engines do). The zero value is ready to use; buffers are created lazily
// on first request and reused afterwards, so a warmed-up Scratch never
// allocates again for the same shape.
type Scratch struct {
	bufs [][]float64
	aux  [][]float64
	acc  []float64 // tiled-matvec accumulators (see Acc)
	tun  Tuning
	// lanes are the sub-scratches handed to intra-block fan-out goroutines;
	// each lane is owned by exactly one goroutine for the duration of a
	// parallelRows call, preserving the single-owner contract.
	lanes []*Scratch
}

// NewScratch returns an empty Scratch. Buffers grow on demand, so one
// Scratch can be reused across operators and solves of any shape (repeated
// solves of the same shape allocate only on the first).
func NewScratch() *Scratch { return &Scratch{} }

// Vec returns the scratch vector registered under slot, resized to length n.
// Contents are unspecified on entry (callers overwrite). Distinct slots are
// distinct buffers; an operator's documentation states how many slots it
// consumes so composed operators can partition the slot space.
//
//repro:hotpath
func (s *Scratch) Vec(slot, n int) []float64 {
	for len(s.bufs) <= slot {
		s.bufs = append(s.bufs, nil) //repro:alloc-ok warm-up growth; a warmed Scratch hits the cached buffer
	}
	if cap(s.bufs[slot]) < n {
		s.bufs[slot] = make([]float64, n) //repro:alloc-ok warm-up growth; a warmed Scratch hits the cached buffer
	}
	return s.bufs[slot][:n]
}

// Aux returns the harness-side scratch vector registered under slot, resized
// to length n. Aux slots live in a slot space separate from Vec, so helpers
// that wrap an operator evaluation (ResidualWith's full-application buffer,
// RangeGradSmooth temporaries) can never collide with the slots the operator
// itself consumes. Slot 0 is reserved for ResidualWith; RangeGradSmooth
// implementations use slots >= 1.
//
//repro:hotpath
func (s *Scratch) Aux(slot, n int) []float64 {
	for len(s.aux) <= slot {
		s.aux = append(s.aux, nil) //repro:alloc-ok warm-up growth; a warmed Scratch hits the cached buffer
	}
	if cap(s.aux[slot]) < n {
		s.aux[slot] = make([]float64, n) //repro:alloc-ok warm-up growth; a warmed Scratch hits the cached buffer
	}
	return s.aux[slot][:n]
}

// ScratchOperator is an optional fast path: operators whose evaluation needs
// temporary vectors implement it so a caller-supplied Scratch replaces
// per-call allocation. Implementations must remain read-only on x and on any
// shared operator state (the scratch is the only mutable memory).
type ScratchOperator interface {
	Operator
	// ComponentScratch is Component(i, x) using scr for temporaries.
	ComponentScratch(scr *Scratch, i int, x []float64) float64
	// ApplyScratch is Apply(dst, x) using scr for temporaries.
	ApplyScratch(scr *Scratch, dst, x []float64)
}

// EvalComponent evaluates F_i(x), routing through the operator's scratch
// fast path when both the operator supports it and scr is non-nil. It is
// the evaluation call every engine hot loop uses.
//
//repro:hotpath
func EvalComponent(op Operator, scr *Scratch, i int, x []float64) float64 {
	if so, ok := op.(ScratchOperator); ok && scr != nil {
		return so.ComponentScratch(scr, i, x)
	}
	return op.Component(i, x)
}

// ApplyInto evaluates F(x) into dst, preferring the scratch fast path, then
// the FullApplier fast path, then componentwise evaluation.
//
//repro:hotpath
func ApplyInto(op Operator, scr *Scratch, dst, x []float64) {
	if so, ok := op.(ScratchOperator); ok && scr != nil {
		so.ApplyScratch(scr, dst, x)
		return
	}
	Apply(op, dst, x)
}

// ResidualWith returns ||F(x) - x||_inf like Residual. When the operator
// has a whole-vector application (ScratchOperator or FullApplier) the
// residual is ONE application into an Aux buffer plus a subtract — O(n +
// apply) instead of the O(n * component) the per-component loop costs on
// coupled operators — and stays allocation-free once scr is warmed. The
// componentwise loop remains as the fallback.
//
//repro:hotpath
func ResidualWith(op Operator, scr *Scratch, x []float64) float64 {
	_, isScratch := op.(ScratchOperator)
	_, isFull := op.(FullApplier)
	if scr != nil && (isScratch || isFull) {
		fx := scr.Aux(0, op.Dim())
		ApplyInto(op, scr, fx, x)
		return maxAbsDiff(fx, x)
	}
	m := 0.0
	for i := 0; i < op.Dim(); i++ {
		d := EvalComponent(op, scr, i, x) - x[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
