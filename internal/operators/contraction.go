package operators

import (
	"repro/internal/vec"
)

// EstimateContraction samples random pairs (x, F(x)) against a known fixed
// point xstar and returns the largest observed ratio
//
//	||F(x) - x*||_u / ||x - x*||_u,
//
// an empirical lower bound on the ||.||_u Lipschitz constant of F around
// x*. For affine operators this converges to ||A||_u; for nonlinear
// contractions it certifies the factor used in Theorem 1 checks.
func EstimateContraction(op Operator, xstar, u []float64, trials int, radius float64, rng *vec.RNG) float64 {
	n := op.Dim()
	worst := 0.0
	fx := make([]float64, n)
	for t := 0; t < trials; t++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = xstar[i] + radius*(2*rng.Float64()-1)
		}
		den := vec.WeightedMaxDist(x, xstar, u)
		if den == 0 {
			continue
		}
		Apply(op, fx, x)
		num := vec.WeightedMaxDist(fx, xstar, u)
		if r := num / den; r > worst {
			worst = r
		}
	}
	return worst
}

// Ones returns the uniform weight vector (the plain max norm).
func Ones(n int) []float64 {
	u := make([]float64, n)
	for i := range u {
		u[i] = 1
	}
	return u
}

// TheoreticalRho returns rho = gamma*mu, the per-macro-iteration contraction
// of inequality (5) in the paper.
func TheoreticalRho(f Smooth, gamma float64) float64 {
	_, mu := f.LMu()
	return gamma * mu
}
