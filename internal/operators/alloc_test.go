package operators

import (
	"math"
	"testing"

	"repro/internal/prox"
	"repro/internal/vec"
)

func allocTestLinear(n int) *Linear {
	rng := vec.NewRNG(11)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := 0.2 * rng.Normal()
				m.Set(i, j, v)
				off += math.Abs(v)
			}
		}
		m.Set(i, i, 1.5*off+1)
	}
	return JacobiFromSystem(m, rng.NormalVector(n))
}

func allocTestProxGrad(n int) (*ProxGradBF, *InnerIterated) {
	rng := vec.NewRNG(12)
	q := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1+rng.Float64())
	}
	f := NewQuadratic(q, rng.NormalVector(n), 0)
	gamma := MaxStep(f)
	return NewProxGradBF(f, prox.L1{Lambda: 0.05}, gamma),
		NewInnerIterated(f, prox.L1{Lambda: 0.05}, gamma, 3)
}

// The scratch fast paths must be allocation-free after warm-up: engines
// call them once per component relaxation.
func TestScratchEvaluationAllocationFree(t *testing.T) {
	const n = 48
	lin := allocTestLinear(n)
	bf, inner := allocTestProxGrad(n)
	x := vec.NewRNG(13).NormalVector(n)
	dst := make([]float64, n)

	cases := []struct {
		name string
		op   Operator
	}{
		{"Linear", lin},
		{"ProxGradBF", bf},
		{"InnerIterated", inner},
		{"Relaxed(ProxGradBF)", &Relaxed{Inner: bf, Omega: 0.7}},
	}
	for _, tc := range cases {
		scr := NewScratch()
		// Warm up so lazily created scratch buffers exist.
		_ = EvalComponent(tc.op, scr, 0, x)
		ApplyInto(tc.op, scr, dst, x)

		if avg := testing.AllocsPerRun(100, func() {
			_ = EvalComponent(tc.op, scr, 1, x)
		}); avg != 0 {
			t.Errorf("%s: EvalComponent allocated %.1f/run, want 0", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			ApplyInto(tc.op, scr, dst, x)
		}); avg != 0 {
			t.Errorf("%s: ApplyInto allocated %.1f/run, want 0", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			_ = ResidualWith(tc.op, scr, x)
		}); avg != 0 {
			t.Errorf("%s: ResidualWith allocated %.1f/run, want 0", tc.name, avg)
		}
	}
}

// A warmed block evaluation must allocate nothing: it runs once per worker
// phase in every engine hot loop.
func TestEvalBlockAllocationFree(t *testing.T) {
	const n = 48
	lin := allocTestLinear(n)
	bf, inner := allocTestProxGrad(n)
	x := vec.NewRNG(15).NormalVector(n)
	out := make([]float64, 8)

	cases := []struct {
		name string
		op   Operator
	}{
		{"Linear", lin},
		{"ProxGradBF", bf},
		{"InnerIterated", inner},
		{"Relaxed(ProxGradBF)", &Relaxed{Inner: bf, Omega: 0.7}},
	}
	for _, tc := range cases {
		scr := NewScratch()
		EvalBlock(tc.op, scr, 8, 16, x, out) // warm up lazily created buffers
		if avg := testing.AllocsPerRun(100, func() {
			EvalBlock(tc.op, scr, 8, 16, x, out)
		}); avg != 0 {
			t.Errorf("%s: EvalBlock allocated %.1f/run, want 0", tc.name, avg)
		}
	}
}

// The scratch fast paths must agree exactly with the plain evaluations.
func TestScratchEvaluationMatchesPlain(t *testing.T) {
	const n = 32
	bf, inner := allocTestProxGrad(n)
	x := vec.NewRNG(14).NormalVector(n)

	for _, tc := range []struct {
		name string
		op   Operator
	}{
		{"ProxGradBF", bf},
		{"InnerIterated", inner},
		{"Relaxed", &Relaxed{Inner: bf, Omega: 0.5}},
	} {
		scr := NewScratch()
		for i := 0; i < n; i++ {
			plain := tc.op.Component(i, x)
			fast := EvalComponent(tc.op, scr, i, x)
			if plain != fast {
				t.Errorf("%s: component %d: scratch %v != plain %v", tc.name, i, fast, plain)
			}
		}
		plain := make([]float64, n)
		fast := make([]float64, n)
		Apply(tc.op, plain, x)
		ApplyInto(tc.op, scr, fast, x)
		for i := range plain {
			if plain[i] != fast[i] {
				t.Errorf("%s: apply %d: scratch %v != plain %v", tc.name, i, fast[i], plain[i])
			}
		}
	}
}

func TestScratchVecGrowsAndReuses(t *testing.T) {
	scr := NewScratch()
	a := scr.Vec(0, 8)
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	b := scr.Vec(0, 4)
	if len(b) != 4 {
		t.Fatalf("len = %d", len(b))
	}
	if &a[0] != &b[0] {
		t.Error("shrinking request should reuse the same backing buffer")
	}
	c := scr.Vec(1, 16)
	if len(c) != 16 {
		t.Fatalf("len = %d", len(c))
	}
	if &c[0] == &a[0] {
		t.Error("distinct slots must be distinct buffers")
	}
}
