package operators

import "repro/internal/prox"

// Block evaluation is the whole-block fast path of the engine hot loops.
// The paper's iterations update one worker's whole block per phase, but a
// componentwise contract forces coupled operators to redo their shared work
// (the prox vector, the gradient pass, the inner iterations) once per
// component: a b-component phase of ProxGradBF costs O(b*n) while one
// shared pass costs O(n + b * per-component-work). BlockScratchOperator
// lets an operator evaluate a contiguous component range in one pass, and
// EvalBlock is the dispatcher every engine phase loop calls.
//
// Contract: EvalBlockScratch must produce, componentwise bit-identical
// results to ComponentScratch/Component — the deterministic engines rely on
// identical trajectories whichever path runs (block_test.go and the root
// blockpath_test.go pin this). Implementations must stay read-only on x and
// on shared operator state; the scratch is the only mutable memory.
//
// Scratch-slot budget (Vec slots): ProxGradBF 1, InnerIterated 2,
// ProxGradFB 0, GradOp 0, Linear/SparseLinear 0; Relaxed consumes no slots
// and forwards the scratch to its inner operator. RangeGradSmooth
// implementations may additionally use Aux slots >= 1 (Aux slot 0 is
// reserved for ResidualWith's full-application buffer).
type BlockScratchOperator interface {
	Operator
	// EvalBlockScratch writes F_c(x) for c in [lo, hi) into out[c-lo]
	// (len(out) == hi-lo), using scr for temporaries.
	EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64)
}

// EvalBlock evaluates the component range [lo, hi) of F at x into out,
// routing through the operator's block fast path when both the operator
// supports it and scr is non-nil, and falling back to the per-component
// loop (itself routed through the scratch fast path) otherwise. It is the
// phase-evaluation call of every engine hot loop.
//
//repro:hotpath
func EvalBlock(op Operator, scr *Scratch, lo, hi int, x, out []float64) {
	if len(out) != hi-lo {
		panic("operators: EvalBlock out length does not match [lo, hi)")
	}
	if bo, ok := op.(BlockScratchOperator); ok && scr != nil {
		bo.EvalBlockScratch(scr, lo, hi, x, out)
		return
	}
	for c := lo; c < hi; c++ {
		out[c-lo] = EvalComponent(op, scr, c, x)
	}
}

// RangeGradSmooth is an optional fast path on Smooth: GradRange writes
// (grad f(x))_c for c in [lo, hi) into dst[c-lo], computing whatever whole-
// gradient work is shareable (the Gram/Hessian row slab, the residual and
// sigmoid pass of logistic regression) once per call instead of once per
// component. Implementations must be componentwise bit-identical to
// GradComponent and may use scratch Aux slots >= 1; scr may be nil, in
// which case the implementation either works without temporaries or
// allocates.
type RangeGradSmooth interface {
	GradRange(scr *Scratch, dst, x []float64, lo, hi int)
}

// gradRange evaluates the gradient range through the fast path when f
// supports it, falling back to per-component evaluation.
//
//repro:hotpath
func gradRange(f Smooth, scr *Scratch, dst, x []float64, lo, hi int) {
	if rg, ok := f.(RangeGradSmooth); ok {
		rg.GradRange(scr, dst, x, lo, hi)
		return
	}
	for c := lo; c < hi; c++ {
		dst[c-lo] = f.GradComponent(c, x)
	}
}

// EvalBlockScratch implements BlockScratchOperator (1 scratch slot): the
// prox vector is materialized ONCE for the whole block, then the gradient
// range shares its pass through gradRange — O(n + block gradient) instead
// of the per-component path's O(b*n) prox work alone.
func (o *ProxGradBF) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	p := scr.Vec(0, len(x))
	prox.ApplyVec(o.G, p, x, o.Gamma)
	gradRange(o.F, scr, out, p, lo, hi)
	for i := range out {
		out[i] = p[lo+i] - o.Gamma*out[i]
	}
}

// EvalBlockScratch implements BlockScratchOperator (0 scratch slots): one
// shared gradient-range pass, then the componentwise prox.
func (o *ProxGradFB) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	gradRange(o.F, scr, out, x, lo, hi)
	for i := range out {
		out[i] = o.G.Apply(lo+i, x[lo+i]-o.Gamma*out[i], o.Gamma)
	}
}

// EvalBlockScratch implements BlockScratchOperator (2 scratch slots): the
// prox + K full gradient iterations run ONCE for the whole block instead of
// once per component — the largest single win of the block contract.
func (o *InnerIterated) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	p := scr.Vec(0, len(x))
	o.applyWithScratch(scr, p, scr.Vec(1, len(x)), x)
	copy(out, p[lo:hi])
}

// EvalBlockScratch implements BlockScratchOperator by delegating the block
// (and the whole scratch slot space) to the inner operator.
func (r *Relaxed) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	EvalBlock(r.Inner, scr, lo, hi, x, out)
	for i := range out {
		out[i] = (1-r.Omega)*x[lo+i] + r.Omega*out[i]
	}
}

// EvalBlockScratch implements BlockScratchOperator via the row-slab matvec
// (tiled and lane-parallel per the scratch's tuning).
func (l *Linear) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	denseSlab(scr, l.A, out, x, lo, hi)
	for i := range out {
		out[i] += l.B[lo+i]
	}
}

// EvalBlockScratch implements BlockScratchOperator via the sparse row-slab
// matvec (lane-parallel per the scratch's tuning).
func (l *SparseLinear) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	csrSlab(scr, l.A, out, x, lo, hi)
	for i := range out {
		out[i] += l.B[lo+i]
	}
}

// EvalBlockScratch implements BlockScratchOperator (0 scratch slots): one
// shared gradient-range pass, then the explicit step.
func (g *GradOp) EvalBlockScratch(scr *Scratch, lo, hi int, x, out []float64) {
	gradRange(g.F, scr, out, x, lo, hi)
	for i := range out {
		out[i] = x[lo+i] - g.Gamma*out[i]
	}
}

// GradRange implements RangeGradSmooth via the Hessian row slab (tiled and
// lane-parallel per the scratch's tuning).
func (f *Quadratic) GradRange(scr *Scratch, dst, x []float64, lo, hi int) {
	denseSlab(scr, f.Q, dst, x, lo, hi)
	for i := range dst {
		dst[i] -= f.B[lo+i]
	}
}

// GradRange implements RangeGradSmooth via the Gram row slab (tiled and
// lane-parallel per the scratch's tuning), or the shared residual pass in
// lean mode.
func (f *LeastSquares) GradRange(scr *Scratch, dst, x []float64, lo, hi int) {
	if f.gram == nil {
		f.leanGradRange(scr, dst, x, lo, hi)
		return
	}
	denseSlab(scr, f.gram, dst, x, lo, hi)
	for i := range dst {
		// Same association order as GradComponent: (s + reg*x_i) - aty_i.
		dst[i] = dst[i] + f.Reg*x[lo+i] - f.aty[lo+i]
	}
}

// GradRange implements RangeGradSmooth; each coordinate is independent.
func (f *Separable) GradRange(scr *Scratch, dst, x []float64, lo, hi int) {
	for c := lo; c < hi; c++ {
		dst[c-lo] = f.A[c] * (x[c] - f.T[c])
	}
}
