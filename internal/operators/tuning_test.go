package operators

import (
	"runtime"
	"testing"

	"repro/internal/vec"
)

// tuningCombos is the knob matrix every bit-identity test sweeps: tiling
// alone, fan-out alone (with a low threshold so small test problems
// actually engage it), both together, and more lanes than the machine has
// CPUs (the executor is bounded; extra lanes just queue).
func tuningCombos() []struct {
	name string
	tun  Tuning
} {
	return []struct {
		name string
		tun  Tuning
	}{
		{"default", Tuning{}},
		{"tile8", Tuning{Tile: 8}},
		{"tile12", Tuning{Tile: 12}},
		{"par4", Tuning{Parallelism: 4, Threshold: 4}},
		{"tile8par4", Tuning{Tile: 8, Parallelism: 4, Threshold: 4}},
		{"parOverCPU", Tuning{Parallelism: runtime.NumCPU() + 16, Threshold: 4}},
	}
}

// Every tuning knob combination must leave every operator's block
// evaluation BIT-identical to the untuned scratch — tiling carries the
// canonical accumulator quartet across tiles and lanes write disjoint
// output rows, so there is exactly one answer. Ranges deliberately do not
// divide the tile width and straddle the fan-out threshold.
func TestEvalBlockBitIdenticalUnderTuning(t *testing.T) {
	const n = 96
	x := vec.NewRNG(61).NormalVector(n)
	for _, tc := range blockTestOps(n) {
		plain := NewScratch()
		for _, blk := range [][2]int{{0, n}, {0, 1}, {5, 18}, {3, n - 5}, {n - 1, n}, {0, 64}} {
			lo, hi := blk[0], blk[1]
			want := make([]float64, hi-lo)
			EvalBlock(tc.op, plain, lo, hi, x, want)
			for _, combo := range tuningCombos() {
				scr := NewScratch()
				scr.SetTuning(combo.tun)
				got := make([]float64, hi-lo)
				EvalBlock(tc.op, scr, lo, hi, x, got)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s/%s block [%d,%d) row %d: %v != untuned %v",
							tc.name, combo.name, lo, hi, lo+i, got[i], want[i])
					}
				}
			}
		}
	}
}

// The fan-out predicate must gate exactly at the threshold: one row below
// stays inline, at and above fans out — and serial parallelism never fans
// out regardless of height.
func TestFanOutThresholdBoundary(t *testing.T) {
	scr := NewScratch()
	scr.SetTuning(Tuning{Parallelism: 4, Threshold: 16})
	for rows, want := range map[int]bool{15: false, 16: true, 17: true, 2: false} {
		if got := scr.fanOut(rows); got != want {
			t.Errorf("threshold 16, rows %d: fanOut=%v want %v", rows, got, want)
		}
	}
	scr.SetTuning(Tuning{Parallelism: 4}) // default threshold
	for rows, want := range map[int]bool{DefaultParallelThreshold - 1: false,
		DefaultParallelThreshold: true, DefaultParallelThreshold + 1: true} {
		if got := scr.fanOut(rows); got != want {
			t.Errorf("default threshold, rows %d: fanOut=%v want %v", rows, got, want)
		}
	}
	scr.SetTuning(Tuning{Parallelism: 1, Threshold: 2})
	if scr.fanOut(1000) {
		t.Error("Parallelism 1 must never fan out")
	}
	scr.SetTuning(Tuning{})
	if scr.fanOut(1000) {
		t.Error("zero tuning must never fan out")
	}
}

// Lane sub-scratches inherit the tile but are pinned serial, so a lane can
// never recursively fan out and deadlock the bounded executor.
func TestLaneScratchesAreSerial(t *testing.T) {
	scr := NewScratch()
	scr.SetTuning(Tuning{Tile: 16, Parallelism: 8, Threshold: 4})
	lane := scr.Lane(3)
	tun := lane.Tuning()
	if tun.Parallelism != 1 {
		t.Errorf("lane parallelism = %d, want 1", tun.Parallelism)
	}
	if tun.Tile != 16 {
		t.Errorf("lane tile = %d, want 16", tun.Tile)
	}
	if lane.fanOut(1000) {
		t.Error("lane scratch must never fan out")
	}
}

// Sharded Gram assembly must build a LeastSquares whose gradients are
// bit-identical to the serial build's, for any shard count (including more
// shards than columns).
func TestShardedLeastSquaresBitIdentical(t *testing.T) {
	rng := vec.NewRNG(67)
	const m, n = 40, 24
	a := vec.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	y := rng.NormalVector(m)
	x := rng.NormalVector(n)
	serial := NewLeastSquares(a, y, 0.1)
	want := make([]float64, n)
	serial.Grad(want, x)
	for _, shards := range []int{2, 3, 7, n, n + 5} {
		f := NewLeastSquaresSharded(a, y, 0.1, shards)
		got := make([]float64, n)
		f.Grad(got, x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d Grad[%d]: %v != serial %v", shards, i, got[i], want[i])
			}
		}
		l1, mu1 := serial.LMu()
		l2, mu2 := f.LMu()
		if l1 != l2 || mu1 != mu2 {
			t.Fatalf("shards=%d LMu (%v,%v) != serial (%v,%v)", shards, l2, mu2, l1, mu1)
		}
	}
}

// The lean (no-Gram) LeastSquares is a different — but internally
// consistent — evaluation order: Grad, GradComponent and GradRange must be
// mutually bit-identical, under every tuning combination, and its (L, mu)
// must bound the true spectrum so lean steps remain convergent.
func TestLeanLeastSquaresInternallyConsistent(t *testing.T) {
	rng := vec.NewRNG(71)
	const m, n = 96, 80
	a := vec.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	y := rng.NormalVector(m)
	x := rng.NormalVector(n)
	f := NewLeastSquaresLean(a, y, 0.1)
	if !f.Lean() {
		t.Fatal("NewLeastSquaresLean did not build a lean instance")
	}
	full := make([]float64, n)
	f.Grad(full, x)
	for c := 0; c < n; c++ {
		if got := f.GradComponent(c, x); got != full[c] {
			t.Errorf("lean GradComponent[%d] %v != Grad %v", c, got, full[c])
		}
	}
	for _, combo := range tuningCombos() {
		scr := NewScratch()
		scr.SetTuning(combo.tun)
		for _, blk := range [][2]int{{0, n}, {3, 71}, {n - 1, n}} {
			lo, hi := blk[0], blk[1]
			dst := make([]float64, hi-lo)
			f.GradRange(scr, dst, x, lo, hi)
			for c := lo; c < hi; c++ {
				if dst[c-lo] != full[c] {
					t.Errorf("%s: lean GradRange[%d] %v != Grad %v", combo.name, c, dst[c-lo], full[c])
				}
			}
		}
	}
	// The lean L upper bound must dominate the eager (Gershgorin) L's
	// underlying spectrum: compare against the eager build's exact largest
	// eigenvalue bound pair. mu must equal reg.
	l, mu := f.LMu()
	if mu != 0.1 {
		t.Errorf("lean mu = %v, want reg 0.1", mu)
	}
	eager := NewLeastSquares(a, y, 0.1)
	_, eagerMu := eager.LMu()
	if mu != eagerMu {
		t.Errorf("lean mu %v != eager mu %v", mu, eagerMu)
	}
	// Power iteration converges to lmax from below per iterate, and the
	// 1.05 margin covers the residual gap: L must be a genuine upper
	// bound, checked against a Rayleigh quotient on a random direction.
	v := rng.NormalVector(n)
	av := make([]float64, m)
	a.MulVecTo(av, v)
	atav := make([]float64, n)
	a.MulVecTransTo(atav, av)
	num := 0.0
	for i := range v {
		num += v[i] * (atav[i]/float64(m) + 0.1*v[i])
	}
	if rq := num / vec.Dot(v, v); l < rq {
		t.Errorf("lean L %v below Rayleigh quotient %v", l, rq)
	}
}
