package operators

import (
	"math"
	"testing"

	"repro/internal/prox"
	"repro/internal/vec"
)

func diag3() *vec.Dense {
	return vec.DenseFromRows([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	})
}

func TestLinearComponentMatchesApply(t *testing.T) {
	a := vec.DenseFromRows([][]float64{
		{0.2, 0.1},
		{-0.1, 0.3},
	})
	op := NewLinear(a, []float64{1, 2})
	x := []float64{3, -1}
	dst := make([]float64, 2)
	op.Apply(dst, x)
	for i := 0; i < 2; i++ {
		if got := op.Component(i, x); math.Abs(got-dst[i]) > 1e-15 {
			t.Errorf("Component(%d) = %v, Apply gives %v", i, got, dst[i])
		}
	}
}

func TestLinearContractionFactor(t *testing.T) {
	a := vec.DenseFromRows([][]float64{
		{0.2, 0.1},
		{-0.1, 0.3},
	})
	op := NewLinear(a, []float64{0, 0})
	if got := op.ContractionFactor(); math.Abs(got-0.4) > 1e-15 {
		t.Errorf("ContractionFactor = %v, want 0.4", got)
	}
}

func TestJacobiFromSystemSolves(t *testing.T) {
	m := diag3()
	rhs := []float64{1, 2, 3}
	op := JacobiFromSystem(m, rhs)
	if cf := op.ContractionFactor(); cf >= 1 {
		t.Fatalf("Jacobi operator not contracting: %v", cf)
	}
	x, ok := FixedPoint(op, make([]float64, 3), 1e-12, 10000)
	if !ok {
		t.Fatal("fixed point iteration did not converge")
	}
	want, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(x, want, 1e-9) {
		t.Errorf("fixed point %v, direct solve %v", x, want)
	}
	if r := Residual(op, x); r > 1e-9 {
		t.Errorf("residual %v too large", r)
	}
}

func TestSparseLinearMatchesDense(t *testing.T) {
	m := diag3()
	rhs := []float64{1, 2, 3}
	dop := JacobiFromSystem(m, rhs)
	// Rebuild the same operator in CSR form.
	var entries []vec.COOEntry
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v := dop.A.At(i, j); v != 0 {
				entries = append(entries, vec.COOEntry{Row: i, Col: j, Val: v})
			}
		}
	}
	sop := NewSparseLinear(vec.NewCSR(3, 3, entries), dop.B)
	x := []float64{0.3, -0.7, 1.1}
	for i := 0; i < 3; i++ {
		if math.Abs(sop.Component(i, x)-dop.Component(i, x)) > 1e-14 {
			t.Errorf("sparse/dense mismatch at %d", i)
		}
	}
	if math.Abs(sop.ContractionFactor()-dop.ContractionFactor()) > 1e-14 {
		t.Error("contraction factors differ")
	}
}

func TestRelaxedOperator(t *testing.T) {
	a := vec.NewDense(1, 1)
	a.Set(0, 0, 0.5)
	op := NewLinear(a, []float64{1}) // F(x) = 0.5x + 1, fixed point 2
	r := &Relaxed{Inner: op, Omega: 0.5}
	// F_omega(x) = 0.5x + 0.5(0.5x+1) = 0.75x + 0.5, fixed point still 2.
	if got := r.Component(0, []float64{0}); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Relaxed(0) = %v", got)
	}
	x, ok := FixedPoint(r, []float64{0}, 1e-12, 1000)
	if !ok || math.Abs(x[0]-2) > 1e-9 {
		t.Errorf("Relaxed fixed point %v, want 2", x)
	}
}

func TestSeparableLMuExact(t *testing.T) {
	f := NewSeparable([]float64{1, 3, 2}, []float64{0, 0, 0})
	l, mu := f.LMu()
	if l != 3 || mu != 1 {
		t.Errorf("LMu = (%v, %v), want (3, 1)", l, mu)
	}
}

func TestSeparableGradAndValue(t *testing.T) {
	f := NewSeparable([]float64{2, 4}, []float64{1, -1})
	x := []float64{3, 0}
	if got := f.Value(x); math.Abs(got-(0.5*2*4+0.5*4*1)) > 1e-15 {
		t.Errorf("Value = %v", got)
	}
	g := make([]float64, 2)
	f.Grad(g, x)
	if !vec.Equal(g, []float64{4, 4}, 1e-15) {
		t.Errorf("Grad = %v", g)
	}
	for i := range g {
		if f.GradComponent(i, x) != g[i] {
			t.Errorf("GradComponent(%d) mismatch", i)
		}
	}
}

func TestQuadraticGradMatchesFiniteDifference(t *testing.T) {
	q := diag3()
	f := NewQuadratic(q, []float64{1, -2, 0.5}, 0)
	x := []float64{0.3, 0.1, -0.7}
	g := make([]float64, 3)
	f.Grad(g, x)
	const h = 1e-6
	for i := 0; i < 3; i++ {
		xp := vec.Clone(x)
		xm := vec.Clone(x)
		xp[i] += h
		xm[i] -= h
		fd := (f.Value(xp) - f.Value(xm)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-5 {
			t.Errorf("grad[%d] = %v, finite diff %v", i, g[i], fd)
		}
		if f.GradComponent(i, x) != g[i] {
			t.Errorf("GradComponent(%d) mismatch", i)
		}
	}
}

func TestQuadraticMinimizerIsGradOpFixedPoint(t *testing.T) {
	q := diag3()
	f := NewQuadratic(q, []float64{1, 1, 1}, 0)
	gamma := MaxStep(f)
	op := NewGradOp(f, gamma)
	x, ok := FixedPoint(op, make([]float64, 3), 1e-12, 50000)
	if !ok {
		t.Fatal("GradOp did not converge")
	}
	want, err := f.Minimizer()
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(x, want, 1e-8) {
		t.Errorf("GradOp fixed point %v, minimizer %v", x, want)
	}
}

func TestLeastSquaresGradient(t *testing.T) {
	a := vec.DenseFromRows([][]float64{
		{1, 0},
		{0, 2},
		{1, 1},
	})
	y := []float64{1, 2, 3}
	f := NewLeastSquares(a, y, 0.1)
	x := []float64{0.5, -0.25}
	g := make([]float64, 2)
	f.Grad(g, x)
	const h = 1e-6
	for i := 0; i < 2; i++ {
		xp := vec.Clone(x)
		xm := vec.Clone(x)
		xp[i] += h
		xm[i] -= h
		fd := (f.Value(xp) - f.Value(xm)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-5 {
			t.Errorf("grad[%d] = %v, finite diff %v", i, g[i], fd)
		}
		if math.Abs(f.GradComponent(i, x)-g[i]) > 1e-12 {
			t.Errorf("GradComponent(%d) mismatch", i)
		}
	}
	l, mu := f.LMu()
	if mu <= 0 || l < mu {
		t.Errorf("LMu = (%v, %v)", l, mu)
	}
}

func TestGradOpContractionWithinTheory(t *testing.T) {
	// Separable f: the max-norm contraction factor of I - gamma*grad f is
	// exactly max_i |1 - gamma*a_i| <= 1 - gamma*mu for gamma <= 2/(mu+L).
	f := NewSeparable([]float64{1, 2, 5}, []float64{0, 0, 0})
	gamma := MaxStep(f)
	op := NewGradOp(f, gamma)
	xstar := []float64{0, 0, 0}
	rng := vec.NewRNG(2)
	got := EstimateContraction(op, xstar, Ones(3), 300, 2.0, rng)
	_, mu := f.LMu()
	bound := 1 - gamma*mu
	if got > bound+1e-9 {
		t.Errorf("contraction %v exceeds theoretical %v", got, bound)
	}
}

func TestProxGradBFFixedPointSolvesComposite(t *testing.T) {
	// min 1/2 sum a_i (x_i - t_i)^2 + lambda ||x||_1 has the closed-form
	// solution x_i = soft(t_i, lambda/a_i).
	a := []float64{1, 2, 4}
	tt := []float64{3, -0.5, 0.05}
	lambda := 0.4
	f := NewSeparable(a, tt)
	g := prox.L1{Lambda: lambda}
	gamma := MaxStep(f)
	op := NewProxGradBF(f, g, gamma)
	y, ok := FixedPoint(op, make([]float64, 3), 1e-13, 100000)
	if !ok {
		t.Fatal("BF iteration did not converge")
	}
	x := op.Primal(y)
	want := make([]float64, 3)
	for i := range want {
		v := tt[i]
		th := lambda / a[i]
		switch {
		case v > th:
			want[i] = v - th
		case v < -th:
			want[i] = v + th
		default:
			want[i] = 0
		}
	}
	if !vec.Equal(x, want, 1e-8) {
		t.Errorf("BF primal %v, want %v", x, want)
	}
}

func TestProxGradFBFixedPointMatchesBFPrimal(t *testing.T) {
	a := []float64{1.5, 3}
	tt := []float64{2, -1}
	f := NewSeparable(a, tt)
	g := prox.L1{Lambda: 0.3}
	gamma := 0.9 * MaxStep(f)
	bf := NewProxGradBF(f, g, gamma)
	fb := NewProxGradFB(f, g, gamma)
	ybf, ok1 := FixedPoint(bf, make([]float64, 2), 1e-13, 100000)
	xfb, ok2 := FixedPoint(fb, make([]float64, 2), 1e-13, 100000)
	if !ok1 || !ok2 {
		t.Fatal("iterations did not converge")
	}
	if !vec.Equal(bf.Primal(ybf), xfb, 1e-8) {
		t.Errorf("BF primal %v != FB fixed point %v", bf.Primal(ybf), xfb)
	}
}

func TestInnerIteratedK1MatchesDefinition4(t *testing.T) {
	f := NewSeparable([]float64{2, 3}, []float64{1, -1})
	g := prox.L1{Lambda: 0.2}
	gamma := 0.5 * MaxStep(f)
	bf := NewProxGradBF(f, g, gamma)
	k1 := NewInnerIterated(f, g, gamma, 1)
	x := []float64{0.4, 0.6}
	a := make([]float64, 2)
	b := make([]float64, 2)
	bf.Apply(a, x)
	k1.Apply(b, x)
	if !vec.Equal(a, b, 1e-14) {
		t.Errorf("K=1 inner-iterated %v != Definition 4 %v", b, a)
	}
}

func TestInnerIteratedTrail(t *testing.T) {
	f := NewSeparable([]float64{2}, []float64{5})
	g := prox.Zero{}
	op := NewInnerIterated(f, g, 0.25, 3)
	out, trail := op.ApplyWithTrail([]float64{0})
	if len(trail) != 4 { // prox point + 3 gradient steps
		t.Fatalf("trail length %d, want 4", len(trail))
	}
	if !vec.Equal(trail[len(trail)-1], out, 0) {
		t.Error("last trail entry should equal output")
	}
	// Each gradient step halves the distance to 5 (1 - 0.25*2 = 0.5).
	for k := 1; k < len(trail); k++ {
		prev := math.Abs(trail[k-1][0] - 5)
		cur := math.Abs(trail[k][0] - 5)
		if math.Abs(cur-0.5*prev) > 1e-12 {
			t.Errorf("step %d: distance %v -> %v, want halving", k, prev, cur)
		}
	}
}

func TestInnerIteratedSharperContraction(t *testing.T) {
	f := NewSeparable([]float64{1, 2}, []float64{0.7, -0.3})
	g := prox.Zero{}
	gamma := 0.5 * MaxStep(f)
	k1 := NewInnerIterated(f, g, gamma, 1)
	k4 := NewInnerIterated(f, g, gamma, 4)
	xstar, ok := FixedPoint(k1, make([]float64, 2), 1e-13, 100000)
	if !ok {
		t.Fatal("no fixed point")
	}
	rng := vec.NewRNG(5)
	c1 := EstimateContraction(k1, xstar, Ones(2), 200, 1.0, rng)
	c4 := EstimateContraction(k4, xstar, Ones(2), 200, 1.0, rng)
	if c4 >= c1 {
		t.Errorf("K=4 contraction %v not sharper than K=1 %v", c4, c1)
	}
}

func TestTheoreticalRho(t *testing.T) {
	f := NewSeparable([]float64{1, 4}, []float64{0, 0})
	if got := TheoreticalRho(f, 0.25); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("rho = %v, want 0.25", got)
	}
}

func TestMaxStep(t *testing.T) {
	f := NewSeparable([]float64{1, 3}, []float64{0, 0})
	if got := MaxStep(f); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("MaxStep = %v, want 0.5", got)
	}
}
